// PAPI presets end to end: discover metrics, export them as presets,
// register them in a measurement session, and read them while "running" a
// user application -- the full life cycle the paper automates for the PAPI
// project.
//
// Build & run:  ./examples/papi_presets
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

int main() {
  using namespace catalyst;

  const pmu::Machine machine = pmu::saphira_cpu();

  // 1. Discover metric definitions from the CAT benchmarks.
  const auto flops = core::run_pipeline(
      machine, cat::cpu_flops_benchmark(), core::cpu_flops_signatures());
  const auto branches = core::run_pipeline(
      machine, cat::branch_benchmark(), core::branch_signatures());

  // 2. Turn composable metrics into presets (rounded, zero-free).
  auto presets = core::make_presets(flops.metrics);
  const auto branch_presets = core::make_presets(branches.metrics);
  presets.insert(presets.end(), branch_presets.begin(), branch_presets.end());

  std::cout << "Generated preset table for " << machine.name() << ":\n"
            << core::presets_to_table(presets) << "\n";

  // 3. Register them in a fresh session, like a tool loading papi presets.
  vpapi::Session session(machine);
  const std::size_t registered = core::register_presets(session, presets);
  std::cout << registered << " presets registered\n\n";

  // 4. "Run" a user application and read two presets around it.
  //    The app: 1000 iterations of a loop doing 4 AVX-512 DP FMAs, 2 scalar
  //    DP adds, with 1 conditional branch (taken except the exit).
  pmu::Activity app;
  app[pmu::sig::fp("512", "dp", true)] = 4000.0;
  app[pmu::sig::fp("scalar", "dp", false)] = 2000.0;
  app[pmu::sig::branch_cond_retired] = 1000.0;
  app[pmu::sig::branch_cond_taken] = 999.0;
  app[pmu::sig::branch_mispredicted] = 1.0;

  const int set = session.create_eventset();
  for (const char* preset : {"PAPI_DP_OPS", "PAPI_BR_MSP"}) {
    if (session.add_event(set, preset) != vpapi::Status::ok) {
      std::cerr << "could not add " << preset << "\n";
      return 1;
    }
  }
  std::cout << "Event set uses " << session.counters_in_use(set) << " of "
            << machine.physical_counters() << " physical counters\n";

  session.start(set);
  session.run_kernel(app, /*repetition=*/0, /*kernel_index=*/0);
  session.stop(set);

  std::vector<double> values;
  session.read(set, values);
  std::cout << "PAPI_DP_OPS  = " << values[0]
            << "   (expected 4000*16 + 2000 = 66000)\n";
  std::cout << "PAPI_BR_MSP  = " << values[1] << "   (expected 1)\n";
  return 0;
}
