// Cache analysis: composing memory-hierarchy metrics from noisy events.
//
// The data-cache path is the hardest case in the paper: cache events are
// far noisier than FP or branch events, so the pipeline runs with
//   * multiple chase threads with the median reading taken across them,
//   * a lenient noise threshold tau = 1e-1 (vs 1e-10 elsewhere),
//   * a looser QR rounding tolerance alpha = 5e-2,
//   * and a final coefficient-rounding step that snaps the percent-level
//     least-squares coefficients to exact 0 / +-1 (Table VIII, Fig. 3).
//
// Build & run:  ./examples/cache_analysis
#include <iomanip>
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

int main() {
  using namespace catalyst;

  const pmu::Machine machine = pmu::saphira_cpu();

  cat::DcacheOptions chase;
  chase.threads = 3;  // median-of-3 suppresses per-thread noise
  std::cout << "Running the pointer chase on the simulated hierarchy ("
            << chase.threads << " threads, strides 64B/128B)...\n";
  const cat::Benchmark bench = cat::dcache_benchmark(chase);

  core::PipelineOptions opt;
  opt.tau = 1e-1;
  opt.alpha = 5e-2;
  opt.projection_max_error = 1e-1;
  opt.fitness_threshold = 5e-2;
  const core::PipelineResult result =
      core::run_pipeline(machine, bench, core::dcache_signatures(), opt);

  std::cout << "\n" << core::format_selected_events(result) << "\n";
  std::cout << core::format_metric_table(
      "Data-cache metrics, raw least-squares coefficients", result.metrics);
  std::cout << "\n"
            << core::format_metric_table(
                   "Same metrics after coefficient rounding (Table VIII)",
                   result.metrics, /*rounded=*/true);

  // Fig. 3 style check: the rounded L1-Reads combination tracks its
  // signature across every chase regime.
  const auto l1_hit = result.averaged_measurement("MEM_LOAD_RETIRED:L1_HIT");
  const auto l1_miss = result.averaged_measurement("MEM_LOAD_RETIRED:L1_MISS");
  if (l1_hit && l1_miss) {
    std::cout << "\nL1 Reads = L1_HIT + L1_MISS, normalized per access:\n";
    std::cout << "  slot                                   combination  "
                 "signature\n";
    for (std::size_t k = 0; k < bench.slots.size(); ++k) {
      const double combined = (*l1_hit)[k] + (*l1_miss)[k];
      std::cout << "  " << std::left << std::setw(38)
                << bench.slots[k].name << " " << std::fixed
                << std::setprecision(3) << combined << "        1.000\n";
    }
  }
  return 0;
}
