// Arithmetic intensity monitoring -- the original use case of the Counter
// Analysis Toolkit ("Effortless Monitoring of Arithmetic Intensity with
// PAPI's Counter Analysis Toolkit", the paper's ref. [11]).
//
// Arithmetic intensity = FLOPs / bytes moved from memory.  Neither side is
// a raw event: FLOPs need the weighted FP_ARITH combination, and memory
// traffic needs L3-miss counts scaled by the line size.  This example
// discovers both automatically, registers them as presets, and profiles a
// sweep of synthetic workloads from memory-bound (streaming) to
// compute-bound (blocked matmul-like), printing the intensity roofline
// ordering.
//
// Build & run:  ./examples/arithmetic_intensity
#include <iomanip>
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

int main() {
  using namespace catalyst;
  const pmu::Machine machine = pmu::saphira_cpu();
  constexpr double kLineBytes = 64.0;

  // --- Discover the two building-block metrics --------------------------------
  const auto flops_run = core::run_pipeline(
      machine, cat::cpu_flops_benchmark(), core::cpu_flops_signatures());
  cat::DcacheOptions chase;
  chase.threads = 2;
  core::PipelineOptions cache_opt;
  cache_opt.tau = 1e-1;
  cache_opt.alpha = 5e-2;
  cache_opt.projection_max_error = 1e-1;
  cache_opt.fitness_threshold = 5e-2;
  const auto cache_run =
      core::run_pipeline(machine, cat::dcache_benchmark(chase),
                         core::dcache_signatures(), cache_opt);

  auto presets = core::make_presets(flops_run.metrics);
  const auto cache_presets = core::make_presets(cache_run.metrics);
  presets.insert(presets.end(), cache_presets.begin(), cache_presets.end());

  vpapi::Session session(machine);
  core::register_presets(session, presets);
  if (!session.query_event("PAPI_DP_OPS") ||
      !session.query_event("PAPI_L2_DCM")) {
    std::cerr << "required presets were not discovered\n";
    return 1;
  }
  std::cout << "Discovered presets: PAPI_DP_OPS (FLOPs) and PAPI_L2_DCM\n"
               "(off-core data traffic proxy; bytes = misses x "
            << kLineBytes << ")\n\n";

  // --- Profile a workload sweep ------------------------------------------------
  // Synthetic apps: (name, DP scalar instrs, DP AVX-512 FMA instrs,
  // L1 misses, L2 hits) per "phase"; L2 misses = traffic to L3/memory.
  struct App {
    const char* name;
    double scalar, fma512, l1_miss, l2_hit;
  };
  const App apps[] = {
      {"stream-copy (memory-bound)", 1e5, 0.0, 8e5, 1e5},
      {"sparse SpMV", 4e5, 1e4, 5e5, 2e5},
      {"stencil-27pt", 2e5, 8e4, 2e5, 1.5e5},
      {"blocked dgemm (compute-bound)", 1e5, 1.2e6, 5e4, 4e4},
  };

  const int set = session.create_eventset();
  session.add_event(set, "PAPI_DP_OPS");
  session.add_event(set, "PAPI_L2_DCM");
  std::cout << std::left << std::setw(32) << "workload" << std::right
            << std::setw(14) << "DP FLOPs" << std::setw(14) << "bytes"
            << std::setw(12) << "intensity\n";
  std::uint64_t run = 0;
  for (const App& app : apps) {
    pmu::Activity act;
    act[pmu::sig::fp("scalar", "dp", false)] = app.scalar;
    act[pmu::sig::fp("512", "dp", true)] = app.fma512;
    act[pmu::sig::l1d_demand_miss] = app.l1_miss;
    act[pmu::sig::l2d_demand_hit] = app.l2_hit;
    act[pmu::sig::l2d_demand_miss] = app.l1_miss - app.l2_hit;

    session.reset(set);
    session.start(set);
    session.run_kernel(act, run++, 0);
    session.stop(set);
    std::vector<double> vals;
    session.read(set, vals);
    const double flops = vals[0];
    const double bytes = vals[1] * kLineBytes;
    std::cout << std::left << std::setw(32) << app.name << std::right
              << std::fixed << std::setprecision(0) << std::setw(14) << flops
              << std::setw(14) << bytes << std::setw(11)
              << std::setprecision(3) << (flops / bytes) << "\n";
  }
  std::cout << "\nIntensity rises monotonically from streaming to blocked\n"
               "matmul -- measured entirely through automatically defined\n"
               "metrics.\n";
  return 0;
}
