// Quickstart: automatically define a "DP FLOPs" metric from raw events.
//
// This walks the library's happy path end to end:
//   1. pick a machine model (the Sapphire-Rapids-flavoured "Saphira" CPU),
//   2. pick the CAT benchmark that stresses the hardware attribute of
//      interest (floating point),
//   3. run the analysis pipeline with the paper's default thresholds,
//   4. read off the metric definition and its fitness.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

int main() {
  using namespace catalyst;

  // A simulated machine with ~350 raw events, of which only a handful are
  // relevant to floating-point analysis -- finding them by hand is the
  // problem the paper automates.
  const pmu::Machine machine = pmu::saphira_cpu();
  std::cout << "Machine: " << machine.name() << " with "
            << machine.num_events() << " raw events and "
            << machine.physical_counters() << " physical counters\n\n";

  // The CAT CPU-FLOPs benchmark: 16 microkernels x 3 loops, each stressing
  // one ideal floating-point concept in isolation.
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  std::cout << "Benchmark: " << bench.name << " with " << bench.slots.size()
            << " kernel slots over a " << bench.basis.labels.size()
            << "-dimensional expectation basis\n\n";

  // Run the full pipeline for all of Table I's metric signatures.
  const core::PipelineResult result = core::run_pipeline(
      machine, bench, core::cpu_flops_signatures(), core::PipelineOptions{});

  std::cout << result.all_event_names.size() << " events measured -> "
            << result.noise.kept.size() << " after noise filtering -> "
            << result.projection.x_event_names.size()
            << " representable in the basis -> " << result.xhat_events.size()
            << " independent events selected by the specialized QRCP\n\n";

  std::cout << core::format_selected_events(result) << "\n";

  // The headline: DP FLOPs, composed automatically.
  for (const auto& metric : result.metrics) {
    if (metric.metric_name != "DP Ops.") continue;
    std::cout << "DP FLOPs = "
              << core::format_combination(
                     core::round_coefficients(metric.terms))
              << "\n  (backward error " << metric.backward_error << ", "
              << (metric.composable ? "composable" : "NOT composable")
              << ")\n";
  }
  return 0;
}
