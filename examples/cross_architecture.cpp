// Cross-architecture portability: the paper's motivating scenario.
//
// A performance tool wants one "DP FLOPs" preset that works everywhere, but
// every architecture exposes different raw events.  This example runs the
// same expectation basis and signatures through the pipeline on two CPU
// models:
//
//   * "Saphira" (Sapphire-Rapids-flavoured): per-width, per-precision
//     FP_ARITH events -> DP FLOPs composes as a 4-term weighted sum;
//   * "Vesuvio" (older-AMD-flavoured): only a combined RETIRED_SSE_AVX_FLOPS
//     counter that already counts operations but cannot separate precisions
//     -> the pipeline proves DP FLOPs is NOT composable there, while the
//     combined SP+DP FLOPs metric is exact.
//
// The point: the event-to-metric mapping is discovered automatically on
// each machine; no hand-maintained preset tables.
//
// Build & run:  ./examples/cross_architecture
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace {

void report_metric(const catalyst::core::PipelineResult& result,
                   const std::string& name) {
  using namespace catalyst;
  for (const auto& metric : result.metrics) {
    if (metric.metric_name != name) continue;
    std::cout << "  " << name << " = "
              << core::format_combination(
                     core::round_coefficients(metric.terms))
              << "\n    error " << metric.backward_error << " -> "
              << (metric.composable ? "composable" : "NOT composable")
              << "\n";
  }
}

}  // namespace

int main() {
  using namespace catalyst;

  const cat::Benchmark bench = cat::cpu_flops_benchmark();

  // Table I signatures plus a combined-precision FLOPs signature: the sum
  // of the "SP Ops." and "DP Ops." coordinate vectors.
  auto signatures = core::cpu_flops_signatures();
  {
    core::MetricSignature both{"SP+DP Ops.", linalg::Vector(16, 0.0)};
    for (const auto& s : signatures) {
      if (s.name == "SP Ops." || s.name == "DP Ops.") {
        for (std::size_t i = 0; i < 16; ++i) {
          both.coordinates[i] += s.coordinates[i];
        }
      }
    }
    signatures.push_back(both);
  }

  for (const pmu::Machine& machine : {pmu::saphira_cpu(), pmu::vesuvio_cpu()}) {
    const auto result = core::run_pipeline(machine, bench, signatures,
                                           core::PipelineOptions{});
    std::cout << "== " << machine.name() << " (" << machine.num_events()
              << " events) ==\n";
    std::cout << "  QR-selected events:";
    for (const auto& e : result.xhat_events) std::cout << " " << e;
    std::cout << "\n";
    report_metric(result, "DP Ops.");
    report_metric(result, "SP+DP Ops.");
    std::cout << "\n";
  }

  std::cout << "Same signature, different hardware, different verdicts --\n"
               "discovered automatically from benchmark data alone.\n";
  return 0;
}
