// GPU metrics: event-to-metric mapping on an MI250X-flavoured GPU.
//
// Demonstrates two findings from the paper's Table VI:
//   * the ADD counters count additions AND subtractions, so "HP Add Ops"
//     alone is NOT composable (the least squares hedges with a 0.5
//     coefficient and a large backward error), while "HP Add and Sub Ops"
//     is exact;
//   * the per-precision "All Ops" metrics compose exactly, with the FMA
//     counter scaled by 2 (two operations per instruction).
//
// Build & run:  ./examples/gpu_metrics
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

int main() {
  using namespace catalyst;

  const pmu::Machine machine = pmu::tempest_gpu();
  std::cout << "Machine: " << machine.name() << " with "
            << machine.num_events()
            << " raw events across 8 devices (only device 0 executes)\n\n";

  const cat::Benchmark bench = cat::gpu_flops_benchmark();
  const core::PipelineResult result = core::run_pipeline(
      machine, bench, core::gpu_flops_signatures(), core::PipelineOptions{});

  std::cout << core::format_selected_events(result) << "\n";

  std::cout << core::format_metric_table("GPU floating-point metrics",
                                         result.metrics);

  std::cout << "\nNote how 'HP Add Ops.' and 'HP Sub Ops.' each get a 0.5 x\n"
               "ADD_F16 compromise with a large error: the hardware has no\n"
               "event that separates additions from subtractions, and the\n"
               "analysis detects that automatically.\n";
  return 0;
}
