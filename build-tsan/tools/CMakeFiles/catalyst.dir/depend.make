# Empty dependencies file for catalyst.
# This may be replaced when dependencies are built.
