file(REMOVE_RECURSE
  "CMakeFiles/catalyst.dir/catalyst_cli.cpp.o"
  "CMakeFiles/catalyst.dir/catalyst_cli.cpp.o.d"
  "catalyst"
  "catalyst.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
