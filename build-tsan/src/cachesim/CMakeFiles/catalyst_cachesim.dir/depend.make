# Empty dependencies file for catalyst_cachesim.
# This may be replaced when dependencies are built.
