file(REMOVE_RECURSE
  "CMakeFiles/catalyst_cachesim.dir/cache.cpp.o"
  "CMakeFiles/catalyst_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/catalyst_cachesim.dir/config.cpp.o"
  "CMakeFiles/catalyst_cachesim.dir/config.cpp.o.d"
  "CMakeFiles/catalyst_cachesim.dir/pointer_chase.cpp.o"
  "CMakeFiles/catalyst_cachesim.dir/pointer_chase.cpp.o.d"
  "CMakeFiles/catalyst_cachesim.dir/tlb.cpp.o"
  "CMakeFiles/catalyst_cachesim.dir/tlb.cpp.o.d"
  "libcatalyst_cachesim.a"
  "libcatalyst_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
