
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cachesim/cache.cpp" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/cache.cpp.o" "gcc" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/cache.cpp.o.d"
  "/root/repo/src/cachesim/config.cpp" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/config.cpp.o" "gcc" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/config.cpp.o.d"
  "/root/repo/src/cachesim/pointer_chase.cpp" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/pointer_chase.cpp.o" "gcc" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/pointer_chase.cpp.o.d"
  "/root/repo/src/cachesim/tlb.cpp" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/tlb.cpp.o" "gcc" "src/cachesim/CMakeFiles/catalyst_cachesim.dir/tlb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
