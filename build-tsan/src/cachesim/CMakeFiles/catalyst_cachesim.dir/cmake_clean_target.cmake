file(REMOVE_RECURSE
  "libcatalyst_cachesim.a"
)
