
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/basis_diagnostics.cpp" "src/core/CMakeFiles/catalyst_core.dir/basis_diagnostics.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/basis_diagnostics.cpp.o.d"
  "/root/repo/src/core/io.cpp" "src/core/CMakeFiles/catalyst_core.dir/io.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/io.cpp.o.d"
  "/root/repo/src/core/json.cpp" "src/core/CMakeFiles/catalyst_core.dir/json.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/json.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/catalyst_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/noise.cpp" "src/core/CMakeFiles/catalyst_core.dir/noise.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/noise.cpp.o.d"
  "/root/repo/src/core/noise_classify.cpp" "src/core/CMakeFiles/catalyst_core.dir/noise_classify.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/noise_classify.cpp.o.d"
  "/root/repo/src/core/normalize.cpp" "src/core/CMakeFiles/catalyst_core.dir/normalize.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/normalize.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/catalyst_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/presets.cpp" "src/core/CMakeFiles/catalyst_core.dir/presets.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/presets.cpp.o.d"
  "/root/repo/src/core/qrcp_special.cpp" "src/core/CMakeFiles/catalyst_core.dir/qrcp_special.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/qrcp_special.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/catalyst_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/report.cpp.o.d"
  "/root/repo/src/core/signatures.cpp" "src/core/CMakeFiles/catalyst_core.dir/signatures.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/signatures.cpp.o.d"
  "/root/repo/src/core/validate.cpp" "src/core/CMakeFiles/catalyst_core.dir/validate.cpp.o" "gcc" "src/core/CMakeFiles/catalyst_core.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/linalg/CMakeFiles/catalyst_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cat/CMakeFiles/catalyst_cat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vpapi/CMakeFiles/catalyst_vpapi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cachesim/CMakeFiles/catalyst_cachesim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pmu/CMakeFiles/catalyst_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
