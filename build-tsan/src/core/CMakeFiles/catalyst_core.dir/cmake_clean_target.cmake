file(REMOVE_RECURSE
  "libcatalyst_core.a"
)
