# Empty dependencies file for catalyst_core.
# This may be replaced when dependencies are built.
