file(REMOVE_RECURSE
  "CMakeFiles/catalyst_core.dir/basis_diagnostics.cpp.o"
  "CMakeFiles/catalyst_core.dir/basis_diagnostics.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/io.cpp.o"
  "CMakeFiles/catalyst_core.dir/io.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/json.cpp.o"
  "CMakeFiles/catalyst_core.dir/json.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/metrics.cpp.o"
  "CMakeFiles/catalyst_core.dir/metrics.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/noise.cpp.o"
  "CMakeFiles/catalyst_core.dir/noise.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/noise_classify.cpp.o"
  "CMakeFiles/catalyst_core.dir/noise_classify.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/normalize.cpp.o"
  "CMakeFiles/catalyst_core.dir/normalize.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/pipeline.cpp.o"
  "CMakeFiles/catalyst_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/presets.cpp.o"
  "CMakeFiles/catalyst_core.dir/presets.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/qrcp_special.cpp.o"
  "CMakeFiles/catalyst_core.dir/qrcp_special.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/report.cpp.o"
  "CMakeFiles/catalyst_core.dir/report.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/signatures.cpp.o"
  "CMakeFiles/catalyst_core.dir/signatures.cpp.o.d"
  "CMakeFiles/catalyst_core.dir/validate.cpp.o"
  "CMakeFiles/catalyst_core.dir/validate.cpp.o.d"
  "libcatalyst_core.a"
  "libcatalyst_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
