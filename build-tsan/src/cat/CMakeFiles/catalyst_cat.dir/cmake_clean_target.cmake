file(REMOVE_RECURSE
  "libcatalyst_cat.a"
)
