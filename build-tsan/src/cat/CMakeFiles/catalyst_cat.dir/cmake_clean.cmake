file(REMOVE_RECURSE
  "CMakeFiles/catalyst_cat.dir/benchmark.cpp.o"
  "CMakeFiles/catalyst_cat.dir/benchmark.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/branch.cpp.o"
  "CMakeFiles/catalyst_cat.dir/branch.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/cpu_flops.cpp.o"
  "CMakeFiles/catalyst_cat.dir/cpu_flops.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/dcache.cpp.o"
  "CMakeFiles/catalyst_cat.dir/dcache.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/gpu_dcache.cpp.o"
  "CMakeFiles/catalyst_cat.dir/gpu_dcache.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/gpu_flops.cpp.o"
  "CMakeFiles/catalyst_cat.dir/gpu_flops.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/icache.cpp.o"
  "CMakeFiles/catalyst_cat.dir/icache.cpp.o.d"
  "CMakeFiles/catalyst_cat.dir/mixed.cpp.o"
  "CMakeFiles/catalyst_cat.dir/mixed.cpp.o.d"
  "libcatalyst_cat.a"
  "libcatalyst_cat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_cat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
