# Empty compiler generated dependencies file for catalyst_cat.
# This may be replaced when dependencies are built.
