
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cat/benchmark.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/benchmark.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/benchmark.cpp.o.d"
  "/root/repo/src/cat/branch.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/branch.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/branch.cpp.o.d"
  "/root/repo/src/cat/cpu_flops.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/cpu_flops.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/cpu_flops.cpp.o.d"
  "/root/repo/src/cat/dcache.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/dcache.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/dcache.cpp.o.d"
  "/root/repo/src/cat/gpu_dcache.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/gpu_dcache.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/gpu_dcache.cpp.o.d"
  "/root/repo/src/cat/gpu_flops.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/gpu_flops.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/gpu_flops.cpp.o.d"
  "/root/repo/src/cat/icache.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/icache.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/icache.cpp.o.d"
  "/root/repo/src/cat/mixed.cpp" "src/cat/CMakeFiles/catalyst_cat.dir/mixed.cpp.o" "gcc" "src/cat/CMakeFiles/catalyst_cat.dir/mixed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/linalg/CMakeFiles/catalyst_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pmu/CMakeFiles/catalyst_pmu.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cachesim/CMakeFiles/catalyst_cachesim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
