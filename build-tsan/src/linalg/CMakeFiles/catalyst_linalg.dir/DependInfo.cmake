
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/blas.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/blas.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/blas.cpp.o.d"
  "/root/repo/src/linalg/householder.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/householder.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/householder.cpp.o.d"
  "/root/repo/src/linalg/lstsq.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/lstsq.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/lstsq.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/matrix.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/qr.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/qr.cpp.o.d"
  "/root/repo/src/linalg/qrcp.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/qrcp.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/qrcp.cpp.o.d"
  "/root/repo/src/linalg/random.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/random.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/random.cpp.o.d"
  "/root/repo/src/linalg/svd.cpp" "src/linalg/CMakeFiles/catalyst_linalg.dir/svd.cpp.o" "gcc" "src/linalg/CMakeFiles/catalyst_linalg.dir/svd.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
