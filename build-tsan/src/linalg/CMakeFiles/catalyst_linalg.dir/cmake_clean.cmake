file(REMOVE_RECURSE
  "CMakeFiles/catalyst_linalg.dir/blas.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/blas.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/householder.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/householder.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/lstsq.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/lstsq.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/matrix.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/qr.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/qr.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/qrcp.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/qrcp.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/random.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/random.cpp.o.d"
  "CMakeFiles/catalyst_linalg.dir/svd.cpp.o"
  "CMakeFiles/catalyst_linalg.dir/svd.cpp.o.d"
  "libcatalyst_linalg.a"
  "libcatalyst_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
