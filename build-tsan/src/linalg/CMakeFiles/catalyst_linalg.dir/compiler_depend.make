# Empty compiler generated dependencies file for catalyst_linalg.
# This may be replaced when dependencies are built.
