file(REMOVE_RECURSE
  "libcatalyst_linalg.a"
)
