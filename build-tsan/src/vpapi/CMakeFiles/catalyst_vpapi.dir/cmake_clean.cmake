file(REMOVE_RECURSE
  "CMakeFiles/catalyst_vpapi.dir/collector.cpp.o"
  "CMakeFiles/catalyst_vpapi.dir/collector.cpp.o.d"
  "CMakeFiles/catalyst_vpapi.dir/vpapi.cpp.o"
  "CMakeFiles/catalyst_vpapi.dir/vpapi.cpp.o.d"
  "libcatalyst_vpapi.a"
  "libcatalyst_vpapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_vpapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
