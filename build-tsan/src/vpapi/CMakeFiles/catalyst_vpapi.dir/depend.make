# Empty dependencies file for catalyst_vpapi.
# This may be replaced when dependencies are built.
