
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vpapi/collector.cpp" "src/vpapi/CMakeFiles/catalyst_vpapi.dir/collector.cpp.o" "gcc" "src/vpapi/CMakeFiles/catalyst_vpapi.dir/collector.cpp.o.d"
  "/root/repo/src/vpapi/vpapi.cpp" "src/vpapi/CMakeFiles/catalyst_vpapi.dir/vpapi.cpp.o" "gcc" "src/vpapi/CMakeFiles/catalyst_vpapi.dir/vpapi.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/pmu/CMakeFiles/catalyst_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
