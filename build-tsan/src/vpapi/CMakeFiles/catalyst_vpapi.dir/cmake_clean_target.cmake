file(REMOVE_RECURSE
  "libcatalyst_vpapi.a"
)
