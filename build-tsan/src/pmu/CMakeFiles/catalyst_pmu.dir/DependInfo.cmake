
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pmu/machine.cpp" "src/pmu/CMakeFiles/catalyst_pmu.dir/machine.cpp.o" "gcc" "src/pmu/CMakeFiles/catalyst_pmu.dir/machine.cpp.o.d"
  "/root/repo/src/pmu/measure.cpp" "src/pmu/CMakeFiles/catalyst_pmu.dir/measure.cpp.o" "gcc" "src/pmu/CMakeFiles/catalyst_pmu.dir/measure.cpp.o.d"
  "/root/repo/src/pmu/saphira.cpp" "src/pmu/CMakeFiles/catalyst_pmu.dir/saphira.cpp.o" "gcc" "src/pmu/CMakeFiles/catalyst_pmu.dir/saphira.cpp.o.d"
  "/root/repo/src/pmu/tempest.cpp" "src/pmu/CMakeFiles/catalyst_pmu.dir/tempest.cpp.o" "gcc" "src/pmu/CMakeFiles/catalyst_pmu.dir/tempest.cpp.o.d"
  "/root/repo/src/pmu/vesuvio.cpp" "src/pmu/CMakeFiles/catalyst_pmu.dir/vesuvio.cpp.o" "gcc" "src/pmu/CMakeFiles/catalyst_pmu.dir/vesuvio.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
