# Empty dependencies file for catalyst_pmu.
# This may be replaced when dependencies are built.
