file(REMOVE_RECURSE
  "CMakeFiles/catalyst_pmu.dir/machine.cpp.o"
  "CMakeFiles/catalyst_pmu.dir/machine.cpp.o.d"
  "CMakeFiles/catalyst_pmu.dir/measure.cpp.o"
  "CMakeFiles/catalyst_pmu.dir/measure.cpp.o.d"
  "CMakeFiles/catalyst_pmu.dir/saphira.cpp.o"
  "CMakeFiles/catalyst_pmu.dir/saphira.cpp.o.d"
  "CMakeFiles/catalyst_pmu.dir/tempest.cpp.o"
  "CMakeFiles/catalyst_pmu.dir/tempest.cpp.o.d"
  "CMakeFiles/catalyst_pmu.dir/vesuvio.cpp.o"
  "CMakeFiles/catalyst_pmu.dir/vesuvio.cpp.o.d"
  "libcatalyst_pmu.a"
  "libcatalyst_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/catalyst_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
