file(REMOVE_RECURSE
  "libcatalyst_pmu.a"
)
