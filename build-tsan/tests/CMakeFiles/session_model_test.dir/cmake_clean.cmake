file(REMOVE_RECURSE
  "CMakeFiles/session_model_test.dir/session_model_test.cpp.o"
  "CMakeFiles/session_model_test.dir/session_model_test.cpp.o.d"
  "session_model_test"
  "session_model_test.pdb"
  "session_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
