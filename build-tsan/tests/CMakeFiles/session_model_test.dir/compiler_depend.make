# Empty compiler generated dependencies file for session_model_test.
# This may be replaced when dependencies are built.
