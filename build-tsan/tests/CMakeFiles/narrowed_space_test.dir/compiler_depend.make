# Empty compiler generated dependencies file for narrowed_space_test.
# This may be replaced when dependencies are built.
