file(REMOVE_RECURSE
  "CMakeFiles/narrowed_space_test.dir/narrowed_space_test.cpp.o"
  "CMakeFiles/narrowed_space_test.dir/narrowed_space_test.cpp.o.d"
  "narrowed_space_test"
  "narrowed_space_test.pdb"
  "narrowed_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/narrowed_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
