file(REMOVE_RECURSE
  "CMakeFiles/linalg_lstsq_test.dir/linalg_lstsq_test.cpp.o"
  "CMakeFiles/linalg_lstsq_test.dir/linalg_lstsq_test.cpp.o.d"
  "linalg_lstsq_test"
  "linalg_lstsq_test.pdb"
  "linalg_lstsq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_lstsq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
