# Empty compiler generated dependencies file for linalg_lstsq_test.
# This may be replaced when dependencies are built.
