# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qrcp_pivot_rules_test.
