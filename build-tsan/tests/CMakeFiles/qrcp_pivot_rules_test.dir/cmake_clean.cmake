file(REMOVE_RECURSE
  "CMakeFiles/qrcp_pivot_rules_test.dir/qrcp_pivot_rules_test.cpp.o"
  "CMakeFiles/qrcp_pivot_rules_test.dir/qrcp_pivot_rules_test.cpp.o.d"
  "qrcp_pivot_rules_test"
  "qrcp_pivot_rules_test.pdb"
  "qrcp_pivot_rules_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qrcp_pivot_rules_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
