# Empty compiler generated dependencies file for qrcp_pivot_rules_test.
# This may be replaced when dependencies are built.
