file(REMOVE_RECURSE
  "CMakeFiles/basis_diagnostics_test.dir/basis_diagnostics_test.cpp.o"
  "CMakeFiles/basis_diagnostics_test.dir/basis_diagnostics_test.cpp.o.d"
  "basis_diagnostics_test"
  "basis_diagnostics_test.pdb"
  "basis_diagnostics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/basis_diagnostics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
