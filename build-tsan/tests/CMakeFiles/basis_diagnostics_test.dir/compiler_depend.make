# Empty compiler generated dependencies file for basis_diagnostics_test.
# This may be replaced when dependencies are built.
