# Empty compiler generated dependencies file for linalg_blas_test.
# This may be replaced when dependencies are built.
