file(REMOVE_RECURSE
  "CMakeFiles/linalg_blas_test.dir/linalg_blas_test.cpp.o"
  "CMakeFiles/linalg_blas_test.dir/linalg_blas_test.cpp.o.d"
  "linalg_blas_test"
  "linalg_blas_test.pdb"
  "linalg_blas_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_blas_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
