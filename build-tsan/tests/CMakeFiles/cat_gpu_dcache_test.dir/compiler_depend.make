# Empty compiler generated dependencies file for cat_gpu_dcache_test.
# This may be replaced when dependencies are built.
