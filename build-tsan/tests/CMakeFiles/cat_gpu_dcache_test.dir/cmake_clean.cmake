file(REMOVE_RECURSE
  "CMakeFiles/cat_gpu_dcache_test.dir/cat_gpu_dcache_test.cpp.o"
  "CMakeFiles/cat_gpu_dcache_test.dir/cat_gpu_dcache_test.cpp.o.d"
  "cat_gpu_dcache_test"
  "cat_gpu_dcache_test.pdb"
  "cat_gpu_dcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cat_gpu_dcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
