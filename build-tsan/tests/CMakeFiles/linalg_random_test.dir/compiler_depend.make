# Empty compiler generated dependencies file for linalg_random_test.
# This may be replaced when dependencies are built.
