file(REMOVE_RECURSE
  "CMakeFiles/linalg_random_test.dir/linalg_random_test.cpp.o"
  "CMakeFiles/linalg_random_test.dir/linalg_random_test.cpp.o.d"
  "linalg_random_test"
  "linalg_random_test.pdb"
  "linalg_random_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_random_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
