file(REMOVE_RECURSE
  "CMakeFiles/noise_classify_test.dir/noise_classify_test.cpp.o"
  "CMakeFiles/noise_classify_test.dir/noise_classify_test.cpp.o.d"
  "noise_classify_test"
  "noise_classify_test.pdb"
  "noise_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
