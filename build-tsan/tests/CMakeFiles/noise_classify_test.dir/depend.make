# Empty dependencies file for noise_classify_test.
# This may be replaced when dependencies are built.
