# Empty dependencies file for vpapi_multiplex_test.
# This may be replaced when dependencies are built.
