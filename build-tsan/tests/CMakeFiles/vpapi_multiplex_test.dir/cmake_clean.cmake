file(REMOVE_RECURSE
  "CMakeFiles/vpapi_multiplex_test.dir/vpapi_multiplex_test.cpp.o"
  "CMakeFiles/vpapi_multiplex_test.dir/vpapi_multiplex_test.cpp.o.d"
  "vpapi_multiplex_test"
  "vpapi_multiplex_test.pdb"
  "vpapi_multiplex_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpapi_multiplex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
