# Empty compiler generated dependencies file for core_noise_test.
# This may be replaced when dependencies are built.
