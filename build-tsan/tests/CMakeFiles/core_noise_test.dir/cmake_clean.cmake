file(REMOVE_RECURSE
  "CMakeFiles/core_noise_test.dir/core_noise_test.cpp.o"
  "CMakeFiles/core_noise_test.dir/core_noise_test.cpp.o.d"
  "core_noise_test"
  "core_noise_test.pdb"
  "core_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
