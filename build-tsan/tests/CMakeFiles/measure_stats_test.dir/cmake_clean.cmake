file(REMOVE_RECURSE
  "CMakeFiles/measure_stats_test.dir/measure_stats_test.cpp.o"
  "CMakeFiles/measure_stats_test.dir/measure_stats_test.cpp.o.d"
  "measure_stats_test"
  "measure_stats_test.pdb"
  "measure_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
