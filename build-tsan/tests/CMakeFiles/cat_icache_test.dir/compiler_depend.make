# Empty compiler generated dependencies file for cat_icache_test.
# This may be replaced when dependencies are built.
