file(REMOVE_RECURSE
  "CMakeFiles/cat_icache_test.dir/cat_icache_test.cpp.o"
  "CMakeFiles/cat_icache_test.dir/cat_icache_test.cpp.o.d"
  "cat_icache_test"
  "cat_icache_test.pdb"
  "cat_icache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cat_icache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
