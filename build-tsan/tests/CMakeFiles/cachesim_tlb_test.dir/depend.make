# Empty dependencies file for cachesim_tlb_test.
# This may be replaced when dependencies are built.
