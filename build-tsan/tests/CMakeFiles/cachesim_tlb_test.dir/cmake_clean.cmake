file(REMOVE_RECURSE
  "CMakeFiles/cachesim_tlb_test.dir/cachesim_tlb_test.cpp.o"
  "CMakeFiles/cachesim_tlb_test.dir/cachesim_tlb_test.cpp.o.d"
  "cachesim_tlb_test"
  "cachesim_tlb_test.pdb"
  "cachesim_tlb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cachesim_tlb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
