file(REMOVE_RECURSE
  "CMakeFiles/vpapi_test.dir/vpapi_test.cpp.o"
  "CMakeFiles/vpapi_test.dir/vpapi_test.cpp.o.d"
  "vpapi_test"
  "vpapi_test.pdb"
  "vpapi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vpapi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
