# Empty dependencies file for vpapi_test.
# This may be replaced when dependencies are built.
