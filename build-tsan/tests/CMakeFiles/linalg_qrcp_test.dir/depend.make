# Empty dependencies file for linalg_qrcp_test.
# This may be replaced when dependencies are built.
