# Empty compiler generated dependencies file for linalg_qrcp_test.
# This may be replaced when dependencies are built.
