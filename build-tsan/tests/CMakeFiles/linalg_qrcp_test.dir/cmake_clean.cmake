file(REMOVE_RECURSE
  "CMakeFiles/linalg_qrcp_test.dir/linalg_qrcp_test.cpp.o"
  "CMakeFiles/linalg_qrcp_test.dir/linalg_qrcp_test.cpp.o.d"
  "linalg_qrcp_test"
  "linalg_qrcp_test.pdb"
  "linalg_qrcp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_qrcp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
