file(REMOVE_RECURSE
  "CMakeFiles/linalg_qr_test.dir/linalg_qr_test.cpp.o"
  "CMakeFiles/linalg_qr_test.dir/linalg_qr_test.cpp.o.d"
  "linalg_qr_test"
  "linalg_qr_test.pdb"
  "linalg_qr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_qr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
