
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/validate_test.cpp" "tests/CMakeFiles/validate_test.dir/validate_test.cpp.o" "gcc" "tests/CMakeFiles/validate_test.dir/validate_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/catalyst_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cat/CMakeFiles/catalyst_cat.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/linalg/CMakeFiles/catalyst_linalg.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cachesim/CMakeFiles/catalyst_cachesim.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/vpapi/CMakeFiles/catalyst_vpapi.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/pmu/CMakeFiles/catalyst_pmu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
