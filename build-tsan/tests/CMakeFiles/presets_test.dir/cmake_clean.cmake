file(REMOVE_RECURSE
  "CMakeFiles/presets_test.dir/presets_test.cpp.o"
  "CMakeFiles/presets_test.dir/presets_test.cpp.o.d"
  "presets_test"
  "presets_test.pdb"
  "presets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
