file(REMOVE_RECURSE
  "CMakeFiles/cat_test.dir/cat_test.cpp.o"
  "CMakeFiles/cat_test.dir/cat_test.cpp.o.d"
  "cat_test"
  "cat_test.pdb"
  "cat_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
