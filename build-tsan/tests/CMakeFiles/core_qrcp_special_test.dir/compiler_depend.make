# Empty compiler generated dependencies file for core_qrcp_special_test.
# This may be replaced when dependencies are built.
