file(REMOVE_RECURSE
  "CMakeFiles/core_qrcp_special_test.dir/core_qrcp_special_test.cpp.o"
  "CMakeFiles/core_qrcp_special_test.dir/core_qrcp_special_test.cpp.o.d"
  "core_qrcp_special_test"
  "core_qrcp_special_test.pdb"
  "core_qrcp_special_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_qrcp_special_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
