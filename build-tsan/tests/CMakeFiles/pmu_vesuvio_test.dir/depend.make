# Empty dependencies file for pmu_vesuvio_test.
# This may be replaced when dependencies are built.
