file(REMOVE_RECURSE
  "CMakeFiles/pmu_vesuvio_test.dir/pmu_vesuvio_test.cpp.o"
  "CMakeFiles/pmu_vesuvio_test.dir/pmu_vesuvio_test.cpp.o.d"
  "pmu_vesuvio_test"
  "pmu_vesuvio_test.pdb"
  "pmu_vesuvio_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_vesuvio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
