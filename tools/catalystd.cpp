// catalystd -- the long-running metric-analysis daemon.
//
//   catalystd --socket PATH [--workers N] [--queue N]
//             [--checkpoint-dir DIR] [--idle-timeout-ms N]
//             [--partial-frame-timeout-ms N] [--session-deadline-ms N]
//             [--analysis-timeout-ms N] [--max-inflight N]
//             [--max-session-bytes N] [--max-frame-bytes N]
//             [--max-sessions N] [--stats] [--flight-dump PATH]
//
// Speaks catalyst-wire-v1 (protocol version 2: STATS/TRACE telemetry
// frames) over a Unix-domain socket (see src/service/wire.hpp).
// SIGTERM/SIGINT trigger the graceful sequence: stop accepting, drain
// in-flight analyses, checkpoint queued-unstarted requests into
// --checkpoint-dir, flush goodbyes, exit 0.  A daemon restarted with the
// same --checkpoint-dir re-enqueues the checkpointed requests before
// accepting its first connection.
//
// Live telemetry is always on: the tracer is enabled at startup (its
// steady-state cost is covered by the bench/obs_overhead <2% budget), so
// STATS frames answer with real counters and TRACE frames can replay a
// request's spans.  SIGUSR1 dumps the flight recorder -- the ring of the
// most recent request summaries -- as JSON to --flight-dump (stderr when
// unset); a fatal crash dumps the same ring on the way out, so the last
// thing a dead daemon leaves behind is what it was doing.
//
// Threading: worker-pool unit 0 runs the socket event loop; units 1..N run
// ServiceCore worker loops.  All spawned through core::parallel_for -- the
// one sanctioned thread-spawn point in the tree.
#include <atomic>
#include <csignal>
#include <iostream>
#include <string>

#include "core/io.hpp"
#include "core/parallel.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace {

using namespace catalyst;

std::atomic<bool> g_stop{false};
std::atomic<bool> g_dump_flight{false};
std::atomic<int> g_wake_fd{-1};

void handle_signal(int) {
  // Async-signal-safe: one relaxed store + one write(2) on the self-pipe.
  g_stop.store(true, std::memory_order_relaxed);
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) service::io::notify_pipe(fd);
}

void handle_sigusr1(int) {
  // Same shape as handle_signal: flag + self-pipe poke; the dump itself
  // (JSON rendering, file I/O) happens on the event-loop thread.
  g_dump_flight.store(true, std::memory_order_relaxed);
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) service::io::notify_pipe(fd);
}

/// Renders the flight-recorder ring and writes it to `path` (atomically)
/// or stderr when no path was configured.  Never throws: this runs on the
/// crash path, where a second failure must not mask the first.
void dump_flight(const std::string& path) noexcept {
  try {
    obs::FlightRecorder& recorder = obs::FlightRecorder::instance();
    const std::string json = obs::to_flight_json(
        recorder.snapshot(), recorder.recorded(), recorder.capacity());
    if (path.empty()) {
      std::cerr << json;
    } else {
      core::write_text_file_atomic(path, json);
      std::cerr << "catalystd: flight recorder dumped to " << path << "\n";
    }
  } catch (...) {
    // Swallow: a failed dump is a diagnostic loss, not a daemon failure.
  }
}

struct Flags {
  std::string socket_path;
  std::string checkpoint_dir;
  std::string flight_dump_path;
  int workers = 1;
  std::size_t queue = 64;
  std::size_t max_inflight = 8;
  std::uint64_t max_session_bytes = 256ull * 1024 * 1024;
  std::uint32_t max_frame_bytes = wire_default_frame_cap();
  std::size_t max_sessions = 64;
  long long idle_timeout_ms = 30000;
  long long partial_frame_timeout_ms = 5000;
  long long session_deadline_ms = 0;
  long long analysis_timeout_ms = 0;
  bool stats = false;

  static std::uint32_t wire_default_frame_cap() {
    return service::wire::kMaxPayloadBytes;
  }
};

int usage() {
  std::cerr
      << "usage: catalystd --socket PATH [--workers N] [--queue N]\n"
         "                 [--checkpoint-dir DIR] [--idle-timeout-ms N]\n"
         "                 [--partial-frame-timeout-ms N]\n"
         "                 [--session-deadline-ms N]\n"
         "                 [--analysis-timeout-ms N] [--max-inflight N]\n"
         "                 [--max-session-bytes N] [--max-frame-bytes N]\n"
         "                 [--max-sessions N] [--stats]\n"
         "                 [--flight-dump PATH]\n";
  return 2;
}

bool parse_flags(int argc, char** argv, Flags& flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--socket" && (v = value())) {
      flags.socket_path = v;
    } else if (a == "--checkpoint-dir" && (v = value())) {
      flags.checkpoint_dir = v;
    } else if (a == "--flight-dump" && (v = value())) {
      flags.flight_dump_path = v;
    } else if (a == "--workers" && (v = value())) {
      flags.workers = std::stoi(v);
    } else if (a == "--queue" && (v = value())) {
      flags.queue = std::stoul(v);
    } else if (a == "--max-inflight" && (v = value())) {
      flags.max_inflight = std::stoul(v);
    } else if (a == "--max-session-bytes" && (v = value())) {
      flags.max_session_bytes = std::stoull(v);
    } else if (a == "--max-frame-bytes" && (v = value())) {
      flags.max_frame_bytes = static_cast<std::uint32_t>(std::stoul(v));
    } else if (a == "--max-sessions" && (v = value())) {
      flags.max_sessions = std::stoul(v);
    } else if (a == "--idle-timeout-ms" && (v = value())) {
      flags.idle_timeout_ms = std::stoll(v);
    } else if (a == "--partial-frame-timeout-ms" && (v = value())) {
      flags.partial_frame_timeout_ms = std::stoll(v);
    } else if (a == "--session-deadline-ms" && (v = value())) {
      flags.session_deadline_ms = std::stoll(v);
    } else if (a == "--analysis-timeout-ms" && (v = value())) {
      flags.analysis_timeout_ms = std::stoll(v);
    } else if (a == "--stats") {
      flags.stats = true;
    } else {
      std::cerr << "unknown flag " << a << "\n";
      return false;
    }
  }
  return !flags.socket_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!parse_flags(argc, argv, flags)) return usage();
  if (flags.workers < 1) flags.workers = 1;
  // Live telemetry is part of the daemon's contract (STATS/TRACE frames,
  // flight recorder), so tracing is on unconditionally; --stats only adds
  // the exit-time summary on stderr.
  obs::Tracer::instance().enable();

  try {
    faults::RealClock clock;

    service::ServiceCore::Options core_options;
    core_options.workers = flags.workers;
    core_options.queue_capacity = flags.queue;
    core_options.max_inflight_per_session = flags.max_inflight;
    core_options.max_bytes_per_session = flags.max_session_bytes;
    core_options.default_analysis_timeout =
        std::chrono::milliseconds(flags.analysis_timeout_ms);
    core_options.checkpoint_dir = flags.checkpoint_dir;
    core_options.clock = &clock;
    service::ServiceCore core(core_options);
    if (core.restored_requests() > 0) {
      std::cerr << "catalystd: restored " << core.restored_requests()
                << " checkpointed request(s) from " << flags.checkpoint_dir
                << "\n";
    }

    service::Server::Options server_options;
    server_options.socket_path = flags.socket_path;
    server_options.max_sessions = flags.max_sessions;
    server_options.clock = &clock;
    server_options.session_limits.max_frame_payload = flags.max_frame_bytes;
    server_options.session_limits.idle_timeout =
        std::chrono::milliseconds(flags.idle_timeout_ms);
    server_options.session_limits.partial_frame_timeout =
        std::chrono::milliseconds(flags.partial_frame_timeout_ms);
    server_options.session_limits.session_deadline =
        std::chrono::milliseconds(flags.session_deadline_ms);
    server_options.on_wake = [&flags]() {
      if (g_dump_flight.exchange(false, std::memory_order_relaxed)) {
        dump_flight(flags.flight_dump_path);
      }
    };
    service::Server server(core, server_options);

    g_wake_fd.store(server.wake_fd(), std::memory_order_relaxed);
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    std::signal(SIGUSR1, handle_sigusr1);
    std::signal(SIGPIPE, SIG_IGN);

    std::cerr << "catalystd: listening on " << flags.socket_path << " ("
              << flags.workers << " worker(s), queue " << flags.queue
              << ")\n";

    // Unit 0 = event loop; units 1..workers = analysis workers.  The event
    // loop returns only after shutdown drains the core, at which point
    // begin_shutdown() has already woken every worker out of its wait.
    const std::size_t units = static_cast<std::size_t>(flags.workers) + 1;
    core::parallel_for(units, static_cast<int>(units), [&](std::size_t unit) {
      // Either side dying must release the other: a crashed event loop
      // wakes the workers out of their queue wait; a crashed worker flips
      // the stop flag so the event loop drains and returns.  Without this,
      // parallel_for's join would wait forever on the survivor.
      if (unit == 0) {
        try {
          server.run(g_stop);
        } catch (...) {
          core.begin_shutdown();
          throw;
        }
      } else {
        try {
          core.worker_loop();
        } catch (...) {
          g_stop.store(true, std::memory_order_relaxed);
          service::io::notify_pipe(server.wake_fd());
          throw;
        }
      }
    });

    std::cerr << "catalystd: drained, " << server.sessions_served()
              << " session(s) served; bye\n";
    if (flags.stats) {
      const obs::MetricsSnapshot metrics = obs::Metrics::instance().snapshot();
      std::cerr << obs::format_stats(metrics, {},
                                     obs::Tracer::instance().buffer()
                                         .published(),
                                     obs::Tracer::instance().buffer()
                                         .dropped());
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "catalystd: fatal: " << e.what() << "\n";
    // Crash-path dump: leave behind what the daemon was doing when it died.
    dump_flight(flags.flight_dump_path);
    return 1;
  }
}
