// catalyst_client -- command-line client (and abuse harness) for catalystd.
//
//   catalyst_client --socket PATH submit CATEGORY --from ARCHIVE [--wait]
//                   [--deadline-ms N] [--trace-id N]
//   catalyst_client --socket PATH poll ID
//   catalyst_client --socket PATH cancel ID
//   catalyst_client --socket PATH stats
//   catalyst_client --socket PATH trace ID
//   catalyst_client --socket PATH top [--interval-ms N] [--iterations N]
//   catalyst_client --socket PATH soak --clients N --requests M
//                   --category C --from ARCHIVE [--garbage] [--slow-loris]
//
// submit sends a packed (binary) submission built from a measurement
// archive and prints the assigned request id; --wait polls until the
// result arrives and prints the rendered report (byte-identical to
// `catalyst analyze --from ARCHIVE CATEGORY` output).  --trace-id stamps
// the submission so its journey through the daemon can be fetched later
// with `trace ID` (a Chrome trace fragment of just that request's spans).
//
// stats scrapes one catalyst-metrics-v1 JSON document over the wire; top
// polls STATS on an interval and renders a one-screen live summary (qps,
// p50/p95/p99 request latency, queue / quota pressure) computed entirely
// from deltas between consecutive scrapes.
//
// soak is the abuse harness scripts/check.sh drives: N concurrent client
// loops each pushing M requests through submit/poll, optionally joined by
// a garbage client (random bytes; expects a typed ERROR + close, never a
// hang) and a slow-loris client (dribbles a frame header; expects the
// daemon to cut it off).  Exit 0 = every interaction matched the protocol;
// any hang, crash, or protocol violation exits nonzero.
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "service/engine.hpp"
#include "service/io.hpp"
#include "service/wire.hpp"

#include <unistd.h>

namespace {

using namespace catalyst;
namespace wire = service::wire;
namespace sio = service::io;

/// Blocking framed connection.
class Connection {
 public:
  explicit Connection(const std::string& socket_path)
      : fd_(sio::connect_unix(socket_path)) {}
  ~Connection() { sio::close_fd(fd_); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send(wire::FrameType type, const std::string& payload) {
    const std::string bytes = wire::encode_frame(type, payload);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const sio::IoResult r =
          sio::write_some(fd_, bytes.data() + off, bytes.size() - off);
      if (r.kind != sio::IoResult::Kind::ok) {
        throw std::runtime_error("connection lost while sending " +
                                 std::string(wire::to_string(type)));
      }
      off += r.bytes;
    }
  }

  void send_raw(const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const sio::IoResult r = sio::write_some(fd_, data + off, size - off);
      if (r.kind != sio::IoResult::Kind::ok) {
        throw std::runtime_error("connection lost during raw send");
      }
      off += r.bytes;
    }
  }

  /// Next frame; throws on EOF/error (the caller decides if that was
  /// expected -- e.g. the garbage client WANTS to see the close).
  wire::Frame recv() {
    for (;;) {
      if (auto frame = decoder_.next()) return *frame;
      if (decoder_.error().has_value()) {
        throw std::runtime_error("server sent an undecodable frame: " +
                                 decoder_.error()->message);
      }
      char buf[16 * 1024];
      const sio::IoResult r = sio::read_some(fd_, buf, sizeof(buf));
      if (r.kind == sio::IoResult::Kind::ok) {
        decoder_.feed(buf, r.bytes);
        continue;
      }
      if (r.kind == sio::IoResult::Kind::would_block) continue;  // Blocking fd.
      throw std::runtime_error("connection closed by server");
    }
  }

  /// HELLO/HELLO_OK exchange.
  void handshake() {
    send(wire::FrameType::hello, "catalyst_client/1");
    const wire::Frame reply = recv();
    if (reply.type != wire::FrameType::hello_ok) {
      throw std::runtime_error("handshake rejected: " +
                               std::string(wire::to_string(reply.type)));
    }
  }

 private:
  int fd_;
  wire::FrameDecoder decoder_;
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long long get_ll(const std::string& key, long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[a.substr(2)] = argv[++i];
      } else {
        args.options[a.substr(2)] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  catalyst_client --socket PATH submit CATEGORY --from ARCHIVE\n"
         "                  [--wait] [--deadline-ms N] [--trace-id N]\n"
         "  catalyst_client --socket PATH poll ID\n"
         "  catalyst_client --socket PATH cancel ID\n"
         "  catalyst_client --socket PATH stats\n"
         "  catalyst_client --socket PATH trace ID\n"
         "  catalyst_client --socket PATH top [--interval-ms N]\n"
         "                  [--iterations N]\n"
         "  catalyst_client --socket PATH soak --clients N --requests M\n"
         "                  --category C --from ARCHIVE [--garbage]\n"
         "                  [--slow-loris]\n";
  return 2;
}

wire::SubmitBody load_submission(const Args& args,
                                 const std::string& category) {
  const std::string path = args.get("from", "");
  if (path.empty()) throw std::runtime_error("--from ARCHIVE is required");
  const core::MeasurementArchive archive =
      core::load_archive(core::read_text_file(path));
  const auto deadline_ms = args.get_ll("deadline-ms", 0);
  const auto trace_id = args.get_ll("trace-id", 0);
  return service::packed_submit_from_archive(
      archive, category,
      static_cast<std::uint64_t>(deadline_ms) * 1000000ull,
      static_cast<std::uint64_t>(trace_id));
}

/// One STATS round trip on an open connection; returns the JSON document.
std::string fetch_stats(Connection& conn) {
  conn.send(wire::FrameType::stats, "");
  const wire::Frame reply = conn.recv();
  if (reply.type != wire::FrameType::stats_ok) {
    throw std::runtime_error("unexpected STATS reply: " +
                             std::string(wire::to_string(reply.type)));
  }
  wire::Get cursor(reply.payload);
  return cursor.string();
}

/// Polls until the request leaves the queue/analyzing states.  Returns the
/// terminal frame (RESULT / ERROR / CANCELLED).
wire::Frame poll_until_done(Connection& conn, std::uint64_t id) {
  for (;;) {
    std::string payload;
    wire::put_u64(payload, id);
    conn.send(wire::FrameType::poll, payload);
    const wire::Frame reply = conn.recv();
    if (reply.type != wire::FrameType::pending) return reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

int cmd_submit(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const std::string category = args.positional[1];
  const wire::SubmitBody body = load_submission(args, category);
  Connection conn(socket_path);
  conn.handshake();
  conn.send(wire::FrameType::submit, wire::encode_submit(body));
  const wire::Frame reply = conn.recv();
  if (reply.type == wire::FrameType::retry_after) {
    std::cerr << "server is overloaded (RETRY_AFTER)\n";
    return 3;
  }
  if (reply.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(reply.payload);
    std::cerr << "rejected: " << wire::to_string(err.code) << ": "
              << err.message << "\n";
    return 1;
  }
  if (reply.type != wire::FrameType::accepted) {
    std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
    return 1;
  }
  wire::Get cursor(reply.payload);
  const std::uint64_t id = cursor.u64();
  if (!args.has("wait")) {
    std::cout << id << "\n";
    return 0;
  }
  const wire::Frame done = poll_until_done(conn, id);
  if (done.type == wire::FrameType::result) {
    wire::Get result(done.payload);
    result.u64();  // request id
    std::cout << result.string();
    return 0;
  }
  if (done.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(done.payload);
    std::cerr << "failed: " << wire::to_string(err.code) << ": "
              << err.message << "\n";
    return 1;
  }
  std::cerr << "request was cancelled\n";
  return 1;
}

int cmd_poll(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const auto id = static_cast<std::uint64_t>(std::stoull(args.positional[1]));
  Connection conn(socket_path);
  conn.handshake();
  std::string payload;
  wire::put_u64(payload, id);
  conn.send(wire::FrameType::poll, payload);
  const wire::Frame reply = conn.recv();
  switch (reply.type) {
    case wire::FrameType::pending: {
      const char phase =
          reply.payload.size() > 8 ? reply.payload[8] : char{0};
      std::cout << (phase == 1 ? "analyzing\n" : "queued\n");
      return 0;
    }
    case wire::FrameType::result: {
      wire::Get cursor(reply.payload);
      cursor.u64();
      std::cout << cursor.string();
      return 0;
    }
    case wire::FrameType::cancelled:
      std::cout << "cancelled\n";
      return 0;
    case wire::FrameType::error: {
      const wire::ErrorBody err = wire::decode_error(reply.payload);
      std::cerr << wire::to_string(err.code) << ": " << err.message << "\n";
      return 1;
    }
    default:
      std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
      return 1;
  }
}

int cmd_cancel(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const auto id = static_cast<std::uint64_t>(std::stoull(args.positional[1]));
  Connection conn(socket_path);
  conn.handshake();
  std::string payload;
  wire::put_u64(payload, id);
  conn.send(wire::FrameType::cancel, payload);
  const wire::Frame reply = conn.recv();
  if (reply.type == wire::FrameType::cancelled) {
    std::cout << "cancelled\n";
    return 0;
  }
  if (reply.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(reply.payload);
    std::cerr << wire::to_string(err.code) << ": " << err.message << "\n";
    return 1;
  }
  std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
  return 1;
}

int cmd_stats(const std::string& socket_path) {
  Connection conn(socket_path);
  conn.handshake();
  std::cout << fetch_stats(conn);
  conn.send(wire::FrameType::bye, "");
  return 0;
}

int cmd_trace(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const auto id = static_cast<std::uint64_t>(std::stoull(args.positional[1]));
  Connection conn(socket_path);
  conn.handshake();
  std::string payload;
  wire::put_u64(payload, id);
  conn.send(wire::FrameType::trace, payload);
  const wire::Frame reply = conn.recv();
  if (reply.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(reply.payload);
    std::cerr << wire::to_string(err.code) << ": " << err.message << "\n";
    return 1;
  }
  if (reply.type != wire::FrameType::trace_ok) {
    std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
    return 1;
  }
  wire::Get cursor(reply.payload);
  const std::uint64_t echoed = cursor.u64();
  if (echoed != id) {
    std::cerr << "TRACE_OK echoed id " << echoed << ", wanted " << id << "\n";
    return 1;
  }
  std::cout << cursor.string();
  conn.send(wire::FrameType::bye, "");
  return 0;
}

// --- top ---------------------------------------------------------------------

/// A parsed-enough view of one STATS scrape.  The producer is our own
/// to_metrics_json, so targeted scans beat a general JSON parser: every
/// series this needs appears exactly once as `"name": value`.
struct StatsSample {
  std::map<std::string, std::uint64_t> scalars;  ///< Counters + gauges.
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  std::vector<std::pair<std::size_t, std::uint64_t>> hist_buckets;
  bool compiled_out = false;
};

StatsSample parse_stats(const std::string& json,
                        const std::vector<std::string>& scalar_names,
                        const std::string& histogram_name) {
  StatsSample sample;
  sample.compiled_out = json.find("\"compiled_out\": true") != std::string::npos;
  for (const std::string& name : scalar_names) {
    const std::string needle = "\"" + name + "\": ";
    const std::size_t at = json.find(needle);
    if (at == std::string::npos) continue;
    sample.scalars[name] = std::strtoull(
        json.c_str() + at + needle.size(), nullptr, 10);
  }
  // The histogram entry: {"name": "...", "count": N, "sum": S, ...
  //  "buckets": [[i, c], ...]}
  const std::string head = "{\"name\": \"" + histogram_name + "\",";
  const std::size_t at = json.find(head);
  if (at == std::string::npos) return sample;
  const std::size_t entry_end = json.find("]}", at);
  const std::string entry =
      json.substr(at, entry_end == std::string::npos ? std::string::npos
                                                     : entry_end + 2 - at);
  std::size_t p = entry.find("\"count\": ");
  if (p != std::string::npos) {
    sample.hist_count = std::strtoull(entry.c_str() + p + 9, nullptr, 10);
  }
  p = entry.find("\"sum\": ");
  if (p != std::string::npos) {
    sample.hist_sum = std::strtod(entry.c_str() + p + 7, nullptr);
  }
  p = entry.find("\"buckets\": [");
  if (p != std::string::npos) {
    const char* cur = entry.c_str() + p + 12;
    while (*cur != '\0' && *cur != ']') {
      if (*cur == '[') {
        char* end = nullptr;
        const std::size_t index =
            static_cast<std::size_t>(std::strtoull(cur + 1, &end, 10));
        while (*end == ',' || *end == ' ') ++end;
        const std::uint64_t count = std::strtoull(end, &end, 10);
        sample.hist_buckets.emplace_back(index, count);
        cur = end;
      }
      ++cur;
    }
  }
  return sample;
}

/// q-th percentile (0..1) from delta bucket counts: walks the cumulative
/// distribution and returns the matched bucket's inclusive upper bound.
double bucket_percentile(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& buckets,
    std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (const auto& [index, count] : buckets) {
    cumulative += count;
    if (static_cast<double>(cumulative) >= target) {
      return obs::histogram_upper_bound(index);
    }
  }
  return obs::histogram_upper_bound(obs::kNumBuckets - 1);
}

/// Delta of the window's buckets: current minus previous, clamped at zero
/// (a daemon restart between polls degrades to "current" instead of
/// wrapping).
std::vector<std::pair<std::size_t, std::uint64_t>> bucket_delta(
    const std::vector<std::pair<std::size_t, std::uint64_t>>& now,
    const std::vector<std::pair<std::size_t, std::uint64_t>>& before) {
  std::map<std::size_t, std::uint64_t> prior(before.begin(), before.end());
  std::vector<std::pair<std::size_t, std::uint64_t>> out;
  for (const auto& [index, count] : now) {
    const auto it = prior.find(index);
    const std::uint64_t earlier = it == prior.end() ? 0 : it->second;
    if (count > earlier) out.emplace_back(index, count - earlier);
  }
  return out;
}

std::string format_ms(double ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.2fms", ns / 1e6);
  return buf;
}

int cmd_top(const Args& args, const std::string& socket_path) {
  const auto interval_ms = args.get_ll("interval-ms", 1000);
  const auto iterations = args.get_ll("iterations", 0);  // 0 = forever.
  const bool tty = ::isatty(STDOUT_FILENO) == 1;

  const std::string hist_name(obs::names::kServiceRequestNs);
  const std::vector<std::string> scalar_names = {
      std::string(obs::names::kServiceRequestsAccepted),
      std::string(obs::names::kServiceAnalysesOk),
      std::string(obs::names::kServiceAnalysesFailed),
      std::string(obs::names::kServiceAnalysesCancelled),
      std::string(obs::names::kServiceQuotaRejections),
      std::string(obs::names::kServiceLoadShed),
      std::string(obs::names::kServiceQueueDepth),
      std::string(obs::names::kServiceInflightRequests),
      std::string(obs::names::kServiceWorkersBusy),
      std::string(obs::names::kServiceSessionsOpen),
  };

  Connection conn(socket_path);
  conn.handshake();
  StatsSample prev = parse_stats(fetch_stats(conn), scalar_names, hist_name);
  auto prev_at = std::chrono::steady_clock::now();
  for (long long i = 0; iterations == 0 || i < iterations; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    const StatsSample now =
        parse_stats(fetch_stats(conn), scalar_names, hist_name);
    const auto now_at = std::chrono::steady_clock::now();
    const double dt = std::chrono::duration<double>(now_at - prev_at).count();

    const auto scalar = [&now](std::string_view name) -> std::uint64_t {
      const auto it = now.scalars.find(std::string(name));
      return it == now.scalars.end() ? 0 : it->second;
    };
    const auto rate = [&](std::string_view name) -> double {
      const auto it = prev.scalars.find(std::string(name));
      const std::uint64_t before = it == prev.scalars.end() ? 0 : it->second;
      const std::uint64_t current = scalar(name);
      const std::uint64_t delta = current > before ? current - before : 0;
      return dt > 0 ? static_cast<double>(delta) / dt : 0.0;
    };

    if (tty) std::cout << "\x1b[H\x1b[2J";
    std::cout << "catalystd top -- " << socket_path << "  (every "
              << interval_ms << "ms)\n";
    if (now.compiled_out) {
      std::cout << "observability compiled out (CATALYST_OBS=OFF); the\n"
                   "daemon answers STATS but records nothing.\n";
      std::cout.flush();
      prev = now;
      prev_at = now_at;
      continue;
    }
    const std::uint64_t window_count =
        now.hist_count > prev.hist_count ? now.hist_count - prev.hist_count
                                         : 0;
    const auto window = bucket_delta(now.hist_buckets, prev.hist_buckets);
    char line[160];
    std::snprintf(line, sizeof line,
                  "qps %7.1f   done %7.1f/s   window %6" PRIu64
                  " completed\n",
                  rate(obs::names::kServiceRequestsAccepted),
                  rate(obs::names::kServiceAnalysesOk), window_count);
    std::cout << line;
    std::cout << "latency  p50 " << format_ms(bucket_percentile(window,
                                                                window_count,
                                                                0.50))
              << "   p95 " << format_ms(bucket_percentile(window,
                                                          window_count, 0.95))
              << "   p99 " << format_ms(bucket_percentile(window,
                                                          window_count, 0.99))
              << "  (bucket upper bounds)\n";
    std::snprintf(line, sizeof line,
                  "pressure queue %4" PRIu64 "   inflight %4" PRIu64
                  "   busy workers %3" PRIu64 "   sessions %3" PRIu64 "\n",
                  scalar(obs::names::kServiceQueueDepth),
                  scalar(obs::names::kServiceInflightRequests),
                  scalar(obs::names::kServiceWorkersBusy),
                  scalar(obs::names::kServiceSessionsOpen));
    std::cout << line;
    std::snprintf(line, sizeof line,
                  "rejects  quota %6" PRIu64 " (%.1f/s)   shed %6" PRIu64
                  " (%.1f/s)   failed %6" PRIu64 "\n",
                  scalar(obs::names::kServiceQuotaRejections),
                  rate(obs::names::kServiceQuotaRejections),
                  scalar(obs::names::kServiceLoadShed),
                  rate(obs::names::kServiceLoadShed),
                  scalar(obs::names::kServiceAnalysesFailed));
    std::cout << line;
    std::cout.flush();
    prev = now;
    prev_at = now_at;
  }
  conn.send(wire::FrameType::bye, "");
  return 0;
}

// --- soak --------------------------------------------------------------------

/// One well-behaved client loop: M submit/poll round trips.  Treats
/// RETRY_AFTER (backs off and retries) and shutting_down (stops early) as
/// protocol-conformant outcomes; anything else unexpected is a failure.
bool soak_worker(const std::string& socket_path, const wire::SubmitBody& body,
                 int requests, std::atomic<std::uint64_t>& completed) {
  try {
    Connection conn(socket_path);
    conn.handshake();
    const std::string submit_payload = wire::encode_submit(body);
    for (int r = 0; r < requests; ++r) {
      conn.send(wire::FrameType::submit, submit_payload);
      const wire::Frame reply = conn.recv();
      if (reply.type == wire::FrameType::retry_after) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        --r;
        continue;
      }
      if (reply.type == wire::FrameType::error) {
        const wire::ErrorBody err = wire::decode_error(reply.payload);
        if (err.code == wire::ErrorCode::shutting_down) return true;
        std::cerr << "soak: submit rejected: " << wire::to_string(err.code)
                  << ": " << err.message << "\n";
        return false;
      }
      if (reply.type != wire::FrameType::accepted) {
        std::cerr << "soak: unexpected submit reply "
                  << wire::to_string(reply.type) << "\n";
        return false;
      }
      wire::Get cursor(reply.payload);
      const std::uint64_t id = cursor.u64();
      const wire::Frame done = poll_until_done(conn, id);
      if (done.type == wire::FrameType::result) {
        completed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (done.type == wire::FrameType::error) {
        const wire::ErrorBody err = wire::decode_error(done.payload);
        if (err.code == wire::ErrorCode::shutting_down) return true;
        std::cerr << "soak: request failed: " << wire::to_string(err.code)
                  << ": " << err.message << "\n";
        return false;
      }
      std::cerr << "soak: unexpected poll reply "
                << wire::to_string(done.type) << "\n";
      return false;
    }
    conn.send(wire::FrameType::bye, "");
    return true;
  } catch (const std::exception& e) {
    // A closed connection during daemon shutdown is a clean outcome; the
    // soak driver only runs this branch when SIGTERM races the loop.
    std::cerr << "soak: connection ended: " << e.what() << "\n";
    return true;
  }
}

/// The hostile client: sends garbage, expects a typed ERROR and a close --
/// and, crucially, for the daemon to still be serving others afterwards.
bool soak_garbage(const std::string& socket_path) {
  try {
    Connection conn(socket_path);
    // Deterministic "random" bytes: an xorshift stream, no real entropy
    // needed to exercise the malformed-frame path.
    std::string junk(4096, '\0');
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (char& c : junk) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      c = static_cast<char>(state & 0xFF);
    }
    conn.send_raw(junk.data(), junk.size());
    const wire::Frame reply = conn.recv();  // Typed ERROR expected.
    if (reply.type != wire::FrameType::error) {
      std::cerr << "garbage client: expected ERROR, got "
                << wire::to_string(reply.type) << "\n";
      return false;
    }
    try {
      for (;;) (void)conn.recv();  // Server must close after the ERROR.
    } catch (const std::exception&) {
      return true;
    }
  } catch (const std::exception&) {
    // Closed before we could read the ERROR -- acceptable teardown.
    return true;
  }
}

/// The slow-loris client: dribbles one header byte at a time, far slower
/// than the daemon's partial-frame timeout allows, and expects to be cut
/// off rather than allowed to squat on the connection.
bool soak_slow_loris(const std::string& socket_path, int dribble_ms) {
  try {
    Connection conn(socket_path);
    conn.handshake();
    const std::string frame =
        wire::encode_frame(wire::FrameType::submit, std::string(1024, 'x'));
    for (std::size_t i = 0; i < frame.size(); ++i) {
      conn.send_raw(frame.data() + i, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(dribble_ms));
    }
    // If the whole frame went through the timeout never fired: the dribble
    // was too fast relative to the daemon's setting.  Count it as failure
    // so misconfigured soaks are loud.
    std::cerr << "slow-loris client: was never disconnected\n";
    return false;
  } catch (const std::exception&) {
    return true;  // Cut off mid-dribble: the defense worked.
  }
}

int cmd_soak(const Args& args, const std::string& socket_path) {
  const int clients = static_cast<int>(args.get_ll("clients", 4));
  const int requests = static_cast<int>(args.get_ll("requests", 8));
  const std::string category = args.get("category", "branch");
  const wire::SubmitBody body = load_submission(args, category);
  const bool with_garbage = args.has("garbage");
  const bool with_slow_loris = args.has("slow-loris");
  const int dribble_ms = static_cast<int>(args.get_ll("dribble-ms", 150));

  const std::size_t total = static_cast<std::size_t>(clients) +
                            (with_garbage ? 1 : 0) +
                            (with_slow_loris ? 1 : 0);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<int> failures{0};
  core::parallel_for(total, static_cast<int>(total), [&](std::size_t unit) {
    bool ok = true;
    if (unit < static_cast<std::size_t>(clients)) {
      ok = soak_worker(socket_path, body, requests, completed);
    } else if (with_garbage &&
               unit == static_cast<std::size_t>(clients)) {
      ok = soak_garbage(socket_path);
    } else {
      ok = soak_slow_loris(socket_path, dribble_ms);
    }
    if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
  });
  std::cout << "soak: " << completed.load() << " analyses completed, "
            << failures.load() << " protocol failure(s)\n";
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::string socket_path = args.get("socket", "");
  if (args.positional.empty() || socket_path.empty()) return usage();
  const std::string& cmd = args.positional[0];
  try {
    if (cmd == "submit") return cmd_submit(args, socket_path);
    if (cmd == "poll") return cmd_poll(args, socket_path);
    if (cmd == "cancel") return cmd_cancel(args, socket_path);
    if (cmd == "stats") return cmd_stats(socket_path);
    if (cmd == "trace") return cmd_trace(args, socket_path);
    if (cmd == "top") return cmd_top(args, socket_path);
    if (cmd == "soak") return cmd_soak(args, socket_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
