// catalyst_client -- command-line client (and abuse harness) for catalystd.
//
//   catalyst_client --socket PATH submit CATEGORY --from ARCHIVE [--wait]
//                   [--deadline-ms N]
//   catalyst_client --socket PATH poll ID
//   catalyst_client --socket PATH cancel ID
//   catalyst_client --socket PATH soak --clients N --requests M
//                   --category C --from ARCHIVE [--garbage] [--slow-loris]
//
// submit sends a packed (binary) submission built from a measurement
// archive and prints the assigned request id; --wait polls until the
// result arrives and prints the rendered report (byte-identical to
// `catalyst analyze --from ARCHIVE CATEGORY` output).
//
// soak is the abuse harness scripts/check.sh drives: N concurrent client
// loops each pushing M requests through submit/poll, optionally joined by
// a garbage client (random bytes; expects a typed ERROR + close, never a
// hang) and a slow-loris client (dribbles a frame header; expects the
// daemon to cut it off).  Exit 0 = every interaction matched the protocol;
// any hang, crash, or protocol violation exits nonzero.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/core.hpp"
#include "core/parallel.hpp"
#include "service/engine.hpp"
#include "service/io.hpp"
#include "service/wire.hpp"

namespace {

using namespace catalyst;
namespace wire = service::wire;
namespace sio = service::io;

/// Blocking framed connection.
class Connection {
 public:
  explicit Connection(const std::string& socket_path)
      : fd_(sio::connect_unix(socket_path)) {}
  ~Connection() { sio::close_fd(fd_); }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  void send(wire::FrameType type, const std::string& payload) {
    const std::string bytes = wire::encode_frame(type, payload);
    std::size_t off = 0;
    while (off < bytes.size()) {
      const sio::IoResult r =
          sio::write_some(fd_, bytes.data() + off, bytes.size() - off);
      if (r.kind != sio::IoResult::Kind::ok) {
        throw std::runtime_error("connection lost while sending " +
                                 std::string(wire::to_string(type)));
      }
      off += r.bytes;
    }
  }

  void send_raw(const char* data, std::size_t size) {
    std::size_t off = 0;
    while (off < size) {
      const sio::IoResult r = sio::write_some(fd_, data + off, size - off);
      if (r.kind != sio::IoResult::Kind::ok) {
        throw std::runtime_error("connection lost during raw send");
      }
      off += r.bytes;
    }
  }

  /// Next frame; throws on EOF/error (the caller decides if that was
  /// expected -- e.g. the garbage client WANTS to see the close).
  wire::Frame recv() {
    for (;;) {
      if (auto frame = decoder_.next()) return *frame;
      if (decoder_.error().has_value()) {
        throw std::runtime_error("server sent an undecodable frame: " +
                                 decoder_.error()->message);
      }
      char buf[16 * 1024];
      const sio::IoResult r = sio::read_some(fd_, buf, sizeof(buf));
      if (r.kind == sio::IoResult::Kind::ok) {
        decoder_.feed(buf, r.bytes);
        continue;
      }
      if (r.kind == sio::IoResult::Kind::would_block) continue;  // Blocking fd.
      throw std::runtime_error("connection closed by server");
    }
  }

  /// HELLO/HELLO_OK exchange.
  void handshake() {
    send(wire::FrameType::hello, "catalyst_client/1");
    const wire::Frame reply = recv();
    if (reply.type != wire::FrameType::hello_ok) {
      throw std::runtime_error("handshake rejected: " +
                               std::string(wire::to_string(reply.type)));
    }
  }

 private:
  int fd_;
  wire::FrameDecoder decoder_;
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  long long get_ll(const std::string& key, long long fallback) const {
    const auto it = options.find(key);
    return it == options.end() ? fallback : std::stoll(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[a.substr(2)] = argv[++i];
      } else {
        args.options[a.substr(2)] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

int usage() {
  std::cerr
      << "usage:\n"
         "  catalyst_client --socket PATH submit CATEGORY --from ARCHIVE\n"
         "                  [--wait] [--deadline-ms N]\n"
         "  catalyst_client --socket PATH poll ID\n"
         "  catalyst_client --socket PATH cancel ID\n"
         "  catalyst_client --socket PATH soak --clients N --requests M\n"
         "                  --category C --from ARCHIVE [--garbage]\n"
         "                  [--slow-loris]\n";
  return 2;
}

wire::SubmitBody load_submission(const Args& args,
                                 const std::string& category) {
  const std::string path = args.get("from", "");
  if (path.empty()) throw std::runtime_error("--from ARCHIVE is required");
  const core::MeasurementArchive archive =
      core::load_archive(core::read_text_file(path));
  const auto deadline_ms = args.get_ll("deadline-ms", 0);
  return service::packed_submit_from_archive(
      archive, category,
      static_cast<std::uint64_t>(deadline_ms) * 1000000ull);
}

/// Polls until the request leaves the queue/analyzing states.  Returns the
/// terminal frame (RESULT / ERROR / CANCELLED).
wire::Frame poll_until_done(Connection& conn, std::uint64_t id) {
  for (;;) {
    std::string payload;
    wire::put_u64(payload, id);
    conn.send(wire::FrameType::poll, payload);
    const wire::Frame reply = conn.recv();
    if (reply.type != wire::FrameType::pending) return reply;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

int cmd_submit(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const std::string category = args.positional[1];
  const wire::SubmitBody body = load_submission(args, category);
  Connection conn(socket_path);
  conn.handshake();
  conn.send(wire::FrameType::submit, wire::encode_submit(body));
  const wire::Frame reply = conn.recv();
  if (reply.type == wire::FrameType::retry_after) {
    std::cerr << "server is overloaded (RETRY_AFTER)\n";
    return 3;
  }
  if (reply.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(reply.payload);
    std::cerr << "rejected: " << wire::to_string(err.code) << ": "
              << err.message << "\n";
    return 1;
  }
  if (reply.type != wire::FrameType::accepted) {
    std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
    return 1;
  }
  wire::Get cursor(reply.payload);
  const std::uint64_t id = cursor.u64();
  if (!args.has("wait")) {
    std::cout << id << "\n";
    return 0;
  }
  const wire::Frame done = poll_until_done(conn, id);
  if (done.type == wire::FrameType::result) {
    wire::Get result(done.payload);
    result.u64();  // request id
    std::cout << result.string();
    return 0;
  }
  if (done.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(done.payload);
    std::cerr << "failed: " << wire::to_string(err.code) << ": "
              << err.message << "\n";
    return 1;
  }
  std::cerr << "request was cancelled\n";
  return 1;
}

int cmd_poll(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const auto id = static_cast<std::uint64_t>(std::stoull(args.positional[1]));
  Connection conn(socket_path);
  conn.handshake();
  std::string payload;
  wire::put_u64(payload, id);
  conn.send(wire::FrameType::poll, payload);
  const wire::Frame reply = conn.recv();
  switch (reply.type) {
    case wire::FrameType::pending: {
      const char phase =
          reply.payload.size() > 8 ? reply.payload[8] : char{0};
      std::cout << (phase == 1 ? "analyzing\n" : "queued\n");
      return 0;
    }
    case wire::FrameType::result: {
      wire::Get cursor(reply.payload);
      cursor.u64();
      std::cout << cursor.string();
      return 0;
    }
    case wire::FrameType::cancelled:
      std::cout << "cancelled\n";
      return 0;
    case wire::FrameType::error: {
      const wire::ErrorBody err = wire::decode_error(reply.payload);
      std::cerr << wire::to_string(err.code) << ": " << err.message << "\n";
      return 1;
    }
    default:
      std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
      return 1;
  }
}

int cmd_cancel(const Args& args, const std::string& socket_path) {
  if (args.positional.size() < 2) return usage();
  const auto id = static_cast<std::uint64_t>(std::stoull(args.positional[1]));
  Connection conn(socket_path);
  conn.handshake();
  std::string payload;
  wire::put_u64(payload, id);
  conn.send(wire::FrameType::cancel, payload);
  const wire::Frame reply = conn.recv();
  if (reply.type == wire::FrameType::cancelled) {
    std::cout << "cancelled\n";
    return 0;
  }
  if (reply.type == wire::FrameType::error) {
    const wire::ErrorBody err = wire::decode_error(reply.payload);
    std::cerr << wire::to_string(err.code) << ": " << err.message << "\n";
    return 1;
  }
  std::cerr << "unexpected reply " << wire::to_string(reply.type) << "\n";
  return 1;
}

// --- soak --------------------------------------------------------------------

/// One well-behaved client loop: M submit/poll round trips.  Treats
/// RETRY_AFTER (backs off and retries) and shutting_down (stops early) as
/// protocol-conformant outcomes; anything else unexpected is a failure.
bool soak_worker(const std::string& socket_path, const wire::SubmitBody& body,
                 int requests, std::atomic<std::uint64_t>& completed) {
  try {
    Connection conn(socket_path);
    conn.handshake();
    const std::string submit_payload = wire::encode_submit(body);
    for (int r = 0; r < requests; ++r) {
      conn.send(wire::FrameType::submit, submit_payload);
      const wire::Frame reply = conn.recv();
      if (reply.type == wire::FrameType::retry_after) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        --r;
        continue;
      }
      if (reply.type == wire::FrameType::error) {
        const wire::ErrorBody err = wire::decode_error(reply.payload);
        if (err.code == wire::ErrorCode::shutting_down) return true;
        std::cerr << "soak: submit rejected: " << wire::to_string(err.code)
                  << ": " << err.message << "\n";
        return false;
      }
      if (reply.type != wire::FrameType::accepted) {
        std::cerr << "soak: unexpected submit reply "
                  << wire::to_string(reply.type) << "\n";
        return false;
      }
      wire::Get cursor(reply.payload);
      const std::uint64_t id = cursor.u64();
      const wire::Frame done = poll_until_done(conn, id);
      if (done.type == wire::FrameType::result) {
        completed.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (done.type == wire::FrameType::error) {
        const wire::ErrorBody err = wire::decode_error(done.payload);
        if (err.code == wire::ErrorCode::shutting_down) return true;
        std::cerr << "soak: request failed: " << wire::to_string(err.code)
                  << ": " << err.message << "\n";
        return false;
      }
      std::cerr << "soak: unexpected poll reply "
                << wire::to_string(done.type) << "\n";
      return false;
    }
    conn.send(wire::FrameType::bye, "");
    return true;
  } catch (const std::exception& e) {
    // A closed connection during daemon shutdown is a clean outcome; the
    // soak driver only runs this branch when SIGTERM races the loop.
    std::cerr << "soak: connection ended: " << e.what() << "\n";
    return true;
  }
}

/// The hostile client: sends garbage, expects a typed ERROR and a close --
/// and, crucially, for the daemon to still be serving others afterwards.
bool soak_garbage(const std::string& socket_path) {
  try {
    Connection conn(socket_path);
    // Deterministic "random" bytes: an xorshift stream, no real entropy
    // needed to exercise the malformed-frame path.
    std::string junk(4096, '\0');
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    for (char& c : junk) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      c = static_cast<char>(state & 0xFF);
    }
    conn.send_raw(junk.data(), junk.size());
    const wire::Frame reply = conn.recv();  // Typed ERROR expected.
    if (reply.type != wire::FrameType::error) {
      std::cerr << "garbage client: expected ERROR, got "
                << wire::to_string(reply.type) << "\n";
      return false;
    }
    try {
      for (;;) (void)conn.recv();  // Server must close after the ERROR.
    } catch (const std::exception&) {
      return true;
    }
  } catch (const std::exception&) {
    // Closed before we could read the ERROR -- acceptable teardown.
    return true;
  }
}

/// The slow-loris client: dribbles one header byte at a time, far slower
/// than the daemon's partial-frame timeout allows, and expects to be cut
/// off rather than allowed to squat on the connection.
bool soak_slow_loris(const std::string& socket_path, int dribble_ms) {
  try {
    Connection conn(socket_path);
    conn.handshake();
    const std::string frame =
        wire::encode_frame(wire::FrameType::submit, std::string(1024, 'x'));
    for (std::size_t i = 0; i < frame.size(); ++i) {
      conn.send_raw(frame.data() + i, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(dribble_ms));
    }
    // If the whole frame went through the timeout never fired: the dribble
    // was too fast relative to the daemon's setting.  Count it as failure
    // so misconfigured soaks are loud.
    std::cerr << "slow-loris client: was never disconnected\n";
    return false;
  } catch (const std::exception&) {
    return true;  // Cut off mid-dribble: the defense worked.
  }
}

int cmd_soak(const Args& args, const std::string& socket_path) {
  const int clients = static_cast<int>(args.get_ll("clients", 4));
  const int requests = static_cast<int>(args.get_ll("requests", 8));
  const std::string category = args.get("category", "branch");
  const wire::SubmitBody body = load_submission(args, category);
  const bool with_garbage = args.has("garbage");
  const bool with_slow_loris = args.has("slow-loris");
  const int dribble_ms = static_cast<int>(args.get_ll("dribble-ms", 150));

  const std::size_t total = static_cast<std::size_t>(clients) +
                            (with_garbage ? 1 : 0) +
                            (with_slow_loris ? 1 : 0);
  std::atomic<std::uint64_t> completed{0};
  std::atomic<int> failures{0};
  core::parallel_for(total, static_cast<int>(total), [&](std::size_t unit) {
    bool ok = true;
    if (unit < static_cast<std::size_t>(clients)) {
      ok = soak_worker(socket_path, body, requests, completed);
    } else if (with_garbage &&
               unit == static_cast<std::size_t>(clients)) {
      ok = soak_garbage(socket_path);
    } else {
      ok = soak_slow_loris(socket_path, dribble_ms);
    }
    if (!ok) failures.fetch_add(1, std::memory_order_relaxed);
  });
  std::cout << "soak: " << completed.load() << " analyses completed, "
            << failures.load() << " protocol failure(s)\n";
  return failures.load() == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  const std::string socket_path = args.get("socket", "");
  if (args.positional.empty() || socket_path.empty()) return usage();
  const std::string& cmd = args.positional[0];
  try {
    if (cmd == "submit") return cmd_submit(args, socket_path);
    if (cmd == "poll") return cmd_poll(args, socket_path);
    if (cmd == "cancel") return cmd_cancel(args, socket_path);
    if (cmd == "soak") return cmd_soak(args, socket_path);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
