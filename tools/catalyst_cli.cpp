// catalyst -- command-line front end for the analysis library.
//
//   catalyst list-machines
//   catalyst list-events <machine> [--filter SUBSTR]
//   catalyst signatures <category>
//   catalyst analyze <category> [--machine M] [--tau X] [--alpha Y]
//                    [--reps N] [--rounded] [--presets] [--json]
//   catalyst analyze --from FILE <category> [...]   (offline, from archive)
//   catalyst collect <category> [--machine M] [--reps N] --out FILE
//                    [--faults [SPEC]] [--checkpoint-dir DIR] [--resume]
//   catalyst validate <category> [--machine M] [--workloads N]
//
// Categories: cpu_flops | gpu_flops | branch | dcache | icache.
// Machines:   saphira | tempest | vesuvio (default depends on category).
//
// The collect/analyze split mirrors real CAT usage: `collect` runs the
// benchmarks and saves a measurement archive (JSON); `analyze --from`
// re-runs only the mathematical stages on the archived data.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/core.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pmu/pmu.hpp"
#include "service/catalog.hpp"

namespace {

using namespace catalyst;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;  // --key[=value] or --key value
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        args.options[a.substr(2, eq - 2)] = a.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[a.substr(2)] = argv[++i];
      } else {
        args.options[a.substr(2)] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

/// --faults [SPEC]: "" / flag alone means the canonical mid-rate plan;
/// otherwise the spec grammar of faults::parse_fault_plan ("off", "mid",
/// "seed=...,drop=...,...").  Returns nullopt when the flag is absent or
/// the plan parses to disabled.
std::optional<faults::FaultPlan> fault_plan_from_args(const Args& args) {
  if (!args.has("faults")) return std::nullopt;
  const std::string spec = args.get("faults", "");
  faults::FaultPlan plan =
      spec.empty() ? faults::FaultPlan::mid_rate()
                   : faults::parse_fault_plan(spec);
  if (!plan.enabled()) return std::nullopt;
  return plan;
}

/// Observability flags shared by analyze/collect: --trace-out FILE,
/// --manifest-out FILE, --stats.  Any of them turns the tracer on for the
/// whole run (the library also honors CATALYST_TRACE=1 without flags).
struct TraceArgs {
  std::string trace_out;
  std::string manifest_out;
  bool stats = false;
  bool any() const {
    return stats || !trace_out.empty() || !manifest_out.empty();
  }
};

TraceArgs trace_args_from(const Args& args) {
  TraceArgs t;
  t.trace_out = args.get("trace-out", "");
  t.manifest_out = args.get("manifest-out", "");
  t.stats = args.has("stats");
  if (t.any()) {
#if defined(CATALYST_OBS_DISABLED)
    std::cerr << "warning: catalyst was built with CATALYST_OBS=OFF; "
                 "trace/manifest/stats output will be empty\n";
#endif
    obs::Tracer::instance().enable();
  }
  return t;
}

/// Writes the requested trace/manifest/stats artifacts after a run.  The
/// manifest's git_sha comes from CATALYST_GIT_SHA (scripts/run_bench.sh and
/// scripts/check.sh export it) so the binary never shells out to git.
void write_trace_artifacts(const TraceArgs& t, const std::string& tool,
                           const std::string& category,
                           const std::string& machine_name,
                           const core::PipelineOptions& options,
                           const core::PipelineResult& result) {
  if (!t.any()) return;
  obs::Tracer& tracer = obs::Tracer::instance();
  const std::vector<obs::SpanRecord> spans = tracer.buffer().snapshot();
  const obs::MetricsSnapshot metrics = obs::Metrics::instance().snapshot();
  if (!t.trace_out.empty()) {
    core::write_text_file(t.trace_out, obs::to_chrome_trace(spans, metrics));
    std::cout << "wrote trace (" << spans.size() << " spans) to "
              << t.trace_out << "\n";
  }
  if (!t.manifest_out.empty()) {
    obs::RunManifest m;
    m.tool = tool;
    m.category = category;
    m.machine = machine_name;
    const char* sha = std::getenv("CATALYST_GIT_SHA");
    m.git_sha = (sha != nullptr && sha[0] != '\0') ? sha : "unknown";
    std::ostringstream cfg;
    cfg << category << "|machine=" << machine_name << "|tau=" << options.tau
        << "|alpha=" << options.alpha << "|reps=" << options.repetitions
        << "|threads=" << options.collection_threads
        << "|detrend=" << (options.detrend_drifting ? 1 : 0);
    m.config = cfg.str();
    m.config_hash = obs::config_hash(m.config);
    m.tau = options.tau;
    m.alpha = options.alpha;
    m.repetitions = options.repetitions;
    m.stages = result.stage_timings;
    m.funnel = {
        {"measured", result.all_event_names.size()},
        {"noise_kept", result.noise.kept.size()},
        {"projected", result.projection.x_event_names.size()},
        {"selected", result.xhat_events.size()},
        {"metrics", result.metrics.size()},
        {"quarantined", result.quarantined_events.size()},
    };
    m.metrics = metrics;
    m.spans_published = tracer.buffer().published();
    m.spans_dropped = tracer.buffer().dropped();
    core::write_text_file(t.manifest_out, obs::to_run_manifest(m));
    std::cout << "wrote run manifest to " << t.manifest_out << "\n";
  }
  if (t.stats) {
    std::cout << obs::format_stats(metrics, result.stage_timings,
                                   tracer.buffer().published(),
                                   tracer.buffer().dropped());
  }
}

// Machine and category resolution comes from the service catalog -- the
// single source of truth both front ends (this CLI and catalystd) share,
// which is what makes service-path and CLI-path reports byte-identical.
using service::category_setup;
using service::machine_by_name;

int usage() {
  std::cerr <<
      "usage:\n"
      "  catalyst list-machines\n"
      "  catalyst list-events <machine> [--filter SUBSTR]\n"
      "  catalyst signatures <category>\n"
      "  catalyst analyze <category> [--machine M] [--tau X] [--alpha Y]\n"
      "                   [--reps N] [--rounded] [--presets] [--json]\n"
      "                   [--from ARCHIVE] [--detrend] [--faults [SPEC]]\n"
      "                   [--trace-out FILE] [--manifest-out FILE] [--stats]\n"
      "  catalyst collect <category> [--machine M] [--reps N] --out FILE\n"
      "                   [--faults [SPEC]] [--checkpoint-dir DIR] [--resume]\n"
      "                   [--mode counting|sampling|strobed]\n"
      "                   [--kernel-span-us N] [--sample-period-us N]\n"
      "                   [--strobe-short-us N] [--no-dither]\n"
      "                   [--trace-out FILE] [--manifest-out FILE] [--stats]\n"
      "                   (--resume defaults the checkpoint dir to OUT.ckpt;\n"
      "                    SPEC: \"mid\" or \"drop=0.01,wrap=0.001,...\";\n"
      "                    sampling modes exclude --faults/--checkpoint-dir)\n"
      "  catalyst full-report [--machine M] [--out FILE] [--presets FILE]\n"
      "  catalyst validate <category> [--machine M] [--workloads N]\n"
      "categories: cpu_flops | gpu_flops | branch | dcache | icache |\n"
      "            gpu_dcache\n"
      "machines:   saphira | tempest | vesuvio\n";
  return 2;
}

int cmd_list_machines() {
  for (const auto& name : service::machine_names()) {
    const auto m = machine_by_name(name);
    std::cout << name << ": " << m->name() << ", " << m->num_events()
              << " events, " << m->physical_counters()
              << " physical counters\n";
  }
  return 0;
}

int cmd_list_events(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto machine = machine_by_name(args.positional[1]);
  if (!machine) {
    std::cerr << "unknown machine " << args.positional[1] << "\n";
    return 2;
  }
  const std::string filter = args.get("filter", "");
  std::size_t shown = 0;
  for (const auto& e : machine->events()) {
    if (!filter.empty() && e.name.find(filter) == std::string::npos) continue;
    std::cout << e.name << "  --  " << e.description << "\n";
    ++shown;
  }
  std::cout << "(" << shown << " events)\n";
  return 0;
}

int cmd_signatures(const Args& args) {
  if (args.positional.size() < 2) return usage();
  const auto setup = category_setup(args.positional[1]);
  if (!setup) {
    std::cerr << "unknown category " << args.positional[1] << "\n";
    return 2;
  }
  std::cout << core::format_signature_table("signatures: " + args.positional[1],
                                            setup->benchmark.basis.labels,
                                            setup->signatures);
  return 0;
}

int cmd_analyze(const Args& args) {
  if (args.positional.size() < 2) return usage();
  auto setup = category_setup(args.positional[1]);
  if (!setup) {
    std::cerr << "unknown category " << args.positional[1] << "\n";
    return 2;
  }
  const std::string machine_name =
      args.get("machine", setup->default_machine);
  const auto machine = machine_by_name(machine_name);
  if (!machine) {
    std::cerr << "unknown machine " << machine_name << "\n";
    return 2;
  }
  setup->options.tau = args.get_double("tau", setup->options.tau);
  setup->options.alpha = args.get_double("alpha", setup->options.alpha);
  setup->options.repetitions = static_cast<std::size_t>(
      args.get_double("reps", double(setup->options.repetitions)));
  if (args.has("detrend")) setup->options.detrend_drifting = true;
  const TraceArgs trace = trace_args_from(args);

  core::PipelineResult result;
  std::string source;
  if (args.has("from")) {
    const auto archive =
        core::load_archive(core::read_text_file(args.get("from", "")));
    result = core::analyze_archive(archive, setup->signatures,
                                   setup->options);
    result.quarantined_events = archive.quarantined;
    result.collection = archive.collection_report;
    source = "archive " + args.get("from", "") + " (" +
             archive.machine_name + ")";
  } else if (const auto plan = fault_plan_from_args(args)) {
    faults::RealClock clock;
    vpapi::ResilienceOptions resilience;
    resilience.clock = &clock;
    result = core::run_pipeline_resilient(*machine, setup->benchmark,
                                          setup->signatures, setup->options,
                                          &*plan, resilience);
    source = "machine " + machine->name() + " (faulty)";
  } else {
    result = core::run_pipeline(*machine, setup->benchmark,
                                setup->signatures, setup->options);
    source = "machine " + machine->name();
  }
  if (args.has("markdown")) {
    std::cout << core::format_markdown_report(
        source + " / " + setup->benchmark.name, result);
  } else {
    std::cout << source << ", benchmark " << setup->benchmark.name << ": "
              << result.all_event_names.size() << " events -> "
              << result.noise.kept.size() << " after noise filter -> "
              << result.projection.x_event_names.size()
              << " representable -> " << result.xhat_events.size()
              << " selected\n\n";
    if (result.collection.has_value()) {
      std::cout << core::format_collection_report(*result.collection) << "\n";
    }
    std::cout << core::format_selected_events(result) << "\n";
    std::cout << core::format_metric_table("metrics", result.metrics,
                                           args.has("rounded"));
  }
  if (args.has("presets")) {
    const auto presets = core::make_presets(result.metrics);
    std::cout << "\n"
              << (args.has("json") ? core::presets_to_json(presets)
                                   : core::presets_to_table(presets));
  }
  write_trace_artifacts(trace, "catalyst analyze", args.positional[1],
                        machine_name, setup->options, result);
  return 0;
}

int cmd_collect(const Args& args) {
  if (args.positional.size() < 2 || !args.has("out")) return usage();
  auto setup = category_setup(args.positional[1]);
  if (!setup) {
    std::cerr << "unknown category " << args.positional[1] << "\n";
    return 2;
  }
  const auto machine =
      machine_by_name(args.get("machine", setup->default_machine));
  if (!machine) return usage();
  setup->options.repetitions = static_cast<std::size_t>(
      args.get_double("reps", double(setup->options.repetitions)));

  const auto plan = fault_plan_from_args(args);
  const TraceArgs trace = trace_args_from(args);
  const std::string machine_name = args.get("machine", setup->default_machine);
  const bool resume = args.has("resume");
  std::string checkpoint_dir = args.get("checkpoint-dir", "");
  if (resume && checkpoint_dir.empty()) {
    checkpoint_dir = args.get("out", "") + ".ckpt";
  }

  const vpapi::CollectionMode mode =
      vpapi::collection_mode_from_string(args.get("mode", "counting"));
  if (mode != vpapi::CollectionMode::counting) {
    if (plan.has_value() || !checkpoint_dir.empty()) {
      std::cerr << "sampling modes do not combine with --faults or "
                   "--checkpoint-dir (counting-mode features)\n";
      return 2;
    }
    vpapi::SampleSchedule schedule;
    schedule.kernel_span_ns = static_cast<std::uint64_t>(
        args.get_double("kernel-span-us",
                        double(schedule.kernel_span_ns) / 1000.0) *
        1000.0);
    schedule.period_ns = static_cast<std::uint64_t>(
        args.get_double("sample-period-us",
                        double(schedule.period_ns) / 1000.0) *
        1000.0);
    // The short period only matters for strobed runs; cap the default at
    // the long period so a fine --sample-period-us alone stays valid.
    schedule.short_period_ns = static_cast<std::uint64_t>(
        args.get_double("strobe-short-us",
                        double(std::min(schedule.short_period_ns,
                                        schedule.period_ns)) /
                            1000.0) *
        1000.0);
    schedule.dither = !args.has("no-dither");
    schedule.validate();
    const auto out =
        core::run_pipeline_sampled(*machine, setup->benchmark,
                                   setup->signatures, setup->options, mode,
                                   schedule);
    core::write_text_file(args.get("out", ""),
                          core::save_archive(out.archive));
    std::cout << "wrote " << out.archive.event_names.size() << " events x "
              << setup->options.repetitions << " repetitions x "
              << out.archive.slot_names.size() << " slots ("
              << vpapi::to_string(mode) << " mode, "
              << (out.archive.sample_trace.has_value()
                      ? out.archive.sample_trace->runs.size()
                      : std::size_t{0})
              << " sample-trace runs) to " << args.get("out", "") << "\n";
    write_trace_artifacts(trace, "catalyst collect", args.positional[1],
                          machine_name, setup->options, out.result);
    return 0;
  }

  if (plan.has_value() || !checkpoint_dir.empty()) {
    // Resilient path: retry/quarantine + optional checkpoint/resume.
    faults::RealClock clock;
    core::CampaignOptions campaign;
    campaign.pipeline = setup->options;
    campaign.fault_plan = plan.has_value() ? &*plan : nullptr;
    campaign.resilience.clock = &clock;
    campaign.checkpoint.directory = checkpoint_dir;
    campaign.checkpoint.resume = resume;
    const auto out = core::run_campaign(*machine, setup->benchmark,
                                        setup->signatures, campaign);
    core::write_text_file(args.get("out", ""),
                          core::save_archive(out.archive));
    if (out.batches_resumed > 0) {
      std::cout << "resumed " << out.batches_resumed << "/"
                << out.batches_total << " batches from " << checkpoint_dir
                << "\n";
    }
    if (out.result.collection.has_value()) {
      std::cout << core::format_collection_report(*out.result.collection);
    }
    std::cout << "wrote " << out.archive.event_names.size() << " events x "
              << setup->options.repetitions << " repetitions x "
              << out.archive.slot_names.size() << " slots to "
              << args.get("out", "") << "\n";
    write_trace_artifacts(trace, "catalyst collect", args.positional[1],
                          machine_name, setup->options, out.result);
    return 0;
  }

  const auto result = core::run_pipeline(*machine, setup->benchmark,
                                         setup->signatures, setup->options);
  const auto archive = core::make_archive(*machine, setup->benchmark, result);
  core::write_text_file(args.get("out", ""), core::save_archive(archive));
  std::cout << "wrote " << archive.event_names.size() << " events x "
            << setup->options.repetitions << " repetitions x "
            << archive.slot_names.size() << " slots to "
            << args.get("out", "") << "\n";
  write_trace_artifacts(trace, "catalyst collect", args.positional[1],
                        machine_name, setup->options, result);
  return 0;
}

int cmd_full_report(const Args& args) {
  const std::string machine_name = args.get("machine", "saphira");
  const auto machine = machine_by_name(machine_name);
  if (!machine) {
    std::cerr << "unknown machine " << machine_name << "\n";
    return 2;
  }
  // Run every category whose benchmarks this machine can host (the GPU
  // categories only make sense on the GPU model and vice versa).
  std::vector<std::string> categories;
  if (machine_name == "tempest") {
    categories = {"gpu_flops", "gpu_dcache"};
  } else {
    categories = {"cpu_flops", "branch", "dcache", "icache"};
  }

  std::ostringstream report;
  report << "# Event-to-metric report for " << machine->name() << "\n\n"
         << machine->num_events() << " raw events, "
         << machine->physical_counters() << " physical counters.\n\n";
  std::vector<core::PresetDefinition> all_presets;
  for (const auto& category : categories) {
    auto setup = category_setup(category);
    const auto result = core::run_pipeline(*machine, setup->benchmark,
                                           setup->signatures, setup->options);
    report << core::format_markdown_report(
                  "Category: " + category, result)
           << "\nBasis: "
           << core::basis_verdict(
                  core::diagnose_basis(setup->benchmark.basis))
           << "\n\n";
    auto presets = core::make_presets(result.metrics);
    all_presets.insert(all_presets.end(), presets.begin(), presets.end());
  }
  report << "# Combined preset table\n\n```\n"
         << core::presets_to_table(all_presets) << "```\n";

  if (args.has("out")) {
    core::write_text_file(args.get("out", ""), report.str());
    std::cout << "wrote report (" << all_presets.size() << " presets, "
              << categories.size() << " categories) to "
              << args.get("out", "") << "\n";
  } else {
    std::cout << report.str();
  }
  if (args.has("presets")) {
    core::write_text_file(args.get("presets", ""),
                          core::presets_to_json(all_presets));
    std::cout << "wrote " << all_presets.size() << " presets to "
              << args.get("presets", "") << "\n";
  }
  return 0;
}

int cmd_validate(const Args& args) {
  if (args.positional.size() < 2) return usage();
  auto setup = category_setup(args.positional[1]);
  if (!setup) {
    std::cerr << "unknown category " << args.positional[1] << "\n";
    return 2;
  }
  const auto machine =
      machine_by_name(args.get("machine", setup->default_machine));
  if (!machine) return usage();
  const auto workloads =
      static_cast<std::size_t>(args.get_double("workloads", 10));

  const auto result = core::run_pipeline(*machine, setup->benchmark,
                                         setup->signatures, setup->options);
  const auto reports =
      core::validate_all(*machine, setup->benchmark, result.metrics,
                         setup->signatures, workloads, 0xC11);
  for (const auto& r : reports) {
    std::cout << r.metric_name << ": mean rel. error "
              << r.mean_relative_error << ", max " << r.max_relative_error
              << " over " << r.samples.size() << " workloads\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.positional.empty()) return usage();
  const std::string& cmd = args.positional[0];
  try {
    if (cmd == "list-machines") return cmd_list_machines();
    if (cmd == "list-events") return cmd_list_events(args);
    if (cmd == "signatures") return cmd_signatures(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "collect") return cmd_collect(args);
    if (cmd == "full-report") return cmd_full_report(args);
    if (cmd == "validate") return cmd_validate(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return usage();
}
