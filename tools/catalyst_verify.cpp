// catalyst_verify -- ground-truth recovery harness front end.
//
//   catalyst_verify one --seed N [--noise L] [--orphan [--gamma G]]
//                       [--verbose]
//   catalyst_verify sweep --seeds N [--start S] [--noise L]
//                       [--min-exact FRAC]
//   catalyst_verify metamorphic --seed N [--noise L]
//
// `one` generates the synthetic model for a seed, runs the full analysis
// pipeline, and judges every planted metric (exact / alternative /
// degraded / wrong).  `sweep` repeats that over a seed range and reports
// the recovery-rate census; it fails if any metric is judged WRONG or the
// exact-recovery rate falls below --min-exact.  `metamorphic` checks that
// the verdicts are invariant under event reordering, slot rescaling,
// noise reseeding, and collection thread count.
//
// Exit codes: 0 recovered (exact/alternative only), 2 detectable
// degradation, 3 silent wrongness or a broken metamorphic invariant,
// 64 usage error.  Every failure line carries the seed and a one-line
// reproduction command.
#include <cstdint>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "modelgen/modelgen.hpp"

namespace {

using namespace catalyst;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  double get_double(const std::string& key, double fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stod(it->second);
  }
  std::uint64_t get_u64(const std::string& key, std::uint64_t fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : std::stoull(it->second);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0) {
      const auto eq = a.find('=');
      if (eq != std::string::npos) {
        args.options[a.substr(2, eq - 2)] = a.substr(eq + 1);
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        args.options[a.substr(2)] = argv[++i];
      } else {
        args.options[a.substr(2)] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

modelgen::GeneratorSpec spec_from_args(const Args& args, std::uint64_t seed) {
  modelgen::GeneratorSpec spec;
  spec.seed = seed;
  spec.noise_level = args.get_double("noise", spec.noise_level);
  if (args.has("orphan")) {
    spec.orphan_dimension = true;
    spec.correlation_gamma =
        args.get_double("gamma", spec.correlation_gamma);
  }
  return spec;
}

int exit_code_for(modelgen::Verdict overall) {
  switch (overall) {
    case modelgen::Verdict::exact:
    case modelgen::Verdict::alternative: return 0;
    case modelgen::Verdict::degraded: return 2;
    case modelgen::Verdict::wrong: return 3;
  }
  return 3;
}

int cmd_one(const Args& args) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const auto model = modelgen::generate(spec_from_args(args, seed));
  const auto outcome = modelgen::run_and_verify(model);
  std::cout << outcome.describe();
  if (args.has("verbose")) {
    std::cout << "machine: " << model.machine_spec.name << ", "
              << model.machine_spec.events.size() << " events, "
              << model.machine_spec.physical_counters << " counters, dims "
              << model.dims << ", slots " << model.benchmark.slots.size()
              << "\n";
  }
  return exit_code_for(outcome.overall);
}

int cmd_sweep(const Args& args) {
  const std::uint64_t count = args.get_u64("seeds", 200);
  const std::uint64_t start = args.get_u64("start", 1);
  const double min_exact = args.get_double("min-exact", 0.95);
  std::size_t census[4] = {0, 0, 0, 0};
  std::size_t exact_models = 0;
  bool any_wrong = false;
  for (std::uint64_t seed = start; seed < start + count; ++seed) {
    const auto model = modelgen::generate(spec_from_args(args, seed));
    const auto outcome = modelgen::run_and_verify(model);
    census[static_cast<int>(outcome.overall)]++;
    if (outcome.all_exact()) exact_models++;
    if (outcome.any_wrong()) {
      any_wrong = true;
      std::cout << "WRONG:\n" << outcome.describe();
    } else if (outcome.overall != modelgen::Verdict::exact) {
      std::cout << "note: seed " << seed << " overall "
                << to_string(outcome.overall) << " -- " << outcome.repro()
                << "\n";
    }
  }
  const double rate =
      count == 0 ? 0.0 : static_cast<double>(exact_models) / count;
  std::cout << "sweep: " << count << " models, exact " << census[0]
            << ", alternative " << census[1] << ", degraded " << census[2]
            << ", wrong " << census[3] << " (exact rate " << rate << ")\n";
  if (any_wrong) return 3;
  return rate >= min_exact ? 0 : 2;
}

int cmd_metamorphic(const Args& args) {
  const std::uint64_t seed = args.get_u64("seed", 1);
  const auto model = modelgen::generate(spec_from_args(args, seed));
  const auto base = modelgen::run_and_verify(model);
  std::cout << "base:\n" << base.describe();

  struct Variant {
    const char* name;
    modelgen::GeneratedModel model;
  };
  const std::vector<Variant> variants = {
      {"reorder", modelgen::reorder_events(model, seed ^ 0x9e3779b9)},
      {"rescale", modelgen::rescale_slots(model, 8.0)},
      {"reseed", modelgen::reseed_noise(model, seed * 2654435761u + 17)},
      {"threads", modelgen::with_collection_threads(model, 4)},
  };
  bool ok = true;
  for (const Variant& variant : variants) {
    const auto outcome = modelgen::run_and_verify(variant.model);
    const auto eq = modelgen::equivalent_outcomes(base, outcome);
    std::cout << variant.name << ": "
              << (eq.equivalent ? "equivalent" : "BROKEN " + eq.detail)
              << "\n";
    if (!eq.equivalent) {
      ok = false;
      std::cout << outcome.describe();
    }
  }
  return ok ? exit_code_for(base.overall) : 3;
}

int usage() {
  std::cerr << "usage: catalyst_verify one|sweep|metamorphic [options]\n"
               "  one         --seed N [--noise L] [--orphan [--gamma G]]\n"
               "  sweep       --seeds N [--start S] [--noise L] "
               "[--min-exact F]\n"
               "  metamorphic --seed N [--noise L]\n";
  return 64;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  if (args.positional.empty()) return usage();
  try {
    const std::string& cmd = args.positional[0];
    if (cmd == "one") return cmd_one(args);
    if (cmd == "sweep") return cmd_sweep(args);
    if (cmd == "metamorphic") return cmd_metamorphic(args);
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "catalyst_verify: " << e.what() << "\n";
    return 64;
  }
}
