#!/usr/bin/env python3
"""Schema validator for catalyst::obs artifacts.

Validates the two JSON formats the CLI emits:

  * Chrome trace_event files (--trace-out):   --kind trace
  * run manifests (--manifest-out):           --kind manifest

Usage:
  tools/trace_schema_check.py --kind trace run.json \
      --require-span stage.noise_filter --require-span stage.qrcp
  tools/trace_schema_check.py --kind manifest manifest.json

Exit code 0 when the file is schema-valid (and every --require-span name
occurs at least once); 1 with a diagnostic otherwise.  Stdlib only -- this
runs in CI (scripts/check.sh obs) and in a ctest.
"""
from __future__ import annotations

import argparse
import json
import sys

MANIFEST_FORMAT = "catalyst-run-manifest-v1"


class SchemaError(Exception):
    pass


def expect(cond: bool, msg: str) -> None:
    if not cond:
        raise SchemaError(msg)


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_trace(doc, required_spans) -> int:
    expect(isinstance(doc, dict), "trace root must be an object")
    expect("traceEvents" in doc, "trace missing 'traceEvents'")
    events = doc["traceEvents"]
    expect(isinstance(events, list), "'traceEvents' must be an array")
    seen = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        expect(isinstance(ev, dict), f"{where} must be an object")
        expect(ev.get("ph") == "X",
               f"{where}: ph must be 'X' (complete event), got {ev.get('ph')!r}")
        expect(isinstance(ev.get("name"), str) and ev["name"],
               f"{where}: missing/empty 'name'")
        for key in ("ts", "dur"):
            v = ev.get(key)
            expect(isinstance(v, (int, float)) and not isinstance(v, bool),
                   f"{where}: '{key}' must be a number")
            expect(v >= 0, f"{where}: '{key}' must be >= 0, got {v}")
        expect(is_uint(ev.get("pid")), f"{where}: 'pid' must be a non-negative int")
        expect(is_uint(ev.get("tid")), f"{where}: 'tid' must be a non-negative int")
        expect(isinstance(ev.get("args", {}), dict),
               f"{where}: 'args' must be an object")
        seen[ev["name"]] = seen.get(ev["name"], 0) + 1
    other = doc.get("otherData", {})
    expect(isinstance(other, dict), "'otherData' must be an object")
    counters = other.get("counters", {})
    expect(isinstance(counters, dict), "'otherData.counters' must be an object")
    for name, value in counters.items():
        expect(is_uint(value),
               f"counter '{name}' must be a non-negative int, got {value!r}")
    missing = [s for s in required_spans if s not in seen]
    expect(not missing, f"required span(s) never recorded: {', '.join(missing)}")
    print(f"trace OK: {len(events)} spans, {len(seen)} distinct names, "
          f"{len(counters)} counters")
    return 0


def check_manifest(doc, required_spans) -> int:
    expect(isinstance(doc, dict), "manifest root must be an object")
    expect(doc.get("format") == MANIFEST_FORMAT,
           f"manifest 'format' must be '{MANIFEST_FORMAT}', got "
           f"{doc.get('format')!r}")
    for key in ("tool", "category", "machine", "git_sha", "config",
                "config_hash"):
        expect(isinstance(doc.get(key), str) and doc[key],
               f"manifest '{key}' must be a non-empty string")
    expect(len(doc["config_hash"]) == 16 and
           all(c in "0123456789abcdef" for c in doc["config_hash"]),
           "manifest 'config_hash' must be 16 lowercase hex digits")
    for key in ("tau", "alpha"):
        expect(isinstance(doc.get(key), (int, float)) and
               not isinstance(doc.get(key), bool),
               f"manifest '{key}' must be a number")
    expect(is_uint(doc.get("repetitions")),
           "manifest 'repetitions' must be a non-negative int")
    stages = doc.get("stages")
    expect(isinstance(stages, list), "manifest 'stages' must be an array")
    stage_names = set()
    for i, st in enumerate(stages):
        expect(isinstance(st, dict) and isinstance(st.get("name"), str) and
               is_uint(st.get("wall_ns")),
               f"stages[{i}] must be {{name: str, wall_ns: uint}}")
        stage_names.add(st["name"])
    funnel = doc.get("funnel")
    expect(isinstance(funnel, dict) and funnel,
           "manifest 'funnel' must be a non-empty object")
    for key in ("measured", "noise_kept", "projected", "selected"):
        expect(is_uint(funnel.get(key)),
               f"funnel '{key}' must be a non-negative int")
    expect(funnel["measured"] >= funnel["noise_kept"] >= funnel["projected"]
           >= funnel["selected"],
           "funnel counts must be non-increasing "
           "(measured >= noise_kept >= projected >= selected)")
    expect(isinstance(doc.get("counters"), dict),
           "manifest 'counters' must be an object")
    expect(isinstance(doc.get("histograms"), dict),
           "manifest 'histograms' must be an object")
    expect(is_uint(doc.get("spans_published")),
           "manifest 'spans_published' must be a non-negative int")
    expect(is_uint(doc.get("spans_dropped")),
           "manifest 'spans_dropped' must be a non-negative int")
    # --require-span names are matched against the aggregated stage list
    # (manifests carry stage timings, not individual spans).
    wanted = {s[len("stage."):] if s.startswith("stage.") else s
              for s in required_spans}
    missing = sorted(wanted - stage_names)
    expect(not missing, f"required stage(s) missing: {', '.join(missing)}")
    print(f"manifest OK: {doc['tool']} / {doc['category']} on "
          f"{doc['machine']}, {len(stages)} stages, sha {doc['git_sha'][:12]}")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="JSON artifact to validate")
    ap.add_argument("--kind", choices=("trace", "manifest"), required=True)
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a span/stage with this name is present "
                         "(repeatable)")
    args = ap.parse_args()
    try:
        with open(args.file, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{args.file}: unreadable or invalid JSON: {e}", file=sys.stderr)
        return 1
    try:
        if args.kind == "trace":
            return check_trace(doc, args.require_span)
        return check_manifest(doc, args.require_span)
    except SchemaError as e:
        print(f"{args.file}: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
