#!/usr/bin/env python3
"""Schema validator for catalyst::obs artifacts.

Validates the four JSON formats the tools emit:

  * Chrome trace_event files (--trace-out,
    `catalyst_client trace <id>` fragments):  --kind trace
  * run manifests (--manifest-out):           --kind manifest
  * metrics expositions (STATS scrapes,
    `catalyst_client stats --json`):          --kind metrics
  * flight-recorder dumps (SIGUSR1 /
    crash-path --flight-dump files):          --kind flight

Usage:
  tools/trace_schema_check.py --kind trace run.json \
      --require-span stage.noise_filter --require-span stage.qrcp
  tools/trace_schema_check.py --kind manifest manifest.json
  tools/trace_schema_check.py --kind metrics stats2.json \
      --monotone-baseline stats1.json
  tools/trace_schema_check.py --kind flight flight.json --require-trace 77

Exit code 0 when the file is schema-valid (and every --require-span /
--require-trace / --monotone-baseline condition holds); 1 with a diagnostic
otherwise.  Stdlib only -- this runs in CI (scripts/check.sh obs and
service_soak) and in a ctest.
"""
from __future__ import annotations

import argparse
import json
import sys

MANIFEST_FORMAT = "catalyst-run-manifest-v1"
METRICS_FORMAT = "catalyst-metrics-v1"
FLIGHT_FORMAT = "catalyst-flight-recorder-v1"
FLIGHT_VERDICTS = ("ok", "cancelled", "deadline", "failed")


class SchemaError(Exception):
    pass


def expect(cond: bool, msg: str) -> None:
    if not cond:
        raise SchemaError(msg)


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_int(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool)


def is_number_or_null(v) -> bool:
    # json_number() degrades non-finite doubles to null.
    return v is None or (isinstance(v, (int, float)) and
                         not isinstance(v, bool))


def check_trace(doc, required_spans) -> int:
    expect(isinstance(doc, dict), "trace root must be an object")
    expect("traceEvents" in doc, "trace missing 'traceEvents'")
    events = doc["traceEvents"]
    expect(isinstance(events, list), "'traceEvents' must be an array")
    seen = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        expect(isinstance(ev, dict), f"{where} must be an object")
        expect(ev.get("ph") == "X",
               f"{where}: ph must be 'X' (complete event), got {ev.get('ph')!r}")
        expect(isinstance(ev.get("name"), str) and ev["name"],
               f"{where}: missing/empty 'name'")
        for key in ("ts", "dur"):
            v = ev.get(key)
            expect(isinstance(v, (int, float)) and not isinstance(v, bool),
                   f"{where}: '{key}' must be a number")
            expect(v >= 0, f"{where}: '{key}' must be >= 0, got {v}")
        expect(is_uint(ev.get("pid")), f"{where}: 'pid' must be a non-negative int")
        expect(is_uint(ev.get("tid")), f"{where}: 'tid' must be a non-negative int")
        expect(isinstance(ev.get("args", {}), dict),
               f"{where}: 'args' must be an object")
        seen[ev["name"]] = seen.get(ev["name"], 0) + 1
    other = doc.get("otherData", {})
    expect(isinstance(other, dict), "'otherData' must be an object")
    counters = other.get("counters", {})
    expect(isinstance(counters, dict), "'otherData.counters' must be an object")
    for name, value in counters.items():
        expect(is_uint(value),
               f"counter '{name}' must be a non-negative int, got {value!r}")
    missing = [s for s in required_spans if s not in seen]
    expect(not missing, f"required span(s) never recorded: {', '.join(missing)}")
    print(f"trace OK: {len(events)} spans, {len(seen)} distinct names, "
          f"{len(counters)} counters")
    return 0


def check_manifest(doc, required_spans) -> int:
    expect(isinstance(doc, dict), "manifest root must be an object")
    expect(doc.get("format") == MANIFEST_FORMAT,
           f"manifest 'format' must be '{MANIFEST_FORMAT}', got "
           f"{doc.get('format')!r}")
    for key in ("tool", "category", "machine", "git_sha", "config",
                "config_hash"):
        expect(isinstance(doc.get(key), str) and doc[key],
               f"manifest '{key}' must be a non-empty string")
    expect(len(doc["config_hash"]) == 16 and
           all(c in "0123456789abcdef" for c in doc["config_hash"]),
           "manifest 'config_hash' must be 16 lowercase hex digits")
    for key in ("tau", "alpha"):
        expect(isinstance(doc.get(key), (int, float)) and
               not isinstance(doc.get(key), bool),
               f"manifest '{key}' must be a number")
    expect(is_uint(doc.get("repetitions")),
           "manifest 'repetitions' must be a non-negative int")
    stages = doc.get("stages")
    expect(isinstance(stages, list), "manifest 'stages' must be an array")
    stage_names = set()
    for i, st in enumerate(stages):
        expect(isinstance(st, dict) and isinstance(st.get("name"), str) and
               is_uint(st.get("wall_ns")),
               f"stages[{i}] must be {{name: str, wall_ns: uint}}")
        stage_names.add(st["name"])
    funnel = doc.get("funnel")
    expect(isinstance(funnel, dict) and funnel,
           "manifest 'funnel' must be a non-empty object")
    for key in ("measured", "noise_kept", "projected", "selected"):
        expect(is_uint(funnel.get(key)),
               f"funnel '{key}' must be a non-negative int")
    expect(funnel["measured"] >= funnel["noise_kept"] >= funnel["projected"]
           >= funnel["selected"],
           "funnel counts must be non-increasing "
           "(measured >= noise_kept >= projected >= selected)")
    expect(isinstance(doc.get("counters"), dict),
           "manifest 'counters' must be an object")
    expect(isinstance(doc.get("histograms"), dict),
           "manifest 'histograms' must be an object")
    expect(is_uint(doc.get("spans_published")),
           "manifest 'spans_published' must be a non-negative int")
    expect(is_uint(doc.get("spans_dropped")),
           "manifest 'spans_dropped' must be a non-negative int")
    # --require-span names are matched against the aggregated stage list
    # (manifests carry stage timings, not individual spans).
    wanted = {s[len("stage."):] if s.startswith("stage.") else s
              for s in required_spans}
    missing = sorted(wanted - stage_names)
    expect(not missing, f"required stage(s) missing: {', '.join(missing)}")
    print(f"manifest OK: {doc['tool']} / {doc['category']} on "
          f"{doc['machine']}, {len(stages)} stages, sha {doc['git_sha'][:12]}")
    return 0


def check_counter_map(doc, key) -> dict:
    counters = doc.get(key)
    expect(isinstance(counters, dict), f"metrics '{key}' must be an object")
    return counters


def check_metrics(doc, baseline) -> int:
    expect(isinstance(doc, dict), "metrics root must be an object")
    expect(doc.get("format") == METRICS_FORMAT,
           f"metrics 'format' must be '{METRICS_FORMAT}', got "
           f"{doc.get('format')!r}")
    compiled_out = doc.get("compiled_out", False)
    expect(isinstance(compiled_out, bool),
           "'compiled_out' must be a boolean when present")
    counters = check_counter_map(doc, "counters")
    for name, value in counters.items():
        expect(is_uint(value),
               f"counter '{name}' must be a non-negative int, got {value!r}")
    gauges = check_counter_map(doc, "gauges")
    for name, value in gauges.items():
        expect(is_int(value), f"gauge '{name}' must be an int, got {value!r}")
    hists = doc.get("histograms")
    expect(isinstance(hists, list), "metrics 'histograms' must be an array")
    for i, h in enumerate(hists):
        where = f"histograms[{i}]"
        expect(isinstance(h, dict), f"{where} must be an object")
        expect(isinstance(h.get("name"), str) and h["name"],
               f"{where}: missing/empty 'name'")
        expect(is_uint(h.get("count")), f"{where}: 'count' must be a uint")
        for key in ("sum", "min", "max"):
            expect(is_number_or_null(h.get(key)),
                   f"{where}: '{key}' must be a number or null")
        expect(is_uint(h.get("num_buckets")) and h["num_buckets"] > 0,
               f"{where}: 'num_buckets' must be a positive int")
        expect(is_int(h.get("bucket_bias")),
               f"{where}: 'bucket_bias' must be an int")
        buckets = h.get("buckets")
        expect(isinstance(buckets, list), f"{where}: 'buckets' must be an "
               "array of [index, count] pairs")
        prev_index = -1
        for j, pair in enumerate(buckets):
            expect(isinstance(pair, list) and len(pair) == 2 and
                   is_uint(pair[0]) and is_uint(pair[1]),
                   f"{where}.buckets[{j}] must be [uint index, uint count]")
            expect(pair[0] < h["num_buckets"],
                   f"{where}.buckets[{j}]: index {pair[0]} out of range "
                   f"(num_buckets {h['num_buckets']})")
            expect(pair[0] > prev_index,
                   f"{where}.buckets[{j}]: indices must be strictly "
                   "increasing")
            expect(pair[1] > 0,
                   f"{where}.buckets[{j}]: zero-count buckets are elided "
                   "by the exposition, so a 0 here is malformed")
            prev_index = pair[0]
    if compiled_out:
        expect(not counters and not gauges and not hists,
               "a compiled-out exposition must carry empty "
               "counters/gauges/histograms")
    if baseline is not None:
        base_counters = baseline.get("counters", {})
        expect(isinstance(base_counters, dict),
               "baseline 'counters' must be an object")
        for name, before in base_counters.items():
            after = counters.get(name, 0)
            expect(is_uint(before) and after >= before,
                   f"counter '{name}' went backwards across polls: "
                   f"{before} -> {after}")
    print(f"metrics OK: {len(counters)} counters, {len(gauges)} gauges, "
          f"{len(hists)} histograms"
          + (", compiled out" if compiled_out else "")
          + (f", monotone vs baseline ({len(baseline.get('counters', {}))} "
             "counters)" if baseline is not None else ""))
    return 0


def check_flight(doc, required_traces) -> int:
    expect(isinstance(doc, dict), "flight dump root must be an object")
    expect(doc.get("format") == FLIGHT_FORMAT,
           f"flight 'format' must be '{FLIGHT_FORMAT}', got "
           f"{doc.get('format')!r}")
    expect(is_uint(doc.get("capacity")) and doc["capacity"] >= 1,
           "flight 'capacity' must be a positive int")
    expect(is_uint(doc.get("recorded")),
           "flight 'recorded' must be a non-negative int")
    records = doc.get("records")
    expect(isinstance(records, list), "flight 'records' must be an array")
    expect(len(records) == min(doc["recorded"], doc["capacity"]),
           f"flight ring invariant broken: {doc['recorded']} recorded with "
           f"capacity {doc['capacity']} must retain "
           f"{min(doc['recorded'], doc['capacity'])} records, "
           f"got {len(records)}")
    seen_traces = set()
    for i, r in enumerate(records):
        where = f"records[{i}]"
        expect(isinstance(r, dict), f"{where} must be an object")
        for key in ("request_id", "session_id", "trace_id", "bytes",
                    "faults", "retries"):
            expect(is_uint(r.get(key)),
                   f"{where}: '{key}' must be a non-negative int")
        expect(isinstance(r.get("category"), str),
               f"{where}: 'category' must be a string")
        expect(r.get("verdict") in FLIGHT_VERDICTS,
               f"{where}: 'verdict' must be one of "
               f"{'/'.join(FLIGHT_VERDICTS)}, got {r.get('verdict')!r}")
        for key in ("enqueued_ns", "started_ns", "finished_ns"):
            expect(is_int(r.get(key)), f"{where}: '{key}' must be an int")
        seen_traces.add(r["trace_id"])
    missing = [t for t in required_traces if t not in seen_traces]
    expect(not missing,
           "required trace id(s) absent from the ring: "
           + ", ".join(str(t) for t in missing))
    print(f"flight dump OK: {len(records)} of {doc['recorded']} recorded "
          f"(capacity {doc['capacity']})")
    return 0


def load_json(path: str):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", help="JSON artifact to validate")
    ap.add_argument("--kind", choices=("trace", "manifest", "metrics",
                                       "flight"), required=True)
    ap.add_argument("--require-span", action="append", default=[],
                    metavar="NAME",
                    help="fail unless a span/stage with this name is present "
                         "(repeatable; trace/manifest kinds)")
    ap.add_argument("--monotone-baseline", metavar="FILE",
                    help="metrics kind: fail if any counter in FILE (an "
                         "earlier scrape) exceeds its value in the validated "
                         "exposition")
    ap.add_argument("--require-trace", action="append", default=[], type=int,
                    metavar="ID",
                    help="flight kind: fail unless a record with this "
                         "trace_id survives in the ring (repeatable)")
    args = ap.parse_args()
    try:
        doc = load_json(args.file)
        baseline = (load_json(args.monotone_baseline)
                    if args.monotone_baseline else None)
    except (OSError, json.JSONDecodeError) as e:
        print(f"unreadable or invalid JSON: {e}", file=sys.stderr)
        return 1
    try:
        if args.kind == "trace":
            return check_trace(doc, args.require_span)
        if args.kind == "manifest":
            return check_manifest(doc, args.require_span)
        if args.kind == "metrics":
            return check_metrics(doc, baseline)
        return check_flight(doc, args.require_trace)
    except SchemaError as e:
        print(f"{args.file}: {e}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
