#!/usr/bin/env python3
"""catalyst-lint: repo-specific static checks for the catalyst sources.

Rules (each can be suppressed per line with `// catalyst-lint: allow(<rule>)`
or per file via the allowlists below):

  rng-in-hot-path   No rand()/std::mt19937 in src/ outside the allow-listed
                    generators.  Measurement reproducibility depends on the
                    counter-based noise RNG; an ambient PRNG hidden in a hot
                    path silently breaks the pure-function-of-coordinates
                    contract (machine seed, event, repetition, kernel).
  using-namespace-in-header
                    No `using namespace` at namespace scope in headers.
  pragma-once       Every header starts its preprocessor life with
                    `#pragma once`.
  float-equality    No ==/!= against non-zero floating-point literals.
                    Comparisons to exact 0.0 are an accepted sparsity /
                    sentinel idiom in this codebase; anything else must be a
                    tolerance test (see contract::singular_tolerance).
  linalg-shape-contracts
                    Every public src/linalg entry point validates its input
                    shapes through the contract layer (CATALYST_REQUIRE*,
                    CATALYST_ASSUME_FINITE*) or a shared checker before
                    touching data.
  sleep-in-retry    No raw std::this_thread::sleep_for / sleep_until in src/
                    outside the allow-listed faults::Clock implementation.
                    Retry pacing must go through the injectable Clock so
                    tests (FakeClock) never sleep on wall time and backoff
                    policy stays in one place.
  raw-timing        No raw std::chrono::steady_clock/system_clock/
                    high_resolution_clock::now() in src/ outside src/obs/ and
                    src/faults/.  All timestamps must flow through the
                    injectable faults::Clock (obs::Tracer::set_clock) so span
                    timings are deterministic under FakeClock and
                    observability can never perturb results.
  raw-thread-spawn  No raw std::thread construction in src/ outside the
                    shared worker-pool helper (src/core/parallel.hpp).  All
                    parallelism must flow through core::parallel_for /
                    parallel_for_chunks so the determinism contract (fixed
                    work partitioning, first-exception propagation, full
                    join before return) holds everywhere at once.
  seed-echo-in-tests
                    Every test in tests/ that owns a general-purpose PRNG
                    must include "seed_util.hpp" and take its seeds from it:
                    sweep_seeds() honors CATALYST_SEED=<n> for single-seed
                    replay and seed_banner() prints the replay line on
                    failure.  A randomized test whose failure cannot be
                    reproduced from its output is a flake report, not a test.

Exit status: 0 when clean, 1 when any finding is reported, 2 on usage error.
Run from anywhere: paths resolve relative to the repository root (parent of
this script's directory).
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"

# Files allowed to own a general-purpose PRNG: machine-model construction
# (seeded once, not per measurement), the linalg test-matrix generators, the
# norm estimator's start vector, pointer-chase shuffling, the mixed
# benchmark's signature shuffling, and the modelgen generator/transforms
# (seeded once per spec, never per measurement).  Everything else must use
# the counter-based noise RNG.
RNG_ALLOWED = {
    "src/pmu/tempest.cpp",
    "src/pmu/saphira.cpp",
    "src/pmu/vesuvio.cpp",
    "src/linalg/random.cpp",
    "src/linalg/blas.cpp",
    "src/cachesim/pointer_chase.cpp",
    "src/cat/mixed.cpp",
    "src/modelgen/generator.cpp",
    "src/modelgen/verify.cpp",
}

# Files allowed to compare floating-point values with ==/!= beyond the
# exact-zero idiom (none currently; add sparingly and justify).
FLOAT_EQ_ALLOWED: set[str] = set()

# The ONE place allowed to sleep on wall time: the injectable retry clock.
# Everything else paces retries through faults::Clock.
SLEEP_ALLOWED = {
    "src/faults/clock.cpp",
}

# Directory prefixes allowed to read the raw steady/system clock: the
# injectable clock implementation and the tracing layer built on it.
TIMING_ALLOWED_PREFIXES = (
    "src/obs/",
    "src/faults/",
)

# The ONE place allowed to construct std::thread: the shared worker-pool
# helper.  Everything else parallelizes through core::parallel_for so the
# determinism/exception contract is uniform.
THREAD_SPAWN_ALLOWED = {
    "src/core/parallel.hpp",
}

# Public src/linalg entry points that must validate shapes before computing.
# Maps source file -> function names whose definitions are checked.
LINALG_PUBLIC_ENTRIES = {
    "src/linalg/blas.cpp": [
        "gemv", "gemv_t", "ger", "gemm", "gemm_view", "subview",
        "trsv_upper", "trsv_lower", "trsv_upper_t",
    ],
    "src/linalg/qrcp.cpp": ["qrcp"],
    "src/linalg/lstsq.cpp": ["lstsq", "lstsq_min_norm", "backward_error"],
}

# Evidence that a function body validates its inputs: a contract macro or one
# of the shared checkers that are themselves contract-based.
VALIDATION_RE = re.compile(
    r"CATALYST_(REQUIRE|ASSUME_FINITE|ENSURE|INVARIANT)(_AS)?\s*\("
    r"|check_same_size\s*\("
    r"|check_matrix_vector\s*\("
)

SUPPRESS_RE = re.compile(r"//\s*catalyst-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")


class Finding:
    def __init__(self, rule: str, path: Path, line: int, message: str):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message

    def __str__(self) -> str:
        rel = self.path.relative_to(REPO_ROOT)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure
    so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


def line_suppressions(raw_lines: list[str], lineno: int) -> set[str]:
    """Rules suppressed on this 1-based line (same line or the one above)."""
    rules: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw_lines):
            m = SUPPRESS_RE.search(raw_lines[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


def iter_source_files() -> list[Path]:
    return sorted(
        p for p in SRC.rglob("*") if p.suffix in (".cpp", ".hpp") and p.is_file()
    )


def relpath(path: Path) -> str:
    return path.relative_to(REPO_ROOT).as_posix()


RNG_RE = re.compile(r"\bstd::mt19937(_64)?\b|(?<![\w.])\brand\s*\(\s*\)")
SLEEP_RE = re.compile(r"\bstd::this_thread::sleep_(for|until)\b"
                      r"|\bthis_thread\s*::\s*sleep_(for|until)\b")
RAW_TIMING_RE = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")
# ==/!= where either side is a float literal other than 0.0 / 0. / .0
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?"
FLOAT_EQ_RE = re.compile(rf"(?:[=!]=\s*({FLOAT_LIT}))|(?:({FLOAT_LIT})\s*[=!]=)")
ZERO_RE = re.compile(r"^(?:0+\.0*|\.0+)(?:[eE][+-]?\d+)?[fFlL]?$")


def check_rng(path: Path, code: str, raw_lines: list[str], findings: list[Finding]):
    if relpath(path) in RNG_ALLOWED:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if RNG_RE.search(line):
            if "rng-in-hot-path" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "rng-in-hot-path", path, lineno,
                "general-purpose PRNG outside the allow-listed generators; "
                "use the counter-based noise RNG or add a justified "
                "allowlist entry"))


def check_sleep_in_retry(path: Path, code: str, raw_lines: list[str],
                         findings: list[Finding]):
    if relpath(path) in SLEEP_ALLOWED:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if SLEEP_RE.search(line):
            if "sleep-in-retry" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "sleep-in-retry", path, lineno,
                "raw thread sleep outside faults::Clock; pace retries via "
                "the injectable clock (faults/clock.cpp) so tests never "
                "sleep on wall time"))


THREAD_SPAWN_RE = re.compile(r"\bstd\s*::\s*thread\b")


def check_raw_thread_spawn(path: Path, code: str, raw_lines: list[str],
                           findings: list[Finding]):
    if relpath(path) in THREAD_SPAWN_ALLOWED:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if THREAD_SPAWN_RE.search(line):
            if "raw-thread-spawn" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "raw-thread-spawn", path, lineno,
                "raw std::thread outside core/parallel.hpp; fan work out "
                "via core::parallel_for / parallel_for_chunks so the "
                "worker-pool determinism + exception contract applies"))


def check_raw_timing(path: Path, code: str, raw_lines: list[str],
                     findings: list[Finding]):
    rel = relpath(path)
    if rel.startswith(TIMING_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if RAW_TIMING_RE.search(line):
            if "raw-timing" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "raw-timing", path, lineno,
                "raw std::chrono clock read outside src/obs//src/faults/; "
                "take timestamps through the injectable faults::Clock "
                "(obs::Tracer) so timing stays deterministic under "
                "FakeClock"))


def check_using_namespace(path: Path, code: str, raw_lines: list[str],
                          findings: list[Finding]):
    if path.suffix != ".hpp":
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        if USING_NS_RE.search(line):
            if "using-namespace-in-header" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "using-namespace-in-header", path, lineno,
                "`using namespace` in a header leaks into every includer"))


def check_pragma_once(path: Path, code: str, findings: list[Finding]):
    if path.suffix != ".hpp":
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#pragma") and "once" in stripped:
            return
        findings.append(Finding(
            "pragma-once", path, lineno,
            "first preprocessor/code line of a header must be #pragma once"))
        return
    findings.append(Finding("pragma-once", path, 1, "header has no #pragma once"))


def check_float_equality(path: Path, code: str, raw_lines: list[str],
                         findings: list[Finding]):
    if relpath(path) in FLOAT_EQ_ALLOWED:
        return
    for lineno, line in enumerate(code.splitlines(), 1):
        for m in FLOAT_EQ_RE.finditer(line):
            lit = m.group(1) or m.group(2)
            if ZERO_RE.match(lit):
                continue  # exact-zero sparsity/sentinel idiom
            if "float-equality" in line_suppressions(raw_lines, lineno):
                continue
            findings.append(Finding(
                "float-equality", path, lineno,
                f"floating-point ==/!= against {lit}; use a tolerance "
                "(contract::singular_tolerance or an explicit eps)"))


def find_function_body(code: str, name: str) -> tuple[int, str] | None:
    """Finds `name(...) ... {body}` at file scope; returns (line, body)."""
    for m in re.finditer(rf"(?<![\w:.])({re.escape(name)})\s*\(", code):
        # Reject declarations inside other words / member calls; crude but
        # adequate for this codebase's formatting.
        open_paren = m.end() - 1
        depth = 1
        i = open_paren + 1
        while i < len(code) and depth:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        # Skip whitespace/noexcept/specifiers to find '{' (definition) or ';'.
        j = i
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue  # declaration or call
        # Extract the brace-balanced body.
        depth = 1
        k = j + 1
        while k < len(code) and depth:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
            k += 1
        line = code.count("\n", 0, m.start()) + 1
        return line, code[j:k]
    return None


def check_linalg_shape_contracts(findings: list[Finding]):
    for rel, names in LINALG_PUBLIC_ENTRIES.items():
        path = REPO_ROOT / rel
        if not path.is_file():
            findings.append(Finding("linalg-shape-contracts", path, 1,
                                    "expected source file is missing"))
            continue
        code = strip_comments_and_strings(path.read_text())
        for name in names:
            found = find_function_body(code, name)
            if found is None:
                findings.append(Finding(
                    "linalg-shape-contracts", path, 1,
                    f"public entry `{name}` has no definition here"))
                continue
            line, body = found
            if not VALIDATION_RE.search(body):
                findings.append(Finding(
                    "linalg-shape-contracts", path, line,
                    f"public entry `{name}` does not validate its inputs "
                    "through the contract layer"))


SEED_UTIL_INCLUDE_RE = re.compile(r'#include\s+"seed_util\.hpp"')


def check_seed_echo_in_tests(findings: list[Finding]):
    if not TESTS.is_dir():
        return
    for path in sorted(TESTS.glob("*.cpp")):
        raw = path.read_text()
        code = strip_comments_and_strings(raw)
        if not RNG_RE.search(code):
            continue
        if SEED_UTIL_INCLUDE_RE.search(raw):
            continue
        raw_lines = raw.splitlines()
        for lineno, line in enumerate(code.splitlines(), 1):
            if RNG_RE.search(line):
                if "seed-echo-in-tests" in line_suppressions(raw_lines, lineno):
                    break
                findings.append(Finding(
                    "seed-echo-in-tests", path, lineno,
                    "randomized test without seed_util.hpp; derive seeds via "
                    "sweep_seeds() and lead failures with seed_banner() so "
                    "CATALYST_SEED=<n> replays them"))
                break


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        print(__doc__)
        return 0 if argv[1] in ("-h", "--help") else 2
    if not SRC.is_dir():
        print(f"catalyst-lint: source tree not found at {SRC}", file=sys.stderr)
        return 2

    findings: list[Finding] = []
    for path in iter_source_files():
        raw = path.read_text()
        raw_lines = raw.splitlines()
        code = strip_comments_and_strings(raw)
        check_rng(path, code, raw_lines, findings)
        check_sleep_in_retry(path, code, raw_lines, findings)
        check_raw_thread_spawn(path, code, raw_lines, findings)
        check_raw_timing(path, code, raw_lines, findings)
        check_using_namespace(path, code, raw_lines, findings)
        check_pragma_once(path, code, findings)
        check_float_equality(path, code, raw_lines, findings)
    check_linalg_shape_contracts(findings)
    check_seed_echo_in_tests(findings)

    for f in findings:
        print(f)
    n_files = len(iter_source_files())
    if findings:
        print(f"catalyst-lint: {len(findings)} finding(s) in {n_files} files")
        return 1
    print(f"catalyst-lint: clean ({n_files} files checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
