#!/usr/bin/env python3
"""catalyst-lint: repo-specific static checks for the catalyst sources.

Architecture (multi-pass): every source file is parsed once into a FileModel
(comment/string-stripped code, suppression directives, protocol fences);
per-file passes then run over the models, repo-level passes run over the
whole set, and audit passes run last -- they validate the *directives*
themselves (stale suppressions, malformed fences), which is only possible
after every other pass has reported.

Rules:

  rng-in-hot-path   No rand()/std::mt19937 in src/ outside the allow-listed
                    generators.  Measurement reproducibility depends on the
                    counter-based noise RNG; an ambient PRNG hidden in a hot
                    path silently breaks the pure-function-of-coordinates
                    contract (machine seed, event, repetition, kernel).
  using-namespace-in-header
                    No `using namespace` at namespace scope in headers.
  pragma-once       Every header starts its preprocessor life with
                    `#pragma once`.
  float-equality    No ==/!= against non-zero floating-point literals.
                    Comparisons to exact 0.0 are an accepted sparsity /
                    sentinel idiom in this codebase; anything else must be a
                    tolerance test (see contract::singular_tolerance).
  linalg-shape-contracts
                    Every public src/linalg entry point validates its input
                    shapes through the contract layer (CATALYST_REQUIRE*,
                    CATALYST_ASSUME_FINITE*) or a shared checker before
                    touching data.
  sleep-in-retry    No raw std::this_thread::sleep_for / sleep_until in src/
                    outside the allow-listed faults::Clock implementation.
                    Retry pacing must go through the injectable Clock so
                    tests (FakeClock) never sleep on wall time and backoff
                    policy stays in one place.
  raw-timing        No raw std::chrono::steady_clock/system_clock/
                    high_resolution_clock::now() in src/ outside src/obs/ and
                    src/faults/.  All timestamps must flow through the
                    injectable faults::Clock (obs::Tracer::set_clock) so span
                    timings are deterministic under FakeClock and
                    observability can never perturb results.
  raw-thread-spawn  No raw std::thread construction in src/ outside the
                    shared worker-pool helper (src/core/parallel.hpp).  All
                    parallelism must flow through core::parallel_for /
                    parallel_for_chunks so the determinism contract (fixed
                    work partitioning, first-exception propagation, full
                    join before return) holds everywhere at once.
  raw-socket-io     No raw POSIX socket/stream syscalls (socket/bind/listen/
                    accept/connect/read/write/recv/send/poll/pipe) in src/
                    outside src/service/io*.  All byte movement must go
                    through the io:: wrappers, which are the only code that
                    understands EINTR, partial transfers, and non-blocking
                    would-block -- a raw ::read elsewhere reintroduces the
                    exact failure modes the wrappers exist to contain.
                    (The checkpoint lease's ::open/::flock are file locking,
                    not stream I/O, and stay out of scope.)
  clock-in-sampling No std::chrono steady/system/high_resolution clock
                    *types* anywhere in a sampling translation unit (any
                    file whose basename contains "sampling").  Stricter
                    than raw-timing: the sampled-collection path must pace
                    itself exclusively through faults::Clock, so even a
                    cached time_point or a clock-typed member is a design
                    smell -- a wall-clock value that leaks into a sample
                    boundary destroys byte-identical trace replay.
  seed-echo-in-tests
                    Every test in tests/ that owns a general-purpose PRNG
                    must include "seed_util.hpp" and take its seeds from it:
                    sweep_seeds() honors CATALYST_SEED=<n> for single-seed
                    replay and seed_banner() prints the replay line on
                    failure.  A randomized test whose failure cannot be
                    reproduced from its output is a flake report, not a test.

  -- observability (the src/obs metric registry) --

  metric-name-literal
                    No inline metric-name string literal at an
                    obs::count / obs::observe / obs::gauge call site in
                    src/ outside src/obs/.  Every metric name lives once in
                    the registry header (src/obs/names.hpp) as a constexpr
                    string_view, so the exposition surface is enumerable by
                    reading one file and a rename cannot silently fork a
                    counter into two spellings.  The registry itself is
                    checked too: every constant in names.hpp must be a
                    snake.case dotted identifier (a trailing '.' marks a
                    dynamic-suffix prefix like "collect.faults.").

  -- lock discipline (the src/sync capability layer) --

  raw-sync-primitive
                    No raw std::mutex / std::shared_mutex /
                    std::condition_variable(_any) / std::lock_guard /
                    std::unique_lock / std::scoped_lock / std::shared_lock
                    in src/ outside src/sync/.  Locks must be the annotated
                    sync::Mutex family so Clang thread-safety analysis and
                    the runtime lock-order validator see every acquisition.
  mutex-missing-guarded-by
                    A class/struct with a sync::Mutex member must annotate
                    at least one sibling field with CATALYST_GUARDED_BY.  A
                    member mutex that guards nothing it can name is either
                    dead weight or (worse) guarding state the analysis
                    cannot check.
  manual-lock-unlock
                    No explicit .lock()/.unlock() calls in src/ outside
                    src/sync/.  Critical sections must be RAII
                    (sync::LockGuard / sync::UniqueLock) so early returns
                    and exceptions cannot leak a held lock.
  atomic-ordering-outside-protocol
                    Ordering-bearing atomics (memory_order_acquire/release/
                    acq_rel/seq_cst) outside src/sync/ must sit inside a
                    documented protocol fence:
                        // catalyst-lint: begin-protocol(<name>)
                        ...
                        // catalyst-lint: end-protocol(<name>)
                    Relaxed atomics (counters, enable flags) are fine
                    anywhere; anything stronger encodes an inter-thread
                    protocol that must be written down (see the seqlock
                    invariants on obs::TraceBuffer).
  protocol-fence    Malformed fences: end-protocol without a begin, a fence
                    left open at end of file, mismatched names, or a nested
                    begin.

  -- directive audit --

  unknown-suppression-rule
                    An `allow(...)` directive naming a rule this linter does
                    not define.  Typically a typo, or a rule that was
                    renamed/retired -- either way the suppression does
                    nothing and must not linger.
  stale-suppression
                    An `allow(...)` directive that suppressed nothing this
                    run.  The offending code is gone; the directive must go
                    too, or it will silently license a future violation.

Suppressing: `// catalyst-lint: allow(<rule>[, <rule>...])` on the offending
line or the line directly above it.  Suppressions are audited: they must
name real rules and actually fire.

Exit status: 0 when clean, 1 when any finding is reported (or --max-seconds
is exceeded), 2 on usage error.  Run from anywhere: paths resolve relative
to the repository root (parent of this script's directory).

Options:
  --max-seconds N   Fail (exit 1) if the whole run takes longer than N
                    seconds; CI asserts the full-repo run stays under 5.
  --selftest        Lint the fixture files in tests/lint_selftest/ instead
                    of src/; each fixture declares its expected findings
                    with `// expect: <rule>` lines and the run fails on any
                    mismatch in either direction.
"""

from __future__ import annotations

import re
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"
SELFTEST_DIR = TESTS / "lint_selftest"

# Files allowed to own a general-purpose PRNG: machine-model construction
# (seeded once, not per measurement), the linalg test-matrix generators, the
# norm estimator's start vector, pointer-chase shuffling, the mixed
# benchmark's signature shuffling, and the modelgen generator/transforms
# (seeded once per spec, never per measurement).  Everything else must use
# the counter-based noise RNG.
RNG_ALLOWED = {
    "src/pmu/tempest.cpp",
    "src/pmu/saphira.cpp",
    "src/pmu/vesuvio.cpp",
    "src/linalg/random.cpp",
    "src/linalg/blas.cpp",
    "src/cachesim/pointer_chase.cpp",
    "src/cat/mixed.cpp",
    "src/modelgen/generator.cpp",
    "src/modelgen/verify.cpp",
}

# Files allowed to compare floating-point values with ==/!= beyond the
# exact-zero idiom (none currently; add sparingly and justify).
FLOAT_EQ_ALLOWED: set[str] = set()

# The ONE place allowed to sleep on wall time: the injectable retry clock.
# Everything else paces retries through faults::Clock.
SLEEP_ALLOWED = {
    "src/faults/clock.cpp",
}

# Directory prefixes allowed to read the raw steady/system clock: the
# injectable clock implementation and the tracing layer built on it.
TIMING_ALLOWED_PREFIXES = (
    "src/obs/",
    "src/faults/",
)

# The ONE place allowed to construct std::thread: the shared worker-pool
# helper.  Everything else parallelizes through core::parallel_for so the
# determinism/exception contract is uniform.
THREAD_SPAWN_ALLOWED = {
    "src/core/parallel.hpp",
}

# The ONE directory allowed to touch raw standard-library synchronization
# primitives: the annotated wrapper layer itself.
SYNC_ALLOWED_PREFIXES = ("src/sync/",)

# The ONE place allowed to issue raw socket/stream syscalls: the EINTR- and
# would-block-aware wrapper layer (src/service/io.hpp / io.cpp).
SOCKET_IO_ALLOWED_PREFIXES = ("src/service/io",)

# The metric-name registry, and the ONE layer allowed to spell metric names
# as string literals (the registry plus the obs implementation itself).
METRIC_NAMES_HEADER = "src/obs/names.hpp"
METRIC_NAME_ALLOWED_PREFIXES = ("src/obs/",)

# Public src/linalg entry points that must validate shapes before computing.
# Maps source file -> function names whose definitions are checked.
LINALG_PUBLIC_ENTRIES = {
    "src/linalg/blas.cpp": [
        "gemv", "gemv_t", "ger", "gemm", "gemm_view", "subview",
        "trsv_upper", "trsv_lower", "trsv_upper_t",
    ],
    "src/linalg/qrcp.cpp": ["qrcp"],
    "src/linalg/lstsq.cpp": ["lstsq", "lstsq_min_norm", "backward_error"],
}

# Evidence that a function body validates its inputs: a contract macro or one
# of the shared checkers that are themselves contract-based.
VALIDATION_RE = re.compile(
    r"CATALYST_(REQUIRE|ASSUME_FINITE|ENSURE|INVARIANT)(_AS)?\s*\("
    r"|check_same_size\s*\("
    r"|check_matrix_vector\s*\("
)

SUPPRESS_RE = re.compile(
    r"//\s*catalyst-lint:\s*allow\(([a-z\-]+(?:\s*,\s*[a-z\-]+)*)\)")
FENCE_RE = re.compile(
    r"//\s*catalyst-lint:\s*(begin|end)-protocol\(([a-z0-9\-]*)\)")
EXPECT_RE = re.compile(r"//\s*expect:\s*([a-z\-]+)")

# Every rule any pass can report; `allow(...)` of anything else is itself a
# finding (unknown-suppression-rule).
KNOWN_RULES = {
    "rng-in-hot-path",
    "using-namespace-in-header",
    "pragma-once",
    "float-equality",
    "linalg-shape-contracts",
    "sleep-in-retry",
    "raw-timing",
    "raw-thread-spawn",
    "raw-socket-io",
    "clock-in-sampling",
    "seed-echo-in-tests",
    "metric-name-literal",
    "raw-sync-primitive",
    "mutex-missing-guarded-by",
    "manual-lock-unlock",
    "atomic-ordering-outside-protocol",
    "protocol-fence",
    "unknown-suppression-rule",
    "stale-suppression",
}


class Finding:
    def __init__(self, rule: str, rel: str, line: int, message: str):
        self.rule = rule
        self.rel = rel
        self.line = line
        self.message = message

    def __str__(self) -> str:
        return f"{self.rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line structure
    so reported line numbers match the file."""
    out = []
    i, n = 0, len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append("\n")
            else:
                out.append(" ")
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif mode in ("string", "char"):
            quote = '"' if mode == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                mode = "code"
                out.append(" ")
            else:
                out.append("\n" if c == "\n" else " ")
        i += 1
    return "".join(out)


class Fence:
    """One begin/end-protocol region (1-based inclusive line range)."""

    def __init__(self, name: str, begin: int, end: int):
        self.name = name
        self.begin = begin
        self.end = end

    def covers(self, lineno: int) -> bool:
        return self.begin <= lineno <= self.end


class FileModel:
    """One parsed source file: stripped code, directives, fences.

    `rel` is the repo-relative posix path rules match against; the selftest
    harness maps fixture files to virtual src/ paths through it, so every
    path-based allowlist behaves identically on fixtures.
    """

    def __init__(self, rel: str, raw: str):
        self.rel = rel
        self.raw = raw
        self.raw_lines = raw.splitlines()
        self.code = strip_comments_and_strings(raw)
        self.code_lines = self.code.splitlines()
        self.is_header = rel.endswith(".hpp")
        # allow() directives: raw line number (1-based) -> rules named there.
        self.suppression_sites: dict[int, set[str]] = {}
        for lineno, line in enumerate(self.raw_lines, 1):
            m = SUPPRESS_RE.search(line)
            if m:
                self.suppression_sites[lineno] = {
                    r.strip() for r in m.group(1).split(",")
                }
        self.used_suppressions: set[tuple[int, str]] = set()
        self.fences: list[Fence] = []
        self.fence_findings: list[Finding] = []
        self._parse_fences()

    def _parse_fences(self):
        open_fence: tuple[str, int] | None = None  # (name, begin line)
        for lineno, line in enumerate(self.raw_lines, 1):
            m = FENCE_RE.search(line)
            if not m:
                continue
            kind, name = m.group(1), m.group(2)
            if not name:
                self.fence_findings.append(Finding(
                    "protocol-fence", self.rel, lineno,
                    f"{kind}-protocol() needs a protocol name"))
                continue
            if kind == "begin":
                if open_fence is not None:
                    self.fence_findings.append(Finding(
                        "protocol-fence", self.rel, lineno,
                        f"begin-protocol({name}) nested inside open "
                        f"protocol '{open_fence[0]}' (line {open_fence[1]})"))
                    continue
                open_fence = (name, lineno)
            else:  # end
                if open_fence is None:
                    self.fence_findings.append(Finding(
                        "protocol-fence", self.rel, lineno,
                        f"end-protocol({name}) without a matching begin"))
                    continue
                if open_fence[0] != name:
                    self.fence_findings.append(Finding(
                        "protocol-fence", self.rel, lineno,
                        f"end-protocol({name}) closes "
                        f"begin-protocol({open_fence[0]}) from line "
                        f"{open_fence[1]}"))
                self.fences.append(Fence(open_fence[0], open_fence[1], lineno))
                open_fence = None
        if open_fence is not None:
            self.fence_findings.append(Finding(
                "protocol-fence", self.rel, open_fence[1],
                f"begin-protocol({open_fence[0]}) never closed"))

    def suppressed(self, lineno: int, rule: str) -> bool:
        """True when `rule` is allow()ed on this line or the one above;
        marks the directive used for the stale-suppression audit."""
        for site in (lineno, lineno - 1):
            if rule in self.suppression_sites.get(site, set()):
                self.used_suppressions.add((site, rule))
                return True
        return False

    def in_fence(self, lineno: int) -> bool:
        return any(f.covers(lineno) for f in self.fences)


def report(model: FileModel, findings: list[Finding], rule: str, lineno: int,
           message: str):
    """Emits a finding unless an allow() directive covers it."""
    if model.suppressed(lineno, rule):
        return
    findings.append(Finding(rule, model.rel, lineno, message))


# --- per-file passes -------------------------------------------------------

RNG_RE = re.compile(r"\bstd::mt19937(_64)?\b|(?<![\w.])\brand\s*\(\s*\)")
SLEEP_RE = re.compile(r"\bstd::this_thread::sleep_(for|until)\b"
                      r"|\bthis_thread\s*::\s*sleep_(for|until)\b")
RAW_TIMING_RE = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\s*::\s*now\s*\(")
# Stricter variant for sampling code: the clock *type* alone is banned, not
# just ::now() -- a cached time_point or clock-typed member smuggles wall
# time into the sample schedule just as effectively as a direct read.
SAMPLING_CLOCK_RE = re.compile(
    r"\b(?:std\s*::\s*)?chrono\s*::\s*"
    r"(?:steady_clock|system_clock|high_resolution_clock)\b")
USING_NS_RE = re.compile(r"^\s*using\s+namespace\b")
THREAD_SPAWN_RE = re.compile(r"\bstd\s*::\s*thread\b")
# ==/!= where either side is a float literal other than 0.0 / 0. / .0
FLOAT_LIT = r"(?:\d+\.\d*|\.\d+)(?:[eE][+-]?\d+)?[fFlL]?"
FLOAT_EQ_RE = re.compile(rf"(?:[=!]=\s*({FLOAT_LIT}))|(?:({FLOAT_LIT})\s*[=!]=)")
ZERO_RE = re.compile(r"^(?:0+\.0*|\.0+)(?:[eE][+-]?\d+)?[fFlL]?$")
RAW_SYNC_RE = re.compile(
    r"\bstd\s*::\s*(?:recursive_|timed_|shared_)?mutex\b"
    r"|\bstd\s*::\s*condition_variable(?:_any)?\b"
    r"|\bstd\s*::\s*(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b")
MANUAL_LOCK_RE = re.compile(r"\.\s*(?:un)?lock\s*\(")
ATOMIC_ORDER_RE = re.compile(
    r"\bmemory_order(?:_|\s*::\s*)(?:acquire|release|acq_rel|seq_cst)\b")
SYNC_MUTEX_MEMBER_RE = re.compile(r"\bsync\s*::\s*(?:Shared)?Mutex\s+\w+")
# Global-scope POSIX stream syscalls (::read, ::socket, ...) plus a bare
# socket() call.  The `(?<![\w:.])` guard keeps qualified names like
# io::read_some or Session::close out of scope.
RAW_SOCKET_IO_RE = re.compile(
    r"(?<![\w:.])::\s*(?:socket|bind|listen|accept4?|connect|shutdown"
    r"|read|write|recv(?:from|msg)?|send(?:to|msg)?|poll|pipe2?)\s*\("
    r"|(?<![\w:.])socket\s*\(")
CLASS_RE = re.compile(r"\b(class|struct)\s+(?:CATALYST_\w+\(.*?\)\s+)?"
                      r"[A-Za-z_]\w*[^;{()]*\{")
# Metric-emission call whose first argument opens as a string literal.  The
# raw (string-preserving) variant spots the literal; the code (string-blanked)
# variant confirms the call is real code, not a mention inside a comment.
METRIC_CALL_RAW_RE = re.compile(
    r"\bobs\s*::\s*(?:count|observe|gauge)\s*\(\s*\"")
METRIC_CALL_CODE_RE = re.compile(r"\bobs\s*::\s*(?:count|observe|gauge)\s*\(")
# Registry constants: `... string_view kFoo = "bar.baz";`
METRIC_NAME_DEF_RE = re.compile(r'\bstring_view\s+k\w+\s*=\s*"([^"]*)"')
# snake.case dotted identifier; a trailing '.' marks a dynamic-suffix prefix
# (e.g. "collect.faults.").
METRIC_NAME_OK_RE = re.compile(r"^[a-z][a-z0-9_]*(?:\.[a-z][a-z0-9_]*)*\.?$")


def pass_rng(model: FileModel, findings: list[Finding]):
    if model.rel in RNG_ALLOWED:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if RNG_RE.search(line):
            report(model, findings, "rng-in-hot-path", lineno,
                   "general-purpose PRNG outside the allow-listed "
                   "generators; use the counter-based noise RNG or add a "
                   "justified allowlist entry")


def pass_sleep(model: FileModel, findings: list[Finding]):
    if model.rel in SLEEP_ALLOWED:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if SLEEP_RE.search(line):
            report(model, findings, "sleep-in-retry", lineno,
                   "raw thread sleep outside faults::Clock; pace retries "
                   "via the injectable clock (faults/clock.cpp) so tests "
                   "never sleep on wall time")


def pass_thread_spawn(model: FileModel, findings: list[Finding]):
    if model.rel in THREAD_SPAWN_ALLOWED:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if THREAD_SPAWN_RE.search(line):
            report(model, findings, "raw-thread-spawn", lineno,
                   "raw std::thread outside core/parallel.hpp; fan work "
                   "out via core::parallel_for / parallel_for_chunks so "
                   "the worker-pool determinism + exception contract "
                   "applies")


def pass_raw_timing(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(TIMING_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if RAW_TIMING_RE.search(line):
            report(model, findings, "raw-timing", lineno,
                   "raw std::chrono clock read outside src/obs//src/faults/; "
                   "take timestamps through the injectable faults::Clock "
                   "(obs::Tracer) so timing stays deterministic under "
                   "FakeClock")


def pass_clock_in_sampling(model: FileModel, findings: list[Finding]):
    basename = model.rel.rsplit("/", 1)[-1]
    if "sampling" not in basename:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if SAMPLING_CLOCK_RE.search(line):
            report(model, findings, "clock-in-sampling", lineno,
                   "wall-clock type in sampling code; the sampled "
                   "collection path must pace itself through faults::Clock "
                   "only, so sample traces stay byte-identical under "
                   "FakeClock replay")


def pass_using_namespace(model: FileModel, findings: list[Finding]):
    if not model.is_header:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if USING_NS_RE.search(line):
            report(model, findings, "using-namespace-in-header", lineno,
                   "`using namespace` in a header leaks into every includer")


def pass_pragma_once(model: FileModel, findings: list[Finding]):
    if not model.is_header:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        stripped = line.strip()
        if not stripped:
            continue
        if stripped.startswith("#pragma") and "once" in stripped:
            return
        report(model, findings, "pragma-once", lineno,
               "first preprocessor/code line of a header must be "
               "#pragma once")
        return
    report(model, findings, "pragma-once", 1, "header has no #pragma once")


def pass_float_equality(model: FileModel, findings: list[Finding]):
    if model.rel in FLOAT_EQ_ALLOWED:
        return
    for lineno, line in enumerate(model.code_lines, 1):
        for m in FLOAT_EQ_RE.finditer(line):
            lit = m.group(1) or m.group(2)
            if ZERO_RE.match(lit):
                continue  # exact-zero sparsity/sentinel idiom
            report(model, findings, "float-equality", lineno,
                   f"floating-point ==/!= against {lit}; use a tolerance "
                   "(contract::singular_tolerance or an explicit eps)")


def pass_raw_socket_io(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(SOCKET_IO_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if RAW_SOCKET_IO_RE.search(line):
            report(model, findings, "raw-socket-io", lineno,
                   "raw POSIX socket/stream syscall outside "
                   "src/service/io*; move bytes through the io:: wrappers "
                   "so EINTR, partial transfers, and would-block are "
                   "handled in exactly one place")


def pass_raw_sync_primitive(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(SYNC_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if RAW_SYNC_RE.search(line):
            report(model, findings, "raw-sync-primitive", lineno,
                   "raw standard-library synchronization primitive outside "
                   "src/sync/; use sync::Mutex / sync::LockGuard / "
                   "sync::CondVar so thread-safety analysis and the "
                   "lock-order validator see the acquisition")


def pass_manual_lock_unlock(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(SYNC_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if MANUAL_LOCK_RE.search(line):
            report(model, findings, "manual-lock-unlock", lineno,
                   "explicit .lock()/.unlock() outside src/sync/; hold "
                   "critical sections via RAII (sync::LockGuard / "
                   "sync::UniqueLock) so no path can leak a held lock")


def pass_atomic_ordering(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(SYNC_ALLOWED_PREFIXES):
        return
    for lineno, line in enumerate(model.code_lines, 1):
        if ATOMIC_ORDER_RE.search(line) and not model.in_fence(lineno):
            report(model, findings, "atomic-ordering-outside-protocol",
                   lineno,
                   "ordering-bearing atomic outside a protocol fence; "
                   "document the protocol's invariants and wrap the "
                   "region in // catalyst-lint: begin-protocol(<name>) / "
                   "end-protocol(<name>) (see obs::TraceBuffer)")


def pass_mutex_guarded_by(model: FileModel, findings: list[Finding]):
    if model.rel.startswith(SYNC_ALLOWED_PREFIXES):
        return
    code = model.code
    for m in CLASS_RE.finditer(code):
        open_brace = m.end() - 1
        depth = 1
        i = open_brace + 1
        while i < len(code) and depth:
            if code[i] == "{":
                depth += 1
            elif code[i] == "}":
                depth -= 1
            i += 1
        body = code[open_brace:i]
        member = SYNC_MUTEX_MEMBER_RE.search(body)
        if member and "CATALYST_GUARDED_BY" not in body:
            lineno = code.count("\n", 0, open_brace + member.start()) + 1
            report(model, findings, "mutex-missing-guarded-by", lineno,
                   "sync::Mutex member without any sibling "
                   "CATALYST_GUARDED_BY field; name what the mutex guards "
                   "so the thread-safety analysis can check it")


def pass_metric_name_literal(model: FileModel, findings: list[Finding]):
    if model.rel == METRIC_NAMES_HEADER:
        # The registry is where literals belong -- but they must all be
        # well-formed dotted snake.case so the exposition stays uniform.
        for lineno, line in enumerate(model.raw_lines, 1):
            m = METRIC_NAME_DEF_RE.search(line)
            if m and not METRIC_NAME_OK_RE.match(m.group(1)):
                report(model, findings, "metric-name-literal", lineno,
                       f'registry name "{m.group(1)}" is not a snake.case '
                       "dotted identifier (lowercase segments joined by "
                       "'.'; trailing '.' only for dynamic-suffix prefixes)")
        return
    if model.rel.startswith(METRIC_NAME_ALLOWED_PREFIXES):
        return
    for lineno, raw in enumerate(model.raw_lines, 1):
        if not METRIC_CALL_RAW_RE.search(raw):
            continue
        # Comments are blanked in code_lines, so a match there means the
        # call is real code (only the literal's contents are blanked).
        if not METRIC_CALL_CODE_RE.search(model.code_lines[lineno - 1]):
            continue
        report(model, findings, "metric-name-literal", lineno,
               "inline metric-name literal at an obs:: call site; add the "
               "name to src/obs/names.hpp and reference the constant so "
               "the metric surface stays enumerable from one header")


PER_FILE_PASSES = (
    pass_rng,
    pass_sleep,
    pass_thread_spawn,
    pass_raw_timing,
    pass_raw_socket_io,
    pass_clock_in_sampling,
    pass_metric_name_literal,
    pass_using_namespace,
    pass_pragma_once,
    pass_float_equality,
    pass_raw_sync_primitive,
    pass_manual_lock_unlock,
    pass_atomic_ordering,
    pass_mutex_guarded_by,
)


# --- repo-level passes -----------------------------------------------------

def find_function_body(code: str, name: str) -> tuple[int, str] | None:
    """Finds `name(...) ... {body}` at file scope; returns (line, body)."""
    for m in re.finditer(rf"(?<![\w:.])({re.escape(name)})\s*\(", code):
        # Reject declarations inside other words / member calls; crude but
        # adequate for this codebase's formatting.
        open_paren = m.end() - 1
        depth = 1
        i = open_paren + 1
        while i < len(code) and depth:
            if code[i] == "(":
                depth += 1
            elif code[i] == ")":
                depth -= 1
            i += 1
        # Skip whitespace/noexcept/specifiers to find '{' (definition) or ';'.
        j = i
        while j < len(code) and code[j] not in "{;":
            j += 1
        if j >= len(code) or code[j] == ";":
            continue  # declaration or call
        # Extract the brace-balanced body.
        depth = 1
        k = j + 1
        while k < len(code) and depth:
            if code[k] == "{":
                depth += 1
            elif code[k] == "}":
                depth -= 1
            k += 1
        line = code.count("\n", 0, m.start()) + 1
        return line, code[j:k]
    return None


def pass_linalg_shape_contracts(models: dict[str, FileModel],
                                findings: list[Finding]):
    for rel, names in LINALG_PUBLIC_ENTRIES.items():
        model = models.get(rel)
        if model is None:
            findings.append(Finding("linalg-shape-contracts", rel, 1,
                                    "expected source file is missing"))
            continue
        for name in names:
            found = find_function_body(model.code, name)
            if found is None:
                findings.append(Finding(
                    "linalg-shape-contracts", rel, 1,
                    f"public entry `{name}` has no definition here"))
                continue
            line, body = found
            if not VALIDATION_RE.search(body):
                report(model, findings, "linalg-shape-contracts", line,
                       f"public entry `{name}` does not validate its "
                       "inputs through the contract layer")


SEED_UTIL_INCLUDE_RE = re.compile(r'#include\s+"seed_util\.hpp"')


def pass_seed_echo_in_tests(test_models: list[FileModel],
                            findings: list[Finding]):
    for model in test_models:
        if not RNG_RE.search(model.code):
            continue
        if SEED_UTIL_INCLUDE_RE.search(model.raw):
            continue
        for lineno, line in enumerate(model.code_lines, 1):
            if RNG_RE.search(line):
                report(model, findings, "seed-echo-in-tests", lineno,
                       "randomized test without seed_util.hpp; derive "
                       "seeds via sweep_seeds() and lead failures with "
                       "seed_banner() so CATALYST_SEED=<n> replays them")
                break


# --- audit passes (run last: they judge the directives themselves) ---------

def pass_directive_audit(model: FileModel, findings: list[Finding]):
    findings.extend(model.fence_findings)
    for site, rules in sorted(model.suppression_sites.items()):
        for rule in sorted(rules):
            if rule not in KNOWN_RULES:
                findings.append(Finding(
                    "unknown-suppression-rule", model.rel, site,
                    f"allow({rule}) names no rule this linter defines; "
                    "fix the typo or delete the directive"))
            elif (site, rule) not in model.used_suppressions:
                findings.append(Finding(
                    "stale-suppression", model.rel, site,
                    f"allow({rule}) suppressed nothing this run; the "
                    "directive is stale -- delete it"))


# --- drivers ---------------------------------------------------------------

def load_models(root: Path, rel_prefix: str | None = None) -> list[FileModel]:
    models = []
    for path in sorted(root.rglob("*")):
        if path.suffix not in (".cpp", ".hpp") or not path.is_file():
            continue
        if rel_prefix is not None:
            rel = f"{rel_prefix}/{path.relative_to(root).as_posix()}"
        else:
            rel = path.relative_to(REPO_ROOT).as_posix()
        models.append(FileModel(rel, path.read_text()))
    return models


def lint_repo() -> list[Finding]:
    findings: list[Finding] = []
    src_models = load_models(SRC)
    test_models = [FileModel(p.relative_to(REPO_ROOT).as_posix(),
                             p.read_text())
                   for p in sorted(TESTS.glob("*.cpp"))] if TESTS.is_dir() \
        else []
    for model in src_models:
        for p in PER_FILE_PASSES:
            p(model, findings)
    pass_linalg_shape_contracts({m.rel: m for m in src_models}, findings)
    pass_seed_echo_in_tests(test_models, findings)
    for model in src_models + test_models:
        pass_directive_audit(model, findings)
    return findings


def selftest() -> int:
    """Runs the per-file passes over tests/lint_selftest fixtures; each
    fixture's `// expect: <rule>` lines are its expected findings."""
    if not SELFTEST_DIR.is_dir():
        print(f"catalyst-lint: no fixtures at {SELFTEST_DIR}",
              file=sys.stderr)
        return 2
    failures = 0
    n_fixtures = 0
    for path in sorted(SELFTEST_DIR.iterdir()):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        n_fixtures += 1
        raw = path.read_text()
        expected = sorted(EXPECT_RE.findall(raw))
        # Virtual src/ path: allowlists and src-only rules behave exactly as
        # they would on a real (non-allow-listed) source file.
        model = FileModel(f"src/lint_selftest/{path.name}", raw)
        findings: list[Finding] = []
        for p in PER_FILE_PASSES:
            p(model, findings)
        pass_directive_audit(model, findings)
        got = sorted(f.rule for f in findings)
        if got != expected:
            failures += 1
            print(f"FAIL {path.name}: expected {expected or '[]'}, "
                  f"got {got or '[]'}")
            for f in findings:
                print(f"  {f}")
        else:
            print(f"ok   {path.name}: {expected or '(clean)'}")
    if n_fixtures == 0:
        print("catalyst-lint: selftest found no fixture files",
              file=sys.stderr)
        return 2
    if failures:
        print(f"catalyst-lint selftest: {failures}/{n_fixtures} fixture(s) "
              "failed")
        return 1
    print(f"catalyst-lint selftest: {n_fixtures} fixture(s) ok")
    return 0


def main(argv: list[str]) -> int:
    max_seconds: float | None = None
    run_selftest = False
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg in ("-h", "--help"):
            print(__doc__)
            return 0
        if arg == "--selftest":
            run_selftest = True
            continue
        if arg == "--max-seconds":
            if not args:
                print("catalyst-lint: --max-seconds needs a value",
                      file=sys.stderr)
                return 2
            try:
                max_seconds = float(args.pop(0))
            except ValueError:
                print("catalyst-lint: --max-seconds needs a number",
                      file=sys.stderr)
                return 2
            continue
        print(f"catalyst-lint: unknown argument {arg!r}", file=sys.stderr)
        return 2

    started = time.monotonic()
    if run_selftest:
        status = selftest()
    else:
        if not SRC.is_dir():
            print(f"catalyst-lint: source tree not found at {SRC}",
                  file=sys.stderr)
            return 2
        findings = lint_repo()
        for f in findings:
            print(f)
        n_files = sum(1 for p in SRC.rglob("*")
                      if p.suffix in (".cpp", ".hpp") and p.is_file())
        if findings:
            print(f"catalyst-lint: {len(findings)} finding(s) in "
                  f"{n_files} files")
            status = 1
        else:
            print(f"catalyst-lint: clean ({n_files} files checked)")
            status = 0

    elapsed = time.monotonic() - started
    if max_seconds is not None and elapsed > max_seconds:
        print(f"catalyst-lint: run took {elapsed:.2f}s, over the "
              f"--max-seconds {max_seconds:g} budget", file=sys.stderr)
        return 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
