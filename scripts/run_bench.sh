#!/usr/bin/env bash
# Runs the google-benchmark perf binaries and records their JSON output at
# the repo root for per-PR performance trajectory tracking:
#   BENCH_pipeline.json  <- bench/perf_pipeline (collection + pipeline)
#   BENCH_linalg.json    <- bench/perf_linalg   (QR / QRCP / LS kernels)
#   BENCH_service.json   <- bench/service_load  (wire->queue->engine stack;
#                           latency scraped over STATS frames)
#
# Every output is stamped with a `catalyst_provenance` object (git SHA, UTC
# timestamp, compiler, build type, and the catalyst::obs run manifest) so a
# BENCH_*.json can always be traced back to the exact commit + configuration
# that produced it.  If an existing BENCH file carries a provenance stamp
# from a *different* commit, the script refuses to overwrite it unless
# --force is given -- stale-looking numbers should be replaced deliberately.
#
# bench/obs_overhead runs FIRST and aborts the whole bench run if tracing
# overhead exceeds its <2% budget: perf numbers recorded while observability
# is over budget would be misleading.
#
# Only Release builds may stamp the canonical BENCH_*.json files: numbers
# from -O0/debug builds would silently corrupt the per-PR perf trajectory.
# --allow-debug keeps the run possible for local smoke tests but writes a
# BENCH_<name>.debug.json sidecar instead of touching the canonical file.
#
# Usage: scripts/run_bench.sh [build-dir] [--force] [--allow-debug]
#                             [extra benchmark args...]
#   scripts/run_bench.sh                       # default ./build
#   scripts/run_bench.sh build --force
#   scripts/run_bench.sh build --benchmark_filter=BM_Measure
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="$repo_root/build"
force=0
allow_debug=0
extra_args=()
for arg in "$@"; do
  case "$arg" in
    --force)       force=1 ;;
    --allow-debug) allow_debug=1 ;;
    --*)           extra_args+=("$arg") ;;
    *)             build_dir="$arg" ;;
  esac
done

git_sha="$(git -C "$repo_root" rev-parse HEAD 2>/dev/null || echo unknown)"
timestamp_utc="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
cache="$build_dir/CMakeCache.txt"
build_type=unknown
compiler=unknown
if [ -f "$cache" ]; then
  build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' "$cache" | head -n1)"
  [ -n "$build_type" ] || build_type=unknown
  cxx="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "$cache" | head -n1)"
  if [ -n "$cxx" ] && [ -x "$cxx" ]; then
    compiler="$("$cxx" --version 2>/dev/null | head -n1)"
  fi
fi

# Gate: never stamp the canonical BENCH files from a non-Release build.
out_suffix=""
if [ "$build_type" != "Release" ]; then
  if [ "$allow_debug" -ne 1 ]; then
    echo "error: $build_dir is a '$build_type' build; BENCH_*.json numbers \
must come from a Release build.  Reconfigure with \
-DCMAKE_BUILD_TYPE=Release, or pass --allow-debug to record a \
BENCH_<name>.debug.json sidecar instead" >&2
    exit 1
  fi
  out_suffix=".debug"
  echo "warning: '$build_type' build; writing BENCH_<name>.debug.json \
sidecars, canonical BENCH_*.json untouched" >&2
fi

# Gate: observability overhead budget.  Perf numbers are only worth recording
# when catalyst::obs is within its <2% envelope.
overhead_bin="$build_dir/bench/obs_overhead"
if [ ! -x "$overhead_bin" ]; then
  echo "error: $overhead_bin not built (run: cmake --build $build_dir)" >&2
  exit 1
fi
echo "== obs_overhead (budget gate)"
"$overhead_bin" || {
  echo "error: obs overhead budget exceeded; not recording bench results" >&2
  exit 1
}

# Refuse cross-commit overwrites up front, before any slow bench runs.
if [ "$force" -ne 1 ]; then
  for name in pipeline linalg service; do
    out="$repo_root/BENCH_$name$out_suffix.json"
    [ -f "$out" ] || continue
    old_sha="$(python3 - "$out" <<'PY'
import json, sys
try:
    with open(sys.argv[1], encoding="utf-8") as f:
        doc = json.load(f)
    print(doc.get("catalyst_provenance", {}).get("git_sha", ""))
except Exception:
    print("")
PY
)"
    if [ -n "$old_sha" ] && [ "$old_sha" != "$git_sha" ]; then
      echo "error: $out was recorded at commit $old_sha but HEAD is \
$git_sha; pass --force to overwrite" >&2
      exit 1
    fi
  done
fi

# Capture a run manifest from the CLI so each BENCH file embeds the full
# pipeline configuration (tau/alpha, stage timings, funnel counts).
manifest_json="$(mktemp)"
trap 'rm -f "$manifest_json"' EXIT
cli_bin="$build_dir/tools/catalyst"
if [ -x "$cli_bin" ]; then
  echo "== catalyst analyze branch --manifest-out (provenance manifest)"
  CATALYST_GIT_SHA="$git_sha" \
    "$cli_bin" analyze branch --manifest-out "$manifest_json" > /dev/null
else
  echo "warning: $cli_bin not built; provenance will omit the run manifest" >&2
  printf 'null' > "$manifest_json"
fi

for name in pipeline linalg; do
  bin="$build_dir/bench/perf_$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (configure with -DCATALYST_BUILD_BENCH=ON \
and run: cmake --build $build_dir)" >&2
    exit 1
  fi
  out="$repo_root/BENCH_$name$out_suffix.json"
  tmp_out="$(mktemp)"
  echo "== perf_$name -> $out"
  "$bin" --benchmark_out="$tmp_out" --benchmark_out_format=json \
         ${extra_args[@]+"${extra_args[@]}"}

  GIT_SHA="$git_sha" TIMESTAMP_UTC="$timestamp_utc" \
  BUILD_TYPE="$build_type" COMPILER="$compiler" \
  python3 - "$tmp_out" "$manifest_json" "$out" <<'PY'
import json, os, sys

bench_path, manifest_path, out_path = sys.argv[1:4]
with open(bench_path, encoding="utf-8") as f:
    doc = json.load(f)
with open(manifest_path, encoding="utf-8") as f:
    manifest = json.load(f)
doc["catalyst_provenance"] = {
    "git_sha": os.environ["GIT_SHA"],
    "timestamp_utc": os.environ["TIMESTAMP_UTC"],
    "build_type": os.environ["BUILD_TYPE"],
    "compiler": os.environ["COMPILER"],
    "run_manifest": manifest,
}
with open(out_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
  rm -f "$tmp_out"
done

# service_load is not a google-benchmark binary: it writes its own result
# document (--json-out) after pushing a closed-loop load through the full
# wire->queue->engine stack, with latency scraped back over STATS frames.
bin="$build_dir/bench/service_load"
if [ ! -x "$bin" ]; then
  echo "error: $bin not built (run: cmake --build $build_dir)" >&2
  exit 1
fi
out="$repo_root/BENCH_service$out_suffix.json"
tmp_out="$(mktemp)"
echo "== service_load -> $out"
"$bin" --json-out "$tmp_out"

GIT_SHA="$git_sha" TIMESTAMP_UTC="$timestamp_utc" \
BUILD_TYPE="$build_type" COMPILER="$compiler" \
python3 - "$tmp_out" "$manifest_json" "$out" <<'PY'
import json, os, sys

bench_path, manifest_path, out_path = sys.argv[1:4]
with open(bench_path, encoding="utf-8") as f:
    doc = json.load(f)
with open(manifest_path, encoding="utf-8") as f:
    manifest = json.load(f)
doc["catalyst_provenance"] = {
    "git_sha": os.environ["GIT_SHA"],
    "timestamp_utc": os.environ["TIMESTAMP_UTC"],
    "build_type": os.environ["BUILD_TYPE"],
    "compiler": os.environ["COMPILER"],
    "run_manifest": manifest,
}
with open(out_path, "w", encoding="utf-8") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PY
rm -f "$tmp_out"
