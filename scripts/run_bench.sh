#!/usr/bin/env bash
# Runs the google-benchmark perf binaries and records their JSON output at
# the repo root for per-PR performance trajectory tracking:
#   BENCH_pipeline.json  <- bench/perf_pipeline (collection + pipeline)
#   BENCH_linalg.json    <- bench/perf_linalg   (QR / QRCP / LS kernels)
#
# Usage: scripts/run_bench.sh [build-dir] [extra google-benchmark args...]
#   scripts/run_bench.sh                       # default ./build
#   scripts/run_bench.sh build --benchmark_filter=BM_Measure
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
if [ $# -gt 0 ]; then shift; fi

for name in pipeline linalg; do
  bin="$build_dir/bench/perf_$name"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not built (configure with -DCATALYST_BUILD_BENCH=ON \
and run: cmake --build $build_dir)" >&2
    exit 1
  fi
  out="$repo_root/BENCH_$name.json"
  echo "== perf_$name -> $out"
  "$bin" --benchmark_out="$out" --benchmark_out_format=json "$@"
done
