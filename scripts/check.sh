#!/usr/bin/env bash
# catalyst correctness-analysis driver.
#
# Runs the full verification matrix in order of increasing cost:
#
#   1. catalyst-lint        repo-specific static checks (tools/catalyst_lint.py)
#   1b. quick               unit/linalg-labeled tests only; the
#                           sub-minute developer tier, budget-enforced (<60s)
#   2. Release build + ctest    the default configuration users get
#   3. ASan+UBSan build + ctest heap/UB errors the Release build hides
#   4. TSan build + ctest       data races in the threaded gemm/collector
#   4b. tsan_linalg             the linalg suite alone under TSan (blocked
#                               GEMM/QR/QRCP with worker threads > 1)
#   5. fault_pipeline           Tables V-VIII pipeline under the canonical
#                               mid-rate FaultPlan vs the clean goldens
#   6. obs                      trace + run-manifest artifacts are schema-valid
#                               (clean and under injected faults)
#   7. clang-tidy               if clang-tidy is installed (SKIPPED otherwise)
#
# The thread_safety stage (between quick/release and the sanitizers) builds
# the tree under Clang with -Werror=thread-safety*; it is SKIPPED with a
# visible line when clang++ is not installed -- the annotations are no-ops
# under gcc, so only a Clang build can check them.
#
# Every selected stage runs even after a failure; a PASS/FAIL/SKIP summary
# table prints at the end and the exit code is capped at 1 (any failure)
# so CI wrappers and `$?` checks behave predictably.  Stages can be
# selected:
#   scripts/check.sh              # everything
#   scripts/check.sh lint release # just those stages
#
# Build trees go to build-check-<stage> so they never collide with a
# developer's ./build.

set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0
STAGE_NAMES=()
STAGE_RESULTS=()

note() { printf '\n==== %s ====\n' "$*"; }

# A stage function returns 0 (PASS), 77 (SKIP: a tool the stage needs is not
# installed -- the automake convention), or anything else (FAIL).  Failures
# do not stop the run; the summary table and capped exit code report them.
run_stage() {
    local name="$1"; shift
    note "$name"
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -eq 0 ]; then
        printf '==== %s: OK ====\n' "$name"
        STAGE_RESULTS+=("PASS")
    elif [ "$rc" -eq 77 ]; then
        printf '==== %s: SKIPPED ====\n' "$name"
        STAGE_RESULTS+=("SKIP")
    else
        printf '==== %s: FAILED ====\n' "$name" >&2
        FAILURES=$((FAILURES + 1))
        STAGE_RESULTS+=("FAIL")
    fi
    STAGE_NAMES+=("$name")
}

build_and_test() {
    local dir="$1"; shift
    mkdir -p "$dir"
    cmake -B "$dir" -S . "$@" > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" --timeout 300)
}

stage_lint() {
    # The 5s budget keeps the full-repo lint cheap enough to never skip;
    # the selftest keeps the linter itself honest.
    python3 tools/catalyst_lint.py --max-seconds 5 \
        && python3 tools/catalyst_lint.py --selftest
}

stage_release() {
    build_and_test build-check-release -DCMAKE_BUILD_TYPE=Release
}

stage_quick() {
    # The sub-minute developer tier: unit-labeled ctest entries only (see
    # tests/CMakeLists.txt for the label taxonomy).  The 60s budget is
    # enforced -- a unit test that outgrows it belongs in integration/slow.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    local start end elapsed
    start="$(date +%s)"
    (cd "$dir" && ctest --output-on-failure -L 'unit|linalg' -j "$JOBS" --timeout 120) \
        || return 1
    end="$(date +%s)"
    elapsed=$((end - start))
    printf 'quick tier wall time: %ss (budget 60s)\n' "$elapsed"
    if [ "$elapsed" -ge 60 ]; then
        printf 'quick tier exceeded its 60s budget\n' >&2
        return 1
    fi
}

stage_thread_safety() {
    # Clang thread-safety analysis over the whole tree (src/sync carries the
    # capability annotations; -DCATALYST_THREAD_SAFETY=ON promotes the
    # -Wthread-safety* groups to errors).  Build-only: with the warnings
    # -Werror'd, a clean build IS the pass.  gcc compiles the annotations
    # to nothing, so without clang++ this stage can only be skipped --
    # loudly, so nobody mistakes a skip for a pass.
    if ! command -v clang++ > /dev/null 2>&1; then
        echo "SKIPPED: clang++ not installed; thread-safety analysis needs Clang"
        return 77
    fi
    local dir=build-check-threadsafety
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DCATALYST_THREAD_SAFETY=ON > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    ln -sfn "$dir/compile_commands.json" compile_commands.json
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
}

stage_asan_ubsan() {
    build_and_test build-check-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCATALYST_ASAN=ON -DCATALYST_UBSAN=ON
}

stage_tsan() {
    build_and_test build-check-tsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCATALYST_TSAN=ON
}

stage_tsan_linalg() {
    # Focused race hunt on the blocked linear algebra: the linalg test
    # suite (which drives the blocked GEMM/QR/QRCP paths with threads > 1)
    # under TSan.  Reuses the full-TSan tree so the targeted run is cheap
    # after (or instead of) the whole-suite tsan stage.
    local dir=build-check-tsan
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCATALYST_TSAN=ON > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -L linalg --no-tests=error --timeout 300)
}

stage_fault_pipeline() {
    # The full paper pipeline under the canonical mid-rate fault plan must
    # reproduce the clean kept events + rounded coefficients (the resilient
    # driver's bit-identity claim, end to end).  Reuses the release tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -R '^fault_pipeline$' --timeout 300)
}

stage_obs() {
    # The observability artifacts (--trace-out / --manifest-out) must be
    # schema-valid both on a clean run and under the canonical mid-rate
    # fault plan (where retry/backoff spans appear).  Reuses the release
    # tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" --target catalyst > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    local tmp
    tmp="$(mktemp -d)" || return 1
    local rc=0
    "$dir/tools/catalyst" analyze branch \
        --trace-out "$tmp/trace.json" --manifest-out "$tmp/manifest.json" \
        --stats > "$tmp/report.md" || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
        "$tmp/trace.json" \
        --require-span stage.collect --require-span stage.noise_filter \
        --require-span stage.projection --require-span stage.qrcp \
        --require-span stage.metrics || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind manifest \
        "$tmp/manifest.json" --require-span stage.qrcp || rc=1
    # Faulty run: retry + backoff spans must show up and still validate.
    [ "$rc" -eq 0 ] && "$dir/tools/catalyst" collect branch --faults mid \
        --out "$tmp/archive.json" \
        --trace-out "$tmp/trace_faults.json" > "$tmp/collect.md" || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
        "$tmp/trace_faults.json" --require-span collect.retry \
        --require-span collect.backoff || rc=1
    rm -rf "$tmp"
    return "$rc"
}

stage_tidy() {
    if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "SKIPPED: clang-tidy not installed (install it to enable)"
        return 77
    fi
    local dir=build-check-tidy
    mkdir -p "$dir"
    # CMAKE_EXPORT_COMPILE_COMMANDS is on for every configure (top-level
    # CMakeLists); the symlink publishes this tree's database at the repo
    # root, where clang-tidy, clangd, and editors expect it.
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    ln -sfn "$dir/compile_commands.json" compile_commands.json
    # Headers are covered through HeaderFilterRegex in .clang-tidy.
    find src -name '*.cpp' -print0 \
        | xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$dir" --quiet
}

ALL_STAGES="lint quick release thread_safety asan_ubsan tsan tsan_linalg fault_pipeline obs tidy"
STAGES="${*:-$ALL_STAGES}"

for stage in $STAGES; do
    case "$stage" in
        lint)       run_stage "catalyst-lint" stage_lint ;;
        quick)      run_stage "quick tier (ctest -L 'unit|linalg')" stage_quick ;;
        release)    run_stage "Release build + tests" stage_release ;;
        thread_safety)
                    run_stage "Clang thread-safety analysis (-Werror)" \
                              stage_thread_safety ;;
        asan_ubsan) run_stage "ASan+UBSan build + tests" stage_asan_ubsan ;;
        tsan)       run_stage "TSan build + tests" stage_tsan ;;
        tsan_linalg)
                    run_stage "TSan linalg suite (blocked kernels, threads>1)" \
                              stage_tsan_linalg ;;
        fault_pipeline)
                    run_stage "fault-injected pipeline vs clean goldens" \
                              stage_fault_pipeline ;;
        obs)        run_stage "obs trace/manifest schema validation" stage_obs ;;
        tidy)       run_stage "clang-tidy" stage_tidy ;;
        *)
            echo "unknown stage: $stage (choose from: $ALL_STAGES)" >&2
            exit 2
            ;;
    esac
done

# Per-stage summary; the exit code is capped at 1 no matter how many
# stages failed (an uncapped count could alias mod 256 -- e.g. 256
# failures would exit "0").
printf '\n==== summary ====\n'
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-4s  %s\n' "${STAGE_RESULTS[$i]}" "${STAGE_NAMES[$i]}"
done
if [ "$FAILURES" -ne 0 ]; then
    printf '\n%d stage(s) failed\n' "$FAILURES" >&2
    exit 1
fi
printf '\nall stages passed\n'
exit 0
