#!/usr/bin/env bash
# catalyst correctness-analysis driver.
#
# Runs the full verification matrix in order of increasing cost:
#
#   1. catalyst-lint        repo-specific static checks (tools/catalyst_lint.py)
#   1b. quick               unit/linalg-labeled tests only; the
#                           sub-minute developer tier, budget-enforced (<60s)
#   2. Release build + ctest    the default configuration users get
#   3. ASan+UBSan build + ctest heap/UB errors the Release build hides
#   4. TSan build + ctest       data races in the threaded gemm/collector
#   4b. tsan_linalg             the linalg suite alone under TSan (blocked
#                               GEMM/QR/QRCP with worker threads > 1)
#   5. fault_pipeline           Tables V-VIII pipeline under the canonical
#                               mid-rate FaultPlan vs the clean goldens
#   5b. collection_modes        counting-vs-sampling recovery oracle, quick
#                               ratchet tier (bench/ablation_collection_modes
#                               --quick), budget-enforced (<60s)
#   6. obs                      trace + run-manifest artifacts are schema-valid
#                               (clean and under injected faults)
#   7. clang-tidy               if clang-tidy is installed (SKIPPED otherwise)
#
# The thread_safety stage (between quick/release and the sanitizers) builds
# the tree under Clang with -Werror=thread-safety*; it is SKIPPED with a
# visible line when clang++ is not installed -- the annotations are no-ops
# under gcc, so only a Clang build can check them.
#
# Every selected stage runs even after a failure; a PASS/FAIL/SKIP summary
# table prints at the end and the exit code is capped at 1 (any failure)
# so CI wrappers and `$?` checks behave predictably.  Stages can be
# selected:
#   scripts/check.sh              # everything
#   scripts/check.sh lint release # just those stages
#
# Build trees go to build-check-<stage> so they never collide with a
# developer's ./build.

set -u

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

JOBS="$(nproc 2>/dev/null || echo 4)"
FAILURES=0
STAGE_NAMES=()
STAGE_RESULTS=()

note() { printf '\n==== %s ====\n' "$*"; }

# A stage function returns 0 (PASS), 77 (SKIP: a tool the stage needs is not
# installed -- the automake convention), or anything else (FAIL).  Failures
# do not stop the run; the summary table and capped exit code report them.
run_stage() {
    local name="$1"; shift
    note "$name"
    local rc=0
    "$@" || rc=$?
    if [ "$rc" -eq 0 ]; then
        printf '==== %s: OK ====\n' "$name"
        STAGE_RESULTS+=("PASS")
    elif [ "$rc" -eq 77 ]; then
        printf '==== %s: SKIPPED ====\n' "$name"
        STAGE_RESULTS+=("SKIP")
    else
        printf '==== %s: FAILED ====\n' "$name" >&2
        FAILURES=$((FAILURES + 1))
        STAGE_RESULTS+=("FAIL")
    fi
    STAGE_NAMES+=("$name")
}

build_and_test() {
    local dir="$1"; shift
    mkdir -p "$dir"
    cmake -B "$dir" -S . "$@" > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -j "$JOBS" --timeout 300)
}

stage_lint() {
    # The 5s budget keeps the full-repo lint cheap enough to never skip;
    # the selftest keeps the linter itself honest.
    python3 tools/catalyst_lint.py --max-seconds 5 \
        && python3 tools/catalyst_lint.py --selftest
}

stage_release() {
    build_and_test build-check-release -DCMAKE_BUILD_TYPE=Release
}

stage_quick() {
    # The sub-minute developer tier: unit-labeled ctest entries only (see
    # tests/CMakeLists.txt for the label taxonomy).  The 60s budget is
    # enforced -- a unit test that outgrows it belongs in integration/slow.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    local start end elapsed
    start="$(date +%s)"
    (cd "$dir" && ctest --output-on-failure -L 'unit|linalg' -j "$JOBS" --timeout 120) \
        || return 1
    end="$(date +%s)"
    elapsed=$((end - start))
    printf 'quick tier wall time: %ss (budget 60s)\n' "$elapsed"
    if [ "$elapsed" -ge 60 ]; then
        printf 'quick tier exceeded its 60s budget\n' >&2
        return 1
    fi
}

stage_thread_safety() {
    # Clang thread-safety analysis over the whole tree (src/sync carries the
    # capability annotations; -DCATALYST_THREAD_SAFETY=ON promotes the
    # -Wthread-safety* groups to errors).  Build-only: with the warnings
    # -Werror'd, a clean build IS the pass.  gcc compiles the annotations
    # to nothing, so without clang++ this stage can only be skipped --
    # loudly, so nobody mistakes a skip for a pass.
    if ! command -v clang++ > /dev/null 2>&1; then
        echo "SKIPPED: clang++ not installed; thread-safety analysis needs Clang"
        return 77
    fi
    local dir=build-check-threadsafety
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++ \
        -DCATALYST_THREAD_SAFETY=ON > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    ln -sfn "$dir/compile_commands.json" compile_commands.json
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
}

stage_asan_ubsan() {
    build_and_test build-check-asan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCATALYST_ASAN=ON -DCATALYST_UBSAN=ON
}

stage_tsan() {
    build_and_test build-check-tsan \
        -DCMAKE_BUILD_TYPE=RelWithDebInfo -DCATALYST_TSAN=ON
}

stage_tsan_linalg() {
    # Focused race hunt on the blocked linear algebra: the linalg test
    # suite (which drives the blocked GEMM/QR/QRCP paths with threads > 1)
    # under TSan.  Reuses the full-TSan tree so the targeted run is cheap
    # after (or instead of) the whole-suite tsan stage.
    local dir=build-check-tsan
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DCATALYST_TSAN=ON > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -L linalg --no-tests=error --timeout 300)
}

stage_fault_pipeline() {
    # The full paper pipeline under the canonical mid-rate fault plan must
    # reproduce the clean kept events + rounded coefficients (the resilient
    # driver's bit-identity claim, end to end).  Reuses the release tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    (cd "$dir" && ctest --output-on-failure -R '^fault_pipeline$' --timeout 300)
}

stage_collection_modes() {
    # The counting-vs-sampling recovery oracle: sweep the quick ratchet of
    # sampling ratios and fail on any wrong-model recovery (counting must be
    # >=95% exact with zero wrong; sampling/strobed may degrade but may
    # never recover a wrong model).  The oracle binary enforces those gates
    # itself; this stage just keeps it wired into CI under a time budget.
    # Reuses the release tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" \
        --target ablation_collection_modes > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    local start elapsed rc=0
    start="$(date +%s)"
    "$dir/bench/ablation_collection_modes" --quick || rc=1
    elapsed=$(( $(date +%s) - start ))
    printf 'collection-modes oracle wall time: %ss (budget 60s)\n' "$elapsed"
    if [ "$elapsed" -ge 60 ]; then
        printf 'collection-modes oracle exceeded its 60s budget\n' >&2
        return 1
    fi
    return "$rc"
}

stage_obs() {
    # The observability artifacts (--trace-out / --manifest-out) must be
    # schema-valid both on a clean run and under the canonical mid-rate
    # fault plan (where retry/backoff spans appear).  Then a short-lived
    # daemon proves the live-telemetry artifacts: a STATS scrape (wire ->
    # snapshot -> exposition), a per-request trace fragment fetched by id,
    # and a SIGUSR1 flight-recorder dump, each run through the schema
    # checker.  Reuses the release tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" \
        --target catalyst catalystd catalyst_client > "$dir/build.log" 2>&1 \
        || { tail -n 60 "$dir/build.log"; return 1; }
    local tmp
    tmp="$(mktemp -d)" || return 1
    local rc=0
    "$dir/tools/catalyst" analyze branch \
        --trace-out "$tmp/trace.json" --manifest-out "$tmp/manifest.json" \
        --stats > "$tmp/report.md" || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
        "$tmp/trace.json" \
        --require-span stage.collect --require-span stage.noise_filter \
        --require-span stage.projection --require-span stage.qrcp \
        --require-span stage.metrics || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind manifest \
        "$tmp/manifest.json" --require-span stage.qrcp || rc=1
    # Faulty run: retry + backoff spans must show up and still validate.
    [ "$rc" -eq 0 ] && "$dir/tools/catalyst" collect branch --faults mid \
        --out "$tmp/archive.json" \
        --trace-out "$tmp/trace_faults.json" > "$tmp/collect.md" || rc=1
    [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
        "$tmp/trace_faults.json" --require-span collect.retry \
        --require-span collect.backoff || rc=1
    # Live telemetry artifacts, via a short-lived daemon serving the archive
    # the faulty collect just wrote.
    if [ "$rc" -eq 0 ]; then
        local sock="$tmp/obsd.sock" dpid="" i
        "$dir/tools/catalystd" --socket "$sock" \
            --flight-dump "$tmp/flight.json" > "$tmp/obsd.log" 2>&1 &
        dpid=$!
        for i in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
        [ -S "$sock" ] \
            || { echo "obs daemon never bound $sock" >&2
                 cat "$tmp/obsd.log" >&2; rc=1; }
        [ "$rc" -eq 0 ] && { "$dir/tools/catalyst_client" --socket "$sock" \
            submit branch --from "$tmp/archive.json" --trace-id 4242 --wait \
            > /dev/null || rc=1; }
        # STATS round trip: the scraped exposition is a valid metrics doc.
        [ "$rc" -eq 0 ] && { "$dir/tools/catalyst_client" --socket "$sock" \
            stats > "$tmp/stats.json" || rc=1; }
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind metrics \
            "$tmp/stats.json" || rc=1
        # The traced request's fragment is itself a valid Chrome trace.
        [ "$rc" -eq 0 ] && { "$dir/tools/catalyst_client" --socket "$sock" \
            trace 4242 > "$tmp/fragment.json" || rc=1; }
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
            "$tmp/fragment.json" --require-span service.request || rc=1
        # SIGUSR1 dumps the flight ring; the dump is atomic, so existence
        # means complete.
        if [ "$rc" -eq 0 ]; then
            kill -USR1 "$dpid"
            for i in $(seq 1 50); do
                [ -f "$tmp/flight.json" ] && break; sleep 0.1
            done
            [ -f "$tmp/flight.json" ] \
                || { echo "SIGUSR1 produced no flight dump" >&2; rc=1; }
        fi
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind flight \
            "$tmp/flight.json" --require-trace 4242 || rc=1
        if [ -n "$dpid" ]; then
            kill -TERM "$dpid" 2>/dev/null
            wait "$dpid" || rc=1
        fi
    fi
    rm -rf "$tmp"
    return "$rc"
}

stage_service_soak() {
    # catalystd under abuse: the service-labeled ctest tier, then a live
    # daemon serving an honest client fleet alongside a garbage sender and a
    # slow loris -- zero crashes, typed errors only, byte-identical reports
    # vs the CLI path, monotone mid-load STATS scrapes, a trace fragment
    # fetched by id, a SIGUSR1 flight dump, a clean mid-load SIGTERM drain,
    # and a restart on the same checkpoint directory.  Budget-enforced
    # (<60s).  Reuses the release tree.
    local dir=build-check-release
    mkdir -p "$dir"
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS" \
        --target catalystd catalyst_client catalyst service_protocol_test \
                 service_telemetry_test service_telemetry_disabled_test \
        > "$dir/build.log" 2>&1 || { tail -n 60 "$dir/build.log"; return 1; }
    local start tmp rc=0
    start="$(date +%s)"
    tmp="$(mktemp -d)" || return 1
    local sock="$tmp/catalystd.sock" log="$tmp/daemon.log" ckpt="$tmp/ckpt"
    local daemon_pid=""

    # Protocol + byte-identity tests with the sockets cut away.
    (cd "$dir" && ctest --output-on-failure -L service --no-tests=error \
        --timeout 120) || rc=1

    # One measurement archive serves every client below.
    [ "$rc" -eq 0 ] && { "$dir/tools/catalyst" collect branch \
        --out "$tmp/archive.json" > /dev/null || rc=1; }

    if [ "$rc" -eq 0 ]; then
        "$dir/tools/catalystd" --socket "$sock" --checkpoint-dir "$ckpt" \
            --partial-frame-timeout-ms 300 \
            --flight-dump "$tmp/flight.json" > "$log" 2>&1 &
        daemon_pid=$!
        local i
        for i in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
        [ -S "$sock" ] \
            || { echo "daemon never bound $sock" >&2; cat "$log" >&2; rc=1; }
    fi

    # Byte identity over the live socket: the served report must appear
    # verbatim inside the CLI report for the same archive (the CLI adds a
    # preamble; the event/metric tables themselves are byte-identical).
    if [ "$rc" -eq 0 ]; then
        "$dir/tools/catalyst" analyze branch --from "$tmp/archive.json" \
            > "$tmp/cli.txt" || rc=1
        "$dir/tools/catalyst_client" --socket "$sock" submit branch \
            --from "$tmp/archive.json" --wait > "$tmp/svc.txt" || rc=1
        [ "$rc" -eq 0 ] && python3 - "$tmp/cli.txt" "$tmp/svc.txt" <<'EOF' || rc=1
import sys
cli, svc = open(sys.argv[1]).read(), open(sys.argv[2]).read()
sys.exit(0 if svc and svc in cli else 1)
EOF
    fi

    # The abuse fleet: honest clients + a garbage sender (expects a typed
    # ERROR, never a crash) + a slow loris (expects to be cut off).  While
    # it runs, scrape STATS twice: both polls must be schema-valid metrics
    # expositions and no counter may go backwards between them.
    if [ "$rc" -eq 0 ]; then
        "$dir/tools/catalyst_client" --socket "$sock" soak \
            --clients 4 --requests 6 --category branch \
            --from "$tmp/archive.json" \
            --garbage --slow-loris --dribble-ms 150 \
            > "$tmp/soak1.log" 2>&1 &
        local fleet_pid=$!
        "$dir/tools/catalyst_client" --socket "$sock" stats \
            > "$tmp/stats1.json" || rc=1
        sleep 0.3
        "$dir/tools/catalyst_client" --socket "$sock" stats \
            > "$tmp/stats2.json" || rc=1
        wait "$fleet_pid" \
            || { echo "abuse fleet failed" >&2; cat "$tmp/soak1.log" >&2
                 rc=1; }
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind metrics \
            "$tmp/stats1.json" || rc=1
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind metrics \
            "$tmp/stats2.json" --monotone-baseline "$tmp/stats1.json" || rc=1
    fi

    # A traced request's fragment is fetchable by id, and SIGUSR1 dumps a
    # flight ring that remembers it (the dump is written atomically, so
    # existence means complete).
    if [ "$rc" -eq 0 ]; then
        "$dir/tools/catalyst_client" --socket "$sock" submit branch \
            --from "$tmp/archive.json" --trace-id 9001 --wait \
            > /dev/null || rc=1
        [ "$rc" -eq 0 ] && { "$dir/tools/catalyst_client" --socket "$sock" \
            trace 9001 > "$tmp/fragment.json" || rc=1; }
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind trace \
            "$tmp/fragment.json" --require-span service.request || rc=1
        if [ "$rc" -eq 0 ]; then
            kill -USR1 "$daemon_pid"
            for i in $(seq 1 50); do
                [ -f "$tmp/flight.json" ] && break; sleep 0.1
            done
            [ -f "$tmp/flight.json" ] \
                || { echo "SIGUSR1 produced no flight dump" >&2; rc=1; }
        fi
        [ "$rc" -eq 0 ] && python3 tools/trace_schema_check.py --kind flight \
            "$tmp/flight.json" --require-trace 9001 || rc=1
    fi

    # Mid-load SIGTERM: fire a bigger fleet, yank the daemon under it, and
    # require a clean drain (exit 0) from BOTH sides.
    if [ "$rc" -eq 0 ]; then
        "$dir/tools/catalyst_client" --socket "$sock" soak \
            --clients 2 --requests 200 --category branch \
            --from "$tmp/archive.json" > "$tmp/soak2.log" 2>&1 &
        local soak_pid=$!
        sleep 0.4
        kill -TERM "$daemon_pid"
        wait "$daemon_pid" \
            || { echo "daemon exited nonzero after SIGTERM" >&2
                 tail "$log" >&2; rc=1; }
        daemon_pid=""
        wait "$soak_pid" \
            || { echo "client fleet failed during the drain" >&2
                 cat "$tmp/soak2.log" >&2; rc=1; }
        [ "$rc" -eq 0 ] && { grep -q "drained" "$log" \
            || { echo "daemon log missing the drain banner" >&2; rc=1; }; }
    elif [ -n "$daemon_pid" ]; then
        kill -TERM "$daemon_pid" 2>/dev/null
        wait "$daemon_pid" 2>/dev/null
        daemon_pid=""
    fi

    # Restart on the same checkpoint directory: any work parked by the
    # SIGTERM is restored (the daemon says so) and the daemon serves again.
    if [ "$rc" -eq 0 ]; then
        rm -f "$sock"  # else the [ -S ] wait below sees the dead daemon's file
        "$dir/tools/catalystd" --socket "$sock" --checkpoint-dir "$ckpt" \
            > "$tmp/daemon2.log" 2>&1 &
        daemon_pid=$!
        for i in $(seq 1 50); do [ -S "$sock" ] && break; sleep 0.1; done
        "$dir/tools/catalyst_client" --socket "$sock" submit branch \
            --from "$tmp/archive.json" --wait > /dev/null || rc=1
        kill -TERM "$daemon_pid"
        wait "$daemon_pid" || rc=1
    fi

    rm -rf "$tmp"
    local elapsed=$(( $(date +%s) - start ))
    printf 'service soak wall time: %ss (budget 60s)\n' "$elapsed"
    if [ "$elapsed" -ge 60 ]; then
        printf 'service soak exceeded its 60s budget\n' >&2
        return 1
    fi
    return "$rc"
}

stage_tidy() {
    if ! command -v clang-tidy > /dev/null 2>&1; then
        echo "SKIPPED: clang-tidy not installed (install it to enable)"
        return 77
    fi
    local dir=build-check-tidy
    mkdir -p "$dir"
    # CMAKE_EXPORT_COMPILE_COMMANDS is on for every configure (top-level
    # CMakeLists); the symlink publishes this tree's database at the repo
    # root, where clang-tidy, clangd, and editors expect it.
    cmake -B "$dir" -S . -DCMAKE_BUILD_TYPE=Release > "$dir/configure.log" 2>&1 \
        || { cat "$dir/configure.log"; return 1; }
    ln -sfn "$dir/compile_commands.json" compile_commands.json
    # Headers are covered through HeaderFilterRegex in .clang-tidy.
    find src -name '*.cpp' -print0 \
        | xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$dir" --quiet
}

ALL_STAGES="lint quick release thread_safety asan_ubsan tsan tsan_linalg fault_pipeline collection_modes obs service_soak tidy"
STAGES="${*:-$ALL_STAGES}"

for stage in $STAGES; do
    case "$stage" in
        lint)       run_stage "catalyst-lint" stage_lint ;;
        quick)      run_stage "quick tier (ctest -L 'unit|linalg')" stage_quick ;;
        release)    run_stage "Release build + tests" stage_release ;;
        thread_safety)
                    run_stage "Clang thread-safety analysis (-Werror)" \
                              stage_thread_safety ;;
        asan_ubsan) run_stage "ASan+UBSan build + tests" stage_asan_ubsan ;;
        tsan)       run_stage "TSan build + tests" stage_tsan ;;
        tsan_linalg)
                    run_stage "TSan linalg suite (blocked kernels, threads>1)" \
                              stage_tsan_linalg ;;
        fault_pipeline)
                    run_stage "fault-injected pipeline vs clean goldens" \
                              stage_fault_pipeline ;;
        collection_modes)
                    run_stage "collection-modes recovery oracle (quick ratchet)" \
                              stage_collection_modes ;;
        obs)        run_stage "obs artifact schema validation" stage_obs ;;
        service_soak)
                    run_stage "catalystd soak (fleet + garbage + loris + SIGTERM)" \
                              stage_service_soak ;;
        tidy)       run_stage "clang-tidy" stage_tidy ;;
        *)
            echo "unknown stage: $stage (choose from: $ALL_STAGES)" >&2
            exit 2
            ;;
    esac
done

# Per-stage summary; the exit code is capped at 1 no matter how many
# stages failed (an uncapped count could alias mod 256 -- e.g. 256
# failures would exit "0").
printf '\n==== summary ====\n'
for i in "${!STAGE_NAMES[@]}"; do
    printf '  %-4s  %s\n' "${STAGE_RESULTS[$i]}" "${STAGE_NAMES[$i]}"
done
if [ "$FAILURES" -ne 0 ]; then
    printf '\n%d stage(s) failed\n' "$FAILURES" >&2
    exit 1
fi
printf '\nall stages passed\n'
exit 0
