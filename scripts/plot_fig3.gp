# gnuplot script for Fig. 3: cache metric approximations vs signatures.
#
# Generate the data first (one block per metric, separated by blank lines):
#   ./build/bench/fig3_dcache_approx > fig3.dat
# then plot panel N (0-based):
#   gnuplot -e "datafile='fig3.dat'; panel=0; outfile='fig3a.png'" scripts/plot_fig3.gp
if (!exists("datafile")) datafile = "fig3.dat"
if (!exists("panel")) panel = 0
if (!exists("outfile")) outfile = "fig3.png"

set terminal pngcairo size 900,500
set output outfile
set yrange [0:3]
set xlabel "Pointer Chain Size (slot index: L1,L2,L3,M x strides)"
set ylabel "Normalized Event Counts"
set key top right
plot datafile index panel using 2 with linespoints pt 7 title "combination", \
     ''       index panel using 3 with linespoints pt 5 title "signature"
