#!/usr/bin/env bash
# Regenerates the golden table files under tests/golden/ after an INTENDED
# output change:
#
#   scripts/update_golden.sh [build-dir]
#
# Builds golden_tables_test (default tree: ./build) and re-runs it with
# CATALYST_UPDATE_GOLDEN=1, which makes the test rewrite each golden file
# instead of comparing against it.  Review the resulting diff before
# committing -- the goldens ARE the published table content (Tables V-VIII).

set -eu

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "$REPO_ROOT"

DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$DIR" -S . > /dev/null
cmake --build "$DIR" -j "$JOBS" --target golden_tables_test > /dev/null

mkdir -p tests/golden
CATALYST_UPDATE_GOLDEN=1 "$DIR/tests/golden_tables_test" \
    --gtest_brief=1

echo "regenerated goldens:"
git -C "$REPO_ROOT" status --short tests/golden || ls tests/golden
