# gnuplot script for Fig. 2: sorted max-RNMSE event variabilities.
#
# Generate the data first:
#   ./build/bench/fig2_variability branch    > fig2a.dat
#   ./build/bench/fig2_variability cpu_flops > fig2b.dat
#   ./build/bench/fig2_variability gpu_flops > fig2c.dat
#   ./build/bench/fig2_variability dcache    > fig2d.dat
# then:
#   gnuplot -e "datafile='fig2a.dat'; tau=1e-10; outfile='fig2a.png'" scripts/plot_fig2.gp
if (!exists("datafile")) datafile = "fig2a.dat"
if (!exists("tau")) tau = 1e-10
if (!exists("outfile")) outfile = "fig2.png"

set terminal pngcairo size 800,500
set output outfile
set logscale y
set format y "10^{%L}"
set xlabel "Event Index"
set ylabel "Max. RNMSE Variability"
set title "Sorted Event Variabilities"
set key top left
plot datafile using 1:2 with points pt 7 ps 0.5 title "events", \
     tau with lines lw 2 dt 2 title sprintf("tau = %.0e", tau)
