add_test([=[SessionModel.RandomOperationSequencesMatchReference]=]  /root/repo/build/tests/session_model_test [==[--gtest_filter=SessionModel.RandomOperationSequencesMatchReference]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[SessionModel.RandomOperationSequencesMatchReference]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  session_model_test_TESTS SessionModel.RandomOperationSequencesMatchReference)
