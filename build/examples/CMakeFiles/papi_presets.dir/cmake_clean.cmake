file(REMOVE_RECURSE
  "CMakeFiles/papi_presets.dir/papi_presets.cpp.o"
  "CMakeFiles/papi_presets.dir/papi_presets.cpp.o.d"
  "papi_presets"
  "papi_presets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/papi_presets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
