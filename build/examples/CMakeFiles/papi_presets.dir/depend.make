# Empty dependencies file for papi_presets.
# This may be replaced when dependencies are built.
