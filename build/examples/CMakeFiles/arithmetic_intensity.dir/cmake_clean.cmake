file(REMOVE_RECURSE
  "CMakeFiles/arithmetic_intensity.dir/arithmetic_intensity.cpp.o"
  "CMakeFiles/arithmetic_intensity.dir/arithmetic_intensity.cpp.o.d"
  "arithmetic_intensity"
  "arithmetic_intensity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arithmetic_intensity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
