# Empty dependencies file for gpu_metrics.
# This may be replaced when dependencies are built.
