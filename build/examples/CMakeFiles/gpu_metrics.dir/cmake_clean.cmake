file(REMOVE_RECURSE
  "CMakeFiles/gpu_metrics.dir/gpu_metrics.cpp.o"
  "CMakeFiles/gpu_metrics.dir/gpu_metrics.cpp.o.d"
  "gpu_metrics"
  "gpu_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
