# Empty dependencies file for cache_analysis.
# This may be replaced when dependencies are built.
