file(REMOVE_RECURSE
  "CMakeFiles/cache_analysis.dir/cache_analysis.cpp.o"
  "CMakeFiles/cache_analysis.dir/cache_analysis.cpp.o.d"
  "cache_analysis"
  "cache_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
