file(REMOVE_RECURSE
  "CMakeFiles/sec5_alpha_sensitivity.dir/sec5_alpha_sensitivity.cpp.o"
  "CMakeFiles/sec5_alpha_sensitivity.dir/sec5_alpha_sensitivity.cpp.o.d"
  "sec5_alpha_sensitivity"
  "sec5_alpha_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_alpha_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
