# Empty compiler generated dependencies file for sec5_alpha_sensitivity.
# This may be replaced when dependencies are built.
