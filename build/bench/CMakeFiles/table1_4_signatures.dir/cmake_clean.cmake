file(REMOVE_RECURSE
  "CMakeFiles/table1_4_signatures.dir/table1_4_signatures.cpp.o"
  "CMakeFiles/table1_4_signatures.dir/table1_4_signatures.cpp.o.d"
  "table1_4_signatures"
  "table1_4_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_4_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
