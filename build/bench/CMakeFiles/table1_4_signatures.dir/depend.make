# Empty dependencies file for table1_4_signatures.
# This may be replaced when dependencies are built.
