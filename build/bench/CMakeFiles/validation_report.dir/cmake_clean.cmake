file(REMOVE_RECURSE
  "CMakeFiles/validation_report.dir/validation_report.cpp.o"
  "CMakeFiles/validation_report.dir/validation_report.cpp.o.d"
  "validation_report"
  "validation_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/validation_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
