# Empty compiler generated dependencies file for table8_dcache_metrics.
# This may be replaced when dependencies are built.
