file(REMOVE_RECURSE
  "CMakeFiles/table8_dcache_metrics.dir/table8_dcache_metrics.cpp.o"
  "CMakeFiles/table8_dcache_metrics.dir/table8_dcache_metrics.cpp.o.d"
  "table8_dcache_metrics"
  "table8_dcache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_dcache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
