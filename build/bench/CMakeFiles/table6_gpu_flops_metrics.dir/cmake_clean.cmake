file(REMOVE_RECURSE
  "CMakeFiles/table6_gpu_flops_metrics.dir/table6_gpu_flops_metrics.cpp.o"
  "CMakeFiles/table6_gpu_flops_metrics.dir/table6_gpu_flops_metrics.cpp.o.d"
  "table6_gpu_flops_metrics"
  "table6_gpu_flops_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_gpu_flops_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
