# Empty compiler generated dependencies file for table6_gpu_flops_metrics.
# This may be replaced when dependencies are built.
