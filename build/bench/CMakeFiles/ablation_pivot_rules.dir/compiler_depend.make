# Empty compiler generated dependencies file for ablation_pivot_rules.
# This may be replaced when dependencies are built.
