file(REMOVE_RECURSE
  "CMakeFiles/ablation_pivot_rules.dir/ablation_pivot_rules.cpp.o"
  "CMakeFiles/ablation_pivot_rules.dir/ablation_pivot_rules.cpp.o.d"
  "ablation_pivot_rules"
  "ablation_pivot_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pivot_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
