# Empty compiler generated dependencies file for table5_cpu_flops_metrics.
# This may be replaced when dependencies are built.
