file(REMOVE_RECURSE
  "CMakeFiles/ablation_multiplexing.dir/ablation_multiplexing.cpp.o"
  "CMakeFiles/ablation_multiplexing.dir/ablation_multiplexing.cpp.o.d"
  "ablation_multiplexing"
  "ablation_multiplexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multiplexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
