file(REMOVE_RECURSE
  "CMakeFiles/fig3_dcache_approx.dir/fig3_dcache_approx.cpp.o"
  "CMakeFiles/fig3_dcache_approx.dir/fig3_dcache_approx.cpp.o.d"
  "fig3_dcache_approx"
  "fig3_dcache_approx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_dcache_approx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
