# Empty dependencies file for fig3_dcache_approx.
# This may be replaced when dependencies are built.
