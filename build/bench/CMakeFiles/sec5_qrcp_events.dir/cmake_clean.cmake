file(REMOVE_RECURSE
  "CMakeFiles/sec5_qrcp_events.dir/sec5_qrcp_events.cpp.o"
  "CMakeFiles/sec5_qrcp_events.dir/sec5_qrcp_events.cpp.o.d"
  "sec5_qrcp_events"
  "sec5_qrcp_events.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec5_qrcp_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
