# Empty dependencies file for sec5_qrcp_events.
# This may be replaced when dependencies are built.
