# Empty dependencies file for ext_icache_metrics.
# This may be replaced when dependencies are built.
