file(REMOVE_RECURSE
  "CMakeFiles/ext_icache_metrics.dir/ext_icache_metrics.cpp.o"
  "CMakeFiles/ext_icache_metrics.dir/ext_icache_metrics.cpp.o.d"
  "ext_icache_metrics"
  "ext_icache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_icache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
