file(REMOVE_RECURSE
  "CMakeFiles/table7_branch_metrics.dir/table7_branch_metrics.cpp.o"
  "CMakeFiles/table7_branch_metrics.dir/table7_branch_metrics.cpp.o.d"
  "table7_branch_metrics"
  "table7_branch_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_branch_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
