# Empty dependencies file for table7_branch_metrics.
# This may be replaced when dependencies are built.
