file(REMOVE_RECURSE
  "CMakeFiles/fig2_variability.dir/fig2_variability.cpp.o"
  "CMakeFiles/fig2_variability.dir/fig2_variability.cpp.o.d"
  "fig2_variability"
  "fig2_variability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_variability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
