file(REMOVE_RECURSE
  "CMakeFiles/dump_pipeline.dir/dump_pipeline.cpp.o"
  "CMakeFiles/dump_pipeline.dir/dump_pipeline.cpp.o.d"
  "dump_pipeline"
  "dump_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
