# Empty compiler generated dependencies file for dump_pipeline.
# This may be replaced when dependencies are built.
