file(REMOVE_RECURSE
  "CMakeFiles/ext_gpu_dcache_metrics.dir/ext_gpu_dcache_metrics.cpp.o"
  "CMakeFiles/ext_gpu_dcache_metrics.dir/ext_gpu_dcache_metrics.cpp.o.d"
  "ext_gpu_dcache_metrics"
  "ext_gpu_dcache_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_gpu_dcache_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
