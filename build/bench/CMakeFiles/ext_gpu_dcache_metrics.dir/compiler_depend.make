# Empty compiler generated dependencies file for ext_gpu_dcache_metrics.
# This may be replaced when dependencies are built.
