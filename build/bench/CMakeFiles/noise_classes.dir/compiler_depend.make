# Empty compiler generated dependencies file for noise_classes.
# This may be replaced when dependencies are built.
