file(REMOVE_RECURSE
  "CMakeFiles/noise_classes.dir/noise_classes.cpp.o"
  "CMakeFiles/noise_classes.dir/noise_classes.cpp.o.d"
  "noise_classes"
  "noise_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
