file(REMOVE_RECURSE
  "CMakeFiles/preset_export.dir/preset_export.cpp.o"
  "CMakeFiles/preset_export.dir/preset_export.cpp.o.d"
  "preset_export"
  "preset_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preset_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
