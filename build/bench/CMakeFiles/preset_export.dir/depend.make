# Empty dependencies file for preset_export.
# This may be replaced when dependencies are built.
