// google-benchmark macrobenchmarks for the analysis pipeline: collection,
// noise filtering, per-stage costs, and each category end to end.
//
// scripts/run_bench.sh runs this binary with --benchmark_out and records the
// JSON at the repo root (BENCH_pipeline.json) for per-PR perf tracking.
#include <benchmark/benchmark.h>

#include "cachesim/cachesim.hpp"
#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"
#include "vpapi/collector.hpp"

namespace {

using namespace catalyst;

void BM_MeasureAllCpuFlops(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto acts = cat::cpu_flops_benchmark().single_thread_activities();
  for (auto _ : state) {
    auto all = pmu::measure_all(machine, acts, 0);
    benchmark::DoNotOptimize(all.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(machine.num_events()) *
                          static_cast<std::int64_t>(acts.size()));
}
BENCHMARK(BM_MeasureAllCpuFlops);

void BM_MultiplexedCollection(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto acts = cat::cpu_flops_benchmark().single_thread_activities();
  for (auto _ : state) {
    auto res = vpapi::collect_all(machine, acts, 2);
    benchmark::DoNotOptimize(res.repetitions.data());
  }
}
BENCHMARK(BM_MultiplexedCollection);

void BM_CollectionThreads(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto acts = cat::cpu_flops_benchmark().single_thread_activities();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = vpapi::collect_all(machine, acts, 4, threads);
    benchmark::DoNotOptimize(res.repetitions.data());
  }
}
BENCHMARK(BM_CollectionThreads)->Arg(1)->Arg(2)->Arg(4);

void BM_TimeDivisionMultiplexing(benchmark::State& state) {
  // One PAPI-style time-division-multiplexed set holding every event: the
  // duty-cycle bookkeeping (O(1) slot lookup in read()) dominates here.
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto acts = cat::cpu_flops_benchmark().single_thread_activities();
  const auto names = machine.event_names();
  for (auto _ : state) {
    auto res = vpapi::collect_multiplexed(machine, names, acts, 1);
    benchmark::DoNotOptimize(res.repetitions.data());
  }
}
BENCHMARK(BM_TimeDivisionMultiplexing)->Unit(benchmark::kMillisecond);

void BM_SessionEventSetSetup(benchmark::State& state) {
  // Event-set construction: name resolution (Machine::find) plus counter
  // allocation (find_slot), once per (repetition x group) collection unit.
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto names = machine.event_names();
  for (auto _ : state) {
    vpapi::Session session(machine);
    const int set = session.create_eventset();
    session.enable_multiplexing(set);
    for (const auto& name : names) session.add_event(set, name);
    benchmark::DoNotOptimize(session.counters_in_use(set));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(names.size()));
}
BENCHMARK(BM_SessionEventSetSetup);

void BM_NoiseFilter(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto acts = cat::cpu_flops_benchmark().single_thread_activities();
  std::vector<std::string> names = machine.event_names();
  std::vector<std::vector<std::vector<double>>> meas(names.size());
  for (std::size_t e = 0; e < names.size(); ++e) {
    for (std::uint64_t rep = 0; rep < 3; ++rep) {
      meas[e].push_back(
          pmu::measure_vector(machine, machine.event(e), acts, rep));
    }
  }
  for (auto _ : state) {
    auto res = core::filter_noise(names, meas, 1e-10);
    benchmark::DoNotOptimize(res.kept.data());
  }
}
BENCHMARK(BM_NoiseFilter);

void BM_PointerChase(benchmark::State& state) {
  cachesim::CacheHierarchy hierarchy(cachesim::HierarchyConfig::saphira());
  cachesim::ChaseConfig cfg;
  cfg.num_pointers = static_cast<std::uint64_t>(state.range(0));
  cfg.stride_bytes = 64;
  cfg.warmup_traversals = 1;
  cfg.measured_traversals = 1;
  for (auto _ : state) {
    hierarchy.reset();
    auto res = cachesim::run_chase(hierarchy, cfg);
    benchmark::DoNotOptimize(res.total_accesses);
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(cfg.num_pointers));
}
BENCHMARK(BM_PointerChase)->Arg(1 << 9)->Arg(1 << 13)->Arg(1 << 17);

void BM_PipelineCpuFlops(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  const auto sigs = core::cpu_flops_signatures();
  for (auto _ : state) {
    auto res = core::run_pipeline(machine, bench, sigs);
    benchmark::DoNotOptimize(res.metrics.data());
  }
}
BENCHMARK(BM_PipelineCpuFlops)->Unit(benchmark::kMillisecond);

void BM_PipelineGpuFlops(benchmark::State& state) {
  const pmu::Machine machine = pmu::tempest_gpu();
  const cat::Benchmark bench = cat::gpu_flops_benchmark();
  const auto sigs = core::gpu_flops_signatures();
  for (auto _ : state) {
    auto res = core::run_pipeline(machine, bench, sigs);
    benchmark::DoNotOptimize(res.metrics.data());
  }
}
BENCHMARK(BM_PipelineGpuFlops)->Unit(benchmark::kMillisecond);

void BM_PipelineBranch(benchmark::State& state) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  const auto sigs = core::branch_signatures();
  for (auto _ : state) {
    auto res = core::run_pipeline(machine, bench, sigs);
    benchmark::DoNotOptimize(res.metrics.data());
  }
}
BENCHMARK(BM_PipelineBranch)->Unit(benchmark::kMillisecond);

void BM_DcacheBenchmarkBuild(benchmark::State& state) {
  cat::DcacheOptions opt;
  opt.threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto bench = cat::dcache_benchmark(opt);
    benchmark::DoNotOptimize(bench.slots.data());
  }
}
BENCHMARK(BM_DcacheBenchmarkBuild)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
