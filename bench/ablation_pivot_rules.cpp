// Ablation: pivot rules of the event-selection QR (DESIGN.md decision #1).
//
// Runs every category's pipeline under the three pivot rules --
//   original_score  (paper-faithful; default),
//   updated_score   (the naive Algorithm 2 reading), and
//   max_norm        (classic Algorithm 1 under the same beta termination) --
// and reports the selected event sets plus how many metric signatures come
// out composable under each.  The paper's claim: the specialized rule
// selects basis-aligned events, the classic rule drifts to aggregates.
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

namespace {

const char* rule_name(core::PivotRule rule) {
  switch (rule) {
    case core::PivotRule::original_score: return "original_score";
    case core::PivotRule::updated_score: return "updated_score";
    case core::PivotRule::max_norm: return "max_norm";
  }
  return "?";
}

void emit(const std::string& which) {
  std::cout << "== pivot-rule ablation: " << which << " ==\n";
  for (core::PivotRule rule :
       {core::PivotRule::original_score, core::PivotRule::updated_score,
        core::PivotRule::max_norm}) {
    auto category = bench::make_category(which);
    category.options.pivot_rule = rule;
    const auto result = bench::run_category(category);
    std::size_t composable = 0;
    for (const auto& m : result.metrics) {
      if (m.composable) ++composable;
    }
    std::cout << "  " << std::left << std::setw(15) << rule_name(rule)
              << " selected " << result.xhat_events.size() << " events, "
              << composable << "/" << result.metrics.size()
              << " signatures composable\n";
    for (const auto& e : result.xhat_events) {
      std::cout << "      " << e << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    emit(argv[1]);
    return 0;
  }
  for (const char* c : {"cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"}) {
    emit(c);
  }
  return 0;
}
