// Diagnostic tool: runs the full pipeline for one benchmark and dumps every
// stage's artifacts (noise survivors, projection verdicts, QR selection,
// metric solutions).  Usage:
//   dump_pipeline [cpu_flops|gpu_flops|branch|dcache]
#include <cstring>
#include <iomanip>
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

using namespace catalyst;

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "cpu_flops";

  pmu::Machine machine = which == "gpu_flops"        ? pmu::tempest_gpu()
                         : which == "vesuvio_flops" ? pmu::vesuvio_cpu()
                                                     : pmu::saphira_cpu();
  core::PipelineOptions opt;
  cat::Benchmark bench;
  std::vector<core::MetricSignature> sigs;
  if (which == "cpu_flops" || which == "vesuvio_flops") {
    bench = cat::cpu_flops_benchmark();
    sigs = core::cpu_flops_signatures();
  } else if (which == "gpu_flops") {
    bench = cat::gpu_flops_benchmark();
    sigs = core::gpu_flops_signatures();
  } else if (which == "branch") {
    bench = cat::branch_benchmark();
    sigs = core::branch_signatures();
  } else if (which == "icache") {
    bench = cat::icache_benchmark();
    sigs = core::icache_signatures();
    opt.tau = 1e-1;
    opt.alpha = 5e-2;
    opt.projection_max_error = 1e-1;
    opt.fitness_threshold = 5e-2;
  } else if (which == "dcache") {
    cat::DcacheOptions dopt;
    dopt.threads = 3;
    bench = cat::dcache_benchmark(dopt);
    sigs = core::dcache_signatures();
    opt.tau = 1e-1;
    opt.alpha = 5e-2;
    opt.projection_max_error = 1e-1;
    opt.fitness_threshold = 5e-2;
  } else {
    std::cerr << "unknown benchmark " << which << "\n";
    return 1;
  }

  const auto res = core::run_pipeline(machine, bench, sigs, opt);

  std::cout << "== " << bench.name << " on " << machine.name() << " ==\n";
  std::cout << "basis: "
            << core::basis_verdict(core::diagnose_basis(bench.basis))
            << "\n";
  std::cout << "events total: " << res.all_event_names.size()
            << ", after noise filter: " << res.noise.kept.size()
            << ", representable: " << res.projection.x_event_names.size()
            << ", selected: " << res.xhat_events.size() << "\n\n";

  std::cout << "-- noise survivors --\n";
  for (std::size_t i = 0; i < res.noise.kept.size(); ++i) {
    const auto& v = res.noise.variabilities[res.noise.kept[i]];
    std::cout << std::left << std::setw(46) << v.event_name << " rnmse="
              << std::scientific << std::setprecision(2) << v.max_rnmse
              << std::defaultfloat << "\n";
  }
  std::cout << "\n-- projection verdicts (survivors of noise) --\n";
  for (const auto& rep : res.projection.representations) {
    std::cout << std::left << std::setw(46) << rep.event_name << " be="
              << std::scientific << std::setprecision(3)
              << rep.backward_error << std::defaultfloat
              << (rep.representable ? "  KEEP  xe=[" : "  drop  xe=[");
    for (std::size_t i = 0; i < rep.xe.size(); ++i) {
      std::cout << std::setprecision(3) << rep.xe[i]
                << (i + 1 < rep.xe.size() ? "," : "");
    }
    std::cout << "]\n";
  }
  std::cout << "\n" << core::format_selected_events(res) << "\n";
  std::cout << core::format_metric_table("metrics (raw)", res.metrics);
  std::cout << "\n-- coefficient standard errors (statistical footing for "
               "the rounding step) --\n";
  for (const auto& m : res.metrics) {
    std::cout << std::left << std::setw(36) << m.metric_name << " [";
    for (std::size_t i = 0; i < m.coefficient_stderrs.size(); ++i) {
      std::cout << std::scientific << std::setprecision(1)
                << m.coefficient_stderrs[i] << std::defaultfloat
                << (i + 1 < m.coefficient_stderrs.size() ? ", " : "");
    }
    std::cout << "]\n";
  }
  std::cout << "\n"
            << core::format_metric_table("metrics (rounded)", res.metrics,
                                         /*rounded=*/true);
  return 0;
}
