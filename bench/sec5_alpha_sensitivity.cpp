// Section V-E: threshold sensitivity.
//
// Sweeps the QR noise tolerance alpha over several decades for every
// category and reports the selected event set at each value -- the paper's
// claim is that a wide range of alphas yields the same X-hat (no "magic"
// value needed).
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main(int argc, char** argv) {
  const std::vector<double> alphas{1e-6, 1e-5, 1e-4, 5e-4, 1e-3,
                                   5e-3, 1e-2, 5e-2};
  std::vector<std::string> categories{"cpu_flops", "gpu_flops", "branch", "icache", "gpu_dcache",
                                      "dcache"};
  if (argc > 1) categories = {argv[1]};

  for (const auto& which : categories) {
    auto category = bench::make_category(which);
    std::cout << "== alpha sensitivity: " << which << " ==\n";
    std::vector<std::string> reference;
    for (double alpha : alphas) {
      category.options.alpha = alpha;
      const auto result = bench::run_category(category);
      std::vector<std::string> sel = result.xhat_events;
      std::sort(sel.begin(), sel.end());
      if (reference.empty()) reference = sel;
      std::cout << "  alpha = " << std::scientific << std::setprecision(0)
                << alpha << std::defaultfloat << ": " << sel.size()
                << " events selected"
                << (sel == reference ? "  (same set as reference)"
                                     : "  (DIFFERENT set)")
                << "\n";
    }
    std::cout << "  reference set (alpha = " << std::scientific
              << std::setprecision(0) << alphas.front() << std::defaultfloat
              << "):\n";
    for (const auto& e : reference) std::cout << "    " << e << "\n";
    std::cout << "\n";
  }
  return 0;
}
