// Table V: CPU floating-point metric definitions with least-squares
// backward errors, on the Saphira (Sapphire-Rapids-flavoured) machine.
//
// Shape to reproduce: the four Instr/Ops metrics compose with ~machine-eps
// error; the two FMA-instruction metrics get 0.8x coefficients on every
// event and error ~2.4e-1 (no FMA-only events exist).
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("cpu_flops");
  const auto result = bench::run_category(category);
  std::cout << core::format_metric_table(
      "Table V: CPU Floating-Point Metrics (" +
          category.machine.name() + ")",
      result.metrics);
  return 0;
}
