// Tables I-IV: the metric signatures over each expectation basis.
//
// These are inputs to the analysis rather than measured results; the bench
// regenerates them from the library so the published tables and the code
// can never drift apart.
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"

using namespace catalyst;

int main() {
  std::cout << core::format_signature_table(
                   "Table I: CPU FLOPs Metric Signatures",
                   cat::cpu_flops_benchmark().basis.labels,
                   core::cpu_flops_signatures())
            << "\n";
  std::cout << core::format_signature_table(
                   "Table II: GPU FLOPs Metric Signatures",
                   cat::gpu_flops_benchmark().basis.labels,
                   core::gpu_flops_signatures())
            << "\n";
  std::cout << core::format_signature_table(
                   "Table III: Branching Metric Signatures",
                   cat::branch_benchmark().basis.labels,
                   core::branch_signatures())
            << "\n";
  cat::DcacheOptions opt;
  opt.threads = 1;
  opt.strides = {64};
  std::cout << core::format_signature_table(
                   "Table IV: Data Cache Metric Signatures",
                   cat::dcache_benchmark(opt).basis.labels,
                   core::dcache_signatures())
            << "\n";
  return 0;
}
