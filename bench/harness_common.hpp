// Shared setup for the bench harness binaries: one canonical configuration
// per benchmark category, matching the thresholds the paper reports
// (tau = 1e-10 / alpha = 5e-4 for compute events; tau = 1e-1 / alpha = 5e-2
// for the data cache).
#pragma once

#include <stdexcept>
#include <string>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::bench {

struct Category {
  std::string name;
  pmu::Machine machine;
  cat::Benchmark benchmark;
  std::vector<core::MetricSignature> signatures;
  core::PipelineOptions options;
};

inline Category make_category(const std::string& which) {
  if (which == "cpu_flops") {
    return {which, pmu::saphira_cpu(), cat::cpu_flops_benchmark(),
            core::cpu_flops_signatures(), core::PipelineOptions{}};
  }
  if (which == "gpu_flops") {
    return {which, pmu::tempest_gpu(), cat::gpu_flops_benchmark(),
            core::gpu_flops_signatures(), core::PipelineOptions{}};
  }
  if (which == "gpu_dcache") {
    return {which, pmu::tempest_gpu(), cat::gpu_dcache_benchmark(),
            core::gpu_dcache_signatures(), [] {
              core::PipelineOptions opt;
              opt.tau = 1e-1;
              opt.alpha = 5e-2;
              opt.projection_max_error = 1e-1;
              opt.fitness_threshold = 5e-2;
              return opt;
            }()};
  }
  if (which == "icache") {
    return {which, pmu::saphira_cpu(), cat::icache_benchmark(),
            core::icache_signatures(), [] {
              core::PipelineOptions opt;
              opt.tau = 1e-1;
              opt.alpha = 5e-2;
              opt.projection_max_error = 1e-1;
              opt.fitness_threshold = 5e-2;
              return opt;
            }()};
  }
  if (which == "branch") {
    return {which, pmu::saphira_cpu(), cat::branch_benchmark(),
            core::branch_signatures(), core::PipelineOptions{}};
  }
  if (which == "dcache") {
    cat::DcacheOptions chase;
    chase.threads = 3;
    core::PipelineOptions opt;
    opt.tau = 1e-1;
    opt.alpha = 5e-2;
    opt.projection_max_error = 1e-1;
    opt.fitness_threshold = 5e-2;
    return {which, pmu::saphira_cpu(), cat::dcache_benchmark(chase),
            core::dcache_signatures(), opt};
  }
  throw std::invalid_argument(
      "unknown category '" + which +
      "' (expected cpu_flops|gpu_flops|branch|dcache|icache|gpu_dcache)");
}

inline core::PipelineResult run_category(const Category& cat) {
  return core::run_pipeline(cat.machine, cat.benchmark, cat.signatures,
                            cat.options);
}

}  // namespace catalyst::bench
