// Preset export: the end product the paper motivates -- automatically
// generated PAPI-style preset tables for each machine, in both the
// pipe-separated and JSON formats.
//
// Usage: preset_export [category] [--json]
#include <cstring>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

namespace {

void emit(const std::string& which, bool json) {
  const auto category = bench::make_category(which);
  const auto result = bench::run_category(category);
  const auto presets = core::make_presets(result.metrics);
  std::cout << "## presets for " << category.machine.name() << " ("
            << which << "): " << presets.size() << " composable metrics\n";
  std::cout << (json ? core::presets_to_json(presets)
                     : core::presets_to_table(presets))
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = "all";
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else {
      which = argv[i];
    }
  }
  if (which != "all") {
    emit(which, json);
    return 0;
  }
  for (const char* c : {"cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"}) {
    emit(c, json);
  }
  return 0;
}
