// Enforces the catalyst::obs overhead budget: running the full pipeline
// with tracing ENABLED must cost < 2% wall time over the same pipeline with
// tracing runtime-disabled (the production default).
//
// Method: interleaved A/B, min-of-N.  Alternating enabled/disabled runs
// cancels thermal / frequency drift; the minimum is the standard robust
// estimator for "cost without scheduler noise".  A small absolute floor
// guards against timer jitter deciding the verdict on very fast runs.
//
// scripts/run_bench.sh runs this first and aborts the bench run on failure;
// it is also a plain executable (exit 0 = within budget) for CI.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "obs/trace.hpp"
#include "pmu/pmu.hpp"

namespace {

using namespace catalyst;

constexpr double kBudgetRatio = 1.02;      // <2% relative overhead
constexpr double kJitterFloorNs = 2.0e5;   // 200us absolute timer-noise floor
constexpr int kIterations = 9;             // per mode, min taken

double run_once_ns(const pmu::Machine& machine, const cat::Benchmark& bench,
                   const std::vector<core::MetricSignature>& sigs,
                   const core::PipelineOptions& options) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = core::run_pipeline(machine, bench, sigs, options);
  const auto t1 = std::chrono::steady_clock::now();
  if (result.all_event_names.empty()) return -1.0;  // keep result observable
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

}  // namespace

int main() {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  const auto sigs = core::cpu_flops_signatures();
  core::PipelineOptions options;
  options.repetitions = 4;

  obs::Tracer& tracer = obs::Tracer::instance();

  // Warm-up: touch every code path / fault in caches once per mode.
  tracer.enable(true);
  run_once_ns(machine, bench, sigs, options);
  tracer.enable(false);
  run_once_ns(machine, bench, sigs, options);

  double min_on = -1.0;
  double min_off = -1.0;
  for (int i = 0; i < kIterations; ++i) {
    tracer.enable(true);
    const double on = run_once_ns(machine, bench, sigs, options);
    tracer.reset();  // keep the ring from wrapping across iterations
    tracer.enable(false);
    const double off = run_once_ns(machine, bench, sigs, options);
    if (min_on < 0.0 || on < min_on) min_on = on;
    if (min_off < 0.0 || off < min_off) min_off = off;
  }

  const double ratio = min_on / min_off;
  const double delta_ns = min_on - min_off;
  const bool within_budget =
      ratio <= kBudgetRatio || delta_ns <= kJitterFloorNs;
  std::printf(
      "obs_overhead: pipeline min wall time enabled=%.3f ms, "
      "disabled=%.3f ms, ratio=%.4f (budget %.2f, jitter floor %.1f us)\n",
      min_on / 1e6, min_off / 1e6, ratio, kBudgetRatio, kJitterFloorNs / 1e3);
  if (!within_budget) {
    std::fprintf(stderr,
                 "obs_overhead: FAIL -- tracing overhead %.2f%% exceeds the "
                 "2%% budget (delta %.1f us)\n",
                 (ratio - 1.0) * 100.0, delta_ns / 1e3);
    return 1;
  }
  std::printf("obs_overhead: PASS\n");
  return 0;
}
