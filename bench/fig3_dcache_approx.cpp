// Fig. 3 (a-f): data-cache metric approximations from least squares.
//
// For each Table IV metric, overlays the rounded raw-event combination
// (evaluated on the averaged, normalized measurements) against the metric's
// signature (the idealized per-access expectation) across every pointer-
// chain size and stride.  The paper's claim: after rounding, the
// combination matches the signature exactly in shape.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"
#include "linalg/blas.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("dcache");
  const auto result = bench::run_category(category);
  const auto& bench_def = category.benchmark;
  const auto n_slots = bench_def.slots.size();

  for (const auto& metric : result.metrics) {
    // Rounded combination evaluated on the measured (averaged) vectors.
    const auto rounded = core::round_coefficients(metric.terms, 0.05);
    std::vector<double> combination(n_slots, 0.0);
    for (const auto& term : rounded) {
      if (term.coefficient == 0.0) continue;
      const auto meas = result.averaged_measurement(term.event_name);
      if (!meas) continue;
      for (std::size_t k = 0; k < n_slots; ++k) {
        combination[k] += term.coefficient * (*meas)[k];
      }
    }
    // The signature's idealized per-slot values: E * s over the basis.
    const core::MetricSignature* sig = nullptr;
    for (const auto& s : category.signatures) {
      if (s.name == metric.metric_name) sig = &s;
    }
    const linalg::Vector ideal =
        linalg::matvec(bench_def.basis.e, sig->coordinates);

    std::cout << "# Fig. 3 panel: " << metric.metric_name << "  ("
              << core::format_combination(rounded) << ")\n"
              << "# slot  combination  signature  |diff|\n"
              << std::fixed << std::setprecision(4);
    double max_diff = 0.0;
    for (std::size_t k = 0; k < n_slots; ++k) {
      const double diff = std::fabs(combination[k] - ideal[k]);
      max_diff = std::max(max_diff, diff);
      std::cout << std::left << std::setw(36) << bench_def.slots[k].name
                << "  " << combination[k] << "  " << ideal[k] << "  " << diff
                << "\n";
    }
    std::cout << "# max |combination - signature| = " << max_diff << "\n\n";
  }
  return 0;
}
