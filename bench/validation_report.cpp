// Validation experiment (extension of the paper's conclusion): every
// composable metric from every category, checked on held-out mixed
// workloads through a vpapi event set (counter limits + noise included),
// against ground truth from the ideal events.
//
// Usage: validation_report [category] [num_workloads]
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

namespace {

void emit(const std::string& which, std::size_t workloads) {
  const auto category = bench::make_category(which);
  const auto result = bench::run_category(category);
  const auto reports =
      core::validate_all(category.machine, category.benchmark, result.metrics,
                         category.signatures, workloads, 0xC0FFEE + workloads);

  std::cout << "== validation: " << which << " (" << workloads
            << " mixed workloads) ==\n";
  std::cout << "# metric | mean rel. error | max rel. error\n";
  for (const auto& r : reports) {
    std::cout << std::left << std::setw(36) << r.metric_name << " | "
              << std::scientific << std::setprecision(3)
              << r.mean_relative_error << " | " << r.max_relative_error
              << std::defaultfloat << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t workloads = 10;
  std::string which = "all";
  if (argc > 1) which = argv[1];
  if (argc > 2) workloads = static_cast<std::size_t>(std::stoul(argv[2]));
  if (which != "all") {
    emit(which, workloads);
    return 0;
  }
  for (const char* c : {"cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"}) {
    emit(c, workloads);
  }
  return 0;
}
