// Extension category: instruction-cache metrics (CAT's fifth benchmark,
// beyond the paper's four evaluated categories).
//
// Shape expected: the QR selects one event per (L1IM, L1IH, L2IH) basis
// dimension from the ICACHE_64B / FRONTEND_RETIRED family; all five
// signatures compose with near-integer coefficients after rounding.
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("icache");
  const auto result = bench::run_category(category);
  std::cout << core::format_selected_events(result) << "\n";
  std::cout << core::format_metric_table(
      "Instruction-Cache Metrics, raw coefficients (" +
          category.machine.name() + ")",
      result.metrics);
  std::cout << "\n"
            << core::format_metric_table("Rounded", result.metrics,
                                         /*rounded=*/true);
  return 0;
}
