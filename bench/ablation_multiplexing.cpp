// Ablation: grouped collection (CAT's method, one run per counter-sized
// event group) vs ONE time-division-multiplexed run holding every event.
//
// Multiplexing needs ceil(events/counters)x fewer benchmark runs but every
// reading becomes a duty-cycle extrapolation; on the deterministic
// FP_ARITH events the grouped method measures EXACT values while the
// multiplexed estimates err by tens of percent per kernel.  The numbers
// below justify the paper's collection methodology.
#include <cmath>
#include <iomanip>
#include <iostream>

#include "cat/cat.hpp"
#include "pmu/pmu.hpp"
#include "vpapi/collector.hpp"

using namespace catalyst;

int main() {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  const auto acts = bench.single_thread_activities();

  // Measure the whole deterministic FP/branch/instruction family both ways
  // (~20 events over 8 physical counters: the multiplexed set must slice).
  std::vector<std::string> events;
  for (const auto& name : machine.event_names()) {
    if (name.rfind("FP_ARITH_INST_RETIRED:", 0) == 0 ||
        name.rfind("BR_INST_RETIRED:", 0) == 0 ||
        name.rfind("INST_RETIRED:", 0) == 0) {
      events.push_back(name);
    }
  }

  const auto grouped = vpapi::collect(machine, events, acts, 1);
  const auto muxed = vpapi::collect_multiplexed(machine, events, acts, 1);

  std::cout << "Grouped runs per repetition: " << grouped.runs_per_repetition
            << "; multiplexed: " << muxed.runs_per_repetition << "\n\n";
  std::cout << "# event | max relative error of multiplexed vs grouped "
               "(grouped is exact here)\n"
            << std::fixed << std::setprecision(3);
  double worst = 0.0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    double max_rel = 0.0;
    for (std::size_t k = 0; k < acts.size(); ++k) {
      const double truth = grouped.repetitions[0].values[e][k];
      const double est = muxed.repetitions[0].values[e][k];
      if (truth > 0.0) {
        max_rel = std::max(max_rel, std::fabs(est - truth) / truth);
      }
    }
    worst = std::max(worst, max_rel);
    std::cout << std::left << std::setw(44) << events[e] << " " << max_rel
              << "\n";
  }
  std::cout << "\nWorst-case per-kernel estimation error from multiplexing: "
            << std::setprecision(1) << worst * 100.0
            << "%\nGrouped collection pays " << grouped.runs_per_repetition
            << "x the runs to make that error zero -- CAT's choice.\n";
  return 0;
}
