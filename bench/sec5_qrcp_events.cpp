// Section V (A-D): events selected by the specialized QRCP per category,
// with an ablation against classic max-norm pivoting (Algorithm 1).
//
// Usage: sec5_qrcp_events [category] [--pivot=maxnorm]
//   category: cpu_flops|gpu_flops|branch|dcache (default: all)
//   --pivot=maxnorm: additionally show what the classic rule would select,
//   demonstrating the Section II failure mode (cycle-like columns first).
#include <cstring>
#include <iostream>

#include "harness_common.hpp"
#include "linalg/qrcp.hpp"

using namespace catalyst;

namespace {

void emit(const std::string& which, bool show_maxnorm) {
  const auto category = bench::make_category(which);
  const auto result = bench::run_category(category);

  std::cout << "== Section V: " << which << " (alpha = "
            << category.options.alpha << ") ==\n"
            << core::format_selected_events(result);

  if (show_maxnorm) {
    // Ablation: classic max-norm QRCP on the same X, taking the same number
    // of columns the rank scan admits.
    const auto classic = linalg::qrcp(result.projection.x, 1e-8);
    std::cout << "\nClassic max-norm QRCP (Algorithm 1) would select, in "
                 "order:\n";
    for (linalg::index_t i = 0; i < classic.rank; ++i) {
      const auto idx =
          static_cast<std::size_t>(classic.permutation[static_cast<std::size_t>(i)]);
      std::cout << "  [" << i << "] " << result.projection.x_event_names[idx]
                << "\n";
    }
    std::cout << "(note the preference for large-norm aggregate columns over "
                 "basis-aligned events)\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string which = "all";
  bool maxnorm = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--pivot=maxnorm") == 0) {
      maxnorm = true;
    } else {
      which = argv[i];
    }
  }
  if (which != "all") {
    emit(which, maxnorm);
    return 0;
  }
  for (const char* c : {"cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"}) {
    emit(c, maxnorm);
  }
  return 0;
}
