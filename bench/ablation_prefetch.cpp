// Ablation: why CAT chases pointers in RANDOM order (DESIGN.md decision
// context for the data-cache benchmark).
//
// With a next-line prefetcher enabled, a sequential scan of a buffer far
// larger than the cache still shows a high "hit" rate -- the prefetcher
// hides the misses, and a naive benchmark would mis-attribute the buffer to
// the wrong level.  The random single-cycle chase defeats the prefetcher,
// so hits/misses reflect true capacity.  This bench prints the L1 demand
// hit ratio for both access orders, with and without prefetching, across
// the capacity regimes.
#include <iomanip>
#include <iostream>

#include "cachesim/cachesim.hpp"

using namespace catalyst::cachesim;

namespace {

double l1_hit_ratio(PrefetchPolicy policy, ChainOrder order,
                    std::uint64_t num_pointers) {
  HierarchyConfig cfg = HierarchyConfig::saphira();
  for (auto& level : cfg.levels) {
    level.prefetch = policy;
    level.prefetch_degree = 4;  // a typical streamer depth
  }
  CacheHierarchy hierarchy(cfg);
  ChaseConfig chase;
  chase.num_pointers = num_pointers;
  chase.stride_bytes = 64;
  chase.order = order;
  chase.warmup_traversals = 1;
  chase.measured_traversals = 2;
  const auto res = run_chase(hierarchy, chase);
  return static_cast<double>(res.level_stats[0].demand_hits) /
         static_cast<double>(res.total_accesses);
}

}  // namespace

int main() {
  std::cout << "L1 demand hit ratio by access order and prefetch policy\n";
  std::cout << "# footprint | seq/no-pf | seq/next-line | rand/no-pf | "
               "rand/next-line\n"
            << std::fixed << std::setprecision(3);
  // Footprints: inside L1, in L2, in L3 (stride 64 B).
  const struct {
    const char* label;
    std::uint64_t pointers;
  } cases[] = {
      {"24 KiB (fits L1)", 24ull * 1024 / 64},
      {"512 KiB (fits L2)", 512ull * 1024 / 64},
      {"6 MiB (fits L3)", 6ull * 1024 * 1024 / 64},
  };
  for (const auto& c : cases) {
    std::cout << std::left << std::setw(20) << c.label << " | "
              << l1_hit_ratio(PrefetchPolicy::none, ChainOrder::sequential,
                              c.pointers)
              << " | "
              << l1_hit_ratio(PrefetchPolicy::next_line,
                              ChainOrder::sequential, c.pointers)
              << " | "
              << l1_hit_ratio(PrefetchPolicy::none, ChainOrder::random_cycle,
                              c.pointers)
              << " | "
              << l1_hit_ratio(PrefetchPolicy::next_line,
                              ChainOrder::random_cycle, c.pointers)
              << "\n";
  }
  std::cout << "\nA degree-4 streamer turns a capacity-bound sequential scan\n"
               "into ~80% L1 'hits', hiding the working-set size; the random\n"
               "chase is immune, which is why CAT uses it.\n";
  return 0;
}
