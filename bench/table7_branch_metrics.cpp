// Table VII: branching metric definitions on the Saphira machine.
//
// Shape to reproduce: six of the seven metrics compose exactly (including
// the subtractive Not-Taken and Correctly-Predicted combinations); the
// "Conditional Branches Executed" signature is unreachable -- no raw event
// counts speculatively executed conditionals -- so its error saturates at
// the maximum value 1.0 with near-zero garbage coefficients.
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("branch");
  const auto result = bench::run_category(category);
  std::cout << core::format_metric_table(
      "Table VII: Branching Metrics (" + category.machine.name() + ")",
      result.metrics);
  return 0;
}
