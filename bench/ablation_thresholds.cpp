// Ablation: every threshold of the pipeline, swept per category.
//
//   * tau (noise filter): how many events survive, and whether the final
//     X-hat selection is affected (Fig. 2's "the exact value is uncritical
//     in the gap" claim, and its failure for cache events);
//   * projection_max_error: how many events are representable and whether
//     unrepresentable pollution (instruction counters) sneaks into X;
//   * repetitions: stability of the RNMSE filter with 2..6 repetitions.
//
// Usage: ablation_thresholds [category]
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

namespace {

std::string selection_fingerprint(const core::PipelineResult& result) {
  std::vector<std::string> sel = result.xhat_events;
  std::sort(sel.begin(), sel.end());
  std::string fp;
  for (const auto& e : sel) {
    fp += e;
    fp += ';';
  }
  return fp;
}

void sweep_tau(const std::string& which) {
  std::cout << "-- tau sweep (" << which << ") --\n";
  auto reference = std::string();
  for (double tau : {1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2, 1e-1}) {
    auto category = bench::make_category(which);
    category.options.tau = tau;
    const auto result = bench::run_category(category);
    const auto fp = selection_fingerprint(result);
    if (reference.empty()) reference = fp;
    std::cout << "  tau=" << std::scientific << std::setprecision(0) << tau
              << std::defaultfloat << "  survivors="
              << std::setw(4) << result.noise.kept.size() << "  selected="
              << result.xhat_events.size()
              << (fp == reference ? "  (same X-hat)" : "  (X-hat CHANGED)")
              << "\n";
  }
}

void sweep_projection(const std::string& which) {
  std::cout << "-- projection threshold sweep (" << which << ") --\n";
  for (double thr : {1e-6, 1e-4, 1e-3, 1e-2, 5e-2, 1e-1, 5e-1}) {
    auto category = bench::make_category(which);
    category.options.projection_max_error = thr;
    const auto result = bench::run_category(category);
    std::cout << "  thr=" << std::scientific << std::setprecision(0) << thr
              << std::defaultfloat << "  representable="
              << std::setw(4) << result.projection.x_event_names.size()
              << "  selected=" << result.xhat_events.size() << "\n";
  }
}

void sweep_repetitions(const std::string& which) {
  std::cout << "-- repetition sweep (" << which << ") --\n";
  std::string reference;
  for (std::size_t reps : {2u, 3u, 4u, 6u}) {
    auto category = bench::make_category(which);
    category.options.repetitions = reps;
    const auto result = bench::run_category(category);
    const auto fp = selection_fingerprint(result);
    if (reference.empty()) reference = fp;
    std::cout << "  reps=" << reps << "  survivors="
              << result.noise.kept.size() << "  selected="
              << result.xhat_events.size()
              << (fp == reference ? "  (same X-hat)" : "  (X-hat CHANGED)")
              << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> categories{"cpu_flops", "gpu_flops", "branch", "icache", "gpu_dcache",
                                      "dcache"};
  if (argc > 1) categories = {argv[1]};
  for (const auto& which : categories) {
    std::cout << "== threshold ablation: " << which << " ==\n";
    sweep_tau(which);
    sweep_projection(which);
    sweep_repetitions(which);
    std::cout << "\n";
  }
  return 0;
}
