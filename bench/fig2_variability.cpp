// Fig. 2 (a-d): sorted max-RNMSE event variabilities per CAT benchmark.
//
// Prints the series behind each panel: event index vs max RNMSE, sorted
// ascending, all-zero events dropped, with the tau cutoff annotated -- the
// same data the paper plots on a log axis.  Run with no argument to emit
// all four panels, or with one of cpu_flops|gpu_flops|branch|dcache.
#include <algorithm>
#include <iomanip>
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

namespace {

void emit_panel(const std::string& which) {
  const auto category = bench::make_category(which);
  const auto result = bench::run_category(category);

  std::vector<double> series;
  for (const auto& v : result.noise.variabilities) {
    if (!v.all_zero) series.push_back(v.max_rnmse);
  }
  std::sort(series.begin(), series.end());

  std::size_t below = 0;
  for (double v : series) {
    if (v <= category.options.tau) ++below;
  }

  std::cout << "# Fig. 2 panel: " << which << " on "
            << category.machine.name() << "\n"
            << "# events plotted (non-zero): " << series.size()
            << ", tau = " << std::scientific << std::setprecision(1)
            << category.options.tau << ", below tau: " << below
            << ", above (discarded): " << series.size() - below << "\n"
            << "# index  max_rnmse\n"
            << std::setprecision(6);
  for (std::size_t i = 0; i < series.size(); ++i) {
    // The paper plots exact zeros at machine epsilon for the log axis.
    const double shown = series[i] == 0.0 ? 2.2e-16 : series[i];
    std::cout << i << "  " << shown << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    emit_panel(argv[1]);
    return 0;
  }
  for (const char* which : {"branch", "cpu_flops", "gpu_flops", "dcache", "icache", "gpu_dcache"}) {
    emit_panel(which);
  }
  return 0;
}
