// google-benchmark microbenchmarks for the dense linear algebra substrate:
// the kernels on the analysis hot path (QR, QRCP, least squares) plus the
// specialized pivoting scheme, across the matrix shapes the pipeline
// actually produces (tall measurement matrices, small basis systems).
// scripts/run_bench.sh runs this binary with --benchmark_out and records the
// JSON at the repo root (BENCH_linalg.json) for per-PR perf tracking.
#include <benchmark/benchmark.h>

#include "core/qrcp_special.hpp"
#include "linalg/linalg.hpp"

namespace {

using namespace catalyst;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<linalg::index_t>(state.range(0));
  const linalg::Matrix a = linalg::random_gaussian(n, n, 1);
  const linalg::Matrix b = linalg::random_gaussian(n, n, 2);
  linalg::Matrix c(n, n);
  for (auto _ : state) {
    linalg::gemm(1.0, a, false, b, false, 0.0, c);
    benchmark::DoNotOptimize(c.data().data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_GemmThreaded(benchmark::State& state) {
  const linalg::index_t n = 256;
  const linalg::Matrix a = linalg::random_gaussian(n, n, 1);
  const linalg::Matrix b = linalg::random_gaussian(n, n, 2);
  linalg::Matrix c(n, n);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    linalg::gemm(1.0, a, false, b, false, 0.0, c, threads);
    benchmark::DoNotOptimize(c.data().data());
  }
}
BENCHMARK(BM_GemmThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_QrFactorization(benchmark::State& state) {
  const auto m = static_cast<linalg::index_t>(state.range(0));
  const linalg::index_t n = m / 2;
  const linalg::Matrix a = linalg::random_gaussian(m, n, 3);
  for (auto _ : state) {
    linalg::QrFactorization qr(a);
    benchmark::DoNotOptimize(qr.packed().data().data());
  }
}
BENCHMARK(BM_QrFactorization)->Arg(64)->Arg(128)->Arg(256)->Arg(512);

void BM_QrBlocked(benchmark::State& state) {
  const auto m = static_cast<linalg::index_t>(state.range(0));
  const linalg::index_t n = m / 2;
  const auto nb = static_cast<linalg::index_t>(state.range(1));
  const linalg::Matrix a = linalg::random_gaussian(m, n, 3);
  for (auto _ : state) {
    linalg::QrFactorization qr(a, nb);
    benchmark::DoNotOptimize(qr.packed().data().data());
  }
}
BENCHMARK(BM_QrBlocked)
    ->Args({256, 8})
    ->Args({256, 32})
    ->Args({512, 8})
    ->Args({512, 32})
    ->Args({512, 64});

void BM_ClassicQrcp(benchmark::State& state) {
  // The shape of a projected measurement matrix: few basis rows, many
  // event columns.
  const auto cols = static_cast<linalg::index_t>(state.range(0));
  const linalg::Matrix a = linalg::random_gaussian(16, cols, 4);
  for (auto _ : state) {
    auto res = linalg::qrcp(a);
    benchmark::DoNotOptimize(res.rank);
  }
}
BENCHMARK(BM_ClassicQrcp)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// ELAPS-style sweep over the blocked QRCP: event count x block size x
// worker threads on the paper's wide event-selection shape (basis rows x
// n event columns).  block == 1 is the scalar Algorithm 2 baseline; the
// 10k-event column is the tentpole acceptance case (>= 5x blocked vs
// scalar in a Release build).
void BM_QrcpBlockedSweep(benchmark::State& state) {
  const auto cols = static_cast<linalg::index_t>(state.range(0));
  const auto block = static_cast<linalg::index_t>(state.range(1));
  const auto threads = static_cast<int>(state.range(2));
  const linalg::Matrix a = linalg::random_gaussian(96, cols, 11);
  linalg::QrcpOptions opt;
  opt.block_size = block;
  opt.threads = threads;
  for (auto _ : state) {
    auto res = linalg::qrcp(a, opt);
    benchmark::DoNotOptimize(res.rank);
  }
  // Work estimate for items/sec: ~2*m^2*n flops for a full-rank wide QRCP.
  state.SetItemsProcessed(state.iterations() * 2 * 96 * 96 * cols);
}
BENCHMARK(BM_QrcpBlockedSweep)
    // n = 1200: every block size, single worker.
    ->Args({1200, 1, 1})
    ->Args({1200, 8, 1})
    ->Args({1200, 32, 1})
    ->Args({1200, 64, 1})
    // n = 5000: scalar baseline vs default block, thread scaling.
    ->Args({5000, 1, 1})
    ->Args({5000, 32, 1})
    ->Args({5000, 32, 2})
    ->Args({5000, 32, 4})
    // n = 10000: the acceptance case.
    ->Args({10000, 1, 1})
    ->Args({10000, 32, 1})
    ->Args({10000, 64, 1})
    ->Args({10000, 32, 4})
    ->Unit(benchmark::kMillisecond);

void BM_SpecializedQrcp(benchmark::State& state) {
  const auto cols = static_cast<linalg::index_t>(state.range(0));
  const linalg::Matrix a = linalg::random_gaussian(16, cols, 5);
  for (auto _ : state) {
    auto res = core::specialized_qrcp(a, 5e-4);
    benchmark::DoNotOptimize(res.rank);
  }
}
BENCHMARK(BM_SpecializedQrcp)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

// Worker-thread scaling of the specialized pivot search on a wide machine
// (results are bit-identical for any thread count; only the wall time may
// move).
void BM_SpecializedQrcpThreaded(benchmark::State& state) {
  const linalg::Matrix a = linalg::random_gaussian(48, 4096, 10);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto res = core::specialized_qrcp(a, 5e-4,
                                      core::PivotRule::original_score,
                                      threads);
    benchmark::DoNotOptimize(res.rank);
  }
}
BENCHMARK(BM_SpecializedQrcpThreaded)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_Lstsq(benchmark::State& state) {
  const auto m = static_cast<linalg::index_t>(state.range(0));
  const linalg::index_t n = 16;  // basis dimension
  const linalg::Matrix a = linalg::random_gaussian(m, n, 6);
  const linalg::Vector b = [&] {
    linalg::Vector v(static_cast<std::size_t>(m));
    for (std::size_t i = 0; i < v.size(); ++i) v[i] = double(i % 7) - 3.0;
    return v;
  }();
  for (auto _ : state) {
    auto res = linalg::lstsq(a, b);
    benchmark::DoNotOptimize(res.x.data());
  }
}
BENCHMARK(BM_Lstsq)->Arg(16)->Arg(48)->Arg(128)->Arg(512);

void BM_NormTwoEstimate(benchmark::State& state) {
  const linalg::Matrix a = linalg::random_gaussian(48, 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linalg::norm_two_estimate(a));
  }
}
BENCHMARK(BM_NormTwoEstimate);

void BM_JacobiSvd(benchmark::State& state) {
  const auto n = static_cast<linalg::index_t>(state.range(0));
  const linalg::Matrix a = linalg::random_gaussian(3 * n, n, 8);
  for (auto _ : state) {
    auto res = linalg::svd(a);
    benchmark::DoNotOptimize(res.singular_values.data());
  }
}
BENCHMARK(BM_JacobiSvd)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_PivotRules(benchmark::State& state) {
  const linalg::Matrix a = linalg::random_gaussian(16, 512, 9);
  const auto rule = static_cast<core::PivotRule>(state.range(0));
  for (auto _ : state) {
    auto res = core::specialized_qrcp(a, 5e-4, rule);
    benchmark::DoNotOptimize(res.rank);
  }
}
BENCHMARK(BM_PivotRules)
    ->Arg(static_cast<int>(core::PivotRule::original_score))
    ->Arg(static_cast<int>(core::PivotRule::updated_score))
    ->Arg(static_cast<int>(core::PivotRule::max_norm));

}  // namespace

BENCHMARK_MAIN();
