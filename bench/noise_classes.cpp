// Noise-class census (future-work extension): classify every event's
// run-to-run behaviour per category, summarize the census, and list the
// non-trivial classes.  Complements Fig. 2's single max-RNMSE number.
//
// Usage: noise_classes [category]
#include <iomanip>
#include <iostream>
#include <map>

#include "core/noise_classify.hpp"
#include "harness_common.hpp"

using namespace catalyst;

namespace {

void emit(const std::string& which) {
  auto category = bench::make_category(which);
  category.options.repetitions = 6;  // more reps give the classifier teeth
  const auto result = bench::run_category(category);

  std::map<core::NoiseClass, std::size_t> census;
  std::vector<std::pair<std::string, core::NoiseProfile>> interesting;
  for (std::size_t e = 0; e < result.all_event_names.size(); ++e) {
    const auto profile = core::classify_noise(result.measurements[e]);
    ++census[profile.cls];
    if (profile.cls == core::NoiseClass::drifting) {
      interesting.emplace_back(result.all_event_names[e], profile);
    }
  }

  std::cout << "== noise-class census: " << which << " ("
            << result.all_event_names.size() << " events, "
            << category.options.repetitions << " repetitions) ==\n";
  for (const auto& [cls, count] : census) {
    std::cout << "  " << std::left << std::setw(14) << core::to_string(cls)
              << count << "\n";
  }
  if (!interesting.empty()) {
    std::cout << "  drifting events (candidates for detrending instead of "
                 "discarding):\n";
    for (const auto& [name, profile] : interesting) {
      std::cout << "    " << std::left << std::setw(40) << name
                << " corr=" << std::setprecision(3)
                << profile.drift_correlation
                << " magnitude=" << profile.drift_magnitude << "\n";
    }
  }
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    emit(argv[1]);
    return 0;
  }
  for (const char* c :
       {"cpu_flops", "gpu_flops", "branch", "dcache", "icache", "gpu_dcache"}) {
    emit(c);
  }
  return 0;
}
