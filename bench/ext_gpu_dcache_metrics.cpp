// Extension category: GPU data-movement metrics (TCC hits/misses, HBM
// traffic) on the Tempest machine -- the sixth benchmark category and the
// GPU half of the arithmetic-intensity story.
//
// Shape expected: the QR selects the aggregate TCC_HIT_sum / TCC_MISS_sum
// counters (the per-channel events carry 1/16 coefficients and score 16x
// worse); all four signatures compose, with HBM bytes = 64 x misses.
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("gpu_dcache");
  const auto result = bench::run_category(category);
  std::cout << core::format_selected_events(result) << "\n";
  std::cout << core::format_metric_table(
      "GPU Data-Movement Metrics, raw coefficients (" +
          category.machine.name() + ")",
      result.metrics);
  std::cout << "\n"
            << core::format_metric_table("Rounded", result.metrics,
                                         /*rounded=*/true);
  return 0;
}
