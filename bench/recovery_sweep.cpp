// Recovery-rate sweep over the synthetic-model generator (src/modelgen):
// how does ground-truth recovery degrade as the noise profile and the
// correlated-decoy leakage ratchet up?
//
//   recovery_sweep [--seeds N]
//
// Two tables, one row per knob setting, columns = verdict census over N
// seeded models (exact / alternative / degraded / wrong).  The `wrong`
// column is the harness's core claim and must read 0 everywhere: the
// pipeline may fail detectably, never silently.  The noise table crosses
// the derived tau around noise_level ~ 35 (the documented boundary band);
// the gamma table crosses the QRCP rounding tolerance at alpha/2 = 0.025.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "modelgen/modelgen.hpp"

namespace {

struct Census {
  int exact = 0;
  int alternative = 0;
  int degraded = 0;
  int wrong = 0;
};

Census sweep(const std::vector<catalyst::modelgen::GeneratorSpec>& specs) {
  using catalyst::modelgen::Verdict;
  Census census;
  for (const auto& spec : specs) {
    const auto outcome = catalyst::modelgen::run_and_verify(
        catalyst::modelgen::generate(spec));
    switch (outcome.overall) {
      case Verdict::exact: ++census.exact; break;
      case Verdict::alternative: ++census.alternative; break;
      case Verdict::degraded: ++census.degraded; break;
      case Verdict::wrong: ++census.wrong; break;
    }
  }
  return census;
}

void print_row(double knob, int seeds, const Census& c) {
  std::printf("%10.3g  %6d  %12d  %9d  %6d  %10.1f%%\n", knob, c.exact,
              c.alternative, c.degraded, c.wrong,
              100.0 * c.exact / seeds);
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 40;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s [--seeds N]\n", argv[0]);
      return 64;
    }
  }
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 64;
  }

  std::printf("Recovery-rate sweep: %d seeded models per row\n\n", seeds);

  std::printf("Noise ratchet (default geometry; tau crossing ~ level 35)\n");
  std::printf("%10s  %6s  %12s  %9s  %6s  %11s\n", "noise", "exact",
              "alternative", "degraded", "wrong", "exact rate");
  for (const double level :
       {0.0, 1.0, 2.0, 5.0, 10.0, 20.0, 35.0, 50.0, 100.0, 1000.0}) {
    std::vector<catalyst::modelgen::GeneratorSpec> specs;
    for (int s = 0; s < seeds; ++s) {
      catalyst::modelgen::GeneratorSpec spec;
      spec.seed = static_cast<std::uint64_t>(s + 1);
      spec.noise_level = level;
      specs.push_back(spec);
    }
    print_row(level, seeds, sweep(specs));
  }

  std::printf(
      "\nCorrelated-decoy leakage on an orphaned dimension "
      "(alpha/2 crossing at 0.025)\n");
  std::printf("%10s  %6s  %12s  %9s  %6s  %11s\n", "gamma", "exact",
              "alternative", "degraded", "wrong", "exact rate");
  for (const double gamma : {0.0, 0.01, 0.05, 0.1, 0.25, 0.5}) {
    std::vector<catalyst::modelgen::GeneratorSpec> specs;
    for (int s = 0; s < seeds; ++s) {
      specs.push_back(catalyst::modelgen::GeneratorSpec::edge_orphan(
          static_cast<std::uint64_t>(s + 1), gamma));
    }
    print_row(gamma, seeds, sweep(specs));
  }
  return 0;
}
