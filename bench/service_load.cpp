// bench/service_load -- throughput + latency proof for the catalystd stack.
//
// Drives the full in-process service stack -- wire codec -> Session state
// machine -> ServiceCore bounded queue -> analysis engine -- in a closed
// loop of client lanes and gates on a sustained analyses/sec floor
// (default 1000/s on Saphira-sized branch submissions).  Latency
// percentiles are NOT measured by this harness: they are scraped back
// over the wire with a STATS frame (catalyst-wire v2) and read from the
// returned "service.request_ns" histogram, so the numbers printed here
// went through the same codec path a production scraper uses --
// in-process registry reads would skip the exposition layer entirely.
//
// --json-out PATH writes a machine-readable result document for
// scripts/run_bench.sh to stamp with provenance as BENCH_service.json.
//
// Two drive modes:
//   --workers 0  (default on a single-core host): each client lane runs
//                queued work synchronously via ServiceCore::run_one() --
//                no poll spinning can steal cycles from the analysis.
//   --workers N  worker_loop() threads analyze while client lanes
//                submit/poll concurrently through their own Sessions.
//
// Exit status: 0 when the sustained rate meets --target (and every reply
// decoded cleanly), 1 otherwise.  --target 0 disables the gate.
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/io.hpp"
#include "core/parallel.hpp"
#include "faults/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

using namespace catalyst;
namespace wire = catalyst::service::wire;

namespace {

struct Config {
  std::string category = "branch";
  std::string json_out;  ///< Machine-readable result doc; empty = none.
  int clients = 2;
  int requests = 200;  ///< Per client.
  int workers = 0;
  double target_rate = 1000.0;  ///< analyses/sec floor; 0 = report only.
};

bool parse(int argc, char** argv, Config& cfg) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--category" && (v = value())) {
      cfg.category = v;
    } else if (a == "--clients" && (v = value())) {
      cfg.clients = std::stoi(v);
    } else if (a == "--requests" && (v = value())) {
      cfg.requests = std::stoi(v);
    } else if (a == "--workers" && (v = value())) {
      cfg.workers = std::stoi(v);
    } else if (a == "--target" && (v = value())) {
      cfg.target_rate = std::stod(v);
    } else if (a == "--json-out" && (v = value())) {
      cfg.json_out = v;
    } else {
      std::cerr << "usage: service_load [--category C] [--clients N]\n"
                   "                    [--requests M] [--workers W]\n"
                   "                    [--target RATE] [--json-out PATH]\n";
      return false;
    }
  }
  return cfg.clients > 0 && cfg.requests > 0 && cfg.workers >= 0;
}

/// Histogram quantile: upper bound of the bucket where the cumulative
/// count crosses q*total, clamped to the observed max (the last bucket's
/// bound is +inf).
double percentile(const obs::HistogramSnapshot& h, double q) {
  if (h.total_count == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(h.total_count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    cumulative += h.buckets[i];
    if (cumulative >= target && target > 0) {
      return std::min(obs::histogram_upper_bound(i), h.max);
    }
  }
  return h.max;
}

/// Scrapes the service.request_ns histogram THROUGH the wire: one more
/// Session, HELLO -> STATS -> STATS_OK, then a targeted parse of the
/// catalyst-metrics-v1 JSON (we produced it; the format is ours).  This is
/// the same path `catalyst_client stats` exercises against a live daemon.
obs::HistogramSnapshot scrape_latency_over_wire(service::ServiceCore& core,
                                                faults::Clock& clock,
                                                service::SessionId id) {
  service::Session session(id, &core, service::Session::Limits{},
                           clock.now());
  wire::FrameDecoder decoder;
  const auto feed = [&](const std::string& bytes) {
    session.on_bytes(clock.now(), bytes.data(), bytes.size());
    if (session.has_output()) {
      const std::string out = session.take_output();
      decoder.feed(out.data(), out.size());
    }
    if (decoder.error()) {
      throw std::runtime_error("STATS reply failed to decode: " +
                               decoder.error()->message);
    }
  };
  feed(wire::encode_frame(wire::FrameType::hello, "service_load/stats"));
  if (!decoder.next()) throw std::runtime_error("no HELLO_OK before STATS");
  feed(wire::encode_frame(wire::FrameType::stats, ""));
  const std::optional<wire::Frame> reply = decoder.next();
  if (!reply || reply->type != wire::FrameType::stats_ok) {
    throw std::runtime_error("STATS did not answer with STATS_OK");
  }
  wire::Get cursor(reply->payload);
  const std::string json = cursor.string();

  obs::HistogramSnapshot h;
  h.name = std::string(obs::names::kServiceRequestNs);
  const std::string head = "{\"name\": \"" + h.name + "\",";
  const std::size_t at = json.find(head);
  if (at == std::string::npos) return h;  // No samples recorded.
  const std::size_t entry_end = json.find("]}", at);
  const std::string entry = json.substr(
      at, entry_end == std::string::npos ? std::string::npos
                                         : entry_end + 2 - at);
  std::size_t p = entry.find("\"count\": ");
  if (p != std::string::npos) {
    h.total_count = std::strtoull(entry.c_str() + p + 9, nullptr, 10);
  }
  p = entry.find("\"sum\": ");
  if (p != std::string::npos) h.sum = std::strtod(entry.c_str() + p + 7,
                                                  nullptr);
  p = entry.find("\"min\": ");
  if (p != std::string::npos) h.min = std::strtod(entry.c_str() + p + 7,
                                                  nullptr);
  p = entry.find("\"max\": ");
  if (p != std::string::npos) h.max = std::strtod(entry.c_str() + p + 7,
                                                  nullptr);
  p = entry.find("\"buckets\": [");
  if (p != std::string::npos) {
    const char* cur = entry.c_str() + p + 12;
    while (*cur != '\0' && *cur != ']') {
      if (*cur == '[') {
        char* end = nullptr;
        const auto index =
            static_cast<std::size_t>(std::strtoull(cur + 1, &end, 10));
        while (*end == ',' || *end == ' ') ++end;
        const std::uint64_t count = std::strtoull(end, &end, 10);
        if (index < h.buckets.size()) h.buckets[index] = count;
        cur = end;
      }
      ++cur;
    }
  }
  return h;
}

/// One closed-loop client lane speaking catalyst-wire-v1 to its Session.
/// Returns the number of RESULT frames collected; throws on any protocol
/// surprise (this is a proof harness -- a single bad reply fails the run).
std::size_t run_lane(service::ServiceCore& core, faults::Clock& clock,
                     service::SessionId id, const std::string& hello_frame,
                     const std::string& submit_frame, int requests,
                     bool synchronous) {
  service::Session session(id, &core, service::Session::Limits{},
                           clock.now());
  wire::FrameDecoder decoder;
  const auto feed = [&](const std::string& bytes) {
    session.on_bytes(clock.now(), bytes.data(), bytes.size());
    if (session.has_output()) {
      const std::string out = session.take_output();
      decoder.feed(out.data(), out.size());
    }
    if (decoder.error()) {
      throw std::runtime_error("reply stream failed to decode: " +
                               decoder.error()->message);
    }
  };
  const auto expect_reply = [&](const char* context) -> wire::Frame {
    const std::optional<wire::Frame> frame = decoder.next();
    if (!frame) {
      throw std::runtime_error(std::string("no reply after ") + context);
    }
    return *frame;
  };

  feed(hello_frame);
  if (expect_reply("HELLO").type != wire::FrameType::hello_ok) {
    throw std::runtime_error("handshake rejected");
  }

  std::size_t collected = 0;
  for (int r = 0; r < requests; ++r) {
    std::uint64_t request_id = 0;
    for (;;) {
      feed(submit_frame);
      const wire::Frame reply = expect_reply("SUBMIT");
      if (reply.type == wire::FrameType::accepted) {
        wire::Get cursor(reply.payload);
        request_id = cursor.u64();
        break;
      }
      if (reply.type == wire::FrameType::retry_after) {
        // Queue full: in synchronous mode drain it ourselves, otherwise
        // give the workers a beat.
        if (synchronous) {
          core.run_one();
        } else {
          std::this_thread::yield();
        }
        continue;
      }
      throw std::runtime_error(std::string("SUBMIT answered with ") +
                               wire::to_string(reply.type));
    }

    std::string poll_payload;
    wire::put_u64(poll_payload, request_id);
    const std::string poll_frame =
        wire::encode_frame(wire::FrameType::poll, poll_payload);
    for (;;) {
      if (synchronous) core.run_one();
      feed(poll_frame);
      const wire::Frame reply = expect_reply("POLL");
      if (reply.type == wire::FrameType::pending) {
        if (!synchronous) std::this_thread::yield();
        continue;
      }
      if (reply.type == wire::FrameType::result) {
        collected += 1;
        break;
      }
      throw std::runtime_error(std::string("POLL answered with ") +
                               wire::to_string(reply.type));
    }
  }
  return collected;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (!parse(argc, argv, cfg)) return 2;

  obs::Tracer::instance().enable();
  obs::Metrics::instance().reset();
  faults::RealClock clock;

  // One representative submission, built once: a full collection pipeline
  // for the category, flattened to the packed wire format every lane
  // replays.  (Encoding cost is paid per feed -- the frame bytes are
  // re-decoded and CRC-checked by the session every time, exactly as they
  // would be coming off a socket.)
  const auto setup = service::category_setup(cfg.category);
  const auto machine = setup ? service::machine_by_name(setup->default_machine)
                             : std::nullopt;
  if (!setup || !machine) {
    std::cerr << "service_load: unknown category '" << cfg.category << "'\n";
    return 2;
  }
  const core::PipelineResult pipeline =
      core::run_pipeline(*machine, setup->benchmark, setup->signatures);
  const core::MeasurementArchive archive =
      core::make_archive(*machine, setup->benchmark, pipeline);
  const wire::SubmitBody body =
      service::packed_submit_from_archive(archive, cfg.category);
  const std::string submit_frame =
      wire::encode_frame(wire::FrameType::submit, wire::encode_submit(body));
  const std::string hello_frame =
      wire::encode_frame(wire::FrameType::hello, "service_load");

  service::ServiceCore::Options core_options;
  core_options.workers = cfg.workers;
  core_options.queue_capacity = 64;
  core_options.clock = &clock;
  service::ServiceCore core(core_options);

  const bool synchronous = cfg.workers == 0;
  const std::size_t lanes = static_cast<std::size_t>(cfg.clients);
  const std::size_t units = lanes + static_cast<std::size_t>(cfg.workers);
  std::atomic<std::size_t> lanes_left{lanes};
  std::atomic<std::uint64_t> collected{0};

  const auto started = std::chrono::steady_clock::now();
  core::parallel_for(units, static_cast<int>(units), [&](std::size_t unit) {
    if (unit < static_cast<std::size_t>(cfg.workers)) {
      core.worker_loop();  // Returns once the last lane begins shutdown.
      return;
    }
    const std::size_t lane = unit - static_cast<std::size_t>(cfg.workers);
    try {
      collected.fetch_add(
          run_lane(core, clock, static_cast<service::SessionId>(lane + 1),
                   hello_frame, submit_frame, cfg.requests, synchronous),
          std::memory_order_relaxed);
    } catch (...) {
      if (lanes_left.fetch_sub(1) == 1) core.begin_shutdown();
      throw;
    }
    if (lanes_left.fetch_sub(1) == 1) core.begin_shutdown();
  });
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;

  const std::uint64_t expected =
      static_cast<std::uint64_t>(cfg.clients) *
      static_cast<std::uint64_t>(cfg.requests);
  const double rate = static_cast<double>(collected.load()) /
                      elapsed.count();

  const obs::HistogramSnapshot scraped = scrape_latency_over_wire(
      core, clock, static_cast<service::SessionId>(lanes + 1));
  const obs::HistogramSnapshot* latency =
      scraped.total_count > 0 ? &scraped : nullptr;

  std::cout << "service_load: category=" << cfg.category << " clients="
            << cfg.clients << " requests/client=" << cfg.requests
            << " workers=" << cfg.workers << "\n"
            << std::fixed << std::setprecision(1) << "  analyses:   "
            << collected.load() << "/" << expected << " in "
            << elapsed.count() << "s\n"
            << "  throughput: " << rate << " analyses/sec (floor "
            << cfg.target_rate << ")\n";
  if (latency != nullptr && latency->total_count > 0) {
    const double us = 1.0 / 1000.0;
    std::cout << "  service.request_ns (STATS-over-wire, " <<
        latency->total_count << " samples):\n"
              << "    p50 <= " << percentile(*latency, 0.50) * us
              << " us, p95 <= " << percentile(*latency, 0.95) * us
              << " us, p99 <= " << percentile(*latency, 0.99) * us
              << " us, max " << latency->max * us << " us\n";
  } else {
    std::cout << "  service.request_ns histogram: no samples (obs off?)\n";
  }

  if (!cfg.json_out.empty()) {
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "{\n"
        "  \"name\": \"service_load\",\n"
        "  \"category\": \"%s\",\n"
        "  \"clients\": %d,\n"
        "  \"requests_per_client\": %d,\n"
        "  \"workers\": %d,\n"
        "  \"analyses_completed\": %llu,\n"
        "  \"elapsed_s\": %.6f,\n"
        "  \"analyses_per_sec\": %.1f,\n"
        "  \"stats_source\": \"wire\",\n"
        "  \"latency_ns\": {\"samples\": %llu, \"p50\": %.0f, "
        "\"p95\": %.0f, \"p99\": %.0f, \"max\": %.0f}\n"
        "}\n",
        cfg.category.c_str(), cfg.clients, cfg.requests, cfg.workers,
        static_cast<unsigned long long>(collected.load()), elapsed.count(),
        rate,
        static_cast<unsigned long long>(latency ? latency->total_count : 0),
        latency ? percentile(*latency, 0.50) : 0.0,
        latency ? percentile(*latency, 0.95) : 0.0,
        latency ? percentile(*latency, 0.99) : 0.0, latency ? latency->max
                                                            : 0.0);
    core::write_text_file_atomic(cfg.json_out, buf);
  }

  if (collected.load() != expected) {
    std::cout << "FAIL: " << (expected - collected.load())
              << " submission(s) never produced a result\n";
    return 1;
  }
  if (cfg.target_rate > 0.0 && rate < cfg.target_rate) {
    std::cout << "FAIL: sustained rate below the " << cfg.target_rate
              << "/s floor\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
