// Table VI: GPU floating-point metric definitions on the Tempest
// (MI250X-flavoured) machine.
//
// Shape to reproduce: HP Add / HP Sub alone are NOT composable (0.5x the
// combined ADD counter, error ~4.1e-1); HP Add-and-Sub and the per-precision
// All-Ops metrics compose with ~machine-eps error, the FMA counter scaled
// by 2.
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("gpu_flops");
  const auto result = bench::run_category(category);
  std::cout << core::format_metric_table(
      "Table VI: GPU Floating-Point Metrics (" + category.machine.name() +
          ")",
      result.metrics);
  return 0;
}
