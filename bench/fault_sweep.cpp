// Ablation: how much PMU misbehavior can the resilient driver absorb before
// the paper's results degrade?
//
// Sweeps a multiplier over the canonical mid-rate fault plan (drops, stuck
// counters, wraparounds, spikes, transient add/start failures -- see
// faults/faults.hpp) and runs the full Table-V pipeline at each intensity.
// The claim under test: retry + wrap correction + quarantine keep the
// SELECTED EVENTS AND METRICS bit-identical to the clean run until faults
// are frequent enough to quarantine a basis event -- at which point the
// pipeline degrades gracefully (fewer selected events) instead of aborting.
#include <iomanip>
#include <iostream>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

using namespace catalyst;

namespace {

faults::FaultPlan scaled_mid_rate(double multiplier) {
  faults::FaultPlan plan = faults::FaultPlan::mid_rate();
  plan.rates.wrap *= multiplier;
  plan.rates.stuck *= multiplier;
  plan.rates.dropped_reading *= multiplier;
  plan.rates.spike *= multiplier;
  plan.rates.add_event_busy *= multiplier;
  plan.rates.start_busy *= multiplier;
  return plan;
}

}  // namespace

int main() {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  const auto signatures = core::cpu_flops_signatures();
  core::PipelineOptions options;  // paper defaults (Table V setup)

  const auto clean =
      core::run_pipeline(machine, bench, signatures, options);

  std::cout << "Fault sweep over " << machine.name() << " / " << bench.name
            << " (multiplier x the canonical mid-rate plan)\n\n"
            << "mult   retries  quarantined  selected  identical-to-clean\n";
  for (const double mult : {0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 25.0}) {
    const faults::FaultPlan plan = scaled_mid_rate(mult);
    core::PipelineResult result;
    try {
      result = core::run_pipeline_resilient(
          machine, bench, signatures, options,
          plan.enabled() ? &plan : nullptr, {});
    } catch (const std::runtime_error& e) {
      // The documented floor: every event quarantined -> typed abort
      // instead of a vacuous analysis.
      std::cout << std::left << std::setw(7) << mult
                << "ABORTED: " << e.what() << "\n";
      continue;
    }
    const bool identical = result.xhat_events == clean.xhat_events;
    std::cout << std::left << std::setw(7) << mult << std::setw(9)
              << (result.collection.has_value()
                      ? result.collection->total_retries
                      : 0)
              << std::setw(13) << result.quarantined_events.size()
              << std::setw(10) << result.xhat_events.size()
              << (identical ? "yes" : "NO") << "\n";
    if (!identical) {
      std::cout << "       degraded selection:";
      for (const auto& e : result.xhat_events) std::cout << " " << e;
      std::cout << "\n";
    }
  }
  std::cout << "\nQuarantine trades coverage for survival: past the point "
               "where an event\ncannot be read reliably, the campaign "
               "completes on the remaining events\ninstead of aborting.\n";
  return 0;
}
