// Table VIII: data-cache metric definitions on the Saphira machine with the
// simulated cache hierarchy.
//
// Shape to reproduce: all six metrics compose; the raw least-squares
// coefficients deviate from 0 / +-1 by at most a few percent (cache noise),
// and rounding them yields the exact signature combinations (the Fig. 3
// overlays).  Both the raw and rounded tables are printed.
#include <iostream>

#include "harness_common.hpp"

using namespace catalyst;

int main() {
  const auto category = bench::make_category("dcache");
  const auto result = bench::run_category(category);
  std::cout << core::format_metric_table(
      "Table VIII: Data Cache Metrics, raw coefficients (" +
          category.machine.name() + ")",
      result.metrics);
  std::cout << "\n"
            << core::format_metric_table(
                   "Table VIII (rounded to 0 / +-1, cf. Section VI-D)",
                   result.metrics, /*rounded=*/true);
  return 0;
}
