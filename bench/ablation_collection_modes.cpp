// Collection-mode ablation: the counting-vs-sampling recovery oracle.
//
//   ablation_collection_modes [--seeds N] [--quick] [--json FILE]
//
// Crosses the three collection modes (counting / sampling / strobed,
// vpapi/sampling.hpp) with a slice-length ratchet -- the sampling period as
// a fraction/multiple of the virtual kernel span -- over a population of
// seeded benign generated models, and classifies every run's ground-truth
// recovery with the modelgen oracle (exact / alternative / degraded /
// wrong).
//
// The claims this harness enforces (process exit code, consumed by the
// `collection_modes` stage of scripts/check.sh):
//
//   * counting mode recovers >= 95% exact with ZERO wrong verdicts on
//     benign machines -- the baseline the sampling modes are judged
//     against;
//   * sampling and strobed produce ZERO `wrong` verdicts at EVERY point of
//     the slice-length ratchet.  Fine periods converge to the counting
//     readings (exact); coarse periods smear kernel boundaries and may
//     degrade -- but degradation must stay DETECTABLE (the pipeline flags
//     the metric non-composable) because per-run dithering converts the
//     attribution error into repetition variance the RNMSE filter sees.
//     A silent lie (`wrong`) at any period is a bug.
//
// Every reading is a pure function of its coordinates, so the whole sweep
// is deterministic: the census below is a regression surface, not a
// statistical estimate.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "modelgen/modelgen.hpp"
#include "vpapi/sampling.hpp"

namespace {

using catalyst::modelgen::Verdict;
using catalyst::vpapi::CollectionMode;
using catalyst::vpapi::SampleSchedule;

struct Census {
  int exact = 0;
  int alternative = 0;
  int degraded = 0;
  int wrong = 0;
  int total() const { return exact + alternative + degraded + wrong; }
};

void tally(Census& census, Verdict verdict) {
  switch (verdict) {
    case Verdict::exact: ++census.exact; break;
    case Verdict::alternative: ++census.alternative; break;
    case Verdict::degraded: ++census.degraded; break;
    case Verdict::wrong: ++census.wrong; break;
  }
}

/// The slice-length ratchet: sampling period as a multiple of the kernel
/// span.  Fine fractions reconstruct phases near-exactly; past 1.0 a
/// single period covers whole kernels and boundary smearing dominates.
SampleSchedule schedule_for(double period_ratio) {
  SampleSchedule schedule;  // kernel_span_ns = 1ms default.
  schedule.period_ns = static_cast<std::uint64_t>(
      period_ratio * static_cast<double>(schedule.kernel_span_ns));
  if (schedule.period_ns == 0) schedule.period_ns = 1;
  // Strobed alternates the long period with a 5x shorter one (the shape of
  // gator's period/alt-period pair, compressed to simulation scale).
  schedule.short_period_ns = schedule.period_ns / 5;
  if (schedule.short_period_ns == 0) schedule.short_period_ns = 1;
  return schedule;
}

Census sweep_mode(CollectionMode mode, double period_ratio, int seeds) {
  Census census;
  for (int s = 0; s < seeds; ++s) {
    catalyst::modelgen::GeneratorSpec spec;
    spec.seed = static_cast<std::uint64_t>(s + 1);
    const auto model = catalyst::modelgen::generate(spec);
    const auto outcome = catalyst::modelgen::run_and_verify_sampled(
        model, mode, schedule_for(period_ratio));
    tally(census, outcome.overall);
    if (outcome.overall == Verdict::wrong) {
      std::fprintf(stderr, "WRONG verdict (mode %s, ratio %g):\n%s",
                   catalyst::vpapi::to_string(mode), period_ratio,
                   outcome.describe().c_str());
    }
  }
  return census;
}

catalyst::core::json::Value census_json(const Census& c) {
  auto v = catalyst::core::json::Value::object();
  v["exact"] = c.exact;
  v["alternative"] = c.alternative;
  v["degraded"] = c.degraded;
  v["wrong"] = c.wrong;
  return v;
}

void print_row(const char* mode, double ratio, const Census& c) {
  std::printf("%9s  %9.4f  %6d  %12d  %9d  %6d  %10.1f%%\n", mode, ratio,
              c.exact, c.alternative, c.degraded, c.wrong,
              100.0 * c.exact / c.total());
}

}  // namespace

int main(int argc, char** argv) {
  int seeds = 12;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--quick] [--json FILE]\n",
                   argv[0]);
      return 64;
    }
  }
  if (quick) seeds = seeds < 6 ? seeds : 6;
  if (seeds < 1) {
    std::fprintf(stderr, "--seeds must be >= 1\n");
    return 64;
  }

  // Period/span ratios pinned to straddle the whole recovery transition
  // (empirically stable -- the sweep is deterministic): <= 0.008 the
  // boundary interpolation is near-lossless (exact); 0.015..0.06 the
  // attribution shift produces truthful-but-different compositions
  // (alternative); >= 0.125 the pipeline flags non-composability
  // (degraded).  Nothing may ever land in `wrong` at any point.
  const std::vector<double> ratios =
      quick ? std::vector<double>{0.001, 0.125, 4.0}
            : std::vector<double>{0.001, 0.004, 0.03125, 0.125, 1.0, 4.0};

  std::printf("Collection-mode oracle sweep: %d seeded models per cell\n\n",
              seeds);
  std::printf("%9s  %9s  %6s  %12s  %9s  %6s  %11s\n", "mode", "per/span",
              "exact", "alternative", "degraded", "wrong", "exact rate");

  auto root = catalyst::core::json::Value::object();
  root["seeds"] = seeds;
  root["quick"] = quick;
  auto rows = catalyst::core::json::Value::array();

  bool fail = false;

  // Counting baseline: one cell (the ratchet is a no-op without sampling).
  const Census counting = sweep_mode(CollectionMode::counting, 1.0, seeds);
  print_row("counting", 0.0, counting);
  {
    auto row = catalyst::core::json::Value::object();
    row["mode"] = std::string("counting");
    row["period_ratio"] = 0.0;
    row["census"] = census_json(counting);
    rows.push_back(std::move(row));
  }
  if (counting.wrong != 0 || counting.exact * 100 < counting.total() * 95) {
    std::fprintf(stderr,
                 "FAIL: counting baseline below 95%% exact or wrong != 0\n");
    fail = true;
  }

  for (const CollectionMode mode :
       {CollectionMode::sampling, CollectionMode::strobed}) {
    for (const double ratio : ratios) {
      const Census c = sweep_mode(mode, ratio, seeds);
      print_row(catalyst::vpapi::to_string(mode), ratio, c);
      auto row = catalyst::core::json::Value::object();
      row["mode"] = std::string(catalyst::vpapi::to_string(mode));
      row["period_ratio"] = ratio;
      row["census"] = census_json(c);
      rows.push_back(std::move(row));
      if (c.wrong != 0) {
        std::fprintf(stderr, "FAIL: wrong verdict in %s at ratio %g\n",
                     catalyst::vpapi::to_string(mode), ratio);
        fail = true;
      }
    }
  }

  root["rows"] = std::move(rows);
  root["pass"] = !fail;
  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
      return 1;
    }
    const std::string text = catalyst::core::json::dump(root, 2);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nwrote census JSON to %s\n", json_path.c_str());
  }

  return fail ? 1 : 0;
}
