// Ground-truth recovery harness: the full analysis pipeline (collect ->
// RNMSE filter -> normalize/project -> specialized QRCP -> synthesis) must
// recover metric compositions PLANTED in seeded synthetic CPU models.
//
//   * 200-model benign sweep: >= 95% of models recover every planted
//     composition exactly (rounded coefficients equal the planted integers,
//     selected events within the documented per-dimension equivalence
//     classes); the remainder is classified truthful-alternative or
//     detectably degraded -- NEVER silently wrong.
//   * Metamorphic invariants: verdicts are invariant under event
//     reordering, uniform slot rescaling, benign-noise reseeding, and
//     collection thread count.
//   * Degradation ratchets: rising noise crosses the tau filter and turns
//     recovery into DETECTED degradation (non-composable, order-one
//     fitness); rising decoy correlation on an orphaned dimension turns
//     exact recovery into truthful alternatives.  Neither ratchet may ever
//     produce a composable-but-untruthful metric.
//
// Every failure leads with seed_banner(seed) (CATALYST_SEED=<n> replays it)
// plus the outcome's one-line repro command.
#include <gtest/gtest.h>

#include <cstdint>

#include "modelgen/modelgen.hpp"
#include "seed_util.hpp"

namespace catalyst::modelgen {
namespace {

GeneratorSpec benign_spec(std::uint64_t seed) {
  GeneratorSpec spec;
  spec.seed = seed;
  return spec;
}

// --- the 200-model recovery sweep ----------------------------------------

TEST(RecoverySweep, BenignModelsRecoverPlantedCompositionsExactly) {
  const auto seeds = testing::sweep_seeds(1, 200);
  std::size_t exact_models = 0;
  for (const std::uint64_t seed : seeds) {
    const GeneratedModel model = generate(benign_spec(seed));
    const RecoveryOutcome outcome = run_and_verify(model);
    ASSERT_FALSE(outcome.any_wrong())
        << testing::seed_banner(seed) << outcome.describe();
    if (outcome.all_exact()) {
      exact_models++;
    } else {
      // The remainder must be *detectably* non-exact: either a truthful
      // alternative composition or a metric the pipeline itself flagged
      // non-composable.  Silent failure modes were excluded above.
      for (const MetricVerdict& verdict : outcome.metrics) {
        if (verdict.verdict == Verdict::degraded) {
          EXPECT_FALSE(verdict.composable)
              << testing::seed_banner(seed) << outcome.describe();
        }
      }
    }
  }
  if (seeds.size() > 1) {  // skip the rate assert under CATALYST_SEED replay
    EXPECT_GE(exact_models, seeds.size() * 95 / 100)
        << "exact-recovery rate fell below 95% over " << seeds.size()
        << " models";
  }
}

TEST(RecoverySweep, GeneratorIsDeterministicForEqualSpecs) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 5)) {
    const GeneratedModel a = generate(benign_spec(seed));
    const GeneratedModel b = generate(benign_spec(seed));
    ASSERT_EQ(a.machine_spec.events.size(), b.machine_spec.events.size())
        << testing::seed_banner(seed);
    for (std::size_t i = 0; i < a.machine_spec.events.size(); ++i) {
      EXPECT_EQ(a.machine_spec.events[i].name, b.machine_spec.events[i].name)
          << testing::seed_banner(seed);
    }
    EXPECT_EQ(a.machine_spec.noise_seed, b.machine_spec.noise_seed)
        << testing::seed_banner(seed);
    const auto oa = run_and_verify(a);
    const auto ob = run_and_verify(b);
    const auto eq = equivalent_outcomes(oa, ob);
    EXPECT_TRUE(eq.equivalent)
        << testing::seed_banner(seed) << eq.detail << "\n"
        << oa.describe() << ob.describe();
  }
}

// --- metamorphic invariants ----------------------------------------------

class MetamorphicInvariants
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MetamorphicInvariants, VerdictsSurviveAllTransforms) {
  const std::uint64_t seed = GetParam();
  const GeneratedModel model = generate(benign_spec(seed));
  const RecoveryOutcome base = run_and_verify(model);
  ASSERT_FALSE(base.any_wrong())
      << testing::seed_banner(seed) << base.describe();

  const struct {
    const char* name;
    GeneratedModel variant;
  } variants[] = {
      {"reorder_events", reorder_events(model, seed ^ 0x9e3779b97f4a7c15ull)},
      {"rescale_slots_x8", rescale_slots(model, 8.0)},
      {"rescale_slots_x0.5", rescale_slots(model, 0.5)},
      {"reseed_noise", reseed_noise(model, seed * 2654435761ull + 17)},
      {"collection_threads_4", with_collection_threads(model, 4)},
  };
  for (const auto& v : variants) {
    const RecoveryOutcome outcome = run_and_verify(v.variant);
    const OutcomeEquivalence eq = equivalent_outcomes(base, outcome);
    EXPECT_TRUE(eq.equivalent)
        << testing::seed_banner(seed) << "transform " << v.name << ": "
        << eq.detail << "\nbase:\n"
        << base.describe() << "variant:\n"
        << outcome.describe();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetamorphicInvariants,
                         ::testing::ValuesIn(testing::sweep_seeds(1, 12)));

// --- noise ratchet --------------------------------------------------------

TEST(NoiseRatchet, DegradationIsDetectableNeverSilent) {
  // Below the tau band recovery stays exact (or truthful-alternative);
  // far above it every planted metric must be DETECTED as degraded
  // (non-composable).  Levels inside the narrow boundary band around
  // tau / (sqrt(2) * kBaseRelSigma) ~ 35 classify as either, so the
  // ratchet samples both shores; at every level a composable-but-
  // untruthful verdict is forbidden.
  const struct {
    double noise_level;
    bool expect_recovered;  // exact or alternative at this level
  } levels[] = {{1.0, true}, {5.0, true}, {200.0, false}, {1000.0, false}};

  for (const std::uint64_t seed : testing::sweep_seeds(1, 15)) {
    for (const auto& level : levels) {
      GeneratorSpec spec = benign_spec(seed);
      spec.noise_level = level.noise_level;
      const RecoveryOutcome outcome = run_and_verify(generate(spec));
      ASSERT_FALSE(outcome.any_wrong())
          << testing::seed_banner(seed) << "noise " << level.noise_level
          << "\n"
          << outcome.describe();
      if (level.expect_recovered) {
        for (const MetricVerdict& verdict : outcome.metrics) {
          EXPECT_NE(verdict.verdict, Verdict::degraded)
              << testing::seed_banner(seed) << "noise " << level.noise_level
              << "\n"
              << outcome.describe();
        }
      } else {
        // Far above tau the MODEL must be detected as degraded: at least
        // one planted metric flagged non-composable.  Individual metrics
        // can still come back truthful -- the noise-free huge-norm trap
        // survives the filter and covers any signature proportional to
        // the all-ones direction -- and that is fine: the forbidden
        // outcome (composable but untruthful) was excluded above.
        EXPECT_EQ(outcome.overall, Verdict::degraded)
            << testing::seed_banner(seed) << "noise " << level.noise_level
            << "\n"
            << outcome.describe();
        for (const MetricVerdict& verdict : outcome.metrics) {
          if (verdict.verdict == Verdict::degraded) {
            EXPECT_FALSE(verdict.composable)
                << testing::seed_banner(seed) << outcome.describe();
          }
        }
      }
    }
  }
}

// --- decoy-correlation ratchet on an orphaned dimension -------------------

TEST(CorrelationRatchet, SubToleranceLeakageJoinsTheEquivalenceClass) {
  // gamma < alpha/2 rounds away in the QRCP scoring: the correlated decoy
  // is a documented equivalence-class member and recovery stays EXACT.
  for (const std::uint64_t seed : testing::sweep_seeds(1, 15)) {
    for (const double gamma : {0.0, 0.01}) {
      const RecoveryOutcome outcome =
          run_and_verify(generate(GeneratorSpec::edge_orphan(seed, gamma)));
      EXPECT_TRUE(outcome.all_exact())
          << testing::seed_banner(seed) << "gamma " << gamma << "\n"
          << outcome.describe();
    }
  }
}

TEST(CorrelationRatchet, StrongLeakageDegradesToTruthfulAlternatives) {
  // gamma >> alpha: the decoy's cross-dimension term survives rounding, so
  // compositions through it are no longer the planted ones -- but they must
  // remain TRUTHFUL (or be flagged non-composable); never silently wrong.
  for (const std::uint64_t seed : testing::sweep_seeds(1, 15)) {
    for (const double gamma : {0.25, 0.6}) {
      const GeneratedModel model =
          generate(GeneratorSpec::edge_orphan(seed, gamma));
      const RecoveryOutcome outcome = run_and_verify(model);
      ASSERT_FALSE(outcome.any_wrong())
          << testing::seed_banner(seed) << "gamma " << gamma << "\n"
          << outcome.describe();
      // The orphan-touching metric (metric 0 by construction) cannot be
      // recovered as planted: the only covering event leaks.
      ASSERT_FALSE(outcome.metrics.empty());
      EXPECT_NE(outcome.metrics[0].verdict, Verdict::exact)
          << testing::seed_banner(seed) << "gamma " << gamma << "\n"
          << outcome.describe();
    }
  }
}

TEST(CorrelationRatchet, UncoveredOrphanIsDetectedNotInvented) {
  // Strip EVERY event that spans the orphaned dimension: the correlated
  // decoys, the derived two-dimension sums, and the huge-norm trap (which
  // covers all dimensions) can each provide a truthful covering, so all
  // three must go.  With nothing left to cover the orphan, every planted
  // metric touching it must be flagged non-composable -- the pipeline must
  // DETECT the gap, never invent a composition across it.
  for (const std::uint64_t seed : testing::sweep_seeds(1, 10)) {
    GeneratorSpec spec = GeneratorSpec::edge_orphan(seed, 0.25);
    spec.correlated_decoys = 0;
    spec.derived_decoys = 0;
    spec.huge_norm_decoy = false;
    const GeneratedModel model = generate(spec);
    const RecoveryOutcome outcome = run_and_verify(model);
    ASSERT_FALSE(outcome.any_wrong())
        << testing::seed_banner(seed) << outcome.describe();
    ASSERT_FALSE(outcome.metrics.empty());
    EXPECT_EQ(outcome.metrics[0].verdict, Verdict::degraded)
        << testing::seed_banner(seed) << outcome.describe();
    EXPECT_FALSE(outcome.metrics[0].composable)
        << testing::seed_banner(seed) << outcome.describe();
  }
}

}  // namespace
}  // namespace catalyst::modelgen
