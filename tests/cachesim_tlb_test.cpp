// Unit tests for the two-level TLB simulator.
#include "cachesim/tlb.hpp"

#include <gtest/gtest.h>

#include "cachesim/pointer_chase.hpp"

namespace catalyst::cachesim {
namespace {

TEST(TlbConfigTest, DefaultsValidate) {
  EXPECT_NO_THROW(TlbConfig::saphira().validate());
  EXPECT_NO_THROW(TlbConfig::tiny().validate());
}

TEST(TlbConfigTest, RejectsMixedPageSizes) {
  TlbConfig c;
  c.l2.page_bytes = 8192;
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(TlbConfigTest, RejectsShrinkingHierarchy) {
  TlbConfig c;
  c.l2.entries = 32;  // smaller than the 64-entry DTLB
  EXPECT_THROW(c.validate(), ConfigError);
}

TEST(TlbTest, HitAfterWalkAndSamePageSharing) {
  TlbHierarchy tlb(TlbConfig::tiny());  // 64 B pages
  EXPECT_FALSE(tlb.access(0).has_value());  // cold walk
  EXPECT_EQ(tlb.access(0), 0u);             // now a DTLB hit
  EXPECT_EQ(tlb.access(63), 0u);            // same page
  EXPECT_FALSE(tlb.access(64).has_value()); // next page walks
  EXPECT_EQ(tlb.stats().walks, 2u);
  EXPECT_EQ(tlb.stats().l1_hits, 2u);
}

TEST(TlbTest, StlbCatchesDtlbEvictions) {
  // tiny(): DTLB 4 entries, STLB 16.  Touch 8 distinct pages (fits STLB,
  // overflows DTLB), then touch them again: no walks in the second pass.
  TlbHierarchy tlb(TlbConfig::tiny());
  for (std::uint64_t p = 0; p < 8; ++p) tlb.access(p * 64);
  const auto walks_before = tlb.stats().walks;
  std::uint64_t stlb_hits = 0;
  for (std::uint64_t p = 0; p < 8; ++p) {
    const auto lvl = tlb.access(p * 64);
    ASSERT_TRUE(lvl.has_value()) << "page " << p << " walked again";
    if (*lvl == 1) ++stlb_hits;
  }
  EXPECT_EQ(tlb.stats().walks, walks_before);
  EXPECT_GT(stlb_hits, 0u);
}

TEST(TlbTest, HugeFootprintWalksEveryPage) {
  // 64 pages >> 16-entry STLB with a random chase: steady-state walks.
  TlbHierarchy tlb(TlbConfig::tiny());
  CacheHierarchy caches(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 64;
  cfg.stride_bytes = 64;  // one page per element
  cfg.warmup_traversals = 2;
  cfg.measured_traversals = 2;
  const auto res = run_chase(caches, cfg, &tlb);
  EXPECT_GT(res.tlb.walks, res.total_accesses / 2);
}

TEST(TlbTest, SmallFootprintNeverWalksSteadyState) {
  TlbHierarchy tlb(TlbConfig::tiny());
  CacheHierarchy caches(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 8;
  cfg.stride_bytes = 32;  // 4 pages at 64 B pages: fits the 4-entry DTLB
  cfg.warmup_traversals = 2;
  cfg.measured_traversals = 3;
  const auto res = run_chase(caches, cfg, &tlb);
  EXPECT_EQ(res.tlb.walks, 0u);
  EXPECT_EQ(res.tlb.accesses(), res.total_accesses);
}

TEST(TlbTest, StatsConservation) {
  TlbHierarchy tlb(TlbConfig::tiny());
  for (std::uint64_t i = 0; i < 500; ++i) {
    tlb.access((i * 37) % 4096);
  }
  const auto& s = tlb.stats();
  EXPECT_EQ(s.l1_hits + s.l1_misses, 500u);
  EXPECT_EQ(s.l2_hits + s.walks, s.l1_misses);
}

TEST(TlbTest, ResetClearsEverything) {
  TlbHierarchy tlb(TlbConfig::tiny());
  tlb.access(0);
  tlb.reset();
  EXPECT_EQ(tlb.stats().accesses(), 0u);
  EXPECT_FALSE(tlb.access(0).has_value());  // cold again
}

TEST(TlbTest, ChaseWithoutTlbReportsZeroTlbStats) {
  CacheHierarchy caches(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 16;
  cfg.stride_bytes = 32;
  const auto res = run_chase(caches, cfg);
  EXPECT_EQ(res.tlb.accesses(), 0u);
  EXPECT_EQ(res.tlb.walks, 0u);
}

}  // namespace
}  // namespace catalyst::cachesim
