// Fixture: raw POSIX socket/stream syscalls outside src/service/io* must be
// flagged, while qualified wrapper calls and the flock-lease idiom stay
// clean.
// expect: raw-socket-io
// expect: raw-socket-io
// expect: raw-socket-io
#include <cstddef>

namespace io {
int read_some(int, char*, std::size_t);
}  // namespace io

int leaky_server(const char* buf, std::size_t n) {
  const int fd = socket(1, 1, 0);            // flagged: bare socket()
  ::write(fd, buf, n);                       // flagged: global-scope write
  char tmp[16];
  ::read(fd, tmp, sizeof(tmp));              // flagged: global-scope read
  io::read_some(fd, tmp, sizeof(tmp));       // clean: the sanctioned wrapper
  return fd;
}

struct Lease {
  // Clean: file locking, not stream I/O (mirrors core/campaign.cpp).
  void close();
};
void Lease::close() {}
