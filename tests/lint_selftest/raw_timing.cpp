// Fixture: raw steady-clock read outside src/obs//src/faults/.
// expect: raw-timing
#include <chrono>

auto selftest_stamp() { return std::chrono::steady_clock::now(); }
