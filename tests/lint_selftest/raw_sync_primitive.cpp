// Fixture: a raw standard-library mutex outside src/sync/.
// expect: raw-sync-primitive
#include <mutex>

static std::mutex selftest_mutex;
