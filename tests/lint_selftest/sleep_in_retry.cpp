// Fixture: raw wall-clock sleep outside faults::Clock.
// expect: sleep-in-retry
#include <chrono>
#include <thread>

void selftest_nap() {
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
}
