// Fixture: an ambient PRNG outside the allow-listed generators.
// expect: rng-in-hot-path
#include <random>

static std::mt19937 fixture_rng{42};
