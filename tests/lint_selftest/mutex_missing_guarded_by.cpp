// Fixture: a class owning a sync::Mutex with no CATALYST_GUARDED_BY sibling.
// expect: mutex-missing-guarded-by
#include "sync/mutex.hpp"

struct SelftestRegistry {
  catalyst::sync::Mutex mutex{"selftest"};
  int counter = 0;
};
