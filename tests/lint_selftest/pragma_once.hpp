// Fixture: a header whose first code line is not #pragma once.
// expect: pragma-once
inline int selftest_answer() { return 42; }
