// Fixture: a release store with no documented protocol fence around it.
// expect: atomic-ordering-outside-protocol
#include <atomic>

void selftest_publish(std::atomic<int>& flag) {
  flag.store(1, std::memory_order_release);
}
