// Fixture: a suppression whose offending code is gone.
// expect: stale-suppression
// catalyst-lint: allow(rng-in-hot-path)
int selftest_unrelated() { return 0; }
