// Fixture: std::thread constructed outside core/parallel.hpp.
// expect: raw-thread-spawn
#include <thread>

void selftest_spawn() {
  std::thread t([] {});
  t.join();
}
