// Fixture: exact comparison against a non-zero floating-point literal.
// expect: float-equality
bool selftest_close(double x) { return x == 1.5; }
