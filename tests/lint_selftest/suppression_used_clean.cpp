// Fixture (negative): a correctly-used suppression licenses the violation
// below, so this file must produce no findings at all.
#include <random>

// catalyst-lint: allow(rng-in-hot-path)
static std::mt19937 selftest_allowed_rng{7};
