// Fixture: explicit .lock() instead of an RAII guard.
// expect: manual-lock-unlock
template <typename M>
void selftest_critical(M& m) { m.lock(); }
