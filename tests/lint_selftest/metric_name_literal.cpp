// Fixture: inline metric-name literals at obs:: emission call sites.
#include <string>
#include <string_view>

namespace obs {
void count(std::string_view name, unsigned long long delta = 1);
void observe(std::string_view name, double value);
void gauge(std::string_view name, long long value);
namespace names {
inline constexpr std::string_view kGoodCounter = "selftest.good_counter";
inline constexpr std::string_view kFaultPrefix = "selftest.faults.";
}  // namespace names
}  // namespace obs

void selftest_emit(const std::string& kind) {
  obs::count("service.frames_received");  // expect: metric-name-literal
  obs::observe("service.request_ns", 1.5);  // expect: metric-name-literal
  obs::gauge("service.queue_depth", 3);  // expect: metric-name-literal
  obs::count(obs::names::kGoodCounter);                      // clean: registry
  obs::count(std::string(obs::names::kFaultPrefix) + kind);  // clean: prefix
  // A comment mentioning obs::count("not.a.call") must not fire.
  obs::gauge("licensed.literal", 0);  // catalyst-lint: allow(metric-name-literal)
}
