// Fixture: namespace-scope using-directive in a header.
// expect: using-namespace-in-header
#pragma once

using namespace std;
