// Fixture: wall-clock *type* inside a sampling translation unit.  No ::now()
// call, so raw-timing stays quiet -- only the stricter clock-in-sampling
// rule (keyed off the "sampling" basename) must fire.
// expect: clock-in-sampling
#include <chrono>

struct SelftestSampler {
  std::chrono::steady_clock::time_point last_slice{};
  std::chrono::nanoseconds period{250000};  // duration types stay legal
};
