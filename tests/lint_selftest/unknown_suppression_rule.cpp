// Fixture: a suppression naming a rule this linter does not define.
// expect: unknown-suppression-rule
// catalyst-lint: allow(no-such-rule)
