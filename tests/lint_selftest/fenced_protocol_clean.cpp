// Fixture (negative): ordering-bearing atomics inside a well-formed fence
// are licensed, so this file must produce no findings at all.
#include <atomic>

// catalyst-lint: begin-protocol(selftest-flag)
inline void selftest_fenced_publish(std::atomic<int>& flag) {
  flag.store(1, std::memory_order_release);
}
// catalyst-lint: end-protocol(selftest-flag)
