// Fixture: a protocol fence opened and never closed.
// expect: protocol-fence
// catalyst-lint: begin-protocol(orphan)
