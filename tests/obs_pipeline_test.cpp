// Integration of catalyst::obs with the pipeline: every stage emits a span,
// retry spans appear under injected faults, stage timings ride on
// PipelineResult into the Markdown report -- and, the determinism contract,
// tracing never changes a single bit of the results.
#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cat/cat.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"
#include "faults/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pmu/pmu.hpp"
#include "vpapi/collector.hpp"

namespace catalyst {
namespace {

class ObsPipelineTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_world(); }
  void TearDown() override { reset_world(); }

  static void reset_world() {
    obs::Tracer::instance().enable(false);
    obs::Tracer::instance().set_clock(nullptr);
    obs::Tracer::instance().reset();
    obs::Metrics::instance().reset();
  }
};

core::PipelineResult run_branch() {
  return core::run_pipeline(pmu::saphira_cpu(), cat::branch_benchmark(),
                            core::branch_signatures());
}

std::set<std::string> span_names() {
  std::set<std::string> names;
  for (const auto& rec : obs::Tracer::instance().buffer().snapshot()) {
    names.insert(rec.name);
  }
  return names;
}

TEST_F(ObsPipelineTest, TracingNeverPerturbsResults) {
  const core::PipelineResult plain = run_branch();

  faults::FakeClock clock;
  obs::Tracer::instance().set_clock(&clock);
  obs::Tracer::instance().enable(true);
  const core::PipelineResult traced = run_branch();
  obs::Tracer::instance().enable(false);

  // Bit-identical, not approximately equal: spans touch no RNG and no data.
  ASSERT_EQ(plain.all_event_names, traced.all_event_names);
  ASSERT_EQ(plain.measurements, traced.measurements);
  ASSERT_EQ(plain.xhat_events, traced.xhat_events);
  ASSERT_EQ(plain.metrics.size(), traced.metrics.size());
  for (std::size_t m = 0; m < plain.metrics.size(); ++m) {
    ASSERT_EQ(plain.metrics[m].terms.size(), traced.metrics[m].terms.size());
    for (std::size_t t = 0; t < plain.metrics[m].terms.size(); ++t) {
      EXPECT_EQ(plain.metrics[m].terms[t].coefficient,
                traced.metrics[m].terms[t].coefficient);
    }
    EXPECT_EQ(plain.metrics[m].backward_error, traced.metrics[m].backward_error);
  }
  // Untraced runs carry no timings (the Markdown timing section only
  // appears when tracing was on).
  EXPECT_TRUE(plain.stage_timings.empty());
}

#if !defined(CATALYST_OBS_DISABLED)

TEST_F(ObsPipelineTest, EveryPipelineStageEmitsASpan) {
  faults::FakeClock clock;
  obs::Tracer::instance().set_clock(&clock);
  obs::Tracer::instance().enable(true);
  const core::PipelineResult result = run_branch();
  obs::Tracer::instance().enable(false);

  const auto names = span_names();
  for (const char* expected :
       {"stage.collect", "stage.median_normalize", "stage.noise_filter",
        "stage.projection", "stage.qrcp", "stage.metrics", "pipeline.analyze",
        "qrcp.pivot", "vpapi.collect", "collect.unit"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span: " << expected;
  }

  // The same measurement rides on the result as per-stage wall time, in
  // pipeline order under deterministic virtual time.
  ASSERT_GE(result.stage_timings.size(), 5u);
  EXPECT_EQ(result.stage_timings[0].name, "collect");
  EXPECT_EQ(result.stage_timings[1].name, "median_normalize");
  for (const auto& st : result.stage_timings) {
    EXPECT_GT(st.wall_ns, 0) << st.name;
  }

  // Funnel counters registered (exact counts are pipeline-dependent; the
  // ordering invariant is what the manifest schema checks).
  const auto snap = obs::Metrics::instance().snapshot();
  EXPECT_GT(snap.counter("pipeline.events_measured"), 0u);
  EXPECT_GE(snap.counter("pipeline.events_measured"),
            snap.counter("pipeline.events_noise_kept"));
  EXPECT_GE(snap.counter("pipeline.events_noise_kept"),
            snap.counter("pipeline.events_selected"));
  ASSERT_NE(snap.histogram("qrcp.pivot_score"), nullptr);
  EXPECT_EQ(snap.histogram("qrcp.pivot_score")->total_count,
            result.qr.pivot_scores.size());
}

TEST_F(ObsPipelineTest, RetryAndBackoffSpansAppearUnderFaults) {
  // Same tiny faulty machine as collector_resilient_test: high fault rates
  // on few events guarantee retries.
  pmu::Machine m("faulty-tiny", 2, 7);
  m.add_event({"A", "x", {{"x", 1.0}}, {}});
  m.add_event({"B", "2x", {{"x", 2.0}}, {}});
  m.add_event({"C", "y", {{"y", 1.0}}, {}});
  m.add_event({"D", "x+y", {{"x", 1.0}, {"y", 1.0}}, {}});
  m.add_event({"N", "noisy x", {{"x", 1.0}, {"y", 0.5}},
               pmu::NoiseModel::relative(0.05)});
  m.add_event({"Z", "dead", {}, {}});
  const std::vector<std::string> events = {"A", "B", "C", "D", "N", "Z"};
  const std::vector<pmu::Activity> acts{{{"x", 1e6}, {"y", 3e5}},
                                        {{"x", 5e5}},
                                        {{"y", 9e5}}};

  faults::FakeClock clock;
  obs::Tracer::instance().set_clock(&clock);
  obs::Tracer::instance().enable(true);
  // Boosted transient rate: the canonical mid-rate plan on this tiny
  // machine (few readings) can draw zero faults, and the point here is
  // that retries DO produce spans.
  faults::FaultPlan plan = faults::FaultPlan::mid_rate();
  plan.rates.dropped_reading = 0.2;
  plan.rates.wrap = 0.05;
  vpapi::ResilienceOptions opts;
  opts.clock = &clock;  // pacing through the injectable clock -> backoff spans
  const auto out =
      vpapi::collect_resilient(m, events, acts, 3, &plan, opts);
  obs::Tracer::instance().enable(false);

  ASSERT_GT(out.report.total_retries, 0u) << "plan injected no faults";
  const auto names = span_names();
  EXPECT_TRUE(names.count("vpapi.collect_resilient"));
  EXPECT_TRUE(names.count("collect.unit"));
  EXPECT_TRUE(names.count("collect.retry"));
  EXPECT_TRUE(names.count("collect.backoff"));

  // The campaign-level rollup mirrors the report.
  const auto snap = obs::Metrics::instance().snapshot();
  EXPECT_EQ(snap.counter("collect.retries"), out.report.total_retries);

  // Happy-path attempts are span-quiet (the inert-span idiom): only actual
  // retries produce spans, so there can never be more retry spans than
  // retries tallied in the report.
  std::size_t retry_spans = 0;
  for (const auto& rec : obs::Tracer::instance().buffer().snapshot()) {
    const std::string name(rec.name);
    if (name == "collect.retry" || name == "collect.add_retry") ++retry_spans;
  }
  EXPECT_GT(retry_spans, 0u);
  EXPECT_LE(retry_spans, out.report.total_retries);
}

#endif  // !CATALYST_OBS_DISABLED

TEST_F(ObsPipelineTest, MarkdownReportRendersStageTimingsWhenPresent) {
  core::PipelineResult result = run_branch();
  const auto without = core::format_markdown_report("r", result);
  EXPECT_EQ(without.find("## Stage timings"), std::string::npos)
      << "timing section must be absent when tracing was off";

  result.stage_timings = {{"collect", 3'000'000},
                          {"noise_filter", 1'000'000}};
  const auto with = core::format_markdown_report("r", result);
  EXPECT_NE(with.find("## Stage timings"), std::string::npos);
  EXPECT_NE(with.find("| collect |"), std::string::npos);
  EXPECT_NE(with.find("| noise_filter |"), std::string::npos);
  EXPECT_NE(with.find("75.0"), std::string::npos);  // 3ms of 4ms total
}

}  // namespace
}  // namespace catalyst
