// Tests for the catalyst::contract layer: macro semantics, the three
// violation policies, the numeric helpers, and the acceptance-criterion
// scenario -- a NaN measurement is rejected at the pipeline boundary with a
// contract violation instead of propagating into the QR stage.
#include "core/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst {
namespace {

using contract::ContractViolation;
using contract::PolicyGuard;
using contract::ViolationPolicy;

TEST(ContractMacros, PassingChecksAreSilent) {
  EXPECT_NO_THROW(CATALYST_REQUIRE(1 + 1 == 2, "arithmetic works"));
  EXPECT_NO_THROW(CATALYST_ENSURE(true, "ok"));
  EXPECT_NO_THROW(CATALYST_INVARIANT(true, "ok"));
  EXPECT_NO_THROW(CATALYST_ASSUME_FINITE(1.5, "finite scalar"));
}

TEST(ContractMacros, FailingChecksThrowContractViolation) {
  EXPECT_THROW(CATALYST_REQUIRE(false, "nope"), ContractViolation);
  EXPECT_THROW(CATALYST_ENSURE(false, "nope"), ContractViolation);
  EXPECT_THROW(CATALYST_INVARIANT(false, "nope"), ContractViolation);
}

TEST(ContractMacros, TypedVariantsThrowTheRequestedException) {
  EXPECT_THROW(CATALYST_REQUIRE_AS(false, std::invalid_argument, "msg"),
               std::invalid_argument);
  EXPECT_THROW(CATALYST_ENSURE_AS(false, std::domain_error, "msg"),
               std::domain_error);
  EXPECT_THROW(CATALYST_INVARIANT_AS(false, std::logic_error, "msg"),
               std::logic_error);
}

TEST(ContractMacros, MessageCarriesKindExpressionLocationAndText) {
  try {
    CATALYST_REQUIRE(2 < 1, "two is not less than one");
    FAIL() << "expected a throw";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos) << what;
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("contract_test.cpp"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos) << what;
  }
}

TEST(ContractMacros, MessageExpressionIsLazilyEvaluated) {
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return std::string("built");
  };
  CATALYST_REQUIRE(true, expensive());
  EXPECT_EQ(evaluations, 0);
  EXPECT_THROW(CATALYST_REQUIRE(false, expensive()), ContractViolation);
  EXPECT_EQ(evaluations, 1);
}

TEST(ContractPolicy, DefaultIsThrow) {
  EXPECT_EQ(contract::violation_policy(), ViolationPolicy::throw_exception);
}

TEST(ContractPolicy, LogAndContinueSwallowsAndCounts) {
  PolicyGuard guard(ViolationPolicy::log_and_continue);
  const std::size_t before = contract::logged_violation_count();
  EXPECT_NO_THROW(CATALYST_REQUIRE(false, "logged, not thrown"));
  EXPECT_NO_THROW(CATALYST_ENSURE_AS(false, std::invalid_argument, "ditto"));
  EXPECT_EQ(contract::logged_violation_count(), before + 2);
}

TEST(ContractPolicy, GuardRestoresPreviousPolicy) {
  const ViolationPolicy before = contract::violation_policy();
  {
    PolicyGuard guard(ViolationPolicy::log_and_continue);
    EXPECT_EQ(contract::violation_policy(),
              ViolationPolicy::log_and_continue);
  }
  EXPECT_EQ(contract::violation_policy(), before);
}

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, AbortWithTracePolicyAborts) {
  EXPECT_DEATH(
      {
        contract::set_violation_policy(ViolationPolicy::abort_with_trace);
        CATALYST_REQUIRE(false, "fatal by policy");
      },
      "precondition violated");
}

TEST(ContractHelpers, AllFiniteVariants) {
  EXPECT_TRUE(contract::all_finite(0.0));
  EXPECT_FALSE(contract::all_finite(std::nan("")));
  EXPECT_FALSE(
      contract::all_finite(std::numeric_limits<double>::infinity()));
  const std::vector<double> good{1.0, -2.0, 0.0};
  EXPECT_TRUE(contract::all_finite(good));
  std::vector<double> bad = good;
  bad[1] = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(contract::all_finite(bad));
}

TEST(ContractHelpers, SingularToleranceScalesWithDimensionAndDiagonal) {
  const double eps = std::numeric_limits<double>::epsilon();
  EXPECT_DOUBLE_EQ(contract::singular_tolerance(1, 1.0), eps);
  EXPECT_DOUBLE_EQ(contract::singular_tolerance(4, 2.0), 8.0 * eps);
  // Degenerate n is clamped so the tolerance never collapses to zero scale.
  EXPECT_DOUBLE_EQ(contract::singular_tolerance(0, 1.0), eps);
}

TEST(AssumeFinite, RejectsNanAndInfInRanges) {
  std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_NO_THROW(CATALYST_ASSUME_FINITE(v, "clean vector"));
  v[2] = std::nan("");
  EXPECT_THROW(CATALYST_ASSUME_FINITE(v, "dirty vector"), ContractViolation);
  v[2] = std::numeric_limits<double>::infinity();
  EXPECT_THROW(
      CATALYST_ASSUME_FINITE_AS(v, std::invalid_argument, "dirty vector"),
      std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Acceptance scenario: an injected NaN measurement must be rejected at the
// pipeline boundary, before the noise filter and QR stages can see it.
// ---------------------------------------------------------------------------

class NanInjection : public ::testing::Test {
 protected:
  // A real branch-category measurement set, then one reading corrupted.
  static std::vector<std::vector<std::vector<double>>> clean_measurements(
      std::vector<std::string>* names) {
    const pmu::Machine machine = pmu::saphira_cpu();
    const cat::Benchmark bench = cat::branch_benchmark();
    core::PipelineOptions opt;
    const core::PipelineResult res = core::run_pipeline(
        machine, bench, core::branch_signatures(), opt);
    *names = res.all_event_names;
    return res.measurements;
  }
};

TEST_F(NanInjection, NanMeasurementIsRejectedBeforeQr) {
  std::vector<std::string> names;
  auto measurements = clean_measurements(&names);
  ASSERT_FALSE(measurements.empty());
  measurements[0][0][0] = std::nan("");

  const cat::Benchmark bench = cat::branch_benchmark();
  core::PipelineOptions opt;
  try {
    core::analyze_measurements(bench.basis.e, names, std::move(measurements),
                               core::branch_signatures(), opt);
    FAIL() << "NaN measurement must not reach the QR stage";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("finite-assumption"), std::string::npos) << what;
    EXPECT_NE(what.find(names[0]), std::string::npos) << what;
  }
}

TEST_F(NanInjection, InfMeasurementIsRejectedToo) {
  std::vector<std::string> names;
  auto measurements = clean_measurements(&names);
  ASSERT_FALSE(measurements.empty());
  measurements.back().back().back() = std::numeric_limits<double>::infinity();

  const cat::Benchmark bench = cat::branch_benchmark();
  core::PipelineOptions opt;
  EXPECT_THROW(core::analyze_measurements(bench.basis.e, names,
                                          std::move(measurements),
                                          core::branch_signatures(), opt),
               ContractViolation);
}

TEST_F(NanInjection, CleanMeasurementsStillAnalyze) {
  std::vector<std::string> names;
  auto measurements = clean_measurements(&names);
  const cat::Benchmark bench = cat::branch_benchmark();
  core::PipelineOptions opt;
  const core::PipelineResult res = core::analyze_measurements(
      bench.basis.e, names, std::move(measurements),
      core::branch_signatures(), opt);
  EXPECT_EQ(res.xhat_events.size(), 4u);
}

}  // namespace
}  // namespace catalyst
