// Unit tests for the CAT benchmark definitions: slot structure, expectation
// bases, and the signature algebra of Section III.
#include "cat/cat.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qrcp.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {
namespace {

namespace sig = pmu::sig;

// --- CPU FLOPs ---------------------------------------------------------------

TEST(CpuFlops, Has48SlotsAnd16BasisColumns) {
  const auto b = cpu_flops_benchmark();
  EXPECT_EQ(b.slots.size(), 48u);
  EXPECT_EQ(b.basis.e.rows(), 48);
  EXPECT_EQ(b.basis.e.cols(), 16);
  EXPECT_EQ(b.basis.labels.size(), 16u);
}

TEST(CpuFlops, BasisLabelOrderMatchesTableI) {
  const auto b = cpu_flops_benchmark();
  const std::vector<std::string> expect = {
      "SSCAL", "S128", "S256", "S512", "DSCAL", "D128", "D256", "D512",
      "SSCAL_FMA", "S128_FMA", "S256_FMA", "S512_FMA",
      "DSCAL_FMA", "D128_FMA", "D256_FMA", "D512_FMA"};
  EXPECT_EQ(b.basis.labels, expect);
}

TEST(CpuFlops, ScalarKernelCountsMatchPaper) {
  // K_SCAL's three loops perform 24/48/96 DP scalar instructions (Fig. 1).
  const auto b = cpu_flops_benchmark();
  // DSCAL is basis column 4; its kernel occupies slots 12..14.
  const linalg::index_t col = 4;
  EXPECT_DOUBLE_EQ(b.basis.e(12, col), 24.0);
  EXPECT_DOUBLE_EQ(b.basis.e(13, col), 48.0);
  EXPECT_DOUBLE_EQ(b.basis.e(14, col), 96.0);
}

TEST(CpuFlops, FmaKernelCountsMatchPaper) {
  // K^256_FMA loops contain 12/24/48 AVX256 FMA instructions.
  const auto b = cpu_flops_benchmark();
  const linalg::index_t col = 14;  // D256_FMA
  EXPECT_DOUBLE_EQ(b.basis.e(col * 3 + 0, col), 12.0);
  EXPECT_DOUBLE_EQ(b.basis.e(col * 3 + 1, col), 24.0);
  EXPECT_DOUBLE_EQ(b.basis.e(col * 3 + 2, col), 48.0);
}

TEST(CpuFlops, BasisIsBlockDiagonalAndFullRank) {
  const auto b = cpu_flops_benchmark();
  // Each kernel stresses exactly one ideal event.
  for (linalg::index_t r = 0; r < 48; ++r) {
    for (linalg::index_t c = 0; c < 16; ++c) {
      if (r / 3 == c) {
        EXPECT_GT(b.basis.e(r, c), 0.0);
      } else {
        EXPECT_EQ(b.basis.e(r, c), 0.0);
      }
    }
  }
  EXPECT_EQ(linalg::qrcp(b.basis.e).rank, 16);
}

TEST(CpuFlops, ActivityMatchesBasisAfterNormalization) {
  const auto b = cpu_flops_benchmark();
  for (std::size_t s = 0; s < b.slots.size(); ++s) {
    const auto& slot = b.slots[s];
    ASSERT_EQ(slot.thread_activities.size(), 1u);
    const auto& act = slot.thread_activities[0];
    // Find the slot's FP signal and compare to the basis entry.
    const auto kernel = static_cast<linalg::index_t>(s / 3);
    double fp_total = 0.0;
    for (const auto& [signal, value] : act) {
      if (signal.rfind("fp.", 0) == 0) fp_total += value;
    }
    EXPECT_DOUBLE_EQ(fp_total / slot.normalizer,
                     b.basis.e(static_cast<linalg::index_t>(s), kernel));
  }
}

TEST(CpuFlops, SlotsCarryLoopHeaderPollution) {
  const auto b = cpu_flops_benchmark();
  const auto& act = b.slots[0].thread_activities[0];
  EXPECT_GT(act.at(sig::int_ops), 0.0);
  EXPECT_GT(act.at(sig::branch_cond_retired), 0.0);
  EXPECT_GT(act.at(sig::cycles), 0.0);
}

TEST(CpuFlops, LabelHelper) {
  EXPECT_EQ(cpu_flops_label("scalar", "sp", false), "SSCAL");
  EXPECT_EQ(cpu_flops_label("256", "dp", true), "D256_FMA");
}

// --- GPU FLOPs ---------------------------------------------------------------

TEST(GpuFlops, Has45SlotsAnd15BasisColumns) {
  const auto b = gpu_flops_benchmark();
  EXPECT_EQ(b.slots.size(), 45u);
  EXPECT_EQ(b.basis.e.rows(), 45);
  EXPECT_EQ(b.basis.e.cols(), 15);
}

TEST(GpuFlops, BasisLabelOrderMatchesTableII) {
  const auto b = gpu_flops_benchmark();
  const std::vector<std::string> expect = {"AH", "AS", "AD", "SH", "SS", "SD",
                                           "MH", "MS", "MD", "SQH", "SQS",
                                           "SQD", "FH", "FS", "FD"};
  EXPECT_EQ(b.basis.labels, expect);
}

TEST(GpuFlops, SubtractionKernelEmitsSubSignal) {
  const auto b = gpu_flops_benchmark();
  // SH kernel = basis column 3 -> slots 9..11.
  const auto& act = b.slots[9].thread_activities[0];
  EXPECT_GT(act.at(sig::gpu_valu("sub", "f16")), 0.0);
  EXPECT_EQ(act.count(sig::gpu_valu("add", "f16")), 0u);
}

TEST(GpuFlops, FmaKernelsUseSingleInstructionPerBlock) {
  const auto b = gpu_flops_benchmark();
  // FD kernel = last basis column; first loop has 12 instructions.
  EXPECT_DOUBLE_EQ(b.basis.e(14 * 3 + 0, 14), 12.0);
  EXPECT_DOUBLE_EQ(b.basis.e(14 * 3 + 2, 14), 48.0);
}

TEST(GpuFlops, BasisFullRank) {
  const auto b = gpu_flops_benchmark();
  EXPECT_EQ(linalg::qrcp(b.basis.e).rank, 15);
}

// --- Branching -----------------------------------------------------------------

TEST(Branch, ExpectationMatrixMatchesEq3) {
  const auto e = branch_expectation_rows();
  ASSERT_EQ(e.rows(), 11);
  ASSERT_EQ(e.cols(), 5);
  // Spot-check rows 1, 7, 10, 11 of Eq. 3.
  EXPECT_EQ(e.row_copy(0), (linalg::Vector{2, 2, 1.5, 0, 0}));
  EXPECT_EQ(e.row_copy(6), (linalg::Vector{2.5, 2, 1.5, 0, 0.5}));
  EXPECT_EQ(e.row_copy(9), (linalg::Vector{2, 2, 1, 1, 0}));
  EXPECT_EQ(e.row_copy(10), (linalg::Vector{1, 1, 1, 0, 0}));
}

TEST(Branch, BasisFullRank) {
  EXPECT_EQ(linalg::qrcp(branch_expectation_rows()).rank, 5);
}

TEST(Branch, SlotsRealizeExpectationRows) {
  const auto b = branch_benchmark();
  ASSERT_EQ(b.slots.size(), 11u);
  for (std::size_t s = 0; s < 11; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    const auto r = static_cast<linalg::index_t>(s);
    EXPECT_DOUBLE_EQ(act.at(sig::branch_cond_exec) / b.slots[s].normalizer,
                     b.basis.e(r, 0));
    EXPECT_DOUBLE_EQ(act.at(sig::branch_cond_retired) / b.slots[s].normalizer,
                     b.basis.e(r, 1));
    EXPECT_DOUBLE_EQ(act.at(sig::branch_cond_taken) / b.slots[s].normalizer,
                     b.basis.e(r, 2));
    EXPECT_DOUBLE_EQ(act.at(sig::branch_uncond) / b.slots[s].normalizer,
                     b.basis.e(r, 3));
    EXPECT_DOUBLE_EQ(act.at(sig::branch_mispredicted) / b.slots[s].normalizer,
                     b.basis.e(r, 4));
  }
}

TEST(Branch, HalfCountsAreIntegralTotals) {
  const auto b = branch_benchmark();
  for (const auto& slot : b.slots) {
    for (const auto& [signal, value] : slot.thread_activities[0]) {
      EXPECT_DOUBLE_EQ(value, std::round(value)) << signal;
    }
  }
}

TEST(Branch, MispredictionsRaiseCycles) {
  const auto b = branch_benchmark();
  // Row 4 is row 1 plus 0.5 mispredictions/iter: strictly more cycles.
  const double c1 =
      b.slots[0].thread_activities[0].at(sig::cycles);
  const double c4 =
      b.slots[3].thread_activities[0].at(sig::cycles);
  EXPECT_GT(c4, c1);
}

// --- Data cache ------------------------------------------------------------------

class DcacheFixture : public ::testing::Test {
 protected:
  static const Benchmark& bench() {
    static const Benchmark b = [] {
      DcacheOptions opt;
      opt.threads = 2;
      opt.hierarchy = cachesim::HierarchyConfig::tiny();
      // tiny() is 256 B / 1 KiB / 4 KiB with 32 B lines: use byte-scale
      // strides and small footprints for fast tests.
      opt.strides = {32, 64};
      return dcache_benchmark(opt);
    }();
    return b;
  }
};

TEST_F(DcacheFixture, SlotCountMatchesPlan) {
  // Per stride: 3 levels x 2 fractions + 2 memory points = 8 slots.
  EXPECT_EQ(bench().slots.size(), 16u);
  EXPECT_EQ(bench().basis.e.rows(), 16);
  EXPECT_EQ(bench().basis.e.cols(), 4);
}

TEST_F(DcacheFixture, EverySlotHasPerThreadActivities) {
  for (const auto& slot : bench().slots) {
    EXPECT_EQ(slot.thread_activities.size(), 2u) << slot.name;
    EXPECT_GT(slot.normalizer, 0.0);
  }
}

TEST_F(DcacheFixture, L1RegimeMeasurementsNearIdeal) {
  // First slot: L1 regime at 0.35 * L1 capacity: ~all demand hits.
  const auto& slot = bench().slots[0];
  const auto& act = slot.thread_activities[0];
  const double hits = act.at(sig::l1d_demand_hit) / slot.normalizer;
  EXPECT_GT(hits, 0.95);
}

TEST_F(DcacheFixture, MemoryRegimeMissesEverything) {
  // Slot 7 (stride 32): memory regime at 4x L3.
  const auto& slot = bench().slots[7];
  const auto& act = slot.thread_activities[0];
  EXPECT_GT(act.at(sig::l1d_demand_miss) / slot.normalizer, 0.9);
  EXPECT_LT(act.at(sig::l3d_demand_hit) / slot.normalizer, 0.2);
}

TEST_F(DcacheFixture, ConservationPerSlot) {
  for (const auto& slot : bench().slots) {
    for (const auto& act : slot.thread_activities) {
      const double served = act.at(sig::l1d_demand_hit) +
                            act.at(sig::l2d_demand_hit) +
                            act.at(sig::l3d_demand_hit) +
                            act.at(sig::l3d_demand_miss);
      EXPECT_NEAR(served / slot.normalizer, 1.0, 1e-12) << slot.name;
    }
  }
}

TEST_F(DcacheFixture, ThreadsSeeDifferentChainsButSameRegime) {
  const auto& slot = bench().slots[0];
  const auto& a0 = slot.thread_activities[0];
  const auto& a1 = slot.thread_activities[1];
  // Same idealized regime...
  EXPECT_NEAR(a0.at(sig::l1d_demand_hit) / slot.normalizer,
              a1.at(sig::l1d_demand_hit) / slot.normalizer, 0.05);
}

TEST(Dcache, SlotInfoParallelsSlots) {
  DcacheOptions opt;
  opt.threads = 1;
  opt.hierarchy = cachesim::HierarchyConfig::tiny();
  opt.strides = {32};
  const auto info = dcache_slot_info(opt);
  const auto bench = dcache_benchmark(opt);
  ASSERT_EQ(info.size(), bench.slots.size());
  EXPECT_EQ(info[0].regime, "L1D");
  EXPECT_EQ(info.back().regime, "M");
}

TEST(Dcache, RejectsBadOptions) {
  DcacheOptions opt;
  opt.threads = 0;
  EXPECT_THROW(dcache_benchmark(opt), std::invalid_argument);
  DcacheOptions opt2;
  opt2.hierarchy.levels.clear();
  EXPECT_THROW(dcache_benchmark(opt2), cachesim::ConfigError);
}

TEST(BenchmarkStruct, SingleThreadActivitiesRejectsMultiThread) {
  DcacheOptions opt;
  opt.threads = 2;
  opt.hierarchy = cachesim::HierarchyConfig::tiny();
  opt.strides = {32};
  const auto b = dcache_benchmark(opt);
  EXPECT_THROW(b.single_thread_activities(), std::logic_error);
  EXPECT_EQ(cpu_flops_benchmark().single_thread_activities().size(), 48u);
}

}  // namespace
}  // namespace catalyst::cat
