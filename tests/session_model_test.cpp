// Model-based randomized testing of the vpapi Session state machine:
// random operation sequences are executed against both the real Session and
// a simple reference model; observable behaviour (status codes, list
// contents, counter budget, read values) must match at every step.
#include <gtest/gtest.h>

#include "seed_util.hpp"

#include <map>
#include <random>
#include <set>

#include "vpapi/vpapi.hpp"

namespace catalyst::vpapi {
namespace {

pmu::Machine model_machine() {
  pmu::Machine m("model", 3, 5);
  m.add_event({"A", "", {{"x", 1.0}}, {}});
  m.add_event({"B", "", {{"y", 2.0}}, {}});
  m.add_event({"C", "", {{"x", 1.0}, {"y", 1.0}}, {}});
  m.add_event({"D", "", {{"z", 3.0}}, {}});
  m.add_event({"E", "", {}, {}});
  return m;
}

// Reference model of one event set.  Mirrors the documented semantics only
// (no noise: the machine above is deterministic, so expected readings are
// exact linear functionals).
struct ModelSet {
  std::vector<std::string> items;      // add order
  std::set<std::string> raw_counters;  // distinct raw constituents
  bool running = false;
  bool ever_started = false;
  std::map<std::string, double> raw_counts;
};

struct Model {
  const pmu::Machine& machine;
  std::map<std::string, std::vector<DerivedTerm>> presets;
  std::vector<ModelSet> sets;

  std::vector<DerivedTerm> constituents(const std::string& name) const {
    if (machine.find(name)) return {{name, 1.0}};
    auto it = presets.find(name);
    if (it != presets.end()) return it->second;
    return {};
  }
};

TEST(SessionModel, RandomOperationSequencesMatchReference) {
  const auto machine = model_machine();
  const std::vector<std::string> names{"A", "B", "C", "D", "E",
                                       "P1", "P2", "nope"};

  for (std::uint64_t seed : testing::sweep_seeds(0, 20)) {
    Session session(machine);
    Model model{machine, {}, {}};
    // Register two presets up front (tested separately below).
    ASSERT_EQ(session.register_preset(
                  {"P1", "", {{"A", 1.0}, {"B", -1.0}}}),
              Status::ok);
    ASSERT_EQ(session.register_preset({"P2", "", {{"C", 2.0}}}), Status::ok);
    model.presets["P1"] = {{"A", 1.0}, {"B", -1.0}};
    model.presets["P2"] = {{"C", 2.0}};

    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<int> op_dist(0, 6);
    std::uniform_int_distribution<std::size_t> name_dist(0, names.size() - 1);

    for (int step = 0; step < 200; ++step) {
      const int op = op_dist(rng);
      if (op == 0 || model.sets.empty()) {
        const int handle = session.create_eventset();
        ASSERT_EQ(handle, static_cast<int>(model.sets.size()));
        model.sets.emplace_back();
        continue;
      }
      std::uniform_int_distribution<std::size_t> set_dist(
          0, model.sets.size() - 1);
      const auto si = set_dist(rng);
      const int handle = static_cast<int>(si);
      ModelSet& ms = model.sets[si];
      switch (op) {
        case 1: {  // add_event
          const std::string& name = names[name_dist(rng)];
          const Status got = session.add_event(handle, name);
          Status want = Status::ok;
          const auto parts = model.constituents(name);
          if (ms.running) {
            want = Status::is_running;
          } else if (std::count(ms.items.begin(), ms.items.end(), name)) {
            want = Status::already_added;
          } else if (parts.empty()) {
            want = Status::no_such_event;
          } else {
            std::set<std::string> needed = ms.raw_counters;
            for (const auto& t : parts) needed.insert(t.event_name);
            if (needed.size() > machine.physical_counters()) {
              want = Status::conflict;
            } else {
              ms.items.push_back(name);
              ms.raw_counters = needed;
            }
          }
          ASSERT_EQ(got, want) << testing::seed_banner(seed) << "step " << step
                               << " add " << name;
          break;
        }
        case 2: {  // remove_event
          const std::string& name = names[name_dist(rng)];
          const Status got = session.remove_event(handle, name);
          Status want = Status::ok;
          if (ms.running) {
            want = Status::is_running;
          } else if (!std::count(ms.items.begin(), ms.items.end(), name)) {
            want = Status::no_such_event;
          } else {
            ms.items.erase(
                std::find(ms.items.begin(), ms.items.end(), name));
            // Recompute raw counters from remaining items; freed counters
            // lose their accumulated counts (the slot is released).
            ms.raw_counters.clear();
            for (const auto& item : ms.items) {
              for (const auto& t : model.constituents(item)) {
                ms.raw_counters.insert(t.event_name);
              }
            }
            std::erase_if(ms.raw_counts, [&](const auto& kv) {
              return ms.raw_counters.count(kv.first) == 0;
            });
          }
          ASSERT_EQ(got, want);
          break;
        }
        case 3: {  // start
          const Status got = session.start(handle);
          const Status want = ms.running ? Status::is_running : Status::ok;
          if (want == Status::ok) {
            ms.running = true;
            ms.ever_started = true;
          }
          ASSERT_EQ(got, want);
          break;
        }
        case 4: {  // stop
          const Status got = session.stop(handle);
          const Status want = ms.running ? Status::ok : Status::not_running;
          if (want == Status::ok) ms.running = false;
          ASSERT_EQ(got, want);
          break;
        }
        case 5: {  // run_kernel (global)
          pmu::Activity act{{"x", double(step + 1)},
                            {"y", double(step % 7)},
                            {"z", double(step % 3)}};
          session.run_kernel(act, 0, static_cast<std::uint64_t>(step));
          for (auto& set : model.sets) {
            if (!set.running) continue;
            for (const auto& raw : set.raw_counters) {
              const auto idx = machine.find(raw);
              set.raw_counts[raw] +=
                  machine.event(*idx).ideal(act);  // deterministic machine
            }
          }
          break;
        }
        case 6: {  // read + verify values
          std::vector<double> vals;
          const Status got = session.read(handle, vals);
          const Status want =
              ms.ever_started ? Status::ok : Status::not_running;
          ASSERT_EQ(got, want);
          if (want != Status::ok) break;
          ASSERT_EQ(vals.size(), ms.items.size());
          ASSERT_EQ(session.list_events(handle), ms.items);
          ASSERT_EQ(session.counters_in_use(handle), ms.raw_counters.size());
          for (std::size_t i = 0; i < ms.items.size(); ++i) {
            double want_val = 0.0;
            for (const auto& t : model.constituents(ms.items[i])) {
              auto it = ms.raw_counts.find(t.event_name);
              if (it != ms.raw_counts.end()) {
                want_val += t.coefficient * it->second;
              }
            }
            EXPECT_DOUBLE_EQ(vals[i], want_val)
                << testing::seed_banner(seed) << "step " << step << " item "
                << ms.items[i];
          }
          break;
        }
        default:
          break;
      }
    }
  }
}

}  // namespace
}  // namespace catalyst::vpapi
