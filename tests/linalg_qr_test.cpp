// Unit + property tests for the Householder QR factorization.
#include "linalg/qr.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

TEST(Householder, ReflectorAnnihilatesTail) {
  Vector x{3, 4, 0};
  Reflector h = make_reflector(x);
  // |beta| must equal the norm of the original vector.
  EXPECT_NEAR(std::fabs(h.beta), 5.0, 1e-14);
  // Applying H to the original vector gives (beta, 0, 0).
  Vector orig{3, 4, 0};
  apply_reflector_vec(orig, 0, std::span<const double>(x).subspan(1), h.tau);
  EXPECT_NEAR(orig[0], h.beta, 1e-14);
  EXPECT_NEAR(orig[1], 0.0, 1e-14);
  EXPECT_NEAR(orig[2], 0.0, 1e-14);
}

TEST(Householder, ZeroTailGivesIdentity) {
  Vector x{2, 0, 0};
  Reflector h = make_reflector(x);
  EXPECT_EQ(h.tau, 0.0);
  EXPECT_EQ(h.beta, 2.0);
}

TEST(Householder, EmptyVector) {
  Vector x;
  Reflector h = make_reflector(x);
  EXPECT_EQ(h.tau, 0.0);
}

TEST(Householder, ReflectorIsInvolutory) {
  // H (H b) == b since H is orthogonal and symmetric.
  Vector v{1, -2, 0.5};
  Reflector h = make_reflector(v);
  auto ess = std::span<const double>(v).subspan(1);
  Vector b{0.3, 1.7, -2.2};
  Vector b0 = b;
  apply_reflector_vec(b, 0, ess, h.tau);
  apply_reflector_vec(b, 0, ess, h.tau);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(b[i], b0[i], 1e-13);
}

class QrShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(QrShapes, ReconstructsAndIsOrthogonal) {
  const auto [m, n, seed] = GetParam();
  Matrix a = random_gaussian(m, n, static_cast<std::uint64_t>(seed));
  QrFactorization qr(a);

  Matrix q = qr.q_thin();
  Matrix r = qr.r();
  // Q^T Q == I.
  Matrix qtq = matmul_tn(q, q);
  EXPECT_LT(Matrix::max_abs_diff(qtq, Matrix::identity(qtq.rows())), 1e-12)
      << "Q columns not orthonormal for " << m << "x" << n;
  // Q R == A.
  Matrix qr_prod = matmul(q, r);
  EXPECT_LT(Matrix::max_abs_diff(qr_prod, a), 1e-11)
      << "QR != A for " << m << "x" << n;
  // R upper-trapezoidal.
  for (index_t j = 0; j < r.cols(); ++j) {
    for (index_t i = j + 1; i < r.rows(); ++i) {
      EXPECT_EQ(r(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ShapeSweep, QrShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(5, 5, 2),
                      std::make_tuple(10, 4, 3), std::make_tuple(4, 10, 4),
                      std::make_tuple(50, 20, 5), std::make_tuple(20, 50, 6),
                      std::make_tuple(100, 100, 7),
                      std::make_tuple(64, 1, 8)));

class BlockedQrShapes
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(BlockedQrShapes, MatchesUnblockedFactorization) {
  const auto [m, n, nb] = GetParam();
  Matrix a = random_gaussian(m, n, 12345);
  QrFactorization unblocked(a);
  QrFactorization blocked(a, nb);
  ASSERT_EQ(blocked.reflectors(), unblocked.reflectors());
  // Identical packed representation up to trailing-update roundoff.
  EXPECT_LT(Matrix::max_abs_diff(blocked.packed(), unblocked.packed()),
            1e-11);
  for (std::size_t i = 0; i < blocked.taus().size(); ++i) {
    EXPECT_NEAR(blocked.taus()[i], unblocked.taus()[i], 1e-12);
  }
  // And still reconstructs A.
  Matrix qr_prod = matmul(blocked.q_thin(), blocked.r());
  EXPECT_LT(Matrix::max_abs_diff(qr_prod, a), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    BlockSweep, BlockedQrShapes,
    ::testing::Values(std::make_tuple(20, 12, 1), std::make_tuple(20, 12, 4),
                      std::make_tuple(20, 12, 5), std::make_tuple(20, 12, 32),
                      std::make_tuple(64, 64, 8), std::make_tuple(100, 40, 16),
                      std::make_tuple(13, 29, 8)));

TEST(BlockedQr, SolveAgreesWithUnblocked) {
  Matrix a = random_gaussian(40, 10, 777);
  Vector b(40);
  for (std::size_t i = 0; i < 40; ++i) b[i] = std::sin(0.7 * double(i));
  const Vector x1 = QrFactorization(a).solve(b);
  const Vector x2 = QrFactorization(a, 4).solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-10);
  }
}

TEST(BlockedQr, RejectsNonPositiveBlockSize) {
  Matrix a(4, 4, 1.0);
  EXPECT_THROW(QrFactorization(a, 0), ArgumentError);
  EXPECT_THROW(QrFactorization(a, -3), ArgumentError);
}

TEST(Qr, ApplyQtThenQIsIdentity) {
  Matrix a = random_gaussian(9, 5, 11);
  QrFactorization qr(a);
  Vector b{1, 2, 3, 4, 5, 6, 7, 8, 9};
  Vector b0 = b;
  qr.apply_qt(b);
  qr.apply_q(b);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(b[i], b0[i], 1e-12);
}

TEST(Qr, ApplyQtPreservesNorm) {
  Matrix a = random_gaussian(12, 6, 13);
  QrFactorization qr(a);
  Vector b(12);
  for (std::size_t i = 0; i < 12; ++i) b[i] = std::sin(double(i) + 1.0);
  const double n0 = nrm2(b);
  qr.apply_qt(b);
  EXPECT_NEAR(nrm2(b), n0, 1e-12);
}

TEST(Qr, SolveSquareSystem) {
  Matrix a{{2, 1}, {1, 3}};
  Vector b{5, 10};
  Vector x = QrFactorization(a).solve(b);
  Vector check = matvec(a, x);
  EXPECT_NEAR(check[0], 5.0, 1e-12);
  EXPECT_NEAR(check[1], 10.0, 1e-12);
}

TEST(Qr, SolveTallSystemGivesLeastSquares) {
  // Overdetermined consistent system must be solved exactly.
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  Vector xtrue{2, -1};
  Vector b = matvec(a, xtrue);
  Vector x = QrFactorization(a).solve(b);
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], -1.0, 1e-12);
}

TEST(Qr, SolveUnderdeterminedThrows) {
  Matrix a(2, 4);
  Vector b{1, 2};
  EXPECT_THROW(QrFactorization(a).solve(b), DimensionError);
}

TEST(Qr, SolveWrongRhsLengthThrows) {
  Matrix a(3, 2);
  Vector b{1, 2};
  EXPECT_THROW(QrFactorization(a).solve(b), DimensionError);
}

TEST(Qr, RDiagonalAbsOfIdentity) {
  QrFactorization qr(Matrix::identity(4));
  auto d = qr.r_diagonal_abs();
  ASSERT_EQ(d.size(), 4u);
  for (double v : d) EXPECT_NEAR(v, 1.0, 1e-15);
}

TEST(Qr, IllConditionedStillReconstructs) {
  Matrix a = random_with_condition(30, 10, 1e10, 21);
  QrFactorization qr(a);
  Matrix qr_prod = matmul(qr.q_thin(), qr.r());
  EXPECT_LT(Matrix::max_abs_diff(qr_prod, a), 1e-11);
}

}  // namespace
}  // namespace catalyst::linalg
