// Live telemetry for the service tier, end to end:
//
//   * gauges      -- queue depth / inflight / workers-busy track ServiceCore
//                    state exactly, including under concurrent submits from
//                    core::parallel_for units, and return to zero when the
//                    queue drains and results are collected;
//   * deltas      -- MetricsSnapshot::delta_since is monotone across polls
//                    (cumulative counters never decrease; deltas count
//                    exactly the activity between the two snapshots and
//                    clamp at zero instead of wrapping);
//   * trace ids   -- a trace id stamped into a SUBMIT over a LIVE Unix
//                    socket rides the RESULT frame back and selects the
//                    request's spans in the TRACE fragment; STATS scrapes
//                    over the same socket are monotone around the request;
//   * flight ring -- SIGUSR1 sent to a real catalystd subprocess dumps the
//                    flight recorder as valid JSON naming the request the
//                    daemon just served, and the daemon still exits 0 on
//                    SIGTERM afterwards.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/io.hpp"
#include "core/parallel.hpp"
#include "core/pipeline.hpp"
#include "faults/faults.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "service/service.hpp"

namespace catalyst::service {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;

/// Builds one REAL branch-category archive (once; the pipeline run is the
/// expensive part) so every test can submit analyzable data.
const core::MeasurementArchive& branch_archive() {
  static const core::MeasurementArchive archive = [] {
    const auto setup = category_setup("branch");
    const auto machine = machine_by_name("saphira");
    const auto result = core::run_pipeline(*machine, setup->benchmark,
                                           setup->signatures, setup->options);
    return core::make_archive(*machine, setup->benchmark, result);
  }();
  return archive;
}

ServiceCore::Options sync_core_options(faults::Clock* clock) {
  ServiceCore::Options options;
  options.workers = 0;  // tests drive execution synchronously via run_one()
  options.clock = clock;
  return options;
}

/// Scratch directory for socket / dump files; short path (AF_UNIX caps
/// sun_path at ~108 bytes, so no deep build-tree paths).
fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() /
                       ("catalyst_" + tag + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Pulls `"<name>": N` out of a catalyst-metrics-v1 document.  The producer
/// is our own to_metrics_json, so a targeted scan beats a JSON parser.
std::uint64_t counter_in_json(const std::string& json, std::string_view name) {
  const std::string key = "\"" + std::string(name) + "\": ";
  const auto pos = json.find(key);
  if (pos == std::string::npos) return 0;
  return std::strtoull(json.c_str() + pos + key.size(), nullptr, 10);
}

/// Minimal blocking wire client over the io:: wrappers -- enough protocol
/// to drive a live server from a parallel_for unit.  Throws on any break in
/// the conversation; the test surfaces the message after the join.
class WireClient {
 public:
  explicit WireClient(const std::string& path) : fd_(io::connect_unix(path)) {}
  ~WireClient() {
    if (fd_ >= 0) io::close_fd(fd_);
  }
  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  void send(wire::FrameType type, const std::string& payload) {
    const std::string bytes = wire::encode_frame(type, payload);
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const io::IoResult r =
          io::write_some(fd_, bytes.data() + sent, bytes.size() - sent);
      if (r.kind != io::IoResult::Kind::ok) {
        throw std::runtime_error("client write failed");
      }
      sent += r.bytes;
    }
  }

  wire::Frame recv() {
    for (;;) {
      if (auto frame = decoder_.next()) return *frame;
      char buf[4096];
      const io::IoResult r = io::read_some(fd_, buf, sizeof buf);
      if (r.kind == io::IoResult::Kind::ok) {
        decoder_.feed(buf, r.bytes);
      } else if (r.kind != io::IoResult::Kind::would_block) {
        throw std::runtime_error("connection closed before a frame arrived");
      }
    }
  }

  wire::Frame expect(wire::FrameType type) {
    wire::Frame frame = recv();
    if (frame.type != type) {
      throw std::runtime_error(
          "expected frame type " + std::to_string(static_cast<int>(type)) +
          ", got " + std::to_string(static_cast<int>(frame.type)));
    }
    return frame;
  }

  /// HELLO/HELLO_OK, then SUBMIT -> request id, then poll to the RESULT
  /// frame and return its trailing trace-id echo.
  std::uint64_t submit_and_wait(const wire::SubmitBody& body) {
    send(wire::FrameType::submit, wire::encode_submit(body));
    const wire::Frame reply = expect(wire::FrameType::accepted);
    wire::Get accepted(reply.payload);
    const std::uint64_t request_id = accepted.u64();
    for (;;) {
      std::string p;
      wire::put_u64(p, request_id);
      send(wire::FrameType::poll, p);
      const wire::Frame frame = recv();
      if (frame.type == wire::FrameType::pending) {
        std::this_thread::sleep_for(2ms);
        continue;
      }
      if (frame.type != wire::FrameType::result) {
        throw std::runtime_error("request did not end in a RESULT frame");
      }
      wire::Get cursor(frame.payload);
      if (cursor.u64() != request_id) {
        throw std::runtime_error("RESULT echoed the wrong request id");
      }
      if (cursor.string().empty()) {
        throw std::runtime_error("RESULT carried an empty report");
      }
      const std::uint64_t trace_echo = cursor.u64();
      cursor.expect_done();
      return trace_echo;
    }
  }

  std::string scrape_stats() {
    send(wire::FrameType::stats, "");
    const wire::Frame reply = expect(wire::FrameType::stats_ok);
    wire::Get cursor(reply.payload);
    std::string json = cursor.string();
    cursor.expect_done();
    return json;
  }

 private:
  int fd_ = -1;
  wire::FrameDecoder decoder_;
};

TEST(TelemetryGauges, TrackQueuePressureUnderParallelSubmitsAndDrain) {
  obs::Tracer::instance().enable();
  obs::Metrics::instance().reset();
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));

  constexpr std::size_t kUnits = 4;
  constexpr std::size_t kPerUnit = 2;
  std::vector<std::uint64_t> ids(kUnits * kPerUnit, 0);
  core::parallel_for(kUnits, static_cast<int>(kUnits), [&](std::size_t unit) {
    for (std::size_t i = 0; i < kPerUnit; ++i) {
      const SubmitOutcome out =
          core.submit(static_cast<SessionId>(unit + 1),
                      packed_submit_from_archive(branch_archive(), "branch"));
      if (out.kind == SubmitOutcome::Kind::accepted) {
        ids[unit * kPerUnit + i] = out.request_id;
      }
    }
  });
  for (const std::uint64_t id : ids) ASSERT_NE(id, 0u);

  // All accepted, none started: both pressure gauges read the full load.
  obs::MetricsSnapshot snap = obs::Metrics::instance().snapshot();
  EXPECT_EQ(snap.gauge(obs::names::kServiceQueueDepth),
            static_cast<std::int64_t>(kUnits * kPerUnit));
  EXPECT_EQ(snap.gauge(obs::names::kServiceInflightRequests),
            static_cast<std::int64_t>(kUnits * kPerUnit));
  EXPECT_EQ(snap.gauge(obs::names::kServiceWorkersBusy), 0);

  while (core.run_one()) {
  }

  // Drained but uncollected: the queue is empty, yet every result still
  // pins its entry (and quota slot) until the owning session polls it.
  snap = obs::Metrics::instance().snapshot();
  EXPECT_EQ(snap.gauge(obs::names::kServiceQueueDepth), 0);
  EXPECT_EQ(snap.gauge(obs::names::kServiceWorkersBusy), 0);
  EXPECT_EQ(snap.gauge(obs::names::kServiceInflightRequests),
            static_cast<std::int64_t>(kUnits * kPerUnit));

  for (std::size_t unit = 0; unit < kUnits; ++unit) {
    for (std::size_t i = 0; i < kPerUnit; ++i) {
      EXPECT_EQ(core.poll(static_cast<SessionId>(unit + 1),
                          ids[unit * kPerUnit + i])
                    .kind,
                PollOutcome::Kind::result);
    }
  }
  snap = obs::Metrics::instance().snapshot();
  EXPECT_EQ(snap.gauge(obs::names::kServiceInflightRequests), 0);
}

TEST(TelemetryMetrics, DeltaSnapshotsAreMonotoneAcrossPolls) {
  obs::Tracer::instance().enable();
  obs::Metrics::instance().reset();
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));

  const auto run_request = [&] {
    const SubmitOutcome out =
        core.submit(1, packed_submit_from_archive(branch_archive(), "branch"));
    ASSERT_EQ(out.kind, SubmitOutcome::Kind::accepted);
    ASSERT_TRUE(core.run_one());
    ASSERT_EQ(core.poll(1, out.request_id).kind, PollOutcome::Kind::result);
  };

  const obs::MetricsSnapshot t0 = obs::Metrics::instance().snapshot();
  run_request();
  const obs::MetricsSnapshot t1 = obs::Metrics::instance().snapshot();
  run_request();
  const obs::MetricsSnapshot t2 = obs::Metrics::instance().snapshot();

  // Cumulative counters and histogram counts never decrease between polls.
  EXPECT_GE(t1.counter(obs::names::kServiceRequestsAccepted),
            t0.counter(obs::names::kServiceRequestsAccepted));
  EXPECT_GE(t2.counter(obs::names::kServiceRequestsAccepted),
            t1.counter(obs::names::kServiceRequestsAccepted));
  ASSERT_NE(t2.histogram(obs::names::kServiceRequestNs), nullptr);
  ASSERT_NE(t1.histogram(obs::names::kServiceRequestNs), nullptr);
  EXPECT_GE(t2.histogram(obs::names::kServiceRequestNs)->total_count,
            t1.histogram(obs::names::kServiceRequestNs)->total_count);

  // Deltas count exactly the activity between the snapshots.
  const obs::MetricsSnapshot d1 = t1.delta_since(t0);
  EXPECT_EQ(d1.counter(obs::names::kServiceRequestsAccepted), 1u);
  EXPECT_EQ(d1.counter(obs::names::kServiceAnalysesOk), 1u);
  const obs::HistogramSnapshot* h1 =
      d1.histogram(obs::names::kServiceRequestNs);
  ASSERT_NE(h1, nullptr);
  EXPECT_EQ(h1->total_count, 1u);
  EXPECT_GE(h1->sum, 0.0);

  const obs::MetricsSnapshot d2 = t2.delta_since(t0);
  EXPECT_EQ(d2.counter(obs::names::kServiceRequestsAccepted), 2u);
  ASSERT_NE(d2.histogram(obs::names::kServiceRequestNs), nullptr);
  EXPECT_EQ(d2.histogram(obs::names::kServiceRequestNs)->total_count, 2u);

  // A backwards delta clamps at zero instead of wrapping: a registry reset
  // between polls degrades to "current values", never to garbage rates.
  const obs::MetricsSnapshot backwards = t0.delta_since(t2);
  EXPECT_EQ(backwards.counter(obs::names::kServiceRequestsAccepted), 0u);
}

TEST(TelemetryWire, TraceIdPropagatesAndStatsAreMonotoneOverALiveSocket) {
  obs::Tracer::instance().enable();
  const fs::path dir = scratch_dir("telem");
  const std::string sock = (dir / "telem.sock").string();
  constexpr std::uint64_t kTraceId = 0xC0FFEE42ull;

  faults::RealClock clock;
  ServiceCore::Options core_options;
  core_options.workers = 1;
  core_options.clock = &clock;
  ServiceCore core(core_options);

  Server::Options server_options;
  server_options.socket_path = sock;
  server_options.clock = &clock;
  Server server(core, server_options);

  std::atomic<bool> stop{false};
  std::string failure;        // written by unit 2, read after the join
  std::string fragment;       // the TRACE answer, checked after the join
  std::uint64_t accepted_before = 0;
  std::uint64_t accepted_after = 0;
  std::uint64_t trace_echo = 0;

  // Unit 0 = event loop, unit 1 = analysis worker, unit 2 = client -- the
  // same topology catalystd runs, shrunk to one test.
  core::parallel_for(3, 3, [&](std::size_t unit) {
    if (unit == 0) {
      server.run(stop);
    } else if (unit == 1) {
      core.worker_loop();
    } else {
      try {
        WireClient client(sock);
        client.send(wire::FrameType::hello, "telemetry-test/2");
        client.expect(wire::FrameType::hello_ok);

        const std::string stats_before = client.scrape_stats();
        accepted_before = counter_in_json(
            stats_before, obs::names::kServiceRequestsAccepted);

        trace_echo = client.submit_and_wait(packed_submit_from_archive(
            branch_archive(), "branch", /*deadline_ns=*/0, kTraceId));

        std::string p;
        wire::put_u64(p, kTraceId);
        client.send(wire::FrameType::trace, p);
        const wire::Frame reply = client.expect(wire::FrameType::trace_ok);
        wire::Get cursor(reply.payload);
        if (cursor.u64() != kTraceId) {
          throw std::runtime_error("TRACE_OK echoed the wrong trace id");
        }
        fragment = cursor.string();
        cursor.expect_done();

        const std::string stats_after = client.scrape_stats();
        accepted_after = counter_in_json(
            stats_after, obs::names::kServiceRequestsAccepted);
        if (stats_after.find("\"format\": \"catalyst-metrics-v1\"") ==
            std::string::npos) {
          throw std::runtime_error("STATS payload is not catalyst-metrics-v1");
        }
      } catch (const std::exception& e) {
        failure = e.what();
      }
      stop.store(true, std::memory_order_relaxed);
      io::notify_pipe(server.wake_fd());
    }
  });

  ASSERT_TRUE(failure.empty()) << failure;
  EXPECT_EQ(trace_echo, kTraceId) << "RESULT must echo the SUBMIT's trace id";
  // The fragment is the request's own spans: at least service.request,
  // stamped with the trace id on its way through the queue.
  EXPECT_NE(fragment.find("traceEvents"), std::string::npos);
  EXPECT_NE(fragment.find("service.request"), std::string::npos);
  // Two scrapes around one request: monotone, and the request is counted.
  EXPECT_GE(accepted_after, accepted_before + 1);
  fs::remove_all(dir);
}

#ifdef CATALYST_CATALYSTD_BIN
TEST(TelemetryFlight, Sigusr1DumpsTheFlightRecorderInASubprocess) {
  const fs::path dir = scratch_dir("flight");
  const std::string sock = (dir / "d.sock").string();
  const std::string dump = (dir / "flight.json").string();
  constexpr std::uint64_t kTraceId = 77;

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    ::execl(CATALYST_CATALYSTD_BIN, "catalystd", "--socket", sock.c_str(),
            "--flight-dump", dump.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed; the parent sees it as "never bound"
  }

  const auto reap = [pid](int sig) {
    ::kill(pid, sig);
    int status = 0;
    ::waitpid(pid, &status, 0);
    return status;
  };

  bool bound = false;
  for (int i = 0; i < 100 && !bound; ++i) {
    bound = fs::exists(sock);
    if (!bound) std::this_thread::sleep_for(50ms);
  }
  if (!bound) {
    reap(SIGKILL);
    FAIL() << "catalystd never bound " << sock;
  }

  // Serve one traced request so the ring has something to remember.
  try {
    WireClient client(sock);
    client.send(wire::FrameType::hello, "flight-test/2");
    client.expect(wire::FrameType::hello_ok);
    const std::uint64_t echo = client.submit_and_wait(
        packed_submit_from_archive(branch_archive(), "branch", 0, kTraceId));
    EXPECT_EQ(echo, kTraceId);
  } catch (const std::exception& e) {
    reap(SIGKILL);
    FAIL() << "client conversation failed: " << e.what();
  }

  ASSERT_EQ(::kill(pid, SIGUSR1), 0);
  bool dumped = false;
  for (int i = 0; i < 100 && !dumped; ++i) {
    // write_text_file_atomic renames into place: existing == complete.
    dumped = fs::exists(dump);
    if (!dumped) std::this_thread::sleep_for(50ms);
  }
  if (!dumped) {
    reap(SIGKILL);
    FAIL() << "SIGUSR1 produced no flight dump at " << dump;
  }
  const std::string json = core::read_text_file(dump);
  EXPECT_NE(json.find(obs::kFlightRecorderFormat), std::string::npos);
  EXPECT_NE(json.find("\"records\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\": 77"), std::string::npos);
  EXPECT_NE(json.find("\"verdict\": \"ok\""), std::string::npos);

  // The dump must not have destabilized the daemon: clean SIGTERM drain.
  const int status = reap(SIGTERM);
  EXPECT_TRUE(WIFEXITED(status)) << "daemon did not exit normally";
  EXPECT_EQ(WEXITSTATUS(status), 0);
  fs::remove_all(dir);
}
#endif  // CATALYST_CATALYSTD_BIN

}  // namespace
}  // namespace catalyst::service
