// Tests for expectation-basis diagnostics, including the verdicts on the
// four shipped benchmark bases and on deliberately broken ones.
#include "core/basis_diagnostics.hpp"

#include <gtest/gtest.h>

#include "cat/cat.hpp"

namespace catalyst::core {
namespace {

TEST(BasisDiagnostics, AllShippedBasesAreWellPosed) {
  cat::DcacheOptions dopt;
  dopt.threads = 1;
  dopt.hierarchy = cachesim::HierarchyConfig::tiny();
  dopt.strides = {32};
  const cat::Benchmark benches[] = {
      cat::cpu_flops_benchmark(), cat::gpu_flops_benchmark(),
      cat::branch_benchmark(), cat::dcache_benchmark(dopt),
      cat::icache_benchmark()};
  for (const auto& bench : benches) {
    const auto d = diagnose_basis(bench.basis);
    EXPECT_TRUE(d.full_rank) << bench.name;
    EXPECT_LT(d.condition_number, 100.0) << bench.name;
    EXPECT_LT(d.mutual_coherence, 0.999) << bench.name;
    EXPECT_EQ(basis_verdict(d).rfind("well-posed", 0), 0u)
        << bench.name << ": " << basis_verdict(d);
  }
}

TEST(BasisDiagnostics, OrthogonalBasisHasZeroCoherence) {
  cat::ExpectationBasis basis;
  basis.labels = {"X", "Y"};
  basis.e = linalg::Matrix{{1, 0}, {0, 1}, {0, 0}};
  const auto d = diagnose_basis(basis);
  EXPECT_TRUE(d.full_rank);
  EXPECT_DOUBLE_EQ(d.mutual_coherence, 0.0);
  EXPECT_DOUBLE_EQ(d.condition_number, 1.0);
}

TEST(BasisDiagnostics, DetectsRankDeficiency) {
  cat::ExpectationBasis basis;
  basis.labels = {"A", "B", "A+B"};
  basis.e = linalg::Matrix{{1, 0, 1}, {0, 1, 1}, {2, 0, 2}};
  const auto d = diagnose_basis(basis);
  EXPECT_FALSE(d.full_rank);
  EXPECT_EQ(d.rank, 2);
  EXPECT_EQ(basis_verdict(d).rfind("RANK-DEFICIENT", 0), 0u);
}

TEST(BasisDiagnostics, DetectsNearCollinearPair) {
  cat::ExpectationBasis basis;
  basis.labels = {"P", "Q"};
  // Q = P + tiny perturbation: numerically rank 2 but coherence ~1.
  basis.e = linalg::Matrix{{1, 1.0001}, {1, 1.0}, {1, 0.9999}};
  const auto d = diagnose_basis(basis);
  EXPECT_TRUE(d.full_rank);
  EXPECT_GT(d.mutual_coherence, 0.9999);
  EXPECT_EQ(d.coherent_pair_a, "P");
  EXPECT_EQ(d.coherent_pair_b, "Q");
  const auto verdict = basis_verdict(d);
  EXPECT_EQ(verdict.rfind("NEAR-COLLINEAR", 0), 0u) << verdict;
}

TEST(BasisDiagnostics, DetectsIllConditioning) {
  cat::ExpectationBasis basis;
  basis.labels = {"big", "small"};
  basis.e = linalg::Matrix{{1e8, 0}, {0, 1e-4}};
  const auto d = diagnose_basis(basis);
  EXPECT_GT(d.condition_number, 1e10);
  EXPECT_EQ(basis_verdict(d).rfind("ILL-CONDITIONED", 0), 0u);
}

TEST(BasisDiagnostics, EmptyBasis) {
  cat::ExpectationBasis basis;
  const auto d = diagnose_basis(basis);
  EXPECT_EQ(d.rank, 0);
  EXPECT_FALSE(d.full_rank);
}

}  // namespace
}  // namespace catalyst::core
