// The resilient driver's contracts: bit-identity on the clean path, exact
// recovery under the canonical fault plan, quarantine of unrecoverable
// events, thread-count invariance, backoff pacing through the injectable
// clock, and the torn-row regression in the non-resilient driver.
#include "vpapi/collector.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace catalyst::vpapi {
namespace {

pmu::Machine fault_machine() {
  // 2 counters x 6 events -> 3 groups per repetition: group scheduling,
  // retry, and quarantine all get exercised.
  pmu::Machine m("faulty-tiny", 2, 7);
  m.add_event({"A", "x", {{"x", 1.0}}, {}});
  m.add_event({"B", "2x", {{"x", 2.0}}, {}});
  m.add_event({"C", "y", {{"y", 1.0}}, {}});
  m.add_event({"D", "x+y", {{"x", 1.0}, {"y", 1.0}}, {}});
  m.add_event({"N", "noisy x", {{"x", 1.0}, {"y", 0.5}},
               pmu::NoiseModel::relative(0.05)});
  m.add_event({"Z", "dead", {}, {}});
  return m;
}

const std::vector<std::string> kEvents = {"A", "B", "C", "D", "N", "Z"};
const std::vector<pmu::Activity> kActs{{{"x", 1e6}, {"y", 3e5}},
                                       {{"x", 5e5}},
                                       {{"y", 9e5}}};

faults::FaultPlan mid_plan() { return faults::FaultPlan::mid_rate(); }

void expect_identical_values(const CollectionResult& a,
                             const CollectionResult& b) {
  ASSERT_EQ(a.event_names, b.event_names);
  ASSERT_EQ(a.repetitions.size(), b.repetitions.size());
  for (std::size_t r = 0; r < a.repetitions.size(); ++r) {
    ASSERT_EQ(a.repetitions[r].values.size(), b.repetitions[r].values.size());
    for (std::size_t e = 0; e < a.repetitions[r].values.size(); ++e) {
      ASSERT_EQ(a.repetitions[r].values[e], b.repetitions[r].values[e])
          << "rep " << r << " event " << a.event_names[e];
    }
  }
}

TEST(CollectResilient, CleanPathBitIdenticalToCollect) {
  const auto m = fault_machine();
  const auto plain = collect(m, kEvents, kActs, 3);
  const auto resilient =
      collect_resilient(m, kEvents, kActs, 3, /*plan=*/nullptr);
  expect_identical_values(plain, resilient.data);
  EXPECT_EQ(resilient.report.total_retries, 0u);
  EXPECT_EQ(resilient.report.quarantined.size(), 0u);
  for (const auto& e : resilient.report.events) {
    EXPECT_EQ(e.disposition, EventDisposition::clean);
  }
}

TEST(CollectResilient, DisabledPlanAlsoBitIdentical) {
  const auto m = fault_machine();
  const faults::FaultPlan off;  // all rates zero
  const auto plain = collect(m, kEvents, kActs, 2);
  const auto resilient = collect_resilient(m, kEvents, kActs, 2, &off);
  expect_identical_values(plain, resilient.data);
}

TEST(CollectResilient, MidRateFaultsRecoverExactValues) {
  // The tentpole claim at the collector level: retries re-draw the fault
  // coordinate while the underlying reading is a pure function of
  // (event, run, kernel) -- so recovery reproduces the CLEAN data exactly,
  // not approximately.
  const auto m = fault_machine();
  const auto clean = collect(m, kEvents, kActs, 3);
  const auto plan = mid_plan();
  const auto resilient = collect_resilient(m, kEvents, kActs, 3, &plan);
  ASSERT_TRUE(resilient.report.quarantined.empty())
      << "mid-rate faults must never exhaust 8 retries";
  expect_identical_values(clean, resilient.data);
}

TEST(CollectResilient, UnrecoverableEventIsQuarantined) {
  const auto m = fault_machine();
  faults::FaultPlan plan;
  plan.seed = 9;
  faults::FaultRates cursed;
  cursed.dropped_reading = 1.0;  // every read attempt fails, forever
  plan.per_event["C"] = cursed;

  const auto clean = collect(m, kEvents, kActs, 2);
  ResilienceOptions options;
  options.max_retries = 3;
  const auto resilient = collect_resilient(m, kEvents, kActs, 2, &plan,
                                           options);

  ASSERT_EQ(resilient.report.quarantined,
            std::vector<std::string>({"C"}));
  const auto* c = resilient.report.find("C");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->disposition, EventDisposition::quarantined);
  EXPECT_GT(c->faults[static_cast<std::size_t>(
                faults::FaultKind::dropped_reading)],
            0u);

  // The survivors' rows are bit-identical to the clean run's.
  ASSERT_EQ(resilient.data.event_names,
            std::vector<std::string>({"A", "B", "D", "N", "Z"}));
  for (std::size_t r = 0; r < 2; ++r) {
    std::size_t clean_e = 0;
    for (std::size_t e = 0; e < kEvents.size(); ++e) {
      if (kEvents[e] == "C") continue;
      EXPECT_EQ(resilient.data.repetitions[r].values[clean_e],
                clean.repetitions[r].values[e])
          << kEvents[e];
      ++clean_e;
    }
  }
}

TEST(CollectResilient, ThreadCountInvariance) {
  // Fixed plan seed: 1 worker vs 4 workers must give bit-identical data
  // AND identical per-event fault tallies (merge is additive/set-union).
  const auto m = fault_machine();
  faults::FaultPlan plan = mid_plan();
  plan.rates.dropped_reading = 0.2;  // plenty of retries to merge
  plan.rates.wrap = 0.05;

  ResilienceOptions serial;
  serial.threads = 1;
  ResilienceOptions parallel;
  parallel.threads = 4;
  const auto a = collect_resilient(m, kEvents, kActs, 4, &plan, serial);
  const auto b = collect_resilient(m, kEvents, kActs, 4, &plan, parallel);

  expect_identical_values(a.data, b.data);
  EXPECT_EQ(a.report.total_retries, b.report.total_retries);
  EXPECT_EQ(a.report.start_retries, b.report.start_retries);
  EXPECT_EQ(a.report.quarantined, b.report.quarantined);
  ASSERT_EQ(a.report.events.size(), b.report.events.size());
  for (std::size_t e = 0; e < a.report.events.size(); ++e) {
    EXPECT_EQ(a.report.events[e].name, b.report.events[e].name);
    EXPECT_EQ(a.report.events[e].faults, b.report.events[e].faults);
    EXPECT_EQ(a.report.events[e].retries, b.report.events[e].retries);
    EXPECT_EQ(a.report.events[e].wraps_corrected,
              b.report.events[e].wraps_corrected);
    EXPECT_EQ(a.report.events[e].disposition, b.report.events[e].disposition);
  }
}

TEST(CollectResilient, BackoffGoesThroughTheInjectableClock) {
  const auto m = fault_machine();
  faults::FaultPlan plan;
  plan.seed = 3;
  plan.rates.dropped_reading = 0.3;

  faults::FakeClock clock;
  ResilienceOptions options;
  options.clock = &clock;
  const auto result = collect_resilient(m, kEvents, kActs, 3, &plan, options);
  EXPECT_GT(result.report.total_retries, 0u);
  // Every retry paid a backoff delay through the clock; no wall time was
  // spent (this test completes instantly).
  EXPECT_FALSE(clock.delays().empty());
  for (const auto d : clock.delays()) {
    EXPECT_GE(d, options.backoff.base);
    EXPECT_LE(d, options.backoff.cap);
  }
}

TEST(CollectResilient, StressManyWorkersManyFaults) {
  // Aggressive rates + 8 workers; run under CATALYST_TSAN to prove the
  // retry/quarantine machinery is race-free.  Results must still match the
  // serial run bit for bit.
  const auto m = fault_machine();
  faults::FaultPlan plan = mid_plan();
  plan.rates.dropped_reading = 0.3;
  plan.rates.stuck = 0.1;
  plan.rates.wrap = 0.05;
  plan.rates.spike = 0.05;
  plan.rates.start_busy = 0.1;

  ResilienceOptions serial;
  serial.threads = 1;
  ResilienceOptions stress;
  stress.threads = 8;
  const auto a = collect_resilient(m, kEvents, kActs, 6, &plan, serial);
  const auto b = collect_resilient(m, kEvents, kActs, 6, &plan, stress);
  expect_identical_values(a.data, b.data);
  EXPECT_EQ(a.report.quarantined, b.report.quarantined);
  EXPECT_EQ(a.report.total_retries, b.report.total_retries);
}

TEST(Collect, NonResilientDriverFailsLoudlyOnFaults) {
  // Regression: an unchecked transient read used to leave the PREVIOUS
  // kernel's readings in the output row -- silently torn data.  The
  // non-resilient driver must now throw instead.
  const auto m = fault_machine();
  faults::FaultPlan plan;
  plan.seed = 5;
  faults::FaultRates cursed;
  cursed.dropped_reading = 1.0;
  plan.per_event["A"] = cursed;
  EXPECT_THROW(collect(m, kEvents, kActs, 2, 1, &plan), std::runtime_error);
  // Multi-threaded: worker exceptions surface on the caller, partial
  // output is discarded (no torn rows escape).
  EXPECT_THROW(collect(m, kEvents, kActs, 2, 4, &plan), std::runtime_error);
}

TEST(CollectResilient, RepetitionOffsetMatchesUninterruptedRun) {
  // The checkpointing contract: collecting repetitions [0, 4) in one call
  // equals collecting them one at a time with the matching offset.
  const auto m = fault_machine();
  const auto plan = mid_plan();
  const auto whole = collect_resilient(m, kEvents, kActs, 4, &plan);
  for (std::size_t r = 0; r < 4; ++r) {
    const auto one =
        collect_resilient(m, kEvents, kActs, 1, &plan, {}, /*offset=*/r);
    ASSERT_EQ(one.data.repetitions.size(), 1u);
    ASSERT_EQ(one.data.event_names, whole.data.event_names);
    EXPECT_EQ(one.data.repetitions[0].values,
              whole.data.repetitions[r].values)
        << "repetition " << r;
  }
}

}  // namespace
}  // namespace catalyst::vpapi
