// Unit tests for catalyst::obs: the seqlock ring buffer, Span recording
// under an injected FakeClock, the metrics registry and its power-of-two
// histogram geometry, and both exporters (validated by round-tripping the
// emitted JSON through core/json's strict parser).
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/json.hpp"
#include "faults/faults.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace catalyst::obs {
namespace {

SpanRecord make_rec(const char* name, std::int64_t start_ns,
                    std::int64_t end_ns, std::uint32_t tid = 1) {
  SpanRecord rec{};
  std::snprintf(rec.name, sizeof rec.name, "%s", name);
  rec.args[0] = '\0';
  rec.start_ns = start_ns;
  rec.end_ns = end_ns;
  rec.thread_id = tid;
  return rec;
}

/// Every test starts and ends with a quiet, clock-restored global tracer so
/// process-wide state never leaks between tests.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset_world(); }
  void TearDown() override { reset_world(); }

  static void reset_world() {
    Tracer::instance().enable(false);
    Tracer::instance().set_clock(nullptr);
    Tracer::instance().reset();
    Metrics::instance().reset();
  }
};

TEST_F(ObsTest, TraceBufferRoundTripsRecordsInOrder) {
  TraceBuffer buf(8);
  buf.publish(make_rec("a", 0, 10));
  buf.publish(make_rec("b", 10, 20));
  buf.publish(make_rec("c", 20, 30));
  const auto spans = buf.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_STREQ(spans[0].name, "a");
  EXPECT_STREQ(spans[1].name, "b");
  EXPECT_STREQ(spans[2].name, "c");
  EXPECT_EQ(spans[2].end_ns, 30);
  EXPECT_EQ(buf.published(), 3u);
  EXPECT_EQ(buf.dropped(), 0u);
}

TEST_F(ObsTest, TraceBufferWrapKeepsNewestAndCountsDropped) {
  TraceBuffer buf(4);
  for (int i = 0; i < 10; ++i) {
    const std::string name = "s" + std::to_string(i);
    buf.publish(make_rec(name.c_str(), i, i + 1));
  }
  EXPECT_EQ(buf.published(), 10u);
  EXPECT_EQ(buf.dropped(), 6u);
  const auto spans = buf.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the survivors: s6..s9.
  EXPECT_STREQ(spans[0].name, "s6");
  EXPECT_STREQ(spans[3].name, "s9");
}

TEST_F(ObsTest, TraceBufferConcurrentPublishLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  TraceBuffer buf(1024);  // capacity > total: nothing may be dropped
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&buf, t] {
      const std::string name = "thread" + std::to_string(t);
      for (int i = 0; i < kPerThread; ++i) {
        buf.publish(make_rec(name.c_str(), i, i + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(buf.published(), kThreads * kPerThread);
  EXPECT_EQ(buf.dropped(), 0u);
  const auto spans = buf.snapshot();
  ASSERT_EQ(spans.size(), static_cast<std::size_t>(kThreads * kPerThread));
  // Every record must be intact (a valid thread name, consistent interval) --
  // a torn copy would show a mangled name or end < start.
  for (const auto& rec : spans) {
    EXPECT_EQ(std::string(rec.name).rfind("thread", 0), 0u) << rec.name;
    EXPECT_EQ(rec.end_ns, rec.start_ns + 1);
  }
}

TEST_F(ObsTest, ThisThreadIdIsStablePerThreadAndUniqueAcross) {
  const std::uint32_t mine = this_thread_id();
  EXPECT_EQ(this_thread_id(), mine);
  std::uint32_t other = 0;
  std::thread([&other] { other = this_thread_id(); }).join();
  EXPECT_NE(other, mine);
  EXPECT_NE(other, 0u);
}

#if !defined(CATALYST_OBS_DISABLED)

TEST_F(ObsTest, SpanUnderFakeClockIsDeterministic) {
  faults::FakeClock clock;  // virtual time: each now() reads then +1us
  Tracer::instance().set_clock(&clock);
  Tracer::instance().enable(true);
  {
    Span span("unit.test");
    span.arg("k", 42);
  }
  const auto spans = Tracer::instance().buffer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "unit.test");
  EXPECT_STREQ(spans[0].args, "k=42;");
  EXPECT_EQ(spans[0].start_ns, 0);
  EXPECT_EQ(spans[0].end_ns, 1000);  // exactly one virtual microsecond later
  EXPECT_NE(spans[0].thread_id, 0u);
}

TEST_F(ObsTest, SpanDurationIsReusableAfterEnd) {
  faults::FakeClock clock;
  Tracer::instance().set_clock(&clock);
  Tracer::instance().enable(true);
  Span span("timed");
  EXPECT_EQ(span.duration_ns(), 0);  // not ended yet
  clock.sleep_for(std::chrono::microseconds(5));
  span.end();
  EXPECT_EQ(span.duration_ns(), 6000);  // 5us slept + 1us now() tick
  span.end();                           // idempotent
  EXPECT_EQ(Tracer::instance().buffer().published(), 1u);
}

TEST_F(ObsTest, SpanIsInertWhenDisabledOrUnnamed) {
  Tracer::instance().enable(false);
  {
    Span span("ignored");
    EXPECT_FALSE(span.active());
    span.arg("k", 1);
  }
  Tracer::instance().enable(true);
  {
    Span span(nullptr);  // the "no span on the happy path" idiom
    EXPECT_FALSE(span.active());
  }
  EXPECT_EQ(Tracer::instance().buffer().published(), 0u);
}

TEST_F(ObsTest, SpanArgsFormatAndSanitizeEveryType) {
  faults::FakeClock clock;
  Tracer::instance().set_clock(&clock);
  Tracer::instance().enable(true);
  {
    Span span("args");
    span.arg("flag", true);
    span.arg("x", 0.5);
    span.arg("n", std::uint64_t{7});
    span.arg("s", std::string("a;b=c"));  // separators must be neutralized
  }
  const auto spans = Tracer::instance().buffer().snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].args, "flag=true;x=0.5;n=7;s=a_b_c;");
}

TEST_F(ObsTest, CountAndObserveAreGatedOnEnabled) {
  count("gated", 5);  // disabled: must not register
  EXPECT_EQ(Metrics::instance().snapshot().counter("gated"), 0u);
  Tracer::instance().enable(true);
  count("gated", 5);
  observe("lat", 3.0);
  const auto snap = Metrics::instance().snapshot();
  EXPECT_EQ(snap.counter("gated"), 5u);
  ASSERT_NE(snap.histogram("lat"), nullptr);
  EXPECT_EQ(snap.histogram("lat")->total_count, 1u);
}

#endif  // !CATALYST_OBS_DISABLED

TEST_F(ObsTest, HistogramBucketGeometry) {
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(-3.5), 0u);
  EXPECT_EQ(histogram_upper_bound(0), 0.0);
  // Buckets are monotone in the value and the bound round-trips: the upper
  // bound of bucket i lands in bucket i (bounds are inclusive).
  std::size_t prev = 0;
  for (double v = 1e-7; v < 1e13; v *= 3.7) {
    const std::size_t b = histogram_bucket(v);
    EXPECT_GE(b, prev);
    EXPECT_LT(b, kNumBuckets);
    prev = b;
  }
  for (std::size_t i = 1; i + 1 < kNumBuckets; ++i) {
    EXPECT_EQ(histogram_bucket(histogram_upper_bound(i)), i) << i;
  }
  EXPECT_TRUE(std::isinf(histogram_upper_bound(kNumBuckets - 1)));
  EXPECT_EQ(histogram_bucket(1e300), kNumBuckets - 1);
}

TEST_F(ObsTest, MetricsRegistryAggregatesAndSorts) {
  Metrics& m = Metrics::instance();
  m.add("zeta", 1);
  m.add("alpha", 2);
  m.add("alpha", 3);
  m.observe("h", 2.0);
  m.observe("h", 8.0);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");  // deterministic export order
  EXPECT_EQ(snap.counter("alpha"), 5u);
  EXPECT_EQ(snap.counter("absent"), 0u);
  const HistogramSnapshot* h = snap.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->total_count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 10.0);
  EXPECT_DOUBLE_EQ(h->min, 2.0);
  EXPECT_DOUBLE_EQ(h->max, 8.0);
  m.reset();
  EXPECT_TRUE(m.snapshot().counters.empty());
}

TEST_F(ObsTest, JsonEscapeHandlesQuotesBackslashAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST_F(ObsTest, ConfigHashIsStableHex) {
  const std::string h = config_hash("branch|machine=saphira-cpu|tau=1e-10");
  EXPECT_EQ(h.size(), 16u);
  for (const char c : h) {
    EXPECT_TRUE(std::isxdigit(static_cast<unsigned char>(c)) &&
                !std::isupper(static_cast<unsigned char>(c)))
        << c;
  }
  EXPECT_EQ(config_hash("branch|machine=saphira-cpu|tau=1e-10"), h);
  EXPECT_NE(config_hash("branch|machine=saphira-cpu|tau=1e-9"), h);
}

TEST_F(ObsTest, AggregateStageTimingsSumsAndOrdersByFirstStart) {
  const std::vector<SpanRecord> spans = {
      make_rec("stage.qrcp", 200, 300),
      make_rec("stage.collect", 0, 100),
      make_rec("other.span", 50, 60),     // not a stage: ignored
      make_rec("stage.collect", 400, 500),
  };
  const auto stages = aggregate_stage_timings(spans);
  ASSERT_EQ(stages.size(), 2u);
  EXPECT_EQ(stages[0].name, "collect");  // first start 0 beats qrcp's 200
  EXPECT_EQ(stages[0].wall_ns, 200);     // both collect spans summed
  EXPECT_EQ(stages[1].name, "qrcp");
  EXPECT_EQ(stages[1].wall_ns, 100);
}

TEST_F(ObsTest, ChromeTraceExportIsStrictJsonWithNormalizedTimes) {
  Metrics::instance().add("collect.retries", 3);
  const std::vector<SpanRecord> spans = {
      make_rec("stage.collect", 5000, 9000, 1),
      make_rec("stage.qrcp", 11000, 12000, 2),
  };
  const auto text = to_chrome_trace(spans, Metrics::instance().snapshot());
  const auto doc = core::json::parse(text);  // throws on any malformation
  const auto& events = doc.at("traceEvents");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events.at(std::size_t{0}).at("ph").as_string(), "X");
  EXPECT_EQ(events.at(std::size_t{0}).at("name").as_string(), "stage.collect");
  // Timestamps are microseconds normalized to the earliest span.
  EXPECT_DOUBLE_EQ(events.at(std::size_t{0}).at("ts").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(events.at(std::size_t{0}).at("dur").as_number(), 4.0);
  EXPECT_DOUBLE_EQ(events.at(std::size_t{1}).at("ts").as_number(), 6.0);
  EXPECT_DOUBLE_EQ(
      doc.at("otherData").at("counters").at("collect.retries").as_number(),
      3.0);
}

TEST_F(ObsTest, RunManifestExportIsStrictJson) {
  RunManifest m;
  m.tool = "catalyst analyze";
  m.category = "branch";
  m.machine = "saphira-cpu";
  m.git_sha = "deadbeef";
  m.config = "branch|machine=saphira-cpu";
  m.config_hash = config_hash(m.config);
  m.tau = 1e-10;
  m.alpha = 0.5;
  m.repetitions = 10;
  m.stages = {{"collect", 1000}, {"qrcp", 500}};
  m.funnel = {{"measured", 100}, {"noise_kept", 20}, {"selected", 4}};
  m.spans_published = 42;
  const auto doc = core::json::parse(to_run_manifest(m));
  EXPECT_EQ(doc.at("format").as_string(), kRunManifestFormat);
  EXPECT_EQ(doc.at("git_sha").as_string(), "deadbeef");
  EXPECT_DOUBLE_EQ(doc.at("tau").as_number(), 1e-10);
  ASSERT_EQ(doc.at("stages").size(), 2u);
  EXPECT_EQ(doc.at("stages").at(std::size_t{0}).at("name").as_string(),
            "collect");
  EXPECT_DOUBLE_EQ(doc.at("funnel").at("measured").as_number(), 100.0);
  EXPECT_DOUBLE_EQ(doc.at("spans_published").as_number(), 42.0);
}

TEST_F(ObsTest, FormatStatsMentionsEveryIngredient) {
  Metrics::instance().add("collect.retries", 7);
  Metrics::instance().observe("qrcp.pivot_score", 1.5);
  const std::vector<StageTiming> stages = {{"collect", 2'000'000}};
  const auto text =
      format_stats(Metrics::instance().snapshot(), stages, 10, 1);
  EXPECT_NE(text.find("collect"), std::string::npos);
  EXPECT_NE(text.find("collect.retries"), std::string::npos);
  EXPECT_NE(text.find("qrcp.pivot_score"), std::string::npos);
  EXPECT_NE(text.find("10"), std::string::npos);  // spans published
}

}  // namespace
}  // namespace catalyst::obs
