// Unit + property tests for the cache hierarchy simulator.
#include "cachesim/cachesim.hpp"

#include <gtest/gtest.h>

#include <set>

namespace catalyst::cachesim {
namespace {

LevelConfig small_level(std::uint64_t size, std::uint32_t line,
                        std::uint32_t assoc) {
  return LevelConfig{"T", size, line, assoc};
}

TEST(Config, ValidGeometryPasses) {
  EXPECT_NO_THROW(small_level(1024, 64, 4).validate());
  EXPECT_NO_THROW(HierarchyConfig::saphira().validate());
  EXPECT_NO_THROW(HierarchyConfig::tiny().validate());
}

TEST(Config, RejectsZeroFields) {
  EXPECT_THROW(small_level(0, 64, 4).validate(), ConfigError);
  EXPECT_THROW(small_level(1024, 0, 4).validate(), ConfigError);
  EXPECT_THROW(small_level(1024, 64, 0).validate(), ConfigError);
}

TEST(Config, RejectsNonPow2Line) {
  EXPECT_THROW(small_level(960, 48, 4).validate(), ConfigError);
}

TEST(Config, RejectsNonPow2Sets) {
  // 768 B / (64 B * 4) = 3 sets.
  EXPECT_THROW(small_level(768, 64, 4).validate(), ConfigError);
}

TEST(Config, RejectsShrinkingHierarchy) {
  HierarchyConfig h;
  h.levels = {small_level(1024, 64, 4), small_level(512, 64, 4)};
  EXPECT_THROW(h.validate(), ConfigError);
}

TEST(Config, RejectsMixedLineSizes) {
  HierarchyConfig h;
  h.levels = {small_level(1024, 64, 4),
              LevelConfig{"L2", 4096, 32, 4}};
  EXPECT_THROW(h.validate(), ConfigError);
}

TEST(Config, RejectsEmptyHierarchy) {
  HierarchyConfig h;
  EXPECT_THROW(h.validate(), ConfigError);
}

TEST(CacheLevelTest, HitAfterMiss) {
  CacheLevel c(small_level(256, 32, 2));
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(31));  // same line
  EXPECT_FALSE(c.access(32)); // next line
  EXPECT_EQ(c.stats().demand_hits, 2u);
  EXPECT_EQ(c.stats().demand_misses, 2u);
}

TEST(CacheLevelTest, LruEvictionOrder) {
  // 2-way, 32 B lines, 256 B => 4 sets.  Lines 0, 4, 8 map to set 0
  // (line index & 3).  Accessing 0, 4 fills the set; accessing 8 evicts the
  // LRU (line 0).
  CacheLevel c(small_level(256, 32, 2));
  const std::uint64_t a0 = 0 * 32, a4 = 4 * 32, a8 = 8 * 32;
  c.access(a0);
  c.access(a4);
  c.access(a8);
  EXPECT_FALSE(c.contains(a0));
  EXPECT_TRUE(c.contains(a4));
  EXPECT_TRUE(c.contains(a8));
}

TEST(CacheLevelTest, LruUpdatedOnHit) {
  CacheLevel c(small_level(256, 32, 2));
  const std::uint64_t a0 = 0 * 32, a4 = 4 * 32, a8 = 8 * 32;
  c.access(a0);
  c.access(a4);
  c.access(a0);  // refresh a0: now a4 is LRU
  c.access(a8);  // evicts a4
  EXPECT_TRUE(c.contains(a0));
  EXPECT_FALSE(c.contains(a4));
  EXPECT_TRUE(c.contains(a8));
}

TEST(CacheLevelTest, ContainsDoesNotPerturb) {
  CacheLevel c(small_level(256, 32, 2));
  c.access(0);
  const auto hits = c.stats().demand_hits;
  const auto misses = c.stats().demand_misses;
  (void)c.contains(0);
  (void)c.contains(4096);
  EXPECT_EQ(c.stats().demand_hits, hits);
  EXPECT_EQ(c.stats().demand_misses, misses);
}

TEST(CacheLevelTest, InstallDoesNotCountDemand) {
  CacheLevel c(small_level(256, 32, 2));
  c.install(0);
  EXPECT_EQ(c.stats().accesses(), 0u);
  EXPECT_TRUE(c.contains(0));
  EXPECT_TRUE(c.access(0));  // now a demand hit
}

TEST(CacheLevelTest, ResetClearsContentsAndStats) {
  CacheLevel c(small_level(256, 32, 2));
  c.access(0);
  c.reset();
  EXPECT_FALSE(c.contains(0));
  EXPECT_EQ(c.stats().accesses(), 0u);
}

TEST(CacheLevelTest, WorkingSetWithinCapacityAllHitsSteadyState) {
  // 8 lines capacity; touch 8 distinct lines twice: second pass all hits.
  CacheLevel c(small_level(256, 32, 2));
  for (std::uint64_t i = 0; i < 8; ++i) c.access(i * 32);
  for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(c.access(i * 32));
}

TEST(Hierarchy, MissesPropagateToOuterLevels) {
  CacheHierarchy h(HierarchyConfig::tiny());
  auto lvl = h.access(0);
  EXPECT_FALSE(lvl.has_value());  // cold miss goes to memory
  EXPECT_EQ(h.memory_accesses(), 1u);
  lvl = h.access(0);
  ASSERT_TRUE(lvl.has_value());
  EXPECT_EQ(*lvl, 0u);  // L1 hit
}

TEST(Hierarchy, L2HitAfterL1Eviction) {
  // tiny(): L1 = 8 lines, L2 = 32 lines, line = 32 B.
  CacheHierarchy h(HierarchyConfig::tiny());
  // Touch 16 distinct lines: fits L2, overflows L1.
  for (std::uint64_t i = 0; i < 16; ++i) h.access(i * 32);
  // Second pass: L1 can hold at most 8 of the 16, so there must be L2 hits
  // and no memory accesses.
  const std::uint64_t mem_before = h.memory_accesses();
  std::uint64_t l2_hits = 0;
  for (std::uint64_t i = 0; i < 16; ++i) {
    auto lvl = h.access(i * 32);
    ASSERT_TRUE(lvl.has_value());
    if (*lvl == 1) ++l2_hits;
  }
  EXPECT_GT(l2_hits, 0u);
  EXPECT_EQ(h.memory_accesses(), mem_before);
}

TEST(Hierarchy, StatsAreFiltered) {
  // L2 only sees L1 misses: total L2 accesses == L1 misses.
  CacheHierarchy h(HierarchyConfig::tiny());
  for (std::uint64_t i = 0; i < 64; ++i) h.access((i % 24) * 32);
  EXPECT_EQ(h.level(1).stats().accesses(), h.level(0).stats().demand_misses);
  EXPECT_EQ(h.level(2).stats().accesses(), h.level(1).stats().demand_misses);
  EXPECT_EQ(h.memory_accesses(), h.level(2).stats().demand_misses);
}

TEST(Chain, BuildChainIsSingleCycleCoveringAllElements) {
  ChaseConfig cfg;
  cfg.num_pointers = 97;
  cfg.stride_bytes = 64;
  cfg.seed = 5;
  auto chain = build_chain(cfg);
  ASSERT_EQ(chain.size(), 97u);
  std::set<std::uint64_t> uniq(chain.begin(), chain.end());
  EXPECT_EQ(uniq.size(), 97u);
  for (std::uint64_t a : chain) {
    EXPECT_EQ(a % 64, 0u);
    EXPECT_LT(a, 97u * 64u);
  }
}

TEST(Chain, DeterministicForSameSeed) {
  ChaseConfig cfg;
  cfg.num_pointers = 64;
  cfg.seed = 42;
  EXPECT_EQ(build_chain(cfg), build_chain(cfg));
  cfg.seed = 43;
  auto other = build_chain(cfg);
  ChaseConfig cfg42 = cfg;
  cfg42.seed = 42;
  EXPECT_NE(other, build_chain(cfg42));
}

TEST(Chain, RejectsDegenerateConfigs) {
  ChaseConfig cfg;
  cfg.num_pointers = 0;
  EXPECT_THROW(build_chain(cfg), std::invalid_argument);
  cfg.num_pointers = 4;
  cfg.stride_bytes = 0;
  EXPECT_THROW(build_chain(cfg), std::invalid_argument);
}

TEST(Chase, FitsInL1AllL1Hits) {
  CacheHierarchy h(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 8;  // 8 * 32 B = 256 B = exactly L1 capacity
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 2;
  cfg.measured_traversals = 4;
  auto res = run_chase(h, cfg);
  EXPECT_EQ(res.total_accesses, 32u);
  EXPECT_EQ(res.level_stats[0].demand_hits, 32u);
  EXPECT_EQ(res.level_stats[0].demand_misses, 0u);
  EXPECT_EQ(res.memory_accesses, 0u);
}

TEST(Chase, L2RegimeMostlyL2Hits) {
  CacheHierarchy h(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 24;  // 768 B: > L1 (256 B), < L2 (1 KiB)
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 3;
  cfg.measured_traversals = 4;
  auto res = run_chase(h, cfg);
  // Beyond L1 capacity a random single-cycle chase mostly misses L1...
  EXPECT_GT(res.level_stats[0].demand_misses, res.level_stats[0].demand_hits);
  // ...and is served by L2 with no memory traffic.
  EXPECT_EQ(res.memory_accesses, 0u);
  EXPECT_GT(res.level_stats[1].demand_hits, 0u);
}

TEST(Chase, MemoryRegimeReachesMemory) {
  CacheHierarchy h(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 1024;  // 32 KiB >> L3 (4 KiB)
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 1;
  cfg.measured_traversals = 2;
  auto res = run_chase(h, cfg);
  EXPECT_GT(res.memory_accesses, res.total_accesses / 2);
}

TEST(Chase, ConservationAcrossLevels) {
  // Every measured access either hits some level or reaches memory.
  CacheHierarchy h(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 100;
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 2;
  cfg.measured_traversals = 3;
  auto res = run_chase(h, cfg);
  std::uint64_t hits = 0;
  for (const auto& ls : res.level_stats) hits += ls.demand_hits;
  EXPECT_EQ(hits + res.memory_accesses, res.total_accesses);
}

TEST(Chase, StrideAffectsFootprint) {
  // Same pointer count, doubled stride => doubled footprint: a chain that
  // fits L1 at stride 32 spills at stride 64 when it exceeds capacity.
  CacheHierarchy h1(HierarchyConfig::tiny());
  CacheHierarchy h2(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = 8;
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 2;
  cfg.measured_traversals = 2;
  auto res32 = run_chase(h1, cfg);
  cfg.stride_bytes = 64;  // footprint 512 B > L1 but lines are 32 B:
                          // 8 distinct lines still fit 8-line L1.
  auto res64 = run_chase(h2, cfg);
  // Stride 32 packs the 8 elements into all 4 sets: everything fits L1.
  EXPECT_EQ(res32.level_stats[0].demand_misses, 0u);
  // Stride 64 skips every other set: the 8 lines land in only 2 of the 4
  // sets (2-way each), so L1 thrashes even though raw capacity would fit --
  // the classic power-of-two-stride conflict-miss pathology.
  EXPECT_GT(res64.level_stats[0].demand_misses, 0u);
  EXPECT_EQ(res64.memory_accesses + res64.level_stats[2].demand_hits +
                res64.level_stats[1].demand_hits +
                res64.level_stats[0].demand_hits,
            res64.total_accesses);
}

TEST(Prefetch, NextLinePrefetchInstallsWithoutDemandCount) {
  LevelConfig cfg = small_level(256, 32, 2);
  cfg.prefetch = PrefetchPolicy::next_line;
  CacheLevel c(cfg);
  EXPECT_FALSE(c.access(0));         // miss on line 0, prefetches line 1
  EXPECT_EQ(c.stats().prefetches_issued, 1u);
  EXPECT_TRUE(c.contains(32));       // line 1 resident
  EXPECT_TRUE(c.access(32));         // and hits on demand
  EXPECT_EQ(c.stats().demand_misses, 1u);
}

TEST(Prefetch, DegreeControlsLinesFetchedAhead) {
  LevelConfig cfg = small_level(1024, 32, 4);
  cfg.prefetch = PrefetchPolicy::next_line;
  cfg.prefetch_degree = 3;
  CacheLevel c(cfg);
  c.access(0);
  EXPECT_EQ(c.stats().prefetches_issued, 3u);
  EXPECT_TRUE(c.contains(32));
  EXPECT_TRUE(c.contains(64));
  EXPECT_TRUE(c.contains(96));
  EXPECT_FALSE(c.contains(128));
}

TEST(Prefetch, SequentialScanHitRateBoostedRandomChaseImmune) {
  // Footprint 4x the L1: sequential scan with degree-1 prefetch gets ~50%
  // demand hits; random chase stays near 0%.
  auto run = [](ChainOrder order) {
    HierarchyConfig h = HierarchyConfig::tiny();
    h.levels[0].prefetch = PrefetchPolicy::next_line;
    CacheHierarchy hierarchy(h);
    ChaseConfig cfg;
    cfg.num_pointers = 32;  // 1 KiB at stride 32 = 4x tiny L1
    cfg.stride_bytes = 32;
    cfg.order = order;
    cfg.warmup_traversals = 2;
    cfg.measured_traversals = 4;
    const auto res = run_chase(hierarchy, cfg);
    return static_cast<double>(res.level_stats[0].demand_hits) /
           static_cast<double>(res.total_accesses);
  };
  EXPECT_NEAR(run(ChainOrder::sequential), 0.5, 0.05);
  EXPECT_LT(run(ChainOrder::random_cycle), 0.25);
}

TEST(Chain, SequentialOrderIsAscending) {
  ChaseConfig cfg;
  cfg.num_pointers = 10;
  cfg.stride_bytes = 64;
  cfg.base_addr = 1024;
  cfg.order = ChainOrder::sequential;
  const auto chain = build_chain(cfg);
  for (std::size_t i = 0; i < chain.size(); ++i) {
    EXPECT_EQ(chain[i], 1024 + i * 64);
  }
}

class ChaseRegimeSweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, int>> {};

TEST_P(ChaseRegimeSweep, SteadyStateServedByExpectedLevel) {
  // (num_pointers, expected-serving-level) pairs for tiny():
  // level index 0..2, 3 means memory.
  const auto [n, expected] = GetParam();
  CacheHierarchy h(HierarchyConfig::tiny());
  ChaseConfig cfg;
  cfg.num_pointers = n;
  cfg.stride_bytes = 32;
  cfg.warmup_traversals = 4;
  cfg.measured_traversals = 4;
  auto res = run_chase(h, cfg);
  // Find where the majority of accesses were served.
  std::uint64_t best_count = res.memory_accesses;
  int best = 3;
  for (int i = 0; i < 3; ++i) {
    if (res.level_stats[static_cast<std::size_t>(i)].demand_hits >
        best_count) {
      best_count = res.level_stats[static_cast<std::size_t>(i)].demand_hits;
      best = i;
    }
  }
  EXPECT_EQ(best, expected) << "chain of " << n << " pointers";
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, ChaseRegimeSweep,
    ::testing::Values(std::make_pair(std::uint64_t{4}, 0),    // 128 B -> L1
                      std::make_pair(std::uint64_t{8}, 0),    // 256 B -> L1
                      std::make_pair(std::uint64_t{28}, 1),   // ~0.9 KiB -> L2
                      std::make_pair(std::uint64_t{100}, 2),  // ~3 KiB -> L3
                      std::make_pair(std::uint64_t{4096}, 3)  // 128 KiB -> M
                      ));

}  // namespace
}  // namespace catalyst::cachesim
