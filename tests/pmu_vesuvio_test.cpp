// Tests for the Vesuvio machine model and the cross-architecture
// pipeline behaviour it exists to exercise.
#include <gtest/gtest.h>

#include <algorithm>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst {
namespace {

TEST(Vesuvio, HasExpectedScale) {
  const pmu::Machine m = pmu::vesuvio_cpu();
  EXPECT_GE(m.num_events(), 80u);
  EXPECT_LE(m.num_events(), 200u);
  EXPECT_EQ(m.physical_counters(), 6u);
}

TEST(Vesuvio, CombinedFlopsCounterCountsOperations) {
  const pmu::Machine m = pmu::vesuvio_cpu();
  const auto& e = m.event(*m.find("RETIRED_SSE_AVX_FLOPS:ALL"));
  // One 256-bit DP FMA instruction = 4 lanes x 2 ops = 8 operations.
  pmu::Activity fma256dp{{pmu::sig::fp("256", "dp", true), 1.0}};
  EXPECT_DOUBLE_EQ(e.ideal(fma256dp), 8.0);
  // One scalar SP non-FMA instruction = 1 operation.
  pmu::Activity scal{{pmu::sig::fp("scalar", "sp", false), 1.0}};
  EXPECT_DOUBLE_EQ(e.ideal(scal), 1.0);
}

TEST(Vesuvio, NoPerPrecisionFpEvents) {
  // Every FP-sensitive event must touch BOTH precisions (that is the whole
  // point of this model).
  const pmu::Machine m = pmu::vesuvio_cpu();
  for (const auto& e : m.events()) {
    bool sp = false, dp = false;
    for (const auto& t : e.terms) {
      if (t.signal.rfind("fp.", 0) != 0) continue;
      if (t.signal.find(".sp.") != std::string::npos) sp = true;
      if (t.signal.find(".dp.") != std::string::npos) dp = true;
    }
    EXPECT_EQ(sp, dp) << e.name << " separates precisions";
  }
}

TEST(Vesuvio, BuildIsDeterministic) {
  const pmu::Machine a = pmu::vesuvio_cpu();
  const pmu::Machine b = pmu::vesuvio_cpu();
  EXPECT_EQ(a.event_names(), b.event_names());
}

class VesuvioFlopsPipeline : public ::testing::Test {
 protected:
  static const core::PipelineResult& result() {
    static const core::PipelineResult res = [] {
      auto signatures = core::cpu_flops_signatures();
      core::MetricSignature both{"SP+DP Ops.", linalg::Vector(16, 0.0)};
      for (const auto& s : signatures) {
        if (s.name == "SP Ops." || s.name == "DP Ops.") {
          for (std::size_t i = 0; i < 16; ++i) {
            both.coordinates[i] += s.coordinates[i];
          }
        }
      }
      signatures.push_back(both);
      return core::run_pipeline(pmu::vesuvio_cpu(),
                                cat::cpu_flops_benchmark(), signatures,
                                core::PipelineOptions{});
    }();
    return res;
  }

  static const core::MetricDefinition& metric(const std::string& name) {
    for (const auto& m : result().metrics) {
      if (m.metric_name == name) return m;
    }
    throw std::runtime_error("metric not found: " + name);
  }
};

TEST_F(VesuvioFlopsPipeline, SelectsTheCombinedCounterAndNothingFpRelated) {
  // The only FP-capable event on this machine is the combined counter; the
  // QR may additionally keep a loop-control branch counter (an independent
  // "iterations" direction on this machine), but never a second FP event.
  const auto& events = result().xhat_events;
  ASSERT_LE(events.size(), 2u) << core::format_selected_events(result());
  EXPECT_NE(std::find(events.begin(), events.end(),
                      "RETIRED_SSE_AVX_FLOPS:ALL"),
            events.end());
  EXPECT_EQ(std::find(events.begin(), events.end(),
                      "RETIRED_SSE_AVX_FLOPS:ANY"),
            events.end());
}

TEST_F(VesuvioFlopsPipeline, PerPrecisionMetricsNotComposable) {
  for (const char* name : {"SP Ops.", "DP Ops.", "SP Instrs.", "DP Instrs.",
                           "SP FMA Instrs.", "DP FMA Instrs."}) {
    EXPECT_FALSE(metric(name).composable) << name;
    EXPECT_GT(metric(name).backward_error, 0.02) << name;
  }
}

TEST_F(VesuvioFlopsPipeline, CombinedPrecisionMetricIsExact) {
  const auto& m = metric("SP+DP Ops.");
  EXPECT_TRUE(m.composable) << m.backward_error;
  double flops_coeff = 0.0;
  for (const auto& t : m.terms) {
    if (t.event_name == "RETIRED_SSE_AVX_FLOPS:ALL") {
      flops_coeff = t.coefficient;
    }
  }
  EXPECT_NEAR(flops_coeff, 1.0, 1e-6);
}

class VesuvioBranchPipeline : public ::testing::Test {
 protected:
  static const core::PipelineResult& result() {
    static const core::PipelineResult res = core::run_pipeline(
        pmu::vesuvio_cpu(), cat::branch_benchmark(),
        core::branch_signatures(), core::PipelineOptions{});
    return res;
  }

  static const core::MetricDefinition& metric(const std::string& name) {
    for (const auto& m : result().metrics) {
      if (m.metric_name == name) return m;
    }
    throw std::runtime_error("metric not found: " + name);
  }
};

TEST_F(VesuvioBranchPipeline, TakenComposesDifferentlyThanOnSaphira) {
  // Vesuvio has no conditional-taken counter, but TAKEN = cond taken +
  // uncond and ALL/COND exist, so Conditional Branches Taken composes as
  // TAKEN - (ALL - COND): the pipeline must find *some* exact combination.
  const auto& taken = metric("Conditional Branches Taken.");
  EXPECT_TRUE(taken.composable) << taken.backward_error;
  // And it must involve the taken counter.
  bool uses_taken = false;
  for (const auto& t : taken.terms) {
    if (t.event_name == "RETIRED_TAKEN_BRANCH_INSTRUCTIONS" &&
        std::abs(t.coefficient) > 0.5) {
      uses_taken = true;
    }
  }
  EXPECT_TRUE(uses_taken);
}

TEST_F(VesuvioBranchPipeline, MispredictionsCompose) {
  const auto& m = metric("Mispredicted Branches.");
  EXPECT_TRUE(m.composable);
}

TEST_F(VesuvioBranchPipeline, BranchesExecutedStillImpossible) {
  const auto& m = metric("Conditional Branches Executed.");
  EXPECT_FALSE(m.composable);
  EXPECT_NEAR(m.backward_error, 1.0, 1e-6);
}

}  // namespace
}  // namespace catalyst
