// Tests for the seeded random-matrix generators (the foundation of every
// property test in the suite, so their own contracts deserve checks).
#include "linalg/random.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/svd.hpp"

namespace catalyst::linalg {
namespace {

TEST(RandomGaussian, DeterministicPerSeed) {
  EXPECT_EQ(random_gaussian(5, 4, 42), random_gaussian(5, 4, 42));
  EXPECT_NE(random_gaussian(5, 4, 42), random_gaussian(5, 4, 43));
}

TEST(RandomGaussian, MomentsRoughlyStandardNormal) {
  const Matrix a = random_gaussian(200, 50, 7);
  double sum = 0.0, sumsq = 0.0;
  for (double v : a.data()) {
    sum += v;
    sumsq += v * v;
  }
  const auto n = static_cast<double>(a.data().size());
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RandomUniform, RangeRespected) {
  const Matrix a = random_uniform(30, 30, -2.0, 5.0, 11);
  for (double v : a.data()) {
    EXPECT_GE(v, -2.0);
    EXPECT_LE(v, 5.0);
  }
  EXPECT_THROW(random_uniform(2, 2, 1.0, -1.0, 0), ArgumentError);
}

TEST(RandomOrthonormal, ColumnsOrthonormal) {
  const Matrix q = random_orthonormal(20, 8, 3);
  const Matrix qtq = matmul_tn(q, q);
  EXPECT_LT(Matrix::max_abs_diff(qtq, Matrix::identity(8)), 1e-12);
  EXPECT_THROW(random_orthonormal(4, 5, 0), ArgumentError);
}

TEST(RandomRankDeficient, RankIsExact) {
  EXPECT_EQ(numerical_rank(random_rank_deficient(12, 9, 4, 5)), 4);
  EXPECT_EQ(numerical_rank(random_rank_deficient(12, 9, 0, 5)), 0);
  EXPECT_THROW(random_rank_deficient(4, 4, 5, 0), ArgumentError);
}

TEST(RandomWithCondition, SpectrumEndpoints) {
  const double cond = 1e8;
  const auto sv = svd(random_with_condition(25, 10, cond, 17)).singular_values;
  EXPECT_NEAR(sv.front(), 1.0, 1e-8);
  EXPECT_NEAR(sv.back() * cond, 1.0, 1e-4);
  EXPECT_THROW(random_with_condition(4, 4, 0.5, 0), ArgumentError);
}

TEST(RandomWithCondition, SingleColumnEdgeCase) {
  const Matrix a = random_with_condition(6, 1, 100.0, 9);
  EXPECT_NEAR(nrm2(a.col(0)), 1.0, 1e-12);  // single sv = cond^0 = 1
}

}  // namespace
}  // namespace catalyst::linalg
