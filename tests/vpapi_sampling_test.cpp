// Tests for time-sliced sampling and strobed collection
// (vpapi/sampling.hpp): schedule shape, deterministic dithering, per-phase
// synthesis, and the byte-identical-across-threads determinism the virtual
// timeline guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <stdexcept>
#include <vector>

#include "faults/faults.hpp"
#include "vpapi/sampling.hpp"
#include "vpapi/scheduler.hpp"

namespace catalyst::vpapi {
namespace {

// 2 physical counters, 6 deterministic noise-free events (value = k * x).
pmu::Machine sampling_machine() {
  pmu::Machine m("samp", 2, 17);
  for (int k = 1; k <= 6; ++k) {
    m.add_event({"E" + std::to_string(k), "",
                 {{"x", static_cast<double>(k)}}, {}});
  }
  return m;
}

std::vector<pmu::Activity> bursty_kernels(std::size_t n) {
  std::vector<pmu::Activity> acts;
  for (std::size_t k = 0; k < n; ++k) {
    acts.push_back({{"x", k % 3 == 0 ? 100.0 : 7.0}});
  }
  return acts;
}

std::vector<std::string> six_events() {
  return {"E1", "E2", "E3", "E4", "E5", "E6"};
}

TEST(SampleSchedule, ValidateRejectsDegenerateSpans) {
  SampleSchedule s;
  EXPECT_NO_THROW(s.validate());
  s.kernel_span_ns = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = {};
  s.period_ns = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = {};
  s.short_period_ns = 0;
  EXPECT_THROW(s.validate(), std::invalid_argument);
  s = {};
  s.short_period_ns = s.period_ns + 1;  // short must not exceed long
  EXPECT_THROW(s.validate(), std::invalid_argument);
}

TEST(SampleTimes, UniformSamplingGrid) {
  SampleSchedule s;
  s.kernel_span_ns = 1000;
  s.period_ns = 300;
  const auto times = sample_times(s, CollectionMode::sampling, 0, 3000);
  const std::vector<std::uint64_t> expected{300,  600,  900,  1200, 1500,
                                            1800, 2100, 2400, 2700, 3000};
  EXPECT_EQ(times, expected);
}

TEST(SampleTimes, StrobedAlternatesLongShort) {
  SampleSchedule s;
  s.kernel_span_ns = 1000;
  s.period_ns = 300;
  s.short_period_ns = 100;
  const auto times = sample_times(s, CollectionMode::strobed, 0, 2000);
  // long, short, long, short, ... then the unconditional closing sample.
  const std::vector<std::uint64_t> expected{300, 400, 700, 800, 1100,
                                            1200, 1500, 1600, 1900, 2000};
  EXPECT_EQ(times, expected);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(SampleTimes, AlwaysClosesAtTotal) {
  SampleSchedule s;
  s.kernel_span_ns = 1000;
  s.period_ns = 450;
  for (const CollectionMode mode :
       {CollectionMode::counting, CollectionMode::sampling,
        CollectionMode::strobed}) {
    for (const std::uint64_t offset : {std::uint64_t{0}, std::uint64_t{449}}) {
      const auto times = sample_times(s, mode, offset, 1700);
      ASSERT_FALSE(times.empty());
      EXPECT_EQ(times.back(), 1700u);
      for (std::size_t i = 1; i < times.size(); ++i) {
        EXPECT_GT(times[i], times[i - 1]);
      }
    }
  }
  EXPECT_TRUE(sample_times(s, CollectionMode::sampling, 0, 0).empty());
  // Counting mode never slices: the closing snapshot is the whole schedule.
  EXPECT_EQ(sample_times(s, CollectionMode::counting, 0, 1700).size(), 1u);
}

TEST(DitherOffset, DeterministicBoundedAndOffable) {
  const auto m = sampling_machine();
  SampleSchedule s;
  std::set<std::uint64_t> distinct;
  for (std::uint64_t run = 0; run < 20; ++run) {
    const std::uint64_t a =
        dither_offset(m, s, CollectionMode::sampling, run);
    const std::uint64_t b =
        dither_offset(m, s, CollectionMode::sampling, run);
    EXPECT_EQ(a, b) << "dither must be a pure function of its key";
    EXPECT_LT(a, s.period_ns);
    distinct.insert(a);
  }
  // The draws are keyed per run: a population of 20 cannot collapse.
  EXPECT_GT(distinct.size(), 1u);
  // Mode participates in the key, so sampling and strobed runs decorrelate.
  bool any_mode_difference = false;
  for (std::uint64_t run = 0; run < 20; ++run) {
    any_mode_difference |=
        dither_offset(m, s, CollectionMode::sampling, run) !=
        dither_offset(m, s, CollectionMode::strobed, run);
  }
  EXPECT_TRUE(any_mode_difference);
  s.dither = false;
  EXPECT_EQ(dither_offset(m, s, CollectionMode::sampling, 3), 0u);
}

TEST(Reconstruct, ExactAtBoundaryAlignedSamples) {
  RunTrace run;
  run.events = {"E"};
  run.samples = {{100, {5.0}}, {200, {12.0}}, {300, {30.0}}};
  const auto rows = reconstruct_run_phases(run, 100, 3);
  ASSERT_EQ(rows.size(), 1u);
  const std::vector<double> expected{5.0, 7.0, 18.0};
  EXPECT_EQ(rows[0], expected);
}

TEST(Reconstruct, InterpolatesBetweenBracketingSamples) {
  // Samples at 150 and 300 over 3 kernels of span 100: boundary 100 is
  // interpolated against the implicit (0, 0) run start, boundary 200
  // between the two samples.
  RunTrace run;
  run.events = {"E"};
  run.samples = {{150, {9.0}}, {300, {30.0}}};
  const auto rows = reconstruct_run_phases(run, 100, 3);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 3u);
  EXPECT_DOUBLE_EQ(rows[0][0], 6.0);   // 9 * (100/150)
  EXPECT_DOUBLE_EQ(rows[0][1], 10.0);  // 9 + 21 * (50/150) - 6
  EXPECT_DOUBLE_EQ(rows[0][2], 14.0);  // 30 - 16
}

TEST(Reconstruct, RejectsMalformedTraces) {
  RunTrace run;
  run.events = {"E"};
  EXPECT_THROW(reconstruct_run_phases(run, 100, 3), std::invalid_argument);
  run.samples = {{100, {1.0}}, {300, {2.0}}};  // does not close at 200
  EXPECT_THROW(reconstruct_run_phases(run, 100, 2), std::invalid_argument);
  run.samples = {{100, {1.0, 9.0}}, {200, {2.0, 9.0}}};  // width mismatch
  EXPECT_THROW(reconstruct_run_phases(run, 100, 2), std::invalid_argument);
  run.samples = {{100, {1.0}}, {100, {2.0}}, {200, {3.0}}};  // stalled time
  EXPECT_THROW(reconstruct_run_phases(run, 100, 2), std::invalid_argument);
  run.samples = {{200, {2.0}}};
  EXPECT_THROW(reconstruct_run_phases(run, 0, 2), std::invalid_argument);
  EXPECT_THROW(reconstruct_run_phases(run, 100, 0), std::invalid_argument);
}

TEST(CollectSampled, CountingModeDelegatesBitIdentically) {
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(5);
  const auto counted = collect(m, six_events(), acts, 3);
  const auto sampled = collect_sampled(m, six_events(), acts, 3,
                                       CollectionMode::counting);
  ASSERT_EQ(sampled.data.repetitions.size(), counted.repetitions.size());
  for (std::size_t r = 0; r < counted.repetitions.size(); ++r) {
    EXPECT_EQ(sampled.data.repetitions[r].values,
              counted.repetitions[r].values);
  }
  EXPECT_EQ(sampled.data.runs_per_repetition, counted.runs_per_repetition);
  EXPECT_TRUE(sampled.trace.runs.empty());
  EXPECT_EQ(sampled.trace.mode, CollectionMode::counting);
}

TEST(CollectSampled, DividingPeriodReconstructsCountingExactly) {
  // Dither off and the period dividing the kernel span: every kernel
  // boundary lands exactly on a sample, the cumulative counts are integers
  // (noise-free integer readings), so the per-phase synthesis returns the
  // counting-mode values bit for bit.
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(5);
  SampleSchedule s;  // period 250us divides the 1ms span
  s.dither = false;
  const auto counted = collect(m, six_events(), acts, 2);
  const auto sampled = collect_sampled(m, six_events(), acts, 2,
                                       CollectionMode::sampling, s);
  ASSERT_EQ(sampled.data.repetitions.size(), 2u);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(sampled.data.repetitions[r].values,
              counted.repetitions[r].values);
  }
}

TEST(CollectSampled, ClosingSampleAnchorsRunTotalsExactly) {
  // Whatever the period, dither, or mode: the unconditional closing sample
  // carries the run's aggregate totals, so per-event sums over kernels
  // match grouped counting exactly even when per-kernel attribution is
  // smeared.
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(7);
  const auto counted = collect(m, six_events(), acts, 2);
  SampleSchedule coarse;
  coarse.period_ns = 3'300'000;  // > 3 kernel spans, deliberately unaligned
  coarse.short_period_ns = 700'000;
  for (const CollectionMode mode :
       {CollectionMode::sampling, CollectionMode::strobed}) {
    const auto sampled =
        collect_sampled(m, six_events(), acts, 2, mode, coarse);
    for (std::size_t r = 0; r < 2; ++r) {
      for (std::size_t e = 0; e < six_events().size(); ++e) {
        double truth = 0.0, est = 0.0;
        for (std::size_t k = 0; k < acts.size(); ++k) {
          truth += counted.repetitions[r].values[e][k];
          est += sampled.data.repetitions[r].values[e][k];
        }
        EXPECT_NEAR(est, truth, 1e-6) << "mode " << to_string(mode)
                                      << " rep " << r << " event " << e;
      }
    }
  }
}

TEST(CollectSampled, ByteIdenticalAcrossThreadCounts) {
  // The virtual timeline makes every sample a pure function of its
  // coordinates: 1 worker and 4 workers must produce identical traces AND
  // identical reconstructed data, down to the last bit.
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(9);
  SampleSchedule s;  // dither on: the offsets must reproduce too
  for (const CollectionMode mode :
       {CollectionMode::sampling, CollectionMode::strobed}) {
    const auto one = collect_sampled(m, six_events(), acts, 4, mode, s, 1);
    const auto four = collect_sampled(m, six_events(), acts, 4, mode, s, 4);
    ASSERT_EQ(one.data.repetitions.size(), four.data.repetitions.size());
    for (std::size_t r = 0; r < one.data.repetitions.size(); ++r) {
      EXPECT_EQ(one.data.repetitions[r].values,
                four.data.repetitions[r].values);
    }
    ASSERT_EQ(one.trace.runs.size(), four.trace.runs.size());
    for (std::size_t u = 0; u < one.trace.runs.size(); ++u) {
      const RunTrace& a = one.trace.runs[u];
      const RunTrace& b = four.trace.runs[u];
      EXPECT_EQ(a.repetition, b.repetition);
      EXPECT_EQ(a.run_id, b.run_id);
      EXPECT_EQ(a.events, b.events);
      ASSERT_EQ(a.samples.size(), b.samples.size());
      for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].t_ns, b.samples[i].t_ns);
        EXPECT_EQ(a.samples[i].values, b.samples[i].values);
      }
    }
  }
}

TEST(CollectSampled, TraceOrderedByRepetitionThenRun) {
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(4);
  const auto sampled = collect_sampled(m, six_events(), acts, 3,
                                       CollectionMode::sampling, {}, 4);
  const auto sched = schedule_event_sets(m, six_events());
  const std::size_t n_groups = sched.runs.size();
  ASSERT_EQ(sampled.trace.runs.size(), 3 * n_groups);
  EXPECT_EQ(sampled.trace.kernels, acts.size());
  for (std::size_t u = 0; u < sampled.trace.runs.size(); ++u) {
    const RunTrace& run = sampled.trace.runs[u];
    EXPECT_EQ(run.repetition, u / n_groups);
    EXPECT_EQ(run.run_id, u);
    EXPECT_EQ(run.events, sched.runs[u % n_groups].events);
    ASSERT_FALSE(run.samples.empty());
    EXPECT_EQ(run.samples.back().t_ns,
              sampled.trace.schedule.kernel_span_ns * acts.size());
  }
}

TEST(CollectSampled, RepetitionOffsetShiftsRunIds) {
  // Batch resume: offset r shifts the run-id noise coordinates exactly like
  // collect_resilient's repetition_offset, so a resumed sampling campaign
  // is bit-identical to an uninterrupted one.
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(4);
  SampleSchedule s;
  const auto whole = collect_sampled(m, six_events(), acts, 2,
                                     CollectionMode::strobed, s);
  const auto tail = collect_sampled(m, six_events(), acts, 1,
                                    CollectionMode::strobed, s, 1, nullptr, 1);
  EXPECT_EQ(tail.data.repetitions[0].values, whole.data.repetitions[1].values);
  const std::size_t n_groups = whole.trace.runs.size() / 2;
  for (std::size_t g = 0; g < n_groups; ++g) {
    EXPECT_EQ(tail.trace.runs[g].run_id, whole.trace.runs[n_groups + g].run_id);
    EXPECT_EQ(tail.trace.runs[g].repetition, 1u);
  }
}

TEST(CollectSampled, FakeClockPacesOneSleepPerKernelSpan) {
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(5);
  SampleSchedule s;
  faults::FakeClock clock;
  const auto paced = collect_sampled(m, six_events(), acts, 2,
                                     CollectionMode::sampling, s, 1, &clock);
  const auto sched = schedule_event_sets(m, six_events());
  const std::size_t expected_sleeps = 2 * sched.runs.size() * acts.size();
  ASSERT_EQ(clock.delays().size(), expected_sleeps);
  for (const auto& d : clock.delays()) {
    EXPECT_EQ(d, std::chrono::nanoseconds(s.kernel_span_ns));
  }
  // Pacing never touches the data: unpaced collection is identical.
  const auto unpaced = collect_sampled(m, six_events(), acts, 2,
                                       CollectionMode::sampling, s);
  for (std::size_t r = 0; r < 2; ++r) {
    EXPECT_EQ(paced.data.repetitions[r].values,
              unpaced.data.repetitions[r].values);
  }
}

TEST(CollectSampled, RejectsBadArguments) {
  const auto m = sampling_machine();
  const auto acts = bursty_kernels(3);
  EXPECT_THROW(collect_sampled(m, {"NOPE"}, acts, 1,
                               CollectionMode::sampling),
               std::invalid_argument);
  EXPECT_THROW(collect_sampled(m, six_events(), acts, 0,
                               CollectionMode::sampling),
               std::invalid_argument);
  EXPECT_THROW(collect_sampled(m, six_events(), acts, 1,
                               CollectionMode::sampling, {}, 0),
               std::invalid_argument);
  EXPECT_THROW(collect_sampled(m, six_events(), {}, 1,
                               CollectionMode::sampling),
               std::invalid_argument);
  SampleSchedule bad;
  bad.period_ns = 0;
  EXPECT_THROW(collect_sampled(m, six_events(), acts, 1,
                               CollectionMode::sampling, bad),
               std::invalid_argument);
}

TEST(CollectionMode, StringRoundTrip) {
  EXPECT_EQ(collection_mode_from_string("counting"),
            CollectionMode::counting);
  EXPECT_EQ(collection_mode_from_string("sampling"),
            CollectionMode::sampling);
  EXPECT_EQ(collection_mode_from_string("strobed"), CollectionMode::strobed);
  for (const CollectionMode mode :
       {CollectionMode::counting, CollectionMode::sampling,
        CollectionMode::strobed}) {
    EXPECT_EQ(collection_mode_from_string(to_string(mode)), mode);
  }
  EXPECT_THROW(collection_mode_from_string("multiplexed"),
               std::invalid_argument);
}

}  // namespace
}  // namespace catalyst::vpapi
