// Tests for the pivot-rule ablation hooks of the specialized QRCP.
#include <gtest/gtest.h>

#include <algorithm>

#include "cat/cat.hpp"
#include "core/pipeline.hpp"
#include "core/qrcp_special.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

// X modeled on the branch situation: clean basis columns plus a
// combination column, where the rules disagree about the 4th pick.
linalg::Matrix branch_like_x() {
  return linalg::Matrix::from_columns({
      {0.0, 1.0, 0.0, 1.0, 0.0},  // ALL = CR + D (registered first)
      {0.0, 1.0, 0.0, 0.0, 0.0},  // CR
      {0.0, 0.0, 1.0, 0.0, 0.0},  // T
      {0.0, 0.0, 1.0, 1.0, 0.0},  // NEAR_TAKEN = T + D
      {0.0, 0.0, 0.0, 0.0, 1.0},  // M
  });
}

TEST(PivotRules, OriginalScorePrefersEarlierCombinationOnTies) {
  auto res = specialized_qrcp(branch_like_x(), 5e-4,
                              PivotRule::original_score);
  ASSERT_EQ(res.rank, 4);
  // Picks CR, T, M (score 1) then the D dimension via the earliest
  // registered combination: column 0 (ALL).
  EXPECT_NE(std::find(res.selected.begin(), res.selected.end(), 0),
            res.selected.end());
  EXPECT_EQ(std::find(res.selected.begin(), res.selected.end(), 3),
            res.selected.end());
}

TEST(PivotRules, AllRulesAgreeOnRank) {
  for (auto rule : {PivotRule::original_score, PivotRule::updated_score,
                    PivotRule::max_norm}) {
    auto res = specialized_qrcp(branch_like_x(), 5e-4, rule);
    EXPECT_EQ(res.rank, 4) << static_cast<int>(rule);
  }
}

TEST(PivotRules, MaxNormPicksLargestColumnFirst) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0, 0.0, 0.0},
      {0.0, 1.0, 0.0},
      {50.0, 50.0, 50.0},  // cycles-like
  });
  auto special = specialized_qrcp(x, 1e-3, PivotRule::original_score);
  EXPECT_NE(special.selected[0], 2);
  auto classic = specialized_qrcp(x, 1e-3, PivotRule::max_norm);
  EXPECT_EQ(classic.selected[0], 2);
}

TEST(PivotRules, UpdatedScoreCanMistakeCombinationForBasisColumn) {
  // After eliminating T, the NEAR_TAKEN residual looks like a pure D
  // column to the updated-score rule, so it can win the tie against ALL
  // even though ALL registered first.  (This documents WHY the default
  // scores original columns.)
  linalg::Matrix x = linalg::Matrix::from_columns({
      {0.0, 1.0, 1.0},    // combo: CR + D (first)
      {0.0, 1.0, 0.0},    // CR
      {1.0, 0.0, 0.0},    // T
      {1.0, 0.0, 1.0},    // combo: T + D
  });
  auto updated = specialized_qrcp(x, 5e-4, PivotRule::updated_score);
  auto original = specialized_qrcp(x, 5e-4, PivotRule::original_score);
  EXPECT_EQ(original.rank, 3);
  EXPECT_EQ(updated.rank, 3);
  // Original rule: third pick is column 0 (ties resolve to input order on
  // the ORIGINAL columns).
  EXPECT_NE(std::find(original.selected.begin(), original.selected.end(), 0),
            original.selected.end());
}

TEST(PivotRules, PipelinePlumbing) {
  // The max_norm rule through the full CPU pipeline must select aggregate
  // events that the default rule excludes.
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  PipelineOptions opt;
  opt.pivot_rule = PivotRule::max_norm;
  const auto result =
      run_pipeline(machine, bench, cpu_flops_signatures(), opt);
  const auto& ev = result.xhat_events;
  const bool has_aggregate =
      std::find(ev.begin(), ev.end(), "FP_ARITH_INST_RETIRED:ANY") !=
          ev.end() ||
      std::find(ev.begin(), ev.end(), "FP_ARITH_INST_RETIRED:VECTOR") !=
          ev.end() ||
      std::find(ev.begin(), ev.end(), "FP_ARITH_INST_RETIRED:ANY_SINGLE") !=
          ev.end() ||
      std::find(ev.begin(), ev.end(), "FP_ARITH_INST_RETIRED:ANY_DOUBLE") !=
          ev.end();
  EXPECT_TRUE(has_aggregate) << format_selected_events(result);
}

}  // namespace
}  // namespace catalyst::core
