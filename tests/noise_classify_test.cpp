// Tests for the noise classifier (future-work extension): each regime must
// be recognized from repetition data, both hand-built and produced by the
// PMU noise models.
#include "core/noise_classify.hpp"

#include "core/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cat/cat.hpp"
#include "core/pipeline.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

TEST(NoiseClassify, Silent) {
  auto p = classify_noise({{0, 0, 0}, {0, 0, 0}, {0, 0, 0}});
  EXPECT_EQ(p.cls, NoiseClass::silent);
  EXPECT_EQ(std::string(to_string(p.cls)), "silent");
}

TEST(NoiseClassify, Deterministic) {
  auto p = classify_noise({{10, 20, 30}, {10, 20, 30}, {10, 20, 30}});
  EXPECT_EQ(p.cls, NoiseClass::deterministic);
  EXPECT_EQ(p.max_rnmse, 0.0);
}

TEST(NoiseClassify, DriftingTrend) {
  // Means rise monotonically: 100 -> 101 -> 102 -> 103 (1% per rep).
  std::vector<std::vector<double>> reps;
  for (int r = 0; r < 4; ++r) {
    const double scale = 1.0 + 0.01 * r;
    reps.push_back({100 * scale, 200 * scale, 300 * scale});
  }
  auto p = classify_noise(reps);
  EXPECT_EQ(p.cls, NoiseClass::drifting) << to_string(p.cls);
  EXPECT_GT(p.drift_correlation, 0.99);
  EXPECT_GT(p.drift_magnitude, 0.01);
}

TEST(NoiseClassify, SpikyOutlier) {
  // One reading blown up by an interrupt; everything else jitters slightly.
  std::vector<std::vector<double>> reps{
      {100, 200, 301}, {101, 199, 300}, {99, 200, 300},
      {100, 201, 300}, {100, 200, 5000},
  };
  auto p = classify_noise(reps);
  EXPECT_EQ(p.cls, NoiseClass::spiky) << to_string(p.cls);
  EXPECT_GT(p.spike_ratio, 8.0);
}

TEST(NoiseClassify, GaussianJitter) {
  std::vector<std::vector<double>> reps{
      {1002, 1998, 3004}, {998, 2003, 2996}, {1001, 1997, 3001},
      {997, 2002, 2999}, {1003, 2000, 2998},
  };
  auto p = classify_noise(reps);
  EXPECT_EQ(p.cls, NoiseClass::gaussian) << to_string(p.cls);
}

TEST(NoiseClassify, ValidatesInput) {
  EXPECT_THROW(classify_noise({{1, 2}}), std::invalid_argument);
  EXPECT_THROW(classify_noise({{1, 2}, {1}}), std::invalid_argument);
  EXPECT_THROW(classify_noise({{}, {}}), std::invalid_argument);
}

// --- against the PMU noise models ------------------------------------------------

std::vector<std::vector<double>> measure_reps(const pmu::NoiseModel& noise,
                                              std::size_t n_reps) {
  pmu::Machine m("nc", 4, 321);
  m.add_event({"E", "", {{"x", 1.0}}, noise});
  std::vector<pmu::Activity> acts{{{"x", 1e6}}, {{"x", 2e6}}, {{"x", 3e6}}};
  std::vector<std::vector<double>> reps;
  for (std::size_t r = 0; r < n_reps; ++r) {
    reps.push_back(pmu::measure_vector(m, m.event(0), acts, r));
  }
  return reps;
}

TEST(NoiseClassifyPmu, NoiseFreeEventIsDeterministic) {
  auto p = classify_noise(measure_reps(pmu::NoiseModel::none(), 5));
  EXPECT_EQ(p.cls, NoiseClass::deterministic);
}

TEST(NoiseClassifyPmu, RelativeJitterIsGaussian) {
  auto p = classify_noise(measure_reps(pmu::NoiseModel::relative(1e-3), 8));
  EXPECT_EQ(p.cls, NoiseClass::gaussian) << to_string(p.cls);
}

TEST(NoiseClassifyPmu, DriftModelIsDrifting) {
  auto p = classify_noise(measure_reps(pmu::NoiseModel::drifting(5e-3), 6));
  EXPECT_EQ(p.cls, NoiseClass::drifting) << to_string(p.cls);
}

TEST(NoiseClassifyPmu, SpikeModelIsSpikyOrGaussianNeverDrifting) {
  // Spikes are rare; with enough reps at least the classifier must not see
  // a systematic trend.
  auto p = classify_noise(
      measure_reps(pmu::NoiseModel::spiky(0.3, 5e5), 10));
  EXPECT_NE(p.cls, NoiseClass::drifting) << to_string(p.cls);
  EXPECT_NE(p.cls, NoiseClass::deterministic);
}

// --- detrending --------------------------------------------------------------------

TEST(Detrend, RescuesPureDriftBelowStrictTau) {
  // 1% per-rep multiplicative drift: raw max-RNMSE is ~3%, detrended ~0.
  std::vector<std::vector<double>> reps;
  for (int r = 0; r < 4; ++r) {
    const double scale = 1.0 + 0.01 * r;
    reps.push_back({1000 * scale, 2000 * scale, 3000 * scale});
  }
  EXPECT_GT(max_rnmse(reps), 1e-3);
  const auto detrended = detrend_repetitions(reps);
  EXPECT_LT(max_rnmse(detrended), 1e-10);
  // Only roundoff fuzz remains: the trend verdict must be gone (the result
  // is deterministic up to 1e-16-level division noise).
  EXPECT_NE(classify_noise(detrended, 0.9, 8.0).cls, NoiseClass::drifting);
}

TEST(Detrend, LeavesTrendFreeDataAlmostUnchanged) {
  std::vector<std::vector<double>> reps{{100, 200}, {101, 199}, {99, 201},
                                        {100, 200}};
  const auto out = detrend_repetitions(reps);
  for (std::size_t r = 0; r < reps.size(); ++r) {
    for (std::size_t k = 0; k < reps[r].size(); ++k) {
      EXPECT_NEAR(out[r][k], reps[r][k], 2.0);
    }
  }
}

TEST(Detrend, AllZeroPassesThrough) {
  std::vector<std::vector<double>> reps{{0, 0}, {0, 0}};
  EXPECT_EQ(detrend_repetitions(reps), reps);
}

TEST(Detrend, ValidatesInput) {
  EXPECT_THROW(detrend_repetitions({{1.0}}), std::invalid_argument);
}

TEST(Detrend, RescuesPmuDriftModelEndToEnd) {
  // The planted Saphira cycles drift: raw reps fail tau = 1e-10 by orders
  // of magnitude; after detrending, only the Gaussian jitter remains.
  auto reps = measure_reps(pmu::NoiseModel::drifting(2e-3), 6);
  EXPECT_GT(max_rnmse(reps), 1e-4);
  const auto detrended = detrend_repetitions(reps);
  EXPECT_LT(max_rnmse(detrended), 1e-5);
}

TEST(DetrendPipeline, RescuesADriftingEventEndToEnd) {
  // A machine whose ONLY misprediction counter drifts: with the strict tau
  // the branch pipeline cannot compose "Mispredicted Branches"; with
  // detrending enabled it can.
  pmu::Machine m("drifty", 6, 77);
  m.add_event({"BR_RETIRED", "", {{pmu::sig::branch_cond_retired, 1.0}},
               pmu::NoiseModel::none()});
  m.add_event({"BR_TAKEN", "", {{pmu::sig::branch_cond_taken, 1.0}},
               pmu::NoiseModel::none()});
  m.add_event({"BR_UNCOND", "", {{pmu::sig::branch_uncond, 1.0}},
               pmu::NoiseModel::none()});
  // 5% drift per repetition: far above any reasonable tau raw, and far
  // above the integer-quantization floor (~1e-3 at these counts) once
  // detrended.
  m.add_event({"BR_MISPRED_DRIFTY", "",
               {{pmu::sig::branch_mispredicted, 1.0}},
               pmu::NoiseModel::drifting(5e-2)});

  const auto bench = cat::branch_benchmark();
  const auto sigs = core::branch_signatures();
  auto find_misp = [&](const PipelineResult& r) -> const MetricDefinition& {
    for (const auto& metric : r.metrics) {
      if (metric.metric_name == "Mispredicted Branches.") return metric;
    }
    throw std::runtime_error("metric missing");
  };

  // Quantization-tolerant tau: detrending is the only difference between
  // the two runs.
  PipelineOptions base;
  base.tau = 1e-2;
  const auto without = run_pipeline(m, bench, sigs, base);
  EXPECT_FALSE(find_misp(without).composable);

  PipelineOptions with_detrend = base;
  with_detrend.detrend_drifting = true;
  const auto with = run_pipeline(m, bench, sigs, with_detrend);
  EXPECT_TRUE(find_misp(with).composable)
      << find_misp(with).backward_error;
  bool uses_drifty = false;
  for (const auto& t : find_misp(with).terms) {
    if (t.event_name == "BR_MISPRED_DRIFTY" && std::abs(t.coefficient) > 0.5) {
      uses_drifty = true;
    }
  }
  EXPECT_TRUE(uses_drifty);
}

}  // namespace
}  // namespace catalyst::core
