// The fault layer's contracts: deterministic draws, rate semantics, spec
// parsing, wrap encode/decode round trips, backoff arithmetic, and the
// injectable clock.
#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "pmu/measure.hpp"

namespace faults = catalyst::faults;

namespace {

faults::FaultPlan plan_with_rate(double drop) {
  faults::FaultPlan plan;
  plan.seed = 42;
  plan.rates.dropped_reading = drop;
  return plan;
}

TEST(Fires, IsDeterministic) {
  const auto plan = plan_with_rate(0.5);
  const std::uint64_t h = catalyst::pmu::fnv1a("SOME_EVENT");
  for (std::uint64_t run = 0; run < 4; ++run) {
    for (std::uint64_t kernel = 0; kernel < 4; ++kernel) {
      const bool a = faults::fires(plan, h, faults::FaultKind::dropped_reading,
                                   run, kernel, 0, 0.5);
      const bool b = faults::fires(plan, h, faults::FaultKind::dropped_reading,
                                   run, kernel, 0, 0.5);
      EXPECT_EQ(a, b);
    }
  }
}

TEST(Fires, RateZeroNeverRateOneAlways) {
  const auto plan = plan_with_rate(0.0);
  const std::uint64_t h = catalyst::pmu::fnv1a("SOME_EVENT");
  for (std::uint64_t k = 0; k < 200; ++k) {
    EXPECT_FALSE(faults::fires(plan, h, faults::FaultKind::dropped_reading, 0,
                               k, 0, 0.0));
    EXPECT_TRUE(faults::fires(plan, h, faults::FaultKind::dropped_reading, 0,
                              k, 0, 1.0));
  }
}

TEST(Fires, RetryGetsAnIndependentDraw) {
  // At rate 0.5, a fault that fires at attempt 0 must not deterministically
  // fire at every later attempt: count coordinates where attempt 0 fires
  // but attempt 1 does not.
  const auto plan = plan_with_rate(0.5);
  const std::uint64_t h = catalyst::pmu::fnv1a("SOME_EVENT");
  int fired0 = 0, cleared1 = 0;
  for (std::uint64_t k = 0; k < 400; ++k) {
    if (faults::fires(plan, h, faults::FaultKind::dropped_reading, 0, k, 0,
                      0.5)) {
      ++fired0;
      if (!faults::fires(plan, h, faults::FaultKind::dropped_reading, 0, k, 1,
                         0.5)) {
        ++cleared1;
      }
    }
  }
  EXPECT_GT(fired0, 100);   // rate 0.5 over 400 draws
  EXPECT_GT(cleared1, 25);  // ~half of the fired ones clear on retry
}

TEST(Fires, KindsDrawIndependently) {
  const auto plan = plan_with_rate(0.5);
  const std::uint64_t h = catalyst::pmu::fnv1a("SOME_EVENT");
  int differ = 0;
  for (std::uint64_t k = 0; k < 200; ++k) {
    const bool drop = faults::fires(
        plan, h, faults::FaultKind::dropped_reading, 0, k, 0, 0.5);
    const bool wrap =
        faults::fires(plan, h, faults::FaultKind::wrap, 0, k, 0, 0.5);
    if (drop != wrap) ++differ;
  }
  EXPECT_GT(differ, 40);
}

TEST(Fires, ApproximatesTheRate) {
  const auto plan = plan_with_rate(0.1);
  const std::uint64_t h = catalyst::pmu::fnv1a("ANOTHER_EVENT");
  int fired = 0;
  const int n = 5000;
  for (int k = 0; k < n; ++k) {
    if (faults::fires(plan, h, faults::FaultKind::dropped_reading, 0,
                      static_cast<std::uint64_t>(k), 0, 0.1)) {
      ++fired;
    }
  }
  EXPECT_NEAR(static_cast<double>(fired) / n, 0.1, 0.02);
}

TEST(FaultPlan, RatesForHonorsPerEventOverrides) {
  faults::FaultPlan plan;
  plan.rates.wrap = 0.25;
  faults::FaultRates bad;
  bad.dropped_reading = 1.0;
  plan.per_event["CURSED"] = bad;
  EXPECT_EQ(plan.rates_for("NORMAL").wrap, 0.25);
  EXPECT_EQ(plan.rates_for("CURSED").dropped_reading, 1.0);
  EXPECT_EQ(plan.rates_for("CURSED").wrap, 0.0);
  EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, DisabledWhenAllRatesZero) {
  faults::FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.per_event["X"] = faults::FaultRates{};
  EXPECT_FALSE(plan.enabled());
}

TEST(ParseFaultPlan, OffMidAndKeyValue) {
  EXPECT_FALSE(faults::parse_fault_plan("off").enabled());

  const auto mid = faults::parse_fault_plan("mid");
  EXPECT_EQ(mid.seed, faults::FaultPlan::mid_rate().seed);
  EXPECT_EQ(mid.rates, faults::FaultPlan::mid_rate().rates);

  const auto custom =
      faults::parse_fault_plan("seed=7,drop=0.25,wrap=0.001,width=40");
  EXPECT_EQ(custom.seed, 7u);
  EXPECT_EQ(custom.rates.dropped_reading, 0.25);
  EXPECT_EQ(custom.rates.wrap, 0.001);
  EXPECT_EQ(custom.counter_width_bits, 40);

  const auto tweaked = faults::parse_fault_plan("mid,drop=0.5");
  EXPECT_EQ(tweaked.rates.dropped_reading, 0.5);
  EXPECT_EQ(tweaked.rates.wrap, faults::FaultPlan::mid_rate().rates.wrap);
}

TEST(ParseFaultPlan, RejectsGarbage) {
  EXPECT_THROW(faults::parse_fault_plan("bogus_key=1"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_plan("drop=abc"), std::invalid_argument);
  EXPECT_THROW(faults::parse_fault_plan("drop=1.5"), std::invalid_argument);
}

TEST(Wrap, EncodeDecodeRoundTrip) {
  faults::FaultPlan plan;  // width 48
  for (const double reading : {0.0, 1.0, 1e6, 1e12, std::pow(2.0, 40.0)}) {
    const double wrapped = faults::wrap_reading(plan, reading);
    EXPECT_LT(wrapped, 0.0) << "ideals < 2^40 always go negative";
    std::uint64_t wraps = 0;
    EXPECT_EQ(faults::unwrap_reading(plan.counter_width_bits, wrapped, &wraps),
              reading);
    EXPECT_EQ(wraps, 1u);
  }
}

TEST(Wrap, UnwrapLeavesNonNegativeReadingsAlone) {
  std::uint64_t wraps = 0;
  EXPECT_EQ(faults::unwrap_reading(48, 123.0, &wraps), 123.0);
  EXPECT_EQ(wraps, 0u);
}

TEST(Wrap, SpanIsExactPowerOfTwo) {
  EXPECT_EQ(faults::counter_wrap_span(48), 281474976710656.0);
  EXPECT_EQ(faults::counter_wrap_span(32), 4294967296.0);
}

TEST(Backoff, CappedExponential) {
  faults::Backoff b;
  b.base = std::chrono::microseconds(50);
  b.cap = std::chrono::milliseconds(5);
  EXPECT_EQ(b.delay(0), std::chrono::microseconds(50));
  EXPECT_EQ(b.delay(1), std::chrono::microseconds(100));
  EXPECT_EQ(b.delay(2), std::chrono::microseconds(200));
  EXPECT_EQ(b.delay(6), std::chrono::microseconds(3200));
  EXPECT_EQ(b.delay(7), std::chrono::milliseconds(5));    // capped
  EXPECT_EQ(b.delay(60), std::chrono::milliseconds(5));   // no overflow
}

TEST(FakeClock, RecordsInsteadOfSleeping) {
  faults::FakeClock clock;
  clock.sleep_for(std::chrono::microseconds(50));
  clock.sleep_for(std::chrono::microseconds(100));
  ASSERT_EQ(clock.delays().size(), 2u);
  EXPECT_EQ(clock.total(), std::chrono::microseconds(150));
}

}  // namespace
