// The service layer with the sockets cut away: wire framing, the Session
// state machine (driven with explicit timestamps -- every timeout is exact),
// and ServiceCore's queue/quota/cancel/shutdown behavior via the synchronous
// run_one() driver.  The shutdown-drain test restarts a core on the same
// checkpoint directory and replays the queue; the byte-identity test proves
// a report served over the wire equals the CLI-path rendering of the same
// archive for every Tables V-VIII category.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "faults/faults.hpp"
#include "service/service.hpp"

namespace catalyst::service {
namespace {

using std::chrono::nanoseconds;
using namespace std::chrono_literals;

std::vector<wire::Frame> decode_all(const std::string& bytes) {
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::vector<wire::Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(*frame);
  EXPECT_FALSE(decoder.error().has_value())
      << "server output must always decode: " << decoder.error()->message;
  return frames;
}

wire::ErrorBody error_of(const wire::Frame& frame) {
  EXPECT_EQ(frame.type, wire::FrameType::error);
  return wire::decode_error(frame.payload);
}

// --- wire framing ------------------------------------------------------------

TEST(Wire, Crc32MatchesTheStandardCheckValue) {
  EXPECT_EQ(wire::crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(wire::crc32("", 0), 0x00000000u);
}

TEST(Wire, FrameSurvivesBytewiseDelivery) {
  const std::string bytes =
      wire::encode_frame(wire::FrameType::submit, "payload-bytes");
  wire::FrameDecoder decoder;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    EXPECT_FALSE(decoder.next().has_value()) << "frame completed early";
    decoder.feed(&bytes[i], 1);
    if (i + 1 < bytes.size()) EXPECT_TRUE(decoder.mid_frame());
  }
  const auto frame = decoder.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, wire::FrameType::submit);
  EXPECT_EQ(frame->payload, "payload-bytes");
  EXPECT_FALSE(decoder.mid_frame());
  EXPECT_EQ(decoder.bytes_consumed(), bytes.size());
}

TEST(Wire, TruncatedFrameStaysPendingWithoutError) {
  const std::string bytes = wire::encode_frame(wire::FrameType::poll, "1234");
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size() - 1);
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_FALSE(decoder.error().has_value());
  EXPECT_TRUE(decoder.mid_frame());
}

TEST(Wire, BadMagicPoisonsTheDecoder) {
  std::string bytes = wire::encode_frame(wire::FrameType::hello, "hi");
  bytes[0] = 'X';
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.error().has_value());
  EXPECT_EQ(decoder.error()->code, wire::ErrorCode::malformed_frame);

  // Poisoned: even a pristine frame afterwards is dropped, because framing
  // was lost (resynchronising on hostile bytes is how parsers get confused).
  const std::string good = wire::encode_frame(wire::FrameType::hello, "hi");
  decoder.feed(good.data(), good.size());
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_TRUE(decoder.error().has_value());
}

TEST(Wire, BadVersionIsItsOwnError) {
  std::string bytes = wire::encode_frame(wire::FrameType::hello, "hi");
  bytes[4] = 9;  // version field (offset 4, LE u16); 9 != kVersion (3)
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.error().has_value());
  EXPECT_EQ(decoder.error()->code, wire::ErrorCode::bad_version);
}

TEST(Wire, CorruptPayloadFailsTheCrc) {
  std::string bytes = wire::encode_frame(wire::FrameType::submit, "payload");
  bytes.back() ^= 0x01;  // flip one payload bit
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.error().has_value());
  EXPECT_EQ(decoder.error()->code, wire::ErrorCode::bad_crc);
}

TEST(Wire, OversizedLengthIsRejectedAtTheHeader) {
  // A decoder with a 64-byte ceiling must refuse a 65-byte frame WITHOUT
  // buffering its payload.
  const std::string bytes =
      wire::encode_frame(wire::FrameType::submit, std::string(65, 'x'));
  wire::FrameDecoder decoder(64);
  decoder.feed(bytes.data(), wire::kHeaderBytes);  // header alone suffices
  EXPECT_FALSE(decoder.next().has_value());
  ASSERT_TRUE(decoder.error().has_value());
  EXPECT_EQ(decoder.error()->code, wire::ErrorCode::oversized_frame);
}

TEST(Wire, SubmitBodyRoundTripsBothKinds) {
  wire::SubmitBody packed;
  packed.kind = wire::SubmitKind::packed;
  packed.category = "branch";
  packed.deadline_ns = 12345;
  packed.trace_id = 0xFEEDFACE12345678ull;
  packed.event_names = {"EV_A", "EV_B"};
  packed.repetitions = 2;
  packed.slots = 3;
  packed.values = {1.0, 2.5, -3.0, 4.0, 5.0, 6.0,
                   7.0, 8.0, 9.0, 10.0, 11.5, 12.0};
  const wire::SubmitBody packed2 =
      wire::decode_submit(wire::encode_submit(packed));
  EXPECT_EQ(packed2.category, "branch");
  EXPECT_EQ(packed2.deadline_ns, 12345u);
  EXPECT_EQ(packed2.trace_id, 0xFEEDFACE12345678ull);
  EXPECT_EQ(packed2.event_names, packed.event_names);
  EXPECT_EQ(packed2.repetitions, 2u);
  EXPECT_EQ(packed2.slots, 3u);
  EXPECT_EQ(packed2.values, packed.values);

  wire::SubmitBody json;
  json.kind = wire::SubmitKind::json;
  json.category = "icache";
  json.archive_json = "{\"not\": \"validated here\"}";
  const wire::SubmitBody json2 = wire::decode_submit(wire::encode_submit(json));
  EXPECT_EQ(json2.kind, wire::SubmitKind::json);
  EXPECT_EQ(json2.archive_json, json.archive_json);
}

TEST(Wire, SubmitCarriesTheCollectionMode) {
  // v3: the collection-mode byte rides after the trace id.  All three modes
  // round-trip; anything above the known range is a typed decode error (a
  // future mode must bump the version, not smuggle through).
  for (const int mode : {0, 1, 2}) {
    wire::SubmitBody body;
    body.kind = wire::SubmitKind::packed;
    body.category = "branch";
    body.collection_mode = static_cast<std::uint8_t>(mode);
    body.event_names = {"EV_A"};
    body.repetitions = 1;
    body.slots = 1;
    body.values = {1.0};
    const wire::SubmitBody back =
        wire::decode_submit(wire::encode_submit(body));
    EXPECT_EQ(back.collection_mode, mode);
  }
  wire::SubmitBody bad;
  bad.kind = wire::SubmitKind::packed;
  bad.category = "branch";
  bad.collection_mode = 3;
  bad.event_names = {"EV_A"};
  bad.repetitions = 1;
  bad.slots = 1;
  bad.values = {1.0};
  EXPECT_THROW(wire::decode_submit(wire::encode_submit(bad)),
               wire::PayloadError);
}

TEST(Wire, SubmitDecoderRejectsTruncationAndTrailingGarbage) {
  wire::SubmitBody body;
  body.kind = wire::SubmitKind::packed;
  body.category = "branch";
  body.event_names = {"EV_A"};
  body.repetitions = 2;
  body.slots = 2;
  body.values = {1.0, 2.0, 3.0, 4.0};
  const std::string good = wire::encode_submit(body);
  EXPECT_THROW(wire::decode_submit(good.substr(0, good.size() - 3)),
               wire::PayloadError);
  EXPECT_THROW(wire::decode_submit(good + "x"), wire::PayloadError);
  EXPECT_THROW(wire::decode_submit(""), wire::PayloadError);
}

TEST(Wire, ErrorMessagesAreBoundedOnTheWire) {
  wire::ErrorBody body;
  body.request_id = 7;
  body.code = wire::ErrorCode::analysis_failed;
  body.message = std::string(100000, 'm');
  const wire::ErrorBody decoded = wire::decode_error(wire::encode_error(body));
  EXPECT_EQ(decoded.request_id, 7u);
  EXPECT_EQ(decoded.code, wire::ErrorCode::analysis_failed);
  // bounded_excerpt keeps kMaxErrorMessageBytes of the message and appends
  // a short truncation marker; decode_error budgets 32 bytes for it.
  EXPECT_LE(decoded.message.size(), wire::kMaxErrorMessageBytes + 32);
  EXPECT_LT(decoded.message.size(), body.message.size() / 10);
}

// --- session state machine ---------------------------------------------------

/// Scripted broker: protocol tests assert on how the session FRAMES broker
/// outcomes, not on real queue mechanics (ServiceCore has its own tests).
class FakeBroker final : public RequestBroker {
 public:
  SubmitOutcome submit_outcome;
  PollOutcome poll_outcome;
  bool cancel_outcome = true;
  std::size_t submits = 0, polls = 0, cancels = 0;

  SubmitOutcome submit(SessionId, wire::SubmitBody) override {
    ++submits;
    return submit_outcome;
  }
  PollOutcome poll(SessionId, std::uint64_t) override {
    ++polls;
    return poll_outcome;
  }
  bool cancel(SessionId, std::uint64_t) override {
    ++cancels;
    return cancel_outcome;
  }
};

void feed(Session& session, nanoseconds now, const std::string& bytes) {
  session.on_bytes(now, bytes.data(), bytes.size());
}

std::string hello() {
  return wire::encode_frame(wire::FrameType::hello, "test-client");
}

std::string minimal_submit() {
  wire::SubmitBody body;
  body.kind = wire::SubmitKind::json;
  body.category = "branch";
  body.archive_json = "{}";
  return wire::encode_frame(wire::FrameType::submit,
                            wire::encode_submit(body));
}

TEST(Session, HandshakeThenGoodbye) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  EXPECT_EQ(session.state(), Session::State::handshake);

  feed(session, 1ms, hello());
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::hello_ok);
  EXPECT_EQ(session.state(), Session::State::ready);

  feed(session, 2ms, wire::encode_frame(wire::FrameType::bye, ""));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::bye);
  EXPECT_TRUE(session.closed());
  EXPECT_TRUE(session.finished());
}

TEST(Session, TransitionTableRejectsOutOfStateFrames) {
  struct Case {
    std::string name;
    std::vector<std::string> preamble;  // frames to reach the state
    std::string offending;
  };
  const std::string poll_frame = [] {
    std::string p;
    wire::put_u64(p, 1);
    return wire::encode_frame(wire::FrameType::poll, p);
  }();
  const Case cases[] = {
      {"SUBMIT before HELLO", {}, minimal_submit()},
      {"POLL before HELLO", {}, poll_frame},
      {"BYE before HELLO", {}, wire::encode_frame(wire::FrameType::bye, "")},
      {"second HELLO", {hello()}, hello()},
      {"server-only type echoed back",
       {hello()},
       wire::encode_frame(wire::FrameType::hello_ok, "")},
  };
  for (const Case& c : cases) {
    FakeBroker broker;
    Session session(1, &broker, {}, 0ns);
    for (const auto& frame : c.preamble) feed(session, 0ns, frame);
    session.take_output();
    feed(session, 1ms, c.offending);
    const auto frames = decode_all(session.take_output());
    ASSERT_EQ(frames.size(), 1u) << c.name;
    EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_state) << c.name;
    EXPECT_TRUE(session.closed()) << c.name;
    EXPECT_EQ(broker.submits + broker.polls + broker.cancels, 0u) << c.name;
  }
}

TEST(Session, GarbageBytesYieldOneTypedErrorThenTeardown) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, "this is definitely not a catalyst-wire-v1 frame......");
  const auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::malformed_frame);
  EXPECT_TRUE(session.closed());
  // Later bytes are ignored, not crashed on.
  feed(session, 1ms, hello());
  EXPECT_TRUE(decode_all(session.take_output()).empty());
}

TEST(Session, BadCrcTearsDownWithTheRightCode) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  session.take_output();
  std::string corrupt = minimal_submit();
  corrupt.back() ^= 0x40;
  feed(session, 1ms, corrupt);
  const auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_crc);
  EXPECT_TRUE(session.closed());
}

TEST(Session, UndecodableSubmitPayloadIsRecoverable) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  session.take_output();
  // Well-framed (magic + CRC pass) but the payload is not a submission.
  feed(session, 1ms,
       wire::encode_frame(wire::FrameType::submit, "not a submit body"));
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_request);
  EXPECT_EQ(session.state(), Session::State::ready) << "session must survive";
  EXPECT_EQ(broker.submits, 0u);

  // And the connection still works afterwards.
  broker.submit_outcome.kind = SubmitOutcome::Kind::accepted;
  broker.submit_outcome.request_id = 9;
  feed(session, 2ms, minimal_submit());
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::accepted);
  wire::Get cursor(frames[0].payload);
  EXPECT_EQ(cursor.u64(), 9u);
}

TEST(Session, BrokerOutcomesAreFramedFaithfully) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  session.take_output();

  broker.submit_outcome.kind = SubmitOutcome::Kind::retry_after;
  broker.submit_outcome.retry_after = 50ms;
  feed(session, 1ms, minimal_submit());
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::retry_after);
  {
    wire::Get cursor(frames[0].payload);
    cursor.u64();  // request id slot (0)
    EXPECT_EQ(cursor.u64(), static_cast<std::uint64_t>(
                                nanoseconds(50ms).count()));
  }

  broker.submit_outcome.kind = SubmitOutcome::Kind::rejected;
  broker.submit_outcome.code = wire::ErrorCode::quota_exceeded;
  broker.submit_outcome.message = "too greedy";
  feed(session, 2ms, minimal_submit());
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  const wire::ErrorBody err = error_of(frames[0]);
  EXPECT_EQ(err.code, wire::ErrorCode::quota_exceeded);
  EXPECT_EQ(err.message, "too greedy");
  EXPECT_EQ(session.state(), Session::State::ready)
      << "quota rejection is recoverable";

  const auto poll_for = [](std::uint64_t id) {
    std::string p;
    wire::put_u64(p, id);
    return wire::encode_frame(wire::FrameType::poll, p);
  };
  broker.poll_outcome.kind = PollOutcome::Kind::queued;
  feed(session, 3ms, poll_for(4));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::pending);
  EXPECT_EQ(frames[0].payload[8], 0);  // phase byte after the u64 id

  broker.poll_outcome.kind = PollOutcome::Kind::analyzing;
  feed(session, 4ms, poll_for(4));
  frames = decode_all(session.take_output());
  EXPECT_EQ(frames[0].payload[8], 1);

  broker.poll_outcome.kind = PollOutcome::Kind::result;
  broker.poll_outcome.text = "the report";
  broker.poll_outcome.trace_id = 0xBEEF;
  feed(session, 5ms, poll_for(4));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::result);
  {
    wire::Get cursor(frames[0].payload);
    EXPECT_EQ(cursor.u64(), 4u);
    EXPECT_EQ(cursor.string(), "the report");
    EXPECT_EQ(cursor.u64(), 0xBEEFu) << "RESULT echoes the SUBMIT trace id";
  }

  broker.poll_outcome.kind = PollOutcome::Kind::unknown;
  feed(session, 6ms, poll_for(99));
  frames = decode_all(session.take_output());
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::unknown_request);

  const auto cancel_for = [](std::uint64_t id) {
    std::string p;
    wire::put_u64(p, id);
    return wire::encode_frame(wire::FrameType::cancel, p);
  };
  feed(session, 7ms, cancel_for(4));
  frames = decode_all(session.take_output());
  EXPECT_EQ(frames[0].type, wire::FrameType::cancelled);
  broker.cancel_outcome = false;
  feed(session, 8ms, cancel_for(99));
  frames = decode_all(session.take_output());
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::unknown_request);
  EXPECT_EQ(session.state(), Session::State::ready);
}

TEST(Session, StatsAndTraceAnswerInReadyState) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  session.take_output();

  // STATS: empty request, STATS_OK carrying one JSON string.  FakeBroker
  // inherits the RequestBroker defaults, so this also proves scripted
  // brokers stay source-compatible with the v2 telemetry hooks.
  feed(session, 1ms, wire::encode_frame(wire::FrameType::stats, ""));
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::stats_ok);
  {
    wire::Get cursor(frames[0].payload);
    const std::string json = cursor.string();
    cursor.expect_done();
    EXPECT_NE(json.find("\"format\": \"catalyst-metrics-v1\""),
              std::string::npos);
  }

  // STATS with trailing bytes: recoverable bad_request, session stays up.
  feed(session, 2ms, wire::encode_frame(wire::FrameType::stats, "junk"));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_request);
  EXPECT_EQ(session.state(), Session::State::ready);

  // TRACE: u64 id in, TRACE_OK echoing the id plus a Chrome fragment.
  std::string trace_payload;
  wire::put_u64(trace_payload, 42);
  feed(session, 3ms,
       wire::encode_frame(wire::FrameType::trace, trace_payload));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::trace_ok);
  {
    wire::Get cursor(frames[0].payload);
    EXPECT_EQ(cursor.u64(), 42u);
    EXPECT_NE(cursor.string().find("\"traceEvents\""), std::string::npos);
    cursor.expect_done();
  }

  // Truncated TRACE id: recoverable bad_request.
  feed(session, 4ms, wire::encode_frame(wire::FrameType::trace, "abc"));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_request);
  EXPECT_EQ(session.state(), Session::State::ready);

  // STATS before HELLO is a state-machine violation, not a scrape.
  FakeBroker broker2;
  Session fresh(2, &broker2, {}, 0ns);
  feed(fresh, 0ns, wire::encode_frame(wire::FrameType::stats, ""));
  frames = decode_all(fresh.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::bad_state);
  EXPECT_TRUE(fresh.closed());
}

TEST(Session, IdleTimeoutFiresExactly) {
  FakeBroker broker;
  Session::Limits limits;
  limits.idle_timeout = 30s;
  Session session(1, &broker, limits, 0ns);
  feed(session, 0ns, hello());
  session.take_output();

  session.on_tick(nanoseconds(30s));  // exactly at the limit: still alive
  EXPECT_FALSE(session.closed());
  session.on_tick(nanoseconds(30s) + 1ns);
  EXPECT_TRUE(session.closed());
  const auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::deadline_exceeded);
}

TEST(Session, SlowLorisDribbleIsCutOff) {
  FakeBroker broker;
  Session::Limits limits;
  limits.partial_frame_timeout = 5s;
  limits.idle_timeout = 1h;  // not the timer under test
  Session session(1, &broker, limits, 0ns);
  feed(session, 0ns, hello());
  session.take_output();

  // One header byte at t=1s starts the partial-frame stopwatch.
  const std::string frame = minimal_submit();
  feed(session, nanoseconds(1s), frame.substr(0, 1));
  // Another dribbled byte must NOT reset the stopwatch (that would let a
  // loris stay alive forever at one byte per timeout).
  feed(session, nanoseconds(3s), frame.substr(1, 1));
  session.on_tick(nanoseconds(1s) + 5s);
  EXPECT_FALSE(session.closed());
  session.on_tick(nanoseconds(1s) + 5s + 1ns);
  EXPECT_TRUE(session.closed());
  const auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::deadline_exceeded);
}

TEST(Session, CompletingAFrameDisarmsTheLorisStopwatch) {
  FakeBroker broker;
  Session::Limits limits;
  limits.partial_frame_timeout = 5s;
  limits.idle_timeout = 1h;
  Session session(1, &broker, limits, 0ns);
  feed(session, 0ns, hello());
  session.take_output();

  const std::string frame = minimal_submit();
  feed(session, nanoseconds(1s), frame.substr(0, 4));
  feed(session, nanoseconds(2s), frame.substr(4));  // frame completes
  session.take_output();
  session.on_tick(nanoseconds(2s) + 1min);  // way past the partial budget
  EXPECT_FALSE(session.closed())
      << "no partial frame is pending; only idle applies";
}

TEST(Session, SessionDeadlineCapsTheConnection) {
  FakeBroker broker;
  Session::Limits limits;
  limits.session_deadline = 10s;
  limits.idle_timeout = 1h;
  Session session(1, &broker, limits, nanoseconds(5s));
  feed(session, nanoseconds(5s), hello());
  session.take_output();
  // Fresh bytes don't extend an absolute lifetime cap: recent traffic at
  // t=14s does not save the session at t=15s+.
  feed(session, nanoseconds(14s), hello().substr(0, 0));
  session.on_tick(nanoseconds(15s) + 1ns);
  EXPECT_TRUE(session.closed());
  const auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::deadline_exceeded);
}

TEST(Session, ShutdownRefusesSubmitsButStillAnswersPolls) {
  FakeBroker broker;
  broker.poll_outcome.kind = PollOutcome::Kind::result;
  broker.poll_outcome.text = "late harvest";
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  session.take_output();
  session.begin_shutdown();

  feed(session, 1ms, minimal_submit());
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(error_of(frames[0]).code, wire::ErrorCode::shutting_down);
  EXPECT_EQ(broker.submits, 0u);
  EXPECT_EQ(session.state(), Session::State::ready);

  std::string p;
  wire::put_u64(p, 3);
  feed(session, 2ms, wire::encode_frame(wire::FrameType::poll, p));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, wire::FrameType::result);
}

TEST(Session, EofDropsUnsentOutput) {
  FakeBroker broker;
  Session session(1, &broker, {}, 0ns);
  feed(session, 0ns, hello());
  EXPECT_TRUE(session.has_output());
  session.on_eof();
  EXPECT_TRUE(session.finished());
  EXPECT_FALSE(session.has_output());
}

// --- ServiceCore -------------------------------------------------------------

/// Builds one REAL branch-category archive (once; the pipeline run is the
/// expensive part) so core tests can submit analyzable data.
const core::MeasurementArchive& branch_archive() {
  static const core::MeasurementArchive archive = [] {
    const auto setup = category_setup("branch");
    const auto machine = machine_by_name("saphira");
    const auto result = core::run_pipeline(*machine, setup->benchmark,
                                           setup->signatures, setup->options);
    return core::make_archive(*machine, setup->benchmark, result);
  }();
  return archive;
}

const std::string& branch_expected_text() {
  static const std::string text = [] {
    const auto setup = category_setup("branch");
    return render_result(core::analyze_archive(branch_archive(),
                                               setup->signatures,
                                               setup->options));
  }();
  return text;
}

ServiceCore::Options sync_core_options(faults::Clock* clock) {
  ServiceCore::Options options;
  options.workers = 0;  // tests drive execution synchronously via run_one()
  options.clock = clock;
  return options;
}

TEST(ServiceCore, SubmitRunPollRoundTripIsCollectOnce) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  const SubmitOutcome submitted =
      core.submit(7, packed_submit_from_archive(branch_archive(), "branch"));
  ASSERT_EQ(submitted.kind, SubmitOutcome::Kind::accepted);

  EXPECT_EQ(core.poll(7, submitted.request_id).kind,
            PollOutcome::Kind::queued);
  ASSERT_TRUE(core.run_one());
  const PollOutcome done = core.poll(7, submitted.request_id);
  ASSERT_EQ(done.kind, PollOutcome::Kind::result);
  EXPECT_EQ(done.text, branch_expected_text());
  // Collect-once: the entry (and its quota slot) was freed by that poll.
  EXPECT_EQ(core.poll(7, submitted.request_id).kind,
            PollOutcome::Kind::unknown);
  EXPECT_FALSE(core.run_one()) << "queue must be empty";
}

TEST(ServiceCore, SessionsAreIsolated) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  const SubmitOutcome submitted =
      core.submit(7, packed_submit_from_archive(branch_archive(), "branch"));
  ASSERT_EQ(submitted.kind, SubmitOutcome::Kind::accepted);
  // Another session's poll/cancel sees "no such request", not "someone
  // else's request".
  EXPECT_EQ(core.poll(8, submitted.request_id).kind,
            PollOutcome::Kind::unknown);
  EXPECT_FALSE(core.cancel(8, submitted.request_id));
  EXPECT_EQ(core.poll(7, submitted.request_id).kind,
            PollOutcome::Kind::queued);
}

TEST(ServiceCore, FullQueueLoadShedsWithRetryAfter) {
  faults::FakeClock clock;
  ServiceCore::Options options = sync_core_options(&clock);
  options.queue_capacity = 2;
  options.retry_after_hint = std::chrono::milliseconds(75);
  ServiceCore core(options);
  const auto body = packed_submit_from_archive(branch_archive(), "branch");
  EXPECT_EQ(core.submit(1, body).kind, SubmitOutcome::Kind::accepted);
  EXPECT_EQ(core.submit(2, body).kind, SubmitOutcome::Kind::accepted);
  const SubmitOutcome shed = core.submit(3, body);
  EXPECT_EQ(shed.kind, SubmitOutcome::Kind::retry_after);
  EXPECT_EQ(shed.retry_after, std::chrono::nanoseconds(75ms));
  EXPECT_EQ(core.queued_count(), 2u);
}

TEST(ServiceCore, PerSessionQuotasRejectTyped) {
  faults::FakeClock clock;
  ServiceCore::Options options = sync_core_options(&clock);
  options.max_inflight_per_session = 2;
  ServiceCore core(options);
  const auto body = packed_submit_from_archive(branch_archive(), "branch");
  EXPECT_EQ(core.submit(5, body).kind, SubmitOutcome::Kind::accepted);
  EXPECT_EQ(core.submit(5, body).kind, SubmitOutcome::Kind::accepted);
  const SubmitOutcome third = core.submit(5, body);
  EXPECT_EQ(third.kind, SubmitOutcome::Kind::rejected);
  EXPECT_EQ(third.code, wire::ErrorCode::quota_exceeded);
  // A DIFFERENT session is unaffected: quotas are the isolation mechanism,
  // not global throttling.
  EXPECT_EQ(core.submit(6, body).kind, SubmitOutcome::Kind::accepted);

  ServiceCore::Options byte_options = sync_core_options(&clock);
  byte_options.max_bytes_per_session = 16;  // smaller than any submission
  ServiceCore byte_core(byte_options);
  const SubmitOutcome fat = byte_core.submit(5, body);
  EXPECT_EQ(fat.kind, SubmitOutcome::Kind::rejected);
  EXPECT_EQ(fat.code, wire::ErrorCode::quota_exceeded);
}

TEST(ServiceCore, CancelQueuedSkipsExecution) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  const SubmitOutcome submitted =
      core.submit(7, packed_submit_from_archive(branch_archive(), "branch"));
  ASSERT_EQ(submitted.kind, SubmitOutcome::Kind::accepted);
  EXPECT_TRUE(core.cancel(7, submitted.request_id));
  EXPECT_FALSE(core.run_one()) << "cancelled request must leave the queue";
  EXPECT_EQ(core.poll(7, submitted.request_id).kind,
            PollOutcome::Kind::cancelled);
  // Terminal cancel is an idempotent no-op; unknown ids are not.
  EXPECT_FALSE(core.cancel(7, 424242));
}

TEST(ServiceCore, RequestDeadlineCancelsTheAnalysisMidPipeline) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  // 1ns budget: FakeClock advances 1us per query, so the first stage
  // boundary's check_cancel already sees the deadline passed.
  const SubmitOutcome submitted = core.submit(
      7, packed_submit_from_archive(branch_archive(), "branch", 1));
  ASSERT_EQ(submitted.kind, SubmitOutcome::Kind::accepted);
  ASSERT_TRUE(core.run_one());
  const PollOutcome done = core.poll(7, submitted.request_id);
  ASSERT_EQ(done.kind, PollOutcome::Kind::failed);
  EXPECT_EQ(done.code, wire::ErrorCode::deadline_exceeded);
}

TEST(ServiceCore, BadSubmissionsFailTypedNotThrown) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));

  auto unknown_cat = packed_submit_from_archive(branch_archive(), "no_such");
  const SubmitOutcome s1 = core.submit(7, std::move(unknown_cat));
  ASSERT_EQ(s1.kind, SubmitOutcome::Kind::accepted);
  ASSERT_TRUE(core.run_one());
  const PollOutcome p1 = core.poll(7, s1.request_id);
  ASSERT_EQ(p1.kind, PollOutcome::Kind::failed);
  EXPECT_EQ(p1.code, wire::ErrorCode::bad_request);

  wire::SubmitBody garbage_json;
  garbage_json.kind = wire::SubmitKind::json;
  garbage_json.category = "branch";
  garbage_json.archive_json = "{\"definitely\": \"not an archive\"}";
  const SubmitOutcome s2 = core.submit(7, std::move(garbage_json));
  ASSERT_EQ(s2.kind, SubmitOutcome::Kind::accepted);
  ASSERT_TRUE(core.run_one());
  const PollOutcome p2 = core.poll(7, s2.request_id);
  ASSERT_EQ(p2.kind, PollOutcome::Kind::failed);
  EXPECT_EQ(p2.code, wire::ErrorCode::analysis_failed);
  EXPECT_LE(p2.message.size(), wire::kMaxErrorMessageBytes);

  auto wrong_slots = packed_submit_from_archive(branch_archive(), "branch");
  wrong_slots.slots -= 1;
  wrong_slots.values.resize(static_cast<std::size_t>(wrong_slots.slots) *
                            wrong_slots.repetitions *
                            wrong_slots.event_names.size());
  const SubmitOutcome s3 = core.submit(7, std::move(wrong_slots));
  ASSERT_EQ(s3.kind, SubmitOutcome::Kind::accepted);
  ASSERT_TRUE(core.run_one());
  const PollOutcome p3 = core.poll(7, s3.request_id);
  ASSERT_EQ(p3.kind, PollOutcome::Kind::failed);
  EXPECT_EQ(p3.code, wire::ErrorCode::bad_request);
}

TEST(ServiceCore, ForgetSessionReleasesItsWork) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  const auto body = packed_submit_from_archive(branch_archive(), "branch");
  const SubmitOutcome a = core.submit(7, body);
  const SubmitOutcome b = core.submit(7, body);
  ASSERT_EQ(a.kind, SubmitOutcome::Kind::accepted);
  ASSERT_EQ(b.kind, SubmitOutcome::Kind::accepted);
  core.forget_session(7);
  EXPECT_EQ(core.queued_count(), 0u);
  EXPECT_EQ(core.poll(7, a.request_id).kind, PollOutcome::Kind::unknown);
  EXPECT_FALSE(core.run_one());
}

TEST(ServiceCore, ShutdownDrainsCheckpointsAndRestores) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "/catalyst_service_ckpt_test";
  fs::remove_all(dir);
  faults::FakeClock clock;

  std::string first_text;
  std::uint64_t queued_id_1 = 0, queued_id_2 = 0;
  {
    ServiceCore::Options options = sync_core_options(&clock);
    options.checkpoint_dir = dir;
    ServiceCore core(options);
    EXPECT_EQ(core.restored_requests(), 0u);
    const auto body = packed_submit_from_archive(branch_archive(), "branch");
    const SubmitOutcome a = core.submit(7, body);
    const SubmitOutcome b = core.submit(7, body);
    const SubmitOutcome c = core.submit(7, body);
    ASSERT_EQ(a.kind, SubmitOutcome::Kind::accepted);
    queued_id_1 = b.request_id;
    queued_id_2 = c.request_id;

    ASSERT_TRUE(core.run_one());  // request `a` finishes before the SIGTERM
    core.begin_shutdown();
    core.begin_shutdown();  // idempotent

    // Drained: nothing queued or running; `a`'s result survives to be
    // polled; the queued-unstarted pair is on disk AND answers with the
    // typed truth.
    EXPECT_TRUE(core.drained());
    const PollOutcome done = core.poll(7, a.request_id);
    ASSERT_EQ(done.kind, PollOutcome::Kind::result);
    first_text = done.text;
    const PollOutcome parked = core.poll(7, queued_id_1);
    ASSERT_EQ(parked.kind, PollOutcome::Kind::failed);
    EXPECT_EQ(parked.code, wire::ErrorCode::shutting_down);
    EXPECT_TRUE(fs::exists(dir + "/request-" + std::to_string(queued_id_1) +
                           ".json"));
    EXPECT_TRUE(fs::exists(dir + "/request-" + std::to_string(queued_id_2) +
                           ".json"));
    const SubmitOutcome late = core.submit(7, body);
    EXPECT_EQ(late.kind, SubmitOutcome::Kind::rejected);
    EXPECT_EQ(late.code, wire::ErrorCode::shutting_down);
  }
  EXPECT_EQ(first_text, branch_expected_text());

  // The restarted daemon replays the checkpointed queue in arrival order,
  // under fresh ids' namespace (restored ids are preserved).
  {
    ServiceCore::Options options = sync_core_options(&clock);
    options.checkpoint_dir = dir;
    ServiceCore core(options);
    EXPECT_EQ(core.restored_requests(), 2u);
    EXPECT_EQ(core.queued_count(), 2u);
    // Restored requests are session-0 orphans: ANY session can poll them.
    EXPECT_EQ(core.poll(42, queued_id_1).kind, PollOutcome::Kind::queued);
    ASSERT_TRUE(core.run_one());
    ASSERT_TRUE(core.run_one());
    EXPECT_FALSE(core.run_one());
    const PollOutcome r1 = core.poll(42, queued_id_1);
    const PollOutcome r2 = core.poll(43, queued_id_2);
    ASSERT_EQ(r1.kind, PollOutcome::Kind::result);
    ASSERT_EQ(r2.kind, PollOutcome::Kind::result);
    EXPECT_EQ(r1.text, branch_expected_text());
    EXPECT_EQ(r2.text, branch_expected_text());
    // Consumed checkpoints are gone: a THIRD daemon restores nothing.
    EXPECT_FALSE(fs::exists(dir + "/request-" + std::to_string(queued_id_1) +
                            ".json"));
  }
  {
    ServiceCore::Options options = sync_core_options(&clock);
    options.checkpoint_dir = dir;
    ServiceCore core(options);
    EXPECT_EQ(core.restored_requests(), 0u);
  }
  fs::remove_all(dir);
}

TEST(ServiceCore, CorruptCheckpointIsSkippedNotFatal) {
  namespace fs = std::filesystem;
  const std::string dir =
      ::testing::TempDir() + "/catalyst_service_ckpt_corrupt";
  fs::remove_all(dir);
  fs::create_directories(dir);
  core::write_text_file(dir + "/request-5.json", "{torn write");
  core::write_text_file(dir + "/request-6.json",
                        "{\"format\": \"something-else\"}");
  faults::FakeClock clock;
  ServiceCore::Options options = sync_core_options(&clock);
  options.checkpoint_dir = dir;
  ServiceCore core(options);
  EXPECT_EQ(core.restored_requests(), 0u);
  // The foreign-format file is left alone; the torn one is simply not
  // restorable (the request is lost, the daemon is not).
  EXPECT_TRUE(fs::exists(dir + "/request-6.json"));
  fs::remove_all(dir);
}

// --- byte identity -----------------------------------------------------------

// The acceptance bar: for every Tables V-VIII category, the report rendered
// through the service path equals the CLI-path rendering of the same
// archive, byte for byte.  Both submission encodings are exercised (the
// packed fast path and the JSON archive path must agree with the CLI and
// therefore with each other).
TEST(ServiceByteIdentity, TablesCategoriesMatchCliRendering) {
  faults::FakeClock clock;
  ServiceCore core(sync_core_options(&clock));
  const char* const categories[] = {"cpu_flops", "branch", "dcache",
                                    "icache"};
  std::size_t index = 0;
  for (const char* category : categories) {
    SCOPED_TRACE(category);
    const auto setup = category_setup(category);
    ASSERT_TRUE(setup.has_value());
    const auto machine = machine_by_name(setup->default_machine);
    const auto result = core::run_pipeline(*machine, setup->benchmark,
                                           setup->signatures, setup->options);
    const core::MeasurementArchive archive =
        core::make_archive(*machine, setup->benchmark, result);
    const std::string cli_text = render_result(
        core::analyze_archive(archive, setup->signatures, setup->options));

    wire::SubmitBody body;
    if (index % 2 == 0) {
      body = packed_submit_from_archive(archive, category);
    } else {
      body.kind = wire::SubmitKind::json;
      body.category = category;
      body.archive_json = core::save_archive(archive);
    }
    // Round-trip through the WIRE encoding too: what the daemon decodes is
    // what a real client would have sent.
    const SubmitOutcome submitted =
        core.submit(1, wire::decode_submit(wire::encode_submit(body)));
    ASSERT_EQ(submitted.kind, SubmitOutcome::Kind::accepted);
    ASSERT_TRUE(core.run_one());
    const PollOutcome done = core.poll(1, submitted.request_id);
    ASSERT_EQ(done.kind, PollOutcome::Kind::result);
    EXPECT_EQ(done.text, cli_text)
        << "service path must render bit-identically to the CLI path";
    ++index;
  }
}

}  // namespace
}  // namespace catalyst::service
