// Unit + property tests for the one-sided Jacobi SVD.
#include "linalg/svd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/blas.hpp"
#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

Matrix reconstruct(const SvdResult& res) {
  Matrix us = res.u;
  for (index_t j = 0; j < us.cols(); ++j) {
    scal(res.singular_values[static_cast<std::size_t>(j)], us.col(j));
  }
  Matrix out(us.rows(), res.v.rows());
  gemm(1.0, us, false, res.v, true, 0.0, out);
  return out;
}

TEST(Svd, DiagonalMatrix) {
  Matrix a{{3, 0}, {0, 4}};
  auto res = svd(a);
  ASSERT_TRUE(res.converged);
  EXPECT_NEAR(res.singular_values[0], 4.0, 1e-12);
  EXPECT_NEAR(res.singular_values[1], 3.0, 1e-12);
}

TEST(Svd, KnownRankOneMatrix) {
  // A = u v^T with ||u|| = sqrt(5), ||v|| = sqrt(2): sigma = sqrt(10).
  Matrix a = Matrix::from_columns({{1, 2}, {1, 2}});
  auto res = svd(a);
  EXPECT_NEAR(res.singular_values[0], std::sqrt(10.0), 1e-12);
  EXPECT_NEAR(res.singular_values[1], 0.0, 1e-12);
}

class SvdShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {
};

TEST_P(SvdShapes, ReconstructsAndIsOrthogonal) {
  const auto [m, n, seed] = GetParam();
  Matrix a = random_gaussian(m, n, static_cast<std::uint64_t>(seed));
  auto res = svd(a);
  ASSERT_TRUE(res.converged);
  EXPECT_LT(Matrix::max_abs_diff(reconstruct(res), a), 1e-10);
  // U^T U == I, V^T V == I.
  Matrix utu = matmul_tn(res.u, res.u);
  Matrix vtv = matmul_tn(res.v, res.v);
  EXPECT_LT(Matrix::max_abs_diff(utu, Matrix::identity(utu.rows())), 1e-10);
  EXPECT_LT(Matrix::max_abs_diff(vtv, Matrix::identity(vtv.rows())), 1e-10);
  // Descending order.
  for (std::size_t i = 1; i < res.singular_values.size(); ++i) {
    EXPECT_LE(res.singular_values[i], res.singular_values[i - 1] + 1e-14);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapes,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(6, 6, 2),
                      std::make_tuple(12, 5, 3), std::make_tuple(5, 12, 4),
                      std::make_tuple(40, 16, 5), std::make_tuple(16, 40, 6)));

TEST(Svd, SingularValuesMatchPlantedSpectrum) {
  // random_with_condition builds log-spaced singular values in [1/c, 1].
  const double cond = 1e6;
  Matrix a = random_with_condition(30, 8, cond, 77);
  auto res = svd(a);
  EXPECT_NEAR(res.singular_values.front(), 1.0, 1e-8);
  EXPECT_NEAR(res.singular_values.back(), 1.0 / cond, 1e-8 / cond * 100);
}

TEST(Svd, FrobeniusNormIdentity) {
  // ||A||_F^2 == sum sigma_i^2.
  Matrix a = random_gaussian(9, 7, 11);
  auto res = svd(a);
  double ss = 0.0;
  for (double s : res.singular_values) ss += s * s;
  EXPECT_NEAR(std::sqrt(ss), norm_frobenius(a), 1e-11);
}

TEST(Svd, AgreesWithPowerIterationEstimate) {
  Matrix a = random_gaussian(25, 10, 13);
  auto res = svd(a);
  EXPECT_NEAR(res.singular_values[0], norm_two_estimate(a, 200), 1e-6);
}

TEST(Svd, EmptyMatrix) {
  auto res = svd(Matrix{});
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(res.singular_values.empty());
}

TEST(Svd, RejectsBadArguments) {
  Matrix a(2, 2, 1.0);
  EXPECT_THROW(svd(a, 0.0), ArgumentError);
  EXPECT_THROW(svd(a, 1e-12, 0), ArgumentError);
}

TEST(Cond2, IdentityHasConditionOne) {
  EXPECT_NEAR(cond2(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(Cond2, MatchesPlantedCondition) {
  const double cond = 1e4;
  Matrix a = random_with_condition(20, 6, cond, 21);
  EXPECT_NEAR(cond2(a) / cond, 1.0, 1e-6);
}

TEST(Cond2, SingularOrNearSingularIsHuge) {
  // An exactly zero column gives sigma_min == 0 -> infinity.
  Matrix exact = Matrix::from_columns({{1, 0, 0}, {0, 0, 0}});
  EXPECT_TRUE(std::isinf(cond2(exact)));
  // A numerically rank-deficient random product lands at roundoff scale.
  Matrix a = random_rank_deficient(8, 5, 3, 9);
  EXPECT_GT(cond2(a), 1e12);
  EXPECT_EQ(cond2(Matrix{}), 0.0);
}

class RankSweep : public ::testing::TestWithParam<int> {};

TEST_P(RankSweep, NumericalRankMatchesConstruction) {
  const int r = GetParam();
  Matrix a = random_rank_deficient(15, 10, r, 100 + r);
  EXPECT_EQ(numerical_rank(a), r);
}

INSTANTIATE_TEST_SUITE_P(Ranks, RankSweep,
                         ::testing::Values(0, 1, 3, 5, 7, 10));

TEST(NumericalRank, AgreesWithQrcpOnEventLikeData) {
  // The analysis cross-check: an X-like matrix with duplicated / combined
  // columns must get the same rank from SVD and from QRCP.
  Matrix x = Matrix::from_columns({
      {1, 0, 0, 0},
      {0, 1, 0, 0},
      {1, 1, 0, 0},   // combination
      {2, 0, 0, 0},   // scaled duplicate
      {0, 0, 1, 0},
  });
  EXPECT_EQ(numerical_rank(x), 3);
}

}  // namespace
}  // namespace catalyst::linalg
