// Fuzz harness for core::json and the measurement-archive loaders.
//
// Three seeded generators, 50k+ total iterations in the default run:
//   * random bytes      -> json::parse must return a Value or throw
//                          JsonError -- never crash, never throw anything
//                          else;
//   * structure-aware   -> byte-level mutations (truncate / flip / insert /
//     archive mutations    delete / splice) of valid v1 and v2 measurement
//                          archives -> load_archive must produce an archive
//                          or throw one of its documented error types;
//   * random documents  -> parse(dump(v)) round-trips every generated
//                          Value exactly.
//
// Any failure prints the offending input as a hex dump plus the
// CATALYST_SEED replay banner (seed_util.hpp); CATALYST_SEED=<n> re-runs
// exactly that input.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "core/io.hpp"
#include "core/json.hpp"
#include "linalg/matrix.hpp"
#include "seed_util.hpp"

namespace catalyst::core {
namespace {

std::string hex_dump(const std::string& bytes) {
  std::ostringstream out;
  out << bytes.size() << " bytes:\n";
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    char offset[16];
    std::snprintf(offset, sizeof offset, "%06zx  ", row);
    out << offset;
    for (std::size_t i = row; i < row + 16; ++i) {
      if (i < bytes.size()) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "%02x ",
                      static_cast<unsigned char>(bytes[i]));
        out << hex;
      } else {
        out << "   ";
      }
    }
    out << " |";
    for (std::size_t i = row; i < row + 16 && i < bytes.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[i]);
      out << (std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out << "|\n";
  }
  return out.str();
}

// Byte palette biased toward JSON-significant characters so random inputs
// reach deep into the parser instead of failing on byte one.
std::string random_bytes(std::mt19937_64& rng) {
  static constexpr char kPalette[] =
      "{}[]\",:.0123456789-+eE \t\n\\/tfnu"
      "truefalsenull\"\\u00ff";
  std::uniform_int_distribution<std::size_t> len_dist(0, 96);
  std::uniform_int_distribution<int> mode_dist(0, 3);
  std::uniform_int_distribution<int> palette_dist(
      0, sizeof kPalette - 2);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out;
  const std::size_t len = len_dist(rng);
  for (std::size_t i = 0; i < len; ++i) {
    // Mostly palette bytes, sometimes arbitrary ones (embedded NUL, high
    // bit, control characters).
    if (mode_dist(rng) != 0) {
      out.push_back(kPalette[palette_dist(rng)]);
    } else {
      out.push_back(static_cast<char>(byte_dist(rng)));
    }
  }
  return out;
}

std::string mutate(const std::string& doc, std::mt19937_64& rng) {
  std::string out = doc;
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const int mutations = 1 + static_cast<int>(rng() % 4);
  for (int m = 0; m < mutations && !out.empty(); ++m) {
    std::uniform_int_distribution<std::size_t> pos_dist(0, out.size() - 1);
    const std::size_t pos = pos_dist(rng);
    switch (op_dist(rng)) {
      case 0:  // truncate
        out.resize(pos);
        break;
      case 1:  // flip one byte
        out[pos] = static_cast<char>(byte_dist(rng));
        break;
      case 2:  // insert a random byte
        out.insert(pos, 1, static_cast<char>(byte_dist(rng)));
        break;
      case 3:  // delete a short span
        out.erase(pos, 1 + rng() % 8);
        break;
      default: {  // splice: duplicate a short span somewhere else
        const std::size_t span = 1 + rng() % 12;
        out.insert(pos_dist(rng) % (out.size() + 1),
                   out.substr(pos, span));
        break;
      }
    }
  }
  return out;
}

/// A well-formed v1 measurement archive (built by hand: the fuzz target is
/// the LOADER, so no pipeline run is needed).
std::string base_archive_v1() {
  MeasurementArchive archive;
  archive.format_version = "catalyst-measurements-v1";
  archive.machine_name = "fuzz-machine";
  archive.benchmark_name = "fuzz-bench";
  archive.slot_names = {"s0", "s1", "s2"};
  archive.basis_labels = {"D0", "D1"};
  archive.expectation = linalg::Matrix(3, 2, 0.0);
  for (linalg::index_t r = 0; r < 3; ++r) {
    for (linalg::index_t c = 0; c < 2; ++c) {
      archive.expectation(r, c) = static_cast<double>(2 * r + c + 1);
    }
  }
  archive.event_names = {"EV_A", "EV_B"};
  archive.measurements = {
      {{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}},
      {{4.0, 5.0, 6.0}, {4.0, 5.5, 6.0}},
  };
  return save_archive(archive, 2);
}

std::string base_archive_v2() {
  MeasurementArchive archive = load_archive(base_archive_v1());
  archive.format_version.clear();  // let the writer pick v2
  archive.quarantined = {"EV_Q"};
  return save_archive(archive, 2);
}

/// Random JSON document generator for the round-trip property.
json::Value random_value(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> type_dist(0, depth > 2 ? 3 : 5);
  std::uniform_int_distribution<int> size_dist(0, 4);
  std::uniform_real_distribution<double> num_dist(-1e6, 1e6);
  switch (type_dist(rng)) {
    case 0: return json::Value();
    case 1: return json::Value(rng() % 2 == 0);
    case 2: return json::Value(num_dist(rng));
    case 3: {
      std::string s;
      const std::size_t n = rng() % 12;
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(' ' + rng() % 95));
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Value arr = json::Value::array();
      const int n = size_dist(rng);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return arr;
    }
    default: {
      json::Value obj = json::Value::object();
      const int n = size_dist(rng);
      for (int i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng() % 16)] = random_value(rng, depth + 1);
      }
      return obj;
    }
  }
}

TEST(JsonFuzz, RandomBytesNeverCrashTheParser) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 50000)) {
    std::mt19937_64 rng(seed);
    const std::string input = random_bytes(rng);
    try {
      const json::Value value = json::parse(input);
      (void)json::dump(value);  // whatever parsed must also serialize
    } catch (const json::JsonError&) {
      // Documented failure mode.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "json::parse threw "
             << e.what() << " (not a JsonError) on input\n"
             << hex_dump(input);
    }
  }
}

TEST(JsonFuzz, MutatedArchivesNeverCrashTheLoader) {
  const std::string bases[] = {base_archive_v1(), base_archive_v2()};
  for (const std::uint64_t seed : testing::sweep_seeds(1, 6000)) {
    std::mt19937_64 rng(seed);
    const std::string input = mutate(bases[seed % 2], rng);
    try {
      const MeasurementArchive archive = load_archive(input);
      EXPECT_EQ(archive.event_names.size(), archive.measurements.size())
          << testing::seed_banner(seed) << hex_dump(input);
    } catch (const json::JsonError&) {
      // ArchiveError derives from JsonError; both are documented.
    } catch (const std::invalid_argument&) {
      // Documented for version/shape problems in well-formed JSON.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "load_archive threw "
             << e.what() << " (undocumented type) on input\n"
             << hex_dump(input);
    }
  }
}

TEST(JsonFuzz, GeneratedDocumentsRoundTripExactly) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 2000)) {
    std::mt19937_64 rng(seed);
    const json::Value value = random_value(rng, 0);
    for (const int indent : {0, 2}) {
      const std::string text = json::dump(value, indent);
      try {
        EXPECT_TRUE(json::parse(text) == value)
            << testing::seed_banner(seed) << "round-trip mismatch for\n"
            << hex_dump(text);
      } catch (const std::exception& e) {
        FAIL() << testing::seed_banner(seed) << "parse of dump output threw "
               << e.what() << "\n"
               << hex_dump(text);
      }
    }
  }
}

}  // namespace
}  // namespace catalyst::core
