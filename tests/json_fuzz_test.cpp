// Fuzz harness for core::json and the measurement-archive loaders.
//
// Three seeded generators, 50k+ total iterations in the default run:
//   * random bytes      -> json::parse must return a Value or throw
//                          JsonError -- never crash, never throw anything
//                          else;
//   * structure-aware   -> byte-level mutations (truncate / flip / insert /
//     archive mutations    delete / splice) of valid v1 and v2 measurement
//                          archives -> load_archive must produce an archive
//                          or throw one of its documented error types;
//   * random documents  -> parse(dump(v)) round-trips every generated
//                          Value exactly.
//
// Any failure prints the offending input as a hex dump plus the
// CATALYST_SEED replay banner (seed_util.hpp); CATALYST_SEED=<n> re-runs
// exactly that input.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>

#include "core/io.hpp"
#include "core/json.hpp"
#include "linalg/matrix.hpp"
#include "seed_util.hpp"

namespace catalyst::core {
namespace {

std::string hex_dump(const std::string& bytes) {
  std::ostringstream out;
  out << bytes.size() << " bytes:\n";
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    char offset[16];
    std::snprintf(offset, sizeof offset, "%06zx  ", row);
    out << offset;
    for (std::size_t i = row; i < row + 16; ++i) {
      if (i < bytes.size()) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "%02x ",
                      static_cast<unsigned char>(bytes[i]));
        out << hex;
      } else {
        out << "   ";
      }
    }
    out << " |";
    for (std::size_t i = row; i < row + 16 && i < bytes.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[i]);
      out << (std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out << "|\n";
  }
  return out.str();
}

// Byte palette biased toward JSON-significant characters so random inputs
// reach deep into the parser instead of failing on byte one.
std::string random_bytes(std::mt19937_64& rng) {
  static constexpr char kPalette[] =
      "{}[]\",:.0123456789-+eE \t\n\\/tfnu"
      "truefalsenull\"\\u00ff";
  std::uniform_int_distribution<std::size_t> len_dist(0, 96);
  std::uniform_int_distribution<int> mode_dist(0, 3);
  std::uniform_int_distribution<int> palette_dist(
      0, sizeof kPalette - 2);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out;
  const std::size_t len = len_dist(rng);
  for (std::size_t i = 0; i < len; ++i) {
    // Mostly palette bytes, sometimes arbitrary ones (embedded NUL, high
    // bit, control characters).
    if (mode_dist(rng) != 0) {
      out.push_back(kPalette[palette_dist(rng)]);
    } else {
      out.push_back(static_cast<char>(byte_dist(rng)));
    }
  }
  return out;
}

std::string mutate(const std::string& doc, std::mt19937_64& rng) {
  std::string out = doc;
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const int mutations = 1 + static_cast<int>(rng() % 4);
  for (int m = 0; m < mutations && !out.empty(); ++m) {
    std::uniform_int_distribution<std::size_t> pos_dist(0, out.size() - 1);
    const std::size_t pos = pos_dist(rng);
    switch (op_dist(rng)) {
      case 0:  // truncate
        out.resize(pos);
        break;
      case 1:  // flip one byte
        out[pos] = static_cast<char>(byte_dist(rng));
        break;
      case 2:  // insert a random byte
        out.insert(pos, 1, static_cast<char>(byte_dist(rng)));
        break;
      case 3:  // delete a short span
        out.erase(pos, 1 + rng() % 8);
        break;
      default: {  // splice: duplicate a short span somewhere else
        const std::size_t span = 1 + rng() % 12;
        out.insert(pos_dist(rng) % (out.size() + 1),
                   out.substr(pos, span));
        break;
      }
    }
  }
  return out;
}

/// A well-formed v1 measurement archive (built by hand: the fuzz target is
/// the LOADER, so no pipeline run is needed).
std::string base_archive_v1() {
  MeasurementArchive archive;
  archive.format_version = "catalyst-measurements-v1";
  archive.machine_name = "fuzz-machine";
  archive.benchmark_name = "fuzz-bench";
  archive.slot_names = {"s0", "s1", "s2"};
  archive.basis_labels = {"D0", "D1"};
  archive.expectation = linalg::Matrix(3, 2, 0.0);
  for (linalg::index_t r = 0; r < 3; ++r) {
    for (linalg::index_t c = 0; c < 2; ++c) {
      archive.expectation(r, c) = static_cast<double>(2 * r + c + 1);
    }
  }
  archive.event_names = {"EV_A", "EV_B"};
  archive.measurements = {
      {{1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}},
      {{4.0, 5.0, 6.0}, {4.0, 5.5, 6.0}},
  };
  return save_archive(archive, 2);
}

std::string base_archive_v2() {
  MeasurementArchive archive = load_archive(base_archive_v1());
  archive.format_version.clear();  // let the writer pick v2
  archive.quarantined = {"EV_Q"};
  return save_archive(archive, 2);
}

/// A v2 archive carrying a sample trace (the sampling-mode payload).
std::string base_archive_sampled() {
  MeasurementArchive archive = load_archive(base_archive_v1());
  archive.format_version.clear();
  archive.collection_mode = vpapi::CollectionMode::strobed;
  vpapi::SampleTrace trace;
  trace.mode = vpapi::CollectionMode::strobed;
  trace.schedule.kernel_span_ns = 1000;
  trace.schedule.period_ns = 300;
  trace.schedule.short_period_ns = 100;
  trace.kernels = 3;
  vpapi::RunTrace run;
  run.run_id = 1;
  run.events = {"EV_A", "EV_B"};
  run.samples = {{300, {1.0, 2.0}}, {400, {2.0, 3.0}}, {3000, {9.0, 9.0}}};
  trace.runs.push_back(run);
  archive.sample_trace = std::move(trace);
  return save_archive(archive, 2);
}

/// Random JSON document generator for the round-trip property.
json::Value random_value(std::mt19937_64& rng, int depth) {
  std::uniform_int_distribution<int> type_dist(0, depth > 2 ? 3 : 5);
  std::uniform_int_distribution<int> size_dist(0, 4);
  std::uniform_real_distribution<double> num_dist(-1e6, 1e6);
  switch (type_dist(rng)) {
    case 0: return json::Value();
    case 1: return json::Value(rng() % 2 == 0);
    case 2: return json::Value(num_dist(rng));
    case 3: {
      std::string s;
      const std::size_t n = rng() % 12;
      for (std::size_t i = 0; i < n; ++i) {
        s.push_back(static_cast<char>(' ' + rng() % 95));
      }
      return json::Value(std::move(s));
    }
    case 4: {
      json::Value arr = json::Value::array();
      const int n = size_dist(rng);
      for (int i = 0; i < n; ++i) arr.push_back(random_value(rng, depth + 1));
      return arr;
    }
    default: {
      json::Value obj = json::Value::object();
      const int n = size_dist(rng);
      for (int i = 0; i < n; ++i) {
        obj["k" + std::to_string(rng() % 16)] = random_value(rng, depth + 1);
      }
      return obj;
    }
  }
}

TEST(JsonFuzz, RandomBytesNeverCrashTheParser) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 50000)) {
    std::mt19937_64 rng(seed);
    const std::string input = random_bytes(rng);
    try {
      const json::Value value = json::parse(input);
      (void)json::dump(value);  // whatever parsed must also serialize
    } catch (const json::JsonError&) {
      // Documented failure mode.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "json::parse threw "
             << e.what() << " (not a JsonError) on input\n"
             << hex_dump(input);
    }
  }
}

TEST(JsonFuzz, MutatedArchivesNeverCrashTheLoader) {
  const std::string bases[] = {base_archive_v1(), base_archive_v2(),
                               base_archive_sampled()};
  for (const std::uint64_t seed : testing::sweep_seeds(1, 6000)) {
    std::mt19937_64 rng(seed);
    const std::string input = mutate(bases[seed % 3], rng);
    try {
      const MeasurementArchive archive = load_archive(input);
      EXPECT_EQ(archive.event_names.size(), archive.measurements.size())
          << testing::seed_banner(seed) << hex_dump(input);
    } catch (const json::JsonError&) {
      // ArchiveError derives from JsonError; both are documented.
    } catch (const std::invalid_argument&) {
      // Documented for version/shape problems in well-formed JSON.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "load_archive threw "
             << e.what() << " (undocumented type) on input\n"
             << hex_dump(input);
    }
  }
}

TEST(JsonFuzz, MutatedSampleTraceFieldsFailTypedNeverCrash) {
  // Structure-aware mutations aimed at the sample-trace payload: instead of
  // flipping bytes, rewrite the semantic fields the codec validates (mode
  // string, schedule spans, sample widths/timestamps, container types) and
  // require a typed rejection or a successful load -- never a crash, never
  // an undocumented exception type.
  const json::Value base = json::parse(base_archive_sampled());

  auto mk_sample = [](json::Value t, std::initializer_list<double> vals) {
    json::Value js = json::Value::object();
    js["t"] = std::move(t);
    json::Value arr = json::Value::array();
    for (const double x : vals) arr.push_back(x);
    js["values"] = std::move(arr);
    return js;
  };
  auto mk_schedule = [](json::Value span, json::Value period,
                        json::Value short_period, json::Value dither) {
    json::Value s = json::Value::object();
    s["kernel_span_ns"] = std::move(span);
    s["period_ns"] = std::move(period);
    s["short_period_ns"] = std::move(short_period);
    s["dither"] = std::move(dither);
    return s;
  };
  auto mk_trace = [&](json::Value mode, json::Value schedule, bool two_events,
                      json::Value samples) {
    json::Value t = json::Value::object();
    t["mode"] = std::move(mode);
    t["schedule"] = std::move(schedule);
    t["kernels"] = 3;
    json::Value run = json::Value::object();
    run["repetition"] = 0;
    run["run_id"] = 1;
    json::Value events = json::Value::array();
    events.push_back("EV_A");
    if (two_events) events.push_back("EV_B");
    run["events"] = std::move(events);
    run["samples"] = std::move(samples);
    json::Value runs = json::Value::array();
    runs.push_back(std::move(run));
    t["runs"] = std::move(runs);
    return t;
  };
  auto ok_schedule = [&] { return mk_schedule(1000, 300, 100, true); };
  auto ok_samples = [&] {
    json::Value s = json::Value::array();
    s.push_back(mk_sample(300, {1.0, 2.0}));
    s.push_back(mk_sample(3000, {9.0, 9.0}));
    return s;
  };

  for (const std::uint64_t seed : testing::sweep_seeds(1, 2000)) {
    std::mt19937_64 rng(seed);
    json::Value doc = base;
    switch (rng() % 12) {
      case 0:  // unknown mode string
        doc["sample_trace"] =
            mk_trace("multiplexed", ok_schedule(), true, ok_samples());
        break;
      case 1:  // archive/trace mode disagreement is legal JSON
        doc["collection_mode"] = std::string("sampling");
        break;
      case 2:  // zero period fails SampleSchedule::validate
        doc["sample_trace"] = mk_trace(
            "strobed", mk_schedule(1000, 0, 100, true), true, ok_samples());
        break;
      case 3:  // short > long fails validate
        doc["sample_trace"] = mk_trace(
            "strobed", mk_schedule(1000, 300, 1e9, true), true, ok_samples());
        break;
      case 4:  // wrong type for a span
        doc["sample_trace"] = mk_trace(
            "strobed", mk_schedule("soon", 300, 100, true), true,
            ok_samples());
        break;
      case 5: {  // sample narrower than the run's event list
        json::Value samples = json::Value::array();
        samples.push_back(mk_sample(300, {}));
        doc["sample_trace"] =
            mk_trace("strobed", ok_schedule(), true, std::move(samples));
        break;
      }
      case 6: {  // sample wider than the run's event list
        json::Value samples = json::Value::array();
        samples.push_back(mk_sample(300, {1.0, 2.0, 7.0}));
        doc["sample_trace"] =
            mk_trace("strobed", ok_schedule(), true, std::move(samples));
        break;
      }
      case 7: {  // negative timestamp (decoder must reject, not cast)
        json::Value samples = json::Value::array();
        samples.push_back(mk_sample(-1.0, {1.0, 2.0}));
        doc["sample_trace"] =
            mk_trace("strobed", ok_schedule(), true, std::move(samples));
        break;
      }
      case 8:  // samples not an array
        doc["sample_trace"] =
            mk_trace("strobed", ok_schedule(), true, "none");
        break;
      case 9:  // missing schedule (and everything else) entirely
        doc["sample_trace"] = json::Value::object();
        break;
      case 10:  // events list vanishes while samples stay wide
        doc["sample_trace"] =
            mk_trace("strobed", ok_schedule(), false, ok_samples());
        break;
      default:  // dither as a number instead of a bool
        doc["sample_trace"] = mk_trace(
            "strobed", mk_schedule(1000, 300, 100, 1.0), true, ok_samples());
        break;
    }
    const std::string input = json::dump(doc, rng() % 2 == 0 ? 0 : 2);
    try {
      const MeasurementArchive archive = load_archive(input);
      if (archive.sample_trace.has_value()) {
        for (const auto& run : archive.sample_trace->runs) {
          for (const auto& sample : run.samples) {
            EXPECT_EQ(sample.values.size(), run.events.size())
                << testing::seed_banner(seed) << hex_dump(input);
          }
        }
      }
    } catch (const json::JsonError&) {
      // Documented: type errors surface as JsonError.
    } catch (const std::invalid_argument&) {
      // Documented: mode/shape/schedule validation.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "load_archive threw "
             << e.what() << " (undocumented type) on input\n"
             << hex_dump(input);
    }
  }
}

TEST(JsonFuzz, GeneratedDocumentsRoundTripExactly) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 2000)) {
    std::mt19937_64 rng(seed);
    const json::Value value = random_value(rng, 0);
    for (const int indent : {0, 2}) {
      const std::string text = json::dump(value, indent);
      try {
        EXPECT_TRUE(json::parse(text) == value)
            << testing::seed_banner(seed) << "round-trip mismatch for\n"
            << hex_dump(text);
      } catch (const std::exception& e) {
        FAIL() << testing::seed_banner(seed) << "parse of dump output threw "
               << e.what() << "\n"
               << hex_dump(text);
      }
    }
  }
}

}  // namespace
}  // namespace catalyst::core
