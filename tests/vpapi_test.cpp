// Unit tests for the PAPI-flavoured shim and the multiplexed collector.
#include "vpapi/collector.hpp"

#include <gtest/gtest.h>

namespace catalyst::vpapi {
namespace {

pmu::Machine tiny_machine(std::size_t counters = 2) {
  pmu::Machine m("tiny", counters, 7);
  m.add_event({"A", "signal x", {{"x", 1.0}}, {}});
  m.add_event({"B", "2x", {{"x", 2.0}}, {}});
  m.add_event({"C", "y", {{"y", 1.0}}, {}});
  m.add_event({"N", "noisy x", {{"x", 1.0}}, pmu::NoiseModel::relative(0.05)});
  m.add_event({"Z", "dead", {}, {}});
  return m;
}

TEST(SessionTest, QueryAndEnumerate) {
  auto m = tiny_machine();
  Session s(m);
  EXPECT_TRUE(s.query_event("A"));
  EXPECT_FALSE(s.query_event("nope"));
  EXPECT_EQ(s.enumerate_events().size(), 5u);
  EXPECT_EQ(s.event_description("B"), "2x");
  EXPECT_EQ(s.event_description("nope"), "");
}

TEST(SessionTest, AddEventErrors) {
  auto m = tiny_machine(2);
  Session s(m);
  const int set = s.create_eventset();
  EXPECT_EQ(s.add_event(set, "A"), Status::ok);
  EXPECT_EQ(s.add_event(set, "A"), Status::already_added);
  EXPECT_EQ(s.add_event(set, "nope"), Status::no_such_event);
  EXPECT_EQ(s.add_event(set, "B"), Status::ok);
  // Third event exceeds the 2 physical counters.
  EXPECT_EQ(s.add_event(set, "C"), Status::conflict);
  EXPECT_EQ(s.add_event(99, "A"), Status::no_such_eventset);
}

TEST(SessionTest, LifecycleEnforcement) {
  auto m = tiny_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.add_event(set, "A");
  EXPECT_EQ(s.stop(set), Status::not_running);
  std::vector<double> vals;
  EXPECT_EQ(s.read(set, vals), Status::not_running);
  EXPECT_EQ(s.start(set), Status::ok);
  EXPECT_EQ(s.start(set), Status::is_running);
  EXPECT_EQ(s.add_event(set, "B"), Status::is_running);
  EXPECT_EQ(s.destroy_eventset(set), Status::is_running);
  EXPECT_EQ(s.stop(set), Status::ok);
  EXPECT_EQ(s.read(set, vals), Status::ok);
  EXPECT_EQ(s.destroy_eventset(set), Status::ok);
  EXPECT_EQ(s.start(set), Status::no_such_eventset);
}

TEST(SessionTest, CountsAccumulateAcrossKernels) {
  auto m = tiny_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.add_event(set, "A");
  s.add_event(set, "B");
  s.start(set);
  s.run_kernel({{"x", 10.0}}, 0, 0);
  s.run_kernel({{"x", 5.0}}, 0, 1);
  s.stop(set);
  std::vector<double> vals;
  ASSERT_EQ(s.read(set, vals), Status::ok);
  ASSERT_EQ(vals.size(), 2u);
  EXPECT_DOUBLE_EQ(vals[0], 15.0);
  EXPECT_DOUBLE_EQ(vals[1], 30.0);
}

TEST(SessionTest, StoppedSetDoesNotCount) {
  auto m = tiny_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.add_event(set, "A");
  s.start(set);
  s.run_kernel({{"x", 10.0}}, 0, 0);
  s.stop(set);
  s.run_kernel({{"x", 100.0}}, 0, 1);  // not counted
  std::vector<double> vals;
  s.read(set, vals);
  EXPECT_DOUBLE_EQ(vals[0], 10.0);
}

TEST(SessionTest, ResetZeroesCounts) {
  auto m = tiny_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.add_event(set, "A");
  s.start(set);
  s.run_kernel({{"x", 10.0}}, 0, 0);
  s.reset(set);
  s.run_kernel({{"x", 3.0}}, 0, 1);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
}

TEST(SessionTest, RemoveEvent) {
  auto m = tiny_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.add_event(set, "A");
  s.add_event(set, "B");
  EXPECT_EQ(s.remove_event(set, "A"), Status::ok);
  EXPECT_EQ(s.list_events(set), std::vector<std::string>{"B"});
  EXPECT_EQ(s.remove_event(set, "A"), Status::no_such_event);
}

TEST(SessionTest, TwoSetsRunIndependently) {
  auto m = tiny_machine();
  Session s(m);
  const int s1 = s.create_eventset();
  const int s2 = s.create_eventset();
  s.add_event(s1, "A");
  s.add_event(s2, "C");
  s.start(s1);
  s.run_kernel({{"x", 4.0}, {"y", 9.0}}, 0, 0);
  s.start(s2);
  s.run_kernel({{"x", 1.0}, {"y", 1.0}}, 0, 1);
  s.stop(s1);
  s.stop(s2);
  std::vector<double> v1, v2;
  s.read(s1, v1);
  s.read(s2, v2);
  EXPECT_DOUBLE_EQ(v1[0], 5.0);  // saw both kernels
  EXPECT_DOUBLE_EQ(v2[0], 1.0);  // only the second
}

TEST(Scheduler, GroupsRespectCounterBudget) {
  auto m = tiny_machine(2);
  auto groups = schedule_groups(m, {"A", "B", "C", "N", "Z"});
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0].size(), 2u);
  EXPECT_EQ(groups[1].size(), 2u);
  EXPECT_EQ(groups[2].size(), 1u);
}

TEST(Scheduler, EmptyListGivesNoGroups) {
  auto m = tiny_machine(2);
  EXPECT_TRUE(schedule_groups(m, {}).empty());
}

TEST(Collector, CollectsAllEventsOverAllKernels) {
  auto m = tiny_machine(2);
  std::vector<pmu::Activity> acts{{{"x", 1.0}, {"y", 10.0}},
                                  {{"x", 2.0}, {"y", 20.0}},
                                  {{"x", 3.0}, {"y", 30.0}}};
  auto res = collect_all(m, acts, 2);
  EXPECT_EQ(res.event_names.size(), 5u);
  EXPECT_EQ(res.repetitions.size(), 2u);
  EXPECT_EQ(res.runs_per_repetition, 3u);  // 5 events / 2 counters
  // Deterministic events agree across repetitions.
  EXPECT_EQ(res.repetitions[0].values[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(res.repetitions[1].values[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(res.repetitions[0].values[1], (std::vector<double>{2, 4, 6}));
  EXPECT_EQ(res.repetitions[0].values[2], (std::vector<double>{10, 20, 30}));
  EXPECT_EQ(res.repetitions[0].values[4], (std::vector<double>{0, 0, 0}));
}

TEST(Collector, NoisyEventDiffersAcrossRepetitions) {
  auto m = tiny_machine(2);
  std::vector<pmu::Activity> acts{{{"x", 1e6}}, {{"x", 2e6}}};
  auto res = collect(m, {"N"}, acts, 2);
  EXPECT_NE(res.repetitions[0].values[0], res.repetitions[1].values[0]);
}

TEST(Collector, UnknownEventThrows) {
  auto m = tiny_machine();
  EXPECT_THROW(collect(m, {"nope"}, {{{"x", 1.0}}}, 1),
               std::invalid_argument);
}

TEST(Collector, ZeroRepetitionsThrows) {
  auto m = tiny_machine();
  EXPECT_THROW(collect(m, {"A"}, {{{"x", 1.0}}}, 0), std::invalid_argument);
}

TEST(Collector, ThreadedCollectionBitIdenticalToSerial) {
  auto m = tiny_machine(2);
  std::vector<pmu::Activity> acts{{{"x", 5e5}, {"y", 2e5}},
                                  {{"x", 1e6}, {"y", 4e5}},
                                  {{"x", 2e6}, {"y", 8e5}}};
  const auto serial = collect_all(m, acts, 4, 1);
  for (int threads : {2, 4, 8}) {
    const auto parallel = collect_all(m, acts, 4, threads);
    ASSERT_EQ(parallel.repetitions.size(), serial.repetitions.size());
    for (std::size_t rep = 0; rep < serial.repetitions.size(); ++rep) {
      EXPECT_EQ(parallel.repetitions[rep].values,
                serial.repetitions[rep].values)
          << "threads=" << threads << " rep=" << rep;
    }
  }
}

TEST(Collector, RejectsZeroThreads) {
  auto m = tiny_machine();
  EXPECT_THROW(collect(m, {"A"}, {{{"x", 1.0}}}, 1, 0),
               std::invalid_argument);
}

TEST(Collector, DeterministicEndToEnd) {
  auto m = tiny_machine(2);
  std::vector<pmu::Activity> acts{{{"x", 5e5}}, {{"x", 1e6}}};
  auto r1 = collect_all(m, acts, 3);
  auto r2 = collect_all(m, acts, 3);
  for (std::size_t rep = 0; rep < 3; ++rep) {
    EXPECT_EQ(r1.repetitions[rep].values, r2.repetitions[rep].values);
  }
}

}  // namespace
}  // namespace catalyst::vpapi
