// Unit tests for the Section IV noise analysis (max RNMSE, tau filter,
// across-thread median).
#include "core/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace catalyst::core {
namespace {

TEST(Rnmse, IdenticalVectorsHaveZeroError) {
  std::vector<double> m{10, 20, 30};
  EXPECT_DOUBLE_EQ(rnmse(m, m), 0.0);
}

TEST(Rnmse, MatchesHandComputedValue) {
  std::vector<double> a{1, 2, 3};
  std::vector<double> b{1, 2, 4};
  // ||a-b|| = 1; N = 3; means 2 and 7/3 -> denom = sqrt(3 * 2 * 7/3).
  EXPECT_NEAR(rnmse(a, b), 1.0 / std::sqrt(14.0), 1e-14);
}

TEST(Rnmse, IsSymmetric) {
  std::vector<double> a{5, 0, 2};
  std::vector<double> b{4, 1, 2};
  EXPECT_DOUBLE_EQ(rnmse(a, b), rnmse(b, a));
}

TEST(Rnmse, ZeroMeanDefinesUnitError) {
  std::vector<double> zero{0, 0, 0};
  std::vector<double> nonzero{1, 2, 3};
  EXPECT_DOUBLE_EQ(rnmse(zero, nonzero), 1.0);
  EXPECT_DOUBLE_EQ(rnmse(nonzero, zero), 1.0);
}

TEST(Rnmse, BothAllZeroIsZeroError) {
  std::vector<double> zero{0, 0, 0};
  EXPECT_DOUBLE_EQ(rnmse(zero, zero), 0.0);
}

TEST(Rnmse, RejectsMismatchedOrEmpty) {
  std::vector<double> a{1, 2};
  std::vector<double> b{1};
  EXPECT_THROW(rnmse(a, b), std::invalid_argument);
  std::vector<double> e;
  EXPECT_THROW(rnmse(e, e), std::invalid_argument);
}

TEST(Rnmse, ScaleInvariant) {
  // Multiplying both vectors by c scales num by c and denom by c.
  std::vector<double> a{10, 20, 31};
  std::vector<double> b{11, 19, 30};
  std::vector<double> a2{1000, 2000, 3100};
  std::vector<double> b2{1100, 1900, 3000};
  EXPECT_NEAR(rnmse(a, b), rnmse(a2, b2), 1e-12);
}

TEST(MaxRnmse, TakesWorstPair) {
  std::vector<std::vector<double>> reps{{1, 2, 3}, {1, 2, 3}, {1, 2, 30}};
  const double worst = max_rnmse(reps);
  EXPECT_DOUBLE_EQ(worst, rnmse(reps[0], reps[2]));
  EXPECT_GT(worst, 0.0);
}

TEST(MaxRnmse, NeedsTwoReps) {
  EXPECT_THROW(max_rnmse({{1, 2}}), std::invalid_argument);
}

TEST(FilterNoise, SplitsCleanNoisyAndZero) {
  std::vector<std::string> names{"clean", "noisy", "zero"};
  std::vector<std::vector<std::vector<double>>> meas{
      {{10, 20}, {10, 20}},       // identical -> variability 0
      {{10, 20}, {14, 26}},       // noticeably noisy
      {{0, 0}, {0, 0}},           // all zero -> discarded
  };
  auto res = filter_noise(names, meas, 1e-10);
  ASSERT_EQ(res.variabilities.size(), 3u);
  EXPECT_FALSE(res.variabilities[0].all_zero);
  EXPECT_DOUBLE_EQ(res.variabilities[0].max_rnmse, 0.0);
  EXPECT_GT(res.variabilities[1].max_rnmse, 1e-2);
  EXPECT_TRUE(res.variabilities[2].all_zero);
  ASSERT_EQ(res.kept, (std::vector<std::size_t>{0}));
  EXPECT_EQ(res.averaged[0], (std::vector<double>{10, 20}));
}

TEST(FilterNoise, LenientTauKeepsNoisyEvents) {
  std::vector<std::string> names{"noisy"};
  std::vector<std::vector<std::vector<double>>> meas{{{10, 20}, {11, 21}}};
  auto strict = filter_noise(names, meas, 1e-10);
  EXPECT_TRUE(strict.kept.empty());
  auto lenient = filter_noise(names, meas, 1e-1);
  ASSERT_EQ(lenient.kept.size(), 1u);
  // Kept events carry the repetition average.
  EXPECT_EQ(lenient.averaged[0], (std::vector<double>{10.5, 20.5}));
}

TEST(FilterNoise, AllZeroDiscardedEvenWithZeroVariability) {
  auto res = filter_noise({"z"}, {{{0, 0}, {0, 0}}}, 1.0);
  EXPECT_TRUE(res.kept.empty());
  EXPECT_TRUE(res.variabilities[0].all_zero);
}

TEST(FilterNoise, RejectsBadArgs) {
  EXPECT_THROW(filter_noise({"a"}, {}, 0.1), std::invalid_argument);
  EXPECT_THROW(filter_noise({"a"}, {{{1.0}, {1.0}}}, -0.1),
               std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 2, 3}), 2.5);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Median, RobustToOneOutlier) {
  EXPECT_DOUBLE_EQ(median({10, 10, 1e9}), 10.0);
}

TEST(Median, ThrowsOnEmpty) {
  EXPECT_THROW(median({}), std::invalid_argument);
}

class RnmseNoiseLevels : public ::testing::TestWithParam<double> {};

TEST_P(RnmseNoiseLevels, TracksRelativeNoiseMagnitude) {
  // Perturbing one vector by relative eps yields RNMSE of order eps.
  const double eps = GetParam();
  std::vector<double> a{100, 200, 300, 400};
  std::vector<double> b = a;
  for (double& v : b) v *= (1.0 + eps);
  const double r = rnmse(a, b);
  EXPECT_GT(r, eps * 0.5);
  EXPECT_LT(r, eps * 2.5);
}

INSTANTIATE_TEST_SUITE_P(Levels, RnmseNoiseLevels,
                         ::testing::Values(1e-8, 1e-6, 1e-4, 1e-2));

}  // namespace
}  // namespace catalyst::core
