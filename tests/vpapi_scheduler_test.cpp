// Property tests for the event-set scheduler (vpapi/scheduler.hpp): every
// event scheduled exactly once onto a mask-legal slot, no slot double-booked
// within a run, never more runs than the next-fit baseline, and a pinned
// adversarial case where first-fit bin packing saves >= 2 benchmark re-runs.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "vpapi/collector.hpp"
#include "vpapi/scheduler.hpp"

namespace catalyst::vpapi {
namespace {

/// A machine with `counters` physical counters and one event per entry of
/// `masks` (named M0, M1, ...), each pinned to the given slot mask (0 =
/// unconstrained).
pmu::Machine masked_machine(std::size_t counters,
                            const std::vector<std::uint64_t>& masks) {
  pmu::Machine m("sched", counters, 7);
  for (std::size_t i = 0; i < masks.size(); ++i) {
    m.add_event({"M" + std::to_string(i), "", {{"x", 1.0}}, {}, masks[i]});
  }
  return m;
}

std::vector<std::string> all_names(std::size_t n) {
  std::vector<std::string> names;
  names.reserve(n);
  for (std::size_t i = 0; i < n; ++i) names.push_back("M" + std::to_string(i));
  return names;
}

/// The schedule-wide invariants every valid schedule must satisfy.
void check_invariants(const pmu::Machine& machine,
                      const std::vector<std::string>& names,
                      const EventSetSchedule& schedule) {
  // Every input event appears exactly once across all runs.
  EXPECT_EQ(schedule.scheduled_events(), names.size());
  std::map<std::string, int> seen;
  for (const ScheduledRun& run : schedule.runs) {
    ASSERT_EQ(run.events.size(), run.slots.size());
    EXPECT_LE(run.events.size(), machine.physical_counters());
    std::vector<bool> booked(machine.physical_counters(), false);
    for (std::size_t i = 0; i < run.events.size(); ++i) {
      ++seen[run.events[i]];
      const std::size_t slot = run.slots[i];
      ASSERT_LT(slot, machine.physical_counters());
      // No slot double-booked within a run.
      EXPECT_FALSE(booked[slot]) << run.events[i] << " slot " << slot;
      booked[slot] = true;
      // The slot respects the event's mask (0 = unconstrained).
      const auto idx = machine.find(run.events[i]);
      ASSERT_TRUE(idx.has_value());
      const std::uint64_t mask = machine.event(*idx).slot_mask;
      if (mask != 0) {
        EXPECT_NE(mask & (std::uint64_t{1} << slot), 0u)
            << run.events[i] << " placed on disallowed slot " << slot;
      }
    }
  }
  for (const auto& name : names) EXPECT_EQ(seen[name], 1) << name;
  // Bin packing never loses to the next-fit baseline.
  EXPECT_EQ(schedule.baseline_runs, next_fit_run_count(machine, names));
  EXPECT_LE(schedule.runs.size(), schedule.baseline_runs);
}

TEST(Scheduler, UnconstrainedEqualsNaiveChunking) {
  // No masks: first-fit in input order degenerates to schedule_groups()
  // exactly -- same groups, same order -- which is what keeps counting-mode
  // run ids (and so the paper tables) byte-stable.
  const auto m = masked_machine(3, std::vector<std::uint64_t>(8, 0));
  const auto names = all_names(8);
  const auto schedule = schedule_event_sets(m, names);
  check_invariants(m, names, schedule);
  const auto groups = schedule_groups(m, names);
  ASSERT_EQ(schedule.runs.size(), groups.size());
  for (std::size_t r = 0; r < groups.size(); ++r) {
    EXPECT_EQ(schedule.runs[r].events, groups[r]);
  }
  // ceil(8/3) = 3: unconstrained packing is optimal, baseline agrees.
  EXPECT_EQ(schedule.runs.size(), 3u);
  EXPECT_EQ(schedule.baseline_runs, 3u);
}

TEST(Scheduler, PinnedAdversarialCaseSavesTwoRuns) {
  // 2 counters; four events pinned to slot 0 interleaved-at-the-front with
  // four unconstrained ones.  Next-fit opens a fresh run for every pinned
  // event (slot 0 of the current run is always taken) and then again for
  // the free events: 6 runs.  First-fit backfills slot 1 of the pinned
  // runs: 4 runs.  The bin-packing win the satellite pins: >= 2 runs.
  pmu::Machine m("adv", 2, 7);
  for (const char* pinned : {"A0", "B0", "C0", "D0"}) {
    m.add_event({pinned, "", {{"x", 1.0}}, {}, 0x1});
  }
  for (const char* free_event : {"c1", "c2", "c3", "c4"}) {
    m.add_event({free_event, "", {{"x", 1.0}}, {}, 0});
  }
  const std::vector<std::string> names{"A0", "B0", "C0", "D0",
                                       "c1", "c2", "c3", "c4"};
  const auto schedule = schedule_event_sets(m, names);
  check_invariants(m, names, schedule);
  EXPECT_EQ(schedule.runs.size(), 4u);
  EXPECT_EQ(schedule.baseline_runs, 6u);
  EXPECT_GE(schedule.baseline_runs - schedule.runs.size(), 2u);
  // Each run carries one pinned event on slot 0 plus one backfilled free
  // event on slot 1.
  for (const ScheduledRun& run : schedule.runs) {
    ASSERT_EQ(run.events.size(), 2u);
    EXPECT_EQ(run.slots[0], 0u);
    EXPECT_EQ(run.slots[1], 1u);
  }
}

TEST(Scheduler, PropertySweepOverGeneratedMasks) {
  // Deterministic pseudo-random mask populations: for every generated
  // machine the schedule must satisfy all invariants.  A plain LCG keeps
  // the sweep reproducible without <random>.
  std::uint64_t state = 0x9e3779b97f4a7c15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t counters = 1 + next() % 6;
    const std::size_t n_events = 1 + next() % 14;
    const std::uint64_t full =
        (std::uint64_t{1} << counters) - 1;
    std::vector<std::uint64_t> masks;
    for (std::size_t e = 0; e < n_events; ++e) {
      // ~half unconstrained, the rest a random non-empty subset of slots.
      std::uint64_t mask = 0;
      if (next() % 2 == 1) {
        mask = next() & full;
        if (mask == 0) mask = std::uint64_t{1} << (next() % counters);
      }
      masks.push_back(mask);
    }
    const auto m = masked_machine(counters, masks);
    const auto names = all_names(n_events);
    const auto schedule = schedule_event_sets(m, names);
    check_invariants(m, names, schedule);
    // A lower bound nothing may beat: the busiest single slot.  Events
    // whose mask allows only slot s all need distinct runs.
    std::vector<std::size_t> slot_demand(counters, 0);
    for (std::size_t e = 0; e < n_events; ++e) {
      const std::uint64_t mask = masks[e] == 0 ? full : masks[e];
      if ((mask & (mask - 1)) == 0) {  // single-slot mask
        std::size_t s = 0;
        while ((mask >> s) != 1) ++s;
        ++slot_demand[s];
      }
    }
    for (const std::size_t demand : slot_demand) {
      EXPECT_GE(schedule.runs.size(), demand);
    }
    // And the trivial capacity bound.
    EXPECT_GE(schedule.runs.size() * counters, n_events);
  }
}

TEST(Scheduler, SingleSlotMachineSerializesEverything) {
  const auto m = masked_machine(1, {0, 0x1, 0, 0x1});
  const auto names = all_names(4);
  const auto schedule = schedule_event_sets(m, names);
  check_invariants(m, names, schedule);
  EXPECT_EQ(schedule.runs.size(), 4u);
  EXPECT_EQ(schedule.baseline_runs, 4u);
}

TEST(Scheduler, RejectsUnknownEvents) {
  const auto m = masked_machine(2, {0, 0});
  EXPECT_THROW(schedule_event_sets(m, {"M0", "NOPE"}), std::invalid_argument);
  EXPECT_THROW(next_fit_run_count(m, {"NOPE"}), std::invalid_argument);
}

TEST(Scheduler, EmptyInputYieldsEmptySchedule) {
  const auto m = masked_machine(2, {0});
  const auto schedule = schedule_event_sets(m, {});
  EXPECT_TRUE(schedule.runs.empty());
  EXPECT_EQ(schedule.scheduled_events(), 0u);
  EXPECT_EQ(schedule.baseline_runs, 0u);
}

}  // namespace
}  // namespace catalyst::vpapi
