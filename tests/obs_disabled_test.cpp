// Same API, compiled out: this binary defines CATALYST_OBS_DISABLED
// regardless of the CATALYST_OBS option (mirroring contract_disabled_test),
// so the default build also exercises the zero-cost mode -- every obs call
// below resolves into the `noop` inline namespace and must leave the live
// library's global tracer and metrics registry untouched.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace catalyst::obs {
namespace {

TEST(ObsDisabled, ApiCollapsesToNoOps) {
  static_assert(!enabled(), "disabled obs::enabled() must be constexpr false");

  // Even with the (live-library) tracer force-enabled, noop spans and
  // counters record nothing: the decision was made at compile time.
  Tracer::instance().enable(true);
  Tracer::instance().reset();
  Metrics::instance().reset();
  {
    Span span("never.recorded");
    span.arg("k", 42);
    span.arg("s", std::string("text"));
    EXPECT_FALSE(span.active());
    EXPECT_EQ(span.elapsed_ns(), 0);
    span.end();
    EXPECT_EQ(span.duration_ns(), 0);
  }
  count("never.counted", 5);
  observe("never.observed", 1.0);
  Tracer::instance().enable(false);

  EXPECT_EQ(Tracer::instance().buffer().published(), 0u);
  const auto snap = Metrics::instance().snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

}  // namespace
}  // namespace catalyst::obs
