// Unit tests for catalyst::linalg::Matrix.
#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace catalyst::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, FillConstructor) {
  Matrix m(3, 2, 7.5);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 2; ++j) {
      EXPECT_EQ(m(i, j), 7.5);
    }
  }
}

TEST(Matrix, NegativeDimensionThrows) {
  EXPECT_THROW(Matrix(-1, 2), ArgumentError);
  EXPECT_THROW(Matrix(2, -1), ArgumentError);
}

TEST(Matrix, InitializerListIsRowMajorSemantics) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m(0, 0), 1);
  EXPECT_EQ(m(0, 2), 3);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(1, 2), 6);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1, 2}, {3}}), DimensionError);
}

TEST(Matrix, ColumnMajorStorage) {
  Matrix m{{1, 2}, {3, 4}};
  auto d = m.data();
  // Column 0 = (1, 3), column 1 = (2, 4).
  EXPECT_EQ(d[0], 1);
  EXPECT_EQ(d[1], 3);
  EXPECT_EQ(d[2], 2);
  EXPECT_EQ(d[3], 4);
}

TEST(Matrix, FromColumnsAndColCopy) {
  Matrix m = Matrix::from_columns({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 2);
  EXPECT_EQ(m.col_copy(0), (Vector{1, 2, 3}));
  EXPECT_EQ(m.col_copy(1), (Vector{4, 5, 6}));
}

TEST(Matrix, FromColumnsRejectsRagged) {
  EXPECT_THROW(Matrix::from_columns({{1, 2}, {3}}), DimensionError);
}

TEST(Matrix, FromRowsMatchesInitializerList) {
  Matrix a = Matrix::from_rows({{1, 2}, {3, 4}});
  Matrix b{{1, 2}, {3, 4}};
  EXPECT_EQ(a, b);
}

TEST(Matrix, Identity) {
  Matrix i3 = Matrix::identity(3);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_EQ(i3(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, AtThrowsOutOfRange) {
  Matrix m(2, 2);
  EXPECT_THROW(m.at(2, 0), DimensionError);
  EXPECT_THROW(m.at(0, 2), DimensionError);
  EXPECT_THROW(m.at(-1, 0), DimensionError);
  EXPECT_NO_THROW(m.at(1, 1));
}

TEST(Matrix, RowCopy) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.row_copy(1), (Vector{4, 5, 6}));
  EXPECT_THROW(m.row_copy(2), DimensionError);
}

TEST(Matrix, SetColAndSetRow) {
  Matrix m(2, 2);
  m.set_col(0, Vector{1, 2});
  m.set_row(0, Vector{9, 8});
  EXPECT_EQ(m(0, 0), 9);
  EXPECT_EQ(m(0, 1), 8);
  EXPECT_EQ(m(1, 0), 2);
  Vector wrong{1, 2, 3};
  EXPECT_THROW(m.set_col(0, wrong), DimensionError);
  EXPECT_THROW(m.set_row(0, wrong), DimensionError);
}

TEST(Matrix, SwapCols) {
  Matrix m{{1, 2}, {3, 4}};
  m.swap_cols(0, 1);
  EXPECT_EQ(m(0, 0), 2);
  EXPECT_EQ(m(1, 0), 4);
  EXPECT_EQ(m(0, 1), 1);
  m.swap_cols(1, 1);  // no-op
  EXPECT_EQ(m(0, 1), 1);
}

TEST(Matrix, Transposed) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  for (index_t i = 0; i < 2; ++i) {
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_EQ(m(i, j), t(j, i));
    }
  }
}

TEST(Matrix, Block) {
  Matrix m{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  Matrix b = m.block(1, 1, 2, 2);
  EXPECT_EQ(b, (Matrix{{5, 6}, {8, 9}}));
  EXPECT_THROW(m.block(2, 2, 2, 2), DimensionError);
}

TEST(Matrix, SelectColumns) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  std::vector<index_t> idx{2, 0};
  Matrix s = m.select_columns(idx);
  EXPECT_EQ(s, (Matrix{{3, 1}, {6, 4}}));
  std::vector<index_t> bad{3};
  EXPECT_THROW(m.select_columns(bad), DimensionError);
}

TEST(Matrix, AppendColumns) {
  Matrix m{{1}, {2}};
  Matrix n{{3, 4}, {5, 6}};
  m.append_columns(n);
  EXPECT_EQ(m, (Matrix{{1, 3, 4}, {2, 5, 6}}));
  Matrix wrong(3, 1);
  EXPECT_THROW(m.append_columns(wrong), DimensionError);
}

TEST(Matrix, AppendColumnsToEmpty) {
  Matrix m;
  Matrix n{{1, 2}};
  m.append_columns(n);
  EXPECT_EQ(m, n);
}

TEST(Matrix, Arithmetic) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{10, 20}, {30, 40}};
  EXPECT_EQ(a + b, (Matrix{{11, 22}, {33, 44}}));
  EXPECT_EQ(b - a, (Matrix{{9, 18}, {27, 36}}));
  EXPECT_EQ(a * 2.0, (Matrix{{2, 4}, {6, 8}}));
  EXPECT_EQ(2.0 * a, a * 2.0);
  Matrix c(1, 2);
  EXPECT_THROW(a += c, DimensionError);
  EXPECT_THROW(a -= c, DimensionError);
}

TEST(Matrix, MaxAbsDiff) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{1, 2.5}, {3, 4}};
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.5);
  Matrix c(1, 2);
  EXPECT_THROW(Matrix::max_abs_diff(a, c), DimensionError);
}

TEST(Matrix, StreamOutputIsNonEmpty) {
  Matrix m{{1, 2}, {3, 4}};
  std::ostringstream os;
  os << m;
  EXPECT_NE(os.str().find("1"), std::string::npos);
  EXPECT_NE(os.str().find("4"), std::string::npos);
}

TEST(Matrix, ColumnVector) {
  Matrix v = Matrix::column_vector({1, 2, 3});
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v.cols(), 1);
  EXPECT_EQ(v(2, 0), 3);
}

}  // namespace
}  // namespace catalyst::linalg
