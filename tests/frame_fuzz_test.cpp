// Fuzz harness for the catalyst-wire decoder (protocol version 2: the
// STATS/TRACE telemetry frames and trace-id-bearing SUBMITs included) and
// the Session state machine -- the "a daemon must not be crashable by
// anything a client sends" guarantee, exercised the same way
// json_fuzz_test exercises the archive loaders:
//
//   * random bytes      -> FrameDecoder must surface frames or a
//                          DecodeError -- never throw, never crash;
//   * mutated frames    -> byte-level mutations (truncate / flip / insert /
//                          delete / splice) of valid frame streams -> same
//                          contract, plus whatever DOES decode must have
//                          passed its CRC;
//   * mutated payloads  -> decode_submit / decode_error must return a body
//                          or throw PayloadError, nothing else;
//   * session firehose  -> random byte slices straight into
//                          Session::on_bytes; the session must end every
//                          hostile stream either still-parsing or closed
//                          with a decodable typed ERROR as its final word.
//
// Failures print a hex dump plus the CATALYST_SEED replay banner
// (seed_util.hpp); CATALYST_SEED=<n> re-runs exactly that input.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "seed_util.hpp"
#include "service/service.hpp"

namespace catalyst::service {
namespace {

std::string hex_dump(const std::string& bytes) {
  std::ostringstream out;
  out << bytes.size() << " bytes:\n";
  for (std::size_t row = 0; row < bytes.size(); row += 16) {
    char offset[24];
    std::snprintf(offset, sizeof offset, "%06zx  ", row);
    out << offset;
    for (std::size_t i = row; i < row + 16; ++i) {
      if (i < bytes.size()) {
        char hex[8];
        std::snprintf(hex, sizeof hex, "%02x ",
                      static_cast<unsigned char>(bytes[i]));
        out << hex;
      } else {
        out << "   ";
      }
    }
    out << " |";
    for (std::size_t i = row; i < row + 16 && i < bytes.size(); ++i) {
      const unsigned char c = static_cast<unsigned char>(bytes[i]);
      out << (std::isprint(c) ? static_cast<char>(c) : '.');
    }
    out << "|\n";
  }
  return out.str();
}

// Byte palette biased toward the wire format's magic / version bytes so
// random streams reach past the header checks instead of dying on byte one.
std::string random_bytes(std::mt19937_64& rng, std::size_t max_len) {
  static constexpr unsigned char kPalette[] = {
      0x43, 0x41, 0x54, 0x4C,  // "CATL"
      0x01, 0x00, 0x00, 0x00, 0x02, 0x03, 0x08, 0x0C,
      0x0D, 0x0E, 0x0F,  // STATS / STATS_OK / TRACE type bytes
      0xFF, 0x10, 0x20};
  std::uniform_int_distribution<std::size_t> len_dist(0, max_len);
  std::uniform_int_distribution<int> mode_dist(0, 2);
  std::uniform_int_distribution<std::size_t> palette_dist(
      0, sizeof kPalette - 1);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  std::string out;
  const std::size_t len = len_dist(rng);
  for (std::size_t i = 0; i < len; ++i) {
    if (mode_dist(rng) != 0) {
      out.push_back(static_cast<char>(kPalette[palette_dist(rng)]));
    } else {
      out.push_back(static_cast<char>(byte_dist(rng)));
    }
  }
  return out;
}

std::string mutate(const std::string& doc, std::mt19937_64& rng) {
  std::string out = doc;
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<int> byte_dist(0, 255);
  const int mutations = 1 + static_cast<int>(rng() % 4);
  for (int m = 0; m < mutations && !out.empty(); ++m) {
    std::uniform_int_distribution<std::size_t> pos_dist(0, out.size() - 1);
    const std::size_t pos = pos_dist(rng);
    switch (op_dist(rng)) {
      case 0:  // truncate
        out.resize(pos);
        break;
      case 1:  // flip one byte
        out[pos] = static_cast<char>(byte_dist(rng));
        break;
      case 2:  // insert a random byte
        out.insert(pos, 1, static_cast<char>(byte_dist(rng)));
        break;
      case 3:  // delete a short span
        out.erase(pos, 1 + rng() % 8);
        break;
      default: {  // splice: duplicate a short span somewhere else
        const std::size_t span = 1 + rng() % 12;
        out.insert(pos_dist(rng) % (out.size() + 1), out.substr(pos, span));
        break;
      }
    }
  }
  return out;
}

/// A realistic little frame stream: HELLO, a packed trace-id-bearing
/// SUBMIT, a POLL, a STATS scrape, and a TRACE fetch -- one of every
/// client-to-server frame the v2 protocol knows.
std::string base_stream() {
  std::string out = wire::encode_frame(wire::FrameType::hello, "fuzz/1");
  wire::SubmitBody body;
  body.kind = wire::SubmitKind::packed;
  body.category = "branch";
  body.event_names = {"EV_A", "EV_B"};
  body.repetitions = 2;
  body.slots = 3;
  body.values = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  body.trace_id = 0xABCDEF0123456789ull;
  out += wire::encode_frame(wire::FrameType::submit, wire::encode_submit(body));
  std::string poll;
  wire::put_u64(poll, 1);
  out += wire::encode_frame(wire::FrameType::poll, poll);
  out += wire::encode_frame(wire::FrameType::stats, "");
  std::string trace;
  wire::put_u64(trace, body.trace_id);
  out += wire::encode_frame(wire::FrameType::trace, trace);
  return out;
}

/// Drains a decoder; returns how many frames surfaced.  Every frame that
/// surfaces necessarily passed magic/version/length/CRC.
std::size_t drain(wire::FrameDecoder& decoder) {
  std::size_t n = 0;
  while (decoder.next().has_value()) ++n;
  return n;
}

TEST(FrameFuzz, RandomBytesNeverThrowFromTheDecoder) {
  for (const std::uint64_t seed : testing::sweep_seeds(1, 20000)) {
    std::mt19937_64 rng(seed);
    const std::string input = random_bytes(rng, 160);
    wire::FrameDecoder decoder;
    try {
      // Feed in random-sized slices to shake the incremental paths.
      std::size_t pos = 0;
      while (pos < input.size()) {
        const std::size_t chunk =
            1 + rng() % std::min<std::size_t>(input.size() - pos, 17);
        decoder.feed(input.data() + pos, chunk);
        drain(decoder);
        pos += chunk;
      }
      drain(decoder);
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "FrameDecoder threw "
             << e.what() << " on input\n"
             << hex_dump(input);
    }
  }
}

TEST(FrameFuzz, MutatedStreamsNeverThrowAndNeverPassCorruptFrames) {
  const std::string base = base_stream();
  for (const std::uint64_t seed : testing::sweep_seeds(1, 20000)) {
    std::mt19937_64 rng(seed);
    const std::string input = mutate(base, rng);
    wire::FrameDecoder decoder;
    try {
      decoder.feed(input.data(), input.size());
      std::size_t frames = 0;
      while (auto frame = decoder.next()) {
        ++frames;
        // Re-encoding a surfaced frame must reproduce wire bytes whose CRC
        // the decoder itself accepts: surfaced == integrity-checked.
        const std::string bytes =
            wire::encode_frame(frame->type, frame->payload);
        wire::FrameDecoder check;
        check.feed(bytes.data(), bytes.size());
        ASSERT_TRUE(check.next().has_value())
            << testing::seed_banner(seed) << hex_dump(input);
      }
      ASSERT_LE(frames, 5u + 1u)  // base stream has 5; splices may add one
          << testing::seed_banner(seed) << hex_dump(input);
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "decoder threw " << e.what()
             << " on mutated stream\n"
             << hex_dump(input);
    }
  }
}

TEST(FrameFuzz, MutatedPayloadsThrowOnlyPayloadError) {
  wire::SubmitBody body;
  body.kind = wire::SubmitKind::packed;
  body.category = "branch";
  body.event_names = {"EV_A", "EV_B", "EV_C"};
  body.repetitions = 3;
  body.slots = 4;
  body.values.assign(3 * 3 * 4, 1.5);
  const std::string base_submit = wire::encode_submit(body);
  wire::ErrorBody err;
  err.request_id = 9;
  err.code = wire::ErrorCode::quota_exceeded;
  err.message = "quota";
  const std::string base_error = wire::encode_error(err);

  for (const std::uint64_t seed : testing::sweep_seeds(1, 20000)) {
    std::mt19937_64 rng(seed);
    const bool submit = seed % 2 == 0;
    const std::string input = mutate(submit ? base_submit : base_error, rng);
    try {
      if (submit) {
        const wire::SubmitBody decoded = wire::decode_submit(input);
        // Whatever decodes must be internally consistent: the value block
        // matches the advertised dimensions.
        EXPECT_EQ(decoded.kind == wire::SubmitKind::packed
                      ? decoded.values.size()
                      : 0u,
                  decoded.kind == wire::SubmitKind::packed
                      ? decoded.event_names.size() * decoded.repetitions *
                            decoded.slots
                      : 0u)
            << testing::seed_banner(seed) << hex_dump(input);
      } else {
        (void)wire::decode_error(input);
      }
    } catch (const wire::PayloadError&) {
      // The documented failure mode.
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "payload decoder threw "
             << e.what() << " (not PayloadError) on\n"
             << hex_dump(input);
    }
  }
}

/// Broker that accepts everything: the fuzz target is the session's parsing
/// and state handling, not queue mechanics.
class AcceptAllBroker final : public RequestBroker {
 public:
  SubmitOutcome submit(SessionId, wire::SubmitBody) override {
    SubmitOutcome out;
    out.kind = SubmitOutcome::Kind::accepted;
    out.request_id = ++last_id_;
    return out;
  }
  PollOutcome poll(SessionId, std::uint64_t) override {
    PollOutcome out;
    out.kind = PollOutcome::Kind::queued;
    return out;
  }
  bool cancel(SessionId, std::uint64_t) override { return true; }

 private:
  std::uint64_t last_id_ = 0;
};

TEST(FrameFuzz, SessionSurvivesHostileByteStreams) {
  const std::string base = base_stream();
  for (const std::uint64_t seed : testing::sweep_seeds(1, 10000)) {
    std::mt19937_64 rng(seed);
    // Half mutated-valid streams (reach deep into handle_frame), half raw
    // noise (hammer the header checks).
    const std::string input =
        seed % 2 == 0 ? mutate(base, rng) : random_bytes(rng, 200);
    AcceptAllBroker broker;
    Session session(1, &broker, {}, std::chrono::nanoseconds{0});
    std::string all_output;
    try {
      std::size_t pos = 0;
      std::chrono::nanoseconds now{0};
      while (pos < input.size()) {
        const std::size_t chunk =
            1 + rng() % std::min<std::size_t>(input.size() - pos, 23);
        now += std::chrono::milliseconds(1);
        session.on_bytes(now, input.data() + pos, chunk);
        all_output += session.take_output();
        pos += chunk;
      }
      session.on_tick(now + std::chrono::milliseconds(1));
      all_output += session.take_output();
    } catch (const std::exception& e) {
      FAIL() << testing::seed_banner(seed) << "Session threw " << e.what()
             << " on input\n"
             << hex_dump(input);
    }
    // Whatever the session said must itself be a clean frame stream: a
    // hostile client cannot trick the daemon into emitting garbage.
    wire::FrameDecoder check;
    check.feed(all_output.data(), all_output.size());
    while (check.next().has_value()) {
    }
    EXPECT_FALSE(check.error().has_value())
        << testing::seed_banner(seed) << "session emitted undecodable bytes\n"
        << hex_dump(all_output);
  }
}

}  // namespace
}  // namespace catalyst::service
