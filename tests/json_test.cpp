// Unit tests for the minimal JSON value / parser / writer.
#include "core/json.hpp"

#include <gtest/gtest.h>

namespace catalyst::core::json {
namespace {

// --- value type -----------------------------------------------------------------

TEST(JsonValue, TypePredicatesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(true).is_bool());
  EXPECT_TRUE(Value(3.5).is_number());
  EXPECT_TRUE(Value(7).is_number());
  EXPECT_TRUE(Value("s").is_string());
  EXPECT_TRUE(Value::array().is_array());
  EXPECT_TRUE(Value::object().is_object());

  EXPECT_EQ(Value(true).as_bool(), true);
  EXPECT_DOUBLE_EQ(Value(2.5).as_number(), 2.5);
  EXPECT_EQ(Value("hi").as_string(), "hi");
}

TEST(JsonValue, WrongTypeAccessThrows) {
  EXPECT_THROW(Value(1.0).as_string(), JsonError);
  EXPECT_THROW(Value("x").as_number(), JsonError);
  EXPECT_THROW(Value().as_array(), JsonError);
  EXPECT_THROW(Value(true).at("k"), JsonError);
  EXPECT_THROW(Value(true).at(0), JsonError);
}

TEST(JsonValue, ArrayBuilding) {
  Value a = Value::array();
  a.push_back(1);
  a.push_back("two");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_DOUBLE_EQ(a.at(0).as_number(), 1.0);
  EXPECT_EQ(a.at(1).as_string(), "two");
  EXPECT_THROW(a.at(2), JsonError);
}

TEST(JsonValue, ObjectBuildingAndNullPromotion) {
  Value o;  // null
  o["k"] = 5;  // promotes to object
  EXPECT_TRUE(o.is_object());
  EXPECT_TRUE(o.contains("k"));
  EXPECT_FALSE(o.contains("missing"));
  EXPECT_THROW(o.at("missing"), JsonError);
}

// --- parser ---------------------------------------------------------------------

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse("-3.25e2").as_number(), -325.0);
  EXPECT_EQ(parse("\"hello\"").as_string(), "hello");
}

TEST(JsonParse, Whitespace) {
  const Value v = parse("  {\n\t\"a\" : [ 1 ,\r\n 2 ] }  ");
  EXPECT_EQ(v.at("a").size(), 2u);
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": {"b": [1, [2, {"c": null}]]}})");
  EXPECT_TRUE(v.at("a").at("b").at(1).at(1).at("c").is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\"b\\c\/d\n\t")").as_string(), "a\"b\\c/d\n\t");
  EXPECT_EQ(parse(R"("Az")").as_string(), "Az");
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(parse("[]").size(), 0u);
  EXPECT_EQ(parse("{}").size(), 0u);
}

TEST(JsonParse, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "[1 2]", "{\"a\" 1}", "{\"a\":}", "tru", "01a",
        "\"unterminated", "[1],", "{\"a\":1,}", R"("\q")", R"("\u00ZZ")",
        "nan", "[1]]"}) {
    EXPECT_THROW(parse(bad), JsonError) << bad;
  }
}

TEST(JsonParse, RejectsNonAsciiUnicodeEscapes) {
  // é is beyond ASCII: rejected loudly rather than silently mangled.
  EXPECT_THROW(parse("\"\\u00e9\""), JsonError);
  // ASCII \u escapes decode.
  EXPECT_EQ(parse("\"\\u0041\"").as_string(), "A");
  // Raw UTF-8 bytes pass through untouched.
  EXPECT_EQ(parse("\"\xc3\xa9\"").as_string(), "\xc3\xa9");
}

TEST(JsonParse, RejectsControlCharactersInStrings) {
  EXPECT_THROW(parse("\"a\nb\""), JsonError);
}

// --- writer ---------------------------------------------------------------------

TEST(JsonDump, CompactForm) {
  Value o = Value::object();
  o["b"] = true;
  o["n"] = 1.5;
  o["s"] = "x";
  Value arr = Value::array();
  arr.push_back(1);
  arr.push_back(2);
  o["a"] = std::move(arr);
  EXPECT_EQ(dump(o), R"({"a":[1,2],"b":true,"n":1.5,"s":"x"})");
}

TEST(JsonDump, IntegersPrintWithoutDecimals) {
  EXPECT_EQ(dump(Value(42.0)), "42");
  EXPECT_EQ(dump(Value(-7)), "-7");
}

TEST(JsonDump, EscapesSpecialCharacters) {
  EXPECT_EQ(dump(Value("a\"b\\c\nd")), R"("a\"b\\c\nd")");
}

TEST(JsonDump, RejectsNonFiniteNumbers) {
  EXPECT_THROW(dump(Value(std::numeric_limits<double>::infinity())),
               JsonError);
}

TEST(JsonDump, PrettyPrintedFormReparses) {
  Value o = Value::object();
  o["nested"] = Value::array();
  o["nested"].push_back(Value::object());
  o["x"] = 1;
  const std::string pretty = dump(o, 2);
  EXPECT_NE(pretty.find('\n'), std::string::npos);
  EXPECT_EQ(parse(pretty), o);
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Value v1 = parse(GetParam());
  const Value v2 = parse(dump(v1));
  EXPECT_EQ(v1, v2) << GetParam();
  const Value v3 = parse(dump(v1, 2));
  EXPECT_EQ(v1, v3);
}

INSTANTIATE_TEST_SUITE_P(
    Documents, JsonRoundTrip,
    ::testing::Values(
        "null", "true", "[1,2.5,-3e-4,\"s\",null,{}]",
        R"({"a":{"b":{"c":[[[1]]]}},"d":""})",
        R"([{"event":"FP_ARITH","coefficient":0.123456789012345}])",
        "[1e300,-1e-300,0]"));

TEST(JsonRoundTrip, PreservesDoublePrecision) {
  const double v = 0.1234567890123456789;  // more digits than a double holds
  const Value parsed = parse(dump(Value(v)));
  EXPECT_DOUBLE_EQ(parsed.as_number(), v);
}

}  // namespace
}  // namespace catalyst::core::json
