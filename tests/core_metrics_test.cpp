// Unit tests for basis projection, signature tables, metric synthesis and
// coefficient rounding (Sections III-B and VI).
#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/normalize.hpp"
#include "linalg/blas.hpp"
#include "linalg/random.hpp"
#include "linalg/lstsq.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"

namespace catalyst::core {
namespace {

// --- normalize_events -----------------------------------------------------------

TEST(Normalize, ProjectsExactEventOntoBasis) {
  // Basis: two ideal events over 4 slots.
  linalg::Matrix e = linalg::Matrix::from_columns({
      {24, 48, 96, 0},
      {0, 0, 0, 12},
  });
  // Raw event measuring "first ideal + 2 x second ideal".
  std::vector<std::vector<double>> meas{{24, 48, 96, 24}};
  auto res = normalize_events(e, {"EV"}, meas, 1e-6);
  ASSERT_EQ(res.representations.size(), 1u);
  EXPECT_TRUE(res.representations[0].representable);
  EXPECT_NEAR(res.representations[0].xe[0], 1.0, 1e-10);
  EXPECT_NEAR(res.representations[0].xe[1], 2.0, 1e-10);
  EXPECT_EQ(res.x.cols(), 1);
  EXPECT_EQ(res.x_event_names, std::vector<std::string>{"EV"});
}

TEST(Normalize, RejectsUnrepresentableEvent) {
  linalg::Matrix e = linalg::Matrix::from_columns({{24, 48, 96, 0}});
  // A constant vector is far from any multiple of (24,48,96,0).
  std::vector<std::vector<double>> meas{{50, 50, 50, 50}};
  auto res = normalize_events(e, {"CONST"}, meas, 1e-3);
  EXPECT_FALSE(res.representations[0].representable);
  EXPECT_EQ(res.x.cols(), 0);
}

TEST(Normalize, ThresholdControlsAdmission) {
  linalg::Matrix e = linalg::Matrix::from_columns({{1, 0, 0}, {0, 1, 0}});
  std::vector<std::vector<double>> meas{{1.0, 0.0, 0.05}};  // slight residual
  auto strict = normalize_events(e, {"E"}, meas, 1e-6);
  EXPECT_FALSE(strict.representations[0].representable);
  auto lenient = normalize_events(e, {"E"}, meas, 0.1);
  EXPECT_TRUE(lenient.representations[0].representable);
}

TEST(Normalize, ValidatesArguments) {
  linalg::Matrix e(3, 2);
  EXPECT_THROW(normalize_events(e, {"a"}, {}, 0.1), std::invalid_argument);
  EXPECT_THROW(normalize_events(e, {"a"}, {{1, 2}}, 0.1),
               std::invalid_argument);
  EXPECT_THROW(normalize_events(e, {"a"}, {{1, 2, 3}}, -0.1),
               std::invalid_argument);
}

// --- signatures -------------------------------------------------------------------

TEST(Signatures, TableIDimensionsAndDpOps) {
  auto sigs = cpu_flops_signatures();
  ASSERT_EQ(sigs.size(), 6u);
  for (const auto& s : sigs) EXPECT_EQ(s.coordinates.size(), 16u);
  // DP Ops from Section III-B:
  EXPECT_EQ(sigs[4].name, "DP Ops.");
  EXPECT_EQ(sigs[4].coordinates,
            (linalg::Vector{0, 0, 0, 0, 1, 2, 4, 8, 0, 0, 0, 0, 2, 4, 8, 16}));
}

TEST(Signatures, TableIIAllHpOps) {
  auto sigs = gpu_flops_signatures();
  ASSERT_EQ(sigs.size(), 6u);
  for (const auto& s : sigs) EXPECT_EQ(s.coordinates.size(), 15u);
  EXPECT_EQ(sigs[3].name, "All HP Ops.");
  EXPECT_EQ(sigs[3].coordinates,
            (linalg::Vector{1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0}));
}

TEST(Signatures, TableIIIRelations) {
  auto sigs = branch_signatures();
  ASSERT_EQ(sigs.size(), 7u);
  // Not Taken = Retired - Taken;  Correctly Predicted = Retired - Mispred.
  EXPECT_EQ(sigs[2].coordinates, (linalg::Vector{0, 1, -1, 0, 0}));
  EXPECT_EQ(sigs[4].coordinates, (linalg::Vector{0, 1, 0, 0, -1}));
}

TEST(Signatures, TableIVRelations) {
  auto sigs = dcache_signatures();
  ASSERT_EQ(sigs.size(), 6u);
  // L2 Misses = L1 Misses - L2 Hits.
  EXPECT_EQ(sigs[4].coordinates, (linalg::Vector{1, 0, -1, 0}));
}

// --- solve_metric ----------------------------------------------------------------

TEST(SolveMetric, ExactCompositionHasTinyError) {
  // Xhat columns: two events, identity-aligned.
  linalg::Matrix xhat = linalg::Matrix::from_columns({{1, 0}, {0, 1}});
  MetricSignature s{"sum", {1, 1}};
  auto def = solve_metric(xhat, {"E1", "E2"}, s);
  EXPECT_TRUE(def.composable);
  EXPECT_NEAR(def.terms[0].coefficient, 1.0, 1e-12);
  EXPECT_NEAR(def.terms[1].coefficient, 1.0, 1e-12);
  EXPECT_LT(def.backward_error, 1e-14);
}

TEST(SolveMetric, ImpossibleMetricSaturatesErrorAtOne) {
  // Signature entirely outside the column space, as for "All Branches
  // Executed" in Table VII.
  linalg::Matrix xhat = linalg::Matrix::from_columns({{0, 1, 0}, {0, 0, 1}});
  MetricSignature s{"CE", {1, 0, 0}};
  auto def = solve_metric(xhat, {"E1", "E2"}, s);
  EXPECT_FALSE(def.composable);
  EXPECT_NEAR(def.backward_error, 1.0, 1e-10);
}

TEST(SolveMetric, FmaStyleCompromiseGivesPoint8) {
  // One event with the (1, 2) structure; target only the FMA half (0, 2):
  // least squares gives y = 0.8, the Table V pattern.
  linalg::Matrix xhat = linalg::Matrix::from_columns({{1, 2}});
  MetricSignature s{"FMA instrs", {0, 2}};
  auto def = solve_metric(xhat, {"FP"}, s);
  EXPECT_NEAR(def.terms[0].coefficient, 0.8, 1e-12);
  EXPECT_FALSE(def.composable);
  EXPECT_GT(def.backward_error, 0.1);
}

TEST(SolveMetric, ValidatesShapes) {
  linalg::Matrix xhat(3, 2);
  MetricSignature s{"m", {1, 0, 0}};
  EXPECT_THROW(solve_metric(xhat, {"only-one"}, s), std::invalid_argument);
  MetricSignature bad{"m", {1, 0}};
  EXPECT_THROW(solve_metric(xhat, {"a", "b"}, bad), std::invalid_argument);
}

TEST(SolveMetrics, SolvesAllSignatures) {
  linalg::Matrix xhat = linalg::Matrix::from_columns({{1, 0}, {0, 1}});
  auto defs = solve_metrics(xhat, {"A", "B"},
                            {{"m1", {1, 0}}, {"m2", {3, -2}}});
  ASSERT_EQ(defs.size(), 2u);
  EXPECT_NEAR(defs[1].terms[0].coefficient, 3.0, 1e-12);
  EXPECT_NEAR(defs[1].terms[1].coefficient, -2.0, 1e-12);
}

// --- coefficient standard errors -------------------------------------------------

TEST(CoefficientStderr, ZeroForExactOverdeterminedFit) {
  linalg::Matrix xhat = linalg::Matrix::from_columns({{1, 0, 1}, {0, 1, 1}});
  linalg::Vector y{2.0, 3.0};
  linalg::Vector s = linalg::matvec(xhat, y);
  const auto se = coefficient_stderr(xhat, y, s);
  ASSERT_EQ(se.size(), 2u);
  EXPECT_NEAR(se[0], 0.0, 1e-12);
  EXPECT_NEAR(se[1], 0.0, 1e-12);
}

TEST(CoefficientStderr, ZeroWhenNoResidualDegreesOfFreedom) {
  linalg::Matrix xhat = linalg::Matrix::identity(3);
  linalg::Vector y{1, 2, 3};
  linalg::Vector s{1, 2, 3.5};
  const auto se = coefficient_stderr(xhat, y, s);
  EXPECT_EQ(se, (std::vector<double>{0, 0, 0}));
}

TEST(CoefficientStderr, ScalesWithResidualNoise) {
  // Same system solved against two signatures with different residual
  // magnitudes: stderr must scale linearly.
  linalg::Matrix xhat = linalg::random_gaussian(30, 4, 77);
  linalg::Vector y(4, 1.0);
  linalg::Vector clean = linalg::matvec(xhat, y);
  auto perturbed = [&](double eps) {
    linalg::Vector s = clean;
    for (std::size_t i = 0; i < s.size(); ++i) {
      s[i] += eps * ((i % 2 == 0) ? 1.0 : -1.0);
    }
    const auto ls = linalg::lstsq(xhat, s);
    return coefficient_stderr(xhat, ls.x, s);
  };
  const auto se_small = perturbed(1e-3);
  const auto se_big = perturbed(1e-1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GT(se_big[i], 10.0 * se_small[i]);
    EXPECT_NEAR(se_big[i] / se_small[i], 100.0, 1.0);
  }
}

TEST(CoefficientStderr, ValidatesShapes) {
  linalg::Matrix xhat(4, 2);
  linalg::Vector y{1.0};
  linalg::Vector s{1, 2, 3, 4};
  EXPECT_THROW(coefficient_stderr(xhat, y, s), std::invalid_argument);
}

TEST(CoefficientStderr, AttachedToMetricDefinitions) {
  linalg::Matrix xhat = linalg::Matrix::from_columns({{1, 2, 0}, {0, 1, 1}});
  const auto def =
      solve_metric(xhat, {"A", "B"}, MetricSignature{"m", {1, 2.1, 1}});
  ASSERT_EQ(def.coefficient_stderrs.size(), 2u);
  EXPECT_GT(def.coefficient_stderrs[0], 0.0);  // inexact fit -> nonzero
}

// --- coefficient rounding -----------------------------------------------------------

TEST(RoundCoefficients, SnapsNearIntegers) {
  std::vector<MetricTerm> terms{{"a", 1.00001}, {"b", 0.9996},
                                {"c", -1.002}, {"d", 0.00256}};
  auto rounded = round_coefficients(terms, 0.05);
  EXPECT_DOUBLE_EQ(rounded[0].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(rounded[1].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(rounded[2].coefficient, -1.0);
  EXPECT_DOUBLE_EQ(rounded[3].coefficient, 0.0);
}

TEST(RoundCoefficients, LeavesGenuineFractionsAlone) {
  std::vector<MetricTerm> terms{{"a", 0.8}, {"b", 0.5}};
  auto rounded = round_coefficients(terms, 0.02);
  EXPECT_DOUBLE_EQ(rounded[0].coefficient, 0.8);
  EXPECT_DOUBLE_EQ(rounded[1].coefficient, 0.5);
}

TEST(RoundCoefficients, RejectsNegativeTolerance) {
  EXPECT_THROW(round_coefficients({}, -0.1), std::invalid_argument);
}

TEST(DropZeroTerms, RemovesOnlyZeros) {
  std::vector<MetricTerm> terms{{"a", 1.0}, {"b", 0.0}, {"c", -2.0}};
  auto d = drop_zero_terms(terms);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].event_name, "a");
  EXPECT_EQ(d[1].event_name, "c");
}

// --- report formatting ---------------------------------------------------------------

TEST(Report, FormatCombination) {
  std::vector<MetricTerm> terms{{"E1", 1.0}, {"E2", -2.0}, {"E3", 0.0}};
  EXPECT_EQ(format_combination(terms), "1 x E1 - 2 x E2");
  EXPECT_EQ(format_combination({{"E", -1.5}}), "-1.5 x E");
  EXPECT_EQ(format_combination({}), "(none)");
  EXPECT_EQ(format_combination({{"E", 0.0}}), "(none)");
}

TEST(Report, MetricTableMentionsComposability) {
  MetricDefinition def;
  def.metric_name = "Test Metric";
  def.terms = {{"E", 1.0}};
  def.backward_error = 1e-16;
  def.composable = true;
  const auto text = format_metric_table("T", {def});
  EXPECT_NE(text.find("Test Metric"), std::string::npos);
  EXPECT_NE(text.find("[composable]"), std::string::npos);
}

TEST(Report, SignatureTableListsBasisAndRows) {
  const auto text = format_signature_table(
      "Table III", {"CE", "CR", "T", "D", "M"}, branch_signatures());
  EXPECT_NE(text.find("CE, CR, T, D, M"), std::string::npos);
  EXPECT_NE(text.find("Mispredicted Branches."), std::string::npos);
}

}  // namespace
}  // namespace catalyst::core
