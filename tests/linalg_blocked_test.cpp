// Blocked linear algebra: equivalence against the scalar baselines and the
// determinism contract of every threaded path.
//
// The blocked QRCP must select the SAME pivot columns as the scalar
// Algorithm 1 sweep and produce an R factor agreeing to tight ULP-scale
// bounds (its trailing updates associate differently, so bit-identity to
// the scalar path is not claimed).  What IS claimed bitwise:
//
//   * blocked results are identical for ANY worker-thread count and fixed
//     block size (the shared worker pool's determinism contract);
//   * the specialized Algorithm 2 pivot search is bit-identical across
//     thread counts (unique lexicographic minimum of (score, norm, index));
//   * LstsqSolver::solve() is arithmetically identical to lstsq();
//   * the threaded pipeline stages (noise filter, projection) reproduce
//     their serial results exactly.
//
// Every randomized case derives its seeds from seed_util.hpp, so a failure
// replays with CATALYST_SEED=<n>.
#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/noise.hpp"
#include "core/normalize.hpp"
#include "core/qrcp_special.hpp"
#include "linalg/audit.hpp"
#include "linalg/linalg.hpp"
#include "seed_util.hpp"

namespace {

using namespace catalyst;
using catalyst::testing::seed_banner;
using catalyst::testing::sweep_seeds;

constexpr double kEps = std::numeric_limits<double>::epsilon();

// Bitwise equality of two double sequences (0.0 == -0.0 would pass an ==
// comparison; factorization outputs never produce the pair from identical
// inputs, so plain equality is the honest check and prints nicer diffs).
::testing::AssertionResult BitwiseEqual(std::span<const double> a,
                                        std::span<const double> b) {
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "size mismatch: " << a.size() << " vs " << b.size();
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::memcmp(&a[i], &b[i], sizeof(double)) != 0) {
      return ::testing::AssertionFailure()
             << "element " << i << ": " << a[i] << " vs " << b[i];
    }
  }
  return ::testing::AssertionSuccess();
}

// --- blocked QRCP vs the scalar baseline ----------------------------------

TEST(BlockedQrcp, MatchesScalarPermutationAndR) {
  for (std::uint64_t seed : sweep_seeds(1, 8)) {
    const linalg::Matrix a = linalg::random_gaussian(96, 200, seed);
    const auto scalar = linalg::qrcp(a);
    linalg::QrcpOptions opt;
    opt.block_size = 32;
    const auto blocked = linalg::qrcp(a, opt);

    ASSERT_EQ(scalar.rank, blocked.rank) << seed_banner(seed);
    ASSERT_EQ(scalar.permutation, blocked.permutation) << seed_banner(seed);

    const linalg::Matrix rs = scalar.r();
    const linalg::Matrix rb = blocked.r();
    ASSERT_EQ(rs.rows(), rb.rows());
    ASSERT_EQ(rs.cols(), rb.cols());
    for (linalg::index_t j = 0; j < rs.cols(); ++j) {
      // Column norm of R == norm of the permuted input column; the blocked
      // trailing updates perturb each entry by O(m * eps * ||col||).
      const double colnorm = linalg::nrm2(
          a.col(scalar.permutation[static_cast<std::size_t>(j)]));
      const double tol = 1024.0 * kEps * (colnorm + 1.0);
      for (linalg::index_t i = 0; i < rs.rows(); ++i) {
        ASSERT_NEAR(rs(i, j), rb(i, j), tol)
            << seed_banner(seed) << "R(" << i << ", " << j << ")";
      }
    }
  }
}

TEST(BlockedQrcp, MatchesScalarOnRankDeficientInput) {
  for (std::uint64_t seed : sweep_seeds(40, 4)) {
    // 24 independent columns replicated to 96: rank detection and the pivot
    // order must survive heavy column duplication.
    const linalg::Matrix basis = linalg::random_gaussian(48, 24, seed);
    std::vector<linalg::Vector> cols;
    for (linalg::index_t j = 0; j < 96; ++j) {
      linalg::Vector c(static_cast<std::size_t>(basis.rows()));
      const auto src = basis.col(j % 24);
      std::copy(src.begin(), src.end(), c.begin());
      // Scale duplicates so column norms are distinct (no pivot ties).
      const double s = 1.0 + 0.03125 * static_cast<double>(j / 24);
      for (double& x : c) x *= s;
      cols.push_back(std::move(c));
    }
    const linalg::Matrix a = linalg::Matrix::from_columns(cols);

    const auto scalar = linalg::qrcp(a, 1e-10);
    linalg::QrcpOptions opt;
    opt.rank_tol_rel = 1e-10;
    opt.block_size = 8;
    const auto blocked = linalg::qrcp(a, opt);

    EXPECT_EQ(scalar.rank, blocked.rank) << seed_banner(seed);
    EXPECT_EQ(scalar.permutation, blocked.permutation) << seed_banner(seed);
  }
}

TEST(BlockedQrcp, BitIdenticalAcrossThreadsAndBlockSizes) {
  for (std::uint64_t seed : sweep_seeds(10, 3)) {
    const linalg::Matrix a = linalg::random_gaussian(64, 160, seed);
    for (linalg::index_t block : {8, 32, 64}) {
      linalg::QrcpOptions ref_opt;
      ref_opt.block_size = block;
      ref_opt.threads = 1;
      const auto ref = linalg::qrcp(a, ref_opt);
      for (int threads : {2, 8}) {
        linalg::QrcpOptions opt = ref_opt;
        opt.threads = threads;
        const auto res = linalg::qrcp(a, opt);
        EXPECT_EQ(ref.rank, res.rank)
            << seed_banner(seed) << "block=" << block << " t=" << threads;
        EXPECT_EQ(ref.permutation, res.permutation)
            << seed_banner(seed) << "block=" << block << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(ref.taus, res.taus))
            << seed_banner(seed) << "block=" << block << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(ref.packed.data(), res.packed.data()))
            << seed_banner(seed) << "block=" << block << " t=" << threads;
      }
    }
  }
}

TEST(BlockedQrcp, AuditVerifiesBlockedFactorization) {
  // CATALYST_AUDIT=1 must reform Q and verify AP = QR on the blocked path
  // exactly as on the scalar one.
  const linalg::audit::EnabledGuard guard(true);
  const linalg::Matrix a = linalg::random_gaussian(48, 120, 7);
  linalg::QrcpOptions opt;
  opt.block_size = 32;
  opt.threads = 4;
  EXPECT_NO_THROW({
    const auto res = linalg::qrcp(a, opt);
    EXPECT_EQ(res.rank, 48);
  });
}

TEST(BlockedQrcp, AutoBlockSizePicksScalarForNarrowMatrices) {
  // block_size 0 on a narrow matrix must take the scalar path and therefore
  // be BIT-identical to qrcp(a, tol) -- the golden-table guarantee.
  const linalg::Matrix a = linalg::random_gaussian(32, 48, 11);
  const auto scalar = linalg::qrcp(a);
  const auto auto_res = linalg::qrcp(a, linalg::QrcpOptions{});
  EXPECT_EQ(scalar.permutation, auto_res.permutation);
  EXPECT_TRUE(BitwiseEqual(scalar.packed.data(), auto_res.packed.data()));
  EXPECT_TRUE(BitwiseEqual(scalar.taus, auto_res.taus));
}

// --- blocked (unpivoted) QR -----------------------------------------------

TEST(BlockedQr, BitIdenticalAcrossThreadsAndAuditClean) {
  const linalg::audit::EnabledGuard guard(true);  // verifies A = QR per run
  for (std::uint64_t seed : sweep_seeds(30, 3)) {
    const linalg::Matrix a = linalg::random_gaussian(128, 96, seed);
    for (linalg::index_t block : {8, 32, 64}) {
      const linalg::QrFactorization ref(a, block, 1);
      for (int threads : {2, 8}) {
        const linalg::QrFactorization qr(a, block, threads);
        EXPECT_TRUE(BitwiseEqual(ref.packed().data(), qr.packed().data()))
            << seed_banner(seed) << "block=" << block << " t=" << threads;
        EXPECT_TRUE(BitwiseEqual(ref.taus(), qr.taus()))
            << seed_banner(seed) << "block=" << block << " t=" << threads;
      }
    }
  }
}

TEST(BlockedQr, SolvesSameSystemsAsUnblocked) {
  for (std::uint64_t seed : sweep_seeds(60, 4)) {
    const linalg::Matrix a = linalg::random_gaussian(96, 24, seed);
    linalg::Vector b(96);
    for (std::size_t i = 0; i < b.size(); ++i) {
      b[i] = std::sin(static_cast<double>(i + seed));
    }
    const auto unblocked = linalg::lstsq(a, b);

    // Solve via the blocked factorization by hand: Q^T b, then R x = c.
    const linalg::QrFactorization qr(a, 32, 2);
    linalg::Vector c = b;
    qr.apply_qt(c);
    linalg::Vector x(c.begin(), c.begin() + 24);
    linalg::trsv_upper(qr.packed(), x);

    const double xnorm = linalg::nrm2(unblocked.x);
    for (std::size_t i = 0; i < x.size(); ++i) {
      EXPECT_NEAR(x[i], unblocked.x[i], 1e-10 * (xnorm + 1.0))
          << seed_banner(seed) << "x[" << i << "]";
    }
  }
}

// --- specialized Algorithm 2 ----------------------------------------------

TEST(SpecializedQrcp, BitIdenticalAcrossThreads) {
  for (std::uint64_t seed : sweep_seeds(80, 5)) {
    const linalg::Matrix x = linalg::random_gaussian(16, 512, seed);
    const auto ref =
        core::specialized_qrcp(x, 5e-4, core::PivotRule::original_score, 1);
    for (int threads : {2, 8}) {
      const auto res = core::specialized_qrcp(
          x, 5e-4, core::PivotRule::original_score, threads);
      EXPECT_EQ(ref.rank, res.rank) << seed_banner(seed) << "t=" << threads;
      EXPECT_EQ(ref.selected, res.selected)
          << seed_banner(seed) << "t=" << threads;
      EXPECT_TRUE(BitwiseEqual(ref.pivot_scores, res.pivot_scores))
          << seed_banner(seed) << "t=" << threads;
    }
  }
}

// --- prefactored least squares --------------------------------------------

TEST(LstsqSolver, SolveIsArithmeticallyIdenticalToLstsq) {
  for (std::uint64_t seed : sweep_seeds(100, 5)) {
    const linalg::Matrix a = linalg::random_gaussian(48, 16, seed);
    const linalg::LstsqSolver solver(a);
    for (int rhs = 0; rhs < 4; ++rhs) {
      linalg::Vector b(48);
      for (std::size_t i = 0; i < b.size(); ++i) {
        b[i] = std::cos(static_cast<double>(i) + 7.0 * rhs);
      }
      const auto direct = linalg::lstsq(a, b);
      const auto via_solver = solver.solve(b);
      EXPECT_TRUE(BitwiseEqual(direct.x, via_solver.x))
          << seed_banner(seed) << "rhs " << rhs;
      EXPECT_EQ(direct.residual_norm, via_solver.residual_norm)
          << seed_banner(seed);
      EXPECT_EQ(direct.backward_error, via_solver.backward_error)
          << seed_banner(seed);
      EXPECT_EQ(direct.rank_deficient, via_solver.rank_deficient)
          << seed_banner(seed);
    }
  }
}

// --- threaded pipeline stages ---------------------------------------------

TEST(PipelineStages, NormalizeEventsBitIdenticalAcrossThreads) {
  for (std::uint64_t seed : sweep_seeds(120, 3)) {
    const linalg::Matrix expectation = linalg::random_gaussian(12, 4, seed);
    std::vector<std::string> names;
    std::vector<std::vector<double>> measurements;
    for (int e = 0; e < 30; ++e) {
      names.push_back("EV" + std::to_string(e));
      const linalg::Matrix v =
          linalg::random_gaussian(12, 1, seed * 1000 + e);
      measurements.emplace_back(v.data().begin(), v.data().end());
    }
    const auto serial =
        core::normalize_events(expectation, names, measurements, 1e-2, 1);
    const auto threaded =
        core::normalize_events(expectation, names, measurements, 1e-2, 4);
    ASSERT_EQ(serial.representations.size(), threaded.representations.size());
    for (std::size_t e = 0; e < serial.representations.size(); ++e) {
      const auto& sr = serial.representations[e];
      const auto& tr = threaded.representations[e];
      EXPECT_EQ(sr.event_name, tr.event_name);
      EXPECT_EQ(sr.representable, tr.representable) << seed_banner(seed);
      EXPECT_EQ(sr.backward_error, tr.backward_error) << seed_banner(seed);
      EXPECT_TRUE(BitwiseEqual(sr.xe, tr.xe)) << seed_banner(seed);
    }
    EXPECT_EQ(serial.x_event_names, threaded.x_event_names);
    EXPECT_TRUE(BitwiseEqual(serial.x.data(), threaded.x.data()))
        << seed_banner(seed);
  }
}

TEST(PipelineStages, FilterNoiseBitIdenticalAcrossThreads) {
  for (std::uint64_t seed : sweep_seeds(140, 3)) {
    std::vector<std::string> names;
    std::vector<std::vector<std::vector<double>>> measurements;
    for (int e = 0; e < 24; ++e) {
      names.push_back("EV" + std::to_string(e));
      std::vector<std::vector<double>> reps;
      for (int r = 0; r < 3; ++r) {
        const linalg::Matrix v =
            linalg::random_gaussian(8, 1, seed * 997 + e * 7 + r);
        std::vector<double> rep(v.data().begin(), v.data().end());
        // A noisy third of the events: inflate one repetition so the tau
        // filter discards them identically on both paths.
        if (e % 3 == 0 && r == 2) {
          for (double& x : rep) x *= 1.5;
        }
        reps.push_back(std::move(rep));
      }
      measurements.push_back(std::move(reps));
    }
    const auto serial = core::filter_noise(names, measurements, 1e-1, 1);
    const auto threaded = core::filter_noise(names, measurements, 1e-1, 4);
    EXPECT_EQ(serial.kept, threaded.kept) << seed_banner(seed);
    ASSERT_EQ(serial.averaged.size(), threaded.averaged.size());
    for (std::size_t i = 0; i < serial.averaged.size(); ++i) {
      EXPECT_TRUE(BitwiseEqual(serial.averaged[i], threaded.averaged[i]))
          << seed_banner(seed);
    }
    ASSERT_EQ(serial.variabilities.size(), threaded.variabilities.size());
    for (std::size_t i = 0; i < serial.variabilities.size(); ++i) {
      EXPECT_EQ(serial.variabilities[i].max_rnmse,
                threaded.variabilities[i].max_rnmse)
          << seed_banner(seed);
      EXPECT_EQ(serial.variabilities[i].all_zero,
                threaded.variabilities[i].all_zero);
    }
  }
}

// --- threaded gemm --------------------------------------------------------

TEST(BlockedGemm, BitIdenticalAcrossThreadsAboveAndBelowThreshold) {
  for (std::uint64_t seed : sweep_seeds(160, 3)) {
    // 160x160x160 is far above the blocked-path threshold; 16x16x16 below.
    for (linalg::index_t n : {16, 160}) {
      const linalg::Matrix a = linalg::random_gaussian(n, n, seed);
      const linalg::Matrix b = linalg::random_gaussian(n, n, seed + 500);
      linalg::Matrix ref(n, n);
      linalg::gemm(1.0, a, false, b, false, 0.0, ref, 1);
      for (int threads : {2, 8}) {
        linalg::Matrix c(n, n);
        linalg::gemm(1.0, a, false, b, false, 0.0, c, threads);
        EXPECT_TRUE(BitwiseEqual(ref.data(), c.data()))
            << seed_banner(seed) << "n=" << n << " t=" << threads;
      }
    }
  }
}

TEST(BlockedGemm, BlockedPathMatchesNaiveToRoundoff) {
  for (std::uint64_t seed : sweep_seeds(180, 3)) {
    const linalg::index_t n = 96;
    const linalg::Matrix a = linalg::random_gaussian(n, n, seed);
    const linalg::Matrix b = linalg::random_gaussian(n, n, seed + 500);
    // Naive reference: gemm on a product SMALL enough to stay scalar is the
    // historical j-k-i loop; emulate it here directly.
    linalg::Matrix ref(n, n);
    for (linalg::index_t j = 0; j < n; ++j) {
      for (linalg::index_t k = 0; k < n; ++k) {
        const double f = b(k, j);
        for (linalg::index_t i = 0; i < n; ++i) ref(i, j) += a(i, k) * f;
      }
    }
    linalg::Matrix c(n, n);
    linalg::gemm(1.0, a, false, b, false, 0.0, c);  // blocked (n^3 = 884736)
    const double tol = 64.0 * kEps * static_cast<double>(n);
    for (linalg::index_t j = 0; j < n; ++j) {
      for (linalg::index_t i = 0; i < n; ++i) {
        ASSERT_NEAR(ref(i, j), c(i, j), tol)
            << seed_banner(seed) << "C(" << i << ", " << j << ")";
      }
    }
  }
}

}  // namespace
