// Cross-module property sweeps:
//   * the specialized QRCP must recover a planted clean event set from
//     randomized measurement matrices (duplicates + combinations + noise
//     columns + a huge-norm column), for any seed;
//   * the set-associative LRU cache must agree, access by access, with an
//     executable reference model on random traces;
//   * the QR least-squares solver must agree with an SVD-based
//     pseudo-inverse solve.
#include <gtest/gtest.h>

#include "seed_util.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <random>

#include "cachesim/cachesim.hpp"
#include "core/qrcp_special.hpp"
#include "linalg/linalg.hpp"

namespace catalyst {
namespace {

// --- planted-structure QRCP sweep ---------------------------------------------

class PlantedQrcp : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlantedQrcp, RecoversExactlyThePlantedCleanColumns) {
  const std::uint64_t seed = GetParam();
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> dim_dist(4, 10);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  const int dims = dim_dist(rng);

  // Planted clean columns: basis vectors (with noise far below alpha),
  // several per dimension -- any copy is an equally valid pick, so the
  // column's TYPE carries the invariant: the algorithm must select only
  // basis-aligned columns, one per dimension, never a combination, a noise
  // column, or the huge-norm trap.
  std::vector<linalg::Vector> columns;
  std::vector<int> column_dim;  // >= 0: unit column of that dim; -1: pollution
  std::normal_distribution<double> tiny(0.0, 5e-6);
  auto noisy_unit = [&](int dim) {
    linalg::Vector v(static_cast<std::size_t>(dims), 0.0);
    for (auto& x : v) x = tiny(rng);
    v[static_cast<std::size_t>(dim)] += 1.0;
    return v;
  };
  for (int copy = 0; copy < 2; ++copy) {
    for (int d = 0; d < dims; ++d) {
      columns.push_back(noisy_unit(d));
      column_dim.push_back(d);
    }
  }
  // Pollution: pairwise combinations, pure noise columns, one huge column.
  for (int k = 0; k + 1 < dims; ++k) {
    linalg::Vector combo = noisy_unit(k);
    const auto other = noisy_unit(k + 1);
    for (std::size_t i = 0; i < combo.size(); ++i) combo[i] += other[i];
    columns.push_back(combo);  // combination (score 2)
    column_dim.push_back(-1);
  }
  for (int k = 0; k < 3; ++k) {
    linalg::Vector noise(static_cast<std::size_t>(dims));
    for (auto& x : noise) x = tiny(rng);
    columns.push_back(noise);  // below beta
    column_dim.push_back(-1);
  }
  {
    linalg::Vector huge(static_cast<std::size_t>(dims), 1e5);
    columns.push_back(huge);  // the max-norm trap
    column_dim.push_back(-1);
  }
  // Shuffle so position carries no information.
  std::vector<std::size_t> order(columns.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng);
  std::vector<linalg::Vector> shuffled(columns.size());
  std::vector<int> shuffled_dim(columns.size());
  for (std::size_t pos = 0; pos < order.size(); ++pos) {
    shuffled[pos] = columns[order[pos]];
    shuffled_dim[pos] = column_dim[order[pos]];
  }

  const auto x = linalg::Matrix::from_columns(shuffled);
  const auto res = core::specialized_qrcp(x, 5e-4);

  ASSERT_EQ(res.rank, dims) << testing::seed_banner(seed);
  std::vector<bool> covered(static_cast<std::size_t>(dims), false);
  for (linalg::index_t sel : res.selected) {
    const int dim = shuffled_dim[static_cast<std::size_t>(sel)];
    ASSERT_GE(dim, 0) << testing::seed_banner(seed) << " picked polluted column "
                      << sel;
    EXPECT_FALSE(covered[static_cast<std::size_t>(dim)])
        << testing::seed_banner(seed) << " picked dimension " << dim << " twice";
    covered[static_cast<std::size_t>(dim)] = true;
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool c) { return c; }))
      << testing::seed_banner(seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantedQrcp,
                         ::testing::ValuesIn(testing::sweep_seeds(1, 10)));

// --- cache reference model ----------------------------------------------------

// Executable specification: per-set LRU as an ordered deque of tags.
class ReferenceLru {
 public:
  ReferenceLru(std::uint64_t sets, std::uint32_t ways, std::uint32_t line)
      : sets_(sets), ways_(ways), line_(line) {}

  bool access(std::uint64_t addr) {
    const std::uint64_t tag = addr / line_;
    auto& set = sets_map_[tag % sets_];
    auto it = std::find(set.begin(), set.end(), tag);
    if (it != set.end()) {
      set.erase(it);
      set.push_front(tag);
      return true;
    }
    set.push_front(tag);
    if (set.size() > ways_) set.pop_back();
    return false;
  }

 private:
  std::uint64_t sets_;
  std::uint32_t ways_;
  std::uint32_t line_;
  std::map<std::uint64_t, std::deque<std::uint64_t>> sets_map_;
};

class CacheVsReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CacheVsReference, HitMissSequencesAgreeOnRandomTraces) {
  const std::uint64_t seed = GetParam();
  cachesim::LevelConfig cfg{"T", 2048, 64, 4};  // 8 sets x 4 ways
  cachesim::CacheLevel cache(cfg);
  ReferenceLru reference(cfg.num_sets(), cfg.associativity, cfg.line_bytes);

  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint64_t> addr(0, 64 * 1024);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t a = addr(rng);
    EXPECT_EQ(cache.access(a), reference.access(a))
        << testing::seed_banner(seed) << " access " << i << " addr " << a;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheVsReference,
                         ::testing::ValuesIn(testing::sweep_seeds(11, 5)));

// --- lstsq vs SVD pseudo-inverse ------------------------------------------------

class LstsqVsSvd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LstsqVsSvd, SolutionsAgreeOnFullRankSystems) {
  const std::uint64_t seed = GetParam();
  const auto a = linalg::random_gaussian(24, 7, seed);
  linalg::Vector b(24);
  std::mt19937_64 rng(seed ^ 0xb0b);
  std::normal_distribution<double> gauss(0.0, 1.0);
  for (auto& v : b) v = gauss(rng);

  const auto qr_solution = linalg::lstsq(a, b).x;

  // Pseudo-inverse solve: x = V * diag(1/sigma) * U^T b.
  const auto svd = linalg::svd(a);
  linalg::Vector utb = linalg::matvec_t(svd.u, b);
  for (std::size_t i = 0; i < utb.size(); ++i) {
    utb[i] /= svd.singular_values[i];
  }
  const linalg::Vector svd_solution = linalg::matvec(svd.v, utb);

  ASSERT_EQ(qr_solution.size(), svd_solution.size());
  for (std::size_t i = 0; i < qr_solution.size(); ++i) {
    EXPECT_NEAR(qr_solution[i], svd_solution[i], 1e-9) << testing::seed_banner(seed);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LstsqVsSvd,
                         ::testing::ValuesIn(testing::sweep_seeds(101, 6)));

}  // namespace
}  // namespace catalyst
