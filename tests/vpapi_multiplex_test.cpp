// Tests for PAPI-style time-division multiplexing in the vpapi session.
#include <gtest/gtest.h>

#include <cmath>

#include "vpapi/collector.hpp"

namespace catalyst::vpapi {
namespace {

// 2 physical counters, 6 deterministic events (value = k * x).
pmu::Machine mux_machine() {
  pmu::Machine m("mux", 2, 17);
  for (int k = 1; k <= 6; ++k) {
    m.add_event({"E" + std::to_string(k), "",
                 {{"x", static_cast<double>(k)}}, {}});
  }
  return m;
}

TEST(Multiplex, EnableLifecycle) {
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  EXPECT_FALSE(s.is_multiplexed(set));
  EXPECT_EQ(s.enable_multiplexing(set), Status::ok);
  EXPECT_TRUE(s.is_multiplexed(set));
  s.add_event(set, "E1");
  s.start(set);
  EXPECT_EQ(s.enable_multiplexing(set), Status::is_running);
  s.stop(set);
  EXPECT_EQ(s.enable_multiplexing(99), Status::no_such_eventset);
}

TEST(Multiplex, AllowsMoreEventsThanCounters) {
  auto m = mux_machine();
  Session s(m);
  const int plain = s.create_eventset();
  s.add_event(plain, "E1");
  s.add_event(plain, "E2");
  EXPECT_EQ(s.add_event(plain, "E3"), Status::conflict);

  const int mux = s.create_eventset();
  s.enable_multiplexing(mux);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_EQ(s.add_event(mux, "E" + std::to_string(k)), Status::ok) << k;
  }
  EXPECT_EQ(s.list_events(mux).size(), 6u);
}

TEST(Multiplex, WithinBudgetBehavesExactly) {
  // Multiplexing enabled but only 2 events: no slicing, exact counts.
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.enable_multiplexing(set);
  s.add_event(set, "E1");
  s.add_event(set, "E2");
  s.start(set);
  for (int k = 0; k < 5; ++k) s.run_kernel({{"x", 10.0}}, 0, k);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  EXPECT_DOUBLE_EQ(vals[0], 50.0);
  EXPECT_DOUBLE_EQ(vals[1], 100.0);
}

TEST(Multiplex, EstimatesConvergeOnSteadyWorkload) {
  // Constant per-kernel activity: the duty-cycle extrapolation is exact
  // once every slot has been scheduled at least once.
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.enable_multiplexing(set);
  for (int k = 1; k <= 6; ++k) s.add_event(set, "E" + std::to_string(k));
  s.start(set);
  const int kernels = 300;  // 300 slices, 2 live slots each, 6 slots
  for (int k = 0; k < kernels; ++k) s.run_kernel({{"x", 10.0}}, 0, k);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  for (int k = 1; k <= 6; ++k) {
    const double truth = 10.0 * k * kernels;
    EXPECT_NEAR(vals[k - 1] / truth, 1.0, 1e-9) << "E" << k;
  }
}

TEST(Multiplex, EstimatesAreNoisyOnVaryingWorkload) {
  // Activity varies per kernel: each slot saw a different subset of the
  // work, so extrapolation has real error -- the multiplexing noise.
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.enable_multiplexing(set);
  for (int k = 1; k <= 6; ++k) s.add_event(set, "E" + std::to_string(k));
  s.start(set);
  double truth_x = 0.0;
  for (int k = 0; k < 31; ++k) {  // odd count: uneven slice coverage
    const double x = (k % 5 == 0) ? 100.0 : 1.0;  // bursty
    truth_x += x;
    s.run_kernel({{"x", x}}, 0, k);
  }
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  double max_rel = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double truth = truth_x * k;
    max_rel = std::max(max_rel, std::fabs(vals[k - 1] - truth) / truth);
  }
  EXPECT_GT(max_rel, 0.05);  // visible estimation error
  EXPECT_LT(max_rel, 2.0);   // but a sane order of magnitude
}

TEST(Multiplex, ResetClearsSliceAccounting) {
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.enable_multiplexing(set);
  for (int k = 1; k <= 6; ++k) s.add_event(set, "E" + std::to_string(k));
  s.start(set);
  for (int k = 0; k < 12; ++k) s.run_kernel({{"x", 1.0}}, 0, k);
  s.reset(set);
  for (int k = 0; k < 60; ++k) s.run_kernel({{"x", 10.0}}, 0, k);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  for (int k = 1; k <= 6; ++k) {
    EXPECT_NEAR(vals[k - 1], 10.0 * k * 60, 1e-6);
  }
}

TEST(MultiplexCollector, WithinBudgetMatchesGroupedExactly) {
  // 2 events over 2 counters: the multiplexed collector never slices and
  // must agree with grouped collection on deterministic events.
  auto m = mux_machine();
  std::vector<pmu::Activity> acts{{{"x", 10.0}}, {{"x", 20.0}},
                                  {{"x", 30.0}}};
  const std::vector<std::string> events{"E1", "E2"};
  const auto grouped = collect(m, events, acts, 2);
  const auto muxed = collect_multiplexed(m, events, acts, 2);
  for (std::size_t rep = 0; rep < 2; ++rep) {
    EXPECT_EQ(muxed.repetitions[rep].values, grouped.repetitions[rep].values);
  }
  EXPECT_EQ(muxed.runs_per_repetition, 1u);
}

TEST(MultiplexCollector, OverBudgetIsApproximateNotExact) {
  // 6 events over 2 counters, bursty kernels: totals are extrapolations.
  auto m = mux_machine();
  std::vector<pmu::Activity> acts;
  for (int k = 0; k < 9; ++k) {
    acts.push_back({{"x", k % 3 == 0 ? 100.0 : 1.0}});
  }
  std::vector<std::string> events;
  for (int k = 1; k <= 6; ++k) events.push_back("E" + std::to_string(k));
  const auto grouped = collect(m, events, acts, 1);
  const auto muxed = collect_multiplexed(m, events, acts, 1);
  double max_rel = 0.0;
  double total_rel = 0.0;
  for (std::size_t e = 0; e < events.size(); ++e) {
    double truth_total = 0.0, est_total = 0.0;
    for (std::size_t k = 0; k < acts.size(); ++k) {
      const double truth = grouped.repetitions[0].values[e][k];
      const double est = muxed.repetitions[0].values[e][k];
      truth_total += truth;
      est_total += est;
      if (truth > 0.0) {
        max_rel = std::max(max_rel, std::fabs(est - truth) / truth);
      }
    }
    total_rel = std::max(total_rel,
                         std::fabs(est_total - truth_total) / truth_total);
  }
  // Per-kernel estimates are visibly wrong on a bursty workload...
  EXPECT_GT(max_rel, 0.2);
  // ...and even whole-run totals can be off by a multiple when the slice
  // rotation aliases with the burst period (here: period-3 bursts vs a
  // 3-slice rotation) -- bounded, but nothing like the exact grouped
  // collection.
  EXPECT_LT(total_rel, 5.0);
}

TEST(Multiplex, PhaseRotationBalancesSliceShares) {
  // The residual-bias regression: 6 events on 2 counters is 3 slice groups,
  // and 4 kernels per repetition leaves 4 % 3 = 1 extra slice.  With the
  // cursor pinned at zero the FIRST group collects that extra slice every
  // repetition -- 6/6/3/3/3/3 slice totals over three repetitions -- a
  // systematic duty-cycle bias against the trailing events.  Rotating the
  // phase by rep * kernels (what collect_multiplexed does) hands the extra
  // slice to a different group each repetition: 4/4/4/4/4/4.
  auto m = mux_machine();
  const std::size_t kernels = 4, reps = 3;

  auto slice_totals = [&](bool rotate) {
    std::vector<std::uint64_t> totals(6, 0);
    for (std::size_t rep = 0; rep < reps; ++rep) {
      Session s(m);
      const int set = s.create_eventset();
      s.enable_multiplexing(set);
      for (int k = 1; k <= 6; ++k) s.add_event(set, "E" + std::to_string(k));
      if (rotate) {
        EXPECT_EQ(s.set_multiplex_phase(set, rep * kernels), Status::ok);
      }
      s.start(set);
      for (std::size_t k = 0; k < kernels; ++k) {
        s.run_kernel({{"x", 1.0}}, rep, static_cast<std::size_t>(k));
      }
      s.stop(set);
      const auto counts = s.slice_counts(set);
      EXPECT_EQ(counts.size(), 6u);
      for (std::size_t e = 0; e < counts.size(); ++e) totals[e] += counts[e];
    }
    return totals;
  };

  const auto pinned = slice_totals(false);
  EXPECT_EQ(pinned, (std::vector<std::uint64_t>{6, 6, 3, 3, 3, 3}));
  const auto rotated = slice_totals(true);
  EXPECT_EQ(rotated, (std::vector<std::uint64_t>{4, 4, 4, 4, 4, 4}));
}

TEST(Multiplex, PhaseIsNoOpWithinBudget) {
  // A set that is not oversubscribed counts every slice on every slot: the
  // phase knob must not disturb exact collection.
  auto m = mux_machine();
  Session s(m);
  const int set = s.create_eventset();
  s.enable_multiplexing(set);
  s.add_event(set, "E1");
  s.add_event(set, "E2");
  EXPECT_EQ(s.set_multiplex_phase(set, 7), Status::ok);
  s.start(set);
  EXPECT_EQ(s.set_multiplex_phase(set, 1), Status::is_running);
  for (int k = 0; k < 5; ++k) s.run_kernel({{"x", 10.0}}, 0, k);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  EXPECT_DOUBLE_EQ(vals[0], 50.0);
  EXPECT_DOUBLE_EQ(vals[1], 100.0);
  EXPECT_EQ(s.set_multiplex_phase(99, 0), Status::no_such_eventset);
}

TEST(MultiplexCollector, RotationIsFairAcrossEventsOnBurstyWork) {
  // Bursty workload, 4 kernels over 3 groups: any single repetition badly
  // over- or under-extrapolates depending on which slices a group owned.
  // With the cursor pinned the SAME leading group owns the favourable
  // slices every repetition, so the error is also biased per event.  The
  // rotation hands each group every slice position exactly once across 3
  // repetitions, so the 3-repetition mean has the IDENTICAL relative error
  // for every event -- the residual bias is shared fairly instead of
  // penalising the trailing groups.
  auto m = mux_machine();
  std::vector<pmu::Activity> acts{{{"x", 100.0}}, {{"x", 1.0}},
                                  {{"x", 1.0}}, {{"x", 1.0}}};
  const std::vector<std::string> events{"E1", "E2", "E3",
                                        "E4", "E5", "E6"};
  const auto muxed = collect_multiplexed(m, events, acts, 3);
  std::vector<double> rel(events.size(), 0.0);
  for (std::size_t e = 0; e < events.size(); ++e) {
    const double truth = 103.0 * static_cast<double>(e + 1);
    double mean = 0.0;
    for (std::size_t rep = 0; rep < 3; ++rep) {
      double total = 0.0;
      for (std::size_t k = 0; k < acts.size(); ++k) {
        total += muxed.repetitions[rep].values[e][k];
      }
      mean += total / 3.0;
    }
    rel[e] = mean / truth;
  }
  for (std::size_t e = 1; e < rel.size(); ++e) {
    EXPECT_NEAR(rel[e], rel[0], 1e-9) << events[e];
  }
}

TEST(MultiplexCollector, RejectsBadArguments) {
  auto m = mux_machine();
  EXPECT_THROW(collect_multiplexed(m, {"E1"}, {{{"x", 1.0}}}, 0),
               std::invalid_argument);
  EXPECT_THROW(collect_multiplexed(m, {"NOPE"}, {{{"x", 1.0}}}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace catalyst::vpapi
