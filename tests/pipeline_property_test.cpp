// Property tests on the end-to-end pipeline: determinism, thread
// invariance, and structural invariants that must hold for ANY benchmark /
// machine combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <random>
#include <set>

#include "seed_util.hpp"

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "linalg/svd.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

struct Combo {
  const char* machine;
  const char* benchmark;
};

class PipelineInvariants : public ::testing::TestWithParam<Combo> {
 protected:
  static pmu::Machine make_machine(const std::string& name) {
    if (name == "saphira") return pmu::saphira_cpu();
    if (name == "tempest") return pmu::tempest_gpu();
    return pmu::vesuvio_cpu();
  }
  static cat::Benchmark make_benchmark(const std::string& name) {
    if (name == "cpu_flops") return cat::cpu_flops_benchmark();
    if (name == "gpu_flops") return cat::gpu_flops_benchmark();
    return cat::branch_benchmark();
  }
  static std::vector<MetricSignature> make_signatures(
      const std::string& name) {
    if (name == "cpu_flops") return cpu_flops_signatures();
    if (name == "gpu_flops") return gpu_flops_signatures();
    return branch_signatures();
  }

  PipelineResult run() const {
    const auto combo = GetParam();
    return run_pipeline(make_machine(combo.machine),
                        make_benchmark(combo.benchmark),
                        make_signatures(combo.benchmark));
  }
};

TEST_P(PipelineInvariants, StagesOnlyShrinkTheEventSet) {
  const auto result = run();
  EXPECT_LE(result.noise.kept.size(), result.all_event_names.size());
  EXPECT_LE(result.projection.x_event_names.size(),
            result.noise.kept.size());
  EXPECT_LE(result.xhat_events.size(),
            result.projection.x_event_names.size());
}

TEST_P(PipelineInvariants, SelectionBoundedByBasisDimension) {
  const auto result = run();
  EXPECT_LE(static_cast<linalg::index_t>(result.xhat_events.size()),
            result.xhat.rows());
}

TEST_P(PipelineInvariants, XhatHasFullColumnRank) {
  const auto result = run();
  if (result.xhat.cols() == 0) GTEST_SKIP();
  EXPECT_EQ(linalg::numerical_rank(result.xhat, 1e-8), result.xhat.cols());
}

TEST_P(PipelineInvariants, SelectedEventsAreDistinct) {
  const auto result = run();
  std::set<std::string> uniq(result.xhat_events.begin(),
                             result.xhat_events.end());
  EXPECT_EQ(uniq.size(), result.xhat_events.size());
}

TEST_P(PipelineInvariants, EveryMetricHasOneTermPerSelectedEvent) {
  const auto result = run();
  for (const auto& m : result.metrics) {
    EXPECT_EQ(m.terms.size(), result.xhat_events.size()) << m.metric_name;
    EXPECT_GE(m.backward_error, 0.0);
    // Eq. 5 is bounded by ||s|| / ||s|| = 1 at the zero solution; the
    // least-squares solution can only do better (up to roundoff).
    EXPECT_LE(m.backward_error, 1.0 + 1e-9) << m.metric_name;
  }
}

TEST_P(PipelineInvariants, DeterministicAcrossRuns) {
  const auto r1 = run();
  const auto r2 = run();
  EXPECT_EQ(r1.xhat_events, r2.xhat_events);
  ASSERT_EQ(r1.metrics.size(), r2.metrics.size());
  for (std::size_t i = 0; i < r1.metrics.size(); ++i) {
    EXPECT_EQ(r1.metrics[i].backward_error, r2.metrics[i].backward_error);
    for (std::size_t t = 0; t < r1.metrics[i].terms.size(); ++t) {
      EXPECT_EQ(r1.metrics[i].terms[t].coefficient,
                r2.metrics[i].terms[t].coefficient);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Combos, PipelineInvariants,
    ::testing::Values(Combo{"saphira", "cpu_flops"},
                      Combo{"saphira", "branch"},
                      Combo{"vesuvio", "cpu_flops"},
                      Combo{"vesuvio", "branch"},
                      Combo{"tempest", "gpu_flops"}),
    [](const ::testing::TestParamInfo<Combo>& param_info) {
      return std::string(param_info.param.machine) + "_" +
             param_info.param.benchmark;
    });

TEST(PipelineInvariance, SlotPermutationDoesNotChangeSelection) {
  // Reversing the order of benchmark slots permutes E's rows and every
  // measurement vector identically; the selected events and metric
  // solutions must not change.
  const pmu::Machine machine = pmu::saphira_cpu();
  cat::Benchmark bench = cat::branch_benchmark();
  cat::Benchmark reversed = bench;
  std::reverse(reversed.slots.begin(), reversed.slots.end());
  for (linalg::index_t r = 0; r < bench.basis.e.rows(); ++r) {
    reversed.basis.e.set_row(bench.basis.e.rows() - 1 - r,
                             bench.basis.e.row_copy(r));
  }
  const auto a = run_pipeline(machine, bench, branch_signatures());
  const auto b = run_pipeline(machine, reversed, branch_signatures());
  EXPECT_EQ(a.xhat_events, b.xhat_events);
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_NEAR(a.metrics[i].backward_error, b.metrics[i].backward_error,
                1e-12);
    for (std::size_t t = 0; t < a.metrics[i].terms.size(); ++t) {
      EXPECT_NEAR(a.metrics[i].terms[t].coefficient,
                  b.metrics[i].terms[t].coefficient, 1e-9);
    }
  }
}

// The reversal above is one fixed permutation; this sweeps seeded RANDOM
// slot permutations (replayable via CATALYST_SEED, see seed_util.hpp).
class RandomSlotPermutation : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomSlotPermutation, AnySlotOrderKeepsSelectionAndMetrics) {
  const std::uint64_t seed = GetParam();
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  std::vector<std::size_t> perm(bench.slots.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::mt19937_64 rng(seed);
  std::shuffle(perm.begin(), perm.end(), rng);

  cat::Benchmark permuted = bench;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    permuted.slots[i] = bench.slots[perm[i]];
    permuted.basis.e.set_row(
        static_cast<linalg::index_t>(i),
        bench.basis.e.row_copy(static_cast<linalg::index_t>(perm[i])));
  }

  const auto a = run_pipeline(machine, bench, branch_signatures());
  const auto b = run_pipeline(machine, permuted, branch_signatures());
  EXPECT_EQ(a.xhat_events, b.xhat_events) << testing::seed_banner(seed);
  ASSERT_EQ(a.metrics.size(), b.metrics.size()) << testing::seed_banner(seed);
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_NEAR(a.metrics[i].backward_error, b.metrics[i].backward_error,
                1e-12)
        << testing::seed_banner(seed) << a.metrics[i].metric_name;
    for (std::size_t t = 0; t < a.metrics[i].terms.size(); ++t) {
      EXPECT_NEAR(a.metrics[i].terms[t].coefficient,
                  b.metrics[i].terms[t].coefficient, 1e-9)
          << testing::seed_banner(seed) << a.metrics[i].metric_name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSlotPermutation,
                         ::testing::ValuesIn(testing::sweep_seeds(1, 8)));

TEST(PipelineThreading, CollectionThreadsDoNotChangeResults) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  PipelineOptions serial;
  PipelineOptions threaded;
  threaded.collection_threads = 4;
  const auto r1 = run_pipeline(machine, bench, branch_signatures(), serial);
  const auto r2 = run_pipeline(machine, bench, branch_signatures(), threaded);
  EXPECT_EQ(r1.measurements, r2.measurements);
  EXPECT_EQ(r1.xhat_events, r2.xhat_events);
}

TEST(PipelineValidation, RejectsBadOptions) {
  const pmu::Machine machine = pmu::vesuvio_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  PipelineOptions opt;
  opt.repetitions = 1;
  EXPECT_THROW(run_pipeline(machine, bench, branch_signatures(), opt),
               std::invalid_argument);
  cat::Benchmark empty;
  EXPECT_THROW(run_pipeline(machine, empty, branch_signatures()),
               std::invalid_argument);
}

TEST(PipelineAccessors, AveragedMeasurementLookup) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  const auto result = run_pipeline(machine, bench, branch_signatures());
  const auto found =
      result.averaged_measurement("BR_INST_RETIRED:COND");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->size(), bench.slots.size());
  EXPECT_FALSE(result.averaged_measurement("NOT_AN_EVENT").has_value());
}

}  // namespace
}  // namespace catalyst::core
