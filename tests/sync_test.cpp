// catalyst::sync tests: the annotated mutex wrappers and the runtime
// lock-order validator (src/sync).  The validator's contract under test:
//
//   * an ABBA inversion aborts, printing both held-lock stacks (death test);
//   * a consistent acquisition order is silent;
//   * try_lock records the hold but no order edges (opportunistic locking
//     cannot deadlock, so the reverse order stays legal);
//   * releases are tracked even after the validator is toggled off;
//   * reset() really forgets the order graph.
//
// Every test resets the process-wide graph and disables validation on exit
// so tests cannot contaminate each other (the graph is keyed by lock name;
// names here are namespaced per test anyway).
#include "sync/sync.hpp"

#include <gtest/gtest.h>

#include <cstddef>

#include "core/parallel.hpp"

namespace csync = catalyst::sync;
namespace order = catalyst::sync::order;

namespace {

class SyncTest : public ::testing::Test {
 protected:
  void SetUp() override {
    order::set_enabled(false);
    order::reset();
  }
  void TearDown() override {
    order::set_enabled(false);
    order::reset();
  }
};

TEST_F(SyncTest, InversionAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        order::reset();
        order::set_enabled(true);
        csync::Mutex a("sync_test.death.a");
        csync::Mutex b("sync_test.death.b");
        {
          const csync::LockGuard ga(a);
          const csync::LockGuard gb(b);  // establishes a -> b
        }
        {
          const csync::LockGuard gb(b);
          const csync::LockGuard ga(a);  // b held while acquiring a: inversion
        }
      },
      "lock-order inversion");
}

TEST_F(SyncTest, ConsistentOrderIsSilent) {
  order::set_enabled(true);
  csync::Mutex a("sync_test.consistent.a");
  csync::Mutex b("sync_test.consistent.b");
  for (int i = 0; i < 3; ++i) {
    const csync::LockGuard ga(a);
    const csync::LockGuard gb(b);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, TryLockRecordsNoOrderEdges) {
  order::set_enabled(true);
  csync::Mutex a("sync_test.trylock.a");
  csync::Mutex b("sync_test.trylock.b");
  {
    const csync::LockGuard ga(a);
    ASSERT_TRUE(b.try_lock());  // hold recorded, but NO a -> b edge
    EXPECT_EQ(order::this_thread_held(), 2u);
    b.unlock();
  }
  {
    // The reverse blocking order must stay legal: had try_lock recorded an
    // edge, this would abort as an inversion.
    const csync::LockGuard gb(b);
    const csync::LockGuard ga(a);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, HeldCountTracksGuards) {
  order::set_enabled(true);
  EXPECT_EQ(order::this_thread_held(), 0u);
  csync::Mutex a("sync_test.held.a");
  csync::SharedMutex s("sync_test.held.s");
  {
    const csync::LockGuard ga(a);
    EXPECT_EQ(order::this_thread_held(), 1u);
    {
      const csync::ReadLockGuard rs(s);
      EXPECT_EQ(order::this_thread_held(), 2u);
    }
    EXPECT_EQ(order::this_thread_held(), 1u);
    {
      const csync::WriteLockGuard ws(s);
      EXPECT_EQ(order::this_thread_held(), 2u);
    }
    EXPECT_EQ(order::this_thread_held(), 1u);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, DisabledValidatorTracksNothing) {
  // set_enabled(false) in SetUp: acquisitions must not touch the stack, and
  // the unhooked release must be harmless.
  csync::Mutex a("sync_test.disabled.a");
  {
    const csync::LockGuard ga(a);
    EXPECT_EQ(order::this_thread_held(), 0u);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, ResetForgetsTheOrderGraph) {
  order::set_enabled(true);
  csync::Mutex a("sync_test.reset.a");
  csync::Mutex b("sync_test.reset.b");
  {
    const csync::LockGuard ga(a);
    const csync::LockGuard gb(b);  // a -> b
  }
  order::reset();
  {
    // Without the reset this is the death-test inversion; after it the
    // graph is empty and the reverse order is a fresh commitment.
    const csync::LockGuard gb(b);
    const csync::LockGuard ga(a);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, UniqueLockRelockAndOwnership) {
  order::set_enabled(true);
  csync::Mutex m("sync_test.unique.m");
  csync::UniqueLock lock(m, std::defer_lock);
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_EQ(order::this_thread_held(), 0u);
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  EXPECT_EQ(order::this_thread_held(), 1u);
  lock.unlock();
  EXPECT_FALSE(lock.owns_lock());
  EXPECT_EQ(order::this_thread_held(), 0u);
  lock.lock();  // destructor releases the reacquired lock
  EXPECT_EQ(lock.mutex(), &m);
}

TEST_F(SyncTest, MutexNames) {
  csync::Mutex named("sync_test.named");
  csync::Mutex anonymous;
  EXPECT_STREQ(named.name(), "sync_test.named");
  EXPECT_STREQ(anonymous.name(), "sync.Mutex");
}

// The annotated pattern every registry in the tree follows; counted from
// worker threads to show mutual exclusion (and, with the validator on, that
// cross-thread held stacks stay independent).
class GuardedCounter {
 public:
  void bump() CATALYST_EXCLUDES(mutex_) {
    const csync::LockGuard lock(mutex_);
    ++value_;
  }
  int value() const CATALYST_EXCLUDES(mutex_) {
    const csync::LockGuard lock(mutex_);
    return value_;
  }

 private:
  mutable csync::Mutex mutex_{"sync_test.guarded_counter"};
  int value_ CATALYST_GUARDED_BY(mutex_) = 0;
};

TEST_F(SyncTest, GuardedFieldUnderWorkerPool) {
  order::set_enabled(true);
  GuardedCounter counter;
  constexpr std::size_t kUnits = 200;
  catalyst::core::parallel_for(kUnits, 4,
                               [&](std::size_t) { counter.bump(); });
  EXPECT_EQ(counter.value(), static_cast<int>(kUnits));
  EXPECT_EQ(order::this_thread_held(), 0u);
}

TEST_F(SyncTest, CondVarHandsOffThroughUniqueLock) {
  order::set_enabled(true);
  csync::Mutex m("sync_test.cv.m");
  csync::CondVar cv;
  bool ready = false;
  int observed = -1;
  // Unit 0 produces, unit 1 consumes; parallel_for's cursor hands out unit
  // 0 first, so the consumer can never run on a pool whose producer unit
  // was dropped.  The wait releases/reacquires through UniqueLock, so the
  // validator's held stack stays exact across the block.
  catalyst::core::parallel_for(2, 2, [&](std::size_t unit) {
    if (unit == 0) {
      {
        const csync::LockGuard lock(m);
        ready = true;
      }
      cv.notify_one();
    } else {
      csync::UniqueLock lock(m);
      cv.wait(lock, [&] { return ready; });
      observed = 1;
    }
  });
  EXPECT_EQ(observed, 1);
  EXPECT_EQ(order::this_thread_held(), 0u);
}

}  // namespace
