// catalyst::sync with everything compiled out: CATALYST_SYNC_DISABLE_VALIDATOR
// selects the unchecked inline namespace (no lock-order hooks at all) and
// CATALYST_SYNC_NO_ANNOTATIONS strips the thread-safety attributes.  The
// wrappers must behave identically to the checked build -- same API, same
// locking semantics -- with order::this_thread_held() pinned at zero.
//
// This test deliberately links ONLY catalyst::sync and includes no other
// catalyst headers: library TUs are compiled with the checked namespace, so
// pulling in a class that embeds csync::Mutex (e.g. core/parallel.hpp's
// FirstError) under these defines would be an ODR violation.  Everything
// here is single-threaded for the same reason -- the point is API parity,
// not concurrency.
#include "sync/sync.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace csync = catalyst::sync;
namespace order = catalyst::sync::order;

namespace {

TEST(SyncNoValidateTest, LockGuardLocksAndUnlocks) {
  csync::Mutex m("novalidate.m");
  {
    const csync::LockGuard lock(m);
    EXPECT_FALSE(m.try_lock());  // really held
  }
  EXPECT_TRUE(m.try_lock());  // really released
  m.unlock();
}

TEST(SyncNoValidateTest, SharedMutexGuards) {
  csync::SharedMutex s("novalidate.s");
  {
    const csync::ReadLockGuard r1(s);
    s.lock_shared();  // readers share: a second shared hold must not block
    s.unlock_shared();
  }
  {
    const csync::WriteLockGuard w(s);
  }
  s.lock();  // exclusive hold available again once the guard released
  s.unlock();
  EXPECT_STREQ(s.name(), "novalidate.s");
}

TEST(SyncNoValidateTest, UniqueLockDeferAndRelock) {
  csync::Mutex m("novalidate.unique");
  csync::UniqueLock lock(m, std::defer_lock);
  EXPECT_FALSE(lock.owns_lock());
  lock.lock();
  EXPECT_TRUE(lock.owns_lock());
  lock.unlock();
  lock.lock();
  EXPECT_EQ(lock.mutex(), &m);
}

TEST(SyncNoValidateTest, CondVarWaitForWithTruePredicate) {
  csync::Mutex m("novalidate.cv");
  csync::CondVar cv;
  csync::UniqueLock lock(m);
  // Predicate already true: wait_for must return immediately with true.
  const bool ok =
      cv.wait_for(lock, std::chrono::milliseconds(1), [] { return true; });
  EXPECT_TRUE(ok);
  EXPECT_TRUE(lock.owns_lock());
}

// GUARDED_BY / EXCLUDES expand to nothing under CATALYST_SYNC_NO_ANNOTATIONS
// but the guarded-field pattern must still compile and behave the same.
class GuardedValue {
 public:
  void set(int v) CATALYST_EXCLUDES(mutex_) {
    const csync::LockGuard lock(mutex_);
    value_ = v;
  }
  int get() const CATALYST_EXCLUDES(mutex_) {
    const csync::LockGuard lock(mutex_);
    return value_;
  }

 private:
  mutable csync::Mutex mutex_{"novalidate.guarded"};
  int value_ CATALYST_GUARDED_BY(mutex_) = 0;
};

TEST(SyncNoValidateTest, GuardedFieldBehavesIdentically) {
  GuardedValue v;
  EXPECT_EQ(v.get(), 0);
  v.set(41);
  v.set(42);
  EXPECT_EQ(v.get(), 42);
}

TEST(SyncNoValidateTest, ValidatorHooksAreCompiledOut) {
  // Even with the order API force-enabled, the unchecked wrappers never call
  // the hooks: the held count stays zero through lock/unlock cycles.
  order::set_enabled(true);
  csync::Mutex a("novalidate.hooks.a");
  csync::Mutex b("novalidate.hooks.b");
  {
    const csync::LockGuard ga(a);
    const csync::LockGuard gb(b);
    EXPECT_EQ(order::this_thread_held(), 0u);
  }
  {
    // The inverted order is invisible to the validator: no abort.
    const csync::LockGuard gb(b);
    const csync::LockGuard ga(a);
  }
  EXPECT_EQ(order::this_thread_held(), 0u);
  order::set_enabled(false);
  order::reset();
}

}  // namespace
