// Unit + property tests for the classic column-pivoted QR (Algorithm 1).
#include "linalg/qrcp.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"
#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

// Reconstructs A from a QrcpResult: A = Q R P^T, i.e. column i of A*P is
// column permutation[i] of A.
Matrix reconstruct(const QrcpResult& res) {
  // Build Q from the packed reflectors.
  const index_t m = res.packed.rows();
  const auto k = static_cast<index_t>(res.taus.size());
  Matrix q(m, k);
  for (index_t j = 0; j < k; ++j) q(j, j) = 1.0;
  for (index_t j = k - 1; j >= 0; --j) {
    auto cj = res.packed.col(j);
    std::vector<double> v(cj.begin() + j + 1, cj.end());
    // Inline reflector application (same math as apply_reflector_left).
    for (index_t col = 0; col < q.cols(); ++col) {
      auto qc = q.col(col);
      double w = qc[static_cast<std::size_t>(j)];
      for (index_t i = j + 1; i < m; ++i) {
        w += v[static_cast<std::size_t>(i - j - 1)] *
             qc[static_cast<std::size_t>(i)];
      }
      w *= res.taus[static_cast<std::size_t>(j)];
      qc[static_cast<std::size_t>(j)] -= w;
      for (index_t i = j + 1; i < m; ++i) {
        qc[static_cast<std::size_t>(i)] -=
            w * v[static_cast<std::size_t>(i - j - 1)];
      }
    }
  }
  Matrix ap = matmul(q, res.r());
  // Undo the permutation: column res.permutation[i] of A is column i of AP.
  Matrix a(ap.rows(), ap.cols());
  for (index_t i = 0; i < ap.cols(); ++i) {
    a.set_col(res.permutation[static_cast<std::size_t>(i)], ap.col(i));
  }
  return a;
}

TEST(Qrcp, PermutationIsAPermutation) {
  Matrix a = random_gaussian(8, 6, 17);
  auto res = qrcp(a);
  std::vector<index_t> p = res.permutation;
  std::sort(p.begin(), p.end());
  std::vector<index_t> expect(6);
  std::iota(expect.begin(), expect.end(), index_t{0});
  EXPECT_EQ(p, expect);
}

TEST(Qrcp, FullRankRandom) {
  Matrix a = random_gaussian(10, 6, 23);
  auto res = qrcp(a);
  EXPECT_EQ(res.rank, 6);
  EXPECT_LT(Matrix::max_abs_diff(reconstruct(res), a), 1e-11);
}

TEST(Qrcp, DiagonalOfRIsNonIncreasing) {
  // Max-norm pivoting guarantees |R(0,0)| >= |R(1,1)| >= ... (weakly, up to
  // roundoff) for the factored steps.
  Matrix a = random_gaussian(30, 20, 29);
  auto res = qrcp(a);
  auto d = res.r_diagonal_abs();
  for (std::size_t i = 1; i < static_cast<std::size_t>(res.rank); ++i) {
    EXPECT_LE(d[i], d[i - 1] * (1 + 1e-10));
  }
}

class QrcpRankDetection : public ::testing::TestWithParam<int> {};

TEST_P(QrcpRankDetection, DetectsExactRank) {
  const int r = GetParam();
  Matrix a = random_rank_deficient(20, 12, r, 1000 + r);
  auto res = qrcp(a, 1e-10);
  EXPECT_EQ(res.rank, r);
}

INSTANTIATE_TEST_SUITE_P(RankSweep, QrcpRankDetection,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12));

TEST(Qrcp, ZeroMatrixHasRankZero) {
  Matrix a(5, 4, 0.0);
  auto res = qrcp(a);
  EXPECT_EQ(res.rank, 0);
}

TEST(Qrcp, DuplicateColumnsDetected) {
  // Two copies of the same column plus one independent column: rank 2.
  Matrix a = Matrix::from_columns({{1, 2, 3}, {1, 2, 3}, {0, 1, 0}});
  auto res = qrcp(a, 1e-10);
  EXPECT_EQ(res.rank, 2);
}

TEST(Qrcp, ScaledColumnDetected) {
  Matrix a = Matrix::from_columns({{1, 2, 3}, {2, 4, 6}, {1, 0, 0}});
  auto res = qrcp(a, 1e-10);
  EXPECT_EQ(res.rank, 2);
}

TEST(Qrcp, LinearCombinationDetected) {
  // c2 = c0 + c1.
  Matrix a = Matrix::from_columns({{1, 0, 1}, {0, 1, 1}, {1, 1, 2}});
  auto res = qrcp(a, 1e-10);
  EXPECT_EQ(res.rank, 2);
}

TEST(Qrcp, MaxNormPivotPicksLargestColumnFirst) {
  // The paper's motivating failure: a "cycles"-like huge column is chosen
  // first by the classic rule even though it is analytically irrelevant.
  Matrix a = Matrix::from_columns(
      {{1, 0, 0}, {0, 1, 0}, {1e6, 1e6, 1e6}});
  auto res = qrcp(a);
  EXPECT_EQ(res.permutation[0], 2);
}

TEST(Qrcp, ReconstructionWithRankDeficiency) {
  Matrix a = random_rank_deficient(15, 10, 4, 77);
  auto res = qrcp(a);
  EXPECT_LT(Matrix::max_abs_diff(reconstruct(res), a), 1e-10);
}

TEST(Qrcp, NegativeToleranceThrows) {
  Matrix a(2, 2);
  EXPECT_THROW(qrcp(a, -1.0), ArgumentError);
}

TEST(Qrcp, WideMatrix) {
  Matrix a = random_gaussian(4, 9, 31);
  auto res = qrcp(a);
  EXPECT_EQ(res.rank, 4);
  EXPECT_LT(Matrix::max_abs_diff(reconstruct(res), a), 1e-11);
}

TEST(Qrcp, NearDependentColumnsNeedLooserTolerance) {
  // (1, 1) vs (0.99, 1.01): numerically independent, semantically noise.
  // With a tight tolerance QRCP reports rank 2; with a 2% tolerance rank 1.
  Matrix a = Matrix::from_columns({{1, 1}, {0.99, 1.01}});
  EXPECT_EQ(qrcp(a, 1e-12).rank, 2);
  EXPECT_EQ(qrcp(a, 2e-2).rank, 1);
}

}  // namespace
}  // namespace catalyst::linalg
