// Contracts of the counter-based measurement engine introduced for the
// hot-path overhaul:
//   * the stateless RNG preserves the configured noise magnitudes
//     (rel_sigma / abs_sigma / spike_prob), so noise-class tests stay
//     meaningful,
//   * collection is bit-identical across thread counts,
//   * the ideal-value cache never changes a reading,
//   * exceptions from collector worker threads reach the caller.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "pmu/pmu.hpp"
#include "vpapi/collector.hpp"

namespace catalyst {
namespace {

pmu::Machine one_event_machine(const pmu::NoiseModel& noise) {
  pmu::Machine m("stats", 4, 0xA11CE5EED);
  m.add_event({"E", "", {{"x", 1.0}}, noise});
  return m;
}

// Samples the event across (rep, kernel) coordinates; one draw per sample.
std::vector<double> sample_grid(const pmu::Machine& m, double ideal,
                                std::size_t n_reps, std::size_t n_kernels) {
  pmu::Activity act{{"x", ideal}};
  std::vector<double> out;
  out.reserve(n_reps * n_kernels);
  for (std::size_t r = 0; r < n_reps; ++r) {
    for (std::size_t k = 0; k < n_kernels; ++k) {
      out.push_back(pmu::measure_event(m, m.event(0), act, r, k));
    }
  }
  return out;
}

double sample_mean(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_sd(const std::vector<double>& xs) {
  const double mean = sample_mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - mean) * (x - mean);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

TEST(NoiseStats, RelativeSigmaIsPreserved) {
  // sigma = 1% on a 1e9 ideal: integer rounding contributes ~1e-9 relative,
  // invisible next to the jitter.  4000 samples pin the sample sd of the
  // relative deviation to 1e-2 within ~1e-3 at many sigmas of slack.
  const auto m = one_event_machine(pmu::NoiseModel::relative(0.01));
  const double ideal = 1e9;
  const auto vs = sample_grid(m, ideal, 80, 50);
  std::vector<double> rel;
  rel.reserve(vs.size());
  for (double v : vs) rel.push_back(v / ideal - 1.0);
  EXPECT_NEAR(sample_mean(rel), 0.0, 1e-3);
  EXPECT_NEAR(sample_sd(rel), 0.01, 1e-3);
}

TEST(NoiseStats, AbsoluteSigmaIsPreserved) {
  const auto m = one_event_machine(pmu::NoiseModel::absolute(1000.0));
  const double ideal = 1e9;
  const auto vs = sample_grid(m, ideal, 80, 50);
  std::vector<double> dev;
  dev.reserve(vs.size());
  for (double v : vs) dev.push_back(v - ideal);
  EXPECT_NEAR(sample_mean(dev), 0.0, 100.0);
  EXPECT_NEAR(sample_sd(dev), 1000.0, 100.0);
}

TEST(NoiseStats, SpikeProbabilityIsPreserved) {
  // Spikes add U(0,1) * 1e6 on a 1000 ideal: any reading above 2000 is a
  // spike (P[spike below that] ~ 1e-3 of spikes).  With p = 0.2 over 4000
  // samples the observed rate is within +-0.03 at ~5 binomial sigmas.
  const auto m = one_event_machine(pmu::NoiseModel::spiky(0.2, 1e6));
  const auto vs = sample_grid(m, 1000.0, 80, 50);
  std::size_t spikes = 0;
  for (double v : vs) {
    if (v > 2000.0) ++spikes;
  }
  const double rate = static_cast<double>(spikes) /
                      static_cast<double>(vs.size());
  EXPECT_NEAR(rate, 0.2, 0.03);
}

TEST(NoiseStats, AdjacentCoordinatesAreDecorrelated) {
  // The counter-based stream must not leak correlation between neighbouring
  // repetition indices (lag-1 autocorrelation across reps, fixed kernel).
  const auto m = one_event_machine(pmu::NoiseModel::relative(0.01));
  const double ideal = 1e9;
  pmu::Activity act{{"x", ideal}};
  std::vector<double> rel;
  for (std::uint64_t r = 0; r < 2000; ++r) {
    rel.push_back(pmu::measure_event(m, m.event(0), act, r, 0) / ideal - 1.0);
  }
  const double mean = sample_mean(rel);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < rel.size(); ++i) {
    const double d = rel[i] - mean;
    den += d * d;
    if (i + 1 < rel.size()) num += d * (rel[i + 1] - mean);
  }
  EXPECT_LT(std::fabs(num / den), 0.08);
}

TEST(MeasureFromIdeal, MatchesMeasureEventExactly) {
  const auto m = one_event_machine(
      pmu::NoiseModel{1e-2, 5.0, 0.1, 100.0, 1e-3});
  pmu::Activity act{{"x", 123456.0}};
  const double ideal = m.event(0).ideal(act);
  for (std::uint64_t r = 0; r < 20; ++r) {
    for (std::uint64_t k = 0; k < 5; ++k) {
      EXPECT_DOUBLE_EQ(pmu::measure_event(m, m.event(0), act, r, k),
                       pmu::measure_from_ideal(m, m.event(0), ideal, r, k));
    }
  }
}

TEST(IdealTable, CachedAndFreshRunKernelReadingsAreBitIdentical) {
  // A noisy machine driven twice through identical sessions, once with the
  // precomputed ideal table and once without: reads must match exactly.
  pmu::Machine m("tbl", 4, 77);
  m.add_event({"D", "", {{"x", 2.0}}, pmu::NoiseModel::none()});
  m.add_event({"R", "", {{"x", 1.0}}, pmu::NoiseModel::relative(0.05)});
  m.add_event({"S", "", {{"y", 1.0}}, pmu::NoiseModel::spiky(0.5, 1e4)});
  const std::vector<pmu::Activity> acts{
      {{"x", 1e6}, {"y", 2e6}}, {{"x", 3e6}}, {{"y", 5e5}}};
  const pmu::IdealTable table(m, acts);

  auto run = [&](const pmu::IdealTable* ideals) {
    vpapi::Session session(m);
    const int set = session.create_eventset();
    for (const char* n : {"D", "R", "S"}) session.add_event(set, n);
    session.start(set);
    for (std::size_t k = 0; k < acts.size(); ++k) {
      session.run_kernel(acts[k], /*repetition=*/3, k, ideals);
    }
    session.stop(set);
    std::vector<double> vals;
    session.read(set, vals);
    return vals;
  };

  EXPECT_EQ(run(&table), run(nullptr));
}

TEST(IdealTable, SubsetConstructorOnlyFillsRequestedRows) {
  pmu::Machine m("tbl", 4, 77);
  m.add_event({"A", "", {{"x", 1.0}}, {}});
  m.add_event({"B", "", {{"x", 2.0}}, {}});
  const std::vector<pmu::Activity> acts{{{"x", 10.0}}};
  const pmu::IdealTable table(m, acts, {1});
  EXPECT_FALSE(table.has(0));
  ASSERT_TRUE(table.has(1));
  EXPECT_DOUBLE_EQ(table.ideal(1, 0), 20.0);
  EXPECT_EQ(table.num_kernels(), 1u);
}

TEST(CollectorDeterminism, SingleAndMultiThreadedResultsAreBitIdentical) {
  // The full saphira machine exercises every noise model (relative,
  // absolute, spiky, drifting) across thread counts.
  const pmu::Machine m = pmu::saphira_cpu();
  std::vector<std::string> names;
  for (std::size_t e = 0; e < 40; ++e) names.push_back(m.event(e).name);
  const std::vector<pmu::Activity> acts{
      {{pmu::sig::cycles, 1e6}, {pmu::sig::instructions, 2e6}},
      {{pmu::sig::cycles, 3e6}, {pmu::sig::uops, 4e6}}};
  const auto serial = vpapi::collect(m, names, acts, 3, /*threads=*/1);
  const auto threaded = vpapi::collect(m, names, acts, 3, /*threads=*/4);
  ASSERT_EQ(serial.repetitions.size(), threaded.repetitions.size());
  EXPECT_EQ(serial.event_names, threaded.event_names);
  EXPECT_EQ(serial.runs_per_repetition, threaded.runs_per_repetition);
  for (std::size_t rep = 0; rep < serial.repetitions.size(); ++rep) {
    EXPECT_EQ(serial.repetitions[rep].values, threaded.repetitions[rep].values)
        << "rep " << rep;
  }
}

TEST(CollectorExceptions, WorkerThrowPropagatesToCaller) {
  // A duplicated event name passes the up-front existence check but makes
  // add_event fail inside the unit, i.e. inside a worker thread.  The throw
  // must surface on the calling thread instead of calling std::terminate.
  pmu::Machine m("dup", 2, 7);
  m.add_event({"A", "", {{"x", 1.0}}, {}});
  const std::vector<pmu::Activity> acts{{{"x", 1.0}}};
  EXPECT_THROW(
      vpapi::collect(m, {"A", "A"}, acts, /*repetitions=*/8, /*threads=*/4),
      std::runtime_error);
}

}  // namespace
}  // namespace catalyst
