// Tests for configurable CPU-FLOPs kernel Spaces (machines without some
// vector widths) and the signature-slicing utility.
#include <gtest/gtest.h>

#include <algorithm>

#include "cat/cat.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

TEST(NarrowedSpace, BenchmarkShapeFollowsOptions) {
  cat::CpuFlopsOptions opt;
  opt.widths = {"scalar", "128", "256"};  // no AVX-512
  const auto b = cat::cpu_flops_benchmark(opt);
  EXPECT_EQ(b.basis.labels.size(), 12u);
  EXPECT_EQ(b.slots.size(), 36u);
  EXPECT_EQ(std::find(b.basis.labels.begin(), b.basis.labels.end(), "S512"),
            b.basis.labels.end());
}

TEST(NarrowedSpace, RejectsBadSpace) {
  cat::CpuFlopsOptions opt;
  opt.widths = {};
  EXPECT_THROW(cat::cpu_flops_benchmark(opt), std::invalid_argument);
  cat::CpuFlopsOptions opt2;
  opt2.widths = {"1024"};
  EXPECT_THROW(cat::cpu_flops_benchmark(opt2), std::invalid_argument);
  cat::CpuFlopsOptions opt3;
  opt3.precisions = {"hp"};
  EXPECT_THROW(cat::cpu_flops_benchmark(opt3), std::invalid_argument);
}

TEST(SliceSignatures, ProjectsOntoSubsetOrder) {
  const std::vector<std::string> full{"A", "B", "C"};
  const std::vector<MetricSignature> sigs{{"m", {1, 2, 3}}};
  const auto sliced = slice_signatures(sigs, full, {"C", "A"});
  ASSERT_EQ(sliced.size(), 1u);
  EXPECT_EQ(sliced[0].coordinates, (linalg::Vector{3, 1}));
}

TEST(SliceSignatures, Validates) {
  const std::vector<std::string> full{"A"};
  const std::vector<MetricSignature> sigs{{"m", {1}}};
  EXPECT_THROW(slice_signatures(sigs, full, {"Z"}), std::invalid_argument);
  const std::vector<MetricSignature> bad{{"m", {1, 2}}};
  EXPECT_THROW(slice_signatures(bad, full, {"A"}), std::invalid_argument);
}

TEST(NarrowedSpace, PipelineOnAvx512LessSpace) {
  // Analyze Saphira with the 512-bit kernels removed: the 512 events are
  // never exercised (all-zero -> discarded) and DP Ops composes from the
  // remaining three DP events.
  cat::CpuFlopsOptions opt;
  opt.widths = {"scalar", "128", "256"};
  const auto bench = cat::cpu_flops_benchmark(opt);
  const auto full_bench_labels = cat::cpu_flops_benchmark().basis.labels;
  const auto signatures = slice_signatures(
      cpu_flops_signatures(), full_bench_labels, bench.basis.labels);

  const auto result =
      run_pipeline(pmu::saphira_cpu(), bench, signatures);
  ASSERT_EQ(result.xhat_events.size(), 6u)
      << format_selected_events(result);
  for (const auto& e : result.xhat_events) {
    EXPECT_EQ(e.find("512B"), std::string::npos) << e;
  }
  for (const auto& m : result.metrics) {
    if (m.metric_name != "DP Ops.") continue;
    EXPECT_TRUE(m.composable) << m.backward_error;
    double c128 = 0.0, c256 = 0.0;
    for (const auto& t : m.terms) {
      if (t.event_name == "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE") {
        c128 = t.coefficient;
      }
      if (t.event_name == "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE") {
        c256 = t.coefficient;
      }
    }
    EXPECT_NEAR(c128, 2.0, 1e-6);
    EXPECT_NEAR(c256, 4.0, 1e-6);
  }
}

}  // namespace
}  // namespace catalyst::core
