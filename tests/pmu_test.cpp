// Unit tests for the simulated PMU: event algebra, noise determinism, and
// the structural properties of the two machine models that the paper's
// pipeline depends on.
#include "pmu/pmu.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace catalyst::pmu {
namespace {

TEST(Event, IdealIsLinearFunctional) {
  EventDefinition e;
  e.terms = {{"a", 2.0}, {"b", -1.0}};
  Activity act{{"a", 10.0}, {"b", 3.0}, {"c", 99.0}};
  EXPECT_DOUBLE_EQ(e.ideal(act), 17.0);
}

TEST(Event, MissingSignalsCountAsZero) {
  EventDefinition e;
  e.terms = {{"missing", 5.0}};
  EXPECT_DOUBLE_EQ(e.ideal({}), 0.0);
}

TEST(NoiseModelTest, NoiseFreePredicate) {
  EXPECT_TRUE(NoiseModel::none().is_noise_free());
  EXPECT_FALSE(NoiseModel::relative(1e-3).is_noise_free());
  EXPECT_FALSE(NoiseModel::absolute(1.0).is_noise_free());
  EXPECT_FALSE(NoiseModel::spiky(0.1, 5.0).is_noise_free());
}

TEST(MachineTest, RejectsDuplicateEventNames) {
  Machine m("test", 4, 1);
  m.add_event(EventDefinition{"E1", "", {}, {}});
  EXPECT_THROW(m.add_event(EventDefinition{"E1", "", {}, {}}),
               std::invalid_argument);
}

TEST(MachineTest, RejectsZeroCounters) {
  EXPECT_THROW(Machine("bad", 0, 1), std::invalid_argument);
}

TEST(MachineTest, FindByName) {
  Machine m("test", 4, 1);
  m.add_event(EventDefinition{"E1", "", {}, {}});
  m.add_event(EventDefinition{"E2", "", {}, {}});
  EXPECT_EQ(m.find("E2"), 1u);
  EXPECT_FALSE(m.find("nope").has_value());
}

TEST(Hashing, Fnv1aMatchesKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Hashing, MachineCachesEventNameHash) {
  // add_event must stamp fnv1a(name) on the stored event so the measurement
  // hot path never re-hashes; a free-standing copy with the cache cleared
  // must still land in the same noise stream (fallback hashing).
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E1", "", {{"x", 1.0}},
                              NoiseModel::relative(1e-2)});
  EXPECT_EQ(m.event(0).name_hash, fnv1a("E1"));
  EventDefinition uncached = m.event(0);
  uncached.name_hash = 0;
  Activity act{{"x", 1e6}};
  EXPECT_DOUBLE_EQ(measure_event(m, m.event(0), act, 2, 3),
                   measure_event(m, uncached, act, 2, 3));
}

TEST(Measure, NoiseFreeEventIsExactAndInteger) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 2.0}}, NoiseModel::none()});
  Activity act{{"x", 21.0}};
  const double v = measure_event(m, m.event(0), act, 0, 0);
  EXPECT_DOUBLE_EQ(v, 42.0);
  // Identical across repetitions.
  EXPECT_DOUBLE_EQ(measure_event(m, m.event(0), act, 7, 0), 42.0);
}

TEST(Measure, ReadingsAreNonNegativeIntegers) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::absolute(50.0)});
  Activity act{{"x", 10.0}};
  for (std::uint64_t rep = 0; rep < 50; ++rep) {
    const double v = measure_event(m, m.event(0), act, rep, 0);
    EXPECT_GE(v, 0.0);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(Measure, NoisyEventIsDeterministicPerCoordinates) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::relative(1e-2)});
  Activity act{{"x", 1e6}};
  const double v1 = measure_event(m, m.event(0), act, 3, 5);
  const double v2 = measure_event(m, m.event(0), act, 3, 5);
  EXPECT_DOUBLE_EQ(v1, v2);
}

TEST(Measure, NoisyEventVariesAcrossRepetitions) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::relative(1e-2)});
  Activity act{{"x", 1e6}};
  std::set<double> values;
  for (std::uint64_t rep = 0; rep < 10; ++rep) {
    values.insert(measure_event(m, m.event(0), act, rep, 0));
  }
  EXPECT_GT(values.size(), 5u);
}

TEST(Measure, NoiseVariesAcrossKernelsToo) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::relative(1e-2)});
  Activity act{{"x", 1e6}};
  EXPECT_NE(measure_event(m, m.event(0), act, 0, 0),
            measure_event(m, m.event(0), act, 0, 1));
}

TEST(Measure, DriftGrowsMonotonicallyAcrossRepetitions) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::drifting(1e-2)});
  Activity act{{"x", 1e6}};
  double prev = 0.0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    const double v = measure_event(m, m.event(0), act, rep, 0);
    EXPECT_GT(v, prev);
    prev = v;
  }
  // rep 0 is unscaled; rep 4 is +4%.
  EXPECT_DOUBLE_EQ(measure_event(m, m.event(0), act, 0, 0), 1e6);
  EXPECT_DOUBLE_EQ(measure_event(m, m.event(0), act, 4, 0), 1.04e6);
}

TEST(Measure, DriftIsCaughtByRnmseStyleComparison) {
  // The max-RNMSE filter compares repetition pairs; with 1% drift per rep
  // the (0, 4) pair differs by ~4%, far above a 1e-10 tau.
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E", "", {{"x", 1.0}},
                              NoiseModel::drifting(1e-2)});
  std::vector<Activity> acts{{{"x", 1e6}}, {{"x", 2e6}}};
  const auto v0 = measure_vector(m, m.event(0), acts, 0);
  const auto v4 = measure_vector(m, m.event(0), acts, 4);
  double max_rel = 0.0;
  for (std::size_t i = 0; i < v0.size(); ++i) {
    max_rel = std::max(max_rel, std::fabs(v4[i] - v0[i]) / v0[i]);
  }
  EXPECT_GT(max_rel, 1e-3);
}

TEST(Measure, VectorAndAllShapes) {
  Machine m("test", 4, 99);
  m.add_event(EventDefinition{"E1", "", {{"x", 1.0}}, {}});
  m.add_event(EventDefinition{"E2", "", {{"x", 3.0}}, {}});
  std::vector<Activity> acts{{{"x", 1.0}}, {{"x", 2.0}}, {{"x", 3.0}}};
  auto vec = measure_vector(m, m.event(1), acts, 0);
  EXPECT_EQ(vec, (std::vector<double>{3, 6, 9}));
  auto all = measure_all(m, acts, 0);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0], (std::vector<double>{1, 2, 3}));
  EXPECT_EQ(all[1], (std::vector<double>{3, 6, 9}));
}

// --- Saphira model structure -------------------------------------------------

TEST(Saphira, HasExpectedScale) {
  const Machine m = saphira_cpu();
  EXPECT_GE(m.num_events(), 300u);
  EXPECT_LE(m.num_events(), 450u);
  EXPECT_EQ(m.physical_counters(), 8u);
}

TEST(Saphira, HasTheEightFpArithEvents) {
  const Machine m = saphira_cpu();
  for (const char* n :
       {"FP_ARITH_INST_RETIRED:SCALAR_SINGLE",
        "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE",
        "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE",
        "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE",
        "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE"}) {
    EXPECT_TRUE(m.find(n).has_value()) << n;
  }
}

TEST(Saphira, FpArithCountsFmaTwice) {
  const Machine m = saphira_cpu();
  const auto& e = m.event(*m.find("FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE"));
  Activity nonfma{{sig::fp("128", "dp", false), 10.0}};
  Activity fma{{sig::fp("128", "dp", true), 10.0}};
  EXPECT_DOUBLE_EQ(e.ideal(nonfma), 10.0);
  EXPECT_DOUBLE_EQ(e.ideal(fma), 20.0);
}

TEST(Saphira, FpArithEventsAreNoiseFree) {
  const Machine m = saphira_cpu();
  const auto& e = m.event(*m.find("FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"));
  EXPECT_TRUE(e.noise.is_noise_free());
}

TEST(Saphira, NoEventMeasuresSpeculativeCondBranches) {
  // Table VII requires "Conditional Branches Executed" to be non-composable:
  // no Saphira event may read the branch.cond.executed signal.
  const Machine m = saphira_cpu();
  for (const auto& e : m.events()) {
    for (const auto& t : e.terms) {
      EXPECT_NE(t.signal, sig::branch_cond_exec) << "in event " << e.name;
    }
  }
}

TEST(Saphira, AllBranchesIsLinearCombination) {
  const Machine m = saphira_cpu();
  const auto& e = m.event(*m.find("BR_INST_RETIRED:ALL_BRANCHES"));
  Activity act{{sig::branch_cond_retired, 7.0}, {sig::branch_uncond, 3.0}};
  EXPECT_DOUBLE_EQ(e.ideal(act), 10.0);
}

TEST(Saphira, CacheEventsAreNoisy) {
  const Machine m = saphira_cpu();
  for (const char* n : {"MEM_LOAD_RETIRED:L1_HIT", "MEM_LOAD_RETIRED:L1_MISS",
                        "L2_RQSTS:DEMAND_DATA_RD_HIT",
                        "MEM_LOAD_RETIRED:L3_HIT"}) {
    EXPECT_FALSE(m.event(*m.find(n)).noise.is_noise_free()) << n;
  }
}

TEST(Saphira, CycleCountersHaveLargeCoefficientsOnCycles) {
  const Machine m = saphira_cpu();
  const auto& slots = m.event(*m.find("TOPDOWN:SLOTS"));
  ASSERT_EQ(slots.terms.size(), 1u);
  EXPECT_EQ(slots.terms[0].signal, sig::cycles);
  EXPECT_DOUBLE_EQ(slots.terms[0].coefficient, 6.0);
}

TEST(Saphira, BuildIsDeterministic) {
  const Machine a = saphira_cpu();
  const Machine b = saphira_cpu();
  ASSERT_EQ(a.num_events(), b.num_events());
  for (std::size_t i = 0; i < a.num_events(); ++i) {
    EXPECT_EQ(a.event(i).name, b.event(i).name);
    EXPECT_EQ(a.event(i).noise.rel_sigma, b.event(i).noise.rel_sigma);
    ASSERT_EQ(a.event(i).terms.size(), b.event(i).terms.size());
    for (std::size_t t = 0; t < a.event(i).terms.size(); ++t) {
      EXPECT_EQ(a.event(i).terms[t].signal, b.event(i).terms[t].signal);
      EXPECT_EQ(a.event(i).terms[t].coefficient,
                b.event(i).terms[t].coefficient);
    }
  }
}

// --- Tempest model structure ----------------------------------------------------

TEST(Tempest, HasExpectedScale) {
  const Machine m = tempest_gpu();
  EXPECT_GE(m.num_events(), 1000u);
  EXPECT_LE(m.num_events(), 1500u);
}

TEST(Tempest, TwelveValuFpCountersPerDevice) {
  const Machine m = tempest_gpu();
  for (int dev = 0; dev < 8; ++dev) {
    for (const char* op : {"ADD", "MUL", "TRANS", "FMA"}) {
      for (const char* p : {"F16", "F32", "F64"}) {
        const std::string name = std::string("rocm:::SQ_INSTS_VALU_") + op +
                                 "_" + p + ":device=" + std::to_string(dev);
        EXPECT_TRUE(m.find(name).has_value()) << name;
      }
    }
  }
}

TEST(Tempest, AddCounterCountsAddAndSub) {
  const Machine m = tempest_gpu();
  const auto& e = m.event(*m.find("rocm:::SQ_INSTS_VALU_ADD_F16:device=0"));
  Activity add{{sig::gpu_valu("add", "f16"), 5.0}};
  Activity sub{{sig::gpu_valu("sub", "f16"), 5.0}};
  EXPECT_DOUBLE_EQ(e.ideal(add), 5.0);
  EXPECT_DOUBLE_EQ(e.ideal(sub), 5.0);
}

TEST(Tempest, IdleDevicesHaveNoInstructionSignal) {
  const Machine m = tempest_gpu();
  for (int dev = 1; dev < 8; ++dev) {
    const auto& e = m.event(*m.find("rocm:::SQ_INSTS_VALU_FMA_F64:device=" +
                                    std::to_string(dev)));
    EXPECT_TRUE(e.terms.empty()) << "device " << dev;
  }
}

TEST(Tempest, IdleDeviceClockStillTicks) {
  // Idle-device GRBM_COUNT must be nonzero-noisy so it survives the
  // zero-measurement discard rule (Fig. 2c's long tail).
  const Machine m = tempest_gpu();
  const auto& e = m.event(*m.find("rocm:::GRBM_COUNT:device=3"));
  EXPECT_FALSE(e.noise.is_noise_free());
  double sum = 0.0;
  for (std::uint64_t rep = 0; rep < 5; ++rep) {
    sum += measure_event(m, e, {}, rep, 0);
  }
  EXPECT_GT(sum, 0.0);
}

TEST(Tempest, Device0FmaIsNoiseFree) {
  const Machine m = tempest_gpu();
  const auto& e = m.event(*m.find("rocm:::SQ_INSTS_VALU_FMA_F32:device=0"));
  EXPECT_TRUE(e.noise.is_noise_free());
  ASSERT_EQ(e.terms.size(), 1u);
  EXPECT_EQ(e.terms[0].signal, sig::gpu_valu("fma", "f32"));
}

}  // namespace
}  // namespace catalyst::pmu
