// Tests for mixed workloads, ideal-event consistency, and the metric
// validation loop (core/validate).
#include "core/validate.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cat/cat.hpp"
#include "core/pipeline.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

// --- ideal-event consistency: E is the ideal events measured over slots ----

TEST(IdealEvents, CpuFlopsBasisMatchesIdealEventMeasurements) {
  const auto b = cat::cpu_flops_benchmark();
  ASSERT_EQ(b.basis.ideal_events.size(), 16u);
  for (std::size_t s = 0; s < b.slots.size(); ++s) {
    const auto& act = b.slots[s].thread_activities.front();
    for (std::size_t k = 0; k < b.basis.ideal_events.size(); ++k) {
      EXPECT_DOUBLE_EQ(
          b.basis.ideal_events[k].ideal(act) / b.slots[s].normalizer,
          b.basis.e(static_cast<linalg::index_t>(s),
                    static_cast<linalg::index_t>(k)))
          << "slot " << s << " ideal " << b.basis.labels[k];
    }
  }
}

TEST(IdealEvents, BranchBasisMatchesIdealEventMeasurements) {
  const auto b = cat::branch_benchmark();
  ASSERT_EQ(b.basis.ideal_events.size(), 5u);
  for (std::size_t s = 0; s < b.slots.size(); ++s) {
    const auto& act = b.slots[s].thread_activities.front();
    for (std::size_t k = 0; k < 5; ++k) {
      EXPECT_DOUBLE_EQ(
          b.basis.ideal_events[k].ideal(act) / b.slots[s].normalizer,
          b.basis.e(static_cast<linalg::index_t>(s),
                    static_cast<linalg::index_t>(k)));
    }
  }
}

TEST(IdealEvents, DcacheBasisApproximatesIdealEventMeasurements) {
  // The cache basis is idealized (exact 0/1); real chases deviate by a few
  // percent near capacity boundaries.
  cat::DcacheOptions opt;
  opt.threads = 1;
  opt.hierarchy = cachesim::HierarchyConfig::tiny();
  opt.strides = {32};
  const auto b = cat::dcache_benchmark(opt);
  for (std::size_t s = 0; s < b.slots.size(); ++s) {
    const auto& act = b.slots[s].thread_activities.front();
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_NEAR(
          b.basis.ideal_events[k].ideal(act) / b.slots[s].normalizer,
          b.basis.e(static_cast<linalg::index_t>(s),
                    static_cast<linalg::index_t>(k)),
          0.25)
          << b.slots[s].name << " / " << b.basis.labels[k];
    }
  }
}

// --- ground truth ---------------------------------------------------------------

TEST(GroundTruth, LinearInSignatureAndActivity) {
  const auto b = cat::cpu_flops_benchmark();
  pmu::Activity act{{pmu::sig::fp("256", "dp", true), 10.0},
                    {pmu::sig::fp("scalar", "dp", false), 4.0}};
  // DP Ops signature: scalar counts 1/op, 256-FMA counts 8 ops/instr.
  const auto sigs = cpu_flops_signatures();
  const auto& dp_ops = sigs[4];
  EXPECT_DOUBLE_EQ(
      cat::ground_truth_metric(b.basis, dp_ops.coordinates, act),
      10.0 * 8.0 + 4.0 * 1.0);
}

TEST(GroundTruth, DimensionMismatchThrows) {
  const auto b = cat::branch_benchmark();
  std::vector<double> wrong{1, 0};
  EXPECT_THROW(cat::ground_truth_metric(b.basis, wrong, {}),
               std::invalid_argument);
}

// --- mixed workloads ---------------------------------------------------------------

TEST(MixedWorkloads, DeterministicAndNonEmpty) {
  const auto b = cat::cpu_flops_benchmark();
  auto m1 = cat::random_mixed_workloads(b, 5, 42);
  auto m2 = cat::random_mixed_workloads(b, 5, 42);
  ASSERT_EQ(m1.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(m1[i].weights, m2[i].weights);
    EXPECT_FALSE(m1[i].activity.empty());
  }
  auto m3 = cat::random_mixed_workloads(b, 5, 43);
  EXPECT_NE(m1[0].weights, m3[0].weights);
}

TEST(MixedWorkloads, ActivityIsWeightedSuperposition) {
  const auto b = cat::branch_benchmark();
  auto mixes = cat::random_mixed_workloads(b, 3, 7);
  for (const auto& mix : mixes) {
    // Reconstruct the expected cond-retired count from the weights.
    double expected = 0.0;
    for (std::size_t s = 0; s < b.slots.size(); ++s) {
      const auto& act = b.slots[s].thread_activities.front();
      auto it = act.find(pmu::sig::branch_cond_retired);
      if (it != act.end()) expected += mix.weights[s] * it->second;
    }
    EXPECT_DOUBLE_EQ(mix.activity.at(pmu::sig::branch_cond_retired),
                     expected);
  }
}

TEST(MixedWorkloads, RejectsBadParameters) {
  const auto b = cat::branch_benchmark();
  EXPECT_THROW(cat::random_mixed_workloads(b, 1, 1, 0), std::invalid_argument);
  EXPECT_THROW(cat::random_mixed_workloads(b, 1, 1, 5, 0.0),
               std::invalid_argument);
  EXPECT_THROW(cat::random_mixed_workloads(b, 1, 1, 5, 1.5),
               std::invalid_argument);
}

// --- validation end to end --------------------------------------------------------

TEST(Validation, ComposableCpuMetricsValidateExactly) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto bench = cat::cpu_flops_benchmark();
  const auto result =
      run_pipeline(machine, bench, cpu_flops_signatures());
  const auto reports = validate_all(machine, bench, result.metrics,
                                    cpu_flops_signatures(), 8, 2024);
  // Four composable metrics (SP/DP x Instrs/Ops).
  ASSERT_EQ(reports.size(), 4u);
  for (const auto& r : reports) {
    EXPECT_LT(r.max_relative_error, 1e-9) << r.metric_name;
    EXPECT_EQ(r.samples.size(), 8u);
  }
}

TEST(Validation, BranchMetricsValidateExactly) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto bench = cat::branch_benchmark();
  const auto result =
      run_pipeline(machine, bench, branch_signatures());
  const auto reports = validate_all(machine, bench, result.metrics,
                                    branch_signatures(), 6, 99);
  ASSERT_EQ(reports.size(), 6u);  // all but "Executed"
  for (const auto& r : reports) {
    EXPECT_LT(r.max_relative_error, 1e-9) << r.metric_name;
  }
}

TEST(Validation, NoisyCacheMetricsValidateWithinPercent) {
  const pmu::Machine machine = pmu::saphira_cpu();
  cat::DcacheOptions dopt;
  dopt.threads = 2;
  const auto bench = cat::dcache_benchmark(dopt);
  PipelineOptions opt;
  opt.tau = 1e-1;
  opt.alpha = 5e-2;
  opt.projection_max_error = 1e-1;
  opt.fitness_threshold = 5e-2;
  const auto result = run_pipeline(machine, bench, dcache_signatures(), opt);
  const auto reports = validate_all(machine, bench, result.metrics,
                                    dcache_signatures(), 6, 7);
  ASSERT_EQ(reports.size(), 6u);
  for (const auto& r : reports) {
    // Cache events carry percent-level noise; validation must stay within
    // a few percent of ground truth.
    EXPECT_LT(r.max_relative_error, 0.10) << r.metric_name;
  }
}

TEST(Validation, MisdefinedMetricIsCaught) {
  // Hand-build a WRONG preset (claims DP Ops = 1x scalar event only) and
  // check validation flags it with a large error on FMA-heavy mixes.
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto bench = cat::cpu_flops_benchmark();
  PresetDefinition wrong;
  wrong.symbol = "BAD_DP_OPS";
  wrong.description = "deliberately wrong DP Ops";
  wrong.terms = {{"FP_ARITH_INST_RETIRED:SCALAR_DOUBLE", 1.0}};
  const auto sigs = cpu_flops_signatures();
  const auto mixes = cat::random_mixed_workloads(bench, 6, 55);
  const auto report = validate_metric(machine, bench, wrong,
                                      sigs[4].coordinates, mixes);
  EXPECT_GT(report.max_relative_error, 0.3);
}

TEST(Validation, ThrowsOnUnregistrablePreset) {
  const pmu::Machine machine = pmu::saphira_cpu();
  const auto bench = cat::cpu_flops_benchmark();
  PresetDefinition bad;
  bad.symbol = "P";
  bad.description = "references unknown event";
  bad.terms = {{"NOT_AN_EVENT", 1.0}};
  const auto mixes = cat::random_mixed_workloads(bench, 1, 1);
  EXPECT_THROW(
      validate_metric(machine, bench, bad, cpu_flops_signatures()[0].coordinates,
                      mixes),
      std::invalid_argument);
}

}  // namespace
}  // namespace catalyst::core
