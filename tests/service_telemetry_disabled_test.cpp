// The CATALYST_OBS=OFF face of live telemetry: this TU is compiled with
// CATALYST_OBS_DISABLED (the obs noop mode) against the regular service
// library, proving the telemetry_noop renderers and the Session keep the
// STATS/TRACE conversation alive when observability is compiled out --
// the answer is an explicit "compiled out" document, never a dead socket,
// so a scraper can tell "no load" apart from "no instrumentation".
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/export.hpp"
#include "service/service.hpp"

namespace catalyst::service {
namespace {

std::vector<wire::Frame> decode_all(const std::string& bytes) {
  wire::FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  std::vector<wire::Frame> frames;
  while (auto frame = decoder.next()) frames.push_back(*frame);
  EXPECT_FALSE(decoder.error().has_value());
  return frames;
}

void feed(Session& session, std::chrono::nanoseconds now,
          const std::string& bytes) {
  session.on_bytes(now, bytes.data(), bytes.size());
}

/// A broker that renders telemetry the way a fully OBS-OFF daemon would:
/// through THIS translation unit's (noop) renderers instead of the
/// library's live defaults.
class CompiledOutBroker final : public RequestBroker {
 public:
  SubmitOutcome submit(SessionId, wire::SubmitBody) override {
    return SubmitOutcome{};
  }
  PollOutcome poll(SessionId, std::uint64_t) override { return PollOutcome{}; }
  bool cancel(SessionId, std::uint64_t) override { return false; }
  std::string stats_json() override { return render_stats_exposition(); }
  std::string trace_json(std::uint64_t trace_id) override {
    return render_trace_fragment(trace_id);
  }
};

TEST(TelemetryDisabled, ExpositionIsTheCompiledOutDocument) {
  const std::string json = render_stats_exposition();
  EXPECT_EQ(json, obs::kMetricsCompiledOutJson);
  EXPECT_NE(json.find("\"format\": \"catalyst-metrics-v1\""),
            std::string::npos)
      << "even compiled out, the answer is a valid metrics document";
  EXPECT_NE(json.find("\"compiled_out\": true"), std::string::npos);
}

TEST(TelemetryDisabled, TraceFragmentIsValidAndEmpty) {
  std::size_t matched = 99;
  const std::string fragment = render_trace_fragment(42, &matched);
  EXPECT_EQ(matched, 0u);
  EXPECT_NE(fragment.find("traceEvents"), std::string::npos);
}

TEST(TelemetryDisabled, SessionStillAnswersStatsAndTrace) {
  using std::chrono::nanoseconds;
  CompiledOutBroker broker;
  Session session(1, &broker, {}, nanoseconds{0});
  feed(session, nanoseconds{0},
       wire::encode_frame(wire::FrameType::hello, "off/2"));
  auto frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, wire::FrameType::hello_ok);

  feed(session, nanoseconds{1},
       wire::encode_frame(wire::FrameType::stats, ""));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, wire::FrameType::stats_ok);
  wire::Get stats(frames[0].payload);
  EXPECT_EQ(stats.string(), obs::kMetricsCompiledOutJson);
  stats.expect_done();

  std::string p;
  wire::put_u64(p, 7);
  feed(session, nanoseconds{2},
       wire::encode_frame(wire::FrameType::trace, p));
  frames = decode_all(session.take_output());
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].type, wire::FrameType::trace_ok);
  wire::Get trace(frames[0].payload);
  EXPECT_EQ(trace.u64(), 7u);
  EXPECT_NE(trace.string().find("traceEvents"), std::string::npos);
  trace.expect_done();
  EXPECT_FALSE(session.finished()) << "telemetry must not cost the session";
}

}  // namespace
}  // namespace catalyst::service
