// Tests for measurement archives: roundtrip fidelity and the key property
// that OFFLINE analysis of an archive equals the ONLINE pipeline run.
#include "core/io.hpp"

#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "cat/cat.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

class ArchiveFixture : public ::testing::Test {
 protected:
  static const pmu::Machine& machine() {
    static const pmu::Machine m = pmu::saphira_cpu();
    return m;
  }
  static const cat::Benchmark& bench() {
    static const cat::Benchmark b = cat::branch_benchmark();
    return b;
  }
  static const PipelineResult& online() {
    static const PipelineResult r =
        run_pipeline(machine(), bench(), branch_signatures());
    return r;
  }
};

TEST_F(ArchiveFixture, RoundTripPreservesEverything) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto text = save_archive(archive);
  const auto loaded = load_archive(text);

  EXPECT_EQ(loaded.format_version, archive.format_version);
  EXPECT_EQ(loaded.machine_name, "saphira-cpu");
  EXPECT_EQ(loaded.benchmark_name, "cat-branch");
  EXPECT_EQ(loaded.slot_names, archive.slot_names);
  EXPECT_EQ(loaded.basis_labels, archive.basis_labels);
  EXPECT_EQ(loaded.event_names, archive.event_names);
  EXPECT_LT(linalg::Matrix::max_abs_diff(loaded.expectation,
                                         archive.expectation),
            1e-15);
  ASSERT_EQ(loaded.measurements.size(), archive.measurements.size());
  EXPECT_EQ(loaded.measurements, archive.measurements);
}

TEST_F(ArchiveFixture, PrettyPrintedArchiveLoadsToo) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto loaded = load_archive(save_archive(archive, 2));
  EXPECT_EQ(loaded.measurements, archive.measurements);
}

TEST_F(ArchiveFixture, OfflineAnalysisEqualsOnlinePipeline) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto offline =
      analyze_archive(load_archive(save_archive(archive)),
                      branch_signatures());
  EXPECT_EQ(offline.xhat_events, online().xhat_events);
  ASSERT_EQ(offline.metrics.size(), online().metrics.size());
  for (std::size_t i = 0; i < offline.metrics.size(); ++i) {
    EXPECT_EQ(offline.metrics[i].composable, online().metrics[i].composable);
    EXPECT_NEAR(offline.metrics[i].backward_error,
                online().metrics[i].backward_error, 1e-12);
    for (std::size_t t = 0; t < offline.metrics[i].terms.size(); ++t) {
      EXPECT_NEAR(offline.metrics[i].terms[t].coefficient,
                  online().metrics[i].terms[t].coefficient, 1e-9);
    }
  }
}

TEST_F(ArchiveFixture, LoadRejectsCorruptedArchives) {
  const auto archive = make_archive(machine(), bench(), online());
  auto text = save_archive(archive);

  // Wrong version.
  auto bad = text;
  bad.replace(bad.find("catalyst-measurements-v1"), 24,
              "catalyst-measurements-v9");
  EXPECT_THROW(load_archive(bad), std::invalid_argument);

  // Not JSON at all.
  EXPECT_THROW(load_archive("not json"), json::JsonError);

  // Missing key.
  EXPECT_THROW(load_archive(R"({"format": "catalyst-measurements-v1"})"),
               json::JsonError);
}

TEST_F(ArchiveFixture, LoadRejectsShapeMismatches) {
  // Hand-build a tiny structurally-broken archive: 2 slots but a
  // measurement vector of length 1.
  const std::string bad = R"({
    "format": "catalyst-measurements-v1",
    "machine": "m", "benchmark": "b",
    "slots": ["s1", "s2"],
    "basis": {"labels": ["X"], "e": [[1], [2]]},
    "events": ["E"],
    "measurements": [[[1.0]]]
  })";
  EXPECT_THROW(load_archive(bad), std::invalid_argument);
}

TEST_F(ArchiveFixture, TruncatedArchivesThrowArchiveErrorWithByteOffset) {
  // A crash mid-write can leave ANY prefix of an archive on disk.  Every
  // truncation must surface as a typed ArchiveError naming the byte offset
  // where the input stopped making sense -- never a crash, never a
  // silently-accepted partial archive.
  const auto archive = make_archive(machine(), bench(), online());
  const auto text = save_archive(archive);
  // Sampling prefixes keeps this fast (the archive is ~1 MB); the stride is
  // prime so cut points land in every syntactic context.
  for (std::size_t cut = 1; cut < text.size(); cut += 7919) {
    try {
      (void)load_archive(text.substr(0, cut));
      FAIL() << "truncation at byte " << cut << " was accepted";
    } catch (const ArchiveError& e) {
      EXPECT_NE(e.offset(), std::string::npos) << "cut at " << cut;
      EXPECT_LE(e.offset(), cut) << "cut at " << cut;
      EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos);
    } catch (const std::invalid_argument&) {
      // Truncation that still parses as JSON (e.g. cut inside a trailing
      // close brace sequence) surfaces as a shape error -- also typed.
    }
  }
}

TEST_F(ArchiveFixture, TruncatedRoundTripNeverTearsSilently) {
  // Complement of the prefix sweep: removing the LAST byte (the most likely
  // torn write) must be rejected, and the full text must still load.
  const auto archive = make_archive(machine(), bench(), online());
  const auto text = save_archive(archive);
  EXPECT_THROW(load_archive(text.substr(0, text.size() - 1)),
               json::JsonError);
  EXPECT_NO_THROW(load_archive(text));
}

TEST(ArchiveV2, QuarantineAndReportRoundTrip) {
  // Hand-build a v2 archive and check the robustness payload survives the
  // trip; the loader must also keep accepting v1 files (no payload).
  MeasurementArchive a;
  a.machine_name = "m";
  a.benchmark_name = "b";
  a.slot_names = {"s1", "s2"};
  a.basis_labels = {"X"};
  a.expectation = linalg::Matrix(2, 1);
  a.expectation(0, 0) = 1.0;
  a.expectation(1, 0) = 2.0;
  a.event_names = {"E"};
  a.measurements = {{{1.0, 2.0}, {1.0, 2.0}}};
  a.quarantined = {"CURSED"};
  vpapi::CollectionReport report;
  report.total_retries = 7;
  report.start_retries = 2;
  report.quarantined = {"CURSED"};
  vpapi::EventReport er;
  er.name = "CURSED";
  er.read_attempts = 9;
  er.retries = 8;
  er.faults[static_cast<std::size_t>(faults::FaultKind::dropped_reading)] = 8;
  er.disposition = vpapi::EventDisposition::quarantined;
  report.events.push_back(er);
  a.collection_report = report;

  const auto text = save_archive(a);
  EXPECT_NE(text.find("catalyst-measurements-v2"), std::string::npos);
  const auto loaded = load_archive(text);
  EXPECT_EQ(loaded.quarantined, a.quarantined);
  ASSERT_TRUE(loaded.collection_report.has_value());
  EXPECT_EQ(loaded.collection_report->total_retries, 7u);
  EXPECT_EQ(loaded.collection_report->start_retries, 2u);
  const auto* e = loaded.collection_report->find("CURSED");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->retries, 8u);
  EXPECT_EQ(e->disposition, vpapi::EventDisposition::quarantined);
  EXPECT_EQ(e->faults[static_cast<std::size_t>(
                faults::FaultKind::dropped_reading)],
            8u);

  // v1 stays v1: no payload -> original format marker and no v2 keys.
  a.quarantined.clear();
  a.collection_report.reset();
  a.format_version.clear();
  const auto v1_text = save_archive(a);
  EXPECT_NE(v1_text.find("catalyst-measurements-v1"), std::string::npos);
  EXPECT_EQ(v1_text.find("collection_report"), std::string::npos);
}

TEST(ArchiveV2, SampleTraceRoundTripIsByteStable) {
  // A sampled archive carries the collection mode and the per-run sample
  // trace; save -> load -> save must reproduce the text byte for byte (the
  // strobed determinism guarantee extends to the serialized form).
  MeasurementArchive a;
  a.machine_name = "m";
  a.benchmark_name = "b";
  a.slot_names = {"s1", "s2"};
  a.basis_labels = {"X"};
  a.expectation = linalg::Matrix(2, 1);
  a.expectation(0, 0) = 1.0;
  a.expectation(1, 0) = 2.0;
  a.event_names = {"E"};
  a.measurements = {{{1.0, 2.0}, {1.0, 2.0}}};
  a.collection_mode = vpapi::CollectionMode::strobed;
  vpapi::SampleTrace trace;
  trace.mode = vpapi::CollectionMode::strobed;
  trace.schedule.kernel_span_ns = 1000;
  trace.schedule.period_ns = 300;
  trace.schedule.short_period_ns = 100;
  trace.schedule.dither = false;
  trace.kernels = 2;
  vpapi::RunTrace run;
  run.repetition = 1;
  run.run_id = 3;
  run.events = {"E"};
  run.samples = {{300, {5.0}}, {400, {7.0}}, {2000, {42.0}}};
  trace.runs.push_back(run);
  a.sample_trace = trace;

  const auto text = save_archive(a);
  EXPECT_NE(text.find("catalyst-measurements-v2"), std::string::npos);
  EXPECT_NE(text.find("collection_mode"), std::string::npos);
  EXPECT_NE(text.find("sample_trace"), std::string::npos);
  const auto loaded = load_archive(text);
  EXPECT_EQ(loaded.collection_mode, vpapi::CollectionMode::strobed);
  ASSERT_TRUE(loaded.sample_trace.has_value());
  EXPECT_EQ(loaded.sample_trace->mode, vpapi::CollectionMode::strobed);
  EXPECT_EQ(loaded.sample_trace->schedule.period_ns, 300u);
  EXPECT_EQ(loaded.sample_trace->schedule.short_period_ns, 100u);
  EXPECT_FALSE(loaded.sample_trace->schedule.dither);
  EXPECT_EQ(loaded.sample_trace->kernels, 2u);
  ASSERT_EQ(loaded.sample_trace->runs.size(), 1u);
  const vpapi::RunTrace& lr = loaded.sample_trace->runs[0];
  EXPECT_EQ(lr.repetition, 1u);
  EXPECT_EQ(lr.run_id, 3u);
  EXPECT_EQ(lr.events, run.events);
  ASSERT_EQ(lr.samples.size(), 3u);
  EXPECT_EQ(lr.samples[1].t_ns, 400u);
  EXPECT_EQ(lr.samples[2].values, std::vector<double>{42.0});
  EXPECT_EQ(save_archive(loaded), text);

  // Counting-mode archives never grow the new keys: byte-compatible v1.
  a.collection_mode = vpapi::CollectionMode::counting;
  a.sample_trace.reset();
  a.format_version.clear();
  const auto v1_text = save_archive(a);
  EXPECT_NE(v1_text.find("catalyst-measurements-v1"), std::string::npos);
  EXPECT_EQ(v1_text.find("collection_mode"), std::string::npos);
  EXPECT_EQ(v1_text.find("sample_trace"), std::string::npos);
}

TEST(ArchiveV2, SampleTraceCodecRejectsInconsistentShapes) {
  vpapi::SampleTrace trace;
  trace.mode = vpapi::CollectionMode::sampling;
  trace.kernels = 1;
  vpapi::RunTrace run;
  run.events = {"E1", "E2"};
  run.samples = {{1000, {1.0}}};  // width 1 != 2 run events
  trace.runs.push_back(run);
  EXPECT_THROW(sample_trace_from_json(sample_trace_to_json(trace)),
               std::invalid_argument);
}

TEST(ArchiveFiles, AtomicWriteReplacesAndNeverTears) {
  const std::string path = "/tmp/catalyst_io_atomic_test.json";
  write_text_file_atomic(path, "first");
  EXPECT_EQ(read_text_file(path), "first");
  write_text_file_atomic(path, "second");
  EXPECT_EQ(read_text_file(path), "second");
  // The temp file must not linger after the rename.
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file(path + ".tmp"), std::runtime_error);
  EXPECT_THROW(write_text_file_atomic("/nonexistent/dir/f.json", "x"),
               std::runtime_error);
}

TEST(ArchiveFiles, WriteAndReadBack) {
  const std::string path = "/tmp/catalyst_io_test.json";
  write_text_file(path, "{\"x\": 1}");
  EXPECT_EQ(read_text_file(path), "{\"x\": 1}");
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file("/nonexistent/dir/file.json"),
               std::runtime_error);
  EXPECT_THROW(write_text_file("/nonexistent/dir/file.json", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace catalyst::core
