// Tests for measurement archives: roundtrip fidelity and the key property
// that OFFLINE analysis of an archive equals the ONLINE pipeline run.
#include "core/io.hpp"

#include "core/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "cat/cat.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

class ArchiveFixture : public ::testing::Test {
 protected:
  static const pmu::Machine& machine() {
    static const pmu::Machine m = pmu::saphira_cpu();
    return m;
  }
  static const cat::Benchmark& bench() {
    static const cat::Benchmark b = cat::branch_benchmark();
    return b;
  }
  static const PipelineResult& online() {
    static const PipelineResult r =
        run_pipeline(machine(), bench(), branch_signatures());
    return r;
  }
};

TEST_F(ArchiveFixture, RoundTripPreservesEverything) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto text = save_archive(archive);
  const auto loaded = load_archive(text);

  EXPECT_EQ(loaded.format_version, archive.format_version);
  EXPECT_EQ(loaded.machine_name, "saphira-cpu");
  EXPECT_EQ(loaded.benchmark_name, "cat-branch");
  EXPECT_EQ(loaded.slot_names, archive.slot_names);
  EXPECT_EQ(loaded.basis_labels, archive.basis_labels);
  EXPECT_EQ(loaded.event_names, archive.event_names);
  EXPECT_LT(linalg::Matrix::max_abs_diff(loaded.expectation,
                                         archive.expectation),
            1e-15);
  ASSERT_EQ(loaded.measurements.size(), archive.measurements.size());
  EXPECT_EQ(loaded.measurements, archive.measurements);
}

TEST_F(ArchiveFixture, PrettyPrintedArchiveLoadsToo) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto loaded = load_archive(save_archive(archive, 2));
  EXPECT_EQ(loaded.measurements, archive.measurements);
}

TEST_F(ArchiveFixture, OfflineAnalysisEqualsOnlinePipeline) {
  const auto archive = make_archive(machine(), bench(), online());
  const auto offline =
      analyze_archive(load_archive(save_archive(archive)),
                      branch_signatures());
  EXPECT_EQ(offline.xhat_events, online().xhat_events);
  ASSERT_EQ(offline.metrics.size(), online().metrics.size());
  for (std::size_t i = 0; i < offline.metrics.size(); ++i) {
    EXPECT_EQ(offline.metrics[i].composable, online().metrics[i].composable);
    EXPECT_NEAR(offline.metrics[i].backward_error,
                online().metrics[i].backward_error, 1e-12);
    for (std::size_t t = 0; t < offline.metrics[i].terms.size(); ++t) {
      EXPECT_NEAR(offline.metrics[i].terms[t].coefficient,
                  online().metrics[i].terms[t].coefficient, 1e-9);
    }
  }
}

TEST_F(ArchiveFixture, LoadRejectsCorruptedArchives) {
  const auto archive = make_archive(machine(), bench(), online());
  auto text = save_archive(archive);

  // Wrong version.
  auto bad = text;
  bad.replace(bad.find("catalyst-measurements-v1"), 24,
              "catalyst-measurements-v9");
  EXPECT_THROW(load_archive(bad), std::invalid_argument);

  // Not JSON at all.
  EXPECT_THROW(load_archive("not json"), json::JsonError);

  // Missing key.
  EXPECT_THROW(load_archive(R"({"format": "catalyst-measurements-v1"})"),
               json::JsonError);
}

TEST_F(ArchiveFixture, LoadRejectsShapeMismatches) {
  // Hand-build a tiny structurally-broken archive: 2 slots but a
  // measurement vector of length 1.
  const std::string bad = R"({
    "format": "catalyst-measurements-v1",
    "machine": "m", "benchmark": "b",
    "slots": ["s1", "s2"],
    "basis": {"labels": ["X"], "e": [[1], [2]]},
    "events": ["E"],
    "measurements": [[[1.0]]]
  })";
  EXPECT_THROW(load_archive(bad), std::invalid_argument);
}

TEST(ArchiveFiles, WriteAndReadBack) {
  const std::string path = "/tmp/catalyst_io_test.json";
  write_text_file(path, "{\"x\": 1}");
  EXPECT_EQ(read_text_file(path), "{\"x\": 1}");
  std::remove(path.c_str());
  EXPECT_THROW(read_text_file("/nonexistent/dir/file.json"),
               std::runtime_error);
  EXPECT_THROW(write_text_file("/nonexistent/dir/file.json", "x"),
               std::runtime_error);
}

}  // namespace
}  // namespace catalyst::core
