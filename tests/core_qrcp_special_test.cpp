// Unit tests for the specialized QRCP (Algorithm 2): rounding, scoring,
// pivot order, beta cutoff, and the max-norm-trap comparison with the
// classic Algorithm 1.
#include "core/qrcp_special.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/qrcp.hpp"

namespace catalyst::core {
namespace {

TEST(Rounding, SnapsWithinTolerance) {
  EXPECT_DOUBLE_EQ(round_to_tolerance(1.0002, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(round_to_tolerance(0.999, 0.01), 1.0);
  EXPECT_DOUBLE_EQ(round_to_tolerance(0.004, 0.01), 0.0);
  // Values are rounded to the nearest multiple of alpha, not only to ints.
  EXPECT_DOUBLE_EQ(round_to_tolerance(0.503, 0.01), 0.5);
  EXPECT_NEAR(round_to_tolerance(90.502, 0.01), 90.5, 1e-12);
}

TEST(Rounding, NegativeValues) {
  EXPECT_DOUBLE_EQ(round_to_tolerance(-0.9999, 0.01), -1.0);
  EXPECT_DOUBLE_EQ(round_to_tolerance(-0.004, 0.01), 0.0);
}

TEST(Scoring, EntryScores) {
  EXPECT_DOUBLE_EQ(score_entry(0.0), 0.0);
  EXPECT_DOUBLE_EQ(score_entry(1.0), 1.0);
  EXPECT_DOUBLE_EQ(score_entry(2.5), 2.5);
  EXPECT_DOUBLE_EQ(score_entry(0.5), 2.0);
  EXPECT_DOUBLE_EQ(score_entry(0.1), 10.0);
}

TEST(Scoring, PaperExampleScoresFourPointFive) {
  // Section V: for alpha = 0.01 the vector (1.002, 0.001, 90.5, 1.5) scores
  // 1 + 0 + 1/0.5 + 1.5 = 4.5.
  // (The paper scores 90.5's fractional part after rounding: R(90.5) = 90.5,
  //  and Sc uses the value's distance-from-integer convention in the text's
  //  worked example -- 90.5 contributes 1/0.5 = 2.)
  // Our literal Sc(v) of the formula block gives v = 90.5 -> 90.5; the
  // worked example instead treats integer+half values by their fractional
  // distance.  We implement the formula block; this test pins the formula's
  // behaviour and documents the example's intent separately.
  const std::vector<double> v{1.002, 0.001, 0.5, 1.5};
  EXPECT_DOUBLE_EQ(column_score(v, 0.01), 1.0 + 0.0 + 2.0 + 1.5);
}

TEST(Scoring, BasisLikeColumnsScoreLowest) {
  const std::vector<double> clean{1.0, 0.0, 0.0};
  const std::vector<double> fuzzy{0.5, 0.5, 0.0};
  const std::vector<double> big{100.0, 100.0, 100.0};
  const double a = 1e-3;
  EXPECT_LT(column_score(clean, a), column_score(fuzzy, a));
  EXPECT_LT(column_score(clean, a), column_score(big, a));
}

TEST(Scoring, RoundingSuppressesNoiseInScores) {
  // Without rounding 1.0001 would score ~1.0001 and 0.0001 would score 1e4;
  // with alpha = 1e-3 both snap to the clean values.
  const std::vector<double> noisy{1.0001, 0.0001};
  EXPECT_DOUBLE_EQ(column_score(noisy, 1e-3), 1.0);
}

TEST(SpecialQrcp, PrefersBasisAlignedColumnsOverMaxNorm) {
  // Column 0: huge "cycles-like" column; columns 1-2: clean basis-like.
  // Classic QRCP picks the cycles column first; Algorithm 2 must not.
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1000.0, 1000.0, 1000.0},
      {1.0, 0.0, 0.0},
      {0.0, 1.0, 0.0},
  });
  auto classic = linalg::qrcp(x);
  EXPECT_EQ(classic.permutation[0], 0);

  auto special = specialized_qrcp(x, 1e-3);
  ASSERT_GE(special.rank, 2);
  EXPECT_NE(special.selected[0], 0);
  EXPECT_NE(special.selected[1], 0);
}

TEST(SpecialQrcp, SelectsIndependentSetOnly) {
  // c2 = c0 + c1 must be pruned.
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0, 0.0},
      {0.0, 1.0},
      {1.0, 1.0},
  });
  auto res = specialized_qrcp(x, 1e-3);
  EXPECT_EQ(res.rank, 2);
  std::vector<linalg::index_t> sel = res.selected;
  std::sort(sel.begin(), sel.end());
  EXPECT_EQ(sel, (std::vector<linalg::index_t>{0, 1}));
}

TEST(SpecialQrcp, DuplicateColumnsPickedOnce) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {0.0, 1.0},
      {0.0, 1.0},
      {1.0, 0.0},
  });
  auto res = specialized_qrcp(x, 1e-3);
  EXPECT_EQ(res.rank, 2);
}

TEST(SpecialQrcp, NoiseLevelDuplicatesPrunedByBeta) {
  // Duplicate with small additive noise: after the first pick its residual
  // is noise-sized, below beta, and must not be selected.
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0, 0.0, 0.0, 0.0},
      {1.0003, 0.0002, -0.0001, 0.0001},
  });
  auto res = specialized_qrcp(x, 5e-3);
  EXPECT_EQ(res.rank, 1);
}

TEST(SpecialQrcp, TerminatesOnAllNoiseColumns) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1e-5, -2e-5, 1e-5},
      {2e-5, 1e-5, -1e-5},
  });
  auto res = specialized_qrcp(x, 1e-3);
  EXPECT_EQ(res.rank, 0);
  EXPECT_TRUE(res.selected.empty());
}

TEST(SpecialQrcp, TieBrokenBySmallestRoundedNorm) {
  // Equal scores (2 each) but distinct rounded norms: (1,1) has norm sqrt(2)
  // < 2 = the norm of (2,0), so the spread-out column wins the tie.
  linalg::Matrix x = linalg::Matrix::from_columns({
      {2.0, 0.0, 0.0},  // score 2, rounded norm 2
      {1.0, 1.0, 0.0},  // score 2, rounded norm sqrt(2) -> picked first
      {0.0, 0.0, 1.0},
  });
  auto res = specialized_qrcp(x, 1e-2);
  // Column 2 scores 1 and is picked first; the tie between columns 0 and 1
  // (both score 2) then resolves to the smaller rounded norm.
  ASSERT_GE(res.rank, 2);
  EXPECT_EQ(res.selected[0], 2);
  EXPECT_EQ(res.selected[1], 1);
}

TEST(SpecialQrcp, FullTiesResolveToInputOrder) {
  // Noise within the rounding tolerance must not decide between aliases:
  // both columns round to (1, 0), so the earlier-registered one is picked.
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.004, 0.0},  // rounds to 1.0, same score and rounded norm
      {0.996, 0.0},  // rounds to 1.0 -- true norm smaller, but tied
      {0.0, 1.0},
  });
  auto res = specialized_qrcp(x, 1e-2);
  ASSERT_GE(res.rank, 1);
  EXPECT_EQ(res.selected[0], 0);
}

TEST(SpecialQrcp, FractionalColumnsPickedAfterCleanOnes) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {0.5, 0.5},  // fuzzy: score 4
      {1.0, 0.0},  // clean: score 1
      {0.0, 1.0},  // clean: score 1
  });
  auto res = specialized_qrcp(x, 1e-3);
  ASSERT_EQ(res.rank, 2);
  EXPECT_NE(res.selected[0], 0);
  EXPECT_NE(res.selected[1], 0);
}

TEST(SpecialQrcp, RankBoundedByRows) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0, 0.0},
      {0.0, 1.0},
      {1.0, 2.0},
      {3.0, 1.0},
  });
  auto res = specialized_qrcp(x, 1e-4);
  EXPECT_LE(res.rank, 2);
}

TEST(SpecialQrcp, RejectsNonPositiveAlpha) {
  linalg::Matrix x(2, 2, 1.0);
  EXPECT_THROW(specialized_qrcp(x, 0.0), std::invalid_argument);
  EXPECT_THROW(specialized_qrcp(x, -1.0), std::invalid_argument);
}

TEST(SpecialQrcp, EmptyMatrix) {
  linalg::Matrix x(4, 0);
  auto res = specialized_qrcp(x, 1e-3);
  EXPECT_EQ(res.rank, 0);
}

TEST(SpecialQrcp, PivotScoresRecorded) {
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0, 0.0},
      {0.0, 2.0},
  });
  auto res = specialized_qrcp(x, 1e-3);
  ASSERT_EQ(res.pivot_scores.size(), static_cast<std::size_t>(res.rank));
  EXPECT_DOUBLE_EQ(res.pivot_scores[0], 1.0);  // the clean unit column
  EXPECT_DOUBLE_EQ(res.pivot_scores[1], 2.0);  // the (2) column
}

class AlphaSensitivity : public ::testing::TestWithParam<double> {};

TEST_P(AlphaSensitivity, WideAlphaRangeYieldsSameSelection) {
  // Section V-E: alpha need not be a magic value.  Clean columns with ~1e-4
  // noise should give the same X-hat for alpha anywhere in [5e-4, 5e-2].
  const double alpha = GetParam();
  linalg::Matrix x = linalg::Matrix::from_columns({
      {1.0001, 0.0001, -0.0002, 0.0},
      {0.0002, 1.0002, 0.0001, 0.0001},
      {1.0002, 1.0001, -0.0001, 0.0002},  // sum of the first two
      {-0.0001, 0.0001, 1.0001, 0.0},
  });
  auto res = specialized_qrcp(x, alpha);
  ASSERT_EQ(res.rank, 3);
  std::vector<linalg::index_t> sel = res.selected;
  std::sort(sel.begin(), sel.end());
  // Column 2 equals column 0 + column 1, so after the first pick either of
  // the remaining two is a legitimate representative of the second
  // dimension; what must be stable across alpha is the rank, the inclusion
  // of the only third-dimension column (3), and exactly two of {0, 1, 2}.
  EXPECT_EQ(sel.back(), 3);
  EXPECT_LT(sel[1], 3);
  // And the selection itself must not depend on alpha: compare against the
  // reference alpha = 5e-4 run.
  auto ref = specialized_qrcp(x, 5e-4);
  std::vector<linalg::index_t> ref_sel = ref.selected;
  std::sort(ref_sel.begin(), ref_sel.end());
  EXPECT_EQ(sel, ref_sel);
}

INSTANTIATE_TEST_SUITE_P(Alphas, AlphaSensitivity,
                         ::testing::Values(5e-4, 1e-3, 5e-3, 1e-2, 5e-2));

}  // namespace
}  // namespace catalyst::core
