// Golden-file regression for the published table content (Tables V-VIII):
// the rounded metric tables for every machine/category pairing must stay
// BYTE-IDENTICAL to the checked-in goldens under tests/golden/.
//
// After an intended output change, regenerate with
//   scripts/update_golden.sh
// (which re-runs this binary with CATALYST_UPDATE_GOLDEN=1: the test then
// rewrites the golden files instead of comparing against them).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

#ifndef CATALYST_GOLDEN_DIR
#error "golden_tables_test needs CATALYST_GOLDEN_DIR (see tests/CMakeLists.txt)"
#endif

namespace catalyst::core {
namespace {

struct GoldenCase {
  const char* file;      // golden file name under tests/golden/
  const char* title;     // table heading (stored in the golden bytes)
  const char* machine;   // saphira | tempest | vesuvio
  const char* category;  // cpu_flops | gpu_flops | branch | dcache
};

class GoldenTables : public ::testing::TestWithParam<GoldenCase> {
 protected:
  static pmu::Machine machine_for(const std::string& name) {
    if (name == "tempest") return pmu::tempest_gpu();
    if (name == "vesuvio") return pmu::vesuvio_cpu();
    return pmu::saphira_cpu();
  }
  static cat::Benchmark benchmark_for(const std::string& category) {
    if (category == "cpu_flops") return cat::cpu_flops_benchmark();
    if (category == "gpu_flops") return cat::gpu_flops_benchmark();
    if (category == "branch") return cat::branch_benchmark();
    cat::DcacheOptions chase;
    chase.threads = 3;
    return cat::dcache_benchmark(chase);
  }
  static std::vector<MetricSignature> signatures_for(
      const std::string& category) {
    if (category == "cpu_flops") return cpu_flops_signatures();
    if (category == "gpu_flops") return gpu_flops_signatures();
    if (category == "branch") return branch_signatures();
    return dcache_signatures();
  }
  static PipelineOptions options_for(const std::string& category) {
    PipelineOptions options;
    if (category == "dcache") {
      // Section IV / V-E: the cache runs use relaxed thresholds.
      options.tau = 1e-1;
      options.alpha = 5e-2;
      options.projection_max_error = 1e-1;
      options.fitness_threshold = 5e-2;
    }
    return options;
  }
};

TEST_P(GoldenTables, RoundedTableMatchesGoldenBytes) {
  const GoldenCase& c = GetParam();
  const auto result =
      run_pipeline(machine_for(c.machine), benchmark_for(c.category),
                   signatures_for(c.category), options_for(c.category));
  const std::string text = format_metric_table(c.title, result.metrics,
                                               /*rounded=*/true);
  const std::string path = std::string(CATALYST_GOLDEN_DIR) + "/" + c.file;

  const char* update = std::getenv("CATALYST_UPDATE_GOLDEN");
  if (update != nullptr && std::string(update) == "1") {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write golden file " << path;
    out << text;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << "; run scripts/update_golden.sh";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(text, golden.str())
      << "table output drifted from " << path
      << "; if the change is intended, run scripts/update_golden.sh and "
         "review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    TablesVToVIII, GoldenTables,
    ::testing::Values(
        GoldenCase{"table5_cpu_flops_saphira.txt",
                   "Table V: CPU FLOPS metrics (saphira)", "saphira",
                   "cpu_flops"},
        GoldenCase{"table5_cpu_flops_vesuvio.txt",
                   "Table V: CPU FLOPS metrics (vesuvio)", "vesuvio",
                   "cpu_flops"},
        GoldenCase{"table6_gpu_flops_tempest.txt",
                   "Table VI: GPU FLOPS metrics (tempest)", "tempest",
                   "gpu_flops"},
        GoldenCase{"table7_branch_saphira.txt",
                   "Table VII: branch metrics (saphira)", "saphira",
                   "branch"},
        GoldenCase{"table7_branch_vesuvio.txt",
                   "Table VII: branch metrics (vesuvio)", "vesuvio",
                   "branch"},
        GoldenCase{"table8_dcache_saphira.txt",
                   "Table VIII: data-cache metrics (saphira)", "saphira",
                   "dcache"}),
    [](const ::testing::TestParamInfo<GoldenCase>& info) {
      std::string name = info.param.file;
      name = name.substr(0, name.find('.'));
      return name;
    });

}  // namespace
}  // namespace catalyst::core
