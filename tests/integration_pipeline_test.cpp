// Integration tests: the full analysis pipeline on every benchmark/machine
// pair, asserting the paper's headline results (Sections V and VI,
// Tables V-VIII).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

bool contains(const std::vector<std::string>& names, const std::string& n) {
  return std::find(names.begin(), names.end(), n) != names.end();
}

const MetricDefinition& metric(const PipelineResult& res,
                               const std::string& name) {
  for (const auto& m : res.metrics) {
    if (m.metric_name == name) return m;
  }
  throw std::runtime_error("metric not found: " + name);
}

double coefficient(const MetricDefinition& def, const std::string& event) {
  for (const auto& t : def.terms) {
    if (t.event_name == event) return t.coefficient;
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// CPU FLOPs (Sections V-A, VI-A; Table V)
// ---------------------------------------------------------------------------

class CpuFlopsPipeline : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult res = [] {
      const pmu::Machine machine = pmu::saphira_cpu();
      const cat::Benchmark bench = cat::cpu_flops_benchmark();
      PipelineOptions opt;  // tau = 1e-10, alpha = 5e-4: the paper's values
      return run_pipeline(machine, bench, cpu_flops_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(CpuFlopsPipeline, QrSelectsExactlyTheEightFpArithEvents) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 8u) << format_selected_events(result());
  for (const char* suffix :
       {"SCALAR_SINGLE", "SCALAR_DOUBLE", "128B_PACKED_SINGLE",
        "128B_PACKED_DOUBLE", "256B_PACKED_SINGLE", "256B_PACKED_DOUBLE",
        "512B_PACKED_SINGLE", "512B_PACKED_DOUBLE"}) {
    EXPECT_TRUE(contains(events,
                         std::string("FP_ARITH_INST_RETIRED:") + suffix))
        << suffix;
  }
}

TEST_F(CpuFlopsPipeline, InstrAndOpsMetricsAreComposable) {
  for (const char* name : {"SP Instrs.", "SP Ops.", "DP Instrs.", "DP Ops."}) {
    const auto& m = metric(result(), name);
    EXPECT_TRUE(m.composable) << name << " err=" << m.backward_error;
    EXPECT_LT(m.backward_error, 1e-10) << name;
  }
}

TEST_F(CpuFlopsPipeline, DpOpsCoefficientsMatchTableV) {
  const auto& m = metric(result(), "DP Ops.");
  EXPECT_NEAR(coefficient(m, "FP_ARITH_INST_RETIRED:SCALAR_DOUBLE"), 1.0,
              1e-6);
  EXPECT_NEAR(coefficient(m, "FP_ARITH_INST_RETIRED:128B_PACKED_DOUBLE"), 2.0,
              1e-6);
  EXPECT_NEAR(coefficient(m, "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE"), 4.0,
              1e-6);
  EXPECT_NEAR(coefficient(m, "FP_ARITH_INST_RETIRED:512B_PACKED_DOUBLE"), 8.0,
              1e-6);
  // No contamination from the SP events.
  EXPECT_NEAR(coefficient(m, "FP_ARITH_INST_RETIRED:SCALAR_SINGLE"), 0.0,
              1e-6);
}

TEST_F(CpuFlopsPipeline, SpInstrsCoefficientsAreAllOnes) {
  const auto& m = metric(result(), "SP Instrs.");
  for (const char* e :
       {"FP_ARITH_INST_RETIRED:SCALAR_SINGLE",
        "FP_ARITH_INST_RETIRED:128B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:256B_PACKED_SINGLE",
        "FP_ARITH_INST_RETIRED:512B_PACKED_SINGLE"}) {
    EXPECT_NEAR(coefficient(m, e), 1.0, 1e-6) << e;
  }
}

TEST_F(CpuFlopsPipeline, FmaInstrsMetricsAreNotComposable) {
  // Table V: the FMA-instruction metrics come out as 0.8 x (each event)
  // with backward error ~2.4e-1 -- the architecture has no FMA-only events.
  for (const char* name : {"SP FMA Instrs.", "DP FMA Instrs."}) {
    const auto& m = metric(result(), name);
    EXPECT_FALSE(m.composable) << name;
    EXPECT_NEAR(m.backward_error, 2.4e-1, 8e-2) << name;
  }
  const auto& dp = metric(result(), "DP FMA Instrs.");
  EXPECT_NEAR(coefficient(dp, "FP_ARITH_INST_RETIRED:256B_PACKED_DOUBLE"),
              0.8, 1e-3);
}

TEST_F(CpuFlopsPipeline, AggregateFpEventsWerePrunedByQr) {
  // FP_ARITH_INST_RETIRED:VECTOR/:ANY are exact linear combinations of the
  // eight selected events: they survive noise + projection but must NOT be
  // in X-hat.
  const auto& proj_names = result().projection.x_event_names;
  EXPECT_TRUE(contains(proj_names, "FP_ARITH_INST_RETIRED:VECTOR"));
  EXPECT_TRUE(contains(proj_names, "FP_ARITH_INST_RETIRED:ANY"));
  EXPECT_FALSE(contains(result().xhat_events, "FP_ARITH_INST_RETIRED:VECTOR"));
  EXPECT_FALSE(contains(result().xhat_events, "FP_ARITH_INST_RETIRED:ANY"));
}

TEST_F(CpuFlopsPipeline, CyclesEventsNeverReachX) {
  // Cycle counters are noisy (dropped by tau) AND unrepresentable; they
  // must not appear among the projected events.
  const auto& proj_names = result().projection.x_event_names;
  EXPECT_FALSE(contains(proj_names, "CPU_CLK_UNHALTED:THREAD"));
  EXPECT_FALSE(contains(proj_names, "TOPDOWN:SLOTS"));
}

TEST_F(CpuFlopsPipeline, ZeroNoiseClusterExists) {
  // Fig. 2b: a cluster of events with (near-)zero variability, well
  // separated from the noisy tail.
  std::size_t zero_noise = 0;
  std::size_t noisy = 0;
  for (const auto& v : result().noise.variabilities) {
    if (v.all_zero) continue;
    if (v.max_rnmse <= 1e-10) ++zero_noise;
    if (v.max_rnmse > 1e-4) ++noisy;
  }
  EXPECT_GT(zero_noise, 10u);
  EXPECT_GT(noisy, 50u);
}

// ---------------------------------------------------------------------------
// GPU FLOPs (Sections V-B, VI-B; Table VI)
// ---------------------------------------------------------------------------

class GpuFlopsPipeline : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult res = [] {
      const pmu::Machine machine = pmu::tempest_gpu();
      const cat::Benchmark bench = cat::gpu_flops_benchmark();
      PipelineOptions opt;
      return run_pipeline(machine, bench, gpu_flops_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(GpuFlopsPipeline, QrSelectsTheTwelveValuFpEvents) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 12u) << format_selected_events(result());
  for (const char* op : {"ADD", "MUL", "TRANS", "FMA"}) {
    for (const char* p : {"F16", "F32", "F64"}) {
      const std::string name = std::string("rocm:::SQ_INSTS_VALU_") + op +
                               "_" + p + ":device=0";
      EXPECT_TRUE(contains(events, name)) << name;
    }
  }
}

TEST_F(GpuFlopsPipeline, HpAddAloneIsNotComposable) {
  // Table VI: HP Add and HP Sub cannot be separated; least squares puts
  // ~0.5 on the combined ADD counter with error ~4.1e-1.
  const auto& add = metric(result(), "HP Add Ops.");
  EXPECT_FALSE(add.composable);
  EXPECT_NEAR(add.backward_error, 4.1e-1, 1.5e-1);
  EXPECT_NEAR(coefficient(add, "rocm:::SQ_INSTS_VALU_ADD_F16:device=0"), 0.5,
              1e-3);
  const auto& sub = metric(result(), "HP Sub Ops.");
  EXPECT_FALSE(sub.composable);
  EXPECT_NEAR(coefficient(sub, "rocm:::SQ_INSTS_VALU_ADD_F16:device=0"), 0.5,
              1e-3);
}

TEST_F(GpuFlopsPipeline, CombinedAddSubIsExact) {
  const auto& m = metric(result(), "HP Add and Sub Ops.");
  EXPECT_TRUE(m.composable) << m.backward_error;
  EXPECT_NEAR(coefficient(m, "rocm:::SQ_INSTS_VALU_ADD_F16:device=0"), 1.0,
              1e-6);
}

TEST_F(GpuFlopsPipeline, AllOpsMetricsMatchTableVI) {
  for (const char* prec : {"HP", "SP", "DP"}) {
    const std::string name = std::string("All ") + prec + " Ops.";
    const auto& m = metric(result(), name);
    EXPECT_TRUE(m.composable) << name << " err=" << m.backward_error;
    const char* suffix = prec == std::string("HP")   ? "F16"
                         : prec == std::string("SP") ? "F32"
                                                     : "F64";
    EXPECT_NEAR(coefficient(m, std::string("rocm:::SQ_INSTS_VALU_FMA_") +
                                   suffix + ":device=0"),
                2.0, 1e-6);
    EXPECT_NEAR(coefficient(m, std::string("rocm:::SQ_INSTS_VALU_MUL_") +
                                   suffix + ":device=0"),
                1.0, 1e-6);
  }
}

TEST_F(GpuFlopsPipeline, IdleDeviceEventsDoNotReachX) {
  for (const auto& name : result().projection.x_event_names) {
    EXPECT_EQ(name.find("device=3"), std::string::npos) << name;
  }
}

// ---------------------------------------------------------------------------
// Branching (Sections V-C, VI-C; Table VII)
// ---------------------------------------------------------------------------

class BranchPipeline : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult res = [] {
      const pmu::Machine machine = pmu::saphira_cpu();
      const cat::Benchmark bench = cat::branch_benchmark();
      PipelineOptions opt;
      return run_pipeline(machine, bench, branch_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(BranchPipeline, QrSelectsTheFourPaperEvents) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 4u) << format_selected_events(result());
  EXPECT_TRUE(contains(events, "BR_MISP_RETIRED"));
  EXPECT_TRUE(contains(events, "BR_INST_RETIRED:COND"));
  EXPECT_TRUE(contains(events, "BR_INST_RETIRED:COND_TAKEN"));
  EXPECT_TRUE(contains(events, "BR_INST_RETIRED:ALL_BRANCHES"));
}

TEST_F(BranchPipeline, ComposableMetricsMatchTableVII) {
  // Unconditional = ALL - COND.
  const auto& uncond = metric(result(), "Unconditional Branches.");
  EXPECT_TRUE(uncond.composable) << uncond.backward_error;
  EXPECT_NEAR(coefficient(uncond, "BR_INST_RETIRED:ALL_BRANCHES"), 1.0, 1e-6);
  EXPECT_NEAR(coefficient(uncond, "BR_INST_RETIRED:COND"), -1.0, 1e-6);
  // Not Taken = COND - COND_TAKEN.
  const auto& ntaken = metric(result(), "Conditional Branches Not Taken.");
  EXPECT_TRUE(ntaken.composable);
  EXPECT_NEAR(coefficient(ntaken, "BR_INST_RETIRED:COND"), 1.0, 1e-6);
  EXPECT_NEAR(coefficient(ntaken, "BR_INST_RETIRED:COND_TAKEN"), -1.0, 1e-6);
  // Correctly Predicted = COND - MISP.
  const auto& correct = metric(result(), "Correctly Predicted Branches.");
  EXPECT_TRUE(correct.composable);
  EXPECT_NEAR(coefficient(correct, "BR_MISP_RETIRED"), -1.0, 1e-6);
  // One-to-one metrics.
  EXPECT_NEAR(coefficient(metric(result(), "Mispredicted Branches."),
                          "BR_MISP_RETIRED"),
              1.0, 1e-6);
  EXPECT_NEAR(coefficient(metric(result(), "Conditional Branches Taken."),
                          "BR_INST_RETIRED:COND_TAKEN"),
              1.0, 1e-6);
}

TEST_F(BranchPipeline, BranchesExecutedIsImpossibleWithErrorOne) {
  const auto& m = metric(result(), "Conditional Branches Executed.");
  EXPECT_FALSE(m.composable);
  EXPECT_NEAR(m.backward_error, 1.0, 1e-6);
  // All coefficients effectively zero (paper: 1e-16-scale garbage).
  for (const auto& t : m.terms) {
    EXPECT_LT(std::fabs(t.coefficient), 1e-8) << t.event_name;
  }
}

// ---------------------------------------------------------------------------
// Data caches (Sections V-D, VI-D; Table VIII)
// ---------------------------------------------------------------------------

class DcachePipeline : public ::testing::Test {
 protected:
  static const PipelineResult& result() {
    static const PipelineResult res = [] {
      const pmu::Machine machine = pmu::saphira_cpu();
      cat::DcacheOptions dopt;
      dopt.threads = 3;
      const cat::Benchmark bench = cat::dcache_benchmark(dopt);
      PipelineOptions opt;
      opt.tau = 1e-1;    // Section IV: lenient threshold for cache noise
      opt.alpha = 5e-2;  // Section V-E: looser rounding tolerance
      opt.projection_max_error = 1e-1;
      opt.fitness_threshold = 5e-2;  // cache coefficients carry %-level noise
      return run_pipeline(machine, bench, dcache_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(DcachePipeline, QrSelectsOneEventPerCacheDimension) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 4u) << format_selected_events(result());
  // One L1-hit-like, one L1-miss-like, one L2-hit-like, one L3-hit-like
  // event; names may be either of the aliased pairs.
  EXPECT_TRUE(contains(events, "MEM_LOAD_RETIRED:L1_HIT"));
  EXPECT_TRUE(contains(events, "MEM_LOAD_RETIRED:L1_MISS"));
  EXPECT_TRUE(contains(events, "MEM_LOAD_RETIRED:L2_HIT") ||
              contains(events, "L2_RQSTS:DEMAND_DATA_RD_HIT"));
  EXPECT_TRUE(contains(events, "MEM_LOAD_RETIRED:L3_HIT"));
}

TEST_F(DcachePipeline, MetricsComposeWithNearIntegerCoefficients) {
  // Table VIII: every data-cache metric composes; raw coefficients are
  // within a few percent of 0 / +-1 and snap exactly under rounding.
  for (const auto& m : result().metrics) {
    EXPECT_TRUE(m.composable) << m.metric_name << " " << m.backward_error;
    const auto rounded = round_coefficients(m.terms, 0.05);
    for (const auto& t : rounded) {
      EXPECT_DOUBLE_EQ(t.coefficient, std::round(t.coefficient))
          << m.metric_name << " / " << t.event_name;
    }
  }
}

TEST_F(DcachePipeline, RoundedCombinationsMatchTableVIII) {
  const auto& l1r = metric(result(), "L1 Reads.");
  const auto rounded = round_coefficients(l1r.terms, 0.05);
  double hit_coeff = 0.0, miss_coeff = 0.0;
  for (const auto& t : rounded) {
    if (t.event_name == "MEM_LOAD_RETIRED:L1_HIT") hit_coeff = t.coefficient;
    if (t.event_name == "MEM_LOAD_RETIRED:L1_MISS") miss_coeff = t.coefficient;
  }
  EXPECT_DOUBLE_EQ(hit_coeff, 1.0);
  EXPECT_DOUBLE_EQ(miss_coeff, 1.0);

  // L2 Misses = L1_MISS - L2 hit event (whichever alias was selected).
  const auto& l2m = metric(result(), "L2 Misses.");
  const auto r2 = round_coefficients(l2m.terms, 0.05);
  double l2hit_coeff = 0.0;
  for (const auto& t : r2) {
    if (t.event_name == "MEM_LOAD_RETIRED:L2_HIT" ||
        t.event_name == "L2_RQSTS:DEMAND_DATA_RD_HIT") {
      l2hit_coeff = t.coefficient;
    }
  }
  EXPECT_DOUBLE_EQ(l2hit_coeff, -1.0);
}

TEST_F(DcachePipeline, CacheEventsAreNoisyButBelowLenientTau) {
  // Fig. 2d: cache events form a variability continuum; the chosen events
  // must be noisy (above the strict 1e-10) yet below 1e-1.
  for (const auto& v : result().noise.variabilities) {
    if (v.event_name == "MEM_LOAD_RETIRED:L1_HIT") {
      EXPECT_GT(v.max_rnmse, 1e-10);
      EXPECT_LE(v.max_rnmse, 1e-1);
    }
  }
}

}  // namespace
}  // namespace catalyst::core
