// Compiled-out contract mode: this translation unit is built with
// CATALYST_CONTRACTS_DISABLED (see tests/CMakeLists.txt), so every contract
// macro must be a true no-op -- no throw, no evaluation of the condition or
// the message expression.  The contract *runtime* (policy, helpers) stays
// available; only the checks vanish.
#include "core/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#ifndef CATALYST_CONTRACTS_DISABLED
#error "this test must be compiled with CATALYST_CONTRACTS_DISABLED"
#endif

namespace catalyst {
namespace {

TEST(ContractsDisabled, FailingChecksDoNotThrow) {
  EXPECT_NO_THROW(CATALYST_REQUIRE(false, "compiled out"));
  EXPECT_NO_THROW(CATALYST_ENSURE(false, "compiled out"));
  EXPECT_NO_THROW(CATALYST_INVARIANT(false, "compiled out"));
  EXPECT_NO_THROW(
      CATALYST_REQUIRE_AS(false, std::invalid_argument, "compiled out"));
  EXPECT_NO_THROW(CATALYST_ASSUME_FINITE(std::nan(""), "compiled out"));
}

TEST(ContractsDisabled, ConditionIsNotEvaluated) {
  int evaluations = 0;
  auto probe = [&evaluations]() {
    ++evaluations;
    return false;
  };
  CATALYST_REQUIRE(probe(), "must not run");
  CATALYST_ENSURE(probe(), "must not run");
  CATALYST_INVARIANT(probe(), "must not run");
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsDisabled, MessageIsNotEvaluated) {
  int evaluations = 0;
  auto message = [&evaluations]() {
    ++evaluations;
    return std::string("expensive");
  };
  CATALYST_REQUIRE(false, message());
  EXPECT_EQ(evaluations, 0);
}

TEST(ContractsDisabled, HelpersStillWork) {
  // all_finite and singular_tolerance are plain functions, not macros; the
  // compiled-out mode must not take them away (audits and callers use them
  // directly).
  EXPECT_TRUE(contract::all_finite(1.0));
  EXPECT_FALSE(contract::all_finite(std::nan("")));
  EXPECT_GT(contract::singular_tolerance(3, 1.0), 0.0);
  const std::vector<double> v{1.0, 2.0};
  EXPECT_TRUE(contract::all_finite(v));
}

}  // namespace
}  // namespace catalyst
