// The `fault_pipeline` CI job (scripts/check.sh fault_pipeline): the FULL
// paper pipeline for Tables V-VIII, run under the canonical mid-rate fault
// plan, must reproduce the clean goldens EXACTLY -- same kept events, same
// selected events, same rounded coefficients.  This is the end-to-end form
// of the robustness claim: realistic fault rates cost retries, never
// results.
#include <gtest/gtest.h>

#include <string>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

struct TableCase {
  const char* name;        // which paper table this covers
  const char* category;
};

class FaultPipeline : public ::testing::TestWithParam<TableCase> {
 protected:
  static pmu::Machine machine_for(const std::string& category) {
    return category == "gpu_flops" ? pmu::tempest_gpu() : pmu::saphira_cpu();
  }
  static cat::Benchmark benchmark_for(const std::string& category) {
    if (category == "cpu_flops") return cat::cpu_flops_benchmark();
    if (category == "gpu_flops") return cat::gpu_flops_benchmark();
    if (category == "branch") return cat::branch_benchmark();
    cat::DcacheOptions chase;
    chase.threads = 3;
    return cat::dcache_benchmark(chase);
  }
  static std::vector<MetricSignature> signatures_for(
      const std::string& category) {
    if (category == "cpu_flops") return cpu_flops_signatures();
    if (category == "gpu_flops") return gpu_flops_signatures();
    if (category == "branch") return branch_signatures();
    return dcache_signatures();
  }
  static PipelineOptions options_for(const std::string& category) {
    PipelineOptions options;
    if (category == "dcache") {
      // Section IV / V-E: the cache runs use relaxed thresholds.
      options.tau = 1e-1;
      options.alpha = 5e-2;
      options.projection_max_error = 1e-1;
      options.fitness_threshold = 5e-2;
    }
    return options;
  }
};

TEST_P(FaultPipeline, MidRateFaultsReproduceTheTableExactly) {
  const std::string category = GetParam().category;
  const pmu::Machine machine = machine_for(category);
  const cat::Benchmark bench = benchmark_for(category);
  const auto signatures = signatures_for(category);
  const auto options = options_for(category);

  const auto clean = run_pipeline(machine, bench, signatures, options);
  const auto plan = faults::FaultPlan::mid_rate();
  const auto faulty = run_pipeline_resilient(machine, bench, signatures,
                                             options, &plan);

  // Mid-rate faults must never exhaust the retry budget.
  EXPECT_TRUE(faulty.quarantined_events.empty());
  ASSERT_TRUE(faulty.collection.has_value());
  EXPECT_GT(faulty.collection->total_retries, 0u)
      << "the plan injected nothing -- the test is vacuous";

  // Kept events after the noise filter, selected events, and measurements
  // are all bit-identical to the clean run.
  EXPECT_EQ(clean.all_event_names, faulty.all_event_names);
  EXPECT_EQ(clean.measurements, faulty.measurements);
  EXPECT_EQ(clean.noise.kept, faulty.noise.kept);
  ASSERT_EQ(clean.xhat_events, faulty.xhat_events);

  // The published table content: rounded coefficients, exactly.
  ASSERT_EQ(clean.metrics.size(), faulty.metrics.size());
  for (std::size_t i = 0; i < clean.metrics.size(); ++i) {
    EXPECT_EQ(clean.metrics[i].metric_name, faulty.metrics[i].metric_name);
    const auto a = round_coefficients(clean.metrics[i].terms);
    const auto b = round_coefficients(faulty.metrics[i].terms);
    ASSERT_EQ(a.size(), b.size()) << clean.metrics[i].metric_name;
    for (std::size_t t = 0; t < a.size(); ++t) {
      EXPECT_EQ(a[t].event_name, b[t].event_name);
      EXPECT_EQ(a[t].coefficient, b[t].coefficient)
          << clean.metrics[i].metric_name << " / " << a[t].event_name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TablesVToVIII, FaultPipeline,
    ::testing::Values(TableCase{"TableV", "cpu_flops"},
                      TableCase{"TableVI", "gpu_flops"},
                      TableCase{"TableVII", "branch"},
                      TableCase{"TableVIII", "dcache"}),
    [](const ::testing::TestParamInfo<TableCase>& info) {
      return std::string(info.param.name);
    });

}  // namespace
}  // namespace catalyst::core
