// Checkpoint/resume campaigns: bit-identity of resumed vs uninterrupted
// runs, tolerance of corrupt/mismatched checkpoints, and graceful
// degradation when events are quarantined.
#include "core/campaign.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

namespace fs = std::filesystem;

struct Rig {
  pmu::Machine machine = pmu::saphira_cpu();
  cat::Benchmark bench = cat::branch_benchmark();
  std::vector<MetricSignature> signatures = branch_signatures();
};

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  return dir.string();
}

void truncate_file(const std::string& path) {
  const std::string text = read_text_file(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text.substr(0, text.size() / 2);
}

TEST(ResilientPipeline, CleanRunMatchesRunPipeline) {
  const Rig s;
  const auto plain = run_pipeline(s.machine, s.bench, s.signatures);
  const auto resilient =
      run_pipeline_resilient(s.machine, s.bench, s.signatures);
  EXPECT_EQ(plain.all_event_names, resilient.all_event_names);
  EXPECT_EQ(plain.measurements, resilient.measurements);
  EXPECT_EQ(plain.xhat_events, resilient.xhat_events);
  EXPECT_TRUE(resilient.quarantined_events.empty());
}

TEST(ResilientPipeline, MidRateFaultsReproduceTheCleanPipeline) {
  const Rig s;
  const auto plan = faults::FaultPlan::mid_rate();
  const auto plain = run_pipeline(s.machine, s.bench, s.signatures);
  const auto resilient =
      run_pipeline_resilient(s.machine, s.bench, s.signatures, {}, &plan);
  ASSERT_TRUE(resilient.quarantined_events.empty());
  EXPECT_EQ(plain.measurements, resilient.measurements);
  EXPECT_EQ(plain.xhat_events, resilient.xhat_events);
  ASSERT_TRUE(resilient.collection.has_value());
  EXPECT_GT(resilient.collection->total_retries, 0u);
}

TEST(Campaign, CheckpointDirLeaseExcludesConcurrentUse) {
  const std::string dir = fresh_dir("lease_dir");
  {
    const CheckpointDirLease lease(dir);
    EXPECT_EQ(lease.directory(), dir);
    // A second campaign in the same process must be refused: interleaved
    // batch-NNN.json writers would corrupt each other's checkpoints.
    EXPECT_THROW(CheckpointDirLease{dir}, std::runtime_error);
    // Distinct directories do not contend.
    const CheckpointDirLease other(fresh_dir("lease_dir_other"));
  }
  // The destructor released the lease: the directory is usable again.
  const CheckpointDirLease reacquired(dir);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(Campaign, CheckpointDirLeaseExcludesOtherProcesses) {
  const std::string dir = fresh_dir("lease_dir_xproc");
  const CheckpointDirLease lease(dir);
  // The probe opens a FRESH file description, so it observes the flock
  // rather than the in-process registry.
  EXPECT_TRUE(checkpoint_dir_locked(dir));
  // EXPECT_EXIT forks: the probe below runs in a genuinely different
  // process.  (A forked child inherits the in-process registry by memory
  // copy, so constructing a lease there would test the wrong layer; the
  // flock probe is the honest cross-process question.)
  EXPECT_EXIT(std::_Exit(checkpoint_dir_locked(dir) ? 42 : 1),
              ::testing::ExitedWithCode(42), "");
}

TEST(Campaign, CheckpointDirLockProbeSeesRelease) {
  const std::string dir = fresh_dir("lease_dir_probe");
  {
    const CheckpointDirLease lease(dir);
    EXPECT_TRUE(checkpoint_dir_locked(dir));
  }
  // Destroying the lease closed the lock fd, dropping the OS-level lock.
  EXPECT_FALSE(checkpoint_dir_locked(dir));
}
#endif

TEST(Campaign, ResumeReusesEveryBatchAndYieldsIdenticalArchive) {
  const Rig s;
  const auto plan = faults::FaultPlan::mid_rate();
  CampaignOptions options;
  options.fault_plan = &plan;
  options.checkpoint.directory = fresh_dir("campaign_full");

  const auto first = run_campaign(s.machine, s.bench, s.signatures, options);
  EXPECT_EQ(first.batches_resumed, 0u);
  EXPECT_EQ(first.batches_total, options.pipeline.repetitions);
  for (std::size_t r = 0; r < first.batches_total; ++r) {
    EXPECT_TRUE(fs::exists(fs::path(options.checkpoint.directory) /
                           ("batch-" + std::to_string(r) + ".json")));
  }

  options.checkpoint.resume = true;
  const auto second = run_campaign(s.machine, s.bench, s.signatures, options);
  EXPECT_EQ(second.batches_resumed, second.batches_total);
  EXPECT_EQ(save_archive(first.archive), save_archive(second.archive));
  EXPECT_EQ(first.result.xhat_events, second.result.xhat_events);
}

TEST(Campaign, InterruptedCampaignResumesWithoutReexecutingDoneBatches) {
  const Rig s;
  const auto plan = faults::FaultPlan::mid_rate();
  CampaignOptions options;
  options.fault_plan = &plan;
  options.checkpoint.directory = fresh_dir("campaign_interrupted");

  // The "uninterrupted" reference run, which also populates checkpoints.
  const auto reference =
      run_campaign(s.machine, s.bench, s.signatures, options);

  // Simulate a kill after batch 1: the last batch's checkpoint never
  // happened.
  const std::size_t last = options.pipeline.repetitions - 1;
  fs::remove(fs::path(options.checkpoint.directory) /
             ("batch-" + std::to_string(last) + ".json"));

  options.checkpoint.resume = true;
  const auto resumed = run_campaign(s.machine, s.bench, s.signatures, options);
  EXPECT_EQ(resumed.batches_resumed, resumed.batches_total - 1);
  EXPECT_EQ(save_archive(reference.archive), save_archive(resumed.archive));
}

TEST(Campaign, CorruptCheckpointIsTreatedAsNotDone) {
  const Rig s;
  const auto plan = faults::FaultPlan::mid_rate();
  CampaignOptions options;
  options.fault_plan = &plan;
  options.checkpoint.directory = fresh_dir("campaign_corrupt");

  const auto reference =
      run_campaign(s.machine, s.bench, s.signatures, options);
  truncate_file((fs::path(options.checkpoint.directory) / "batch-0.json")
                    .string());

  options.checkpoint.resume = true;
  const auto resumed = run_campaign(s.machine, s.bench, s.signatures, options);
  EXPECT_EQ(resumed.batches_resumed, resumed.batches_total - 1);
  EXPECT_EQ(save_archive(reference.archive), save_archive(resumed.archive));
}

TEST(Campaign, ConfigMismatchInvalidatesCheckpoints) {
  const Rig s;
  CampaignOptions clean;
  clean.checkpoint.directory = fresh_dir("campaign_mismatch");
  run_campaign(s.machine, s.bench, s.signatures, clean);

  // Same directory, different fault plan: the stored batches describe a
  // DIFFERENT campaign and must not be reused.
  const auto plan = faults::FaultPlan::mid_rate();
  CampaignOptions faulty = clean;
  faulty.fault_plan = &plan;
  faulty.checkpoint.resume = true;
  const auto result = run_campaign(s.machine, s.bench, s.signatures, faulty);
  EXPECT_EQ(result.batches_resumed, 0u);
}

TEST(Campaign, ArchiveCarriesTheRobustnessPayload) {
  const Rig s;
  const auto plan = faults::FaultPlan::mid_rate();
  CampaignOptions options;
  options.fault_plan = &plan;
  const auto out = run_campaign(s.machine, s.bench, s.signatures, options);
  ASSERT_TRUE(out.archive.collection_report.has_value());
  // Round trip: save -> load preserves the v2 payload.
  const auto loaded = load_archive(save_archive(out.archive));
  EXPECT_EQ(loaded.format_version, "catalyst-measurements-v2");
  ASSERT_TRUE(loaded.collection_report.has_value());
  EXPECT_EQ(loaded.collection_report->total_retries,
            out.archive.collection_report->total_retries);
  EXPECT_EQ(loaded.quarantined, out.archive.quarantined);
}

TEST(SampledCampaign, CountingModeIsBitIdenticalToPlainCampaign) {
  // run_pipeline_sampled with mode=counting must degenerate to the plain
  // campaign exactly -- same measurements, same archive bytes, no trace.
  const Rig s;
  const auto plain = run_campaign(s.machine, s.bench, s.signatures);
  const auto sampled = run_pipeline_sampled(s.machine, s.bench, s.signatures,
                                            {}, vpapi::CollectionMode::counting);
  EXPECT_EQ(sampled.result.measurements, plain.result.measurements);
  EXPECT_EQ(sampled.result.xhat_events, plain.result.xhat_events);
  EXPECT_EQ(sampled.archive.collection_mode, vpapi::CollectionMode::counting);
  EXPECT_FALSE(sampled.archive.sample_trace.has_value());
  EXPECT_EQ(save_archive(sampled.archive), save_archive(plain.archive));
}

TEST(SampledCampaign, ArchiveCarriesTheTraceAndRoundTripsByteStably) {
  const Rig s;
  const auto out = run_pipeline_sampled(s.machine, s.bench, s.signatures, {},
                                        vpapi::CollectionMode::strobed);
  EXPECT_EQ(out.archive.collection_mode, vpapi::CollectionMode::strobed);
  ASSERT_TRUE(out.archive.sample_trace.has_value());
  EXPECT_EQ(out.archive.sample_trace->mode, vpapi::CollectionMode::strobed);
  EXPECT_FALSE(out.archive.sample_trace->runs.empty());
  EXPECT_EQ(out.archive.sample_trace->kernels,
            s.bench.slots.size());
  const auto text = save_archive(out.archive);
  EXPECT_NE(text.find("catalyst-measurements-v2"), std::string::npos);
  const auto loaded = load_archive(text);
  EXPECT_EQ(loaded.collection_mode, vpapi::CollectionMode::strobed);
  ASSERT_TRUE(loaded.sample_trace.has_value());
  EXPECT_EQ(loaded.sample_trace->runs.size(),
            out.archive.sample_trace->runs.size());
  EXPECT_EQ(save_archive(loaded), text);
}

TEST(SampledCampaign, RefusesCountingOnlyFeatures) {
  const Rig s;
  CampaignOptions options;
  options.collection_mode = vpapi::CollectionMode::sampling;
  options.checkpoint.directory = fresh_dir("sampled_ckpt");
  EXPECT_THROW(run_campaign(s.machine, s.bench, s.signatures, options),
               std::invalid_argument);
  options.checkpoint.directory.clear();
  const auto plan = faults::FaultPlan::mid_rate();
  options.fault_plan = &plan;
  EXPECT_THROW(run_campaign(s.machine, s.bench, s.signatures, options),
               std::invalid_argument);
  // A present-but-disabled plan is fine: nothing to inject.
  const faults::FaultPlan idle;
  options.fault_plan = &idle;
  EXPECT_NO_THROW(run_campaign(s.machine, s.bench, s.signatures, options));
  // An invalid schedule is refused up front, not deep in a worker.
  options.fault_plan = nullptr;
  options.sample_schedule.period_ns = 0;
  EXPECT_THROW(run_campaign(s.machine, s.bench, s.signatures, options),
               std::invalid_argument);
}

TEST(SampledCampaign, ConfigKeyGrowsModeKnobsOnlyWhenSampled) {
  // Counting campaigns must keep their pre-sampling config keys (resume
  // compatibility with existing checkpoint directories); sampled campaigns
  // must be distinguishable per mode and schedule.
  const Rig s;
  CampaignOptions counting;
  const auto counting_key =
      campaign_config_key(s.machine, s.bench, counting);
  EXPECT_EQ(counting_key.find("mode="), std::string::npos);

  CampaignOptions sampled;
  sampled.collection_mode = vpapi::CollectionMode::sampling;
  const auto sampled_key = campaign_config_key(s.machine, s.bench, sampled);
  EXPECT_NE(sampled_key.find("mode=sampling"), std::string::npos);
  EXPECT_NE(sampled_key, counting_key);

  CampaignOptions strobed = sampled;
  strobed.collection_mode = vpapi::CollectionMode::strobed;
  EXPECT_NE(campaign_config_key(s.machine, s.bench, strobed), sampled_key);
  CampaignOptions other_period = sampled;
  other_period.sample_schedule.period_ns *= 2;
  EXPECT_NE(campaign_config_key(s.machine, s.bench, other_period),
            sampled_key);
}

TEST(ResilientPipeline, QuarantinedBasisEventDegradesGracefully) {
  // Make one of the events Table VII actually selects unrecoverable: the
  // pipeline must complete on the remaining events, not abort.
  const Rig s;
  const auto clean = run_pipeline(s.machine, s.bench, s.signatures);
  ASSERT_FALSE(clean.xhat_events.empty());
  const std::string victim = clean.xhat_events.front();

  faults::FaultPlan plan;
  plan.seed = 11;
  faults::FaultRates cursed;
  cursed.dropped_reading = 1.0;
  plan.per_event[victim] = cursed;

  vpapi::ResilienceOptions resilience;
  resilience.max_retries = 2;
  const auto degraded = run_pipeline_resilient(s.machine, s.bench,
                                               s.signatures, {}, &plan,
                                               resilience);
  ASSERT_EQ(degraded.quarantined_events,
            std::vector<std::string>({victim}));
  for (const auto& name : degraded.all_event_names) {
    EXPECT_NE(name, victim);
  }
  for (const auto& name : degraded.xhat_events) {
    EXPECT_NE(name, victim);
  }
  EXPECT_FALSE(degraded.xhat_events.empty());
}

TEST(ResilientPipeline, AllEventsQuarantinedAbortsWithTypedError) {
  const Rig s;
  faults::FaultPlan plan;
  plan.seed = 13;
  plan.rates.dropped_reading = 1.0;  // nothing is ever readable
  vpapi::ResilienceOptions resilience;
  resilience.max_retries = 0;
  EXPECT_THROW(run_pipeline_resilient(s.machine, s.bench, s.signatures, {},
                                      &plan, resilience),
               std::runtime_error);
}

}  // namespace
}  // namespace catalyst::core
