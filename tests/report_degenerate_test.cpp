// Degenerate-path coverage for core::report, driven by modelgen edge
// specs: the renderers must produce stable, non-empty, machine-diffable
// text when the pipeline ends with nothing selected (every countable event
// drowned in noise), with a minimal one-dimension model, and when every
// event was quarantined before analysis.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/core.hpp"
#include "modelgen/modelgen.hpp"
#include "seed_util.hpp"

namespace catalyst::modelgen {
namespace {

using core::PipelineResult;

/// edge_all_noise with the (noise-free) huge-norm trap disabled: the RNMSE
/// filter then rejects EVERY countable event and the run ends with an empty
/// kept set -- the fully degenerate report path.
GeneratorSpec empty_run_spec(std::uint64_t seed) {
  GeneratorSpec spec = GeneratorSpec::edge_all_noise(seed);
  spec.huge_norm_decoy = false;
  return spec;
}

PipelineResult run(const GeneratedModel& model) {
  return core::run_pipeline(model.machine(), model.benchmark,
                            model.signatures, model.options);
}

TEST(ReportDegenerate, AllNoiseRunRendersPlaceholderRowsNotEmptyTables) {
  for (const std::uint64_t seed : catalyst::testing::sweep_seeds(1, 5)) {
    const GeneratedModel model = generate(empty_run_spec(seed));
    const PipelineResult result = run(model);
    ASSERT_TRUE(result.noise.kept.empty())
        << catalyst::testing::seed_banner(seed)
        << "expected the noise filter to reject every event";
    ASSERT_TRUE(result.xhat_events.empty())
        << catalyst::testing::seed_banner(seed);

    const std::string md =
        core::format_markdown_report("degenerate run", result);
    // Both the selected-events and the metrics tables keep a placeholder
    // row instead of an empty body.
    EXPECT_NE(md.find("| - | (no events survived) | - |\n"),
              std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;
    EXPECT_NE(md.find("| - | (no events survived) | - | - |\n"),
              std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;
    EXPECT_NE(md.find("| after noise filter | 0 |"), std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;

    EXPECT_NE(core::format_selected_events(result).find("selected 0 events"),
              std::string::npos)
        << catalyst::testing::seed_banner(seed);

    // No metric rows were solved: the table is just its heading.
    EXPECT_EQ(core::format_metric_table("empty", result.metrics, true),
              "=== empty ===\n")
        << catalyst::testing::seed_banner(seed);

    // Every shown variability line must say the event was rejected.
    const std::string series =
        core::format_variability_series(result.noise, model.options.tau);
    EXPECT_EQ(series.find(" yes "), std::string::npos)
        << catalyst::testing::seed_banner(seed) << series;

    // The oracle agrees: detectable degradation on every planted metric,
    // never a silent lie.
    const RecoveryOutcome outcome = verify_recovery(model, result);
    EXPECT_FALSE(outcome.any_wrong()) << outcome.describe();
    for (const MetricVerdict& v : outcome.metrics) {
      EXPECT_EQ(v.verdict, Verdict::degraded)
          << catalyst::testing::seed_banner(seed) << outcome.describe();
    }
  }
}

TEST(ReportDegenerate, SingleDimensionModelRendersMinimalTables) {
  for (const std::uint64_t seed : catalyst::testing::sweep_seeds(1, 5)) {
    const GeneratedModel model =
        generate(GeneratorSpec::edge_single_dim(seed));
    const PipelineResult result = run(model);
    ASSERT_EQ(result.xhat_events.size(), 1u)
        << catalyst::testing::seed_banner(seed);

    const std::string md =
        core::format_markdown_report("single dimension", result);
    EXPECT_NE(md.find("| selected by specialized QRCP | 1 |"),
              std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;
    EXPECT_NE(md.find("`" + result.xhat_events[0] + "`"), std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;
    EXPECT_EQ(md.find("(no events survived)"), std::string::npos)
        << catalyst::testing::seed_banner(seed) << md;

    const std::string table =
        core::format_metric_table("single", result.metrics, true);
    EXPECT_NE(table.find(result.xhat_events[0]), std::string::npos)
        << catalyst::testing::seed_banner(seed) << table;
    EXPECT_NE(table.find("[composable]"), std::string::npos)
        << catalyst::testing::seed_banner(seed) << table;

    const RecoveryOutcome outcome = verify_recovery(model, result);
    EXPECT_TRUE(outcome.all_exact())
        << catalyst::testing::seed_banner(seed) << outcome.describe();
  }
}

TEST(ReportDegenerate, FullyQuarantinedRunRendersRobustnessSection) {
  // Resilient collection can quarantine events before the analysis ever
  // sees them (analyze_measurements itself REQUIRES a non-empty event set,
  // by contract).  A degenerate result carrying a quarantine list must
  // render the robustness section naming every excluded event alongside
  // the placeholder rows.
  const GeneratedModel model = generate(empty_run_spec(7));
  PipelineResult result = run(model);
  ASSERT_TRUE(result.xhat_events.empty());
  for (const pmu::EventDefinition& event : model.machine_spec.events) {
    result.quarantined_events.push_back(event.name);
  }

  const std::string md =
      core::format_markdown_report("all quarantined", result);
  EXPECT_NE(md.find("## Collection robustness"), std::string::npos) << md;
  EXPECT_NE(md.find("Quarantined events (excluded from the analysis):"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("- `" + result.quarantined_events.front() + "`"),
            std::string::npos)
      << md;
  EXPECT_NE(md.find("| after noise filter | 0 |"), std::string::npos) << md;
  EXPECT_NE(md.find("| - | (no events survived) | - |\n"), std::string::npos)
      << md;
  EXPECT_NE(md.find("| - | (no events survived) | - | - |\n"),
            std::string::npos)
      << md;
}

TEST(ReportDegenerate, AllZeroCombinationSaysNone) {
  const std::vector<core::MetricTerm> zeros = {{"SYN_D0_UNIT0", 0.0},
                                               {"SYN_D1_UNIT0", 0.0}};
  EXPECT_EQ(core::format_combination(zeros), "(none)");
  EXPECT_EQ(core::format_combination({}), "(none)");
}

}  // namespace
}  // namespace catalyst::modelgen
