// Unit tests for catalyst::linalg BLAS-style kernels.
#include "linalg/blas.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

TEST(Blas1, Dot) {
  Vector x{1, 2, 3};
  Vector y{4, 5, 6};
  EXPECT_DOUBLE_EQ(dot(x, y), 32.0);
  Vector z{1};
  EXPECT_THROW(dot(x, z), DimensionError);
}

TEST(Blas1, Axpy) {
  Vector x{1, 2};
  Vector y{10, 20};
  axpy(2.0, x, y);
  EXPECT_EQ(y, (Vector{12, 24}));
}

TEST(Blas1, Scal) {
  Vector x{1, -2, 3};
  scal(-2.0, x);
  EXPECT_EQ(x, (Vector{-2, 4, -6}));
}

TEST(Blas1, Nrm2Basic) {
  Vector x{3, 4};
  EXPECT_DOUBLE_EQ(nrm2(x), 5.0);
  EXPECT_DOUBLE_EQ(nrm2(Vector{}), 0.0);
  EXPECT_DOUBLE_EQ(nrm2(Vector{0, 0, 0}), 0.0);
}

TEST(Blas1, Nrm2AvoidsOverflow) {
  const double big = 1e200;
  Vector x{big, big};
  EXPECT_DOUBLE_EQ(nrm2(x), big * std::sqrt(2.0));
  EXPECT_TRUE(std::isfinite(nrm2(x)));
}

TEST(Blas1, Nrm2AvoidsUnderflow) {
  const double tiny = 1e-200;
  Vector x{tiny, tiny};
  EXPECT_NEAR(nrm2(x) / (tiny * std::sqrt(2.0)), 1.0, 1e-14);
}

TEST(Blas1, AsumAndIamax) {
  Vector x{1, -5, 3};
  EXPECT_DOUBLE_EQ(asum(x), 9.0);
  EXPECT_EQ(iamax(x), 1);
  EXPECT_EQ(iamax(Vector{}), -1);
}

TEST(Blas2, Gemv) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{1, 1};
  Vector y{100, 100};
  gemv(1.0, a, x, 0.0, y);
  EXPECT_EQ(y, (Vector{3, 7}));
  gemv(2.0, a, x, 1.0, y);  // y = 2*A*x + y
  EXPECT_EQ(y, (Vector{9, 21}));
  Vector bad{1};
  EXPECT_THROW(gemv(1.0, a, bad, 0.0, y), DimensionError);
}

TEST(Blas2, GemvT) {
  Matrix a{{1, 2}, {3, 4}};
  Vector x{1, 1};
  Vector y(2, 0.0);
  gemv_t(1.0, a, x, 0.0, y);
  EXPECT_EQ(y, (Vector{4, 6}));
}

TEST(Blas2, MatvecAgainstTransposedMatvecT) {
  Matrix a = random_gaussian(7, 5, 42);
  Vector x{1, -1, 2, 0.5, 3};
  Vector y1 = matvec(a, x);
  Vector y2_full = matvec_t(a.transposed(), x);
  ASSERT_EQ(y1.size(), y2_full.size());
  for (std::size_t i = 0; i < y1.size(); ++i) {
    EXPECT_NEAR(y1[i], y2_full[i], 1e-12);
  }
}

TEST(Blas2, Ger) {
  Matrix a(2, 2, 0.0);
  Vector x{1, 2};
  Vector y{3, 4};
  ger(1.0, x, y, a);
  EXPECT_EQ(a, (Matrix{{3, 4}, {6, 8}}));
}

TEST(Blas3, GemmSquare) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  EXPECT_EQ(matmul(a, b), (Matrix{{19, 22}, {43, 50}}));
}

TEST(Blas3, GemmTransposeFlags) {
  Matrix a = random_gaussian(4, 3, 1);
  Matrix b = random_gaussian(4, 5, 2);
  // C = A^T * B via flag must match explicit transpose.
  Matrix c1(3, 5);
  gemm(1.0, a, true, b, false, 0.0, c1);
  Matrix c2 = matmul(a.transposed(), b);
  EXPECT_LT(Matrix::max_abs_diff(c1, c2), 1e-12);

  // C = A * B^T.
  Matrix d = random_gaussian(5, 3, 3);
  Matrix c3(4, 5);
  gemm(1.0, a, false, d, true, 0.0, c3);
  Matrix c4 = matmul(a, d.transposed());
  EXPECT_LT(Matrix::max_abs_diff(c3, c4), 1e-12);
}

TEST(Blas3, GemmAlphaBeta) {
  Matrix a{{1, 0}, {0, 1}};
  Matrix b{{1, 2}, {3, 4}};
  Matrix c{{10, 10}, {10, 10}};
  gemm(2.0, a, false, b, false, 0.5, c);
  EXPECT_EQ(c, (Matrix{{7, 9}, {11, 13}}));
}

TEST(Blas3, GemmShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 2);  // inner dim mismatch
  Matrix c(2, 2);
  EXPECT_THROW(gemm(1.0, a, false, b, false, 0.0, c), DimensionError);
}

TEST(Blas3, GemmThreadedMatchesSerial) {
  Matrix a = random_gaussian(40, 30, 7);
  Matrix b = random_gaussian(30, 50, 8);
  Matrix c1(40, 50);
  Matrix c2(40, 50);
  gemm(1.0, a, false, b, false, 0.0, c1, 1);
  gemm(1.0, a, false, b, false, 0.0, c2, 4);
  EXPECT_LT(Matrix::max_abs_diff(c1, c2), 1e-13);
}

TEST(Trsv, UpperSolve) {
  Matrix r{{2, 1}, {0, 4}};
  Vector b{4, 8};
  trsv_upper(r, b);
  // x1 = 2, x0 = (4 - 1*2)/2 = 1.
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(Trsv, LowerSolve) {
  Matrix l{{2, 0}, {1, 4}};
  Vector b{4, 9};
  trsv_lower(l, b);
  EXPECT_DOUBLE_EQ(b[0], 2.0);
  EXPECT_DOUBLE_EQ(b[1], 1.75);
}

TEST(Trsv, UpperTransposeSolveMatchesExplicit) {
  Matrix r{{3, 2, 1}, {0, 5, 4}, {0, 0, 7}};
  Vector b{1, 2, 3};
  Vector bt = b;
  trsv_upper_t(r, bt);
  Vector check = matvec(r.transposed(), bt);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(check[i], b[i], 1e-13);
}

TEST(Trsv, SingularThrows) {
  Matrix r{{0, 1}, {0, 1}};
  Vector b{1, 1};
  EXPECT_THROW(trsv_upper(r, b), SingularError);
}

TEST(Trsv, NearSingularDiagonalAtNoiseScaleThrows) {
  // A diagonal entry at rounding-noise scale relative to the largest one
  // must be treated as singular: dividing by it would amplify factorization
  // debris into the solution.  The old exact `d == 0.0` test accepted this.
  const double eps = std::numeric_limits<double>::epsilon();
  Matrix r{{1.0, 1.0}, {0.0, 0.5 * eps}};
  Vector b{1, 1};
  EXPECT_THROW(trsv_upper(r, b), SingularError);
  Vector bl{1, 1};
  Matrix l{{0.5 * eps, 0.0}, {1.0, 1.0}};
  EXPECT_THROW(trsv_lower(l, bl), SingularError);
  Vector bt{1, 1};
  EXPECT_THROW(trsv_upper_t(r, bt), SingularError);
}

TEST(Trsv, DiagonalAboveNoiseScaleStillSolves) {
  // Small-but-honest diagonals (well above n * eps * max|diag|) must keep
  // working; the tolerance is scaled, not absolute.
  Matrix r{{1.0, 0.0}, {0.0, 1e-8}};
  Vector b{3.0, 2e-8};
  EXPECT_NO_THROW(trsv_upper(r, b));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], 2.0);
}

TEST(Norms, FrobeniusOneInf) {
  Matrix a{{1, -2}, {-3, 4}};
  EXPECT_DOUBLE_EQ(norm_frobenius(a), std::sqrt(30.0));
  EXPECT_DOUBLE_EQ(norm_one(a), 6.0);  // max column abs sum = |−2|+|4| = 6
  EXPECT_DOUBLE_EQ(norm_inf(a), 7.0);  // max row abs sum = 3+4
}

TEST(Norms, TwoNormEstimateOnDiagonal) {
  Matrix a{{3, 0}, {0, 1}};
  EXPECT_NEAR(norm_two_estimate(a, 60), 3.0, 1e-6);
}

TEST(Norms, TwoNormEstimateBracketedByClassicBounds) {
  Matrix a = random_gaussian(20, 15, 99);
  const double est = norm_two_estimate(a, 100);
  const double fro = norm_frobenius(a);
  // ||A||_2 <= ||A||_F and ||A||_F <= sqrt(rank) * ||A||_2.
  EXPECT_LE(est, fro * (1 + 1e-10));
  EXPECT_GE(est * std::sqrt(15.0), fro * (1 - 1e-10));
}

TEST(Norms, TwoNormOfEmptyIsZero) {
  Matrix a;
  EXPECT_DOUBLE_EQ(norm_two_estimate(a), 0.0);
}

}  // namespace
}  // namespace catalyst::linalg
