// Unit + property tests for least squares and the Eq. 5 backward error.
#include "linalg/lstsq.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

TEST(Lstsq, ConsistentSquareSystem) {
  Matrix a{{2, 0}, {0, 3}};
  Vector b{4, 9};
  auto res = lstsq(a, b);
  EXPECT_NEAR(res.x[0], 2.0, 1e-13);
  EXPECT_NEAR(res.x[1], 3.0, 1e-13);
  EXPECT_NEAR(res.residual_norm, 0.0, 1e-12);
  EXPECT_LT(res.backward_error, 1e-14);
  EXPECT_FALSE(res.rank_deficient);
}

TEST(Lstsq, ClassicRegressionExample) {
  // Fit y = c0 + c1 * t to points (0,1), (1,2), (2,4): the normal-equations
  // solution is c = (5/6, 3/2).
  Matrix a{{1, 0}, {1, 1}, {1, 2}};
  Vector b{1, 2, 4};
  auto res = lstsq(a, b);
  EXPECT_NEAR(res.x[0], 5.0 / 6.0, 1e-12);
  EXPECT_NEAR(res.x[1], 1.5, 1e-12);
}

TEST(Lstsq, ResidualIsOrthogonalToColumnSpace) {
  Matrix a = random_gaussian(20, 6, 5);
  Vector b(20);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = std::cos(double(i));
  auto res = lstsq(a, b);
  Vector r(b);
  gemv(-1.0, a, res.x, 1.0, r);
  Vector atr = matvec_t(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Lstsq, RecoversPlantedSolution) {
  Matrix a = random_gaussian(50, 10, 9);
  Vector xtrue(10);
  for (std::size_t i = 0; i < 10; ++i) xtrue[i] = double(i) - 4.5;
  Vector b = matvec(a, xtrue);
  auto res = lstsq(a, b);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(res.x[i], xtrue[i], 1e-10);
  EXPECT_LT(res.backward_error, 1e-13);
}

TEST(Lstsq, RankDeficientZeroesComponents) {
  // Column 1 is a copy of column 0: the basic solution must put all weight
  // on one of them and flag deficiency.
  Matrix a = Matrix::from_columns({{1, 1, 1}, {1, 1, 1}, {0, 1, 2}});
  Vector b{1, 2, 3};
  auto res = lstsq(a, b);
  EXPECT_TRUE(res.rank_deficient);
  // Fit must still be as good as the rank-2 subspace allows (exact here:
  // b = 1*c0 + 1*c2 works).
  EXPECT_NEAR(res.residual_norm, 0.0, 1e-10);
}

TEST(Lstsq, UnderdeterminedDispatchThrows) {
  Matrix a(2, 5);
  Vector b{1, 2};
  EXPECT_THROW(lstsq(a, b), DimensionError);
}

TEST(Lstsq, RhsLengthMismatchThrows) {
  Matrix a(4, 2);
  Vector b{1, 2};
  EXPECT_THROW(lstsq(a, b), DimensionError);
}

TEST(LstsqMinNorm, SolvesUnderdeterminedExactly) {
  Matrix a{{1, 0, 1}, {0, 1, 1}};  // 2x3
  Vector b{2, 3};
  auto res = lstsq_min_norm(a, b);
  Vector check = matvec(a, res.x);
  EXPECT_NEAR(check[0], 2.0, 1e-12);
  EXPECT_NEAR(check[1], 3.0, 1e-12);
}

TEST(LstsqMinNorm, IsMinimumNormAmongSolutions) {
  Matrix a{{1, 0, 1}, {0, 1, 1}};
  Vector b{2, 3};
  auto res = lstsq_min_norm(a, b);
  // Any other solution x' = x + n with A n = 0 must be longer.  The null
  // space here is spanned by (1, 1, -1).
  Vector null{1, 1, -1};
  EXPECT_NEAR(dot(res.x, null), 0.0, 1e-11);
}

TEST(LstsqMinNorm, FallsBackToLstsqForTall) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}};
  Vector b{1, 1, 2};
  auto res = lstsq_min_norm(a, b);
  EXPECT_NEAR(res.x[0], 1.0, 1e-12);
  EXPECT_NEAR(res.x[1], 1.0, 1e-12);
}

TEST(BackwardError, ZeroForExactSolve) {
  Matrix a{{1, 2}, {3, 4}};
  Vector y{1, 1};
  Vector s = matvec(a, y);
  EXPECT_LT(backward_error(a, y, s), 1e-15);
}

TEST(BackwardError, SaturatesNearOneForOrthogonalTarget) {
  // The signature is orthogonal to the column space and the solution is
  // (forced to) zero: Eq. 5 gives ||s|| / ||s|| = 1.
  Matrix a = Matrix::from_columns({{1, 0, 0}});
  Vector y{0.0};
  Vector s{0, 0, 1};
  EXPECT_NEAR(backward_error(a, y, s), 1.0, 1e-12);
}

TEST(BackwardError, ShapeMismatchThrows) {
  Matrix a(3, 2);
  Vector y{1, 2, 3};
  Vector s{1, 2, 3};
  EXPECT_THROW(backward_error(a, y, s), DimensionError);
}

TEST(BackwardError, ScaleInvariance) {
  // Scaling A, y, s together leaves Eq. 5 unchanged.
  Matrix a = random_gaussian(8, 3, 55);
  Vector y{0.5, -1.0, 2.0};
  Vector s(8);
  for (std::size_t i = 0; i < 8; ++i) s[i] = std::sin(double(i) * 1.3);
  const double e1 = backward_error(a, y, s);
  Matrix a2 = a * 100.0;
  Vector s2 = s;
  scal(100.0, s2);
  const double e2 = backward_error(a2, y, s2);
  EXPECT_NEAR(e1, e2, 1e-8);
}

class LstsqNoiseSweep : public ::testing::TestWithParam<double> {};

TEST_P(LstsqNoiseSweep, BackwardErrorTracksNoiseLevel) {
  // Planted solution plus noise of magnitude eps: the backward error must be
  // of order eps (within a generous constant), and monotone-ish in eps.
  const double eps = GetParam();
  Matrix a = random_gaussian(40, 8, 123);
  Vector xtrue(8, 1.0);
  Vector b = matvec(a, xtrue);
  Matrix noise = random_gaussian(40, 1, 321);
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] += eps * noise(static_cast<index_t>(i), 0);
  }
  auto res = lstsq(a, b);
  EXPECT_LT(res.backward_error, eps * 10 + 1e-14);
}

INSTANTIATE_TEST_SUITE_P(NoiseLevels, LstsqNoiseSweep,
                         ::testing::Values(0.0, 1e-12, 1e-9, 1e-6, 1e-3));

}  // namespace
}  // namespace catalyst::linalg
