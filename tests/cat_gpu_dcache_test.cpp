// Tests for the GPU data-movement benchmark (sixth category) and its
// pipeline behaviour on the Tempest machine.
#include "cat/gpu_dcache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {
namespace {

namespace sig = pmu::sig;

TEST(GpuDcacheBenchmark, DefaultShape) {
  const auto b = gpu_dcache_benchmark();
  EXPECT_EQ(b.name, "cat-gpu-dcache");
  EXPECT_EQ(b.slots.size(), 4u);
  EXPECT_EQ(b.basis.labels, (std::vector<std::string>{"TCCH", "TCCM"}));
  EXPECT_EQ(b.basis.ideal_events.size(), 2u);
}

TEST(GpuDcacheBenchmark, RegimesMatchFootprints) {
  const auto b = gpu_dcache_benchmark();
  // Slots 0-1 fit the 8 MiB TCC; slots 2-3 stream from memory.
  for (std::size_t s = 0; s < 2; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    EXPECT_GT(act.at(sig::gpu_tcc_hit) / b.slots[s].normalizer, 0.9)
        << b.slots[s].name;
  }
  for (std::size_t s = 2; s < 4; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    EXPECT_GT(act.at(sig::gpu_tcc_miss) / b.slots[s].normalizer, 0.9)
        << b.slots[s].name;
  }
}

TEST(GpuDcacheBenchmark, ConservationPerSlot) {
  const auto b = gpu_dcache_benchmark();
  for (const auto& slot : b.slots) {
    const auto& act = slot.thread_activities[0];
    EXPECT_NEAR((act.at(sig::gpu_tcc_hit) + act.at(sig::gpu_tcc_miss)) /
                    slot.normalizer,
                1.0, 1e-12)
        << slot.name;
  }
}

TEST(GpuDcacheBenchmark, RejectsBadOptions) {
  GpuDcacheOptions opt;
  opt.footprints_bytes.clear();
  EXPECT_THROW(gpu_dcache_benchmark(opt), std::invalid_argument);
  GpuDcacheOptions opt2;
  opt2.measured_traversals = 0;
  EXPECT_THROW(gpu_dcache_benchmark(opt2), std::invalid_argument);
}

TEST(GpuDcacheSignatures, Shapes) {
  const auto sigs = core::gpu_dcache_signatures();
  ASSERT_EQ(sigs.size(), 4u);
  for (const auto& s : sigs) EXPECT_EQ(s.coordinates.size(), 2u);
  EXPECT_EQ(sigs[3].coordinates, (linalg::Vector{0, 64}));
}

class GpuDcachePipeline : public ::testing::Test {
 protected:
  static const core::PipelineResult& result() {
    static const core::PipelineResult res = [] {
      core::PipelineOptions opt;
      opt.tau = 1e-1;
      opt.alpha = 5e-2;
      opt.projection_max_error = 1e-1;
      opt.fitness_threshold = 5e-2;
      return core::run_pipeline(pmu::tempest_gpu(), gpu_dcache_benchmark(),
                                core::gpu_dcache_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(GpuDcachePipeline, SelectsTheAggregateCounters) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 2u) << core::format_selected_events(result());
  EXPECT_NE(std::find(events.begin(), events.end(),
                      "rocm:::TCC_HIT_sum:device=0"),
            events.end());
  const bool miss_like =
      std::find(events.begin(), events.end(),
                "rocm:::TCC_MISS_sum:device=0") != events.end() ||
      std::find(events.begin(), events.end(),
                "rocm:::TCC_EA_RDREQ_sum:device=0") != events.end();
  EXPECT_TRUE(miss_like);
  // Per-channel events (1/16 coefficients) must never beat the aggregates.
  for (const auto& e : events) {
    EXPECT_EQ(e.find("TCC_HIT["), std::string::npos) << e;
    EXPECT_EQ(e.find("TCC_MISS["), std::string::npos) << e;
  }
}

TEST_F(GpuDcachePipeline, AllSignaturesCompose) {
  ASSERT_EQ(result().metrics.size(), 4u);
  for (const auto& m : result().metrics) {
    EXPECT_TRUE(m.composable) << m.metric_name << " " << m.backward_error;
  }
  // HBM bytes = ~64 x the miss-like event.
  for (const auto& m : result().metrics) {
    if (m.metric_name != "HBM Traffic Bytes.") continue;
    double max_coeff = 0.0;
    for (const auto& t : m.terms) {
      max_coeff = std::max(max_coeff, std::fabs(t.coefficient));
    }
    EXPECT_NEAR(max_coeff, 64.0, 2.0);
  }
}

}  // namespace
}  // namespace catalyst::cat
