// Seed discipline for randomized tests (enforced by catalyst-lint's
// seed-echo-in-tests rule):
//
//   for (std::uint64_t seed : catalyst::testing::sweep_seeds(1, 50)) {
//     ...
//     ASSERT_TRUE(ok) << catalyst::testing::seed_banner(seed) << ...;
//   }
//
// sweep_seeds() normally yields the full range; when CATALYST_SEED=<n> is
// set it yields exactly that one seed, so the banner a failing run prints
// ("CATALYST_SEED=<n> ...") replays the failure verbatim:
//
//   CATALYST_SEED=17 ctest -R property_sweeps --output-on-failure
#pragma once

#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace catalyst::testing {

/// The CATALYST_SEED environment override, if set and non-empty.
inline std::optional<std::uint64_t> env_seed() {
  const char* env = std::getenv("CATALYST_SEED");
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::strtoull(env, nullptr, 10);
}

/// Seeds {start, ..., start+count-1}, or the single CATALYST_SEED override.
inline std::vector<std::uint64_t> sweep_seeds(std::uint64_t start,
                                              std::size_t count) {
  if (const auto override_seed = env_seed()) return {*override_seed};
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    seeds.push_back(start + i);
  }
  return seeds;
}

/// The replay line every randomized-test failure must lead with.
inline std::string seed_banner(std::uint64_t seed) {
  return "CATALYST_SEED=" + std::to_string(seed) +
         " replays this failure; ";
}

}  // namespace catalyst::testing
