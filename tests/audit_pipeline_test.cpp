// audit_pipeline: the full paper pipeline runs under enabled numerical
// audits.  Every QR factorization and least-squares solve in the analysis
// verifies its own output (orthogonality, triangularity, reconstruction,
// optimality); the test asserts the hooks actually fired and that auditing
// does not change any result.
#include <gtest/gtest.h>

#include <cmath>

#include "cat/cat.hpp"
#include "core/core.hpp"
#include "linalg/audit.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

PipelineResult run_branch(bool audited) {
  linalg::audit::EnabledGuard guard(audited);
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::branch_benchmark();
  PipelineOptions opt;
  return run_pipeline(machine, bench, branch_signatures(), opt);
}

TEST(AuditPipeline, BranchPipelinePassesAllAuditsAndHooksFire) {
  linalg::audit::reset_counts();
  PipelineResult res;
  ASSERT_NO_THROW(res = run_branch(true));
  EXPECT_EQ(res.xhat_events.size(), 4u);
  const auto counts = linalg::audit::counts();
  // Every surviving event is projected through one lstsq (which also runs a
  // QR audit); the counts must reflect a full pipeline's worth of checks.
  EXPECT_GT(counts.lstsq, 10u);
  EXPECT_GT(counts.orthogonality, 10u);
  EXPECT_EQ(counts.orthogonality, counts.triangularity);
  EXPECT_EQ(counts.orthogonality, counts.factorization);
}

TEST(AuditPipeline, AuditingDoesNotChangeResults) {
  const PipelineResult plain = run_branch(false);
  const PipelineResult audited = run_branch(true);
  ASSERT_EQ(plain.xhat_events, audited.xhat_events);
  ASSERT_EQ(plain.metrics.size(), audited.metrics.size());
  for (std::size_t i = 0; i < plain.metrics.size(); ++i) {
    const auto& mp = plain.metrics[i];
    const auto& ma = audited.metrics[i];
    EXPECT_EQ(mp.metric_name, ma.metric_name);
    EXPECT_EQ(mp.composable, ma.composable);
    // Bit-identical, not approximately equal: audits only read.
    EXPECT_EQ(mp.backward_error, ma.backward_error) << mp.metric_name;
    ASSERT_EQ(mp.terms.size(), ma.terms.size());
    for (std::size_t t = 0; t < mp.terms.size(); ++t) {
      EXPECT_EQ(mp.terms[t].coefficient, ma.terms[t].coefficient)
          << mp.metric_name << " / " << mp.terms[t].event_name;
    }
  }
}

TEST(AuditPipeline, CpuFlopsPipelinePassesAudits) {
  linalg::audit::EnabledGuard guard(true);
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  PipelineOptions opt;
  PipelineResult res;
  ASSERT_NO_THROW(
      res = run_pipeline(machine, bench, cpu_flops_signatures(), opt));
  EXPECT_EQ(res.xhat_events.size(), 8u);
}

TEST(AuditPipeline, DcachePipelinePassesAudits) {
  linalg::audit::EnabledGuard guard(true);
  const pmu::Machine machine = pmu::saphira_cpu();
  cat::DcacheOptions dopt;
  dopt.threads = 3;
  const cat::Benchmark bench = cat::dcache_benchmark(dopt);
  PipelineOptions opt;
  opt.tau = 1e-1;
  opt.alpha = 5e-2;
  opt.projection_max_error = 1e-1;
  opt.fitness_threshold = 5e-2;
  ASSERT_NO_THROW(run_pipeline(machine, bench, dcache_signatures(), opt));
}

}  // namespace
}  // namespace catalyst::core
