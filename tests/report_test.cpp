// Tests for report rendering: the variability series (Fig. 2 data), the
// selected-event listing, and the Markdown report.
#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "cat/cat.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"

namespace catalyst::core {
namespace {

const PipelineResult& branch_result() {
  static const PipelineResult r = run_pipeline(
      pmu::saphira_cpu(), cat::branch_benchmark(), branch_signatures());
  return r;
}

TEST(Report, VariabilitySeriesIsSortedAndDropsAllZero) {
  const auto text =
      format_variability_series(branch_result().noise, 1e-10);
  // Header plus one line per non-zero event.
  std::size_t lines = 0;
  double prev = -1.0;
  std::istringstream is(text);
  std::string line;
  std::getline(is, line);  // header
  EXPECT_EQ(line.front(), '#');
  while (std::getline(is, line)) {
    ++lines;
    std::istringstream ls(line);
    std::size_t idx;
    double rnmse;
    ls >> idx >> rnmse;
    EXPECT_GE(rnmse, prev) << "series not sorted at line " << lines;
    prev = rnmse;
  }
  std::size_t nonzero = 0;
  for (const auto& v : branch_result().noise.variabilities) {
    if (!v.all_zero) ++nonzero;
  }
  EXPECT_EQ(lines, nonzero);
}

TEST(Report, SelectedEventsListsAllWithScores) {
  const auto text = format_selected_events(branch_result());
  for (const auto& e : branch_result().xhat_events) {
    EXPECT_NE(text.find(e), std::string::npos) << e;
  }
  EXPECT_NE(text.find("pivot score"), std::string::npos);
}

TEST(Report, MarkdownReportStructure) {
  const auto md = format_markdown_report("Branch run", branch_result());
  EXPECT_EQ(md.rfind("# Branch run", 0), 0u);
  EXPECT_NE(md.find("## Stage funnel"), std::string::npos);
  EXPECT_NE(md.find("## Selected events"), std::string::npos);
  EXPECT_NE(md.find("## Metrics"), std::string::npos);
  // Every metric row present, non-composable ones bolded.
  for (const auto& m : branch_result().metrics) {
    EXPECT_NE(md.find("| " + m.metric_name + " |"), std::string::npos)
        << m.metric_name;
  }
  EXPECT_NE(md.find("**no**"), std::string::npos);  // Branches Executed
  // Markdown tables: every non-heading, non-blank line is a table row.
  std::istringstream is(md);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.front(), '|') << line;
  }
}

TEST(Report, MarkdownRoundsCoefficients) {
  const auto md = format_markdown_report("r", branch_result());
  // The Unconditional-Branches row must show the clean +-1 combination,
  // not 17-digit raw coefficients.
  EXPECT_NE(md.find("-1 x BR_INST_RETIRED:COND + 1 x "
                    "BR_INST_RETIRED:ALL_BRANCHES"),
            std::string::npos)
      << md;
}

TEST(Report, CombinationDropsZerosAndSignsNegatives) {
  // Zero coefficients vanish; a leading negative renders as "-mag x EVENT";
  // interior negatives as " - "; an all-zero combination says so.
  const std::vector<MetricTerm> terms = {
      {"A", 0.0}, {"B", -1.0}, {"C", 0.0}, {"D", 2.5}, {"E", -0.25}};
  EXPECT_EQ(format_combination(terms), "-1 x B + 2.5 x D - 0.25 x E");
  EXPECT_EQ(format_combination({{"A", 0.0}, {"B", 0.0}}), "(none)");
  EXPECT_EQ(format_combination({}), "(none)");
  // Precision is honored (coefficients are doubles, not pretty ints).
  EXPECT_EQ(format_combination({{"A", 1.0 / 3.0}}, 3), "0.333 x A");
}

TEST(Report, CollectionReportElidesUntouchedEvents) {
  vpapi::CollectionReport report;
  report.events.resize(3);
  report.events[0].name = "CLEAN_A";
  report.events[1].name = "CLEAN_B";
  report.events[2].name = "CLEAN_C";
  // All clean, no faults/retries/wraps: only the summary line survives.
  const auto text = format_collection_report(report);
  EXPECT_EQ(text.find("CLEAN_A"), std::string::npos);
  EXPECT_EQ(text.find('\n'), text.size() - 1) << "expected summary only";

  report.events[1].retries = 2;
  report.events[1].faults[0] = 2;
  const auto eventful = format_collection_report(report);
  EXPECT_NE(eventful.find("CLEAN_B"), std::string::npos);
  EXPECT_NE(eventful.find("retries=2"), std::string::npos);
  EXPECT_EQ(eventful.find("CLEAN_A"), std::string::npos);
}

TEST(Report, MarkdownCollectionSectionOnlyWhenReportPresent) {
  const auto bare = format_markdown_report("r", branch_result());
  EXPECT_EQ(bare.find("## Collection robustness"), std::string::npos);

  PipelineResult with = branch_result();
  with.collection.emplace();
  with.quarantined_events = {"BAD_EVENT"};
  const auto md = format_markdown_report("r", with);
  EXPECT_NE(md.find("## Collection robustness"), std::string::npos);
  EXPECT_NE(md.find("`BAD_EVENT`"), std::string::npos);
}

TEST(Report, MarkdownDegenerateRunKeepsStableTables) {
  // Everything filtered out: the report must still render complete tables
  // with explicit placeholder rows, never empty table bodies.
  PipelineResult empty;
  const auto md = format_markdown_report("empty", empty);
  EXPECT_NE(md.find("| - | (no events survived) | - |\n"), std::string::npos);
  EXPECT_NE(md.find("| - | (no events survived) | - | - |\n"),
            std::string::npos);
  EXPECT_EQ(md.find("## Stage timings"), std::string::npos);
  // Table-shape invariant holds even for the degenerate report.
  std::istringstream is(md);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_EQ(line.front(), '|') << line;
  }
}

}  // namespace
}  // namespace catalyst::core
