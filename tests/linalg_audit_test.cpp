// Unit tests for linalg::audit: the measurement functions, the enable/count
// plumbing, and the in-path hooks in qrcp(), QrFactorization and lstsq().
#include "linalg/audit.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/qrcp.hpp"
#include "linalg/random.hpp"

namespace catalyst::linalg {
namespace {

TEST(AuditMeasurements, OrthogonalityErrorOfIdentityIsZero) {
  EXPECT_DOUBLE_EQ(audit::orthogonality_error(Matrix::identity(4)), 0.0);
}

TEST(AuditMeasurements, OrthogonalityErrorDetectsScaledColumns) {
  Matrix q = Matrix::identity(3);
  q(0, 0) = 2.0;  // column no longer unit norm: Q^T Q - I has a 3 at (0,0)
  EXPECT_NEAR(audit::orthogonality_error(q), 3.0, 1e-12);
}

TEST(AuditMeasurements, MaxBelowDiagonal) {
  Matrix r{{1, 2}, {0, 3}};
  EXPECT_DOUBLE_EQ(audit::max_below_diagonal(r), 0.0);
  r(1, 0) = -0.25;
  EXPECT_DOUBLE_EQ(audit::max_below_diagonal(r), 0.25);
}

TEST(AuditMeasurements, NormalEquationsResidualIsZeroAtTheMinimizer) {
  // For square invertible A, the exact solution zeroes the gradient.
  Matrix a{{2, 1}, {1, 3}};
  Vector b{3, 5};
  const auto ls = lstsq(a, b);
  EXPECT_LT(audit::normal_equations_residual(a, ls.x, b), 1e-12);
  // A non-minimizer has a visibly non-zero gradient.
  Vector wrong{1.0, 1.0};
  wrong[0] += 0.5;
  EXPECT_GT(audit::normal_equations_residual(a, wrong, b), 0.1);
}

TEST(AuditToggle, GuardSetsAndRestores) {
  const bool before = audit::enabled();
  {
    audit::EnabledGuard guard(!before);
    EXPECT_EQ(audit::enabled(), !before);
  }
  EXPECT_EQ(audit::enabled(), before);
}

TEST(AuditChecks, GoodFactorizationPasses) {
  const Matrix a = random_gaussian(12, 7, 42);
  audit::EnabledGuard guard(true);
  audit::reset_counts();
  EXPECT_NO_THROW(qrcp(a, 0.0));
  const auto counts = audit::counts();
  EXPECT_EQ(counts.orthogonality, 1u);
  EXPECT_EQ(counts.triangularity, 1u);
  EXPECT_EQ(counts.factorization, 1u);
}

TEST(AuditChecks, QrFactorizationAuditsItself) {
  const Matrix a = random_gaussian(9, 5, 7);
  audit::EnabledGuard guard(true);
  audit::reset_counts();
  const QrFactorization qr(a);
  EXPECT_NO_THROW(qr.solve(Vector(9, 1.0)));
  EXPECT_GE(audit::counts().orthogonality, 1u);
}

TEST(AuditChecks, LstsqAuditsOptimality) {
  const Matrix a = random_gaussian(10, 4, 3);
  const Vector b(10, 1.0);
  audit::EnabledGuard guard(true);
  audit::reset_counts();
  EXPECT_NO_THROW(lstsq(a, b));
  EXPECT_EQ(audit::counts().lstsq, 1u);
}

TEST(AuditChecks, CorruptedQIsCaught) {
  Matrix q = Matrix::identity(4);
  q(2, 2) = 1.5;
  EXPECT_THROW(audit::check_orthonormal(q), audit::AuditError);
}

TEST(AuditChecks, BelowDiagonalGarbageIsCaught) {
  Matrix r{{1, 2}, {0, 3}};
  r(1, 0) = 1e-9;
  EXPECT_THROW(audit::check_upper_triangular(r), audit::AuditError);
}

TEST(AuditChecks, WrongReconstructionIsCaught) {
  const Matrix a = random_gaussian(6, 3, 11);
  const QrFactorization qr(a);
  Matrix perturbed = a;
  perturbed(0, 0) += 1.0;
  EXPECT_THROW(
      audit::check_factorization(perturbed, qr.q_thin(), qr.r()),
      audit::AuditError);
}

TEST(AuditChecks, NonMinimizingSolutionIsCaught) {
  Matrix a{{2, 1}, {1, 3}};
  Vector b{3, 5};
  Vector wrong{10.0, -10.0};
  EXPECT_THROW(audit::check_lstsq_optimal(a, wrong, b), audit::AuditError);
}

TEST(AuditChecks, DisabledHooksCostNothingAndCountNothing) {
  audit::EnabledGuard guard(false);
  audit::reset_counts();
  const Matrix a = random_gaussian(8, 4, 5);
  qrcp(a, 0.0);
  lstsq(a, Vector(8, 1.0));
  const auto counts = audit::counts();
  EXPECT_EQ(counts.orthogonality, 0u);
  EXPECT_EQ(counts.triangularity, 0u);
  EXPECT_EQ(counts.factorization, 0u);
  EXPECT_EQ(counts.lstsq, 0u);
}

}  // namespace
}  // namespace catalyst::linalg
