// Tests for PAPI-style preset generation (core/presets) and derived-event
// support in the vpapi session.
#include "core/presets.hpp"

#include <gtest/gtest.h>

#include "cat/cat.hpp"
#include "core/pipeline.hpp"
#include "core/signatures.hpp"

namespace catalyst::core {
namespace {

MetricDefinition sample_metric(bool composable = true) {
  MetricDefinition m;
  m.metric_name = "DP Ops.";
  m.terms = {{"EV_A", 1.0001}, {"EV_B", 2.0}, {"EV_C", 0.0004}};
  m.backward_error = composable ? 1e-16 : 0.3;
  m.composable = composable;
  return m;
}

TEST(PresetSymbols, CanonicalMapping) {
  EXPECT_EQ(canonical_preset_symbol("DP Ops."), "PAPI_DP_OPS");
  EXPECT_EQ(canonical_preset_symbol("Mispredicted Branches."),
            "PAPI_BR_MSP");
  EXPECT_EQ(canonical_preset_symbol("L2 Misses."), "PAPI_L2_DCM");
  EXPECT_FALSE(canonical_preset_symbol("no such metric").has_value());
}

TEST(PresetSymbols, DerivedFallback) {
  EXPECT_EQ(derived_preset_symbol("HP Add and Sub Ops."),
            "CAT_HP_ADD_AND_SUB_OPS");
  EXPECT_EQ(derived_preset_symbol("weird--name!!"), "CAT_WEIRD_NAME");
}

TEST(MakePreset, RoundsAndDropsZeroTerms) {
  auto p = make_preset(sample_metric());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->symbol, "PAPI_DP_OPS");
  ASSERT_EQ(p->terms.size(), 2u);  // EV_C rounded to zero and dropped
  EXPECT_DOUBLE_EQ(p->terms[0].coefficient, 1.0);
  EXPECT_DOUBLE_EQ(p->terms[1].coefficient, 2.0);
}

TEST(MakePreset, RefusesNonComposableMetrics) {
  EXPECT_FALSE(make_preset(sample_metric(false)).has_value());
}

TEST(MakePresets, FiltersWholeList) {
  auto presets = make_presets({sample_metric(true), sample_metric(false)});
  EXPECT_EQ(presets.size(), 1u);
}

TEST(PresetSerialization, TableFormat) {
  auto presets = make_presets({sample_metric()});
  const auto text = presets_to_table(presets);
  EXPECT_NE(text.find("PAPI_DP_OPS|DP Ops.|1*EV_A+2*EV_B|"),
            std::string::npos)
      << text;
}

TEST(PresetSerialization, JsonFormat) {
  auto presets = make_presets({sample_metric()});
  const auto text = presets_to_json(presets);
  EXPECT_NE(text.find("\"symbol\": \"PAPI_DP_OPS\""), std::string::npos);
  EXPECT_NE(text.find("\"event\": \"EV_A\""), std::string::npos);
  EXPECT_NE(text.find("\"coefficient\": 2"), std::string::npos);
}

// --- vpapi derived events ----------------------------------------------------

pmu::Machine preset_machine() {
  pmu::Machine m("pm", 3, 11);
  m.add_event({"A", "", {{"x", 1.0}}, {}});
  m.add_event({"B", "", {{"y", 1.0}}, {}});
  m.add_event({"C", "", {{"z", 1.0}}, {}});
  m.add_event({"D", "", {{"w", 1.0}}, {}});
  return m;
}

TEST(DerivedEvents, RegisterAndQuery) {
  auto m = preset_machine();
  vpapi::Session s(m);
  vpapi::DerivedEvent d{"PAPI_XY", "x plus 2y", {{"A", 1.0}, {"B", 2.0}}};
  EXPECT_EQ(s.register_preset(d), vpapi::Status::ok);
  EXPECT_TRUE(s.query_event("PAPI_XY"));
  EXPECT_EQ(s.event_description("PAPI_XY"), "x plus 2y");
  EXPECT_EQ(s.enumerate_presets(), std::vector<std::string>{"PAPI_XY"});
}

TEST(DerivedEvents, RegistrationValidation) {
  auto m = preset_machine();
  vpapi::Session s(m);
  EXPECT_EQ(s.register_preset({"P", "", {}}), vpapi::Status::invalid_preset);
  EXPECT_EQ(s.register_preset({"", "", {{"A", 1.0}}}),
            vpapi::Status::invalid_preset);
  EXPECT_EQ(s.register_preset({"P", "", {{"NOPE", 1.0}}}),
            vpapi::Status::invalid_preset);
  EXPECT_EQ(s.register_preset({"A", "", {{"B", 1.0}}}),
            vpapi::Status::already_added);  // collides with raw event
  ASSERT_EQ(s.register_preset({"P", "", {{"A", 1.0}}}), vpapi::Status::ok);
  EXPECT_EQ(s.register_preset({"P", "", {{"B", 1.0}}}),
            vpapi::Status::already_added);
}

TEST(DerivedEvents, ReadComputesLinearCombination) {
  auto m = preset_machine();
  vpapi::Session s(m);
  s.register_preset({"PAPI_XY", "", {{"A", 1.0}, {"B", 2.0}}});
  const int set = s.create_eventset();
  ASSERT_EQ(s.add_event(set, "PAPI_XY"), vpapi::Status::ok);
  s.start(set);
  s.run_kernel({{"x", 5.0}, {"y", 7.0}}, 0, 0);
  s.stop(set);
  std::vector<double> vals;
  ASSERT_EQ(s.read(set, vals), vpapi::Status::ok);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 5.0 + 2.0 * 7.0);
}

TEST(DerivedEvents, PresetSharesCountersWithRawEvents) {
  auto m = preset_machine();  // 3 counters
  vpapi::Session s(m);
  s.register_preset({"P", "", {{"A", 1.0}, {"B", -1.0}}});
  const int set = s.create_eventset();
  ASSERT_EQ(s.add_event(set, "A"), vpapi::Status::ok);
  // Preset needs A and B; A is already counted -> only one new counter.
  ASSERT_EQ(s.add_event(set, "P"), vpapi::Status::ok);
  EXPECT_EQ(s.counters_in_use(set), 2u);
  // A third raw event still fits; a fourth does not.
  ASSERT_EQ(s.add_event(set, "C"), vpapi::Status::ok);
  EXPECT_EQ(s.add_event(set, "D"), vpapi::Status::conflict);
}

TEST(DerivedEvents, PresetTooWideForCounters) {
  pmu::Machine m("small", 2, 1);
  m.add_event({"A", "", {}, {}});
  m.add_event({"B", "", {}, {}});
  m.add_event({"C", "", {}, {}});
  vpapi::Session s(m);
  s.register_preset({"P", "", {{"A", 1.0}, {"B", 1.0}, {"C", 1.0}}});
  const int set = s.create_eventset();
  EXPECT_EQ(s.add_event(set, "P"), vpapi::Status::conflict);
}

TEST(DerivedEvents, RemovePresetFreesOnlyUnsharedCounters) {
  auto m = preset_machine();
  vpapi::Session s(m);
  s.register_preset({"P", "", {{"A", 1.0}, {"B", 1.0}}});
  const int set = s.create_eventset();
  s.add_event(set, "A");
  s.add_event(set, "P");
  ASSERT_EQ(s.counters_in_use(set), 2u);
  ASSERT_EQ(s.remove_event(set, "P"), vpapi::Status::ok);
  // B's counter freed; A's counter still held by the raw item.
  EXPECT_EQ(s.counters_in_use(set), 1u);
  std::vector<double> vals;
  s.start(set);
  s.run_kernel({{"x", 3.0}}, 0, 0);
  s.stop(set);
  ASSERT_EQ(s.read(set, vals), vpapi::Status::ok);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 3.0);
}

TEST(DerivedEvents, DuplicateConstituentCountedOnce) {
  auto m = preset_machine();
  vpapi::Session s(m);
  // 3*A - 1*A is legal and must allocate exactly one counter.
  s.register_preset({"P", "", {{"A", 3.0}, {"A", -1.0}}});
  const int set = s.create_eventset();
  ASSERT_EQ(s.add_event(set, "P"), vpapi::Status::ok);
  EXPECT_EQ(s.counters_in_use(set), 1u);
  s.start(set);
  s.run_kernel({{"x", 10.0}}, 0, 0);
  s.stop(set);
  std::vector<double> vals;
  s.read(set, vals);
  EXPECT_DOUBLE_EQ(vals[0], 20.0);
}

TEST(DerivedEvents, EndToEndFromPipeline) {
  // Full loop: pipeline discovers metrics -> presets -> registered in a
  // fresh session -> read during a "user application" and checked against
  // ground truth.
  const pmu::Machine machine = pmu::saphira_cpu();
  const cat::Benchmark bench = cat::cpu_flops_benchmark();
  const auto result =
      run_pipeline(machine, bench, cpu_flops_signatures());
  const auto presets = make_presets(result.metrics);
  ASSERT_GE(presets.size(), 4u);

  vpapi::Session session(machine);
  EXPECT_EQ(register_presets(session, presets), presets.size());

  // "User application": 100 iterations of 3 DP-AVX256-FMA + 5 scalar-DP
  // instructions -> DP FLOPs = 100 * (3 * 8 + 5) = 2900.
  pmu::Activity app;
  app[pmu::sig::fp("256", "dp", true)] = 300.0;
  app[pmu::sig::fp("scalar", "dp", false)] = 500.0;

  const int set = session.create_eventset();
  ASSERT_EQ(session.add_event(set, "PAPI_DP_OPS"), vpapi::Status::ok);
  session.start(set);
  session.run_kernel(app, 0, 0);
  session.stop(set);
  std::vector<double> vals;
  ASSERT_EQ(session.read(set, vals), vpapi::Status::ok);
  EXPECT_DOUBLE_EQ(vals[0], 2900.0);
}

}  // namespace
}  // namespace catalyst::core
