// Tests for the instruction-cache benchmark (the fifth category) and its
// end-to-end pipeline behaviour.
#include "cat/icache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/signatures.hpp"
#include "pmu/pmu.hpp"
#include "pmu/signals.hpp"

namespace catalyst::cat {
namespace {

namespace sig = pmu::sig;

TEST(IcacheBenchmark, DefaultShape) {
  const auto b = icache_benchmark();
  EXPECT_EQ(b.name, "cat-icache");
  EXPECT_EQ(b.slots.size(), 6u);
  EXPECT_EQ(b.basis.e.rows(), 6);
  EXPECT_EQ(b.basis.e.cols(), 3);
  EXPECT_EQ(b.basis.labels,
            (std::vector<std::string>{"L1IM", "L1IH", "L2IH"}));
  EXPECT_EQ(b.basis.ideal_events.size(), 3u);
}

TEST(IcacheBenchmark, SmallFootprintsHitL1I) {
  const auto b = icache_benchmark();
  // First two slots are inside the 32 KiB L1I.
  for (std::size_t s = 0; s < 2; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    const double hits = act.at(sig::l1i_hit) / b.slots[s].normalizer;
    EXPECT_GT(hits, 0.95) << b.slots[s].name;
    EXPECT_DOUBLE_EQ(b.basis.e(static_cast<linalg::index_t>(s), 1), 1.0);
  }
}

TEST(IcacheBenchmark, LargeFootprintsMissL1I) {
  const auto b = icache_benchmark();
  for (std::size_t s = 2; s < b.slots.size(); ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    const double misses = act.at(sig::l1i_miss) / b.slots[s].normalizer;
    // Sequential cyclic over LRU beyond capacity: near-total misses.
    EXPECT_GT(misses, 0.9) << b.slots[s].name;
    EXPECT_DOUBLE_EQ(b.basis.e(static_cast<linalg::index_t>(s), 0), 1.0);
  }
}

TEST(IcacheBenchmark, L2RegimeServedByL2) {
  const auto b = icache_benchmark();
  // Slots 2-3 (256K, 1M) fit the 2 MiB L2.
  for (std::size_t s = 2; s < 4; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    EXPECT_GT(act.at(sig::l2i_hit) / b.slots[s].normalizer, 0.9)
        << b.slots[s].name;
  }
  // Slots 4-5 (4M, 6M) overflow L2.
  for (std::size_t s = 4; s < 6; ++s) {
    const auto& act = b.slots[s].thread_activities[0];
    EXPECT_LT(act.at(sig::l2i_hit) / b.slots[s].normalizer, 0.1)
        << b.slots[s].name;
  }
}

TEST(IcacheBenchmark, RejectsBadOptions) {
  IcacheOptions opt;
  opt.footprints_bytes.clear();
  EXPECT_THROW(icache_benchmark(opt), std::invalid_argument);
  IcacheOptions opt2;
  opt2.measured_traversals = 0;
  EXPECT_THROW(icache_benchmark(opt2), std::invalid_argument);
  IcacheOptions opt3;
  opt3.hierarchy.levels.pop_back();
  EXPECT_THROW(icache_benchmark(opt3), std::invalid_argument);
}

TEST(IcacheSignatures, ShapesAndRelations) {
  const auto sigs = core::icache_signatures();
  ASSERT_EQ(sigs.size(), 5u);
  for (const auto& s : sigs) EXPECT_EQ(s.coordinates.size(), 3u);
  // L2 Instruction Misses = L1I Misses - L2 Instruction Hits.
  EXPECT_EQ(sigs[4].coordinates, (linalg::Vector{1, 0, -1}));
}

class IcachePipeline : public ::testing::Test {
 protected:
  static const core::PipelineResult& result() {
    static const core::PipelineResult res = [] {
      core::PipelineOptions opt;
      opt.tau = 1e-1;
      opt.alpha = 5e-2;
      opt.projection_max_error = 1e-1;
      opt.fitness_threshold = 5e-2;
      return core::run_pipeline(pmu::saphira_cpu(), icache_benchmark(),
                                core::icache_signatures(), opt);
    }();
    return res;
  }
};

TEST_F(IcachePipeline, SelectsOneEventPerBasisDimension) {
  const auto& events = result().xhat_events;
  ASSERT_EQ(events.size(), 3u) << core::format_selected_events(result());
  EXPECT_NE(std::find(events.begin(), events.end(), "ICACHE_64B:IFTAG_HIT"),
            events.end());
  const bool has_miss =
      std::find(events.begin(), events.end(), "ICACHE_64B:IFTAG_MISS") !=
          events.end() ||
      std::find(events.begin(), events.end(), "FRONTEND_RETIRED:L1I_MISS") !=
          events.end();
  EXPECT_TRUE(has_miss);
  EXPECT_NE(std::find(events.begin(), events.end(),
                      "FRONTEND_RETIRED:L2I_HIT"),
            events.end());
}

TEST_F(IcachePipeline, AllSignaturesCompose) {
  ASSERT_EQ(result().metrics.size(), 5u);
  for (const auto& m : result().metrics) {
    EXPECT_TRUE(m.composable) << m.metric_name << " " << m.backward_error;
    const auto rounded = core::round_coefficients(m.terms, 0.05);
    for (const auto& t : rounded) {
      EXPECT_DOUBLE_EQ(t.coefficient, std::round(t.coefficient))
          << m.metric_name << "/" << t.event_name;
    }
  }
}

}  // namespace
}  // namespace catalyst::cat
