// catalyst/core -- plain-text report rendering for pipeline artifacts.
//
// The bench harness prints each paper table/figure from these helpers so
// every binary formats results the same way.
#pragma once

#include <string>
#include <vector>

#include "core/pipeline.hpp"

namespace catalyst::core {

/// "a x EVENT + b x EVENT - c x EVENT" with zero terms dropped; "(none)"
/// when every coefficient is zero.
std::string format_combination(const std::vector<MetricTerm>& terms,
                               int precision = 6);

/// One row per metric: name, combination, backward error -- the layout of
/// Tables V-VIII.
std::string format_metric_table(const std::string& title,
                                const std::vector<MetricDefinition>& metrics,
                                bool rounded = false,
                                double round_tol = 0.05);

/// Sorted variability listing (the data behind Fig. 2): one line per event,
/// "<index> <max RNMSE> <event>"; all-zero events are omitted (they are
/// discarded before the figure is drawn).
std::string format_variability_series(const NoiseFilterResult& noise,
                                      double tau);

/// The events the specialized QRCP selected, one per line with pivot score.
std::string format_selected_events(const PipelineResult& result);

/// A signature table (the layout of Tables I-IV).
std::string format_signature_table(const std::string& title,
                                   const std::vector<std::string>& basis,
                                   const std::vector<MetricSignature>& sigs);

/// The resilient collector's outcome, human-readable: the campaign summary
/// line followed by one row per eventful event (faults seen, retries, wrap
/// corrections, disposition).  Untouched events are elided.
std::string format_collection_report(const vpapi::CollectionReport& report);

/// A complete Markdown report of a pipeline run: stage funnel, the selected
/// events with pivot scores, and a metric table (raw and rounded columns).
/// When the result carries a resilient-collection report, a "Collection
/// robustness" section (quarantined events + fault tallies) is included.
/// `title` becomes the H1 heading.
std::string format_markdown_report(const std::string& title,
                                   const PipelineResult& result,
                                   double round_tol = 0.05);

}  // namespace catalyst::core
