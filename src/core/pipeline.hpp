// catalyst/core -- the end-to-end analysis pipeline.
//
// Chains every stage of the paper on one benchmark + machine pair:
//
//   1. COLLECT   all raw events over the benchmark's kernel slots via the
//                vpapi multiplexed collector, several repetitions, one
//                collection per concurrent benchmark thread;
//   2. MEDIAN    across threads per (event, slot, repetition) reading
//                (Section IV's cache-noise suppressor; a no-op for
//                single-threaded benchmarks);
//   3. NORMALIZE readings per slot (per-iteration / per-access units);
//   4. FILTER    noisy events by max RNMSE against tau (Section IV) and
//                discard all-zero events;
//   5. PROJECT   survivors onto the expectation basis, E*xe = me, dropping
//                events that the basis cannot express (Section III-B);
//   6. SELECT    independent events with the specialized QRCP, alpha
//                (Section V), giving X-hat;
//   7. SOLVE     X-hat * y = s for every requested metric signature
//                (Section VI) with Eq. 5 fitness.
//
// Every stage's artifacts are kept in the result for reporting -- the bench
// harness regenerates each paper table/figure from them.
#pragma once

#include <atomic>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/metrics.hpp"
#include "core/noise.hpp"
#include "core/normalize.hpp"
#include "core/qrcp_special.hpp"
#include "faults/faults.hpp"
#include "obs/trace.hpp"
#include "pmu/machine.hpp"
#include "vpapi/collector.hpp"

namespace catalyst::core {

/// Thrown by the pipeline stages when a run is abandoned cooperatively --
/// either because the caller cancelled it or because its deadline passed
/// (reason() distinguishes the two).  Deriving from std::runtime_error keeps
/// legacy catch sites working; new callers (the service worker pool) catch
/// the type to map it onto a typed wire error.
class PipelineCancelled : public std::runtime_error {
 public:
  enum class Reason { cancelled, deadline };
  explicit PipelineCancelled(Reason reason)
      : std::runtime_error(reason == Reason::deadline
                               ? "pipeline aborted: request deadline exceeded"
                               : "pipeline aborted: cancelled by caller"),
        reason_(reason) {}
  Reason reason() const noexcept { return reason_; }

 private:
  Reason reason_;
};

/// Cooperative cancellation handle threaded through the pipeline stages.
///
/// Two independent triggers combine into one stop signal:
///   * request_cancel() -- any thread may flip the flag (a client CANCEL
///     frame, a server draining for shutdown);
///   * arm_deadline(clock, t) -- stop once the injectable clock passes t
///     (per-request analysis timeouts; tests drive it with FakeClock).
/// The stages poll stop_requested() at stage boundaries and inside the
/// per-signature solve loop, then raise PipelineCancelled.  Polling costs
/// one relaxed load (plus a clock read when a deadline is armed), so a
/// null/never-armed token never perturbs results or timing contracts.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Any thread; sticky.
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }

  /// Owner thread, before the run starts.  `clock` must outlive the run.
  void arm_deadline(faults::Clock* clock,
                    std::chrono::nanoseconds deadline) noexcept {
    clock_ = clock;
    deadline_ = deadline;
  }

  bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once either trigger has fired.
  bool stop_requested() const {
    if (cancel_requested()) return true;
    return clock_ != nullptr && clock_->now() > deadline_;
  }

  /// Raises PipelineCancelled (with the precise reason) if stopped.
  void check() const {
    if (cancel_requested()) {
      throw PipelineCancelled(PipelineCancelled::Reason::cancelled);
    }
    if (clock_ != nullptr && clock_->now() > deadline_) {
      throw PipelineCancelled(PipelineCancelled::Reason::deadline);
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  faults::Clock* clock_ = nullptr;  ///< Not owned; null = no deadline.
  std::chrono::nanoseconds deadline_{0};
};

/// Tuning knobs of the pipeline; defaults match the paper's choices for the
/// compute benchmarks (tau = 1e-10, alpha = 5e-4).  The data-cache runs use
/// tau = 1e-1 and alpha = 5e-2 (Sections IV and V-E).
struct PipelineOptions {
  std::size_t repetitions = 3;          ///< Benchmark repetitions (>= 2).
  double tau = 1e-10;                   ///< Noise threshold (Section IV).
  double projection_max_error = 1e-2;   ///< E*xe=me fitness cutoff.
  double alpha = 5e-4;                  ///< QR noise tolerance (Section V).
  double fitness_threshold = 1e-6;      ///< "Composable" verdict cutoff.
  /// Pivot rule for the event-selection QR (ablation hook; the default is
  /// the paper-faithful specialized scheme).
  PivotRule pivot_rule = PivotRule::original_score;
  /// OS threads for the multiplexed collection stage (results are
  /// bit-identical for any value; see vpapi::collect).
  int collection_threads = 1;
  /// Worker threads for the analysis stages (RNMSE filter, projection
  /// solves, and the specialized QRCP pivot search).  Every stage follows
  /// the shared worker-pool determinism contract, so results are
  /// bit-identical for any value.
  int analysis_threads = 1;
  /// When true, events classified as drifting (systematic per-repetition
  /// trend, see core/noise_classify.hpp) are detrended BEFORE the tau
  /// filter instead of being discarded by it -- the remedy the noise
  /// classification suggests.  Off by default (the paper discards them).
  bool detrend_drifting = false;
  /// Cooperative cancellation / per-request deadline (not owned; may be
  /// null).  Stages poll it at their boundaries and raise
  /// PipelineCancelled; a null or never-fired token changes nothing.
  const CancelToken* cancel = nullptr;
};

/// Everything the pipeline produced, stage by stage.
struct PipelineResult {
  // Stage 1-3 artifacts.
  std::vector<std::string> all_event_names;
  /// measurements[e][r][k]: normalized (and thread-median) reading of event
  /// e, repetition r, slot k.
  std::vector<std::vector<std::vector<double>>> measurements;

  // Stage 4.
  NoiseFilterResult noise;

  // Stage 5 (input events are noise.kept, in that order).
  NormalizationResult projection;

  // Stage 6.
  SpecialQrcpResult qr;
  linalg::Matrix xhat;                    ///< basis-dims x selected events.
  std::vector<std::string> xhat_events;   ///< Column labels of xhat.

  // Stage 7.
  std::vector<MetricDefinition> metrics;

  // Robustness artifacts (populated by the resilient collection path; empty
  // for the clean driver).  Quarantined events were excluded BEFORE the
  // RNMSE filter: they appear in neither all_event_names nor measurements.
  std::vector<std::string> quarantined_events;
  std::optional<vpapi::CollectionReport> collection;

  /// Per-stage wall time in pipeline order, recorded from the stages' own
  /// obs::Spans.  Empty when tracing is disabled (compile- or run-time);
  /// timings describe the run but never influence any numeric result.
  std::vector<obs::StageTiming> stage_timings;

  /// Averaged normalized measurement vector of an event that survived the
  /// noise filter (nullopt otherwise).  Used by the Fig. 3 benches.
  std::optional<std::vector<double>> averaged_measurement(
      const std::string& event_name) const;
};

/// Runs the full pipeline.
PipelineResult run_pipeline(const pmu::Machine& machine,
                            const cat::Benchmark& benchmark,
                            const std::vector<MetricSignature>& signatures,
                            const PipelineOptions& options = {});

/// Runs stages 4-7 (noise filter -> projection -> QRCP -> metrics) on
/// already-collected, normalized measurement data: measurements[e][r][k]
/// keyed by `event_names`, over the expectation basis `expectation`.
/// This is the offline-analysis entry point (see core/io.hpp): data
/// collected on one system can be analyzed anywhere.  The returned result
/// has the collection-stage fields (`all_event_names`, `measurements`)
/// populated from the arguments.
PipelineResult analyze_measurements(
    const linalg::Matrix& expectation,
    const std::vector<std::string>& event_names,
    std::vector<std::vector<std::vector<double>>> measurements,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options = {});

}  // namespace catalyst::core
