#include "core/io.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace catalyst::core {

namespace {

constexpr const char* kFormatVersion = "catalyst-measurements-v1";
constexpr const char* kFormatVersionV2 = "catalyst-measurements-v2";

}  // namespace

std::string bounded_excerpt(const std::string& text, std::size_t max_bytes) {
  const std::size_t keep = text.size() < max_bytes ? text.size() : max_bytes;
  std::string out;
  out.reserve(keep + 24);
  for (std::size_t i = 0; i < keep; ++i) {
    const unsigned char c = static_cast<unsigned char>(text[i]);
    out.push_back((c < 0x20 || c == 0x7f) ? '.' : static_cast<char>(c));
  }
  if (text.size() > max_bytes) {
    out += "...(" + std::to_string(text.size()) + " bytes)";
  }
  return out;
}

MeasurementArchive make_archive(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const PipelineResult& result) {
  MeasurementArchive a;
  a.format_version = kFormatVersion;
  a.machine_name = machine.name();
  a.benchmark_name = benchmark.name;
  for (const auto& slot : benchmark.slots) a.slot_names.push_back(slot.name);
  a.basis_labels = benchmark.basis.labels;
  a.expectation = benchmark.basis.e;
  a.event_names = result.all_event_names;
  a.measurements = result.measurements;
  return a;
}

std::string save_archive(const MeasurementArchive& archive, int indent) {
  const bool v2 = !archive.quarantined.empty() ||
                  archive.collection_report.has_value() ||
                  archive.collection_mode != vpapi::CollectionMode::counting ||
                  archive.sample_trace.has_value();
  json::Value root = json::Value::object();
  root["format"] = !archive.format_version.empty() ? archive.format_version
                   : v2                            ? kFormatVersionV2
                                                   : kFormatVersion;
  root["machine"] = archive.machine_name;
  root["benchmark"] = archive.benchmark_name;

  json::Value slots = json::Value::array();
  for (const auto& s : archive.slot_names) slots.push_back(s);
  root["slots"] = std::move(slots);

  json::Value basis = json::Value::object();
  json::Value labels = json::Value::array();
  for (const auto& l : archive.basis_labels) labels.push_back(l);
  basis["labels"] = std::move(labels);
  json::Value e_rows = json::Value::array();
  for (linalg::index_t r = 0; r < archive.expectation.rows(); ++r) {
    json::Value row = json::Value::array();
    for (linalg::index_t c = 0; c < archive.expectation.cols(); ++c) {
      row.push_back(archive.expectation(r, c));
    }
    e_rows.push_back(std::move(row));
  }
  basis["e"] = std::move(e_rows);
  root["basis"] = std::move(basis);

  json::Value events = json::Value::array();
  for (const auto& n : archive.event_names) events.push_back(n);
  root["events"] = std::move(events);

  json::Value meas = json::Value::array();
  for (const auto& per_event : archive.measurements) {
    json::Value reps = json::Value::array();
    for (const auto& per_rep : per_event) {
      json::Value vec = json::Value::array();
      for (double v : per_rep) vec.push_back(v);
      reps.push_back(std::move(vec));
    }
    meas.push_back(std::move(reps));
  }
  root["measurements"] = std::move(meas);

  if (v2) {
    json::Value q = json::Value::array();
    for (const auto& n : archive.quarantined) q.push_back(n);
    root["quarantined"] = std::move(q);
    if (archive.collection_report.has_value()) {
      root["collection_report"] =
          collection_report_to_json(*archive.collection_report);
    }
    // The mode knob and trace appear only for non-counting campaigns:
    // default-mode archives keep the exact v1 byte layout.
    if (archive.collection_mode != vpapi::CollectionMode::counting) {
      root["collection_mode"] =
          std::string(vpapi::to_string(archive.collection_mode));
    }
    if (archive.sample_trace.has_value()) {
      root["sample_trace"] = sample_trace_to_json(*archive.sample_trace);
    }
  }

  return json::dump(root, indent);
}

namespace {

MeasurementArchive load_archive_impl(const std::string& json_text) {
  const json::Value root = json::parse(json_text);
  MeasurementArchive a;
  a.format_version = root.at("format").as_string();
  if (a.format_version != kFormatVersion &&
      a.format_version != kFormatVersionV2) {
    throw std::invalid_argument("load_archive: unsupported format '" +
                                bounded_excerpt(a.format_version) + "'");
  }
  a.machine_name = root.at("machine").as_string();
  a.benchmark_name = root.at("benchmark").as_string();
  for (const auto& s : root.at("slots").as_array()) {
    a.slot_names.push_back(s.as_string());
  }
  const auto& basis = root.at("basis");
  for (const auto& l : basis.at("labels").as_array()) {
    a.basis_labels.push_back(l.as_string());
  }
  const auto& e_rows = basis.at("e").as_array();
  const auto n_rows = static_cast<linalg::index_t>(e_rows.size());
  const auto n_cols = static_cast<linalg::index_t>(a.basis_labels.size());
  a.expectation = linalg::Matrix(n_rows, n_cols);
  for (linalg::index_t r = 0; r < n_rows; ++r) {
    const auto& row = e_rows[static_cast<std::size_t>(r)].as_array();
    if (static_cast<linalg::index_t>(row.size()) != n_cols) {
      throw std::invalid_argument("load_archive: ragged basis matrix");
    }
    for (linalg::index_t c = 0; c < n_cols; ++c) {
      a.expectation(r, c) = row[static_cast<std::size_t>(c)].as_number();
    }
  }
  if (n_rows != static_cast<linalg::index_t>(a.slot_names.size())) {
    throw std::invalid_argument("load_archive: basis rows != slot count");
  }
  for (const auto& n : root.at("events").as_array()) {
    a.event_names.push_back(n.as_string());
  }
  const auto& meas = root.at("measurements").as_array();
  if (meas.size() != a.event_names.size()) {
    throw std::invalid_argument(
        "load_archive: measurements/events count mismatch");
  }
  a.measurements.reserve(meas.size());
  std::size_t reps_expected = 0;
  for (const auto& per_event : meas) {
    std::vector<std::vector<double>> reps;
    for (const auto& per_rep : per_event.as_array()) {
      std::vector<double> vec;
      for (const auto& v : per_rep.as_array()) vec.push_back(v.as_number());
      if (vec.size() != a.slot_names.size()) {
        throw std::invalid_argument(
            "load_archive: measurement vector length != slot count");
      }
      reps.push_back(std::move(vec));
    }
    if (reps_expected == 0) reps_expected = reps.size();
    if (reps.size() != reps_expected || reps.empty()) {
      throw std::invalid_argument(
          "load_archive: inconsistent repetition counts");
    }
    a.measurements.push_back(std::move(reps));
  }
  if (root.contains("quarantined")) {
    for (const auto& n : root.at("quarantined").as_array()) {
      a.quarantined.push_back(n.as_string());
    }
  }
  if (root.contains("collection_report")) {
    a.collection_report =
        collection_report_from_json(root.at("collection_report"));
  }
  if (root.contains("collection_mode")) {
    a.collection_mode = vpapi::collection_mode_from_string(
        root.at("collection_mode").as_string());
  }
  if (root.contains("sample_trace")) {
    a.sample_trace = sample_trace_from_json(root.at("sample_trace"));
  }
  return a;
}

}  // namespace

MeasurementArchive load_archive(const std::string& json_text) {
  try {
    return load_archive_impl(json_text);
  } catch (const ArchiveError&) {
    throw;
  } catch (const json::JsonError& e) {
    // Truncated/corrupt input: surface the byte offset as a typed error so
    // callers (CLI, resume logic) can distinguish "damaged file" from
    // "wrong shape" without string-matching.
    throw ArchiveError(std::string("load_archive: ") + e.what(), e.offset());
  }
}

PipelineResult analyze_archive(const MeasurementArchive& archive,
                               const std::vector<MetricSignature>& signatures,
                               const PipelineOptions& options) {
  return analyze_measurements(archive.expectation, archive.event_names,
                              archive.measurements, signatures, options);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

void write_text_file_atomic(const std::string& path,
                            const std::string& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for writing: " + tmp);
    out << contents;
    out.flush();
    if (!out) throw std::runtime_error("write failed: " + tmp);
  }
  // rename(2) within one directory is atomic on POSIX: a crash between the
  // write and the rename leaves only the .tmp file, never a torn `path`.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    throw std::runtime_error("atomic rename failed: " + tmp + " -> " + path);
  }
}

json::Value collection_report_to_json(const vpapi::CollectionReport& report) {
  json::Value v = json::Value::object();
  v["total_retries"] = report.total_retries;
  v["start_retries"] = report.start_retries;
  json::Value q = json::Value::array();
  for (const auto& n : report.quarantined) q.push_back(n);
  v["quarantined"] = std::move(q);
  json::Value events = json::Value::array();
  for (const auto& e : report.events) {
    // Untouched events are implicit (disposition "clean", all counts zero):
    // storing only the eventful rows keeps reports/checkpoints small.
    if (e.disposition == vpapi::EventDisposition::clean &&
        e.read_attempts == 0) {
      continue;
    }
    json::Value je = json::Value::object();
    je["name"] = e.name;
    je["read_attempts"] = e.read_attempts;
    je["retries"] = e.retries;
    je["wraps_corrected"] = e.wraps_corrected;
    je["disposition"] = vpapi::to_string(e.disposition);
    json::Value jf = json::Value::array();
    for (const std::uint64_t f : e.faults) jf.push_back(f);
    je["faults"] = std::move(jf);
    events.push_back(std::move(je));
  }
  v["events"] = std::move(events);
  return v;
}

vpapi::CollectionReport collection_report_from_json(const json::Value& v) {
  vpapi::CollectionReport report;
  report.total_retries =
      static_cast<std::uint64_t>(v.at("total_retries").as_number());
  report.start_retries =
      static_cast<std::uint64_t>(v.at("start_retries").as_number());
  for (const auto& n : v.at("quarantined").as_array()) {
    report.quarantined.push_back(n.as_string());
  }
  for (const auto& je : v.at("events").as_array()) {
    vpapi::EventReport e;
    e.name = je.at("name").as_string();
    e.read_attempts =
        static_cast<std::uint64_t>(je.at("read_attempts").as_number());
    e.retries = static_cast<std::uint64_t>(je.at("retries").as_number());
    e.wraps_corrected =
        static_cast<std::uint64_t>(je.at("wraps_corrected").as_number());
    const std::string d = je.at("disposition").as_string();
    e.disposition = d == "quarantined" ? vpapi::EventDisposition::quarantined
                    : d == "recovered" ? vpapi::EventDisposition::recovered
                                       : vpapi::EventDisposition::clean;
    const auto& jf = je.at("faults").as_array();
    for (std::size_t i = 0; i < jf.size() && i < e.faults.size(); ++i) {
      e.faults[i] = static_cast<std::uint64_t>(jf[i].as_number());
    }
    report.events.push_back(std::move(e));
  }
  return report;
}

json::Value sample_trace_to_json(const vpapi::SampleTrace& trace) {
  json::Value v = json::Value::object();
  v["mode"] = std::string(vpapi::to_string(trace.mode));
  json::Value sched = json::Value::object();
  sched["kernel_span_ns"] = trace.schedule.kernel_span_ns;
  sched["period_ns"] = trace.schedule.period_ns;
  sched["short_period_ns"] = trace.schedule.short_period_ns;
  sched["dither"] = trace.schedule.dither;
  v["schedule"] = std::move(sched);
  v["kernels"] = trace.kernels;
  json::Value runs = json::Value::array();
  for (const auto& run : trace.runs) {
    json::Value jr = json::Value::object();
    jr["repetition"] = run.repetition;
    jr["run_id"] = run.run_id;
    json::Value evs = json::Value::array();
    for (const auto& n : run.events) evs.push_back(n);
    jr["events"] = std::move(evs);
    json::Value samples = json::Value::array();
    for (const auto& s : run.samples) {
      json::Value js = json::Value::object();
      js["t"] = s.t_ns;
      json::Value vals = json::Value::array();
      for (const double x : s.values) vals.push_back(x);
      js["values"] = std::move(vals);
      samples.push_back(std::move(js));
    }
    jr["samples"] = std::move(samples);
    runs.push_back(std::move(jr));
  }
  v["runs"] = std::move(runs);
  return v;
}

namespace {

/// Checked u64 field read: a negative or absurdly large number in a
/// hand-edited (or fuzzed) archive must surface as a typed error, never
/// reach the undefined double->unsigned cast.
std::uint64_t trace_u64(const json::Value& v, const char* what) {
  const double x = v.as_number();
  if (!(x >= 0.0) || x >= 1.8446744073709552e19) {
    throw std::invalid_argument(std::string("sample_trace: ") + what +
                                " out of range");
  }
  return static_cast<std::uint64_t>(x);
}

}  // namespace

vpapi::SampleTrace sample_trace_from_json(const json::Value& v) {
  vpapi::SampleTrace trace;
  trace.mode = vpapi::collection_mode_from_string(v.at("mode").as_string());
  const auto& sched = v.at("schedule");
  trace.schedule.kernel_span_ns =
      trace_u64(sched.at("kernel_span_ns"), "kernel_span_ns");
  trace.schedule.period_ns = trace_u64(sched.at("period_ns"), "period_ns");
  trace.schedule.short_period_ns =
      trace_u64(sched.at("short_period_ns"), "short_period_ns");
  trace.schedule.dither = sched.at("dither").as_bool();
  trace.schedule.validate();
  trace.kernels =
      static_cast<std::size_t>(trace_u64(v.at("kernels"), "kernels"));
  for (const auto& jr : v.at("runs").as_array()) {
    vpapi::RunTrace run;
    run.repetition = trace_u64(jr.at("repetition"), "repetition");
    run.run_id = trace_u64(jr.at("run_id"), "run_id");
    for (const auto& n : jr.at("events").as_array()) {
      run.events.push_back(n.as_string());
    }
    for (const auto& js : jr.at("samples").as_array()) {
      vpapi::SamplePoint s;
      s.t_ns = trace_u64(js.at("t"), "sample t");
      const auto& vals = js.at("values").as_array();
      if (vals.size() != run.events.size()) {
        throw std::invalid_argument(
            "sample_trace: sample width != run event count");
      }
      for (const auto& x : vals) s.values.push_back(x.as_number());
      run.samples.push_back(std::move(s));
    }
    trace.runs.push_back(std::move(run));
  }
  return trace;
}

}  // namespace catalyst::core
