#include "core/io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/json.hpp"

namespace catalyst::core {

namespace {

constexpr const char* kFormatVersion = "catalyst-measurements-v1";

}  // namespace

MeasurementArchive make_archive(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const PipelineResult& result) {
  MeasurementArchive a;
  a.format_version = kFormatVersion;
  a.machine_name = machine.name();
  a.benchmark_name = benchmark.name;
  for (const auto& slot : benchmark.slots) a.slot_names.push_back(slot.name);
  a.basis_labels = benchmark.basis.labels;
  a.expectation = benchmark.basis.e;
  a.event_names = result.all_event_names;
  a.measurements = result.measurements;
  return a;
}

std::string save_archive(const MeasurementArchive& archive, int indent) {
  json::Value root = json::Value::object();
  root["format"] = archive.format_version.empty() ? kFormatVersion
                                                  : archive.format_version;
  root["machine"] = archive.machine_name;
  root["benchmark"] = archive.benchmark_name;

  json::Value slots = json::Value::array();
  for (const auto& s : archive.slot_names) slots.push_back(s);
  root["slots"] = std::move(slots);

  json::Value basis = json::Value::object();
  json::Value labels = json::Value::array();
  for (const auto& l : archive.basis_labels) labels.push_back(l);
  basis["labels"] = std::move(labels);
  json::Value e_rows = json::Value::array();
  for (linalg::index_t r = 0; r < archive.expectation.rows(); ++r) {
    json::Value row = json::Value::array();
    for (linalg::index_t c = 0; c < archive.expectation.cols(); ++c) {
      row.push_back(archive.expectation(r, c));
    }
    e_rows.push_back(std::move(row));
  }
  basis["e"] = std::move(e_rows);
  root["basis"] = std::move(basis);

  json::Value events = json::Value::array();
  for (const auto& n : archive.event_names) events.push_back(n);
  root["events"] = std::move(events);

  json::Value meas = json::Value::array();
  for (const auto& per_event : archive.measurements) {
    json::Value reps = json::Value::array();
    for (const auto& per_rep : per_event) {
      json::Value vec = json::Value::array();
      for (double v : per_rep) vec.push_back(v);
      reps.push_back(std::move(vec));
    }
    meas.push_back(std::move(reps));
  }
  root["measurements"] = std::move(meas);

  return json::dump(root, indent);
}

MeasurementArchive load_archive(const std::string& json_text) {
  const json::Value root = json::parse(json_text);
  MeasurementArchive a;
  a.format_version = root.at("format").as_string();
  if (a.format_version != kFormatVersion) {
    throw std::invalid_argument("load_archive: unsupported format '" +
                                a.format_version + "'");
  }
  a.machine_name = root.at("machine").as_string();
  a.benchmark_name = root.at("benchmark").as_string();
  for (const auto& s : root.at("slots").as_array()) {
    a.slot_names.push_back(s.as_string());
  }
  const auto& basis = root.at("basis");
  for (const auto& l : basis.at("labels").as_array()) {
    a.basis_labels.push_back(l.as_string());
  }
  const auto& e_rows = basis.at("e").as_array();
  const auto n_rows = static_cast<linalg::index_t>(e_rows.size());
  const auto n_cols = static_cast<linalg::index_t>(a.basis_labels.size());
  a.expectation = linalg::Matrix(n_rows, n_cols);
  for (linalg::index_t r = 0; r < n_rows; ++r) {
    const auto& row = e_rows[static_cast<std::size_t>(r)].as_array();
    if (static_cast<linalg::index_t>(row.size()) != n_cols) {
      throw std::invalid_argument("load_archive: ragged basis matrix");
    }
    for (linalg::index_t c = 0; c < n_cols; ++c) {
      a.expectation(r, c) = row[static_cast<std::size_t>(c)].as_number();
    }
  }
  if (n_rows != static_cast<linalg::index_t>(a.slot_names.size())) {
    throw std::invalid_argument("load_archive: basis rows != slot count");
  }
  for (const auto& n : root.at("events").as_array()) {
    a.event_names.push_back(n.as_string());
  }
  const auto& meas = root.at("measurements").as_array();
  if (meas.size() != a.event_names.size()) {
    throw std::invalid_argument(
        "load_archive: measurements/events count mismatch");
  }
  a.measurements.reserve(meas.size());
  std::size_t reps_expected = 0;
  for (const auto& per_event : meas) {
    std::vector<std::vector<double>> reps;
    for (const auto& per_rep : per_event.as_array()) {
      std::vector<double> vec;
      for (const auto& v : per_rep.as_array()) vec.push_back(v.as_number());
      if (vec.size() != a.slot_names.size()) {
        throw std::invalid_argument(
            "load_archive: measurement vector length != slot count");
      }
      reps.push_back(std::move(vec));
    }
    if (reps_expected == 0) reps_expected = reps.size();
    if (reps.size() != reps_expected || reps.empty()) {
      throw std::invalid_argument(
          "load_archive: inconsistent repetition counts");
    }
    a.measurements.push_back(std::move(reps));
  }
  return a;
}

PipelineResult analyze_archive(const MeasurementArchive& archive,
                               const std::vector<MetricSignature>& signatures,
                               const PipelineOptions& options) {
  return analyze_measurements(archive.expectation, archive.event_names,
                              archive.measurements, signatures, options);
}

std::string read_text_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void write_text_file(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace catalyst::core
