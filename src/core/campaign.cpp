#include "core/campaign.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "core/contract.hpp"
#include "core/json.hpp"
#include "core/noise.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"
#include "sync/annotations.hpp"
#include "sync/mutex.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define CATALYST_HAVE_FLOCK 1
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace catalyst::core {

const char* const kCheckpointFormat = "catalyst-checkpoint-v1";

namespace {

/// The set of checkpoint directories currently held by live leases.
struct LeaseRegistry {
  sync::Mutex mutex{"core.campaign.checkpoint_dirs"};
  std::unordered_set<std::string> active CATALYST_GUARDED_BY(mutex);
};

LeaseRegistry& lease_registry() noexcept {
  // Leaked: a lease may be released during static destruction.
  static LeaseRegistry* registry = new LeaseRegistry;
  return *registry;
}

std::string lease_file_path(const std::string& directory) {
  return directory + "/.catalyst-lease";
}

#if CATALYST_HAVE_FLOCK
/// Opens the lease file and takes the non-blocking exclusive flock.
/// Returns the locked fd, -1 if another process holds the lock, or throws
/// if the lease file cannot even be opened (unwritable directory).
int acquire_lease_lock(const std::string& directory) {
  std::error_code ec;  // Best effort; open() below reports the real error.
  std::filesystem::create_directories(directory, ec);
  const std::string path = lease_file_path(directory);
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint lease: cannot open '" + path + "'");
  }
  if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}
#endif

}  // namespace

CheckpointDirLease::CheckpointDirLease(std::string directory)
    : directory_(std::move(directory)) {
  LeaseRegistry& reg = lease_registry();
  {
    const sync::LockGuard lock(reg.mutex);
    if (!reg.active.insert(directory_).second) {
      throw std::runtime_error(
          "checkpoint directory '" + directory_ +
          "' is already in use by another campaign in this process");
    }
  }
#if CATALYST_HAVE_FLOCK
  try {
    lock_fd_ = acquire_lease_lock(directory_);
  } catch (...) {
    const sync::LockGuard lock(reg.mutex);
    reg.active.erase(directory_);
    throw;
  }
  if (lock_fd_ < 0) {
    {
      const sync::LockGuard lock(reg.mutex);
      reg.active.erase(directory_);
    }
    throw std::runtime_error(
        "checkpoint directory '" + directory_ +
        "' is already in use by another process (lease file '" +
        lease_file_path(directory_) + "' is locked)");
  }
#endif
}

CheckpointDirLease::~CheckpointDirLease() {
#if CATALYST_HAVE_FLOCK
  if (lock_fd_ >= 0) {
    // close() drops the flock with it; no explicit LOCK_UN needed.
    ::close(lock_fd_);
    lock_fd_ = -1;
  }
#endif
  LeaseRegistry& reg = lease_registry();
  const sync::LockGuard lock(reg.mutex);
  reg.active.erase(directory_);
}

bool checkpoint_dir_locked(const std::string& directory) {
#if CATALYST_HAVE_FLOCK
  const std::string path = lease_file_path(directory);
  const int fd = ::open(path.c_str(), O_RDWR | O_CLOEXEC);
  if (fd < 0) return false;  // No lease file => nobody can hold its lock.
  const bool locked = ::flock(fd, LOCK_EX | LOCK_NB) != 0;
  ::close(fd);  // Releases the probe lock if we won it.
  return locked;
#else
  (void)directory;
  return false;
#endif
}

std::string campaign_config_key(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const CampaignOptions& options) {
  std::ostringstream os;
  os << machine.name() << '|' << benchmark.name
     << "|reps=" << options.pipeline.repetitions
     << "|bthreads=" << benchmark.slots.front().thread_activities.size()
     << "|slots=" << benchmark.slots.size()
     << "|events=" << machine.events().size() << "|plan="
     << (options.fault_plan != nullptr ? faults::describe(*options.fault_plan)
                                       : std::string("off"))
     << "|max_retries=" << options.resilience.max_retries;
  if (options.collection_mode != vpapi::CollectionMode::counting) {
    // Counting campaigns keep the historical key byte-for-byte; sampling
    // knobs only appear when they actually shape the data.
    os << "|mode=" << vpapi::to_string(options.collection_mode)
       << "|span=" << options.sample_schedule.kernel_span_ns
       << "|period=" << options.sample_schedule.period_ns
       << "|short=" << options.sample_schedule.short_period_ns
       << "|dither=" << (options.sample_schedule.dither ? 1 : 0);
  }
  return os.str();
}

namespace {

/// One completed batch: repetition r's thread-median, normalized readings
/// for the events that survived it.
struct Batch {
  std::vector<std::string> events;  ///< Kept events, machine order.
  /// measurements[e][k]: thread-median, normalized reading.
  std::vector<std::vector<double>> measurements;
  std::vector<std::string> quarantined;  ///< This batch's casualties.
  vpapi::CollectionReport report;        ///< Merged across benchmark threads.
  /// Sampling/strobed modes only: the per-run sample traces behind this
  /// batch's measurements, benchmark-thread order.  Never checkpointed
  /// (checkpointing is counting-only).
  std::vector<vpapi::RunTrace> traces;
};

std::string checkpoint_path(const std::string& directory, std::size_t batch) {
  std::ostringstream os;
  os << directory << "/batch-" << batch << ".json";
  return os.str();
}

/// Additively folds `src` (possibly sparse, e.g. loaded from JSON) into the
/// per-name accumulator map.  Dispositions are resolved later, from the
/// campaign-wide quarantine union.
void merge_report_into(
    std::unordered_map<std::string, vpapi::EventReport>& by_name,
    const vpapi::CollectionReport& src) {
  for (const auto& e : src.events) {
    vpapi::EventReport& acc = by_name[e.name];
    acc.name = e.name;
    acc.read_attempts += e.read_attempts;
    acc.retries += e.retries;
    acc.wraps_corrected += e.wraps_corrected;
    for (std::size_t i = 0; i < acc.faults.size(); ++i) {
      acc.faults[i] += e.faults[i];
    }
  }
}

json::Value batch_to_json(const Batch& batch, const std::string& config_key,
                          std::size_t index) {
  json::Value root = json::Value::object();
  root["format"] = kCheckpointFormat;
  root["config"] = config_key;
  root["batch"] = static_cast<double>(index);
  json::Value events = json::Value::array();
  for (const auto& n : batch.events) events.push_back(n);
  root["events"] = std::move(events);
  json::Value meas = json::Value::array();
  for (const auto& per_event : batch.measurements) {
    json::Value row = json::Value::array();
    for (double v : per_event) row.push_back(v);
    meas.push_back(std::move(row));
  }
  root["measurements"] = std::move(meas);
  json::Value q = json::Value::array();
  for (const auto& n : batch.quarantined) q.push_back(n);
  root["quarantined"] = std::move(q);
  root["report"] = collection_report_to_json(batch.report);
  return root;
}

/// Parses and validates one checkpoint file's text.  Throws (JsonError or
/// std::invalid_argument) on anything suspicious; the caller treats every
/// throw as "batch not done" and re-collects.
Batch batch_from_json(const std::string& text, const std::string& config_key,
                      std::size_t index, std::size_t n_slots) {
  const json::Value root = json::parse(text);
  if (root.at("format").as_string() != kCheckpointFormat) {
    throw std::invalid_argument("checkpoint: unsupported format");
  }
  if (root.at("config").as_string() != config_key) {
    throw std::invalid_argument("checkpoint: campaign config mismatch");
  }
  if (static_cast<std::size_t>(root.at("batch").as_number()) != index) {
    throw std::invalid_argument("checkpoint: batch index mismatch");
  }
  Batch b;
  for (const auto& n : root.at("events").as_array()) {
    b.events.push_back(n.as_string());
  }
  const auto& meas = root.at("measurements").as_array();
  if (meas.size() != b.events.size()) {
    throw std::invalid_argument("checkpoint: measurements/events mismatch");
  }
  for (const auto& row : meas) {
    std::vector<double> vec;
    for (const auto& v : row.as_array()) vec.push_back(v.as_number());
    if (vec.size() != n_slots) {
      throw std::invalid_argument("checkpoint: measurement row width");
    }
    b.measurements.push_back(std::move(vec));
  }
  for (const auto& n : root.at("quarantined").as_array()) {
    b.quarantined.push_back(n.as_string());
  }
  b.report = collection_report_from_json(root.at("report"));
  return b;
}

/// Collects batch `r` live: one resilient collection per benchmark thread
/// at the repetition offsets the uninterrupted campaign would use, then the
/// thread-median + normalization of run_pipeline stages 2-3.
Batch collect_batch(const pmu::Machine& machine,
                    const cat::Benchmark& benchmark,
                    const std::vector<std::string>& all_events,
                    const std::vector<std::vector<pmu::Activity>>& thread_acts,
                    const std::vector<double>& inv_normalizer, std::size_t r,
                    const CampaignOptions& options) {
  const std::size_t n_threads = thread_acts.size();
  const std::size_t n_slots = benchmark.slots.size();
  const bool sampled =
      options.collection_mode != vpapi::CollectionMode::counting;

  Batch batch;
  std::vector<vpapi::CollectionResult> thread_data(n_threads);
  std::vector<vpapi::CollectionReport> thread_reports;
  std::unordered_set<std::string> quarantined_set;
  for (std::size_t t = 0; t < n_threads; ++t) {
    if (sampled) {
      vpapi::SampledCollectionResult sr = vpapi::collect_sampled(
          machine, all_events, thread_acts[t], /*repetitions=*/1,
          options.collection_mode, options.sample_schedule,
          options.resilience.threads, options.sample_clock,
          /*repetition_offset=*/r * n_threads + t);
      thread_data[t] = std::move(sr.data);
      for (auto& run : sr.trace.runs) batch.traces.push_back(std::move(run));
    } else {
      vpapi::ResilientCollectionResult rr = vpapi::collect_resilient(
          machine, all_events, thread_acts[t], /*repetitions=*/1,
          options.fault_plan, options.resilience,
          /*repetition_offset=*/r * n_threads + t);
      for (const auto& q : rr.report.quarantined) {
        quarantined_set.insert(q);
      }
      thread_data[t] = std::move(rr.data);
      thread_reports.push_back(std::move(rr.report));
    }
  }

  for (const auto& name : all_events) {
    if (quarantined_set.count(name) == 0) {
      batch.events.push_back(name);
    } else {
      batch.quarantined.push_back(name);
    }
  }

  // Per-thread row index of every kept event (rows of quarantined events
  // are absent from a thread's data, shifting the ones after them).
  std::vector<std::unordered_map<std::string, std::size_t>> row_of(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    const auto& names = thread_data[t].event_names;
    for (std::size_t e = 0; e < names.size(); ++e) row_of[t][names[e]] = e;
  }

  batch.measurements.assign(batch.events.size(),
                            std::vector<double>(n_slots, 0.0));
  std::vector<double> thread_vals(n_threads);
  for (std::size_t e = 0; e < batch.events.size(); ++e) {
    for (std::size_t k = 0; k < n_slots; ++k) {
      for (std::size_t t = 0; t < n_threads; ++t) {
        const auto it = row_of[t].find(batch.events[e]);
        CATALYST_ENSURE(it != row_of[t].end(),
                        "collect_batch: kept event missing from a thread's "
                        "data");
        thread_vals[t] =
            thread_data[t].repetitions[0].values[it->second][k];
      }
      const double med =
          n_threads == 1 ? thread_vals[0] : median(thread_vals);
      batch.measurements[e][k] = med * inv_normalizer[k];
    }
  }

  std::unordered_map<std::string, vpapi::EventReport> by_name;
  for (const auto& rt : thread_reports) {
    merge_report_into(by_name, rt);
    batch.report.total_retries += rt.total_retries;
    batch.report.start_retries += rt.start_retries;
  }
  for (const auto& name : all_events) {
    const auto it = by_name.find(name);
    vpapi::EventReport e = it != by_name.end() ? it->second
                                               : vpapi::EventReport{};
    e.name = name;
    e.disposition = quarantined_set.count(name) != 0
                        ? vpapi::EventDisposition::quarantined
                    : e.total_faults() != 0 || e.retries != 0 ||
                            e.wraps_corrected != 0
                        ? vpapi::EventDisposition::recovered
                        : vpapi::EventDisposition::clean;
    batch.report.events.push_back(std::move(e));
  }
  batch.report.quarantined = batch.quarantined;
  return batch;
}

}  // namespace

CampaignResult run_campaign(const pmu::Machine& machine,
                            const cat::Benchmark& benchmark,
                            const std::vector<MetricSignature>& signatures,
                            const CampaignOptions& options) {
  CATALYST_REQUIRE_AS(options.pipeline.repetitions >= 2, std::invalid_argument,
                      "run_campaign: need >= 2 repetitions for the RNMSE "
                      "filter");
  CATALYST_REQUIRE_AS(!benchmark.slots.empty(), std::invalid_argument,
                      "run_campaign: benchmark has no slots");
  benchmark.validate();
  CATALYST_REQUIRE_AS(!machine.events().empty(), std::invalid_argument,
                      "run_campaign: machine publishes no events");
  const bool sampled =
      options.collection_mode != vpapi::CollectionMode::counting;
  if (sampled) {
    options.sample_schedule.validate();
    CATALYST_REQUIRE_AS(
        options.fault_plan == nullptr || !options.fault_plan->enabled(),
        std::invalid_argument,
        "run_campaign: fault injection is counting-mode only (the sampling "
        "collector has no per-kernel retry point)");
    CATALYST_REQUIRE_AS(
        options.checkpoint.directory.empty(), std::invalid_argument,
        "run_campaign: checkpointing is counting-mode only (sample traces "
        "do not fit the checkpoint format)");
  }
  const std::size_t n_threads =
      benchmark.slots.front().thread_activities.size();
  for (const auto& slot : benchmark.slots) {
    CATALYST_REQUIRE_AS(slot.thread_activities.size() == n_threads,
                        std::invalid_argument,
                        "run_campaign: inconsistent thread counts across "
                        "slots");
  }

  const std::vector<std::string> all_events = machine.event_names();
  const std::size_t n_slots = benchmark.slots.size();
  std::vector<std::vector<pmu::Activity>> thread_acts(n_threads);
  for (std::size_t t = 0; t < n_threads; ++t) {
    thread_acts[t].reserve(n_slots);
    for (const auto& slot : benchmark.slots) {
      thread_acts[t].push_back(slot.thread_activities[t]);
    }
  }
  std::vector<double> inv_normalizer(n_slots);
  for (std::size_t k = 0; k < n_slots; ++k) {
    inv_normalizer[k] = 1.0 / benchmark.slots[k].normalizer;
  }

  const std::string config_key =
      campaign_config_key(machine, benchmark, options);
  const bool checkpointing = !options.checkpoint.directory.empty();
  std::optional<CheckpointDirLease> lease;
  if (checkpointing) {
    lease.emplace(options.checkpoint.directory);
    std::filesystem::create_directories(options.checkpoint.directory);
  }

  CampaignResult out;
  out.batches_total = options.pipeline.repetitions;
  obs::Span collect_span("stage.collect");
  collect_span.arg("batches", out.batches_total);
  collect_span.arg("checkpointing", checkpointing);
  std::vector<Batch> batches;
  batches.reserve(out.batches_total);
  for (std::size_t r = 0; r < out.batches_total; ++r) {
    obs::Span batch_span("campaign.batch");
    batch_span.arg("batch", r);
    bool resumed = false;
    if (checkpointing && options.checkpoint.resume) {
      obs::Span load_span("campaign.checkpoint.load");
      load_span.arg("batch", r);
      const std::string path =
          checkpoint_path(options.checkpoint.directory, r);
      try {
        batches.push_back(
            batch_from_json(read_text_file(path), config_key, r, n_slots));
        resumed = true;
      } catch (const std::exception&) {
        // Missing, truncated, corrupt, or mismatched checkpoint: the batch
        // is simply not done yet.  Re-collecting it is always safe because
        // readings are pure functions of their coordinates.
      }
      load_span.arg("hit", resumed);
    }
    if (!resumed) {
      batches.push_back(collect_batch(machine, benchmark, all_events,
                                      thread_acts, inv_normalizer, r,
                                      options));
      if (checkpointing) {
        obs::Span write_span("campaign.checkpoint.write");
        write_span.arg("batch", r);
        write_text_file_atomic(
            checkpoint_path(options.checkpoint.directory, r),
            json::dump(batch_to_json(batches.back(), config_key, r)));
      }
    } else {
      ++out.batches_resumed;
    }
    batch_span.arg("resumed", resumed);
  }
  collect_span.end();
  obs::count(obs::names::kCampaignBatches, out.batches_total);
  obs::count(obs::names::kCampaignBatchesResumed, out.batches_resumed);
  obs::count(obs::names::kPipelineEventsMeasured, all_events.size());

  // --- merge: quarantine union, surviving events, report ---------------------
  std::unordered_set<std::string> quarantined_set;
  for (const auto& b : batches) {
    for (const auto& q : b.quarantined) quarantined_set.insert(q);
  }
  std::vector<std::string> final_events;
  std::vector<std::string> quarantined_ordered;
  for (const auto& name : all_events) {
    (quarantined_set.count(name) == 0 ? final_events : quarantined_ordered)
        .push_back(name);
  }

  std::vector<std::vector<std::vector<double>>> measurements(
      final_events.size(),
      std::vector<std::vector<double>>(out.batches_total));
  for (std::size_t r = 0; r < out.batches_total; ++r) {
    std::unordered_map<std::string, std::size_t> row_of;
    for (std::size_t e = 0; e < batches[r].events.size(); ++e) {
      row_of[batches[r].events[e]] = e;
    }
    for (std::size_t e = 0; e < final_events.size(); ++e) {
      const auto it = row_of.find(final_events[e]);
      CATALYST_ENSURE(it != row_of.end(),
                      "run_campaign: surviving event missing from a batch");
      measurements[e][r] = batches[r].measurements[it->second];
    }
  }

  vpapi::CollectionReport merged;
  std::unordered_map<std::string, vpapi::EventReport> by_name;
  for (const auto& b : batches) {
    merge_report_into(by_name, b.report);
    merged.total_retries += b.report.total_retries;
    merged.start_retries += b.report.start_retries;
  }
  for (const auto& name : all_events) {
    const auto it = by_name.find(name);
    vpapi::EventReport e =
        it != by_name.end() ? it->second : vpapi::EventReport{};
    e.name = name;
    e.disposition = quarantined_set.count(name) != 0
                        ? vpapi::EventDisposition::quarantined
                    : e.total_faults() != 0 || e.retries != 0 ||
                            e.wraps_corrected != 0
                        ? vpapi::EventDisposition::recovered
                        : vpapi::EventDisposition::clean;
    merged.events.push_back(std::move(e));
  }
  merged.quarantined = quarantined_ordered;

  out.result = analyze_measurements(benchmark.basis.e, final_events,
                                    std::move(measurements), signatures,
                                    options.pipeline);
  if (collect_span.duration_ns() > 0) {
    out.result.stage_timings.insert(
        out.result.stage_timings.begin(),
        obs::StageTiming{"collect", collect_span.duration_ns()});
  }
  out.result.quarantined_events = quarantined_ordered;
  out.result.collection = merged;

  out.archive = make_archive(machine, benchmark, out.result);
  out.archive.quarantined = quarantined_ordered;
  out.archive.collection_report = std::move(merged);
  if (sampled) {
    out.archive.collection_mode = options.collection_mode;
    vpapi::SampleTrace trace;
    trace.mode = options.collection_mode;
    trace.schedule = options.sample_schedule;
    trace.kernels = n_slots;
    for (auto& b : batches) {
      for (auto& run : b.traces) trace.runs.push_back(std::move(run));
    }
    out.archive.sample_trace = std::move(trace);
  }
  if (!out.archive.quarantined.empty() ||
      out.archive.collection_report.has_value() || sampled) {
    // Let save_archive pick the v2 format marker.
    out.archive.format_version.clear();
  }
  return out;
}

PipelineResult run_pipeline_resilient(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options, const faults::FaultPlan* plan,
    const vpapi::ResilienceOptions& resilience) {
  CampaignOptions campaign;
  campaign.pipeline = options;
  campaign.fault_plan = plan;
  campaign.resilience = resilience;
  return std::move(run_campaign(machine, benchmark, signatures, campaign)
                       .result);
}

CampaignResult run_pipeline_sampled(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options, vpapi::CollectionMode mode,
    const vpapi::SampleSchedule& schedule, faults::Clock* clock) {
  CampaignOptions campaign;
  campaign.pipeline = options;
  campaign.collection_mode = mode;
  campaign.sample_schedule = schedule;
  campaign.sample_clock = clock;
  return run_campaign(machine, benchmark, signatures, campaign);
}

}  // namespace catalyst::core
