// catalyst/core -- PAPI-style preset generation.
//
// The paper's stated impact is automating what PAPI's developers do by
// hand: turning per-architecture raw-event combinations into portable
// preset definitions (PAPI_DP_OPS, PAPI_BR_MSP, ...).  This module converts
// pipeline metric definitions into presets, assigns canonical PAPI-like
// symbols, and serializes the result in two formats: a pipe-separated
// table (one preset per line) and JSON.  The catalyst::vpapi session can
// register these presets and read them like events.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "vpapi/vpapi.hpp"

namespace catalyst::core {

/// A portable preset: a named, rounded combination of raw events.
struct PresetDefinition {
  std::string symbol;       ///< e.g. "PAPI_DP_OPS".
  std::string description;  ///< Human-readable metric name.
  std::vector<MetricTerm> terms;  ///< Rounded, zero-free combination.
  double fitness = 0.0;     ///< Backward error of the underlying solve.
};

/// Canonical PAPI-like symbol for a known metric name ("DP Ops." ->
/// "PAPI_DP_OPS", "L1 Misses." -> "PAPI_L1_DCM", ...); nullopt for metrics
/// without a canonical symbol.
std::optional<std::string> canonical_preset_symbol(
    const std::string& metric_name);

/// Fallback symbol derived from the metric name (uppercased, punctuation
/// stripped, prefixed "CAT_"): "HP Add and Sub Ops." -> "CAT_HP_ADD_AND_SUB_OPS".
std::string derived_preset_symbol(const std::string& metric_name);

/// Builds a preset from a composable metric definition: rounds coefficients
/// (tolerance `round_tol`), drops zero terms, picks the canonical symbol or
/// the derived fallback.  Returns nullopt when the metric is not composable
/// (a preset must not exist on machines that cannot support it -- exactly
/// PAPI's behaviour for unavailable presets).
std::optional<PresetDefinition> make_preset(const MetricDefinition& metric,
                                            double round_tol = 0.05);

/// Builds presets for every composable metric of a pipeline run.
std::vector<PresetDefinition> make_presets(
    const std::vector<MetricDefinition>& metrics, double round_tol = 0.05);

/// Pipe-separated table, one preset per line:
///   SYMBOL|description|coeff*EVENT[+coeff*EVENT...]|fitness
std::string presets_to_table(const std::vector<PresetDefinition>& presets);

/// JSON array of {symbol, description, fitness, terms:[{event, coefficient}]}.
std::string presets_to_json(const std::vector<PresetDefinition>& presets);

/// Converts a preset into the vpapi derived-event form.
vpapi::DerivedEvent to_derived_event(const PresetDefinition& preset);

/// Registers every preset into a vpapi session; returns the number
/// successfully registered (duplicates / invalid ones are skipped).
std::size_t register_presets(vpapi::Session& session,
                             const std::vector<PresetDefinition>& presets);

}  // namespace catalyst::core
