// catalyst/core -- checkpointed, fault-tolerant collection campaigns.
//
// A campaign is run_pipeline() rebuilt on the resilient collector: the
// collection stage is split into per-repetition BATCHES, each batch is
// collected with vpapi::collect_resilient (retry / quarantine / wrap
// correction, see vpapi/collector.hpp) and optionally persisted as an
// atomic JSON checkpoint, so an interrupted campaign can `--resume` from
// the last completed batch without re-executing finished work.
//
// Bit-identity guarantees (all consequences of counter-keyed noise/faults):
//   * faults disabled: measurements identical to run_pipeline();
//   * interrupted + resumed: identical to the uninterrupted campaign --
//     batch b, benchmark-thread t collects with repetition_offset
//     b*n_threads + t, reproducing the exact run ids of one long run;
//   * any worker thread count: per-unit decisions are pure functions of
//     coordinates and the cross-batch merge is additive/set-union.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "cat/benchmark.hpp"
#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "faults/faults.hpp"
#include "pmu/machine.hpp"
#include "vpapi/collector.hpp"

namespace catalyst::core {

/// Exclusive claim on a checkpoint directory.  Two campaigns checkpointing
/// into the same directory would interleave batch-NNN.json files from
/// different configurations; the second writer's files win the rename race
/// and the first campaign resumes from foreign batches.  The lease makes
/// that a loud error instead: acquiring a directory another live lease
/// holds throws std::runtime_error.  run_campaign() takes one for the
/// duration of the collection loop whenever checkpointing is on; catalystd
/// holds one for its service checkpoint directory for its whole lifetime.
///
/// Two layers, so the guarantee spans processes:
///   * in-process registry (fast path, precise error message) -- catches
///     two campaigns inside one process;
///   * OS-level flock(2) on `<directory>/.catalyst-lease` -- catches a
///     daemon and a concurrent CLI run, or two daemons, sharing the
///     directory.  flock conflicts between distinct open file
///     descriptions, so even same-process double-acquisition would fail at
///     this layer if the registry were bypassed.  The lock dies with the
///     process (kill -9 included), so no stale-lease recovery is needed.
class CheckpointDirLease {
 public:
  /// Claims `directory` (keyed verbatim -- callers pass the same string
  /// they pass CheckpointOptions; the directory is created if missing so
  /// the lease file has somewhere to live).  Throws std::runtime_error if
  /// any other live lease -- in this process or any other -- holds it.
  explicit CheckpointDirLease(std::string directory);
  ~CheckpointDirLease();

  CheckpointDirLease(const CheckpointDirLease&) = delete;
  CheckpointDirLease& operator=(const CheckpointDirLease&) = delete;

  const std::string& directory() const noexcept { return directory_; }

 private:
  std::string directory_;
  int lock_fd_ = -1;  ///< flock'd lease-file fd; -1 when flock unavailable.
};

/// True when some live lease (any process) holds `directory`'s OS-level
/// lock.  Probes with a fresh open + flock(LOCK_NB) and releases
/// immediately; never blocks.  The cross-process death test calls this from
/// a forked child to prove the lock is visible outside the owning process.
/// Always false on platforms without flock.
bool checkpoint_dir_locked(const std::string& directory);

/// Where (and whether) to persist per-batch checkpoints.
struct CheckpointOptions {
  /// Directory for batch-NNN.json files; empty disables checkpointing.
  /// Created if missing.  Every file is written atomically
  /// (write-temp-then-rename), so a crash never leaves a torn checkpoint.
  std::string directory;
  /// Reuse completed, matching checkpoints instead of re-collecting.
  /// Corrupt / truncated / mismatched files are treated as not-done.
  bool resume = false;
};

/// Everything a campaign needs beyond the machine + benchmark pair.
struct CampaignOptions {
  PipelineOptions pipeline;
  /// Fault injection; nullptr (or a disabled plan) runs clean.  Only the
  /// counting mode supports fault injection: the sampling collector reads
  /// running counters on a timer and has no per-kernel retry point.
  const faults::FaultPlan* fault_plan = nullptr;
  vpapi::ResilienceOptions resilience;
  /// Checkpointing is counting-only for now: a sampling batch's trace does
  /// not fit the catalyst-checkpoint-v1 row format, and silently dropping
  /// it on resume would desynchronize the archive from the measurements.
  /// run_campaign throws std::invalid_argument on a non-counting mode with
  /// a checkpoint directory (or an enabled fault plan).
  CheckpointOptions checkpoint;
  /// How the collection stage reads the counters (vpapi/sampling.hpp).
  vpapi::CollectionMode collection_mode = vpapi::CollectionMode::counting;
  /// Virtual-time schedule for the sampling/strobed modes (ignored when
  /// counting).
  vpapi::SampleSchedule sample_schedule;
  /// Paces sampling-mode collection in virtual time; nullptr skips pacing
  /// (measured values never depend on the clock).
  faults::Clock* sample_clock = nullptr;
};

struct CampaignResult {
  /// Full analysis over the surviving (non-quarantined) events, with
  /// `quarantined_events` and `collection` populated.
  PipelineResult result;
  /// v2 measurement archive of the same data, ready to save.
  MeasurementArchive archive;
  std::size_t batches_total = 0;
  std::size_t batches_resumed = 0;  ///< Batches satisfied from checkpoints.
};

/// The checkpoint format marker ("catalyst-checkpoint-v1").
extern const char* const kCheckpointFormat;

/// Identity of a campaign's configuration; resume refuses checkpoints whose
/// stored key differs (different machine, benchmark, repetition count,
/// fault plan, ... would make the cached batch silently wrong).
std::string campaign_config_key(const pmu::Machine& machine,
                                const cat::Benchmark& benchmark,
                                const CampaignOptions& options);

/// Runs the collection in per-repetition batches (checkpointing + resuming
/// per CampaignOptions::checkpoint), merges them, and runs the analysis
/// stages on the surviving events.  Throws std::runtime_error (via
/// analyze_measurements) if every event ends up quarantined.
CampaignResult run_campaign(const pmu::Machine& machine,
                            const cat::Benchmark& benchmark,
                            const std::vector<MetricSignature>& signatures,
                            const CampaignOptions& options = {});

/// run_pipeline() on the resilient collector, no checkpointing: quarantined
/// events are dropped before the noise filter and the collection report is
/// attached to the result.  With `plan` null/disabled this is bit-identical
/// to run_pipeline().
PipelineResult run_pipeline_resilient(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options = {},
    const faults::FaultPlan* plan = nullptr,
    const vpapi::ResilienceOptions& resilience = {});

/// run_pipeline() on the sampling collector: measurements come from the
/// per-phase synthesis of each run's sample trace instead of boundary
/// reads, and the returned archive carries the mode + full trace (v2).
/// `mode` = counting degenerates to the plain campaign (bit-identical
/// archive to run_pipeline()).  No fault plan, no checkpointing.
CampaignResult run_pipeline_sampled(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricSignature>& signatures,
    const PipelineOptions& options, vpapi::CollectionMode mode,
    const vpapi::SampleSchedule& schedule = {},
    faults::Clock* clock = nullptr);

}  // namespace catalyst::core
