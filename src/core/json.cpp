#include "core/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>

namespace catalyst::core::json {

// --- accessors -----------------------------------------------------------------

namespace {

[[noreturn]] void wrong_type(const char* want, Value::Type got) {
  static const char* names[] = {"null", "boolean", "number",
                                "string", "array", "object"};
  throw JsonError(std::string("expected ") + want + ", value is " +
                  names[static_cast<int>(got)]);
}

}  // namespace

bool Value::as_bool() const {
  if (type_ != Type::boolean) wrong_type("boolean", type_);
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::number) wrong_type("number", type_);
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::string) wrong_type("string", type_);
  return str_;
}

const std::vector<Value>& Value::as_array() const {
  if (type_ != Type::array) wrong_type("array", type_);
  return arr_;
}

const std::map<std::string, Value>& Value::as_object() const {
  if (type_ != Type::object) wrong_type("object", type_);
  return obj_;
}

void Value::push_back(Value v) {
  if (type_ != Type::array) wrong_type("array", type_);
  arr_.push_back(std::move(v));
}

const Value& Value::at(std::size_t i) const {
  if (type_ != Type::array) wrong_type("array", type_);
  if (i >= arr_.size()) throw JsonError("array index out of range");
  return arr_[i];
}

std::size_t Value::size() const {
  if (type_ == Type::array) return arr_.size();
  if (type_ == Type::object) return obj_.size();
  wrong_type("array or object", type_);
}

Value& Value::operator[](const std::string& key) {
  if (type_ == Type::null) type_ = Type::object;  // convenient building
  if (type_ != Type::object) wrong_type("object", type_);
  return obj_[key];
}

const Value& Value::at(const std::string& key) const {
  if (type_ != Type::object) wrong_type("object", type_);
  auto it = obj_.find(key);
  if (it == obj_.end()) throw JsonError("missing key: " + key);
  return it->second;
}

bool Value::contains(const std::string& key) const {
  return type_ == Type::object && obj_.count(key) > 0;
}

bool operator==(const Value& a, const Value& b) {
  if (a.type_ != b.type_) return false;
  switch (a.type_) {
    case Value::Type::null: return true;
    case Value::Type::boolean: return a.bool_ == b.bool_;
    case Value::Type::number: return a.num_ == b.num_;
    case Value::Type::string: return a.str_ == b.str_;
    case Value::Type::array: return a.arr_ == b.arr_;
    case Value::Type::object: return a.obj_ == b.obj_;
  }
  return false;
}

// --- parser ---------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonError(why + " at byte offset " + std::to_string(pos_), pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (advance() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool literal(const char* word) {
    const std::size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Value parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Value(parse_string());
      case 't':
        if (literal("true")) return Value(true);
        fail("bad literal");
      case 'f':
        if (literal("false")) return Value(false);
        fail("bad literal");
      case 'n':
        if (literal("null")) return Value(nullptr);
        fail("bad literal");
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = advance();
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          // ASCII-only \u escapes; everything else is rejected loudly
          // rather than silently mangled.
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = advance();
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += 10u + static_cast<unsigned>(h - 'a');
            else if (h >= 'A' && h <= 'F') code += 10u + static_cast<unsigned>(h - 'A');
            else fail("bad \\u escape");
          }
          if (code > 0x7F) fail("non-ASCII \\u escapes are unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double out = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, out);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("bad number");
    }
    return Value(out);
  }

  Value parse_array() {
    expect('[');
    Value out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return out;
    }
    for (;;) {
      out.push_back(parse_value());
      skip_ws();
      const char c = advance();
      if (c == ']') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or ']'");
      }
    }
  }

  Value parse_object() {
    expect('{');
    Value out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      out[key] = parse_value();
      skip_ws();
      const char c = advance();
      if (c == '}') return out;
      if (c != ',') {
        --pos_;
        fail("expected ',' or '}'");
      }
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

// --- writer ---------------------------------------------------------------------

namespace {

void write_string(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(c));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    throw JsonError("cannot serialize non-finite number");
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    os << static_cast<long long>(v);
  } else {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    os << buf;
  }
}

void write_value(std::ostringstream& os, const Value& v, int indent,
                 int depth) {
  const std::string pad =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          (static_cast<std::size_t>(depth) + 1),
                                      ' ')
                 : "";
  const std::string pad_close =
      indent > 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                          static_cast<std::size_t>(depth),
                                      ' ')
                 : "";
  switch (v.type()) {
    case Value::Type::null: os << "null"; break;
    case Value::Type::boolean: os << (v.as_bool() ? "true" : "false"); break;
    case Value::Type::number: write_number(os, v.as_number()); break;
    case Value::Type::string: write_string(os, v.as_string()); break;
    case Value::Type::array: {
      const auto& arr = v.as_array();
      if (arr.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < arr.size(); ++i) {
        os << (i == 0 ? "" : ",") << pad;
        write_value(os, arr[i], indent, depth + 1);
      }
      os << pad_close << ']';
      break;
    }
    case Value::Type::object: {
      const auto& obj = v.as_object();
      if (obj.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, val] : obj) {
        os << (first ? "" : ",") << pad;
        write_string(os, key);
        os << (indent > 0 ? ": " : ":");
        write_value(os, val, indent, depth + 1);
        first = false;
      }
      os << pad_close << '}';
      break;
    }
  }
}

}  // namespace

std::string dump(const Value& value, int indent) {
  std::ostringstream os;
  write_value(os, value, indent, 0);
  return os.str();
}

}  // namespace catalyst::core::json
