#include "core/signatures.hpp"

#include <stdexcept>

namespace catalyst::core {

std::vector<MetricSignature> cpu_flops_signatures() {
  // Table I, verbatim.  Basis order:
  // SSCAL S128 S256 S512 | DSCAL D128 D256 D512 |
  // SSCAL_FMA S128_FMA S256_FMA S512_FMA |
  // DSCAL_FMA D128_FMA D256_FMA D512_FMA
  return {
      {"SP Instrs.",
       {1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0}},
      {"SP Ops.",
       {1, 4, 8, 16, 0, 0, 0, 0, 2, 8, 16, 32, 0, 0, 0, 0}},
      {"SP FMA Instrs.",
       {0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 0, 0, 0, 0}},
      {"DP Instrs.",
       {0, 0, 0, 0, 1, 1, 1, 1, 0, 0, 0, 0, 2, 2, 2, 2}},
      {"DP Ops.",
       {0, 0, 0, 0, 1, 2, 4, 8, 0, 0, 0, 0, 2, 4, 8, 16}},
      {"DP FMA Instrs.",
       {0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2}},
  };
}

std::vector<MetricSignature> gpu_flops_signatures() {
  // Table II, verbatim.  Basis order:
  // AH AS AD | SH SS SD | MH MS MD | SQH SQS SQD | FH FS FD
  return {
      {"HP Add Ops.",
       {1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
      {"HP Sub Ops.",
       {0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
      {"HP Add and Sub Ops.",
       {1, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}},
      {"All HP Ops.",
       {1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0, 0}},
      {"All SP Ops.",
       {0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2, 0}},
      {"All DP Ops.",
       {0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0, 2}},
  };
}

std::vector<MetricSignature> branch_signatures() {
  // Table III, verbatim.  Basis order: CE CR T D M.
  return {
      {"Unconditional Branches.", {0, 0, 0, 1, 0}},
      {"Conditional Branches Taken.", {0, 0, 1, 0, 0}},
      {"Conditional Branches Not Taken.", {0, 1, -1, 0, 0}},
      {"Mispredicted Branches.", {0, 0, 0, 0, 1}},
      {"Correctly Predicted Branches.", {0, 1, 0, 0, -1}},
      {"Conditional Branches Retired.", {0, 1, 0, 0, 0}},
      {"Conditional Branches Executed.", {1, 0, 0, 0, 0}},
  };
}

std::vector<MetricSignature> dcache_signatures() {
  // Table IV, verbatim.  Basis order: L1DM L1DH L2DH L3DH.
  return {
      {"L1 Misses.", {1, 0, 0, 0}},
      {"L1 Hits.", {0, 1, 0, 0}},
      {"L1 Reads.", {1, 1, 0, 0}},
      {"L2 Hits.", {0, 0, 1, 0}},
      {"L2 Misses.", {1, 0, -1, 0}},
      {"L3 Hits.", {0, 0, 0, 1}},
  };
}

std::vector<MetricSignature> slice_signatures(
    const std::vector<MetricSignature>& signatures,
    const std::vector<std::string>& full_labels,
    const std::vector<std::string>& subset_labels) {
  std::vector<std::size_t> index;
  index.reserve(subset_labels.size());
  for (const auto& label : subset_labels) {
    bool found = false;
    for (std::size_t i = 0; i < full_labels.size(); ++i) {
      if (full_labels[i] == label) {
        index.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("slice_signatures: unknown label " + label);
    }
  }
  std::vector<MetricSignature> out;
  out.reserve(signatures.size());
  for (const auto& s : signatures) {
    if (s.coordinates.size() != full_labels.size()) {
      throw std::invalid_argument(
          "slice_signatures: signature/label dimension mismatch for " +
          s.name);
    }
    MetricSignature sliced{s.name, {}};
    sliced.coordinates.reserve(index.size());
    for (std::size_t i : index) sliced.coordinates.push_back(s.coordinates[i]);
    out.push_back(std::move(sliced));
  }
  return out;
}

std::vector<MetricSignature> icache_signatures() {
  // Basis order: L1IM L1IH L2IH.
  return {
      {"L1I Misses.", {1, 0, 0}},
      {"L1I Hits.", {0, 1, 0}},
      {"Instruction Fetches.", {1, 1, 0}},
      {"L2 Instruction Hits.", {0, 0, 1}},
      {"L2 Instruction Misses.", {1, 0, -1}},
  };
}

std::vector<MetricSignature> gpu_dcache_signatures() {
  // Basis order: TCCH TCCM.
  return {
      {"TCC Hits.", {1, 0}},
      {"TCC Misses.", {0, 1}},
      {"TCC Accesses.", {1, 1}},
      {"HBM Traffic Bytes.", {0, 64}},
  };
}

}  // namespace catalyst::core
