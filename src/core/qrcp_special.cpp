#include "core/qrcp_special.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "linalg/blas.hpp"
#include "linalg/householder.hpp"
#include "obs/names.hpp"
#include "obs/trace.hpp"

namespace catalyst::core {

double round_to_tolerance(double u, double alpha) {
  return alpha * std::floor(u / alpha + 0.5);
}

double score_entry(double v) {
  if (v == 0.0) return 0.0;
  if (v >= 1.0) return v;
  return 1.0 / v;
}

double column_score(std::span<const double> column, double alpha) {
  double score = 0.0;
  for (double u : column) {
    score += score_entry(std::fabs(round_to_tolerance(u, alpha)));
  }
  return score;
}

namespace {

// Per-column intrinsic properties, computed once on the ORIGINAL matrix:
// "closeness to the expectation basis" is a property of the event itself,
// not of its partially-orthogonalized residual -- otherwise a combination
// column (e.g. taken + unconditional) would masquerade as basis-aligned
// once some of its components have been eliminated.
struct ColumnTraits {
  double score = 0.0;  // Sc-sum of the alpha-rounded original column
  // 2-norm of the alpha-rounded original column.  Rounding the tie-break
  // norm keeps measurement noise from deciding between semantically
  // identical columns (two aliases of the same counter); exact ties then
  // fall back to input order, which is deterministic.
  double norm = 0.0;
};

// get_pivot of Algorithm 2: among the trailing columns [i, n), pick the one
// whose ORIGINAL column has the minimum score (ties -> smallest original
// norm, then first in input order).  A candidate is eligible only when the
// norm of its UPDATED trailing residual (rows [i, m) of the factored
// matrix) is at least beta: everything already explained by the selected
// events, or pure noise, is disregarded; -1 means no eligible candidate
// remains and the factorization terminates.
// A candidate under consideration: column position, its comparison key.
struct PivotCandidate {
  linalg::index_t j = -1;  // -1 = no eligible candidate
  double score = 0.0;
  double norm = 0.0;
  linalg::index_t orig = 0;
};

// The strict-improvement rule shared by the per-chunk scans and the final
// merge.  The key (score, norm, orig) has a UNIQUE minimum (orig is a
// permutation entry, hence distinct), so folding candidates in any grouping
// that preserves the comparison yields the same winner as one serial scan.
bool improves(const PivotCandidate& t, const PivotCandidate& best) {
  if (best.j == -1) return true;
  return t.score < best.score ||
         (t.score == best.score &&
          (t.norm < best.norm ||
           (t.norm == best.norm && t.orig < best.orig)));
}

linalg::index_t get_pivot(const linalg::Matrix& a,
                          const std::vector<ColumnTraits>& traits,
                          const std::vector<linalg::index_t>& perm,
                          linalg::index_t i, double alpha, double beta,
                          PivotRule rule, int threads) {
  const linalg::index_t m = a.rows();
  const linalg::index_t n = a.cols();
  // Candidate norms and scores are evaluated per column on the worker pool;
  // each chunk reduces to its own best, the chunk bests merge in chunk
  // order.  Chunk boundaries depend only on (n - i, grain).
  constexpr std::size_t kGrain = 256;
  const auto total = static_cast<std::size_t>(n - i);
  const std::size_t n_chunks = total == 0 ? 0 : (total + kGrain - 1) / kGrain;
  std::vector<PivotCandidate> chunk_best(n_chunks);
  core::parallel_for_chunks(
      total, threads, kGrain, [&](std::size_t b, std::size_t e) {
        PivotCandidate best;
        for (std::size_t jj = b; jj < e; ++jj) {
          const linalg::index_t j = i + static_cast<linalg::index_t>(jj);
          const auto col = a.col(j);
          const auto tail = col.subspan(static_cast<std::size_t>(i),
                                        static_cast<std::size_t>(m - i));
          const double tail_norm = linalg::nrm2(tail);
          if (tail_norm < beta) continue;  // dependent or noise-level
          const linalg::index_t orig = perm[static_cast<std::size_t>(j)];
          PivotCandidate t;
          t.j = j;
          t.orig = orig;
          switch (rule) {
            case PivotRule::original_score:
              t.score = traits[static_cast<std::size_t>(orig)].score;
              t.norm = traits[static_cast<std::size_t>(orig)].norm;
              break;
            case PivotRule::updated_score:
              t.score = column_score(tail, alpha);
              t.norm = tail_norm;
              break;
            case PivotRule::max_norm:
              // Largest norm == smallest negated norm, reusing the min
              // search.
              t.score = -tail_norm;
              t.norm = tail_norm;
              break;
          }
          // Full ties (score and rounded norm) resolve to the smallest
          // ORIGINAL column index; the in-place column swaps scramble scan
          // order, so first-encountered would not be deterministic in input
          // terms.
          if (improves(t, best)) best = t;
        }
        chunk_best[b / kGrain] = best;
      });
  PivotCandidate best;
  for (const PivotCandidate& t : chunk_best) {
    if (t.j != -1 && improves(t, best)) best = t;
  }
  return best.j;
}

}  // namespace

SpecialQrcpResult specialized_qrcp(const linalg::Matrix& x, double alpha,
                                   PivotRule rule, int threads) {
  CATALYST_REQUIRE_AS(alpha > 0.0, std::invalid_argument,
                      "specialized_qrcp: alpha must be positive");
  CATALYST_ASSUME_FINITE_AS(x.data(), std::invalid_argument,
                            "specialized_qrcp: X has NaN/Inf entries");
  SpecialQrcpResult res;
  linalg::Matrix a = x;  // working copy, factored in place
  const linalg::index_t m = a.rows();
  const linalg::index_t n = a.cols();
  const linalg::index_t kmax = std::min(m, n);
  // beta = norm of the all-alpha vector of the full column length.
  const double beta = alpha * std::sqrt(static_cast<double>(m));

  std::vector<linalg::index_t> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), linalg::index_t{0});

  std::vector<ColumnTraits> traits(static_cast<std::size_t>(n));
  core::parallel_for_chunks(
      static_cast<std::size_t>(n), threads, 256,
      [&](std::size_t b, std::size_t e) {
        std::vector<double> rounded(static_cast<std::size_t>(m));
        for (std::size_t jj = b; jj < e; ++jj) {
          const auto j = static_cast<linalg::index_t>(jj);
          const auto col = x.col(j);
          for (linalg::index_t i = 0; i < m; ++i) {
            rounded[static_cast<std::size_t>(i)] =
                round_to_tolerance(col[static_cast<std::size_t>(i)], alpha);
          }
          traits[jj] = {column_score(col, alpha), linalg::nrm2(rounded)};
        }
      });

  for (linalg::index_t i = 0; i < kmax; ++i) {
    obs::Span pivot_span("qrcp.pivot");
    pivot_span.arg("i", i);
    const linalg::index_t pivot =
        get_pivot(a, traits, perm, i, alpha, beta, rule, threads);
    if (pivot == -1) break;
    const double pivot_score =
        traits[static_cast<std::size_t>(perm[static_cast<std::size_t>(pivot)])]
            .score;
    res.pivot_scores.push_back(pivot_score);
    pivot_span.arg("col", perm[static_cast<std::size_t>(pivot)]);
    pivot_span.arg("score", pivot_score);
    obs::observe(obs::names::kQrcpPivotScore, pivot_score);
    if (pivot != i) {
      a.swap_cols(i, pivot);
      std::swap(perm[static_cast<std::size_t>(i)],
                perm[static_cast<std::size_t>(pivot)]);
    }
    res.selected.push_back(perm[static_cast<std::size_t>(i)]);

    // Orthogonalization step: annihilate below the diagonal of column i and
    // update the trailing columns, so later scores and the beta cutoff act
    // on the component NOT already explained by the selected events.
    auto ci = a.col(i);
    auto head = ci.subspan(static_cast<std::size_t>(i));
    const linalg::Reflector h = linalg::make_reflector(head);
    auto v = head.subspan(1);
    linalg::apply_reflector_left(a, i, i + 1, v, h.tau, threads);
    ci[static_cast<std::size_t>(i)] = h.beta;
  }
  res.rank = static_cast<linalg::index_t>(res.selected.size());
  // Pivot-consistency postconditions: the selected original-column indices
  // must be unique, in range, and as many as the reported rank.
  std::vector<bool> seen(static_cast<std::size_t>(n), false);
  for (linalg::index_t j : res.selected) {
    CATALYST_ENSURE(j >= 0 && j < n,
                    "specialized_qrcp: selected column out of range");
    CATALYST_ENSURE(!seen[static_cast<std::size_t>(j)],
                    "specialized_qrcp: column selected twice");
    seen[static_cast<std::size_t>(j)] = true;
  }
  CATALYST_ENSURE(res.rank == static_cast<linalg::index_t>(res.selected.size()),
                  "specialized_qrcp: rank != number of selected columns");
  CATALYST_ENSURE(res.pivot_scores.size() == res.selected.size(),
                  "specialized_qrcp: one pivot score per selected column "
                  "required");
  return res;
}

}  // namespace catalyst::core
