// catalyst/core -- metric signatures (Tables I-IV of the paper).
//
// A signature expresses a desired performance metric in the coordinates of
// a benchmark's expectation basis.  Solving Xhat * y = s then yields the
// combination of real raw events that realizes the metric (Section VI).
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::core {

/// A metric and its coordinates in an expectation basis.
struct MetricSignature {
  std::string name;
  linalg::Vector coordinates;  ///< One entry per basis label.
};

/// Table I: CPU FLOPs signatures over the 16-dim basis
/// (SSCAL, S128, S256, S512, DSCAL..D512, SSCAL_FMA..S512_FMA,
///  DSCAL_FMA..D512_FMA).
std::vector<MetricSignature> cpu_flops_signatures();

/// Table II: GPU FLOPs signatures over the 15-dim basis
/// (AH, AS, AD, SH, SS, SD, MH, MS, MD, SQH, SQS, SQD, FH, FS, FD).
std::vector<MetricSignature> gpu_flops_signatures();

/// Table III: branching signatures over (CE, CR, T, D, M).
std::vector<MetricSignature> branch_signatures();

/// Table IV: data-cache signatures over (L1DM, L1DH, L2DH, L3DH).
std::vector<MetricSignature> dcache_signatures();

/// Instruction-cache signatures over (L1IM, L1IH, L2IH) -- the library's
/// fifth category (a CAT benchmark beyond the paper's four).
std::vector<MetricSignature> icache_signatures();

/// GPU data-movement signatures over (TCCH, TCCM) -- the sixth category.
/// "HBM Traffic Bytes" scales misses by the 64-byte line size.
std::vector<MetricSignature> gpu_dcache_signatures();

/// Re-expresses signatures defined over `full_labels` in the coordinate
/// order of `subset_labels` (a narrowed benchmark Space, e.g. a machine
/// without AVX-512).  Coordinates of dropped dimensions are simply removed:
/// instructions the hardware cannot execute contribute nothing on it.
/// Throws std::invalid_argument if a subset label is not in full_labels.
std::vector<MetricSignature> slice_signatures(
    const std::vector<MetricSignature>& signatures,
    const std::vector<std::string>& full_labels,
    const std::vector<std::string>& subset_labels);

}  // namespace catalyst::core
