#include "core/normalize.hpp"

#include <stdexcept>

#include "core/contract.hpp"
#include "core/parallel.hpp"

namespace catalyst::core {

NormalizationResult normalize_events(
    const linalg::Matrix& expectation,
    const std::vector<std::string>& event_names,
    const std::vector<std::vector<double>>& measurements,
    double max_backward_error, int threads) {
  CATALYST_REQUIRE_AS(event_names.size() == measurements.size(),
                      std::invalid_argument,
                      "normalize_events: names/measurements mismatch");
  CATALYST_REQUIRE_AS(max_backward_error >= 0.0, std::invalid_argument,
                      "normalize_events: negative threshold");
  NormalizationResult result;
  result.representations.resize(event_names.size());
  // One QR of E serves every event (the per-event solves used to refactor E
  // from scratch); each solve is arithmetically identical to
  // lstsq(expectation, me).  Events are independent units writing disjoint
  // slots -- the worker-pool determinism contract.
  const linalg::LstsqSolver solver(expectation);
  core::parallel_for(
      event_names.size(), threads, [&](std::size_t e) {
        const auto& me = measurements[e];
        CATALYST_REQUIRE_AS(
            static_cast<linalg::index_t>(me.size()) == expectation.rows(),
            std::invalid_argument,
            "normalize_events: measurement length != basis rows for " +
                event_names[e]);
        EventRepresentation rep;
        rep.event_name = event_names[e];
        const auto ls = solver.solve(me);
        rep.xe = ls.x;
        rep.backward_error = ls.backward_error;
        rep.representable = ls.backward_error <= max_backward_error;
        result.representations[e] = std::move(rep);
      });
  // Assemble X sequentially in input order (order must not depend on worker
  // completion order).
  std::vector<linalg::Vector> x_cols;
  for (const auto& rep : result.representations) {
    if (rep.representable) {
      x_cols.push_back(rep.xe);
      result.x_event_names.push_back(rep.event_name);
    }
  }
  if (!x_cols.empty()) {
    result.x = linalg::Matrix::from_columns(x_cols);
  } else {
    result.x = linalg::Matrix(expectation.cols(), 0);
  }
  return result;
}

}  // namespace catalyst::core
