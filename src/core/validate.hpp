// catalyst/core -- metric validation on held-out workloads.
//
// The pipeline fits metric definitions on the CAT microbenchmarks; this
// module checks them on *mixed* workloads the fit never saw (the
// "validating event combinations" direction of the paper's conclusion).
// For each workload the defined combination is read through a vpapi event
// set (so counter limits and noise apply, as they would for a user) and
// compared against the ground truth computed from the benchmark's ideal
// events.
#pragma once

#include "cat/mixed.hpp"
#include "core/metrics.hpp"
#include "core/presets.hpp"
#include "pmu/machine.hpp"

namespace catalyst::core {

/// One workload's verdict.
struct ValidationSample {
  std::string workload;
  double predicted = 0.0;   ///< Combination read from (noisy) counters.
  double ground_truth = 0.0;
  /// |predicted - truth| / max(|truth|, 1): relative when the truth is
  /// meaningful, absolute near zero.
  double relative_error = 0.0;
};

/// Validation outcome for one metric.
struct ValidationReport {
  std::string metric_name;
  std::vector<ValidationSample> samples;
  double max_relative_error = 0.0;
  double mean_relative_error = 0.0;
};

/// Validates one composed metric on the given workloads.
/// The combination is measured through a vpapi session (registered as a
/// preset, read per workload with per-workload noise coordinates).
/// `signature` must be the metric's coordinates over `benchmark`'s basis.
ValidationReport validate_metric(const pmu::Machine& machine,
                                 const cat::Benchmark& benchmark,
                                 const PresetDefinition& preset,
                                 std::span<const double> signature,
                                 const std::vector<cat::MixedWorkload>& mixes);

/// Convenience: validates every composable metric of a pipeline run on
/// freshly generated mixed workloads.
std::vector<ValidationReport> validate_all(
    const pmu::Machine& machine, const cat::Benchmark& benchmark,
    const std::vector<MetricDefinition>& metrics,
    const std::vector<MetricSignature>& signatures, std::size_t num_workloads,
    std::uint64_t seed);

}  // namespace catalyst::core
