// catalyst/contract -- repo-wide precondition / postcondition / invariant
// checking with a runtime-configurable violation policy.
//
// The analysis pipeline is only trustworthy if every stage preserves its
// numerical assumptions (finite measurement vectors, consistent shapes,
// QR pivot consistency, ...).  These macros give every subsystem one way to
// state those assumptions:
//
//   CATALYST_REQUIRE(cond, msg)        -- precondition on inputs
//   CATALYST_ENSURE(cond, msg)         -- postcondition on results
//   CATALYST_INVARIANT(cond, msg)      -- internal consistency mid-algorithm
//   CATALYST_ASSUME_FINITE(value, msg) -- no NaN/Inf in a scalar or range
//
// Each macro has an `_AS(cond, ExcType, msg)` variant that throws a caller
// chosen exception type under the throw policy, so migrated legacy checks
// keep their documented exception types (linalg::DimensionError,
// std::invalid_argument, cachesim::ConfigError, ...).  The `msg` expression
// is evaluated only on violation, so string building costs nothing on the
// success path.
//
// What happens on violation is decided at runtime (see ViolationPolicy):
//   * throw_exception  -- throw ExcType(message)               [default]
//   * abort_with_trace -- print message + stack trace, abort()
//   * log_and_continue -- print message to stderr, keep going
// The policy can also be set through the CATALYST_CONTRACT_POLICY
// environment variable ("throw", "abort", "log") before first use.
//
// Zero-cost compiled-out mode: building with -DCATALYST_CONTRACTS_DISABLED
// (CMake: -DCATALYST_CONTRACTS=OFF) expands every macro to a no-op that does
// not even evaluate the condition.  That build trades all input validation
// for speed and is only for trusted, pre-validated inputs; the default build
// keeps contracts on everywhere, including Release.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace catalyst::contract {

/// What a failed contract check does.  One process-wide setting; the
/// default is throw_exception (safe for library use and unit-testable).
enum class ViolationPolicy {
  throw_exception,   ///< Throw the check's exception type.
  abort_with_trace,  ///< Print the violation + stack trace, std::abort().
  log_and_continue,  ///< Print the violation to stderr and proceed.
};

/// Default exception type thrown by the un-suffixed macros.
class ContractViolation : public std::runtime_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::runtime_error(what) {}
};

/// Current process-wide policy.  First call honours the
/// CATALYST_CONTRACT_POLICY environment variable.
ViolationPolicy violation_policy() noexcept;

/// Overrides the process-wide policy (takes effect immediately, thread-safe).
void set_violation_policy(ViolationPolicy policy) noexcept;

/// Number of violations swallowed so far under log_and_continue; lets tests
/// (and health checks) observe that a logged violation actually fired.
std::size_t logged_violation_count() noexcept;

/// RAII policy override, restoring the previous policy on scope exit.
class PolicyGuard {
 public:
  explicit PolicyGuard(ViolationPolicy policy) noexcept
      : previous_(violation_policy()) {
    set_violation_policy(policy);
  }
  ~PolicyGuard() { set_violation_policy(previous_); }
  PolicyGuard(const PolicyGuard&) = delete;
  PolicyGuard& operator=(const PolicyGuard&) = delete;

 private:
  ViolationPolicy previous_;
};

// ----- Numeric helpers shared by contract call sites -------------------------

/// True when every element of the range is neither NaN nor +/-Inf.
inline bool all_finite(std::span<const double> values) noexcept {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

inline bool all_finite(const std::vector<double>& values) noexcept {
  return all_finite(std::span<const double>(values));
}

inline bool all_finite(double value) noexcept { return std::isfinite(value); }

/// Scaled singularity tolerance for an n x n triangular solve: a diagonal
/// entry d is treated as singular when |d| <= singular_tolerance(n, dmax)
/// with dmax = max_i |R(i,i)|.  The classic n*eps*dmax bound: anything that
/// small is indistinguishable from rounding noise of the factorization, and
/// dividing by it turns noise into the answer.
inline double singular_tolerance(std::ptrdiff_t n, double max_abs_diag) noexcept {
  return static_cast<double>(n > 0 ? n : 1) *
         std::numeric_limits<double>::epsilon() * max_abs_diag;
}

namespace detail {

/// Builds the "<kind> violated at file:line: `expr` -- msg" message.
std::string format_violation(const char* kind, const char* expr,
                             const char* file, int line,
                             const std::string& msg);

/// Applies the current policy to a violation.  Returns true when the caller
/// should throw (throw_exception policy); aborts under abort_with_trace;
/// logs and returns false under log_and_continue.
bool report_violation(const char* kind, const char* expr, const char* file,
                      int line, const std::string& msg);

}  // namespace detail
}  // namespace catalyst::contract

// ----- The macros ------------------------------------------------------------

#ifdef CATALYST_CONTRACTS_DISABLED

// Compiled-out mode: no-ops that do not evaluate the condition or message.
// sizeof keeps both expressions as unevaluated operands, so variables that
// exist only to feed a contract stay odr-referenced (no -Wunused-variable)
// and the expressions stay type-checked, without generating any code.
#define CATALYST_CONTRACT_CHECK_AS(kind, cond, ExcType, msg) \
  ((void)sizeof((cond) ? 1 : 0), (void)sizeof(msg))

#else

#define CATALYST_CONTRACT_CHECK_AS(kind, cond, ExcType, msg)                 \
  do {                                                                       \
    if (!(cond)) {                                                           \
      const ::std::string catalyst_contract_msg_ = (msg);                    \
      if (::catalyst::contract::detail::report_violation(                    \
              kind, #cond, __FILE__, __LINE__, catalyst_contract_msg_)) {    \
        throw ExcType(::catalyst::contract::detail::format_violation(        \
            kind, #cond, __FILE__, __LINE__, catalyst_contract_msg_));       \
      }                                                                      \
    }                                                                        \
  } while (0)

#endif  // CATALYST_CONTRACTS_DISABLED

/// Precondition: validates caller-supplied inputs.
#define CATALYST_REQUIRE_AS(cond, ExcType, msg) \
  CATALYST_CONTRACT_CHECK_AS("precondition", cond, ExcType, msg)
#define CATALYST_REQUIRE(cond, msg) \
  CATALYST_REQUIRE_AS(cond, ::catalyst::contract::ContractViolation, msg)

/// Postcondition: validates results before returning them.
#define CATALYST_ENSURE_AS(cond, ExcType, msg) \
  CATALYST_CONTRACT_CHECK_AS("postcondition", cond, ExcType, msg)
#define CATALYST_ENSURE(cond, msg) \
  CATALYST_ENSURE_AS(cond, ::catalyst::contract::ContractViolation, msg)

/// Invariant: internal consistency that must hold mid-algorithm.
#define CATALYST_INVARIANT_AS(cond, ExcType, msg) \
  CATALYST_CONTRACT_CHECK_AS("invariant", cond, ExcType, msg)
#define CATALYST_INVARIANT(cond, msg) \
  CATALYST_INVARIANT_AS(cond, ::catalyst::contract::ContractViolation, msg)

/// Finite-value assumption over a double, std::vector<double> or
/// std::span<const double>: rejects NaN and +/-Inf.
#define CATALYST_ASSUME_FINITE_AS(value, ExcType, msg)       \
  CATALYST_CONTRACT_CHECK_AS("finite-assumption",            \
                             ::catalyst::contract::all_finite(value), \
                             ExcType, msg)
#define CATALYST_ASSUME_FINITE(value, msg) \
  CATALYST_ASSUME_FINITE_AS(value, ::catalyst::contract::ContractViolation, msg)
