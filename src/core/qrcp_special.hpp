// catalyst/core -- the specialized column-pivoted QR of Section V
// (Algorithm 2 of the paper).
//
// Classic QRCP pivots on the largest trailing column norm, which on event
// data prefers huge, analytically irrelevant columns (cycle counters).
// Algorithm 2 instead prefers columns *closest to the ideal basis
// dimensions*: each candidate column is rounded to the nearest multiple of
// a noise tolerance alpha and scored so that entries of exactly 0 cost
// nothing, entries >= 1 cost their magnitude, and fractional entries are
// punished by their reciprocal; the column with the MINIMUM score is the
// pivot.  Ties break toward the smallest norm, then input order.
//
// Two implementation choices pin down the parts Algorithm 2's pseudocode
// leaves open:
//   * scores and tie-break norms are computed on the ORIGINAL columns --
//     closeness to a basis dimension is intrinsic to the event, and scoring
//     partially-orthogonalized residuals would let combination columns
//     masquerade as basis-aligned once their overlap with earlier picks has
//     been eliminated;
//   * eligibility at step i uses the UPDATED trailing residual: a candidate
//     whose residual norm is below beta = ||(alpha, ..., alpha)||_2 is
//     linearly dependent on the selected events (up to noise) and is
//     disregarded.  When no candidate remains eligible the factorization
//     terminates; the selected prefix is the independent event set X-hat.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::core {

/// R(u) = alpha * floor(u / alpha + 0.5): u rounded to the nearest multiple
/// of alpha (the paper's noise-tolerant rounding).
double round_to_tolerance(double u, double alpha);

/// Sc(v) for one magnitude v = |entry|:  v if v >= 1, 1/v if 0 < v < 1,
/// 0 if v == 0.
double score_entry(double v);

/// Pivot score of a column: sum of Sc(|R(u)|) over its entries.
double column_score(std::span<const double> column, double alpha);

/// Pivot-selection rule, for ablation studies.
enum class PivotRule {
  /// Paper-faithful (default): score/tie-break on the ORIGINAL columns,
  /// eligibility on the updated residual norm.
  original_score,
  /// The naive reading of Algorithm 2: score the UPDATED trailing residual.
  /// Kept for the ablation benches -- it lets combination columns
  /// masquerade as basis-aligned once their overlap with earlier picks has
  /// been eliminated (e.g. taken+unconditional posing as the unconditional
  /// dimension).
  updated_score,
  /// Classic Algorithm 1 pivoting (largest updated residual norm) under the
  /// same beta termination -- the Section II failure mode.
  max_norm,
};

/// Result of the specialized QRCP.
struct SpecialQrcpResult {
  /// Indices into the ORIGINAL column order of the selected, linearly
  /// independent columns, in pivot order (the first `rank` entries of the
  /// paper's permutation array pi).
  std::vector<linalg::index_t> selected;
  /// Number of selected columns (== selected.size()).
  linalg::index_t rank = 0;
  /// Pivot scores at the time each column was selected (diagnostics).
  std::vector<double> pivot_scores;
};

/// Runs Algorithm 2 on X (basis-dims x events) with noise tolerance alpha.
/// Returns the chosen column set; use Matrix::select_columns on the ORIGINAL
/// X to materialize X-hat (the algorithm orthogonalizes internally only to
/// guarantee independence).
///
/// `threads` parallelizes the per-column work (initial trait scan, the
/// candidate norm/score evaluation inside the pivot search, and the
/// reflector update) through the shared worker pool.  Every column is
/// evaluated with the exact serial arithmetic and the pivot is the unique
/// lexicographic minimum of (score, norm, original index) -- original
/// indices are distinct, so the minimum is unique and the chunked reduction
/// returns bit-identical results for any thread count.
SpecialQrcpResult specialized_qrcp(
    const linalg::Matrix& x, double alpha,
    PivotRule rule = PivotRule::original_score, int threads = 1);

}  // namespace catalyst::core
