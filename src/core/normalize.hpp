// catalyst/core -- expectation-basis normalization (Section III-B).
//
// Projects each surviving raw event's averaged measurement vector me onto
// the benchmark's expectation basis by solving E * xe = me in the
// least-squares sense.  Events whose backward error exceeds a threshold
// cannot be expressed in the ideal-event coordinate system (e.g. a cycles
// counter during the FLOPs benchmark) and are disregarded; the survivors'
// xe vectors become the columns of the matrix X that feeds the specialized
// QRCP (Section V).
#pragma once

#include <string>
#include <vector>

#include "linalg/lstsq.hpp"
#include "linalg/matrix.hpp"

namespace catalyst::core {

/// One event's projection onto the expectation basis.
struct EventRepresentation {
  std::string event_name;
  linalg::Vector xe;           ///< Coordinates in the expectation basis.
  double backward_error = 0.0; ///< Eq. 5 fitness of E*xe = me.
  bool representable = false;  ///< backward_error <= threshold.
};

/// Outcome of the normalization stage.
struct NormalizationResult {
  /// Every event's projection (parallel to the input order), for reporting.
  std::vector<EventRepresentation> representations;
  /// The matrix X: one column per representable event, rows = basis dims.
  linalg::Matrix x;
  /// Column labels of `x` (names of the representable events).
  std::vector<std::string> x_event_names;
};

/// Solves E * xe = me for every event and assembles X from the events whose
/// backward error is at most `max_backward_error`.
///
/// `expectation` is the slots x ideal-events basis matrix; each
/// `measurements[e]` must have expectation.rows() entries (normalized
/// per-iteration readings).
///
/// E is factored ONCE (linalg::LstsqSolver) and each event's solve runs as
/// an independent unit on the shared worker pool; every per-event result is
/// arithmetically identical to lstsq(expectation, me) and lands in its own
/// slot, so the output is bit-identical for any `threads`.
NormalizationResult normalize_events(
    const linalg::Matrix& expectation,
    const std::vector<std::string>& event_names,
    const std::vector<std::vector<double>>& measurements,
    double max_backward_error, int threads = 1);

}  // namespace catalyst::core
