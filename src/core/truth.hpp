// catalyst/core -- planted-truth comparison for synthesized metrics.
//
// When the true event-to-metric composition is KNOWN -- generated models
// (catalyst::modelgen), hand-built regression fixtures -- the pipeline's
// output can be judged, not just inspected.  Two independent checks:
//
//   * match_planted_composition: does the rounded composition equal the
//     planted one?  Selected events are compared up to EQUIVALENCE CLASSES
//     (several raw events can be equally valid realizations of one basis
//     dimension -- exact aliases, sub-tolerance correlated copies -- and
//     QRCP tie-breaking is free to pick any member).
//   * composition_is_truthful: does the composition, evaluated through the
//     events' known basis representations, actually reproduce the metric's
//     signature?  This is the "never silently wrong" guard: a metric the
//     pipeline flags composable must pass it even when the composition is
//     an alternative (non-planted) covering of the space.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/metrics.hpp"
#include "core/signatures.hpp"
#include "linalg/matrix.hpp"

namespace catalyst::core {

/// The planted composition of one metric: for each basis dimension, the
/// integer coefficient and the set of event names that are equally valid
/// realizations of that dimension (the equivalence class).  Dimensions with
/// coefficient 0 must not be covered by any non-zero term.
struct PlantedComposition {
  std::string metric_name;
  /// coefficient[d]: planted integer coefficient of basis dimension d.
  std::vector<double> coefficients;
  /// classes[d]: event names acceptable as dimension d's representative.
  std::vector<std::vector<std::string>> classes;
};

/// Verdict of one metric comparison.  `mismatch` is empty iff `matches`.
struct CompositionMatch {
  bool matches = false;
  std::string mismatch;  ///< First discrepancy, human-readable.
};

/// Compares a metric's ROUNDED terms (zero terms dropped) against a planted
/// composition: every non-zero planted dimension must be covered by exactly
/// one term whose event is in the dimension's class and whose coefficient
/// equals the planted one; no term may fall outside every class.
CompositionMatch match_planted_composition(
    const std::vector<MetricTerm>& rounded_terms,
    const PlantedComposition& planted);

/// Evaluates a composition through known event representations: does
///   sum_t coefficient_t * representation(event_t)  ==  signature
/// hold to relative tolerance `tol` (2-norm)?  Events absent from
/// `representations` fail the check (an event with no known ground truth
/// cannot vouch for a metric).  Uses the UNROUNDED terms: truthfulness is a
/// numerical property, rounding is a presentation step.
CompositionMatch composition_is_truthful(
    const std::vector<MetricTerm>& terms,
    const std::unordered_map<std::string, linalg::Vector>& representations,
    const MetricSignature& signature, double tol = 1e-6);

}  // namespace catalyst::core
