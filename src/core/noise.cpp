#include "core/noise.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contract.hpp"
#include "core/parallel.hpp"
#include "linalg/blas.hpp"

namespace catalyst::core {

double rnmse(std::span<const double> mi, std::span<const double> mj) {
  CATALYST_REQUIRE_AS(mi.size() == mj.size() && !mi.empty(),
                      std::invalid_argument,
                      "rnmse: vectors must be non-empty and equal");
  const auto n = static_cast<double>(mi.size());
  double diff_sq = 0.0;
  double sum_i = 0.0;
  double sum_j = 0.0;
  for (std::size_t k = 0; k < mi.size(); ++k) {
    const double d = mi[k] - mj[k];
    diff_sq += d * d;
    sum_i += mi[k];
    sum_j += mj[k];
  }
  const double mean_i = sum_i / n;
  const double mean_j = sum_j / n;
  const double denom_sq = n * mean_i * mean_j;
  if (denom_sq <= 0.0) {
    // Zero (or sign-cancelled) average: 100% error by definition, unless the
    // vectors are exactly identical (both all zero), which footnote 1
    // handles separately via the all-zero discard.
    return diff_sq == 0.0 && sum_i == 0.0 && sum_j == 0.0 ? 0.0 : 1.0;
  }
  const double out = std::sqrt(diff_sq / denom_sq);
  // RNMSE is not bounded by 1 (disjoint supports give values above it), but a
  // negative or non-finite value means the accumulation itself broke.
  CATALYST_ENSURE(std::isfinite(out) && out >= 0.0,
                  "rnmse: non-finite or negative result");
  return out;
}

double max_rnmse(const std::vector<std::vector<double>>& reps) {
  CATALYST_REQUIRE_AS(reps.size() >= 2, std::invalid_argument,
                      "max_rnmse: need at least two repetitions");
  double worst = 0.0;
  for (std::size_t i = 0; i < reps.size(); ++i) {
    for (std::size_t j = i + 1; j < reps.size(); ++j) {
      worst = std::max(worst, rnmse(reps[i], reps[j]));
    }
  }
  return worst;
}

NoiseFilterResult filter_noise(
    const std::vector<std::string>& event_names,
    const std::vector<std::vector<std::vector<double>>>& measurements,
    double tau, int threads) {
  CATALYST_REQUIRE_AS(event_names.size() == measurements.size(),
                      std::invalid_argument,
                      "filter_noise: names/measurements mismatch");
  CATALYST_REQUIRE_AS(tau >= 0.0, std::invalid_argument,
                      "filter_noise: negative tau");
  NoiseFilterResult result;
  const std::size_t ne = event_names.size();
  result.variabilities.resize(ne);
  // Per-event scoring is all-pairs RNMSE -- the expensive part -- and each
  // event writes only its own slots, so events fan out on the worker pool.
  std::vector<std::vector<double>> averaged(ne);
  std::vector<char> keep(ne, 0);
  core::parallel_for(ne, threads, [&](std::size_t e) {
    const auto& reps = measurements[e];
    EventVariability v;
    v.event_name = event_names[e];
    v.all_zero = true;
    for (const auto& rep : reps) {
      for (double x : rep) {
        if (x != 0.0) {
          v.all_zero = false;
          break;
        }
      }
      if (!v.all_zero) break;
    }
    v.max_rnmse = max_rnmse(reps);
    keep[e] = !v.all_zero && v.max_rnmse <= tau ? 1 : 0;
    if (keep[e]) {
      // Average across repetitions (identical vectors average to themselves;
      // noisy-but-kept events get smoothed).
      std::vector<double> avg(reps.front().size(), 0.0);
      for (const auto& rep : reps) {
        for (std::size_t k = 0; k < avg.size(); ++k) avg[k] += rep[k];
      }
      for (double& x : avg) x /= static_cast<double>(reps.size());
      averaged[e] = std::move(avg);
    }
    result.variabilities[e] = std::move(v);
  });
  // Kept/averaged lists are order-sensitive: assemble in input order.
  for (std::size_t e = 0; e < ne; ++e) {
    if (keep[e]) {
      result.kept.push_back(e);
      result.averaged.push_back(std::move(averaged[e]));
    }
  }
  return result;
}

double median(std::vector<double> values) {
  CATALYST_REQUIRE_AS(!values.empty(), std::invalid_argument,
                      "median: empty input");
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double hi = values[mid];
  if (values.size() % 2 == 1) return hi;
  const double lo =
      *std::max_element(values.begin(), values.begin() + mid);
  return 0.5 * (lo + hi);
}

}  // namespace catalyst::core
