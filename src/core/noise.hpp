// catalyst/core -- noise analysis (Section IV of the paper).
//
// Quantifies the run-to-run variability of every event with the maximum
// root normalized mean-square error (max RNMSE, Eq. 4) over all pairs of
// repetition vectors, then filters events whose variability exceeds a
// threshold tau.  Events whose measurements are all zero in every
// repetition are discarded as irrelevant (footnote 1 of the paper).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace catalyst::core {

/// Eq. 4 for one pair:  ||m_i - m_j||_2 / sqrt(N * mean(m_i) * mean(m_j)).
/// If either mean is zero the variability is defined as 1 (100% error).
double rnmse(std::span<const double> mi, std::span<const double> mj);

/// Max RNMSE over all pairs of repetition vectors.  `reps` must contain at
/// least two vectors of equal length.  Returns 0 when all pairs agree
/// exactly.
double max_rnmse(const std::vector<std::vector<double>>& reps);

/// Variability verdict for one event.
struct EventVariability {
  std::string event_name;
  double max_rnmse = 0.0;
  bool all_zero = false;  ///< Every reading in every repetition was zero.
};

/// Outcome of the noise-filtering stage.
struct NoiseFilterResult {
  /// Per-event variability (parallel to the input event order), for Fig. 2.
  std::vector<EventVariability> variabilities;
  /// Indices (into the input event order) of events kept: non-zero and
  /// with max RNMSE <= tau.
  std::vector<std::size_t> kept;
  /// Averaged measurement vector across repetitions for each kept event
  /// (parallel to `kept`).
  std::vector<std::vector<double>> averaged;
};

/// Runs the Section IV analysis.
/// `measurements[e][r]` is event e's measurement vector at repetition r
/// (all vectors the same length); `event_names[e]` labels it.
///
/// Events are scored as independent units on the shared worker pool; the
/// kept/averaged lists are assembled sequentially in input order afterwards,
/// so the result is bit-identical for any `threads`.
NoiseFilterResult filter_noise(
    const std::vector<std::string>& event_names,
    const std::vector<std::vector<std::vector<double>>>& measurements,
    double tau, int threads = 1);

/// Median of `values`; the across-thread noise suppressor used for the
/// data-cache benchmark (Section IV, last paragraph).  Even-sized inputs
/// return the mean of the two middle elements.  Throws on empty input.
double median(std::vector<double> values);

}  // namespace catalyst::core
