#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace catalyst::core {

std::string format_combination(const std::vector<MetricTerm>& terms,
                               int precision) {
  std::ostringstream os;
  os << std::setprecision(precision);
  bool first = true;
  for (const auto& t : terms) {
    if (t.coefficient == 0.0) continue;
    const double mag = std::fabs(t.coefficient);
    if (first) {
      if (t.coefficient < 0.0) os << "-";
    } else {
      os << (t.coefficient < 0.0 ? " - " : " + ");
    }
    os << mag << " x " << t.event_name;
    first = false;
  }
  if (first) os << "(none)";
  return os.str();
}

std::string format_metric_table(const std::string& title,
                                const std::vector<MetricDefinition>& metrics,
                                bool rounded, double round_tol) {
  std::ostringstream os;
  os << "=== " << title << " ===\n";
  for (const auto& m : metrics) {
    auto terms = m.terms;
    if (rounded) terms = round_coefficients(terms, round_tol);
    os << std::left << std::setw(36) << m.metric_name << " | "
       << format_combination(terms) << "\n"
       << std::setw(36) << "" << " | error = " << std::scientific
       << std::setprecision(2) << m.backward_error << std::defaultfloat
       << (m.composable ? "  [composable]" : "  [NOT composable]") << "\n";
  }
  return os.str();
}

std::string format_variability_series(const NoiseFilterResult& noise,
                                      double tau) {
  // Mirror the paper's Fig. 2: drop all-zero events, sort ascending.
  std::vector<const EventVariability*> shown;
  for (const auto& v : noise.variabilities) {
    if (!v.all_zero) shown.push_back(&v);
  }
  std::sort(shown.begin(), shown.end(),
            [](const EventVariability* a, const EventVariability* b) {
              return a->max_rnmse < b->max_rnmse;
            });
  std::ostringstream os;
  os << "# index  max_rnmse  kept(tau=" << std::scientific
     << std::setprecision(1) << tau << ")  event\n"
     << std::setprecision(6);
  for (std::size_t i = 0; i < shown.size(); ++i) {
    os << i << "  " << shown[i]->max_rnmse << "  "
       << (shown[i]->max_rnmse <= tau ? "yes" : "no ") << "  "
       << shown[i]->event_name << "\n";
  }
  return os.str();
}

std::string format_selected_events(const PipelineResult& result) {
  std::ostringstream os;
  os << "Specialized QRCP selected " << result.xhat_events.size()
     << " events:\n";
  for (std::size_t i = 0; i < result.xhat_events.size(); ++i) {
    os << "  [" << i << "] " << result.xhat_events[i] << "  (pivot score "
       << std::setprecision(4) << result.qr.pivot_scores[i] << ")\n";
  }
  return os.str();
}

std::string format_collection_report(const vpapi::CollectionReport& report) {
  std::ostringstream os;
  os << report.summary() << "\n";
  for (const auto& e : report.events) {
    const bool eventful = e.disposition != vpapi::EventDisposition::clean ||
                          e.total_faults() != 0 || e.retries != 0 ||
                          e.wraps_corrected != 0;
    if (!eventful) continue;
    os << "  " << std::left << std::setw(32) << e.name << " "
       << std::setw(11) << vpapi::to_string(e.disposition)
       << " retries=" << e.retries;
    if (e.wraps_corrected != 0) os << " wraps=" << e.wraps_corrected;
    for (std::size_t k = 0; k < e.faults.size(); ++k) {
      if (e.faults[k] != 0) {
        os << " " << faults::to_string(static_cast<faults::FaultKind>(k))
           << "=" << e.faults[k];
      }
    }
    os << "\n";
  }
  return os.str();
}

std::string format_markdown_report(const std::string& title,
                                   const PipelineResult& result,
                                   double round_tol) {
  std::ostringstream os;
  os << "# " << title << "\n\n";
  os << "## Stage funnel\n\n"
     << "| stage | events |\n|---|---|\n"
     << "| measured | " << result.all_event_names.size() << " |\n"
     << "| after noise filter | " << result.noise.kept.size() << " |\n"
     << "| representable in basis | "
     << result.projection.x_event_names.size() << " |\n"
     << "| selected by specialized QRCP | " << result.xhat_events.size()
     << " |\n\n";

  if (!result.stage_timings.empty()) {
    os << "## Stage timings\n\n| stage | wall time (ms) | share |\n"
       << "|---|---|---|\n";
    std::int64_t total_ns = 0;
    for (const auto& st : result.stage_timings) total_ns += st.wall_ns;
    for (const auto& st : result.stage_timings) {
      const double ms = static_cast<double>(st.wall_ns) / 1e6;
      const double pct =
          total_ns > 0 ? 100.0 * static_cast<double>(st.wall_ns) /
                             static_cast<double>(total_ns)
                       : 0.0;
      os << "| " << st.name << " | " << std::fixed << std::setprecision(3)
         << ms << " | " << std::setprecision(1) << pct << "% |"
         << std::defaultfloat << "\n";
    }
    os << "\n";
  }

  if (result.collection.has_value() || !result.quarantined_events.empty()) {
    os << "## Collection robustness\n\n";
    if (result.collection.has_value()) {
      os << result.collection->summary() << "\n\n";
    }
    if (!result.quarantined_events.empty()) {
      os << "Quarantined events (excluded from the analysis):\n\n";
      for (const auto& q : result.quarantined_events) {
        os << "- `" << q << "`\n";
      }
      os << "\n";
    }
  }

  os << "## Selected events\n\n| # | event | pivot score |\n|---|---|---|\n";
  // Degenerate runs (everything filtered or quarantined) still get a stable,
  // machine-diffable table: one explicit placeholder row, never an empty
  // table body.
  if (result.xhat_events.empty()) {
    os << "| - | (no events survived) | - |\n";
  }
  for (std::size_t i = 0; i < result.xhat_events.size(); ++i) {
    os << "| " << i << " | `" << result.xhat_events[i] << "` | "
       << std::setprecision(4) << result.qr.pivot_scores[i] << " |\n";
  }

  os << "\n## Metrics\n\n"
     << "| metric | combination (rounded) | backward error | composable |\n"
     << "|---|---|---|---|\n";
  if (result.metrics.empty()) {
    os << "| - | (no events survived) | - | - |\n";
  }
  for (const auto& m : result.metrics) {
    const auto rounded = round_coefficients(m.terms, round_tol);
    os << "| " << m.metric_name << " | `" << format_combination(rounded)
       << "` | " << std::scientific << std::setprecision(2)
       << m.backward_error << std::defaultfloat << " | "
       << (m.composable ? "yes" : "**no**") << " |\n";
  }
  return os.str();
}

std::string format_signature_table(const std::string& title,
                                   const std::vector<std::string>& basis,
                                   const std::vector<MetricSignature>& sigs) {
  std::ostringstream os;
  os << "=== " << title << " ===\n(basis: ";
  for (std::size_t i = 0; i < basis.size(); ++i) {
    os << basis[i] << (i + 1 < basis.size() ? ", " : ")\n");
  }
  for (const auto& s : sigs) {
    os << std::left << std::setw(36) << s.name << " (";
    for (std::size_t i = 0; i < s.coordinates.size(); ++i) {
      os << s.coordinates[i] << (i + 1 < s.coordinates.size() ? "," : ")");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace catalyst::core
