#include "core/truth.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/contract.hpp"

namespace catalyst::core {

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

CompositionMatch match_planted_composition(
    const std::vector<MetricTerm>& rounded_terms,
    const PlantedComposition& planted) {
  CATALYST_REQUIRE_AS(planted.coefficients.size() == planted.classes.size(),
                      std::invalid_argument,
                      "match_planted_composition: planted coefficients and "
                      "classes disagree in dimension count");
  const std::size_t dims = planted.coefficients.size();

  // event name -> dimension, from the equivalence classes.
  std::unordered_map<std::string, std::size_t> dim_of;
  for (std::size_t d = 0; d < dims; ++d) {
    for (const std::string& name : planted.classes[d]) {
      dim_of.emplace(name, d);
    }
  }

  std::vector<int> covered(dims, 0);
  for (const MetricTerm& term : rounded_terms) {
    if (term.coefficient == 0.0) continue;
    const auto it = dim_of.find(term.event_name);
    if (it == dim_of.end()) {
      return {false, planted.metric_name + ": term event '" + term.event_name +
                         "' is outside every planted equivalence class"};
    }
    const std::size_t d = it->second;
    if (++covered[d] > 1) {
      return {false, planted.metric_name + ": dimension " + std::to_string(d) +
                         " covered by more than one term"};
    }
    if (term.coefficient != planted.coefficients[d]) {
      return {false, planted.metric_name + ": dimension " + std::to_string(d) +
                         " has coefficient " + format_double(term.coefficient) +
                         ", planted " + format_double(planted.coefficients[d])};
    }
  }
  for (std::size_t d = 0; d < dims; ++d) {
    if (planted.coefficients[d] != 0.0 && covered[d] == 0) {
      return {false, planted.metric_name + ": dimension " + std::to_string(d) +
                         " (planted coefficient " +
                         format_double(planted.coefficients[d]) +
                         ") is not covered by any term"};
    }
    if (planted.coefficients[d] == 0.0 && covered[d] != 0) {
      return {false, planted.metric_name + ": dimension " + std::to_string(d) +
                         " has a term but its planted coefficient is 0"};
    }
  }
  return {true, ""};
}

CompositionMatch composition_is_truthful(
    const std::vector<MetricTerm>& terms,
    const std::unordered_map<std::string, linalg::Vector>& representations,
    const MetricSignature& signature, double tol) {
  CATALYST_REQUIRE_AS(tol > 0.0, std::invalid_argument,
                      "composition_is_truthful: tolerance must be positive");
  const std::size_t dims = signature.coordinates.size();
  linalg::Vector achieved(dims, 0.0);
  for (const MetricTerm& term : terms) {
    if (term.coefficient == 0.0) continue;
    const auto it = representations.find(term.event_name);
    if (it == representations.end()) {
      return {false, signature.name + ": event '" + term.event_name +
                         "' has no known ground-truth representation"};
    }
    CATALYST_REQUIRE_AS(it->second.size() == dims, std::invalid_argument,
                        "composition_is_truthful: representation of '" +
                            term.event_name +
                            "' has the wrong dimension count");
    for (std::size_t d = 0; d < dims; ++d) {
      achieved[d] += term.coefficient * it->second[d];
    }
  }
  double err2 = 0.0;
  double sig2 = 0.0;
  for (std::size_t d = 0; d < dims; ++d) {
    const double diff = achieved[d] - signature.coordinates[d];
    err2 += diff * diff;
    sig2 += signature.coordinates[d] * signature.coordinates[d];
  }
  const double scale = sig2 > 0.0 ? std::sqrt(sig2) : 1.0;
  const double rel = std::sqrt(err2) / scale;
  if (rel > tol) {
    return {false, signature.name + ": composition misses its signature by " +
                       format_double(rel) + " (relative 2-norm, tol " +
                       format_double(tol) + ")"};
  }
  return {true, ""};
}

}  // namespace catalyst::core
