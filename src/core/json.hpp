// catalyst/core -- a minimal JSON value, parser, and writer.
//
// Used by the offline-data workflow (core/io.hpp): measurement archives and
// preset tables are plain JSON so that external tooling (plotting scripts,
// PAPI importers) can consume them.  The subset implemented is complete
// standard JSON except for \u escapes beyond ASCII (rejected explicitly);
// numbers are doubles (adequate for counter values well below 2^53).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace catalyst::core::json {

/// Thrown on malformed input or wrong-type access.  Parse failures carry
/// the byte offset of the offending input position; errors raised outside
/// the parser (type mismatches, missing keys) report npos.
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what,
                     std::size_t offset = std::string::npos)
      : std::runtime_error(what), offset_(offset) {}

  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

/// A JSON value (tagged union over the seven JSON shapes).
class Value {
 public:
  enum class Type { null, boolean, number, string, array, object };

  Value() : type_(Type::null) {}
  Value(std::nullptr_t) : type_(Type::null) {}  // NOLINT(runtime/explicit)
  Value(bool b) : type_(Type::boolean), bool_(b) {}  // NOLINT
  Value(double n) : type_(Type::number), num_(n) {}  // NOLINT
  Value(int n) : type_(Type::number), num_(n) {}     // NOLINT
  Value(std::size_t n)                               // NOLINT
      : type_(Type::number), num_(static_cast<double>(n)) {}
  Value(const char* s) : type_(Type::string), str_(s) {}  // NOLINT
  Value(std::string s) : type_(Type::string), str_(std::move(s)) {}  // NOLINT

  static Value array() {
    Value v;
    v.type_ = Type::array;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::object;
    return v;
  }

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::null; }
  bool is_bool() const noexcept { return type_ == Type::boolean; }
  bool is_number() const noexcept { return type_ == Type::number; }
  bool is_string() const noexcept { return type_ == Type::string; }
  bool is_array() const noexcept { return type_ == Type::array; }
  bool is_object() const noexcept { return type_ == Type::object; }

  // Checked accessors (throw JsonError on type mismatch).
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const std::vector<Value>& as_array() const;
  const std::map<std::string, Value>& as_object() const;

  // Array building / access.
  void push_back(Value v);
  const Value& at(std::size_t i) const;
  std::size_t size() const;

  // Object building / access.
  Value& operator[](const std::string& key);
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const;

  friend bool operator==(const Value& a, const Value& b);

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parses a complete JSON document (trailing garbage is an error).
Value parse(const std::string& text);

/// Serializes compactly; `indent` > 0 pretty-prints with that many spaces.
std::string dump(const Value& value, int indent = 0);

}  // namespace catalyst::core::json
