#include "core/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/blas.hpp"
#include "linalg/lstsq.hpp"
#include "linalg/qr.hpp"

namespace catalyst::core {

MetricDefinition solve_metric(const linalg::Matrix& xhat,
                              const std::vector<std::string>& event_names,
                              const MetricSignature& signature,
                              double fitness_threshold) {
  if (static_cast<linalg::index_t>(event_names.size()) != xhat.cols()) {
    throw std::invalid_argument("solve_metric: name/column count mismatch");
  }
  if (static_cast<linalg::index_t>(signature.coordinates.size()) !=
      xhat.rows()) {
    throw std::invalid_argument("solve_metric: signature/basis dim mismatch");
  }
  MetricDefinition def;
  def.metric_name = signature.name;
  const auto ls = linalg::lstsq(xhat, signature.coordinates);
  def.backward_error = ls.backward_error;
  def.composable = ls.backward_error <= fitness_threshold;
  def.terms.reserve(event_names.size());
  for (std::size_t i = 0; i < event_names.size(); ++i) {
    def.terms.push_back({event_names[i], ls.x[i]});
  }
  def.coefficient_stderrs =
      coefficient_stderr(xhat, ls.x, signature.coordinates);
  return def;
}

std::vector<double> coefficient_stderr(const linalg::Matrix& xhat,
                                       std::span<const double> y,
                                       std::span<const double> s) {
  const linalg::index_t m = xhat.rows();
  const linalg::index_t n = xhat.cols();
  if (static_cast<linalg::index_t>(y.size()) != n ||
      static_cast<linalg::index_t>(s.size()) != m) {
    throw std::invalid_argument("coefficient_stderr: shape mismatch");
  }
  std::vector<double> out(static_cast<std::size_t>(n), 0.0);
  if (m <= n || n == 0) return out;  // no residual degrees of freedom

  // sigma_hat^2 from the residual.
  linalg::Vector r(s.begin(), s.end());
  linalg::gemv(-1.0, xhat, y, 1.0, r);
  const double rnorm = linalg::nrm2(r);
  const double sigma2 = rnorm * rnorm / static_cast<double>(m - n);

  // [(Xhat^T Xhat)^{-1}]_ii = ||R^{-T} e_i||^2 with R from QR(Xhat).
  const linalg::QrFactorization qr(xhat);
  for (linalg::index_t i = 0; i < n; ++i) {
    linalg::Vector e(static_cast<std::size_t>(n), 0.0);
    e[static_cast<std::size_t>(i)] = 1.0;
    try {
      linalg::trsv_upper_t(qr.packed(), e);
    } catch (const linalg::SingularError&) {
      // Rank-deficient Xhat: the variance of this coefficient is not
      // identified; report 0 rather than inventing a number.
      continue;
    }
    const double norm = linalg::nrm2(e);
    out[static_cast<std::size_t>(i)] = std::sqrt(sigma2) * norm;
  }
  return out;
}

std::vector<MetricDefinition> solve_metrics(
    const linalg::Matrix& xhat, const std::vector<std::string>& event_names,
    const std::vector<MetricSignature>& signatures,
    double fitness_threshold) {
  std::vector<MetricDefinition> defs;
  defs.reserve(signatures.size());
  for (const auto& s : signatures) {
    defs.push_back(solve_metric(xhat, event_names, s, fitness_threshold));
  }
  return defs;
}

std::vector<MetricTerm> round_coefficients(const std::vector<MetricTerm>& terms,
                                           double rel_tol) {
  if (rel_tol < 0.0) {
    throw std::invalid_argument("round_coefficients: negative tolerance");
  }
  std::vector<MetricTerm> out = terms;
  for (auto& t : out) {
    const double nearest = std::round(t.coefficient);
    const double diff = std::fabs(t.coefficient - nearest);
    // Relative closeness for integral targets >= 1 ("within 2% of one"),
    // absolute closeness for a zero target ("smaller than 5.87e-3").
    const bool snap = nearest == 0.0
                          ? diff <= rel_tol
                          : diff <= rel_tol * std::fabs(nearest);
    if (snap) t.coefficient = nearest;
  }
  return out;
}

std::vector<MetricTerm> drop_zero_terms(const std::vector<MetricTerm>& terms) {
  std::vector<MetricTerm> out;
  for (const auto& t : terms) {
    if (t.coefficient != 0.0) out.push_back(t);
  }
  return out;
}

}  // namespace catalyst::core
