// catalyst/core -- expectation-basis diagnostics.
//
// The whole method rests on the expectation basis E being well posed: full
// column rank (else xe is not unique), a moderate condition number (else
// the projections amplify measurement noise), and low mutual coherence
// between ideal events (else two "different" hardware concepts are nearly
// indistinguishable and the QR selection between their events is fragile).
// This module quantifies all three so a benchmark author can validate a
// new kernel set BEFORE collecting data with it.
#pragma once

#include <string>

#include "cat/benchmark.hpp"
#include "linalg/matrix.hpp"

namespace catalyst::core {

/// Well-posedness summary of an expectation basis.
struct BasisDiagnostics {
  linalg::index_t rows = 0;          ///< Benchmark slots.
  linalg::index_t cols = 0;          ///< Ideal-event dimensions.
  linalg::index_t rank = 0;          ///< Numerical rank of E.
  bool full_rank = false;
  double condition_number = 0.0;     ///< sigma_max / sigma_min.
  /// Largest |cosine| between two distinct columns (0 = orthogonal ideal
  /// events, 1 = two dimensions are collinear).
  double mutual_coherence = 0.0;
  /// Labels of the most-coherent column pair.
  std::string coherent_pair_a;
  std::string coherent_pair_b;
};

/// Computes the diagnostics of a benchmark's expectation basis.
BasisDiagnostics diagnose_basis(const cat::ExpectationBasis& basis);

/// One-line verdict ("well-posed", or what is wrong) used by reports.
/// `max_condition` / `max_coherence` are acceptance bounds.
std::string basis_verdict(const BasisDiagnostics& d,
                          double max_condition = 1e6,
                          double max_coherence = 0.999);

}  // namespace catalyst::core
