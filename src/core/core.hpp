// catalyst/core -- umbrella header for the analysis library (the paper's
// primary contribution).
#pragma once

#include "core/basis_diagnostics.hpp" // IWYU pragma: export
#include "core/campaign.hpp"     // IWYU pragma: export
#include "core/io.hpp"           // IWYU pragma: export
#include "core/json.hpp"         // IWYU pragma: export
#include "core/metrics.hpp"      // IWYU pragma: export
#include "core/noise.hpp"        // IWYU pragma: export
#include "core/noise_classify.hpp" // IWYU pragma: export
#include "core/normalize.hpp"    // IWYU pragma: export
#include "core/pipeline.hpp"     // IWYU pragma: export
#include "core/presets.hpp"      // IWYU pragma: export
#include "core/qrcp_special.hpp" // IWYU pragma: export
#include "core/report.hpp"       // IWYU pragma: export
#include "core/validate.hpp"     // IWYU pragma: export
#include "core/signatures.hpp"   // IWYU pragma: export
#include "core/truth.hpp"        // IWYU pragma: export
