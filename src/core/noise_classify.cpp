#include "core/noise_classify.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/noise.hpp"

namespace catalyst::core {

const char* to_string(NoiseClass c) noexcept {
  switch (c) {
    case NoiseClass::silent: return "silent";
    case NoiseClass::deterministic: return "deterministic";
    case NoiseClass::drifting: return "drifting";
    case NoiseClass::spiky: return "spiky";
    case NoiseClass::gaussian: return "gaussian";
  }
  return "?";
}

NoiseProfile classify_noise(const std::vector<std::vector<double>>& reps,
                            double drift_threshold, double spike_threshold) {
  if (reps.size() < 2 || reps.front().empty()) {
    throw std::invalid_argument(
        "classify_noise: need >= 2 repetitions of non-empty vectors");
  }
  const std::size_t n_reps = reps.size();
  const std::size_t n_slots = reps.front().size();
  for (const auto& r : reps) {
    if (r.size() != n_slots) {
      throw std::invalid_argument("classify_noise: ragged repetitions");
    }
  }

  NoiseProfile profile;
  profile.max_rnmse = max_rnmse(reps);

  // Silent / deterministic fast paths.
  bool all_zero = true;
  bool all_identical = true;
  for (std::size_t r = 0; r < n_reps; ++r) {
    for (std::size_t k = 0; k < n_slots; ++k) {
      if (reps[r][k] != 0.0) all_zero = false;
      if (reps[r][k] != reps[0][k]) all_identical = false;
    }
  }
  if (all_zero) {
    profile.cls = NoiseClass::silent;
    return profile;
  }
  if (all_identical) {
    profile.cls = NoiseClass::deterministic;
    return profile;
  }

  // Drift: correlate the repetition index with the repetition mean.
  double grand_mean = 0.0;
  std::vector<double> rep_means(n_reps, 0.0);
  for (std::size_t r = 0; r < n_reps; ++r) {
    for (double v : reps[r]) rep_means[r] += v;
    rep_means[r] /= static_cast<double>(n_slots);
    grand_mean += rep_means[r];
  }
  grand_mean /= static_cast<double>(n_reps);
  {
    const double x_mean = (static_cast<double>(n_reps) - 1.0) / 2.0;
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t r = 0; r < n_reps; ++r) {
      const double dx = static_cast<double>(r) - x_mean;
      const double dy = rep_means[r] - grand_mean;
      sxy += dx * dy;
      sxx += dx * dx;
      syy += dy * dy;
    }
    if (sxx > 0.0 && syy > 0.0) {
      profile.drift_correlation = sxy / std::sqrt(sxx * syy);
      const double slope = sxy / sxx;
      if (grand_mean != 0.0) {
        profile.drift_magnitude =
            std::fabs(slope * static_cast<double>(n_reps - 1) / grand_mean);
      }
    }
  }

  // Spikes: compare each reading to its slot's across-rep median; a spiky
  // event has one deviation much larger than the slot's typical one.  The
  // ratio is computed per slot (deviation scales differ across slots when
  // counts do) and the worst slot decides.
  {
    std::vector<double> column(n_reps);
    for (std::size_t k = 0; k < n_slots; ++k) {
      for (std::size_t r = 0; r < n_reps; ++r) column[r] = reps[r][k];
      const double slot_median = median(column);
      std::vector<double> deviations(n_reps);
      double dmax = 0.0;
      for (std::size_t r = 0; r < n_reps; ++r) {
        deviations[r] = std::fabs(reps[r][k] - slot_median);
        dmax = std::max(dmax, deviations[r]);
      }
      if (dmax == 0.0) continue;  // slot is perfectly stable
      const double dmed = median(deviations);
      // A zero median deviation with a nonzero max means most readings
      // agree exactly and a few jump: the definition of a spike.
      const double ratio =
          dmed > 0.0 ? dmax / dmed : spike_threshold * 2;
      profile.spike_ratio = std::max(profile.spike_ratio, ratio);
    }
  }

  if (std::fabs(profile.drift_correlation) >= drift_threshold &&
      profile.drift_magnitude > 1e-6) {
    profile.cls = NoiseClass::drifting;
  } else if (profile.spike_ratio >= spike_threshold) {
    profile.cls = NoiseClass::spiky;
  } else {
    profile.cls = NoiseClass::gaussian;
  }
  return profile;
}

std::vector<std::vector<double>> detrend_repetitions(
    const std::vector<std::vector<double>>& reps) {
  if (reps.size() < 2 || reps.front().empty()) {
    throw std::invalid_argument(
        "detrend_repetitions: need >= 2 repetitions of non-empty vectors");
  }
  const std::size_t n_reps = reps.size();
  const std::size_t n_slots = reps.front().size();

  std::vector<double> rep_means(n_reps, 0.0);
  double grand_mean = 0.0;
  for (std::size_t r = 0; r < n_reps; ++r) {
    for (double v : reps[r]) rep_means[r] += v;
    rep_means[r] /= static_cast<double>(n_slots);
    grand_mean += rep_means[r];
  }
  grand_mean /= static_cast<double>(n_reps);
  if (grand_mean == 0.0) return reps;  // nothing to scale against

  // Least-squares line through (r, rep_mean/grand_mean).
  const double x_mean = (static_cast<double>(n_reps) - 1.0) / 2.0;
  double sxy = 0.0, sxx = 0.0;
  for (std::size_t r = 0; r < n_reps; ++r) {
    const double dx = static_cast<double>(r) - x_mean;
    sxy += dx * (rep_means[r] / grand_mean - 1.0);
    sxx += dx * dx;
  }
  const double slope = sxx > 0.0 ? sxy / sxx : 0.0;

  std::vector<std::vector<double>> out = reps;
  for (std::size_t r = 0; r < n_reps; ++r) {
    const double scale = 1.0 + slope * (static_cast<double>(r) - x_mean);
    if (scale <= 0.0) continue;  // degenerate fit: leave as-is
    for (double& v : out[r]) v /= scale;
  }
  return out;
}

}  // namespace catalyst::core
