// catalyst/core -- metric synthesis (Section VI of the paper).
//
// Solves Xhat * y = s in the least-squares sense: Xhat's columns are the
// QR-selected events' basis representations, s is a metric signature, and
// the solution y gives the scaling of each raw event in the composed
// metric.  The Eq. 5 backward error is the fitness: near machine epsilon
// for composable metrics, order-one when the hardware simply has no events
// that can express the concept (e.g. "All Branches Executed" in Table VII).
#pragma once

#include <string>
#include <vector>

#include "core/signatures.hpp"
#include "linalg/matrix.hpp"

namespace catalyst::core {

/// One term of a composed metric: coefficient x raw event.
struct MetricTerm {
  std::string event_name;
  double coefficient = 0.0;
};

/// A metric composed from raw events.
struct MetricDefinition {
  std::string metric_name;
  std::vector<MetricTerm> terms;    ///< Every selected event (incl. ~0 coeffs).
  double backward_error = 0.0;      ///< Eq. 5 fitness.
  bool composable = false;          ///< backward_error <= fitness threshold.
  /// Classical standard error of each coefficient (parallel to `terms`)
  /// under s = Xhat*y + eps, eps ~ N(0, sigma^2 I): quantifies how far from
  /// 0/+-1 a fitted coefficient is EXPECTED to wander given the residual --
  /// the statistical footing for Section VI-D's rounding step.  All zeros
  /// when the system is square (no residual degrees of freedom).
  std::vector<double> coefficient_stderrs;
};

/// Standard errors of least-squares coefficients: sigma_hat^2 = ||r||^2 /
/// (m - n), stderr_i = sigma_hat * sqrt([(Xhat^T Xhat)^{-1}]_ii), computed
/// through the QR factor without forming the normal equations.  Returns
/// zeros when m <= n.
std::vector<double> coefficient_stderr(const linalg::Matrix& xhat,
                                       std::span<const double> y,
                                       std::span<const double> s);

/// Solves Xhat * y = s for one signature.  `event_names` labels Xhat's
/// columns.  A metric is flagged composable when its backward error is at
/// most `fitness_threshold`.
MetricDefinition solve_metric(const linalg::Matrix& xhat,
                              const std::vector<std::string>& event_names,
                              const MetricSignature& signature,
                              double fitness_threshold = 1e-6);

/// Solves every signature against the same Xhat.
std::vector<MetricDefinition> solve_metrics(
    const linalg::Matrix& xhat, const std::vector<std::string>& event_names,
    const std::vector<MetricSignature>& signatures,
    double fitness_threshold = 1e-6);

/// Section VI-D's coefficient rounding: coefficients within `rel_tol` of an
/// integer (relatively, or absolutely for near-zero values) snap to that
/// integer.  Returns the rounded copy; terms rounded to zero are kept (with
/// coefficient 0) so callers can still display them.
std::vector<MetricTerm> round_coefficients(const std::vector<MetricTerm>& terms,
                                           double rel_tol = 0.05);

/// Drops zero-coefficient terms (after rounding) for compact display.
std::vector<MetricTerm> drop_zero_terms(const std::vector<MetricTerm>& terms);

}  // namespace catalyst::core
