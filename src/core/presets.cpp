#include "core/presets.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace catalyst::core {

std::optional<std::string> canonical_preset_symbol(
    const std::string& metric_name) {
  // The subset of PAPI's preset vocabulary this reproduction composes.
  static const std::pair<const char*, const char*> kMap[] = {
      {"SP Instrs.", "PAPI_FP_INS_SP"},
      {"SP Ops.", "PAPI_SP_OPS"},
      {"DP Instrs.", "PAPI_FP_INS_DP"},
      {"DP Ops.", "PAPI_DP_OPS"},
      {"SP FMA Instrs.", "PAPI_FMA_INS_SP"},
      {"DP FMA Instrs.", "PAPI_FMA_INS_DP"},
      {"Unconditional Branches.", "PAPI_BR_UCN"},
      {"Conditional Branches Taken.", "PAPI_BR_TKN"},
      {"Conditional Branches Not Taken.", "PAPI_BR_NTK"},
      {"Mispredicted Branches.", "PAPI_BR_MSP"},
      {"Correctly Predicted Branches.", "PAPI_BR_PRC"},
      {"Conditional Branches Retired.", "PAPI_BR_CN"},
      {"Conditional Branches Executed.", "PAPI_BR_CN_EXEC"},
      {"L1 Misses.", "PAPI_L1_DCM"},
      {"L1 Hits.", "PAPI_L1_DCH"},
      {"L1 Reads.", "PAPI_L1_DCR"},
      {"L2 Hits.", "PAPI_L2_DCH"},
      {"L2 Misses.", "PAPI_L2_DCM"},
      {"L3 Hits.", "PAPI_L3_DCH"},
  };
  for (const auto& [name, symbol] : kMap) {
    if (metric_name == name) return std::string(symbol);
  }
  return std::nullopt;
}

std::string derived_preset_symbol(const std::string& metric_name) {
  std::string out = "CAT_";
  bool prev_sep = true;
  for (char c : metric_name) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      out.push_back(static_cast<char>(
          std::toupper(static_cast<unsigned char>(c))));
      prev_sep = false;
    } else if (!prev_sep) {
      out.push_back('_');
      prev_sep = true;
    }
  }
  while (!out.empty() && out.back() == '_') out.pop_back();
  return out;
}

std::optional<PresetDefinition> make_preset(const MetricDefinition& metric,
                                            double round_tol) {
  if (!metric.composable) return std::nullopt;
  PresetDefinition preset;
  preset.symbol = canonical_preset_symbol(metric.metric_name)
                      .value_or(derived_preset_symbol(metric.metric_name));
  preset.description = metric.metric_name;
  preset.terms =
      drop_zero_terms(round_coefficients(metric.terms, round_tol));
  preset.fitness = metric.backward_error;
  return preset;
}

std::vector<PresetDefinition> make_presets(
    const std::vector<MetricDefinition>& metrics, double round_tol) {
  std::vector<PresetDefinition> out;
  for (const auto& m : metrics) {
    if (auto p = make_preset(m, round_tol)) out.push_back(std::move(*p));
  }
  return out;
}

std::string presets_to_table(const std::vector<PresetDefinition>& presets) {
  std::ostringstream os;
  os << "# symbol|description|combination|fitness\n";
  for (const auto& p : presets) {
    os << p.symbol << "|" << p.description << "|";
    for (std::size_t i = 0; i < p.terms.size(); ++i) {
      if (i > 0) os << (p.terms[i].coefficient < 0 ? "" : "+");
      os << std::setprecision(12) << p.terms[i].coefficient << "*"
         << p.terms[i].event_name;
    }
    os << "|" << std::scientific << std::setprecision(3) << p.fitness
       << std::defaultfloat << "\n";
  }
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string presets_to_json(const std::vector<PresetDefinition>& presets) {
  std::ostringstream os;
  os << "[\n";
  for (std::size_t i = 0; i < presets.size(); ++i) {
    const auto& p = presets[i];
    os << "  {\"symbol\": \"" << json_escape(p.symbol)
       << "\", \"description\": \"" << json_escape(p.description)
       << "\", \"fitness\": " << std::scientific << std::setprecision(6)
       << p.fitness << std::defaultfloat << ", \"terms\": [";
    for (std::size_t t = 0; t < p.terms.size(); ++t) {
      os << "{\"event\": \"" << json_escape(p.terms[t].event_name)
         << "\", \"coefficient\": " << std::setprecision(12)
         << p.terms[t].coefficient << "}"
         << (t + 1 < p.terms.size() ? ", " : "");
    }
    os << "]}" << (i + 1 < presets.size() ? "," : "") << "\n";
  }
  os << "]\n";
  return os.str();
}

vpapi::DerivedEvent to_derived_event(const PresetDefinition& preset) {
  vpapi::DerivedEvent d;
  d.name = preset.symbol;
  d.description = preset.description;
  for (const auto& t : preset.terms) {
    d.terms.push_back({t.event_name, t.coefficient});
  }
  return d;
}

std::size_t register_presets(vpapi::Session& session,
                             const std::vector<PresetDefinition>& presets) {
  std::size_t registered = 0;
  for (const auto& p : presets) {
    if (session.register_preset(to_derived_event(p)) == vpapi::Status::ok) {
      ++registered;
    }
  }
  return registered;
}

}  // namespace catalyst::core
